package rem

import (
	"fmt"
	"hash/crc32"
	"math"
)

// Tile-delta codec: the replication wire format that ships only the
// tiles that changed between two snapshot generations, so a follower
// tracking a leader pays bytes proportional to the dirty set — the
// copy-on-write sharing RebuildKeys already maintains, serialised. The
// dialect is the snapshot codec's (little-endian, magic + u32 version
// first, f64 as raw IEEE-754 bits), and every message ends in a CRC-32
// trailer: a delta travels over flaky networks by design, and applying
// a corrupt delta would silently poison every later generation derived
// from it.
//
// Layout (all integers little-endian):
//
//	magic "REMD" | u32 format version (1)
//	u64 base map version | u64 next map version
//	u32 nx | u32 ny | u32 nz | u32 tile cells | u32 nKeys
//	u32 nChanged | nChanged × u32 tile index   (strictly ascending)
//	tile data: f64 bits, changed tiles in index order
//	u32 CRC-32 (IEEE) of every preceding byte
//
// Tile lengths are not transmitted: they are derived from the geometry
// echo, which ApplyDelta checks against the base map before touching
// any tile. The key vocabulary is not transmitted either — a delta is
// only meaningful against a base the receiver already holds, and
// ApplyDelta requires the base's version to match; geometry or
// vocabulary drift between leader and follower therefore surfaces as a
// version/geometry mismatch, and the follower falls back to a full
// snapshot.

const (
	deltaMagic   = "REMD"
	deltaVersion = 1

	// deltaHeaderLen is the fixed prefix: magic, version, base/next map
	// versions, geometry echo (nx ny nz tileCells nKeys), change count.
	deltaHeaderLen = 4 + 4 + 8 + 8 + 5*4 + 4

	// deltaTrailerLen is the CRC-32 trailer.
	deltaTrailerLen = 4
)

// DiffTiles returns the indices of tiles whose contents differ between
// base and next, ascending. The two maps must share geometry and
// vocabulary (the relation RebuildKeys chains and merged sharded views
// maintain); anything else is an error. Tiles aliased to the same
// backing storage — the copy-on-write common case — are skipped without
// comparing cells, so the scan costs O(changed cells + shared tiles).
func DiffTiles(base, next *Map) ([]int, error) {
	if err := diffCompatible(base, next); err != nil {
		return nil, err
	}
	var changed []int
	for i, nt := range next.tiles {
		bt := base.tiles[i]
		if len(bt) > 0 && len(nt) > 0 && &bt[0] == &nt[0] {
			continue
		}
		if !sameTile(bt, nt) {
			changed = append(changed, i)
		}
	}
	return changed, nil
}

// diffCompatible requires the geometry/vocabulary identity a delta
// relation rests on.
func diffCompatible(base, next *Map) error {
	if base == nil || next == nil {
		return fmt.Errorf("rem: delta needs two maps")
	}
	if base.nx != next.nx || base.ny != next.ny || base.nz != next.nz {
		return fmt.Errorf("rem: delta resolution %dx%dx%d does not match base %dx%dx%d",
			next.nx, next.ny, next.nz, base.nx, base.ny, base.nz)
	}
	if !sameVolume(base, next) {
		return fmt.Errorf("rem: delta volume %v–%v does not match base %v–%v",
			next.volume.Min, next.volume.Max, base.volume.Min, base.volume.Max)
	}
	if len(base.keys) != len(next.keys) {
		return fmt.Errorf("rem: delta has %d keys, base %d", len(next.keys), len(base.keys))
	}
	for i, k := range next.keys {
		if base.keys[i] != k {
			return fmt.Errorf("rem: delta key %d is %q, base has %q", i, k, base.keys[i])
		}
	}
	return nil
}

// sameTile compares two tiles bit-for-bit (NaN payloads included — the
// identity Equal uses).
func sameTile(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// AppendDelta appends the delta message that turns base into next — the
// encoder side of the replication wire. The encoding is deterministic:
// the same (base, next) pair always appends the same bytes.
func AppendDelta(dst []byte, base, next *Map) ([]byte, error) {
	changed, err := DiffTiles(base, next)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	dst = append(dst, deltaMagic...)
	dst = AppendU32(dst, deltaVersion)
	dst = AppendU64(dst, base.version)
	dst = AppendU64(dst, next.version)
	dst = AppendU32(dst, uint32(next.nx))
	dst = AppendU32(dst, uint32(next.ny))
	dst = AppendU32(dst, uint32(next.nz))
	dst = AppendU32(dst, TileCells)
	dst = AppendU32(dst, uint32(len(next.keys)))
	dst = AppendU32(dst, uint32(len(changed)))
	for _, t := range changed {
		dst = AppendU32(dst, uint32(t))
	}
	for _, t := range changed {
		for _, v := range next.tiles[t] {
			dst = AppendF64(dst, v)
		}
	}
	return AppendU32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// DeltaVersions peeks a delta message's base and next map versions
// without validating or applying it — enough for a replication layer to
// route or log a delta before deciding what to do with it.
func DeltaVersions(data []byte) (base, next uint64, err error) {
	if len(data) < deltaHeaderLen {
		return 0, 0, fmt.Errorf("rem: delta header truncated: %d bytes, need %d", len(data), deltaHeaderLen)
	}
	if string(data[:4]) != deltaMagic {
		return 0, 0, fmt.Errorf("rem: bad delta magic %q", data[:4])
	}
	return U64(data[8:]), U64(data[16:]), nil
}

// ApplyDelta derives the next generation from base and a delta message:
// changed tiles take the transmitted cells, every other tile is shared
// with base (copy-on-write, exactly like RebuildKeys), and the result's
// version is the delta's next version. The message is validated in full
// before any tile is touched — magic, format version, CRC-32 trailer,
// base version match, geometry echo, index bounds and ordering, exact
// length — so a truncated, bit-flipped or mismatched delta is always an
// error and never a silently wrong map. If AppendDelta(base, next)
// produced the message, the result is Equal to next, bit for bit.
func ApplyDelta(base *Map, data []byte) (*Map, error) {
	if base == nil {
		return nil, fmt.Errorf("rem: delta needs a base map")
	}
	if len(data) < deltaHeaderLen+deltaTrailerLen {
		return nil, fmt.Errorf("rem: delta truncated: %d bytes, need at least %d", len(data), deltaHeaderLen+deltaTrailerLen)
	}
	if string(data[:4]) != deltaMagic {
		return nil, fmt.Errorf("rem: bad delta magic %q", data[:4])
	}
	if v := U32(data[4:]); v != deltaVersion {
		return nil, fmt.Errorf("rem: unsupported delta format version %d (want %d)", v, deltaVersion)
	}
	// Integrity first: past this point every declared field is known to
	// be exactly what the encoder wrote, so later checks diagnose real
	// mismatches (wrong base, drifted geometry), not line noise.
	body, trailer := data[:len(data)-deltaTrailerLen], U32(data[len(data)-deltaTrailerLen:])
	if sum := crc32.ChecksumIEEE(body); sum != trailer {
		return nil, fmt.Errorf("rem: delta checksum mismatch: trailer %08x, content %08x", trailer, sum)
	}
	baseVer, nextVer := U64(data[8:]), U64(data[16:])
	if baseVer != base.version {
		return nil, fmt.Errorf("rem: delta base version %d does not match map version %d", baseVer, base.version)
	}
	nx, ny, nz := U32(data[24:]), U32(data[28:]), U32(data[32:])
	if int(nx) != base.nx || int(ny) != base.ny || int(nz) != base.nz {
		return nil, fmt.Errorf("rem: delta resolution %dx%dx%d does not match base %dx%dx%d",
			nx, ny, nz, base.nx, base.ny, base.nz)
	}
	if tc := U32(data[36:]); tc != TileCells {
		return nil, fmt.Errorf("rem: delta tile size %d unsupported (want %d)", tc, TileCells)
	}
	if nk := U32(data[40:]); int(nk) != len(base.keys) {
		return nil, fmt.Errorf("rem: delta has %d keys, base %d", nk, len(base.keys))
	}
	nChanged := U32(data[44:])
	if uint64(nChanged) > uint64(len(base.tiles)) {
		return nil, fmt.Errorf("rem: delta changes %d tiles, base has %d", nChanged, len(base.tiles))
	}
	// Walk the index table once to validate ordering/bounds and total the
	// cell payload, in uint64 so a hostile table cannot wrap a native int.
	idxOff := deltaHeaderLen
	cells := uint64(0)
	if uint64(len(body)) < uint64(idxOff)+4*uint64(nChanged) {
		return nil, fmt.Errorf("rem: delta index table truncated")
	}
	prev := -1
	for i := 0; i < int(nChanged); i++ {
		t := int(U32(body[idxOff+4*i:]))
		if t >= len(base.tiles) {
			return nil, fmt.Errorf("rem: delta tile index %d outside [0, %d)", t, len(base.tiles))
		}
		if t <= prev {
			return nil, fmt.Errorf("rem: delta tile indices not strictly ascending at entry %d", i)
		}
		prev = t
		cells += uint64(base.tileLen(t % base.tilesPerKey))
	}
	dataOff := idxOff + 4*int(nChanged)
	if want := uint64(dataOff) + 8*cells; want != uint64(len(body)) {
		return nil, fmt.Errorf("rem: delta declares %d bytes, body has %d", want+deltaTrailerLen, len(data))
	}
	child := &Map{
		volume: base.volume,
		nx:     base.nx, ny: base.ny, nz: base.nz,
		stride:      base.stride,
		tilesPerKey: base.tilesPerKey,
		keys:        base.keys,
		tiles:       append([][]float64(nil), base.tiles...),
		version:     nextVer,
	}
	off := dataOff
	changed := make([]int, int(nChanged))
	for i := 0; i < int(nChanged); i++ {
		t := int(U32(body[idxOff+4*i:]))
		tile := make([]float64, base.tileLen(t%base.tilesPerKey))
		for c := range tile {
			tile[c] = F64(body[off:])
			off += 8
		}
		child.tiles[t] = tile
		changed[i] = t
	}
	// The delta's tile index table says exactly which cells moved, so the
	// coverage index is mended, not rebuilt: only cubes touching a changed
	// cell are re-filtered, and untouched index tiles stay shared.
	child.mendCoverFrom(base, changed)
	return child, nil
}
