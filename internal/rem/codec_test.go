package rem

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// randomMap builds a map with rng-chosen geometry and values (including
// non-finite cells) for codec exercising.
func randomMap(t *testing.T, rng *simrand.Source) *Map {
	t.Helper()
	nx, ny, nz := 1+rng.Intn(9), 1+rng.Intn(8), 1+rng.Intn(7)
	nKeys := 1 + rng.Intn(5)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("0a:%02x:%02x", i, rng.Intn(256))
	}
	vol := geom.MustCuboid(geom.V(rng.Range(-5, 0), rng.Range(-5, 0), 0), rng.Range(1, 6), rng.Range(1, 6), rng.Range(1, 4))
	predict := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			switch (i + k) % 17 {
			case 0:
				out[i] = math.NaN()
			case 1:
				out[i] = math.Inf(-1)
			default:
				out[i] = -40 - 7*p.X - 3*p.Y - p.Z - float64(k)
			}
		}
		return out, nil
	}
	m, err := BuildMapBatch(vol, nx, ny, nz, keys, predict, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCodecRoundTrip: WriteTo → ReadFrom reproduces geometry, keys,
// version and every cell bit-for-bit, across many random maps.
func TestCodecRoundTrip(t *testing.T) {
	rng := simrand.New(42)
	for trial := 0; trial < 25; trial++ {
		m := randomMap(t, rng)
		// Give some trials a rebuilt generation so version survives too.
		if trial%3 == 0 {
			next, err := m.RebuildKeys([]int{0}, func(centers []geom.Vec3, k int) ([]float64, error) {
				return make([]float64, len(centers)), nil
			}, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			m = next
		}
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("trial %d: WriteTo: %v", trial, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("trial %d: WriteTo reported %d bytes, wrote %d", trial, n, buf.Len())
		}
		got, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadFrom: %v", trial, err)
		}
		if !got.Equal(m) {
			t.Fatalf("trial %d: decoded map differs", trial)
		}
		if got.Version() != m.Version() {
			t.Fatalf("trial %d: version %d, want %d", trial, got.Version(), m.Version())
		}
		// Determinism: re-encoding yields the same bytes.
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("trial %d: re-encoding differs", trial)
		}
	}
}

// TestCodecRejectsTruncation: every strict prefix of a valid encoding
// errors cleanly.
func TestCodecRejectsTruncation(t *testing.T) {
	m := randomMap(t, simrand.New(7))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut += 1 + cut/16 {
		if _, err := ReadFrom(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(enc))
		}
	}
}

// TestCodecRejectsCorruptHeaders: bad magic, bad format version, and
// oversized dimensions are all refused before any large allocation.
func TestCodecRejectsCorruptHeaders(t *testing.T) {
	m := randomMap(t, simrand.New(9))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), buf.Bytes()...)
		mutate(b)
		_, err := ReadFrom(bytes.NewReader(b))
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[4] = 99 }); err == nil {
		t.Error("bad format version accepted")
	}
	if err := corrupt(func(b []byte) { // nx field, after magic+ver+6 float64s
		off := 4 + 4 + 6*8
		for i := 0; i < 4; i++ {
			b[off+i] = 0xff
		}
	}); err == nil {
		t.Error("oversized nx accepted")
	}
	if err := corrupt(func(b []byte) { // Min.X → NaN
		off := 4 + 4
		for i := 0; i < 8; i++ {
			b[off+i] = 0xff
		}
	}); err == nil {
		t.Error("NaN volume bound accepted")
	}
}

// TestCodecChecksumCatchesBitFlips: any single flipped bit in a
// version-2 stream is rejected — either by a structural check or,
// for flips that still parse (cell values, the map version, the
// trailer itself), by the CRC-32 trailer. Loading garbage that happens
// to parse is exactly the failure mode the trailer exists to close.
func TestCodecChecksumCatchesBitFlips(t *testing.T) {
	m := randomMap(t, simrand.New(13))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for off := 0; off < len(enc); off += 1 + off/9 {
		b := append([]byte(nil), enc...)
		b[off] ^= 0x08
		if _, err := ReadFrom(bytes.NewReader(b)); err == nil {
			t.Fatalf("flipped bit at byte %d/%d accepted", off, len(enc))
		}
	}
}

// TestCodecReadsVersion1: a pre-trailer stream (format version 1, no
// CRC) still loads — snapshots persisted before the version bump stay
// readable across the upgrade.
func TestCodecReadsVersion1(t *testing.T) {
	m := randomMap(t, simrand.New(17))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field to 1 and strip the trailer — exactly the
	// bytes the old encoder produced.
	v1 := append([]byte(nil), buf.Bytes()[:buf.Len()-4]...)
	PutU32(v1[4:], 1)
	got, err := ReadFrom(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 stream rejected: %v", err)
	}
	if !got.Equal(m) || got.Version() != m.Version() {
		t.Fatal("version-1 stream decoded differently")
	}
	// And a version-1 stream with trailing garbage appended decodes too:
	// ReadFrom reads exactly the declared layout (the old reader's
	// behaviour, preserved).
	if _, err := ReadFrom(bytes.NewReader(append(v1, 0xEE))); err != nil {
		t.Fatalf("version-1 stream with trailing bytes rejected: %v", err)
	}
}

// TestCodecWriteToEnforcesBounds: a map ReadFrom would refuse must fail
// at write time, not surface as an unreadable file at reload.
func TestCodecWriteToEnforcesBounds(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	m, err := BuildMapBatch(vol, 5000, 1, 1, []string{"a"}, func(centers []geom.Vec3, k int) ([]float64, error) {
		return make([]float64, len(centers)), nil
	}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo accepted an axis ReadFrom would reject")
	}
}

// FuzzCodecReadFrom hammers ReadFrom with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to a decodable map
// (round-trip closure).
func FuzzCodecReadFrom(f *testing.F) {
	rng := simrand.New(11)
	vol := geom.MustCuboid(geom.V(0, 0, 0), 2, 2, 2)
	for i := 0; i < 4; i++ {
		nx, ny := 1+rng.Intn(4), 1+rng.Intn(4)
		m, err := BuildMapBatch(vol, nx, ny, 2, []string{"aa", "bb"}, func(centers []geom.Vec3, k int) ([]float64, error) {
			out := make([]float64, len(centers))
			for j := range out {
				out[j] = rng.Range(-90, -30)
			}
			return out, nil
		}, BuildOptions{Workers: 1})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("REMT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("accepted map failed to encode: %v", err)
		}
		again, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded map failed to decode: %v", err)
		}
		if !again.Equal(m) {
			t.Fatal("round-trip changed the map")
		}
	})
}
