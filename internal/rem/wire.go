package rem

import (
	"encoding/binary"
	"math"
)

// Wire primitives: the little-endian integer and float encodings the
// snapshot codec (codec.go) is built from, exported so every other
// binary surface in the repo — the remserve batch wire format, client
// tools, examples — speaks exactly the same dialect instead of growing
// a second one. A float64 is always its IEEE-754 bits as a little-endian
// uint64 (NaN payloads survive), integers are fixed-width little-endian,
// and multi-field layouts put a 4-byte magic and a u32 format version
// first — the conventions WriteTo/ReadFrom established.

// WireMaxKeyLen is the codec's bound on one key string's byte length,
// shared with the snapshot format so no binary surface accepts a key
// the snapshot codec would refuse to persist.
const WireMaxKeyLen = codecMaxKey

// PutU32 writes v into b[:4] little-endian.
func PutU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// PutU64 writes v into b[:8] little-endian.
func PutU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// PutF64 writes v's IEEE-754 bits into b[:8] little-endian.
func PutF64(b []byte, v float64) { PutU64(b, math.Float64bits(v)) }

// U32 reads a little-endian uint32 from b[:4].
func U32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// U64 reads a little-endian uint64 from b[:8].
func U64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// F64 reads a little-endian float64 (IEEE-754 bits) from b[:8].
func F64(b []byte) float64 { return math.Float64frombits(U64(b)) }

// AppendU32 appends v little-endian to b.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends v little-endian to b.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendF64 appends v's IEEE-754 bits little-endian to b.
func AppendF64(b []byte, v float64) []byte {
	return AppendU64(b, math.Float64bits(v))
}
