package rem

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/ml"
)

// field returns a deterministic batch predictor whose value depends on the
// centre, the key, and a generation g — so two generations differ on every
// cell of every key.
func field(g float64) BatchPredictFunc {
	return func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -50 - 5*math.Sin(p.X+float64(k)) - 3*p.Y - 2*p.Z - g
		}
		return out, nil
	}
}

// mixedField answers with gen-g values for dirty keys and gen-0 values
// otherwise — the shape of a model where only some keys' predictions
// changed.
func mixedField(g float64, dirty map[int]bool) BatchPredictFunc {
	f0, fg := field(0), field(g)
	return func(centers []geom.Vec3, k int) ([]float64, error) {
		if dirty[k] {
			return fg(centers, k)
		}
		return f0(centers, k)
	}
}

func buildTestMap(t *testing.T, predict BatchPredictFunc, workers int) *Map {
	t.Helper()
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	// 9×7×5 = 315 cells per key: two tiles per key (256 + 59), so tile
	// boundaries and a short trailing tile are both exercised.
	m, err := BuildMapBatch(vol, 9, 7, 5, []string{"AA", "BB", "CC", "DD"}, predict, BuildOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTileGeometry pins the tile layout: stride hoisted, per-key tile
// count, short trailing tile.
func TestTileGeometry(t *testing.T) {
	m := buildTestMap(t, field(0), 1)
	if m.cells() != 315 {
		t.Fatalf("stride = %d, want 315", m.cells())
	}
	if m.TilesPerKey() != 2 {
		t.Fatalf("tiles per key = %d, want 2", m.TilesPerKey())
	}
	if m.NumTiles() != 8 {
		t.Fatalf("total tiles = %d, want 8", m.NumTiles())
	}
	if got := m.tileLen(0); got != TileCells {
		t.Fatalf("tile 0 length = %d, want %d", got, TileCells)
	}
	if got := m.tileLen(1); got != 315-TileCells {
		t.Fatalf("tile 1 length = %d, want %d", got, 315-TileCells)
	}
	if m.Version() != 1 {
		t.Fatalf("fresh build version = %d, want 1", m.Version())
	}
	// Values stored across the tile boundary must round-trip through val.
	want, _ := field(0)([]geom.Vec3{m.cellCenter(TileCells%9, (TileCells/9)%7, TileCells/63)}, 2)
	if got := m.val(2, TileCells); got != want[0] {
		t.Fatalf("val across tile boundary = %v, want %v", got, want[0])
	}
}

// TestRebuildKeysByteIdentity is determinism-contract rule 7 at the rem
// layer: rebuilding the dirty key set against a changed model yields a map
// byte-identical to a from-scratch build against that model, for any
// worker count, while sharing every clean key's tiles with the parent.
func TestRebuildKeysByteIdentity(t *testing.T) {
	dirty := map[int]bool{1: true, 3: true}
	parent := buildTestMap(t, field(0), 1)
	want := buildTestMap(t, mixedField(7, dirty), 1)
	for _, workers := range []int{1, 8} {
		got, err := parent.RebuildKeys([]int{3, 1, 3}, mixedField(7, dirty), BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: incremental rebuild differs from from-scratch build", workers)
		}
		if got.Version() != parent.Version()+1 {
			t.Fatalf("workers=%d: version = %d, want %d", workers, got.Version(), parent.Version()+1)
		}
		// Keys 0 and 2 are clean: their 2 tiles each must be aliased.
		if shared := got.SharedTiles(parent); shared != 4 {
			t.Fatalf("workers=%d: shared tiles = %d, want 4", workers, shared)
		}
		// The parent must be untouched.
		if !parent.Equal(buildTestMap(t, field(0), 1)) {
			t.Fatalf("workers=%d: rebuild mutated its parent", workers)
		}
	}
}

// TestRebuildAllKeysMatchesFresh: a full-dirty rebuild equals a fresh
// build and shares nothing.
func TestRebuildAllKeysMatchesFresh(t *testing.T) {
	parent := buildTestMap(t, field(0), 1)
	got, err := parent.RebuildKeys([]int{0, 1, 2, 3}, field(9), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(buildTestMap(t, field(9), 1)) {
		t.Fatal("full rebuild differs from fresh build")
	}
	if shared := got.SharedTiles(parent); shared != 0 {
		t.Fatalf("full rebuild shares %d tiles, want 0", shared)
	}
}

// TestRebuildNoDirtyKeysSharesEverything: an empty delta publishes a new
// generation that is the parent, tile for tile.
func TestRebuildNoDirtyKeysSharesEverything(t *testing.T) {
	parent := buildTestMap(t, field(0), 1)
	got, err := parent.RebuildKeys(nil, field(99), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(parent) {
		t.Fatal("no-op rebuild changed values")
	}
	if shared := got.SharedTiles(parent); shared != parent.NumTiles() {
		t.Fatalf("no-op rebuild shares %d tiles, want %d", shared, parent.NumTiles())
	}
	if got.Version() != parent.Version()+1 {
		t.Fatalf("version = %d, want %d", got.Version(), parent.Version()+1)
	}
}

// TestRebuildKeysValidation: nil predictors and out-of-range keys are
// rejected.
func TestRebuildKeysValidation(t *testing.T) {
	parent := buildTestMap(t, field(0), 1)
	if _, err := parent.RebuildKeys([]int{0}, nil, BuildOptions{}); err == nil {
		t.Error("nil predictor accepted")
	}
	for _, bad := range []int{-2, 4} {
		if _, err := parent.RebuildKeys([]int{bad}, field(1), BuildOptions{}); err == nil {
			t.Errorf("dirty key %d accepted", bad)
		}
	}
}

// TestRebuildDirtyAllSentinel: an Observe result containing ml.DirtyAll
// wires straight into RebuildKeys as a full rebuild.
func TestRebuildDirtyAllSentinel(t *testing.T) {
	parent := buildTestMap(t, field(0), 1)
	got, err := parent.RebuildKeys([]int{ml.DirtyAll}, field(3), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(buildTestMap(t, field(3), 1)) {
		t.Fatal("DirtyAll rebuild differs from fresh build")
	}
	if shared := got.SharedTiles(parent); shared != 0 {
		t.Fatalf("DirtyAll rebuild shares %d tiles, want 0", shared)
	}
}

// TestRebuildChain: stacked incremental generations stay byte-identical to
// from-scratch builds of each cumulative state.
func TestRebuildChain(t *testing.T) {
	cur := buildTestMap(t, field(0), 1)
	dirtySets := [][]int{{0}, {2, 3}, {1}}
	state := map[int]float64{}
	for gen, dirty := range dirtySets {
		g := float64(gen + 1)
		for _, k := range dirty {
			state[k] = g
		}
		perKey := func(centers []geom.Vec3, k int) ([]float64, error) {
			return field(state[k])(centers, k)
		}
		next, err := cur.RebuildKeys(dirty, perKey, BuildOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !next.Equal(buildTestMap(t, perKey, 1)) {
			t.Fatalf("generation %d differs from from-scratch build", gen+1)
		}
		if next.Version() != uint64(gen+2) {
			t.Fatalf("generation %d version = %d", gen+1, next.Version())
		}
		cur = next
	}
}

// TestEqualDetectsDifferences: Equal must notice geometry, key and value
// changes, and must compare NaNs bitwise rather than by IEEE equality.
func TestEqualDetectsDifferences(t *testing.T) {
	m := buildTestMap(t, field(0), 1)
	if m.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
	if !m.Equal(m) {
		t.Error("Equal(self) = false")
	}
	other := buildTestMap(t, field(1), 1)
	if m.Equal(other) {
		t.Error("maps with different values compare equal")
	}
	nanField := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range out {
			out[i] = math.NaN()
		}
		return out, nil
	}
	a := buildTestMap(t, nanField, 1)
	b := buildTestMap(t, nanField, 1)
	if !a.Equal(b) {
		t.Error("identical NaN maps compare unequal")
	}
}
