package rem

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/ml/nn"
	"repro/internal/simrand"
)

// waveField is a smooth, key-dependent synthetic predictor.
func waveField(p geom.Vec3, k int) (float64, error) {
	return -50 - 6*math.Sin(p.X+float64(k)) - 4*math.Cos(p.Y*2) - 3*p.Z, nil
}

// TestBuildMapWorkerCountInvariance is the determinism contract: maps
// built with workers=1 and workers=8 (and the batch path) are
// byte-identical.
func TestBuildMapWorkerCountInvariance(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	keys := []string{"AA", "BB", "CC"}
	seq, err := BuildMapOpts(vol, 9, 7, 5, keys, waveField, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildMapOpts(vol, 9, 7, 5, keys, waveField, BuildOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	batch := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i], _ = waveField(p, k)
		}
		return out, nil
	}
	bat, err := BuildMapBatch(vol, 9, 7, 5, keys, batch, BuildOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumTiles() != par.NumTiles() || seq.NumTiles() != bat.NumTiles() {
		t.Fatalf("tile counts differ: %d/%d/%d", seq.NumTiles(), par.NumTiles(), bat.NumTiles())
	}
	if !seq.Equal(par) {
		t.Fatal("workers=8 map differs from workers=1 map")
	}
	if !seq.Equal(bat) {
		t.Fatal("batch map differs from workers=1 map")
	}
}

// TestBuildMapParallelErrorPropagates: a failing predictor must surface
// its error and cancel the build under every worker count.
func TestBuildMapParallelErrorPropagates(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 1, 1, 1)
	boom := errors.New("boom")
	bad := func(p geom.Vec3, k int) (float64, error) {
		if p.X > 0.5 {
			return 0, boom
		}
		return -60, nil
	}
	for _, workers := range []int{1, 8} {
		m, err := BuildMapOpts(vol, 16, 16, 4, []string{"a"}, bad, BuildOptions{Workers: workers})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error = %v, want boom", workers, err)
		}
		if m != nil {
			t.Errorf("workers=%d: partial map returned alongside error", workers)
		}
	}
	badBatch := func(centers []geom.Vec3, k int) ([]float64, error) { return nil, boom }
	if _, err := BuildMapBatch(vol, 4, 4, 4, []string{"a"}, badBatch, BuildOptions{Workers: 4}); !errors.Is(err, boom) {
		t.Errorf("batch error = %v, want boom", err)
	}
	short := func(centers []geom.Vec3, k int) ([]float64, error) { return make([]float64, 1), nil }
	if _, err := BuildMapBatch(vol, 8, 8, 8, []string{"a"}, short, BuildOptions{Workers: 2}); err == nil {
		t.Error("length-mismatched batch result accepted")
	}
}

// TestBuildMapBatchSingleKeyPerCall: the batch contract promises each call
// covers exactly one key.
func TestBuildMapBatchSingleKeyPerCall(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 2, 2, 2)
	var mu sync.Mutex
	calls := map[int]int{}
	batch := func(centers []geom.Vec3, k int) ([]float64, error) {
		if len(centers) == 0 {
			return nil, fmt.Errorf("empty batch for key %d", k)
		}
		mu.Lock()
		calls[k] += len(centers)
		mu.Unlock()
		return make([]float64, len(centers)), nil
	}
	m, err := BuildMapBatch(vol, 5, 5, 5, []string{"a", "b"}, batch, BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if calls[0] != 125 || calls[1] != 125 {
		t.Errorf("per-key batched cells = %v, want 125 each", calls)
	}
	if nx, ny, nz := m.Resolution(); nx*ny*nz != 125 {
		t.Errorf("resolution = %d×%d×%d", nx, ny, nz)
	}
}

// TestMapConcurrentQueries drives a built map from many goroutines; under
// -race this proves queries share no mutable state.
func TestMapConcurrentQueries(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	m, err := BuildMap(vol, 10, 8, 6, []string{"AA", "BB"}, waveField)
	if err != nil {
		t.Fatal(err)
	}
	wantAt, err := m.At("AA", geom.V(1.2, 2.2, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	wantKey, wantBest := m.Strongest(geom.V(3, 1, 2))
	wantCov := m.CoverageFraction(-60)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, err := m.At("AA", geom.V(1.2, 2.2, 0.7))
				if err != nil || v != wantAt {
					t.Errorf("concurrent At = %v, %v; want %v", v, err, wantAt)
					return
				}
				key, best := m.Strongest(geom.V(3, 1, 2))
				if key != wantKey || best != wantBest {
					t.Errorf("concurrent Strongest = %q/%v; want %q/%v", key, best, wantKey, wantBest)
					return
				}
				if cov := m.CoverageFraction(-60); cov != wantCov {
					t.Errorf("concurrent CoverageFraction = %v, want %v", cov, wantCov)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBuildMapNNBatchWorkerInvariance extends the determinism contract to
// the neural network's batched inference: rasterising a fitted NN through
// PredictBatch on any worker count must be byte-identical to the
// per-sample Predict path on one worker. Under -race this also proves the
// pooled-workspace batch path shares no mutable state across workers.
func TestBuildMapNNBatchWorkerInvariance(t *testing.T) {
	rng := simrand.New(61)
	const nKeys = 3
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		row := make([]float64, 3+nKeys)
		row[0], row[1], row[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		row[3+rng.Intn(nKeys)] = 1
		x = append(x, row)
		y = append(y, -55-6*row[0]+3*row[1]-2*row[2]+rng.Gauss(0, 1))
	}
	cfg := nn.PaperConfig(77)
	cfg.Epochs = 15
	net, err := nn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	query := func(p geom.Vec3, ki int) []float64 {
		q := make([]float64, 3+nKeys)
		q[0], q[1], q[2] = p.X, p.Y, p.Z
		q[3+ki] = 1
		return q
	}
	perSample := func(p geom.Vec3, ki int) (float64, error) { return net.Predict(query(p, ki)) }
	batched := func(centers []geom.Vec3, ki int) ([]float64, error) {
		qs := make([][]float64, len(centers))
		for i, p := range centers {
			qs[i] = query(p, ki)
		}
		return net.PredictBatch(qs)
	}
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	keys := []string{"AA", "BB", "CC"}
	ref, err := BuildMapOpts(vol, 8, 6, 4, keys, perSample, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := BuildMapBatch(vol, 8, 6, 4, keys, batched, BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("workers=%d: NN batch map differs from per-sample map", workers)
		}
	}
}
