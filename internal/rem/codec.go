package rem

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
)

// Binary snapshot codec: a versioned header, the key vocabulary, a tile
// table, then raw tile data — so a remstore can persist its current
// snapshot across restarts and reload it without re-flying or refitting
// anything. The encoding is deterministic (little-endian, fixed field
// order): the same Map always serialises to the same bytes, and a
// round-trip reproduces every cell bit-for-bit (including NaN payloads).
//
// Layout (all integers little-endian):
//
//	magic "REMT" | u32 format version (2)
//	6 × f64 volume (Min.X Min.Y Min.Z Max.X Max.Y Max.Z)
//	u32 nx | u32 ny | u32 nz | u32 tile cells | u64 map version
//	u32 nKeys | nKeys × (u32 byte length, key bytes)
//	u32 nTiles | nTiles × u32 tile length   (the tile table)
//	tile data: f64 bits in tile order
//	u32 CRC-32 (IEEE) of every preceding byte   (version ≥ 2 only)
//
// Version 2 added the CRC-32 trailer so a reload — a follower resyncing
// over a flaky network, a remgen restart from a snapshot file — detects
// corrupt bytes instead of loading garbage that happens to parse.
// ReadFrom still accepts version 1 streams (no trailer, no integrity
// check) so snapshots persisted before the bump remain loadable;
// WriteTo always writes version 2.

const (
	codecMagic   = "REMT"
	codecVersion = 2

	// codecVersionNoCRC is the pre-trailer format, still readable.
	codecVersionNoCRC = 1

	// Codec sanity bounds: a header that declares more than these is
	// rejected before any large allocation happens, so a corrupt or
	// hostile stream cannot make ReadFrom balloon.
	codecMaxAxis  = 1 << 12 // cells per axis
	codecMaxKeys  = 1 << 16
	codecMaxKey   = 1 << 12 // bytes per key string
	codecMaxCells = 1 << 26 // total cells across all keys
)

type codecWriter struct {
	w   *bufio.Writer
	n   int64
	crc uint32
	err error
	buf [8]byte
}

func (cw *codecWriter) bytes(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
}

func (cw *codecWriter) u32(v uint32) {
	PutU32(cw.buf[:4], v)
	cw.bytes(cw.buf[:4])
}

func (cw *codecWriter) u64(v uint64) {
	PutU64(cw.buf[:8], v)
	cw.bytes(cw.buf[:8])
}

func (cw *codecWriter) f64(v float64) { cw.u64(math.Float64bits(v)) }

// WriteTo implements io.WriterTo: it serialises the map in the codec
// format above and returns the byte count written. Maps outside the
// codec's sanity bounds are rejected here, at write time — persisting a
// snapshot that ReadFrom would refuse on reload is a silent data-loss
// trap.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	if err := m.codecBounds(); err != nil {
		return 0, err
	}
	cw := &codecWriter{w: bufio.NewWriter(w)}
	cw.bytes([]byte(codecMagic))
	cw.u32(codecVersion)
	for _, v := range [6]float64{m.volume.Min.X, m.volume.Min.Y, m.volume.Min.Z, m.volume.Max.X, m.volume.Max.Y, m.volume.Max.Z} {
		cw.f64(v)
	}
	cw.u32(uint32(m.nx))
	cw.u32(uint32(m.ny))
	cw.u32(uint32(m.nz))
	cw.u32(TileCells)
	cw.u64(m.version)
	cw.u32(uint32(len(m.keys)))
	for _, k := range m.keys {
		cw.u32(uint32(len(k)))
		cw.bytes([]byte(k))
	}
	cw.u32(uint32(len(m.tiles)))
	for _, t := range m.tiles {
		cw.u32(uint32(len(t)))
	}
	for _, t := range m.tiles {
		for _, v := range t {
			cw.f64(v)
		}
	}
	// The trailer covers every byte before it; capture the sum first —
	// writing the trailer itself must not fold into it.
	cw.u32(cw.crc)
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	return cw.n, cw.err
}

// validVolume requires finite bounds with positive extent on every axis
// — anything else turns every query's clamp/interpolation arithmetic
// into NaN or garbage.
func validVolume(min, max [3]float64) error {
	for i := range min {
		if math.IsNaN(min[i]) || math.IsInf(min[i], 0) || math.IsNaN(max[i]) || math.IsInf(max[i], 0) {
			return fmt.Errorf("rem: volume axis %d bounds [%v, %v] not finite", i, min[i], max[i])
		}
		if max[i] <= min[i] {
			return fmt.Errorf("rem: volume axis %d bounds [%v, %v] not increasing", i, min[i], max[i])
		}
	}
	return nil
}

// codecBounds checks the map against the same sanity limits ReadFrom
// enforces, so every encoding WriteTo produces is reloadable.
func (m *Map) codecBounds() error {
	if err := validVolume(
		[3]float64{m.volume.Min.X, m.volume.Min.Y, m.volume.Min.Z},
		[3]float64{m.volume.Max.X, m.volume.Max.Y, m.volume.Max.Z},
	); err != nil {
		return err
	}
	for i, n := range [3]int{m.nx, m.ny, m.nz} {
		if n > codecMaxAxis {
			return fmt.Errorf("rem: axis %d resolution %d exceeds the codec bound %d", i, n, codecMaxAxis)
		}
	}
	if len(m.keys) > codecMaxKeys {
		return fmt.Errorf("rem: %d keys exceed the codec bound %d", len(m.keys), codecMaxKeys)
	}
	for i, k := range m.keys {
		if len(k) > codecMaxKey {
			return fmt.Errorf("rem: key %d length %d exceeds the codec bound %d", i, len(k), codecMaxKey)
		}
	}
	if total := uint64(m.stride) * uint64(len(m.keys)); total > codecMaxCells {
		return fmt.Errorf("rem: %d keys × %d cells exceeds the %d-cell codec bound", len(m.keys), m.stride, codecMaxCells)
	}
	return nil
}

type codecReader struct {
	r   io.Reader
	crc uint32
	buf [8]byte
}

func (cr *codecReader) bytes(p []byte) error {
	_, err := io.ReadFull(cr.r, p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p)
	}
	return err
}

func (cr *codecReader) u32() (uint32, error) {
	if err := cr.bytes(cr.buf[:4]); err != nil {
		return 0, err
	}
	return U32(cr.buf[:4]), nil
}

func (cr *codecReader) u64() (uint64, error) {
	if err := cr.bytes(cr.buf[:8]); err != nil {
		return 0, err
	}
	return U64(cr.buf[:8]), nil
}

func (cr *codecReader) f64() (float64, error) {
	v, err := cr.u64()
	return math.Float64frombits(v), err
}

// ReadFrom deserialises a map written by WriteTo, validating the header,
// dimensions and tile table before allocating cell storage. It never
// panics on corrupt input: every malformed stream yields an error.
func ReadFrom(r io.Reader) (*Map, error) {
	cr := &codecReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(codecMagic))
	if err := cr.bytes(magic); err != nil {
		return nil, fmt.Errorf("rem: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("rem: bad magic %q", magic)
	}
	ver, err := cr.u32()
	if err != nil {
		return nil, fmt.Errorf("rem: reading format version: %w", err)
	}
	if ver != codecVersion && ver != codecVersionNoCRC {
		return nil, fmt.Errorf("rem: unsupported format version %d (want %d or %d)", ver, codecVersionNoCRC, codecVersion)
	}
	var vol [6]float64
	for i := range vol {
		if vol[i], err = cr.f64(); err != nil {
			return nil, fmt.Errorf("rem: reading volume: %w", err)
		}
	}
	if err := validVolume([3]float64{vol[0], vol[1], vol[2]}, [3]float64{vol[3], vol[4], vol[5]}); err != nil {
		return nil, err
	}
	var dims [3]uint32
	for i := range dims {
		if dims[i], err = cr.u32(); err != nil {
			return nil, fmt.Errorf("rem: reading grid dimensions: %w", err)
		}
		if dims[i] < 1 || dims[i] > codecMaxAxis {
			return nil, fmt.Errorf("rem: axis %d resolution %d outside [1, %d]", i, dims[i], codecMaxAxis)
		}
	}
	tileCells, err := cr.u32()
	if err != nil {
		return nil, fmt.Errorf("rem: reading tile size: %w", err)
	}
	if tileCells != TileCells {
		return nil, fmt.Errorf("rem: tile size %d unsupported (want %d)", tileCells, TileCells)
	}
	mapVersion, err := cr.u64()
	if err != nil {
		return nil, fmt.Errorf("rem: reading map version: %w", err)
	}
	nKeys, err := cr.u32()
	if err != nil {
		return nil, fmt.Errorf("rem: reading key count: %w", err)
	}
	if nKeys < 1 || nKeys > codecMaxKeys {
		return nil, fmt.Errorf("rem: key count %d outside [1, %d]", nKeys, codecMaxKeys)
	}
	// Bound the total in uint64 before any conversion to int: on 32-bit
	// platforms nx·ny·nz can wrap a native int even with each axis in
	// bounds, and a wrapped stride would slip past this check as a
	// malformed zero-tile map.
	stride64 := uint64(dims[0]) * uint64(dims[1]) * uint64(dims[2])
	if stride64*uint64(nKeys) > codecMaxCells {
		return nil, fmt.Errorf("rem: %d keys × %d cells exceeds the %d-cell codec bound", nKeys, stride64, codecMaxCells)
	}
	nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
	keys := make([]string, nKeys)
	for i := range keys {
		kl, err := cr.u32()
		if err != nil {
			return nil, fmt.Errorf("rem: reading key %d length: %w", i, err)
		}
		if kl > codecMaxKey {
			return nil, fmt.Errorf("rem: key %d length %d exceeds %d", i, kl, codecMaxKey)
		}
		kb := make([]byte, kl)
		if err := cr.bytes(kb); err != nil {
			return nil, fmt.Errorf("rem: reading key %d: %w", i, err)
		}
		keys[i] = string(kb)
	}
	volume := geom.Cuboid{Min: geom.V(vol[0], vol[1], vol[2]), Max: geom.V(vol[3], vol[4], vol[5])}
	m, err := newShell(volume, nx, ny, nz, keys)
	if err != nil {
		return nil, err
	}
	m.version = mapVersion
	nTiles, err := cr.u32()
	if err != nil {
		return nil, fmt.Errorf("rem: reading tile count: %w", err)
	}
	if int(nTiles) != len(m.tiles) {
		return nil, fmt.Errorf("rem: tile table has %d tiles, geometry needs %d", nTiles, len(m.tiles))
	}
	for t := range m.tiles {
		tl, err := cr.u32()
		if err != nil {
			return nil, fmt.Errorf("rem: reading tile %d length: %w", t, err)
		}
		if want := m.tileLen(t % m.tilesPerKey); int(tl) != want {
			return nil, fmt.Errorf("rem: tile %d length %d, geometry needs %d", t, tl, want)
		}
	}
	for t := range m.tiles {
		tile := make([]float64, m.tileLen(t%m.tilesPerKey))
		for c := range tile {
			if tile[c], err = cr.f64(); err != nil {
				return nil, fmt.Errorf("rem: reading tile %d data: %w", t, err)
			}
		}
		m.tiles[t] = tile
	}
	if ver >= codecVersion {
		sum := cr.crc // capture before the trailer read folds itself in
		trailer, err := cr.u32()
		if err != nil {
			return nil, fmt.Errorf("rem: reading checksum trailer: %w", err)
		}
		if trailer != sum {
			return nil, fmt.Errorf("rem: snapshot checksum mismatch: trailer %08x, content %08x", trailer, sum)
		}
	}
	return m, nil
}
