package rem

import (
	"fmt"
	"math"
)

// Merge assembles a single Map over the given key order from per-part
// maps covering disjoint key subsets — the reassembly step a sharded
// store uses to materialise one monolithic view of its shards. Every
// part must share the merged map's exact geometry (volume bit-for-bit,
// grid resolution), and each key in order must appear in exactly one
// part; parts may hold their keys in any order. Tile storage is shared,
// not copied: the merged map aliases every part's tiles, so it is
// immutable exactly as its parts are and costs only the tile-header
// table. Its version is the maximum part version (provenance only —
// merged maps are not part of any rebuild chain).
//
// Determinism contract rule 8 rests on this being a pure reindexing:
// Merge(keys, shards-of(m)) is byte-identical (Map.Equal) to m itself
// for any partitioning of m's keys.
func Merge(order []string, parts []*Map) (*Map, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("rem: merge needs at least one key")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("rem: merge needs at least one part")
	}
	ref := parts[0]
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("rem: merge part %d is nil", i)
		}
		if p.nx != ref.nx || p.ny != ref.ny || p.nz != ref.nz {
			return nil, fmt.Errorf("rem: merge part %d resolution %dx%dx%d does not match %dx%dx%d",
				i, p.nx, p.ny, p.nz, ref.nx, ref.ny, ref.nz)
		}
		if !sameVolume(p, ref) {
			return nil, fmt.Errorf("rem: merge part %d volume %v–%v does not match %v–%v",
				i, p.volume.Min, p.volume.Max, ref.volume.Min, ref.volume.Max)
		}
	}
	// Locate every key: (part, local index), rejecting duplicates across
	// parts and keys missing from all of them.
	type loc struct{ part, ki int }
	where := make(map[string]loc, len(order))
	total := 0
	for pi, p := range parts {
		total += len(p.keys)
		for ki, k := range p.keys {
			if prev, dup := where[k]; dup {
				return nil, fmt.Errorf("rem: key %q appears in merge parts %d and %d", k, prev.part, pi)
			}
			where[k] = loc{pi, ki}
		}
	}
	if total != len(order) {
		return nil, fmt.Errorf("rem: merge parts hold %d keys, order lists %d", total, len(order))
	}
	m := &Map{
		volume: ref.volume,
		nx:     ref.nx, ny: ref.ny, nz: ref.nz,
		stride:      ref.stride,
		tilesPerKey: ref.tilesPerKey,
		keys:        append([]string(nil), order...),
		version:     0,
	}
	seen := make(map[string]bool, len(order))
	m.tiles = make([][]float64, len(order)*m.tilesPerKey)
	partOf := make([]int, len(order))
	localOf := make([]int, len(order))
	for gi, k := range order {
		if seen[k] {
			return nil, fmt.Errorf("rem: merge order lists %q twice", k)
		}
		seen[k] = true
		l, ok := where[k]
		if !ok {
			return nil, fmt.Errorf("rem: merge key %q not held by any part", k)
		}
		p := parts[l.part]
		copy(m.tiles[gi*m.tilesPerKey:(gi+1)*m.tilesPerKey], p.tiles[l.ki*p.tilesPerKey:(l.ki+1)*p.tilesPerKey])
		partOf[gi], localOf[gi] = l.part, l.ki
		if p.version > m.version {
			m.version = p.version
		}
	}
	// Reassemble the coverage index from the parts' indexes (cheap: per
	// cube it folds the part bounds and re-tests only part candidates).
	// If any part is unindexed the merged map simply stays unindexed too.
	if ci := mergeCover(m, parts, partOf, localOf); ci != nil {
		m.cover.Store(ci)
	}
	return m, nil
}

// sameVolume compares two maps' volumes bit-for-bit (the identity Equal
// uses), so NaN coordinates cannot slip through the geometry check.
func sameVolume(a, b *Map) bool {
	av := [6]float64{a.volume.Min.X, a.volume.Min.Y, a.volume.Min.Z, a.volume.Max.X, a.volume.Max.Y, a.volume.Max.Z}
	bv := [6]float64{b.volume.Min.X, b.volume.Min.Y, b.volume.Min.Z, b.volume.Max.X, b.volume.Max.Y, b.volume.Max.Z}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}
