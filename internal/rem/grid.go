package rem

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// ErrUnknownKey is the sentinel wrapped by every key-addressed query
// against a key outside the map's vocabulary. Callers that route errors
// by kind (the HTTP front maps it to 404, everything else to 5xx) match
// it with errors.Is; the wrapping message still names the offending key.
var ErrUnknownKey = errors.New("rem: unknown key")

// PredictFunc evaluates a trained model at a position for a given key
// (MAC). The core pipeline adapts its estimators to this signature. It
// must be safe for concurrent use: BuildMap fans cells out across a
// worker pool.
type PredictFunc func(pos geom.Vec3, keyIndex int) (float64, error)

// BatchPredictFunc evaluates a trained model at a run of positions for a
// given key, letting estimators amortise per-call overhead (buffer reuse,
// feature-vector assembly) over the whole batch. Element i of the result
// corresponds to centers[i]. Like PredictFunc it must be safe for
// concurrent use.
type BatchPredictFunc func(centers []geom.Vec3, keyIndex int) ([]float64, error)

// BuildOptions tunes map construction.
type BuildOptions struct {
	// Workers bounds concurrent cell evaluation; ≤ 0 means GOMAXPROCS.
	// Any worker count yields byte-identical maps: every cell's value
	// depends only on its own centre and key.
	Workers int
}

// TileCells is the fixed tile capacity in cells. Each key's cell run is
// cut into tiles of this size (the last tile of a key may be shorter).
// Tiles are the unit of copy-on-write sharing between snapshot
// generations and the unit of the binary codec's tile table. Power of
// two, so the query path resolves a cell with a shift and a mask.
const TileCells = 256

const (
	tileShift = 8
	tileMask  = TileCells - 1
)

// Map is a fine-grained 3-D REM: a regular grid of predicted signal
// strengths per beacon source over a volume. A built Map is immutable and
// safe for concurrent queries.
//
// Storage is tiled: each key's nx·ny·nz cell run is split into fixed-size
// tiles (TileCells), laid out per key in cell order. RebuildKeys derives a
// new Map that shares every tile of untouched keys with its parent, so an
// incremental snapshot costs memory proportional to the dirty key set.
type Map struct {
	volume     geom.Cuboid
	nx, ny, nz int
	// stride is the per-key cell count (nx·ny·nz), hoisted at build time
	// so the per-query index math never recomputes it.
	stride int
	// tilesPerKey is ⌈stride / TileCells⌉, hoisted for the same reason.
	tilesPerKey int
	keys        []string
	// tiles[k*tilesPerKey + t][c] is the prediction for key k at flat cell
	// index t·TileCells + c.
	tiles [][]float64
	// version counts rebuild generations: 1 for a fresh build, parent+1
	// for every RebuildKeys derivation.
	version uint64
	// cover is the optional materialised coverage index (coverindex.go)
	// behind Strongest/CoverageAt/DarkRegions. nil means those queries
	// brute-scan every key. Loaded atomically so an index can be attached
	// (or dropped) while queries are in flight; it never changes a query
	// result, only its cost, and is ignored by the codec and by Equal.
	cover atomic.Pointer[coverIndex]
	// coverMended / coverMendNs record the last index mend applied while
	// deriving this map (RebuildKeys, ApplyDelta): how many cubes were
	// re-filtered and how long the mend took. Build provenance for the
	// observability layer — written before the map becomes visible, zero
	// for from-scratch builds, ignored by the codec and by Equal.
	coverMended int
	coverMendNs int64
}

// CoverMendStats returns the coverage-index mend provenance of this
// map's derivation: the number of cubes the mend re-filtered and the
// mend duration. Both are zero for maps whose index was built from
// scratch (or never built).
func (m *Map) CoverMendStats() (mendedCubes int, d time.Duration) {
	return m.coverMended, time.Duration(m.coverMendNs)
}

// cells returns the per-key cell count (the hoisted stride).
func (m *Map) cells() int { return m.stride }

// val returns the stored prediction for key ki at flat cell index idx.
func (m *Map) val(ki, idx int) float64 {
	return m.tiles[ki*m.tilesPerKey+idx>>tileShift][idx&tileMask]
}

// setCell stores the prediction for key ki at flat cell index idx.
func (m *Map) setCell(ki, idx int, v float64) {
	m.tiles[ki*m.tilesPerKey+idx>>tileShift][idx&tileMask] = v
}

// copyRange scatters vals into the tiles of key ki starting at flat cell
// index lo, crossing tile boundaries as needed.
func (m *Map) copyRange(ki, lo int, vals []float64) {
	for len(vals) > 0 {
		tile := m.tiles[ki*m.tilesPerKey+lo>>tileShift]
		n := copy(tile[lo&tileMask:], vals)
		vals = vals[n:]
		lo += n
	}
}

// tileLen returns the cell count of per-key tile t (the trailing tile of
// a key may be shorter than TileCells).
func (m *Map) tileLen(t int) int {
	if n := m.stride - t*TileCells; n < TileCells {
		return n
	}
	return TileCells
}

// allocKey gives key ki fresh tile storage, detaching it from any parent
// snapshot the tile headers were copied from.
func (m *Map) allocKey(ki int) {
	for t := 0; t < m.tilesPerKey; t++ {
		m.tiles[ki*m.tilesPerKey+t] = make([]float64, m.tileLen(t))
	}
}

// newShell validates the grid and returns a Map with dimensions, keys and
// tile geometry set but no tile storage allocated.
func newShell(volume geom.Cuboid, nx, ny, nz int, keys []string) (*Map, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("rem: grid resolution %dx%dx%d invalid", nx, ny, nz)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("rem: map needs at least one key")
	}
	stride := nx * ny * nz
	m := &Map{
		volume: volume,
		nx:     nx, ny: ny, nz: nz,
		stride:      stride,
		tilesPerKey: (stride + TileCells - 1) / TileCells,
		keys:        append([]string(nil), keys...),
		version:     1,
	}
	m.tiles = make([][]float64, len(keys)*m.tilesPerKey)
	return m, nil
}

// BuildMap evaluates the model over an nx × ny × nz grid of cell centres
// with default options (one worker per CPU).
func BuildMap(volume geom.Cuboid, nx, ny, nz int, keys []string, predict PredictFunc) (*Map, error) {
	return BuildMapOpts(volume, nx, ny, nz, keys, predict, BuildOptions{})
}

// BuildMapOpts evaluates the model over the grid on a bounded worker
// pool. The first predictor error cancels outstanding work.
func BuildMapOpts(volume geom.Cuboid, nx, ny, nz int, keys []string, predict PredictFunc, opts BuildOptions) (*Map, error) {
	if predict == nil {
		return nil, fmt.Errorf("rem: map needs a predictor")
	}
	return buildMap(volume, nx, ny, nz, keys, opts, func(m *Map, ki, lo, hi int) error {
		for idx := lo; idx < hi; idx++ {
			p := m.cellCenter(idx%nx, (idx/nx)%ny, idx/(nx*ny))
			v, err := predict(p, ki)
			if err != nil {
				return fmt.Errorf("rem: predicting %s at %v: %w", m.keys[ki], p, err)
			}
			m.setCell(ki, idx, v)
		}
		return nil
	})
}

// BuildMapBatch is BuildMapOpts over the batched predictor contract: each
// worker hands its whole contiguous run of cell centres to the model in
// one call.
func BuildMapBatch(volume geom.Cuboid, nx, ny, nz int, keys []string, predict BatchPredictFunc, opts BuildOptions) (*Map, error) {
	if predict == nil {
		return nil, fmt.Errorf("rem: map needs a predictor")
	}
	return buildMap(volume, nx, ny, nz, keys, opts, batchFill(predict))
}

// batchFill adapts a batch predictor to the tile-at-a-time fill contract
// shared by from-scratch builds and incremental rebuilds.
func batchFill(predict BatchPredictFunc) func(m *Map, ki, lo, hi int) error {
	return func(m *Map, ki, lo, hi int) error {
		centers := make([]geom.Vec3, hi-lo)
		for idx := lo; idx < hi; idx++ {
			centers[idx-lo] = m.cellCenter(idx%m.nx, (idx/m.nx)%m.ny, idx/(m.nx*m.ny))
		}
		vals, err := predict(centers, ki)
		if err != nil {
			return fmt.Errorf("rem: predicting %s over %d cells: %w", m.keys[ki], len(centers), err)
		}
		if len(vals) != len(centers) {
			return fmt.Errorf("rem: batch predictor returned %d values for %d cells", len(vals), len(centers))
		}
		m.copyRange(ki, lo, vals)
		return nil
	}
}

// buildMap validates the grid, allocates every key's tiles, then fans
// per-key contiguous cell chunks out across the pool; fill writes values
// for cells [lo, hi) of key ki.
func buildMap(volume geom.Cuboid, nx, ny, nz int, keys []string, opts BuildOptions, fill func(m *Map, ki, lo, hi int) error) (*Map, error) {
	m, err := newShell(volume, nx, ny, nz, keys)
	if err != nil {
		return nil, err
	}
	for ki := range m.keys {
		m.allocKey(ki)
	}
	// Chunks never span keys, so batch predictors see a single key per
	// call; the flat (key, cell) space is chunked for load balance.
	cells := m.stride
	err = parallel.ForEachChunk(len(keys)*cells, opts.Workers, func(lo, hi int) error {
		for lo < hi {
			ki := lo / cells
			end := (ki + 1) * cells
			if end > hi {
				end = hi
			}
			if err := fill(m, ki, lo-ki*cells, end-ki*cells); err != nil {
				return err
			}
			lo = end
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Volume returns the mapped volume.
func (m *Map) Volume() geom.Cuboid { return m.volume }

// Keys returns the mapped beacon sources.
func (m *Map) Keys() []string { return m.keys }

// Resolution returns the grid dimensions.
func (m *Map) Resolution() (nx, ny, nz int) { return m.nx, m.ny, m.nz }

// cellCenter returns the centre of cell (ix, iy, iz).
func (m *Map) cellCenter(ix, iy, iz int) geom.Vec3 {
	s := m.volume.Size()
	return geom.V(
		m.volume.Min.X+(float64(ix)+0.5)*s.X/float64(m.nx),
		m.volume.Min.Y+(float64(iy)+0.5)*s.Y/float64(m.ny),
		m.volume.Min.Z+(float64(iz)+0.5)*s.Z/float64(m.nz),
	)
}

// KeyIndex returns the index of a key, or -1.
func (m *Map) KeyIndex(key string) int {
	for i, k := range m.keys {
		if k == key {
			return i
		}
	}
	return -1
}

// At returns the trilinearly interpolated prediction for the key at p,
// clamping p into the volume.
func (m *Map) At(key string, p geom.Vec3) (float64, error) {
	ki := m.KeyIndex(key)
	if ki < 0 {
		return 0, fmt.Errorf("%w %q", ErrUnknownKey, key)
	}
	return m.at(ki, p), nil
}

func (m *Map) at(ki int, p geom.Vec3) float64 {
	return m.interpolate(ki, m.locate(p))
}

// cubeLoc is a resolved query position: the interpolation cube's low
// corner (cell indices) plus the fractional offsets along each axis.
// locate depends only on the point, so one resolution can be shared by
// any number of per-key interpolate calls at the same point.
type cubeLoc struct {
	ix0, iy0, iz0 int
	tx, ty, tz    float64
}

// locate clamps p into the volume and resolves its interpolation cube.
func (m *Map) locate(p geom.Vec3) cubeLoc {
	p = m.volume.Clamp(p)
	s := m.volume.Size()
	// Continuous cell coordinates of the query relative to cell centres.
	fx := (p.X-m.volume.Min.X)/s.X*float64(m.nx) - 0.5
	fy := (p.Y-m.volume.Min.Y)/s.Y*float64(m.ny) - 0.5
	fz := (p.Z-m.volume.Min.Z)/s.Z*float64(m.nz) - 0.5
	var l cubeLoc
	l.ix0, l.tx = splitIndex(fx, m.nx)
	l.iy0, l.ty = splitIndex(fy, m.ny)
	l.iz0, l.tz = splitIndex(fz, m.nz)
	return l
}

// interpolate evaluates key ki at a resolved location: the 8-corner
// trilinear sum over the cube, clamped at the grid edge.
func (m *Map) interpolate(ki int, l cubeLoc) float64 {
	val := 0.0
	for dz := 0; dz <= 1; dz++ {
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				w := lerpW(l.tx, dx) * lerpW(l.ty, dy) * lerpW(l.tz, dz)
				ix := clampIdx(l.ix0+dx, m.nx)
				iy := clampIdx(l.iy0+dy, m.ny)
				iz := clampIdx(l.iz0+dz, m.nz)
				val += w * m.val(ki, ix+m.nx*(iy+m.ny*iz))
			}
		}
	}
	return val
}

func splitIndex(f float64, n int) (int, float64) {
	i := int(math.Floor(f))
	t := f - float64(i)
	if i < 0 {
		return 0, 0
	}
	if i >= n-1 {
		return n - 1, 0
	}
	return i, t
}

func lerpW(t float64, d int) float64 {
	if d == 0 {
		return 1 - t
	}
	return t
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Strongest returns the key with the highest predicted RSS at p and that
// value. With a coverage index attached (BuildCoverIndex) only the
// point's cube candidates are interpolated; the result is bit-identical
// to the brute scan either way (rule 9).
func (m *Map) Strongest(p geom.Vec3) (string, float64) {
	if ci := m.cover.Load(); ci != nil {
		return m.strongestIndexed(ci, m.locate(p))
	}
	return m.StrongestBrute(p)
}

// StrongestBrute is the unindexed O(keys) scan behind Strongest — the
// pre-index code path, kept callable as the opt-out and as the test
// oracle the coverage index is quickchecked against.
func (m *Map) StrongestBrute(p geom.Vec3) (string, float64) {
	best, bestVal := "", math.Inf(-1)
	for ki, key := range m.keys {
		if v := m.at(ki, p); v > bestVal {
			best, bestVal = key, v
		}
	}
	return best, bestVal
}

// CoverageAt returns the best available RSS at p across all keys.
func (m *Map) CoverageAt(p geom.Vec3) float64 {
	_, v := m.Strongest(p)
	return v
}

// DarkCell is one grid cell whose best coverage falls below a threshold —
// the "dark connectivity regions" the paper's intro proposes REMs to find.
type DarkCell struct {
	// Center is the cell centre.
	Center geom.Vec3
	// BestRSS is the strongest predicted signal there.
	BestRSS float64
}

// DarkRegions lists all cells whose best coverage is below thresholdDBm,
// worst first. With a coverage index attached, each cell's max scans only
// its cube's candidates: the cell is the cube's own low corner, so the
// cube candidate set soundly covers the cell maximum (a NaN cell value
// never wins the strict > either way).
func (m *Map) DarkRegions(thresholdDBm float64) []DarkCell {
	ci := m.cover.Load()
	if ci == nil {
		return m.DarkRegionsBrute(thresholdDBm)
	}
	var out []DarkCell
	for iz := 0; iz < m.nz; iz++ {
		for iy := 0; iy < m.ny; iy++ {
			for ix := 0; ix < m.nx; ix++ {
				best := math.Inf(-1)
				idx := ix + m.nx*(iy+m.ny*iz)
				best = m.cellMaxIndexed(ci, idx, best)
				if best < thresholdDBm {
					out = append(out, DarkCell{Center: m.cellCenter(ix, iy, iz), BestRSS: best})
				}
			}
		}
	}
	sortDarkWorstFirst(out)
	return out
}

// DarkRegionsBrute is the unindexed O(keys)-per-cell scan behind
// DarkRegions — the opt-out path and the oracle the index is checked
// against.
func (m *Map) DarkRegionsBrute(thresholdDBm float64) []DarkCell {
	var out []DarkCell
	for iz := 0; iz < m.nz; iz++ {
		for iy := 0; iy < m.ny; iy++ {
			for ix := 0; ix < m.nx; ix++ {
				p := m.cellCenter(ix, iy, iz)
				best := math.Inf(-1)
				idx := ix + m.nx*(iy+m.ny*iz)
				for ki := range m.keys {
					if v := m.val(ki, idx); v > best {
						best = v
					}
				}
				if best < thresholdDBm {
					out = append(out, DarkCell{Center: p, BestRSS: best})
				}
			}
		}
	}
	sortDarkWorstFirst(out)
	return out
}

// sortDarkWorstFirst orders dark cells worst (lowest best-RSS) first,
// with the stable insertion sort both scan paths share.
func sortDarkWorstFirst(out []DarkCell) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].BestRSS < out[j-1].BestRSS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// CoverageFraction returns the fraction of cells whose best coverage meets
// thresholdDBm.
func (m *Map) CoverageFraction(thresholdDBm float64) float64 {
	total := m.stride
	dark := len(m.DarkRegions(thresholdDBm))
	return float64(total-dark) / float64(total)
}

// DarkRegionsFor lists the cells where one specific network's predicted RSS
// falls below thresholdDBm, worst first — the per-network view used when
// planning the extension of a particular infrastructure rather than
// any-network coverage.
func (m *Map) DarkRegionsFor(key string, thresholdDBm float64) ([]DarkCell, error) {
	ki := m.KeyIndex(key)
	if ki < 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownKey, key)
	}
	var out []DarkCell
	for iz := 0; iz < m.nz; iz++ {
		for iy := 0; iy < m.ny; iy++ {
			for ix := 0; ix < m.nx; ix++ {
				v := m.val(ki, ix+m.nx*(iy+m.ny*iz))
				if v < thresholdDBm {
					out = append(out, DarkCell{Center: m.cellCenter(ix, iy, iz), BestRSS: v})
				}
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].BestRSS < out[j-1].BestRSS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// CoverageFractionFor returns the fraction of cells where the given
// network's predicted RSS meets thresholdDBm.
func (m *Map) CoverageFractionFor(key string, thresholdDBm float64) (float64, error) {
	dark, err := m.DarkRegionsFor(key, thresholdDBm)
	if err != nil {
		return 0, err
	}
	total := m.stride
	return float64(total-len(dark)) / float64(total), nil
}

// WriteCSV exports the map as one row per (cell, key):
// x,y,z,key,rssi.
func (m *Map) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "z", "key", "rss_dbm"}); err != nil {
		return fmt.Errorf("rem: writing header: %w", err)
	}
	for ki, key := range m.keys {
		for iz := 0; iz < m.nz; iz++ {
			for iy := 0; iy < m.ny; iy++ {
				for ix := 0; ix < m.nx; ix++ {
					p := m.cellCenter(ix, iy, iz)
					v := m.val(ki, ix+m.nx*(iy+m.ny*iz))
					rec := []string{
						strconv.FormatFloat(p.X, 'f', 3, 64),
						strconv.FormatFloat(p.Y, 'f', 3, 64),
						strconv.FormatFloat(p.Z, 'f', 3, 64),
						key,
						strconv.FormatFloat(v, 'f', 2, 64),
					}
					if err := cw.Write(rec); err != nil {
						return fmt.Errorf("rem: writing row: %w", err)
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
