package rem

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// This file is the batched query side of the Map: AtBatch/AtBatchInto
// resolve the key lookup once and stream cells for a whole run of points,
// and StrongestBatch walks the tiles key-outer so every key's cells are
// visited with cache locality. Both are bit-identical to their point-wise
// counterparts (At / Strongest per point) — the batch paths change only
// where the per-query overhead is paid, never a single output bit, which
// is what lets callers (the store fronts, examples, benchmarks) switch
// freely between them.

// AtBatch returns the trilinearly interpolated prediction for the key at
// every point, clamping each point into the volume. Element i of the
// result corresponds to pts[i] and is bit-identical to At(key, pts[i]);
// the key is resolved once for the whole batch.
func (m *Map) AtBatch(key string, pts []geom.Vec3) ([]float64, error) {
	out := make([]float64, len(pts))
	if err := m.AtBatchInto(out, key, pts); err != nil {
		return nil, err
	}
	return out, nil
}

// AtBatchInto is AtBatch into a caller-owned buffer (no allocation):
// dst[i] receives the prediction at pts[i]. len(dst) must equal
// len(pts).
func (m *Map) AtBatchInto(dst []float64, key string, pts []geom.Vec3) error {
	if len(dst) != len(pts) {
		return fmt.Errorf("rem: batch destination holds %d values for %d points", len(dst), len(pts))
	}
	ki := m.KeyIndex(key)
	if ki < 0 {
		return fmt.Errorf("%w %q", ErrUnknownKey, key)
	}
	for i, p := range pts {
		dst[i] = m.at(ki, p)
	}
	return nil
}

// StrongestBatch returns, for every point, the key with the highest
// predicted RSS there and that value — element i is exactly what
// Strongest(pts[i]) returns (same strict-> comparison in vocabulary
// order, so ties resolve to the earliest key either way). The iteration
// is key-outer: each key's tiles are streamed once across the whole
// batch instead of once per point.
func (m *Map) StrongestBatch(pts []geom.Vec3) ([]string, []float64) {
	keys := make([]string, len(pts))
	vals := make([]float64, len(pts))
	m.strongestBatchInto(keys, vals, pts)
	return keys, vals
}

// StrongestBatchInto is StrongestBatch into caller-owned buffers.
func (m *Map) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) error {
	if len(keys) != len(pts) || len(vals) != len(pts) {
		return fmt.Errorf("rem: batch destinations hold %d keys / %d values for %d points", len(keys), len(vals), len(pts))
	}
	m.strongestBatchInto(keys, vals, pts)
	return nil
}

func (m *Map) strongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) {
	ci := m.cover.Load()
	if ci == nil {
		m.strongestBatchBruteInto(keys, vals, pts)
		return
	}
	// Point-outer with the index: each point resolves its cube once and
	// interpolates only that cube's candidates, in vocabulary order with
	// the same strict > — so the winners match the brute path bit for bit
	// (rule 9) while the work per point drops from keys to candidates.
	for i, p := range pts {
		keys[i], vals[i] = m.strongestIndexed(ci, m.locate(p))
	}
}

// StrongestBatchBruteInto is the unindexed key-outer scan behind
// StrongestBatchInto — the pre-index code path, kept callable as the
// opt-out and as the oracle the coverage index is quickchecked against.
func (m *Map) StrongestBatchBruteInto(keys []string, vals []float64, pts []geom.Vec3) error {
	if len(keys) != len(pts) || len(vals) != len(pts) {
		return fmt.Errorf("rem: batch destinations hold %d keys / %d values for %d points", len(keys), len(vals), len(pts))
	}
	m.strongestBatchBruteInto(keys, vals, pts)
	return nil
}

func (m *Map) strongestBatchBruteInto(keys []string, vals []float64, pts []geom.Vec3) {
	for i := range vals {
		keys[i] = ""
		vals[i] = math.Inf(-1)
	}
	// Key-outer, point-inner: the per-point winner update uses the same
	// strict > that Strongest's key loop uses, and keys are visited in
	// the same vocabulary order, so the selected (key, value) pairs are
	// identical to the point-wise path.
	for ki, key := range m.keys {
		for i, p := range pts {
			if v := m.at(ki, p); v > vals[i] {
				keys[i], vals[i] = key, v
			}
		}
	}
}
