package rem

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// queryField is the deterministic per-key field the query tests build
// from. It depends only on the key's identity ("a" → 0, "b" → 1, …) and
// the position — never on the key's index within a particular build —
// so a map over any key subset holds bit-identical cells to the full
// build. Key "b" carries a NaN pocket (position-based, so batch/chunk
// boundaries cannot move it) exercising the bit-level comparisons.
func queryField(key string, p geom.Vec3) float64 {
	gi := float64(key[0] - 'a')
	if key == "b" && p.X < 0.5 && p.Y < 0.5 && p.Z < 0.5 {
		return math.NaN()
	}
	return -60 - p.X*(1+float64(int(gi)%3)) - 2*p.Y + p.Z*gi - gi
}

// queryTestMap builds a map over the given keys from queryField: each
// key has a distinct planar field so Strongest winners vary across the
// volume.
func queryTestMap(t testing.TB, keys []string) *Map {
	t.Helper()
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	m, err := BuildMapBatch(vol, 7, 5, 4, keys, func(centers []geom.Vec3, ki int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = queryField(keys[ki], p)
		}
		return out, nil
	}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func queryProbes(n int) []geom.Vec3 {
	rng := simrand.New(4321)
	pts := make([]geom.Vec3, n)
	for i := range pts {
		// Include points outside the volume so clamping is exercised.
		pts[i] = geom.V(rng.Range(-0.5, 4.5), rng.Range(-0.5, 3.5), rng.Range(-0.3, 3))
	}
	return pts
}

// TestAtBatchMatchesAt: the batch path answers bit-identically to the
// point-wise path for every key, including NaN cells.
func TestAtBatchMatchesAt(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	m := queryTestMap(t, keys)
	pts := queryProbes(97)
	for _, key := range keys {
		got, err := m.AtBatch(key, pts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("AtBatch returned %d values for %d points", len(got), len(pts))
		}
		for i, p := range pts {
			want, err := m.At(key, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("key %s point %d: AtBatch = %v, At = %v", key, i, got[i], want)
			}
		}
	}
	// Into variant shares the same bits and validates its buffer.
	dst := make([]float64, len(pts))
	if err := m.AtBatchInto(dst, "c", pts); err != nil {
		t.Fatal(err)
	}
	want, _ := m.AtBatch("c", pts)
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
			t.Fatalf("AtBatchInto differs at %d", i)
		}
	}
	if err := m.AtBatchInto(dst[:1], "c", pts); err == nil {
		t.Fatal("short destination accepted")
	}
	if _, err := m.AtBatch("nope", pts); err == nil {
		t.Fatal("unknown key accepted")
	}
}

// TestStrongestBatchMatchesStrongest: per-point winners and values match
// the point-wise path exactly, ties and NaNs included.
func TestStrongestBatchMatchesStrongest(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	m := queryTestMap(t, keys)
	pts := queryProbes(97)
	gotK, gotV := m.StrongestBatch(pts)
	for i, p := range pts {
		wantK, wantV := m.Strongest(p)
		if gotK[i] != wantK || math.Float64bits(gotV[i]) != math.Float64bits(wantV) {
			t.Fatalf("point %d: StrongestBatch = (%s, %v), Strongest = (%s, %v)", i, gotK[i], gotV[i], wantK, wantV)
		}
	}
	ks := make([]string, len(pts))
	vs := make([]float64, len(pts))
	if err := m.StrongestBatchInto(ks, vs, pts); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if ks[i] != gotK[i] || math.Float64bits(vs[i]) != math.Float64bits(gotV[i]) {
			t.Fatalf("StrongestBatchInto differs at %d", i)
		}
	}
	if err := m.StrongestBatchInto(ks[:1], vs, pts); err == nil {
		t.Fatal("short destination accepted")
	}
}

// TestStrongestBatchTies: equal values resolve to the earliest key in
// vocabulary order on both paths.
func TestStrongestBatchTies(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	keys := []string{"x", "y", "z"}
	m, err := BuildMapBatch(vol, 3, 3, 2, keys, func(centers []geom.Vec3, ki int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range out {
			out[i] = -50 // every key identical everywhere
		}
		return out, nil
	}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := queryProbes(11)
	ks, vs := m.StrongestBatch(pts)
	for i, p := range pts {
		wk, wv := m.Strongest(p)
		if ks[i] != "x" || ks[i] != wk || vs[i] != wv {
			t.Fatalf("tie at %d resolved to %q (point-wise %q)", i, ks[i], wk)
		}
	}
}

// TestMergeRoundTrip is rule 8 at the map layer: splitting a map's keys
// across parts and merging them back yields a byte-identical map, for
// several partitions including out-of-order and singleton parts.
func TestMergeRoundTrip(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	m := queryTestMap(t, keys)
	subMap := func(sel ...string) *Map {
		sm := queryTestMap(t, sel)
		return sm
	}
	partitions := [][][]string{
		{{"a", "b", "c", "d", "e"}},
		{{"a", "c", "e"}, {"b", "d"}},
		{{"e", "a"}, {"d"}, {"b", "c"}}, // parts hold keys out of vocabulary order
		{{"a"}, {"b"}, {"c"}, {"d"}, {"e"}},
	}
	for pi, partition := range partitions {
		parts := make([]*Map, len(partition))
		for i, sel := range partition {
			parts[i] = subMap(sel...)
		}
		merged, err := Merge(keys, parts)
		if err != nil {
			t.Fatalf("partition %d: %v", pi, err)
		}
		if !merged.Equal(m) {
			t.Fatalf("partition %d: merged map differs from the monolithic build", pi)
		}
	}
}

// TestMergeSharesTiles: merging copies tile headers, not tile data.
func TestMergeSharesTiles(t *testing.T) {
	a := queryTestMap(t, []string{"a", "b"})
	c := queryTestMap(t, []string{"c"})
	merged, err := Merge([]string{"a", "b", "c"}, []*Map{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.SharedTiles(merged); got != merged.NumTiles() {
		t.Fatalf("self-share = %d, want %d", got, merged.NumTiles())
	}
	// Every merged tile aliases a part tile.
	shared := 0
	for _, part := range []*Map{a, c} {
		for _, pt := range part.tiles {
			for _, mt := range merged.tiles {
				if len(pt) > 0 && len(mt) > 0 && &pt[0] == &mt[0] {
					shared++
					break
				}
			}
		}
	}
	if shared != merged.NumTiles() {
		t.Fatalf("merged aliases %d of %d part tiles", shared, merged.NumTiles())
	}
}

// TestMergeValidation: bad partitions are rejected.
func TestMergeValidation(t *testing.T) {
	ab := queryTestMap(t, []string{"a", "b"})
	bc := queryTestMap(t, []string{"b", "c"})
	c := queryTestMap(t, []string{"c"})
	if _, err := Merge([]string{"a", "b", "c"}, []*Map{ab, bc}); err == nil {
		t.Fatal("duplicate key across parts accepted")
	}
	if _, err := Merge([]string{"a", "b", "c"}, []*Map{ab}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := Merge([]string{"a", "b"}, []*Map{ab, c}); err == nil {
		t.Fatal("extra part key accepted")
	}
	if _, err := Merge(nil, []*Map{ab}); err == nil {
		t.Fatal("empty order accepted")
	}
	if _, err := Merge([]string{"a", "b"}, nil); err == nil {
		t.Fatal("no parts accepted")
	}
	if _, err := Merge([]string{"a", "a"}, []*Map{ab}); err == nil {
		t.Fatal("duplicate order key accepted")
	}
	// Geometry mismatches.
	other, err := BuildMapBatch(geom.MustCuboid(geom.V(9, 9, 9), 4, 3, 2.6), 7, 5, 4, []string{"c"},
		func(centers []geom.Vec3, ki int) ([]float64, error) { return make([]float64, len(centers)), nil },
		BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]string{"a", "b", "c"}, []*Map{ab, other}); err == nil {
		t.Fatal("volume mismatch accepted")
	}
	coarse, err := BuildMapBatch(geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6), 3, 3, 2, []string{"c"},
		func(centers []geom.Vec3, ki int) ([]float64, error) { return make([]float64, len(centers)), nil },
		BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]string{"a", "b", "c"}, []*Map{ab, coarse}); err == nil {
		t.Fatal("resolution mismatch accepted")
	}
}
