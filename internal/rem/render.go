package rem

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/geom"
)

// Slice is a horizontal cut through the REM at a fixed height: a 2-D field
// of predicted RSS for one key, ready for rendering or export.
type Slice struct {
	// Key is the beacon source the slice shows.
	Key string
	// Z is the cut height in metres.
	Z float64
	// Nx, Ny are the raster dimensions.
	Nx, Ny int
	// Values is row-major: Values[iy*Nx+ix], with iy=0 at Min.Y.
	Values []float64
	// Min, Max are the value extremes over the slice.
	Min, Max float64
	volume   geom.Cuboid
}

// SliceAt samples the map for one key on an nx × ny raster at height z.
func (m *Map) SliceAt(key string, z float64, nx, ny int) (*Slice, error) {
	ki := m.KeyIndex(key)
	if ki < 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownKey, key)
	}
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("rem: slice raster %dx%d invalid", nx, ny)
	}
	s := &Slice{
		Key: key, Z: z, Nx: nx, Ny: ny,
		Values: make([]float64, nx*ny),
		Min:    math.Inf(1), Max: math.Inf(-1),
		volume: m.volume,
	}
	size := m.volume.Size()
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := geom.V(
				m.volume.Min.X+(float64(ix)+0.5)*size.X/float64(nx),
				m.volume.Min.Y+(float64(iy)+0.5)*size.Y/float64(ny),
				z,
			)
			v := m.at(ki, p)
			s.Values[iy*nx+ix] = v
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	}
	return s, nil
}

// heatRamp maps intensity (0 weakest .. 1 strongest) to ASCII shades.
const heatRamp = " .:-=+*#%@"

// Render writes the slice as an ASCII heatmap with a dBm legend, y
// increasing upward (map convention).
func (s *Slice) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "REM slice for %s at z=%.2f m  (%.1f dBm '%c' .. %.1f dBm '%c')\n",
		s.Key, s.Z, s.Min, heatRamp[0], s.Max, heatRamp[len(heatRamp)-1]); err != nil {
		return err
	}
	span := s.Max - s.Min
	var b strings.Builder
	for iy := s.Ny - 1; iy >= 0; iy-- {
		b.Reset()
		for ix := 0; ix < s.Nx; ix++ {
			v := s.Values[iy*s.Nx+ix]
			t := 0.0
			if span > 0 {
				t = (v - s.Min) / span
			}
			idx := int(t * float64(len(heatRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			b.WriteByte(heatRamp[idx])
		}
		if _, err := fmt.Fprintf(w, "y=%4.1f |%s|\n", s.volume.Min.Y+(float64(iy)+0.5)*s.volume.Size().Y/float64(s.Ny), b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "        x: %.1f → %.1f m\n", s.volume.Min.X, s.volume.Max.X)
	return err
}
