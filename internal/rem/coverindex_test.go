package rem

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// Quickchecks for determinism rule 9 (indexed ≡ scan): the coverage
// index must reproduce the brute O(keys) scan bit-for-bit — winner key,
// winner value bits, dark-cell lists — on maps salted with cross-key
// ties, NaN and ±Inf cells, and must keep doing so across the index's
// whole lifecycle: fresh build, RebuildKeys mends, ApplyDelta mends,
// and shard Merge reassembly.

// gnarlyPredict returns a pure (position, key) → value function drawing
// from a quantised palette (so exact cross-key ties are common) salted
// with NaN and ±Inf cells. Purity keeps builds deterministic under any
// chunking; salt varies the field between generations.
func gnarlyPredict(salt uint64) BatchPredictFunc {
	return func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			h := math.Float64bits(p.X*3.1+p.Y*1.7+p.Z) ^ uint64(k)*0x9E3779B97F4A7C15 ^ salt
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
			switch h % 29 {
			case 0:
				out[i] = math.NaN()
			case 1:
				out[i] = math.Inf(1)
			case 2:
				out[i] = math.Inf(-1)
			default:
				out[i] = -100 + float64((h/29)%14)*4.5
			}
		}
		return out, nil
	}
}

// gnarlyMap builds a random-geometry map through gnarlyPredict.
func gnarlyMap(t *testing.T, rng *simrand.Source, salt uint64) *Map {
	t.Helper()
	nx, ny, nz := 1+rng.Intn(6), 1+rng.Intn(5), 1+rng.Intn(4)
	nKeys := 1 + rng.Intn(9)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	vol := geom.MustCuboid(geom.V(rng.Range(-3, 0), rng.Range(-3, 0), 0), rng.Range(1, 5), rng.Range(1, 5), rng.Range(1, 3))
	m, err := BuildMapBatch(vol, nx, ny, nz, keys, gnarlyPredict(salt), BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// quickcheckPoints mixes interior points, out-of-volume points (the
// clamping path), exact cell centres and cube-face midpoints (where
// interpolation weights hit exactly 0 and 1).
func quickcheckPoints(rng *simrand.Source, m *Map, n int) []geom.Vec3 {
	vol := m.Volume()
	s := vol.Size()
	nx, ny, nz := m.Resolution()
	pts := make([]geom.Vec3, n)
	for i := range pts {
		switch rng.Intn(4) {
		case 0:
			pts[i] = geom.V(vol.Min.X+rng.Float64()*s.X, vol.Min.Y+rng.Float64()*s.Y, vol.Min.Z+rng.Float64()*s.Z)
		case 1:
			pts[i] = geom.V(vol.Max.X+rng.Range(0, 2), vol.Min.Y-rng.Range(0, 2), vol.Max.Z+rng.Range(0, 1))
		case 2:
			pts[i] = m.cellCenter(rng.Intn(nx), rng.Intn(ny), rng.Intn(nz))
		default:
			c := m.cellCenter(rng.Intn(nx), rng.Intn(ny), rng.Intn(nz))
			pts[i] = geom.V(c.X+0.5*s.X/float64(nx), c.Y, c.Z+0.5*s.Z/float64(nz))
		}
	}
	return pts
}

// requireRule9 asserts indexed ≡ brute, bit for bit, on point queries,
// batch queries and dark-region sweeps.
func requireRule9(t *testing.T, rng *simrand.Source, m *Map, tag string) {
	t.Helper()
	if !m.HasCoverIndex() {
		t.Fatalf("%s: map lost its coverage index", tag)
	}
	pts := quickcheckPoints(rng, m, 48)
	for _, p := range pts {
		ik, iv := m.Strongest(p)
		bk, bv := m.StrongestBrute(p)
		if ik != bk || math.Float64bits(iv) != math.Float64bits(bv) {
			t.Fatalf("%s: Strongest(%v) indexed (%q, %x) != brute (%q, %x)",
				tag, p, ik, math.Float64bits(iv), bk, math.Float64bits(bv))
		}
		if cv := m.CoverageAt(p); math.Float64bits(cv) != math.Float64bits(bv) {
			t.Fatalf("%s: CoverageAt(%v) %x != brute %x", tag, p, math.Float64bits(cv), math.Float64bits(bv))
		}
	}
	n := len(pts)
	ik, iv := make([]string, n), make([]float64, n)
	bk, bv := make([]string, n), make([]float64, n)
	if err := m.StrongestBatchInto(ik, iv, pts); err != nil {
		t.Fatal(err)
	}
	if err := m.StrongestBatchBruteInto(bk, bv, pts); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if ik[i] != bk[i] || math.Float64bits(iv[i]) != math.Float64bits(bv[i]) {
			t.Fatalf("%s: batch point %d indexed (%q, %x) != brute (%q, %x)",
				tag, i, ik[i], math.Float64bits(iv[i]), bk[i], math.Float64bits(bv[i]))
		}
	}
	for _, thr := range []float64{math.Inf(-1), -120, -75, -40, 0, math.Inf(1)} {
		di := m.DarkRegions(thr)
		db := m.DarkRegionsBrute(thr)
		if len(di) != len(db) {
			t.Fatalf("%s: DarkRegions(%v) indexed %d cells, brute %d", tag, thr, len(di), len(db))
		}
		for i := range di {
			if di[i].Center != db[i].Center || math.Float64bits(di[i].BestRSS) != math.Float64bits(db[i].BestRSS) {
				t.Fatalf("%s: DarkRegions(%v) cell %d indexed %+v != brute %+v", tag, thr, i, di[i], db[i])
			}
		}
	}
}

// TestCoverIndexQuickcheck: a freshly built index reproduces the brute
// scan bit-for-bit on random maps with ties and non-finite cells.
func TestCoverIndexQuickcheck(t *testing.T) {
	rng := simrand.New(4242)
	for trial := 0; trial < 40; trial++ {
		m := gnarlyMap(t, rng, uint64(trial)*17)
		m.BuildCoverIndex()
		requireRule9(t, rng, m, fmt.Sprintf("trial %d", trial))
		st, ok := m.CoverIndexStats()
		if !ok || st.Cubes == 0 || st.Bytes == 0 {
			t.Fatalf("trial %d: implausible index stats %+v ok=%v", trial, st, ok)
		}
	}
}

// TestCoverIndexOptOut: dropping the index falls back to the brute scan
// with identical results, and rebuilding re-attaches it.
func TestCoverIndexOptOut(t *testing.T) {
	rng := simrand.New(77)
	m := gnarlyMap(t, rng, 5)
	m.BuildCoverIndex()
	p := quickcheckPoints(rng, m, 1)[0]
	ik, iv := m.Strongest(p)
	m.DropCoverIndex()
	if m.HasCoverIndex() {
		t.Fatal("index survived DropCoverIndex")
	}
	bk, bv := m.Strongest(p)
	if ik != bk || math.Float64bits(iv) != math.Float64bits(bv) {
		t.Fatalf("opt-out changed the answer: (%q, %v) != (%q, %v)", ik, iv, bk, bv)
	}
	m.BuildCoverIndex()
	if !m.HasCoverIndex() {
		t.Fatal("BuildCoverIndex did not re-attach")
	}
}

// TestCoverIndexMendRebuildKeys: rule 9 holds on generations derived by
// RebuildKeys, whose index is mended from the parent, across a chain of
// derivations (so looseness or staleness would accumulate and surface).
func TestCoverIndexMendRebuildKeys(t *testing.T) {
	rng := simrand.New(9001)
	for trial := 0; trial < 15; trial++ {
		m := gnarlyMap(t, rng, uint64(trial))
		m.BuildCoverIndex()
		for gen := 1; gen <= 3; gen++ {
			nKeys := len(m.Keys())
			var dirty []int
			for k := 0; k < nKeys; k++ {
				if rng.Intn(2) == 0 {
					dirty = append(dirty, k)
				}
			}
			next, err := m.RebuildKeys(dirty, gnarlyPredict(uint64(trial)*100+uint64(gen)), BuildOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !next.HasCoverIndex() {
				t.Fatalf("trial %d gen %d: mend did not carry the index forward", trial, gen)
			}
			requireRule9(t, rng, next, fmt.Sprintf("trial %d gen %d", trial, gen))
			m = next
		}
	}
}

// TestCoverIndexMendApplyDelta: rule 9 holds on a follower's generation
// derived by ApplyDelta, whose index is mended from the base using the
// delta's own changed-tile table.
func TestCoverIndexMendApplyDelta(t *testing.T) {
	rng := simrand.New(31337)
	for trial := 0; trial < 15; trial++ {
		base := gnarlyMap(t, rng, uint64(trial))
		base.BuildCoverIndex()
		nKeys := len(base.Keys())
		var dirty []int
		for k := 0; k < nKeys; k++ {
			if rng.Intn(3) == 0 {
				dirty = append(dirty, k)
			}
		}
		next, err := base.RebuildKeys(dirty, gnarlyPredict(uint64(trial)+999), BuildOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		delta, err := AppendDelta(nil, base, next)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := ApplyDelta(base, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !applied.HasCoverIndex() {
			t.Fatalf("trial %d: ApplyDelta did not mend the index", trial)
		}
		requireRule9(t, rng, applied, fmt.Sprintf("trial %d", trial))
		// The applied map is Equal to next, so its indexed answers must
		// also match next's answers bit-for-bit.
		for _, p := range quickcheckPoints(rng, applied, 16) {
			ak, av := applied.Strongest(p)
			nk, nv := next.Strongest(p)
			if ak != nk || math.Float64bits(av) != math.Float64bits(nv) {
				t.Fatalf("trial %d: applied (%q, %x) != next (%q, %x)", trial, ak, math.Float64bits(av), nk, math.Float64bits(nv))
			}
		}
	}
}

// TestCoverIndexMerge: a merged map reassembles its index from indexed
// parts (rule 9 against the merged brute scan), and stays unindexed —
// with identical query results — when any part lacks one.
func TestCoverIndexMerge(t *testing.T) {
	rng := simrand.New(555)
	for trial := 0; trial < 15; trial++ {
		nx, ny, nz := 1+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(3)
		vol := geom.MustCuboid(geom.V(-1, -1, 0), 3, 3, 2)
		nParts := 1 + rng.Intn(3)
		var order []string
		parts := make([]*Map, nParts)
		for pi := 0; pi < nParts; pi++ {
			nk := 1 + rng.Intn(4)
			keys := make([]string, nk)
			for i := range keys {
				keys[i] = fmt.Sprintf("p%d-%02d", pi, i)
			}
			order = append(order, keys...)
			p, err := BuildMapBatch(vol, nx, ny, nz, keys, gnarlyPredict(uint64(trial)*31+uint64(pi)), BuildOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			p.BuildCoverIndex()
			parts[pi] = p
		}
		// Interleave the order so part-local key order differs from the
		// merged vocabulary order.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		merged, err := Merge(order, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.HasCoverIndex() {
			t.Fatalf("trial %d: merge of indexed parts lost the index", trial)
		}
		requireRule9(t, rng, merged, fmt.Sprintf("trial %d", trial))

		// One unindexed part disables reassembly but changes no answer.
		parts[nParts-1].DropCoverIndex()
		plain, err := Merge(order, parts)
		if err != nil {
			t.Fatal(err)
		}
		if plain.HasCoverIndex() {
			t.Fatalf("trial %d: merge with an unindexed part built an index", trial)
		}
		for _, p := range quickcheckPoints(rng, merged, 16) {
			mk, mv := merged.Strongest(p)
			pk, pv := plain.Strongest(p)
			if mk != pk || math.Float64bits(mv) != math.Float64bits(pv) {
				t.Fatalf("trial %d: merged indexed (%q, %x) != unindexed (%q, %x)", trial, mk, math.Float64bits(mv), pk, math.Float64bits(pv))
			}
		}
	}
}

// TestCoverIndexSharing: a no-op rebuild shares the whole index with the
// parent, and a small dirty set keeps cell-tile sharing intact (the index
// rides the same copy-on-write discipline as cell tiles).
func TestCoverIndexSharing(t *testing.T) {
	m, err := BuildMapBatch(geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2), 12, 10, 6,
		[]string{"a", "b", "c", "d"}, gnarlyPredict(1), BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.BuildCoverIndex()
	same, err := m.RebuildKeys([]int{1}, gnarlyPredict(1), BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictor → no tile content changed → the child must
	// share the parent's index object outright.
	if same.cover.Load() != m.cover.Load() {
		t.Fatal("no-op rebuild did not share the parent's index")
	}
	next, err := m.RebuildKeys([]int{1}, gnarlyPredict(2), BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !next.HasCoverIndex() {
		t.Fatal("mend dropped the index")
	}
	rng := simrand.New(8)
	requireRule9(t, rng, next, "dirty-key mend")
}
