// Package rem turns trained estimators into queryable Radio Environmental
// Maps: dense 3-D prediction grids with trilinear interpolation, plus
// coverage analysis (dark-region detection, best-AP queries) for the
// network-planning and relay-placement use cases the paper's introduction
// motivates. It also provides two classic geostatistical interpolators —
// inverse-distance weighting and ordinary kriging with a fitted exponential
// variogram — as alternative estimators beyond the paper's kNN/NN set.
package rem

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
)

// IDW is an inverse-distance-weighting interpolator over xyz features.
type IDW struct {
	// Power is the distance exponent (2 is the classic choice).
	Power float64
	// Smoothing is added to every distance to avoid singularities and
	// control smoothness.
	Smoothing float64

	x [][]float64
	y []float64
}

var (
	_ ml.Estimator = (*IDW)(nil)
	_ ml.Named     = (*IDW)(nil)
)

// Name implements ml.Named.
func (w *IDW) Name() string { return fmt.Sprintf("IDW (p=%g)", w.Power) }

// Fit implements ml.Estimator.
func (w *IDW) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if w.Power <= 0 {
		return fmt.Errorf("rem: IDW power must be positive, got %g", w.Power)
	}
	if w.Smoothing < 0 {
		return fmt.Errorf("rem: IDW smoothing must be non-negative")
	}
	w.x = make([][]float64, len(x))
	for i, row := range x {
		w.x[i] = append([]float64(nil), row...)
	}
	w.y = append([]float64(nil), y...)
	return nil
}

// Predict implements ml.Estimator.
func (w *IDW) Predict(q []float64) (float64, error) {
	if w.x == nil {
		return 0, ml.ErrNotFitted
	}
	if len(q) != len(w.x[0]) {
		return 0, fmt.Errorf("rem: IDW query dim %d, want %d", len(q), len(w.x[0]))
	}
	var wSum, vSum float64
	for i, row := range w.x {
		d := dist(q, row) + w.Smoothing
		if d == 0 {
			return w.y[i], nil
		}
		wt := 1 / math.Pow(d, w.Power)
		wSum += wt
		vSum += wt * w.y[i]
	}
	return vSum / wSum, nil
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Kriging is an ordinary-kriging interpolator with an exponential variogram
// fitted to the training data. Intended for per-MAC use (small n); the
// kriging system is O(n³) to factor.
type Kriging struct {
	// Nugget is the variogram value at h→0 (measurement noise); negative
	// means "estimate from data".
	Nugget float64
	// MaxPoints caps the training size; larger sets are subsampled evenly
	// to bound the O(n³) solve.
	MaxPoints int

	x [][]float64
	y []float64
	// chol is the Cholesky factor of the covariance matrix C (SPD fast
	// path); lu is the seed's bordered variogram system, kept as a
	// fallback for variograms whose covariance assembly is not positive
	// definite.
	chol *mat.CholFactor
	lu   *mat.LU
	// cInvOne is C⁻¹·1 and oneCInvOne is 1ᵀC⁻¹1, precomputed once so each
	// Predict needs a single triangular solve.
	cInvOne    []float64
	oneCInvOne float64
	mean       float64
	sill       float64
	rng        float64
	nugget     float64
}

var (
	_ ml.Estimator = (*Kriging)(nil)
	_ ml.Named     = (*Kriging)(nil)
)

// Name implements ml.Named.
func (k *Kriging) Name() string { return "ordinary kriging (exponential variogram)" }

// variogram evaluates the fitted exponential model at lag h.
func (k *Kriging) variogram(h float64) float64 {
	if h <= 0 {
		return 0
	}
	return k.nugget + k.sill*(1-math.Exp(-h/k.rng))
}

// covariance is the model's covariance form C(h) = sill + nugget − γ(h):
// symmetric positive definite, so the kriging system factors with Cholesky
// at half the flop count of the seed's LU over the bordered variogram
// system.
func (k *Kriging) covariance(h float64) float64 {
	if h <= 0 {
		return k.nugget + k.sill
	}
	return k.sill * math.Exp(-h/k.rng)
}

// Fit implements ml.Estimator: it fits the variogram, assembles the ordinary
// kriging system and factors it once.
func (k *Kriging) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if len(x) < 3 {
		return fmt.Errorf("rem: kriging needs ≥3 points, got %d", len(x))
	}
	maxPts := k.MaxPoints
	if maxPts <= 0 {
		maxPts = 400
	}
	// Even subsample if oversized.
	if len(x) > maxPts {
		step := float64(len(x)) / float64(maxPts)
		var sx [][]float64
		var sy []float64
		for i := 0; i < maxPts; i++ {
			j := int(float64(i) * step)
			sx = append(sx, x[j])
			sy = append(sy, y[j])
		}
		x, y = sx, sy
	}
	k.x = make([][]float64, len(x))
	for i, row := range x {
		k.x[i] = append([]float64(nil), row...)
	}
	k.y = append([]float64(nil), y...)

	if err := k.fitVariogram(); err != nil {
		return err
	}

	if err := k.factorSystem(); err != nil {
		return err
	}
	var mean float64
	for _, v := range k.y {
		mean += v
	}
	k.mean = mean / float64(len(k.y))
	return nil
}

// factorSystem factors the ordinary kriging system. The fast path builds
// the covariance matrix C (SPD by construction for the exponential model
// plus nugget) and Cholesky-factors it; the unbiasedness constraint is then
// handled per query through the Schur complement of the bordered system,
// using the precomputed C⁻¹·1. If the covariance assembly is numerically
// indefinite (degenerate variograms), it falls back to the seed's LU over
// the bordered variogram system [Γ 1; 1ᵀ 0] — same weights either way, via
// a different factorisation.
func (k *Kriging) factorSystem() error {
	n := len(k.x)
	k.chol, k.lu = nil, nil
	// Pairwise distances once (symmetric): shared by the covariance
	// assembly and, if Cholesky rejects it, the variogram fallback.
	dists := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(k.x[i], k.x[j])
			dists[i*n+j] = d
			dists[j*n+i] = d
		}
	}
	c := mat.New(n, n)
	for i := 0; i < n; i++ {
		// A small diagonal jitter keeps near-duplicate points solvable.
		c.Set(i, i, k.covariance(0)+1e-9)
		for j := i + 1; j < n; j++ {
			v := k.covariance(dists[i*n+j])
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	chol, err := mat.CholeskyFactor(c)
	if err == nil {
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		cInvOne, err := chol.Solve(ones)
		if err == nil {
			var denom float64
			for _, v := range cInvOne {
				denom += v
			}
			if !math.IsNaN(denom) && !math.IsInf(denom, 0) && math.Abs(denom) > 1e-12 {
				k.chol = chol
				k.cInvOne = cInvOne
				k.oneCInvOne = denom
				return nil
			}
		}
	}
	// Fallback: bordered variogram system with LU.
	a := mat.New(n+1, n+1)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1e-9)
		for j := i + 1; j < n; j++ {
			v := k.variogram(dists[i*n+j])
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, n, 1)
		a.Set(n, i, 1)
	}
	lu, err := mat.Factor(a)
	if err != nil {
		return fmt.Errorf("rem: kriging system: %w", err)
	}
	k.lu = lu
	return nil
}

// fitVariogram estimates nugget, sill and range from the empirical
// variogram via method-of-moments binning and a 1-D search over the range.
func (k *Kriging) fitVariogram() error {
	n := len(k.x)
	// Empirical semivariances binned by lag.
	const nBins = 12
	var maxLag float64
	for i := 1; i < n; i++ {
		if d := dist(k.x[0], k.x[i]); d > maxLag {
			maxLag = d
		}
	}
	if maxLag == 0 {
		return fmt.Errorf("rem: all kriging points coincide")
	}
	binW := maxLag / nBins
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			h := dist(k.x[i], k.x[j])
			b := int(h / binW)
			if b >= nBins {
				b = nBins - 1
			}
			d := k.y[i] - k.y[j]
			sums[b] += d * d / 2
			counts[b]++
		}
	}
	var lags, gammas []float64
	for b := 0; b < nBins; b++ {
		if counts[b] == 0 {
			continue
		}
		lags = append(lags, (float64(b)+0.5)*binW)
		gammas = append(gammas, sums[b]/float64(counts[b]))
	}
	if len(lags) < 2 {
		return fmt.Errorf("rem: not enough lag bins for a variogram")
	}

	nugget := k.Nugget
	if nugget < 0 {
		// Estimate as a fraction of the first bin's semivariance.
		nugget = 0.5 * gammas[0]
	}
	// Sill: plateau level (mean of the top third of bins).
	top := len(gammas) - len(gammas)/3
	var sill float64
	for _, g := range gammas[top:] {
		sill += g
	}
	sill /= float64(len(gammas) - top)
	sill -= nugget
	if sill <= 0 {
		sill = math.Max(gammas[len(gammas)-1]-nugget, 1e-6)
	}
	// Range: 1-D grid search minimising squared error.
	bestRange, bestErr := lags[len(lags)-1]/3, math.Inf(1)
	for _, cand := range lags {
		if cand <= 0 {
			continue
		}
		var sse float64
		for i, h := range lags {
			model := nugget + sill*(1-math.Exp(-h/cand))
			sse += (model - gammas[i]) * (model - gammas[i])
		}
		if sse < bestErr {
			bestErr = sse
			bestRange = cand
		}
	}
	k.nugget = nugget
	k.sill = sill
	k.rng = bestRange
	return nil
}

// Predict implements ml.Estimator by solving the kriging weights for the
// query point. On the Cholesky path the bordered system reduces, via its
// Schur complement, to one triangular solve per query:
//
//	w = C⁻¹c₀ − μ·C⁻¹1  with  μ = (1ᵀC⁻¹c₀ − 1) / 1ᵀC⁻¹1
func (k *Kriging) Predict(q []float64) (float64, error) {
	if k.chol == nil && k.lu == nil {
		return 0, ml.ErrNotFitted
	}
	if len(q) != len(k.x[0]) {
		return 0, fmt.Errorf("rem: kriging query dim %d, want %d", len(q), len(k.x[0]))
	}
	n := len(k.x)
	var out float64
	if k.chol != nil {
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			rhs[i] = k.covariance(dist(q, k.x[i]))
		}
		// In-place solve: rhs becomes a = C⁻¹c₀.
		if err := k.chol.SolveInto(rhs, rhs); err != nil {
			return 0, err
		}
		var sumA float64
		for _, v := range rhs {
			sumA += v
		}
		mu := (sumA - 1) / k.oneCInvOne
		for i, a := range rhs {
			out += (a - mu*k.cInvOne[i]) * k.y[i]
		}
	} else {
		rhs := make([]float64, n+1)
		for i := 0; i < n; i++ {
			rhs[i] = k.variogram(dist(q, k.x[i]))
		}
		rhs[n] = 1
		w, err := k.lu.Solve(rhs)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			out += w[i] * k.y[i]
		}
	}
	if math.IsNaN(out) || math.IsInf(out, 0) {
		return k.mean, nil
	}
	return out, nil
}

// VariogramParams exposes the fitted variogram for inspection.
func (k *Kriging) VariogramParams() (nugget, sill, rang float64) {
	return k.nugget, k.sill, k.rng
}
