package rem

import (
	"math"
	"math/bits"
	"time"

	"repro/internal/parallel"
)

// This file materialises the coverage index behind Strongest/CoverageAt/
// DarkRegions: a per-interpolation-cube candidate set that prunes the
// O(K) key scan down to the few keys that can actually win inside the
// cube.
//
// Every query point resolves (via locate) to one cube of the trilinear
// lattice — the cell (ix0, iy0, iz0) plus its +1 neighbours, clamped at
// the grid edge. A key's interpolated value anywhere inside that cube is
// a convex combination of its 8 corner cells, so it is bracketed by the
// corner min and max up to floating-point rounding. The index stores,
// per cube:
//
//	L    = max over keys of the corner minimum (keys with a non-finite
//	       corner contribute -Inf: their interpolant is NaN or -Inf
//	       somewhere in the cube, so they guarantee nothing),
//	A    = max |finite corner| over every key (the amplitude the
//	       rounding-error margin scales with),
//	amax = a key index attaining L,
//	mask = the candidate set {k : ub_k >= L - A*coverMarginFrac}, where
//	       ub_k is the corner max ignoring NaN corners.
//
// Soundness: the computed trilinear sum deviates from the exact convex
// combination by at most a few tens of ulps of A (the 8 weights are
// products of two roundings each and sum to 1 within 4 ulps), far below
// the margin A*1e-12. The amax key's value is therefore > ub_k + margin/2
// everywhere in the cube for every excluded key k, so an excluded key can
// never win nor tie. Scanning the candidates in ascending key order with
// the same strict > as the brute loop then reproduces the brute scan
// bit-for-bit, ties included — determinism rule 9 (indexed ≡ scan),
// quickchecked in coverindex_test.go.
//
// Non-finite corners: a NaN corner makes the interpolant NaN over the
// whole cube (a zero weight times NaN is still NaN), and NaN never beats
// anything under strict >, so such keys are harmless candidates at worst.
// ub_k keeps ±Inf corners (a +Inf corner really can dominate), and skips
// only NaN ones; DarkRegions additionally reads exact corner cells, which
// ub_k bounds by construction.
//
// The index is tiled like cell storage (TileCells cubes per tile, cube
// index == flat cell index of the cube's low corner) and shared
// copy-on-write across generations: mendCover re-derives bounds only for
// dirty keys and re-filters only the cubes whose corner set intersects a
// changed cell, aliasing every untouched index tile with the parent.

// coverMarginFrac scales the pruning margin: a key is kept as a candidate
// unless its upper bound is below L - A*coverMarginFrac. The trilinear
// rounding error is a few tens of ulps of A (~1e-14·A), so 1e-12·A keeps
// two orders of magnitude of slack while excluding nothing that matters.
const coverMarginFrac = 1e-12

// coverTile holds the index entries for one run of TileCells cubes
// (index tile t covers cubes [t*TileCells, t*TileCells+len), mirroring
// cell-tile geometry so copy-on-write sharing lines up with cell tiles).
type coverTile struct {
	// lower[c] is L: the best guaranteed interpolant in cube c.
	lower []float64
	// amp[c] is A: the largest |finite corner| any key has in cube c.
	amp []float64
	// argmax[c] is a key index attaining lower[c]; mends use it to decide
	// whether the cheap update path is exact (the attainer is clean) or a
	// full recompute is needed (the attainer's cells changed).
	argmax []uint32
	// mask[c*words : (c+1)*words] is cube c's candidate bitmask, one bit
	// per key in vocabulary order.
	mask []uint64
}

// coverIndex is an immutable per-cube candidate index for one Map
// generation. Tiles may be shared by pointer with other generations.
type coverIndex struct {
	// words is the per-cube mask length: ceil(len(keys)/64).
	words int
	tiles []*coverTile
}

func newCoverTile(n, words int) *coverTile {
	return &coverTile{
		lower:  make([]float64, n),
		amp:    make([]float64, n),
		argmax: make([]uint32, n),
		mask:   make([]uint64, n*words),
	}
}

func cloneCoverTile(src *coverTile) *coverTile {
	return &coverTile{
		lower:  append([]float64(nil), src.lower...),
		amp:    append([]float64(nil), src.amp...),
		argmax: append([]uint32(nil), src.argmax...),
		mask:   append([]uint64(nil), src.mask...),
	}
}

// BuildCoverIndex materialises the coverage index for this map if it does
// not already carry one. Safe for concurrent use; queries running during
// the build keep using the brute scan and pick the index up on their next
// atomic load. The index changes no query result (rule 9), only its cost.
func (m *Map) BuildCoverIndex() {
	if m.cover.Load() != nil {
		return
	}
	m.cover.CompareAndSwap(nil, m.buildCoverIndex(0))
}

// HasCoverIndex reports whether the map currently carries a coverage
// index.
func (m *Map) HasCoverIndex() bool { return m.cover.Load() != nil }

// DropCoverIndex detaches the coverage index — the opt-out switch.
// Subsequent Strongest/StrongestBatch/CoverageAt/DarkRegions calls fall
// back to the brute O(K) scan (and return identical results).
func (m *Map) DropCoverIndex() { m.cover.Store(nil) }

// CoverStats describes a built coverage index, for capacity planning and
// honest overhead reporting.
type CoverStats struct {
	// Cubes is the number of interpolation cubes indexed (== cell count).
	Cubes int
	// Candidates is the total candidate-set population over all cubes;
	// Candidates/Cubes is the expected number of interpolations per
	// Strongest query (the brute scan pays len(Keys)).
	Candidates int
	// Bytes is the index's storage footprint, counting shared tiles once.
	Bytes int
}

// CoverIndexStats returns the current index's stats; ok is false when the
// map carries no index.
func (m *Map) CoverIndexStats() (stats CoverStats, ok bool) {
	ci := m.cover.Load()
	if ci == nil {
		return CoverStats{}, false
	}
	stats.Cubes = m.stride
	for _, ct := range ci.tiles {
		for _, w := range ct.mask {
			stats.Candidates += bits.OnesCount64(w)
		}
		stats.Bytes += len(ct.lower)*8 + len(ct.amp)*8 + len(ct.argmax)*4 + len(ct.mask)*8
	}
	return stats, true
}

// cubeBounds computes key ki's interpolation bounds over the cube whose
// low corner is cell (cx, cy, cz): lb is the guaranteed minimum (-Inf if
// any corner is non-finite), ub the corner maximum ignoring NaN corners
// (-Inf if all 8 are NaN), and amp the largest finite |corner|.
func (m *Map) cubeBounds(ki, cx, cy, cz int) (lb, ub, amp float64) {
	x1, y1, z1 := cx+1, cy+1, cz+1
	if x1 >= m.nx {
		x1 = m.nx - 1
	}
	if y1 >= m.ny {
		y1 = m.ny - 1
	}
	if z1 >= m.nz {
		z1 = m.nz - 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	finite := true
	for c := 0; c < 8; c++ {
		ix, iy, iz := cx, cy, cz
		if c&1 != 0 {
			ix = x1
		}
		if c&2 != 0 {
			iy = y1
		}
		if c&4 != 0 {
			iz = z1
		}
		v := m.val(ki, ix+m.nx*(iy+m.ny*iz))
		if math.IsNaN(v) {
			finite = false
			continue
		}
		if v > hi {
			hi = v
		}
		if math.IsInf(v, 0) {
			finite = false
			continue
		}
		if v < lo {
			lo = v
		}
		if a := math.Abs(v); a > amp {
			amp = a
		}
	}
	if !finite {
		return math.Inf(-1), hi, amp
	}
	return lo, hi, amp
}

// fillCube recomputes cube's index entry from scratch over every key,
// writing slot of ct. ubs is caller scratch of len(keys).
func (m *Map) fillCube(ct *coverTile, words, slot, cube int, ubs []float64) {
	cx := cube % m.nx
	cy := (cube / m.nx) % m.ny
	cz := cube / (m.nx * m.ny)
	L, A := math.Inf(-1), 0.0
	amax := 0
	for ki := range m.keys {
		lb, ub, a := m.cubeBounds(ki, cx, cy, cz)
		ubs[ki] = ub
		if a > A {
			A = a
		}
		// Strict >, so amax lands on the first key attaining L — the same
		// key the brute scan's tie rule favours.
		if lb > L {
			L, amax = lb, ki
		}
	}
	T := L - A*coverMarginFrac
	mask := ct.mask[slot*words : (slot+1)*words]
	for w := range mask {
		mask[w] = 0
	}
	for ki, ub := range ubs {
		if ub >= T {
			mask[ki>>6] |= 1 << (ki & 63)
		}
	}
	ct.lower[slot] = L
	ct.amp[slot] = A
	ct.argmax[slot] = uint32(amax)
}

// buildCoverIndex computes a fresh index over every cube, one worker per
// index tile (workers <= 0 means GOMAXPROCS). Deterministic at any worker
// count: every cube depends only on its own corners.
func (m *Map) buildCoverIndex(workers int) *coverIndex {
	ci := &coverIndex{
		words: (len(m.keys) + 63) / 64,
		tiles: make([]*coverTile, m.tilesPerKey),
	}
	parallel.ForEach(m.tilesPerKey, workers, func(t int) error {
		n := m.tileLen(t)
		ct := newCoverTile(n, ci.words)
		ubs := make([]float64, len(m.keys))
		for slot := 0; slot < n; slot++ {
			m.fillCube(ct, ci.words, slot, t*TileCells+slot, ubs)
		}
		ci.tiles[t] = ct
		return nil
	})
	return ci
}

// strongestIndexed answers Strongest at an already-resolved location by
// scanning only the cube's candidates, in ascending key order with the
// same strict > as the brute loop — bit-identical by construction.
func (m *Map) strongestIndexed(ci *coverIndex, l cubeLoc) (string, float64) {
	cube := l.ix0 + m.nx*(l.iy0+m.ny*l.iz0)
	ct := ci.tiles[cube>>tileShift]
	off := (cube & tileMask) * ci.words
	best, bestVal := "", math.Inf(-1)
	for w := 0; w < ci.words; w++ {
		bw := ct.mask[off+w]
		for bw != 0 {
			ki := w<<6 + bits.TrailingZeros64(bw)
			bw &= bw - 1
			if v := m.interpolate(ki, l); v > bestVal {
				best, bestVal = m.keys[ki], v
			}
		}
	}
	return best, bestVal
}

// cellMaxIndexed folds the cube's candidate cell values at flat index idx
// into best (cube index == cell index: the cell is its cube's low corner,
// so the cube's candidate set soundly covers the cell maximum).
func (m *Map) cellMaxIndexed(ci *coverIndex, idx int, best float64) float64 {
	ct := ci.tiles[idx>>tileShift]
	off := (idx & tileMask) * ci.words
	for w := 0; w < ci.words; w++ {
		bw := ct.mask[off+w]
		for bw != 0 {
			ki := w<<6 + bits.TrailingZeros64(bw)
			bw &= bw - 1
			if v := m.val(ki, idx); v > best {
				best = v
			}
		}
	}
	return best
}

// mendCoverFrom carries parent's coverage index over to the derived map m
// (same geometry and vocabulary), given the flat tile indices whose cell
// content changed. No-op when the parent has no index. Cost scales with
// the changed cells, not the vocabulary: per affected cube the dirty
// keys' bounds are re-derived (8 reads each) and the candidate mask
// re-filtered; untouched index tiles are shared by pointer with the
// parent. The mended entries can be conservatively looser than a from-
// scratch build (the amplitude A only grows on the cheap path), which
// costs candidates, never correctness — rule 9 pins query results, not
// index bytes.
func (m *Map) mendCoverFrom(parent *Map, changed []int) {
	ci := parent.cover.Load()
	if ci == nil {
		return
	}
	if len(changed) == 0 {
		m.cover.Store(ci)
		return
	}
	start := time.Now()
	m.cover.Store(m.mendCover(ci, changed))
	m.coverMendNs = time.Since(start).Nanoseconds()
}

func (m *Map) mendCover(ci *coverIndex, changed []int) *coverIndex {
	// Mark affected cubes: cell (ix, iy, iz) is a corner of the cubes with
	// low-corner coords in {ix-1, ix} × {iy-1, iy} × {iz-1, iz}, clamped
	// at zero (edge cubes re-read their boundary cells via clamping, which
	// the {i-1, i} window already covers).
	affected := make([]uint64, (m.stride+63)/64)
	isDirty := make([]bool, len(m.keys))
	var dirty []int // ascending: changed tile indices arrive ascending
	for _, t := range changed {
		ki := t / m.tilesPerKey
		if !isDirty[ki] {
			isDirty[ki] = true
			dirty = append(dirty, ki)
		}
		lt := t % m.tilesPerKey
		lo := lt * TileCells
		hi := lo + m.tileLen(lt)
		for idx := lo; idx < hi; idx++ {
			ix := idx % m.nx
			iy := (idx / m.nx) % m.ny
			iz := idx / (m.nx * m.ny)
			x0, y0, z0 := ix-1, iy-1, iz-1
			if x0 < 0 {
				x0 = 0
			}
			if y0 < 0 {
				y0 = 0
			}
			if z0 < 0 {
				z0 = 0
			}
			for az := z0; az <= iz; az++ {
				for ay := y0; ay <= iy; ay++ {
					for ax := x0; ax <= ix; ax++ {
						c := ax + m.nx*(ay+m.ny*az)
						affected[c>>6] |= 1 << (c & 63)
					}
				}
			}
		}
	}
	out := &coverIndex{words: ci.words, tiles: make([]*coverTile, m.tilesPerKey)}
	ubs := make([]float64, len(m.keys))
	for t := range out.tiles {
		lo := t * TileCells
		n := m.tileLen(t)
		touched := false
		for slot := 0; slot < n; slot++ {
			c := lo + slot
			if affected[c>>6]&(1<<(c&63)) != 0 {
				touched = true
				break
			}
		}
		if !touched {
			out.tiles[t] = ci.tiles[t]
			continue
		}
		ct := cloneCoverTile(ci.tiles[t])
		for slot := 0; slot < n; slot++ {
			c := lo + slot
			if affected[c>>6]&(1<<(c&63)) != 0 {
				m.mendCube(ct, ci.words, slot, c, dirty, isDirty, ubs)
				m.coverMended++
			}
		}
		out.tiles[t] = ct
	}
	return out
}

// mendCube updates one cube's entry after the dirty keys' cells changed.
// The cheap path is exact for L (the clean attainer still witnesses the
// old maximum) and conservative for A (it only grows, widening the
// margin); it falls back to fillCube when the old attainer is dirty or
// the threshold would loosen, both of which would otherwise let a stale
// exclusion turn unsound.
func (m *Map) mendCube(ct *coverTile, words, slot, cube int, dirty []int, isDirty []bool, ubs []float64) {
	oldAmax := int(ct.argmax[slot])
	if isDirty[oldAmax] {
		m.fillCube(ct, words, slot, cube, ubs)
		return
	}
	cx := cube % m.nx
	cy := (cube / m.nx) % m.ny
	cz := cube / (m.nx * m.ny)
	oldL, oldA := ct.lower[slot], ct.amp[slot]
	oldT := oldL - oldA*coverMarginFrac
	L, A, amax := oldL, oldA, oldAmax
	for _, ki := range dirty {
		lb, ub, a := m.cubeBounds(ki, cx, cy, cz)
		ubs[ki] = ub
		if a > A {
			A = a
		}
		if lb > L {
			L, amax = lb, ki
		} else if lb == L && ki < amax {
			// Keep amax on the first attaining key, matching fillCube.
			amax = ki
		}
	}
	T := L - A*coverMarginFrac
	if T < oldT {
		// The margin grew faster than the bound: exclusions made against
		// the old, tighter threshold may no longer be justified and the
		// per-key upper bounds needed to re-admit keys aren't stored.
		m.fillCube(ct, words, slot, cube, ubs)
		return
	}
	mask := ct.mask[slot*words : (slot+1)*words]
	for _, ki := range dirty {
		if ubs[ki] >= T {
			mask[ki>>6] |= 1 << (ki & 63)
		} else {
			mask[ki>>6] &^= 1 << (ki & 63)
		}
	}
	if T > oldT {
		// The threshold tightened: re-test surviving clean candidates so
		// looseness doesn't accumulate across a long mend chain. Clean
		// non-candidates stay excluded (their bound is below the old,
		// looser threshold already).
		for w := 0; w < words; w++ {
			bw := mask[w]
			for bw != 0 {
				ki := w<<6 + bits.TrailingZeros64(bw)
				bw &= bw - 1
				if isDirty[ki] {
					continue
				}
				if _, ub, _ := m.cubeBounds(ki, cx, cy, cz); ub < T {
					mask[ki>>6] &^= 1 << (ki & 63)
				}
			}
		}
	}
	ct.lower[slot] = L
	ct.amp[slot] = A
	ct.argmax[slot] = uint32(amax)
}

// mergeCover reassembles a coverage index for a merged map from its
// parts' indexes without touching any cell twice: per cube the merged
// bound is the max of the part bounds, and each part's candidates are
// re-tested against the merged threshold. partOf[gi] and localOf[gi]
// give global key gi's owning part and its index there. Returns nil
// (no index) when any part lacks one.
func mergeCover(m *Map, parts []*Map, partOf, localOf []int) *coverIndex {
	cis := make([]*coverIndex, len(parts))
	for pi, p := range parts {
		if cis[pi] = p.cover.Load(); cis[pi] == nil {
			return nil
		}
	}
	l2g := make([][]int, len(parts))
	for pi, p := range parts {
		l2g[pi] = make([]int, len(p.keys))
	}
	for gi := range m.keys {
		l2g[partOf[gi]][localOf[gi]] = gi
	}
	words := (len(m.keys) + 63) / 64
	ci := &coverIndex{words: words, tiles: make([]*coverTile, m.tilesPerKey)}
	for t := 0; t < m.tilesPerKey; t++ {
		n := m.tileLen(t)
		ct := newCoverTile(n, words)
		for slot := 0; slot < n; slot++ {
			cube := t*TileCells + slot
			cx := cube % m.nx
			cy := (cube / m.nx) % m.ny
			cz := cube / (m.nx * m.ny)
			L, A := math.Inf(-1), 0.0
			amax := 0
			for pi := range parts {
				pt := cis[pi].tiles[t]
				if pl := pt.lower[slot]; pl > L {
					L = pl
					amax = l2g[pi][int(pt.argmax[slot])]
				}
				if pa := pt.amp[slot]; pa > A {
					A = pa
				}
			}
			T := L - A*coverMarginFrac
			mask := ct.mask[slot*words : (slot+1)*words]
			for pi, p := range parts {
				pt := cis[pi].tiles[t]
				pw := cis[pi].words
				pT := pt.lower[slot] - pt.amp[slot]*coverMarginFrac
				if T >= pT {
					// The merged threshold is at least as tight as the
					// part's, so the part's exclusions stand; its
					// candidates are a superset of the merged ones over
					// its keys — re-test each against T.
					pmask := pt.mask[slot*pw : (slot+1)*pw]
					for w := 0; w < pw; w++ {
						bw := pmask[w]
						for bw != 0 {
							lk := w<<6 + bits.TrailingZeros64(bw)
							bw &= bw - 1
							gi := l2g[pi][lk]
							if _, ub, _ := m.cubeBounds(gi, cx, cy, cz); ub >= T {
								mask[gi>>6] |= 1 << (gi & 63)
							}
						}
					}
				} else {
					// A merged amplitude from another part widened the
					// margin below this part's threshold: its exclusions
					// can't be trusted, so re-test every key it owns.
					for lk := range p.keys {
						gi := l2g[pi][lk]
						if _, ub, _ := m.cubeBounds(gi, cx, cy, cz); ub >= T {
							mask[gi>>6] |= 1 << (gi & 63)
						}
					}
				}
			}
			ct.lower[slot] = L
			ct.amp[slot] = A
			ct.argmax[slot] = uint32(amax)
		}
		ci.tiles[t] = ct
	}
	return ci
}
