package rem

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// rebuiltPair returns a random map and a derivation with a random dirty
// subset rebuilt through a perturbed predictor.
func rebuiltPair(t *testing.T, rng *simrand.Source) (*Map, *Map, []int) {
	t.Helper()
	base := randomMap(t, rng)
	nKeys := len(base.Keys())
	dirty := make([]int, 0, nKeys)
	for k := 0; k < nKeys; k++ {
		if rng.Intn(2) == 0 {
			dirty = append(dirty, k)
		}
	}
	next, err := base.RebuildKeys(dirty, func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -50 - p.X - float64(k) - float64(i%7)
		}
		return out, nil
	}, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return base, next, dirty
}

// TestDeltaRoundTrip: AppendDelta → ApplyDelta reproduces the next
// generation bit-for-bit across many random (base, next) pairs, and the
// applied map shares every unchanged tile with the base (copy-on-write,
// like RebuildKeys itself).
func TestDeltaRoundTrip(t *testing.T) {
	rng := simrand.New(99)
	for trial := 0; trial < 30; trial++ {
		base, next, _ := rebuiltPair(t, rng)
		delta, err := AppendDelta(nil, base, next)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ApplyDelta(base, delta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !next.Equal(got) {
			t.Fatalf("trial %d: applied delta differs from next generation", trial)
		}
		if got.Version() != next.Version() {
			t.Fatalf("trial %d: applied version %d, want %d", trial, got.Version(), next.Version())
		}
		changed, err := DiffTiles(base, next)
		if err != nil {
			t.Fatal(err)
		}
		if want := got.NumTiles() - len(changed); got.SharedTiles(base) != want {
			t.Fatalf("trial %d: applied map shares %d tiles with base, want %d", trial, got.SharedTiles(base), want)
		}
		if bv, nv, err := DeltaVersions(delta); err != nil || bv != base.Version() || nv != next.Version() {
			t.Fatalf("trial %d: DeltaVersions = (%d, %d, %v), want (%d, %d, nil)", trial, bv, nv, err, base.Version(), next.Version())
		}
	}
}

// TestDeltaDeterministic: the same pair encodes to the same bytes.
func TestDeltaDeterministic(t *testing.T) {
	rng := simrand.New(7)
	base, next, _ := rebuiltPair(t, rng)
	a, err := AppendDelta(nil, base, next)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendDelta(nil, base, next)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("delta encoding is not deterministic")
	}
}

// TestDeltaEmpty: a no-op derivation (empty dirty set) encodes a delta
// with zero tiles that still applies and advances the version.
func TestDeltaEmpty(t *testing.T) {
	rng := simrand.New(11)
	base := randomMap(t, rng)
	next, err := base.RebuildKeys(nil, func(centers []geom.Vec3, k int) ([]float64, error) {
		return make([]float64, len(centers)), nil
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendDelta(nil, base, next)
	if err != nil {
		t.Fatal(err)
	}
	if want := deltaHeaderLen + deltaTrailerLen; len(delta) != want {
		t.Fatalf("empty delta is %d bytes, want %d", len(delta), want)
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(got) || got.Version() != next.Version() {
		t.Fatal("empty delta did not reproduce the next generation")
	}
}

// TestDeltaSmallerThanSnapshot pins the economics the replication tier
// exists for: a 2-of-many-key delta costs a small fraction of the full
// snapshot encoding.
func TestDeltaSmallerThanSnapshot(t *testing.T) {
	keys := make([]string, 44)
	for i := range keys {
		keys[i] = fmt.Sprintf("aa:bb:cc:00:00:%02x", i)
	}
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)
	predict := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -60 - p.X - 2*p.Y - float64(k)
		}
		return out, nil
	}
	base, err := BuildMapBatch(vol, 12, 10, 6, keys, predict, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	next, err := base.RebuildKeys([]int{3, 17}, func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range centers {
			out[i] = -40 - float64(i%5)
		}
		return out, nil
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendDelta(nil, base, next)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if _, err := next.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(delta)) / float64(full.Len()); ratio > 0.25 {
		t.Fatalf("2-of-44-key delta is %d bytes, full snapshot %d (%.1f%%) — want ≤ 25%%", len(delta), full.Len(), 100*ratio)
	}
}

// TestDeltaRejects: every class of malformed or mismatched delta is an
// error, never a silently wrong map.
func TestDeltaRejects(t *testing.T) {
	rng := simrand.New(23)
	base, next, _ := rebuiltPair(t, rng)
	good, err := AppendDelta(nil, base, next)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(d []byte)) []byte {
		d := append([]byte(nil), good...)
		mut(d)
		return d
	}
	cases := map[string][]byte{
		"truncated header": good[:deltaHeaderLen-3],
		"truncated body":   good[:len(good)-5],
		"bad magic":        corrupt(func(d []byte) { d[0] = 'X' }),
		"bad version":      corrupt(func(d []byte) { d[4] = 9 }),
		"flipped bit":      corrupt(func(d []byte) { d[len(d)/2] ^= 0x10 }),
		"flipped trailer":  corrupt(func(d []byte) { d[len(d)-1] ^= 0xFF }),
		"appended garbage": append(append([]byte(nil), good...), 0xAB),
	}
	for name, d := range cases {
		if _, err := ApplyDelta(base, d); err == nil {
			t.Errorf("%s: ApplyDelta accepted a corrupt delta", name)
		}
	}
	// Wrong base generation: applying to next itself must fail the
	// version check.
	if _, err := ApplyDelta(next, good); err == nil {
		t.Error("ApplyDelta accepted a mismatched base version")
	}
	// Drifted geometry: a different-resolution map can never accept it.
	other, err := BuildMapBatch(geom.MustCuboid(geom.V(0, 0, 0), 1, 1, 1), 2, 2, 2,
		base.Keys(), func(centers []geom.Vec3, k int) ([]float64, error) {
			return make([]float64, len(centers)), nil
		}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDelta(nil, base, other); err == nil {
		t.Error("AppendDelta accepted geometry drift")
	}
}

// TestDiffTilesFindsBitwiseChanges: a tile that was reallocated but
// holds identical bits is not a change; a single flipped bit is.
func TestDiffTilesFindsBitwiseChanges(t *testing.T) {
	rng := simrand.New(5)
	// Rebuild key 0 twice through the same pure position function: the
	// second rebuild allocates fresh tiles holding identical bits, so the
	// diff must be empty (this is also rule 7's worker invariance — the
	// two rebuilds use different worker counts).
	pure := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -55 - p.X - 2*p.Y - p.Z
		}
		return out, nil
	}
	base, err := randomMap(t, rng).RebuildKeys([]int{0}, pure, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	same, err := base.RebuildKeys([]int{0}, pure, BuildOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := DiffTiles(base, same)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("bit-identical rebuild diffs as %d changed tiles", len(changed))
	}
	// Now flip one value's low bit in a detached copy of tile 0.
	mut := &Map{
		volume: base.volume,
		nx:     base.nx, ny: base.ny, nz: base.nz,
		stride: base.stride, tilesPerKey: base.tilesPerKey,
		keys:    base.keys,
		tiles:   append([][]float64(nil), base.tiles...),
		version: base.version + 1,
	}
	tile := append([]float64(nil), mut.tiles[0]...)
	tile[0] = math.Float64frombits(math.Float64bits(tile[0]) ^ 1)
	mut.tiles[0] = tile
	changed, err = DiffTiles(base, mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != 0 {
		t.Fatalf("single-bit flip diffs as %v, want [0]", changed)
	}
}

// fuzzDeltaPair builds a small fixed (base, next) pair without a
// *testing.T, for the fuzz seed corpus.
func fuzzDeltaPair() (*Map, *Map, []byte) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 3, 2, 1.5)
	keys := []string{"0a:00", "0a:01", "0a:02"}
	predict := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -60 - p.X - float64(k)
		}
		return out, nil
	}
	base, err := BuildMapBatch(vol, 6, 5, 4, keys, predict, BuildOptions{})
	if err != nil {
		panic(err)
	}
	next, err := base.RebuildKeys([]int{1}, func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range centers {
			out[i] = -45 - float64(i%3)
		}
		return out, nil
	}, BuildOptions{})
	if err != nil {
		panic(err)
	}
	delta, err := AppendDelta(nil, base, next)
	if err != nil {
		panic(err)
	}
	return base, next, delta
}

// FuzzDeltaApply hammers ApplyDelta with arbitrary bytes: it must never
// panic, and any delta it accepts against the fixed base must declare
// the base's exact version and geometry (the validation contract).
func FuzzDeltaApply(f *testing.F) {
	basef, _, good := fuzzDeltaPair()
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte("REMD"))
	f.Add([]byte{})
	flip := append([]byte(nil), good...)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ApplyDelta(basef, data)
		if err != nil {
			return
		}
		// Accepted ⇒ CRC, geometry echo and base version all matched; the
		// result must be a well-formed map over the base geometry.
		if len(m.Keys()) != len(basef.Keys()) || m.NumTiles() != basef.NumTiles() {
			t.Fatal("accepted delta produced a map with drifted geometry")
		}
	})
}
