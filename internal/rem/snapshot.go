package rem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/parallel"
)

// This file implements the incremental-snapshot side of the tiled Map:
// RebuildKeys derives a new immutable generation that re-rasterises only a
// dirty key set and shares every other tile with its parent, plus the
// comparison helpers (Equal, SharedTiles) the determinism contract's rule 7
// tests are written against.

// Version returns the rebuild generation: 1 for a fresh build, parent+1
// for every RebuildKeys derivation.
func (m *Map) Version() uint64 { return m.version }

// NumTiles returns the total tile count (keys × tiles per key).
func (m *Map) NumTiles() int { return len(m.tiles) }

// TilesPerKey returns how many tiles hold one key's cells.
func (m *Map) TilesPerKey() int { return m.tilesPerKey }

// RebuildKeys derives a new Map in which every key listed in dirty is
// re-rasterised through predict while every other key's tiles are shared
// with m (copy-on-write): memory cost and predictor work are proportional
// to the dirty set, not the map. Duplicate dirty entries are collapsed;
// an empty dirty set yields a snapshot that shares every tile; a set
// containing ml.DirtyAll — what global estimators return from Observe —
// rebuilds every key, so Observe results wire straight through. The
// receiver is not modified. The derived map's version is m.Version()+1.
//
// Determinism contract rule 7: if predict answers from a model fitted on
// the cumulative dataset and dirty covers every key whose predictions can
// have changed, the result is byte-identical to a from-scratch
// BuildMapBatch against that model, for any worker count.
func (m *Map) RebuildKeys(dirty []int, predict BatchPredictFunc, opts BuildOptions) (*Map, error) {
	if predict == nil {
		return nil, fmt.Errorf("rem: rebuild needs a predictor")
	}
	seen := make(map[int]bool, len(dirty))
	ks := make([]int, 0, len(dirty))
	for _, k := range dirty {
		if k == ml.DirtyAll {
			ks = ks[:0]
			for i := range m.keys {
				ks = append(ks, i)
			}
			break
		}
		if k < 0 || k >= len(m.keys) {
			return nil, fmt.Errorf("rem: dirty key %d outside [0, %d)", k, len(m.keys))
		}
		if !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)

	child := &Map{
		volume: m.volume,
		nx:     m.nx, ny: m.ny, nz: m.nz,
		stride:      m.stride,
		tilesPerKey: m.tilesPerKey,
		keys:        m.keys, // immutable after build; shared across generations
		tiles:       append([][]float64(nil), m.tiles...),
		version:     m.version + 1,
	}
	for _, k := range ks {
		child.allocKey(k)
	}
	// Same chunking discipline as buildMap, over the dirty keys only:
	// chunks never span keys, and each chunk writes a disjoint cell range.
	fill := batchFill(predict)
	stride := m.stride
	err := parallel.ForEachChunk(len(ks)*stride, opts.Workers, func(lo, hi int) error {
		for lo < hi {
			j := lo / stride
			end := (j + 1) * stride
			if end > hi {
				end = hi
			}
			if err := fill(child, ks[j], lo-j*stride, end-j*stride); err != nil {
				return err
			}
			lo = end
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Carry the coverage index forward: re-derive bounds only for keys
	// whose tiles actually changed content (a re-predicted key often
	// reproduces some tiles bit-for-bit) and re-filter only the cubes
	// those cells touch, sharing every other index tile with the parent.
	if m.cover.Load() != nil {
		changed, err := DiffTiles(m, child)
		if err != nil {
			// Unreachable: the child shares m's geometry by construction.
			return nil, err
		}
		child.mendCoverFrom(m, changed)
	}
	return child, nil
}

// Equal reports whether the two maps have identical geometry, keys and
// bit-identical cell values (NaNs compare by payload, not IEEE equality —
// this is the byte-identity the determinism contract promises).
func (m *Map) Equal(o *Map) bool {
	if o == nil {
		return false
	}
	if m.nx != o.nx || m.ny != o.ny || m.nz != o.nz {
		return false
	}
	mv := [6]float64{m.volume.Min.X, m.volume.Min.Y, m.volume.Min.Z, m.volume.Max.X, m.volume.Max.Y, m.volume.Max.Z}
	ov := [6]float64{o.volume.Min.X, o.volume.Min.Y, o.volume.Min.Z, o.volume.Max.X, o.volume.Max.Y, o.volume.Max.Z}
	for i := range mv {
		if math.Float64bits(mv[i]) != math.Float64bits(ov[i]) {
			return false
		}
	}
	if len(m.keys) != len(o.keys) {
		return false
	}
	for i, k := range m.keys {
		if o.keys[i] != k {
			return false
		}
	}
	for i, t := range m.tiles {
		ot := o.tiles[i]
		if len(t) != len(ot) {
			return false
		}
		for j, v := range t {
			if math.Float64bits(v) != math.Float64bits(ot[j]) {
				return false
			}
		}
	}
	return true
}

// SharedTiles counts the tiles whose backing storage is aliased between
// the two maps — the copy-on-write sharing a RebuildKeys chain produces.
func (m *Map) SharedTiles(o *Map) int {
	if o == nil || len(m.tiles) != len(o.tiles) {
		return 0
	}
	n := 0
	for i, t := range m.tiles {
		ot := o.tiles[i]
		if len(t) > 0 && len(ot) > 0 && &t[0] == &ot[0] {
			n++
		}
	}
	return n
}
