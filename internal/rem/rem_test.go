package rem

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/ml"
	"repro/internal/simrand"
)

func TestIDWExactAtTrainingPoints(t *testing.T) {
	w := &IDW{Power: 2}
	x := [][]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}
	y := []float64{-50, -60, -70}
	if err := w.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		got, err := w.Predict(row)
		if err != nil || got != y[i] {
			t.Errorf("IDW at training point %d = %v, want %v", i, got, y[i])
		}
	}
}

func TestIDWInterpolatesBetween(t *testing.T) {
	w := &IDW{Power: 2}
	_ = w.Fit([][]float64{{0}, {2}}, []float64{-40, -80})
	got, err := w.Predict([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+60) > 1e-9 {
		t.Errorf("midpoint = %v, want −60", got)
	}
	// Closer to the −40 point → higher.
	near, _ := w.Predict([]float64{0.2})
	if near <= got {
		t.Errorf("IDW not distance-sensitive: %v at 0.2 vs %v at 1.0", near, got)
	}
}

func TestIDWBounded(t *testing.T) {
	// IDW predictions never exceed the training extrema.
	rng := simrand.New(1)
	w := &IDW{Power: 2, Smoothing: 0.01}
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2)})
		y = append(y, rng.Range(-90, -50))
	}
	_ = w.Fit(x, y)
	for i := 0; i < 100; i++ {
		q := []float64{rng.Range(-1, 5), rng.Range(-1, 4), rng.Range(-1, 3)}
		got, err := w.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if got < -90-1e-9 || got > -50+1e-9 {
			t.Fatalf("IDW prediction %v outside training range", got)
		}
	}
}

func TestIDWValidation(t *testing.T) {
	w := &IDW{Power: 0}
	if err := w.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("zero power accepted")
	}
	w = &IDW{Power: 2, Smoothing: -1}
	if err := w.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("negative smoothing accepted")
	}
	w = &IDW{Power: 2}
	if _, err := w.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
	_ = w.Fit([][]float64{{1, 2}}, []float64{1})
	if _, err := w.Predict([]float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
}

func TestKrigingRecoversSmoothField(t *testing.T) {
	// Samples of a smooth field: kriging should interpolate well and beat
	// the field's standard deviation.
	rng := simrand.New(3)
	f := func(x, y float64) float64 { return -60 - 5*math.Sin(x) - 4*math.Cos(y) }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x, y := rng.Range(0, 4), rng.Range(0, 3)
		xs = append(xs, []float64{x, y, 1})
		ys = append(ys, f(x, y)+rng.Gauss(0, 0.3))
	}
	k := &Kriging{Nugget: -1}
	if err := k.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	var sse float64
	const nTest = 60
	for i := 0; i < nTest; i++ {
		x, y := rng.Range(0.5, 3.5), rng.Range(0.5, 2.5)
		got, err := k.Predict([]float64{x, y, 1})
		if err != nil {
			t.Fatal(err)
		}
		sse += (got - f(x, y)) * (got - f(x, y))
	}
	rmse := math.Sqrt(sse / nTest)
	if rmse > 1.5 {
		t.Errorf("kriging RMSE on smooth field = %v, want < 1.5", rmse)
	}
	nug, sill, rang := k.VariogramParams()
	if sill <= 0 || rang <= 0 || nug < 0 {
		t.Errorf("variogram params: nugget=%v sill=%v range=%v", nug, sill, rang)
	}
}

func TestKrigingValidation(t *testing.T) {
	k := &Kriging{}
	if _, err := k.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
	if err := k.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Error("2-point kriging accepted")
	}
	coincident := [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	if err := k.Fit(coincident, []float64{1, 2, 3}); err == nil {
		t.Error("coincident points accepted")
	}
	if k.Name() == "" {
		t.Error("empty name")
	}
}

func TestKrigingSubsamplesLargeSets(t *testing.T) {
	rng := simrand.New(7)
	k := &Kriging{Nugget: -1, MaxPoints: 50}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, []float64{rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2)})
		ys = append(ys, rng.Range(-90, -50))
	}
	if err := k.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if got, err := k.Predict([]float64{2, 1.5, 1}); err != nil || math.IsNaN(got) {
		t.Errorf("subsampled kriging predict = %v, %v", got, err)
	}
}

func mapFixture(t *testing.T) *Map {
	t.Helper()
	vol := geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2)
	// Key 0: gradient along x. Key 1: constant weak.
	predict := func(p geom.Vec3, k int) (float64, error) {
		if k == 0 {
			return -40 - 10*p.X, nil
		}
		return -95, nil
	}
	m, err := BuildMap(vol, 8, 6, 4, []string{"AA", "BB"}, predict)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildMapValidation(t *testing.T) {
	vol := geom.MustCuboid(geom.V(0, 0, 0), 1, 1, 1)
	ok := func(p geom.Vec3, k int) (float64, error) { return 0, nil }
	if _, err := BuildMap(vol, 0, 1, 1, []string{"a"}, ok); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := BuildMap(vol, 1, 1, 1, nil, ok); err == nil {
		t.Error("no keys accepted")
	}
	if _, err := BuildMap(vol, 1, 1, 1, []string{"a"}, nil); err == nil {
		t.Error("nil predictor accepted")
	}
	bad := func(p geom.Vec3, k int) (float64, error) { return 0, errors.New("boom") }
	if _, err := BuildMap(vol, 1, 1, 1, []string{"a"}, bad); err == nil {
		t.Error("predictor error swallowed")
	}
}

func TestMapAccessors(t *testing.T) {
	m := mapFixture(t)
	if nx, ny, nz := m.Resolution(); nx != 8 || ny != 6 || nz != 4 {
		t.Errorf("resolution = %d %d %d", nx, ny, nz)
	}
	if len(m.Keys()) != 2 {
		t.Errorf("keys = %v", m.Keys())
	}
	if m.KeyIndex("BB") != 1 || m.KeyIndex("zz") != -1 {
		t.Error("KeyIndex wrong")
	}
	if m.Volume().Size() != geom.V(4, 3, 2) {
		t.Error("volume wrong")
	}
}

func TestMapInterpolationFollowsGradient(t *testing.T) {
	m := mapFixture(t)
	at := func(x float64) float64 {
		v, err := m.At("AA", geom.V(x, 1.5, 1))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// The underlying field is −40 −10x; interpolation must track it.
	for _, x := range []float64{0.5, 1.0, 2.0, 3.5} {
		want := -40 - 10*x
		if got := at(x); math.Abs(got-want) > 0.8 {
			t.Errorf("At(x=%v) = %v, want ≈%v", x, got, want)
		}
	}
	// Monotone decreasing along x.
	prev := at(0.3)
	for x := 0.6; x < 4; x += 0.3 {
		cur := at(x)
		if cur >= prev {
			t.Errorf("interpolated field not decreasing at x=%v", x)
		}
		prev = cur
	}
}

func TestMapAtUnknownKey(t *testing.T) {
	m := mapFixture(t)
	if _, err := m.At("nope", geom.V(0, 0, 0)); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestMapAtClampsOutside(t *testing.T) {
	m := mapFixture(t)
	v, err := m.At("AA", geom.V(-100, -100, -100))
	if err != nil || math.IsNaN(v) {
		t.Errorf("clamped query = %v, %v", v, err)
	}
}

func TestStrongestAndCoverage(t *testing.T) {
	m := mapFixture(t)
	key, v := m.Strongest(geom.V(0.5, 1.5, 1))
	if key != "AA" {
		t.Errorf("strongest = %q", key)
	}
	if v > -40 || v < -90 {
		t.Errorf("strongest value = %v", v)
	}
	if got := m.CoverageAt(geom.V(0.5, 1.5, 1)); got != v {
		t.Errorf("CoverageAt = %v, want %v", got, v)
	}
}

func TestDarkRegions(t *testing.T) {
	m := mapFixture(t)
	// Field AA ranges −42.5 (x=0.25) to −77.5 (x=3.75); threshold −70
	// leaves the high-x cells dark.
	dark := m.DarkRegions(-70)
	if len(dark) == 0 {
		t.Fatal("no dark cells found")
	}
	for _, c := range dark {
		if c.Center.X < 2.5 {
			t.Errorf("dark cell at low x: %v", c.Center)
		}
		if c.BestRSS >= -70 {
			t.Errorf("non-dark cell reported: %v", c.BestRSS)
		}
	}
	// Worst first.
	for i := 1; i < len(dark); i++ {
		if dark[i].BestRSS < dark[i-1].BestRSS {
			t.Error("dark cells not sorted worst-first")
		}
	}
	frac := m.CoverageFraction(-70)
	want := 1 - float64(len(dark))/float64(8*6*4)
	if math.Abs(frac-want) > 1e-12 {
		t.Errorf("coverage fraction = %v, want %v", frac, want)
	}
}

func TestDarkRegionsForSpecificKey(t *testing.T) {
	m := mapFixture(t)
	// Key BB is −95 everywhere: fully dark at −90.
	dark, err := m.DarkRegionsFor("BB", -90)
	if err != nil {
		t.Fatal(err)
	}
	if len(dark) != 8*6*4 {
		t.Errorf("BB dark cells = %d, want all %d", len(dark), 8*6*4)
	}
	frac, err := m.CoverageFractionFor("BB", -90)
	if err != nil || frac != 0 {
		t.Errorf("BB coverage = %v, %v", frac, err)
	}
	// Key AA is dark only at high x for −70.
	darkAA, err := m.DarkRegionsFor("AA", -70)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range darkAA {
		if c.Center.X < 2.5 {
			t.Errorf("AA dark cell at low x: %v", c.Center)
		}
	}
	fracAA, err := m.CoverageFractionFor("AA", -70)
	if err != nil || fracAA <= 0 || fracAA >= 1 {
		t.Errorf("AA coverage = %v, %v", fracAA, err)
	}
	if _, err := m.DarkRegionsFor("nope", -70); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := m.CoverageFractionFor("nope", -70); err == nil {
		t.Error("unknown key accepted in coverage")
	}
}

func TestMapWriteCSV(t *testing.T) {
	m := mapFixture(t)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := 1 + 2*8*6*4
	if len(lines) != wantRows {
		t.Errorf("CSV rows = %d, want %d", len(lines), wantRows)
	}
	if !strings.HasPrefix(lines[0], "x,y,z,key,rss_dbm") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestPerKeyEnsembleWithIDW(t *testing.T) {
	// The generic ensemble must route to per-key IDW interpolators.
	ens := &ml.PerKeyEnsemble{
		Factory:   func() ml.Estimator { return &IDW{Power: 2} },
		KeyOffset: 3,
	}
	x := [][]float64{
		{0, 0, 0, 1, 0}, {1, 0, 0, 1, 0},
		{0, 0, 0, 0, 1}, {1, 0, 0, 0, 1},
	}
	y := []float64{-50, -60, -80, -90}
	if err := ens.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := ens.Predict([]float64{0, 0, 0, 1, 0})
	if err != nil || got != -50 {
		t.Errorf("ensemble key-0 = %v, %v", got, err)
	}
	got, _ = ens.Predict([]float64{0, 0, 0, 0, 1})
	if got != -80 {
		t.Errorf("ensemble key-1 = %v", got)
	}
}

func TestSliceAt(t *testing.T) {
	m := mapFixture(t)
	s, err := m.SliceAt("AA", 1.0, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nx != 16 || s.Ny != 12 || len(s.Values) != 16*12 {
		t.Fatalf("slice shape %dx%d/%d", s.Nx, s.Ny, len(s.Values))
	}
	if s.Min >= s.Max {
		t.Errorf("slice extremes %v..%v", s.Min, s.Max)
	}
	// The AA field decreases with x: first column > last column.
	first := s.Values[0]
	last := s.Values[s.Nx-1]
	if last >= first {
		t.Errorf("slice does not follow the field gradient: %v → %v", first, last)
	}
	if _, err := m.SliceAt("nope", 1.0, 4, 4); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := m.SliceAt("AA", 1.0, 0, 4); err == nil {
		t.Error("zero raster accepted")
	}
}

func TestSliceRender(t *testing.T) {
	m := mapFixture(t)
	s, err := m.SliceAt("AA", 1.0, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REM slice for AA") {
		t.Errorf("render header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 8 rows + x-axis footer.
	if len(lines) != 10 {
		t.Errorf("render lines = %d, want 10", len(lines))
	}
	// Strong cells (left, low x) must use denser glyphs than weak cells.
	row := lines[1]
	bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(bar) != 20 {
		t.Fatalf("bar width = %d", len(bar))
	}
	if bar[0] == bar[len(bar)-1] {
		t.Errorf("heatmap flat across the gradient: %q", bar)
	}
}
