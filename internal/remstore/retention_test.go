package remstore

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
)

// fakeClock drives the store's injectable clock so age-based retention
// is testable without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                 { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(st *Store, c *fakeClock) *Store { st.now = c.now; return st }

// rebuildOne derives the next generation with exactly one dirty key whose
// cells all hold v.
func rebuildOne(t *testing.T, m *rem.Map, key int, v float64) *rem.Map {
	t.Helper()
	next, err := m.RebuildKeys([]int{key}, func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range out {
			out[i] = v
		}
		return out, nil
	}, rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestRetentionMaxCount: SetRetention tightens the count bound and
// prunes immediately, oldest first.
func TestRetentionMaxCount(t *testing.T) {
	st := New(8)
	keys := []string{"a", "b", "c"}
	for g := 1; g <= 5; g++ {
		if _, err := st.Publish(constMap(t, float64(-g), keys), len(keys)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats().HistoryLen; got != 5 {
		t.Fatalf("history = %d, want 5", got)
	}
	st.SetRetention(Retention{MaxCount: 2})
	stats := st.Stats()
	if stats.HistoryLen != 2 || stats.Evictions != 3 {
		t.Fatalf("after SetRetention: history = %d evictions = %d, want 2 / 3", stats.HistoryLen, stats.Evictions)
	}
	h := st.History()
	if h[0].Version() != 4 || h[1].Version() != 5 {
		t.Fatalf("retained versions = %d, %d; want 4, 5", h[0].Version(), h[1].Version())
	}
	// MaxCount ≤ 0 leaves the bound unchanged.
	st.SetRetention(Retention{})
	if _, err := st.Publish(constMap(t, -6, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().HistoryLen; got != 2 {
		t.Fatalf("count bound not preserved: history = %d", got)
	}
}

// TestRetentionMaxAge: snapshots older than MaxAge are evicted at the
// next publish (or SetRetention), but the serving snapshot survives any
// age.
func TestRetentionMaxAge(t *testing.T) {
	clock := newFakeClock()
	st := withClock(New(10), clock)
	keys := []string{"a", "b"}
	st.SetRetention(Retention{MaxAge: time.Minute})
	for g := 1; g <= 3; g++ {
		if _, err := st.Publish(constMap(t, float64(-g), keys), len(keys)); err != nil {
			t.Fatal(err)
		}
		clock.advance(20 * time.Second)
	}
	// t = 60 s: v1 (published at 0 s) is exactly at the cutoff —
	// eviction needs strictly-older — so everything is still retained.
	st.SetRetention(Retention{MaxAge: time.Minute})
	if got := st.Stats().HistoryLen; got != 3 {
		t.Fatalf("history at cutoff = %d, want 3", got)
	}
	clock.advance(30 * time.Second) // t = 90 s: v1 (0 s) and v2 (20 s) are stale
	if _, err := st.Publish(constMap(t, -4, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.HistoryLen != 2 || stats.Evictions != 2 {
		t.Fatalf("after stale publish: history = %d evictions = %d, want 2 / 2", stats.HistoryLen, stats.Evictions)
	}
	// Let everything age out: the serving snapshot must survive.
	clock.advance(time.Hour)
	st.SetRetention(Retention{MaxAge: time.Minute})
	stats = st.Stats()
	if stats.HistoryLen != 1 || stats.CurrentVersion != 4 {
		t.Fatalf("serving snapshot evicted: %+v", stats)
	}
	if cur := st.Current(); cur == nil || cur.Version() != 4 {
		t.Fatal("Current() lost after age pruning")
	}
}

// TestRetentionLiveness: evicting older generations never invalidates a
// retained snapshot — its tiles (including those shared with evicted
// parents) stay readable bit-for-bit — and LiveTiles accounts the
// distinct tiles the retained suffix actually references.
func TestRetentionLiveness(t *testing.T) {
	st := New(10)
	keys := []string{"a", "b", "c", "d"}
	m1 := constMap(t, -1, keys)
	if _, err := st.Publish(m1, len(keys)); err != nil {
		t.Fatal(err)
	}
	m2 := rebuildOne(t, m1, 1, -2) // shares 3 of 4 keys' tiles with m1
	if _, err := st.Publish(m2, 1); err != nil {
		t.Fatal(err)
	}
	m3 := rebuildOne(t, m2, 2, -3) // shares 3 of 4 keys' tiles with m2
	if _, err := st.Publish(m3, 1); err != nil {
		t.Fatal(err)
	}
	tpk := m1.TilesPerKey()
	total := m1.NumTiles()
	// Live now: m1's full set + 1 rebuilt key per derivation.
	if got := st.LiveTiles(); got != total+2*tpk {
		t.Fatalf("LiveTiles = %d, want %d", got, total+2*tpk)
	}

	// Capture m2's exact answers while its whole chain is retained.
	probe := geom.V(1.3, 0.7, 1.9)
	want := make([]float64, len(keys))
	for i, k := range keys {
		v, err := m2.At(k, probe)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	// Evict m1 — the parent m2 shares tiles with — and force a GC so a
	// wrongly-released tile would be visibly recycled.
	st.SetRetention(Retention{MaxCount: 2})
	if got := st.Stats().HistoryLen; got != 2 {
		t.Fatalf("history = %d, want 2", got)
	}
	runtime.GC()
	for i, k := range keys {
		v, err := m2.At(k, probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("key %s changed after eviction: %v != %v", k, v, want[i])
		}
	}
	// Sharing between the retained pair is untouched by the eviction.
	if got := m3.SharedTiles(m2); got != total-tpk {
		t.Fatalf("SharedTiles(m3, m2) = %d, want %d", got, total-tpk)
	}
	// The retained suffix references m2's full set plus m3's rebuilt key.
	if got := st.LiveTiles(); got != total+tpk {
		t.Fatalf("LiveTiles after eviction = %d, want %d", got, total+tpk)
	}
}
