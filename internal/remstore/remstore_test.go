package remstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
)

var testVol = geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)

// constMap builds a map whose every cell holds v — so a reader can verify
// a snapshot's internal consistency by sampling many cells.
func constMap(t testing.TB, v float64, keys []string) *rem.Map {
	t.Helper()
	m, err := rem.BuildMapBatch(testVol, 6, 5, 4, keys, func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i := range out {
			out[i] = v
		}
		return out, nil
	}, rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreLifecycle(t *testing.T) {
	st := New(2)
	if st.Current() != nil {
		t.Fatal("empty store has a current snapshot")
	}
	if _, _, err := st.At("a", geom.V(1, 1, 1)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("query on empty store = %v, want ErrEmpty", err)
	}
	if _, _, _, err := st.Strongest(geom.V(1, 1, 1)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Strongest on empty store = %v, want ErrEmpty", err)
	}
	if _, err := st.Publish(nil, 0); err == nil {
		t.Fatal("nil map published")
	}
	keys := []string{"a", "b"}
	for gen := 1; gen <= 3; gen++ {
		s, err := st.Publish(constMap(t, float64(-gen), keys), len(keys))
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != uint64(gen) {
			t.Fatalf("publish %d: version = %d", gen, s.Version())
		}
		v, ver, err := st.At("a", geom.V(1, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if v != float64(-gen) || ver != uint64(gen) {
			t.Fatalf("publish %d: At = %v @ version %d", gen, v, ver)
		}
	}
	// History is bounded to 2 and ordered oldest first.
	h := st.History()
	if len(h) != 2 || h[0].Version() != 2 || h[1].Version() != 3 {
		vs := make([]uint64, len(h))
		for i, s := range h {
			vs[i] = s.Version()
		}
		t.Fatalf("history versions = %v, want [2 3]", vs)
	}
	stats := st.Stats()
	if stats.Publishes != 3 || stats.CurrentVersion != 3 || stats.HistoryLen != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Queries != 3 { // one successful At per publish; empty-store queries are uncounted
		t.Fatalf("store queries = %d, want 3", stats.Queries)
	}
	cur := st.Current()
	if got := cur.Queries(); got != 1 {
		t.Fatalf("current snapshot queries = %d, want 1", got)
	}
	if built, shared := cur.BuildStats(); built != 2 || shared != 0 {
		t.Fatalf("build stats = %d built, %d shared", built, shared)
	}
}

// TestPublishRejectsGeometryChange: a snapshot with different grid or key
// cardinality cannot silently replace the serving one.
func TestPublishRejectsGeometryChange(t *testing.T) {
	st := New(0)
	if _, err := st.Publish(constMap(t, -1, []string{"a", "b"}), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(constMap(t, -2, []string{"a"}), 1); err == nil {
		t.Fatal("key-cardinality change published")
	}
	// Same cardinality but a different vocabulary must be rejected too:
	// key-addressed queries would otherwise answer from whichever
	// generation is current.
	if _, err := st.Publish(constMap(t, -2, []string{"a", "c"}), 2); err == nil {
		t.Fatal("vocabulary change published")
	}
	// So must a different coordinate frame under the same keys.
	other, err := rem.BuildMapBatch(geom.MustCuboid(geom.V(10, 10, 0), 4, 3, 2.6), 6, 5, 4,
		[]string{"a", "b"}, func(centers []geom.Vec3, k int) ([]float64, error) {
			return make([]float64, len(centers)), nil
		}, rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(other, 2); err == nil {
		t.Fatal("volume change published")
	}
}

// TestSharedTilesStat: Publish records tile sharing against the previous
// snapshot.
func TestSharedTilesStat(t *testing.T) {
	st := New(0)
	keys := []string{"a", "b", "c"}
	m1 := constMap(t, -1, keys)
	if _, err := st.Publish(m1, len(keys)); err != nil {
		t.Fatal(err)
	}
	m2, err := m1.RebuildKeys([]int{1}, func(centers []geom.Vec3, k int) ([]float64, error) {
		return make([]float64, len(centers)), nil
	}, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := st.Publish(m2, 1)
	if err != nil {
		t.Fatal(err)
	}
	built, shared := s2.BuildStats()
	if built != 1 || shared != m1.NumTiles()-m1.TilesPerKey() {
		t.Fatalf("build stats = %d built, %d shared; want 1, %d", built, shared, m1.NumTiles()-m1.TilesPerKey())
	}
}

// TestConcurrentQueryDuringPublish hammers the store with readers while a
// writer swaps snapshots. Every map is constant-valued with its
// generation, so a reader can detect a torn snapshot by comparing cells
// sampled across the map — and the version returned by At must match the
// value served. Run under -race this is the publish/query safety proof.
func TestConcurrentQueryDuringPublish(t *testing.T) {
	const (
		readers   = 8
		publishes = 60
	)
	keys := []string{"a", "b", "c", "d"}
	maps := make([]*rem.Map, publishes+1)
	for g := range maps {
		maps[g] = constMap(t, float64(g), keys)
	}
	probes := []geom.Vec3{
		geom.V(0.1, 0.1, 0.1), geom.V(3.9, 2.9, 2.5), geom.V(2, 1.5, 1.3), geom.V(1, 2, 0.4),
	}
	// expected[g][pi] is generation g's exact answer at probes[pi]
	// (identical for every key: the maps are key-symmetric). Any reader
	// observing a value that is not bit-equal to its snapshot's expected
	// row saw a torn or misversioned map.
	expected := make([][]float64, len(maps))
	for g, m := range maps {
		expected[g] = make([]float64, len(probes))
		for pi, p := range probes {
			v, err := m.At(keys[0], p)
			if err != nil {
				t.Fatal(err)
			}
			expected[g][pi] = v
		}
	}
	st := New(3)
	if _, err := st.Publish(maps[0], len(keys)); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// At least one full iteration per reader, even if the writer
			// finishes first (single-CPU schedulers).
			for iter := 0; iter == 0 || !stop.Load(); iter++ {
				s := st.Current()
				m := s.Map()
				g := int(s.Version() - 1)
				if g < 0 || g >= len(maps) {
					errs <- errors.New("snapshot version outside published range")
					return
				}
				for pi, p := range probes {
					for _, k := range keys {
						v, err := m.At(k, p)
						if err != nil {
							errs <- err
							return
						}
						if v != expected[g][pi] {
							errs <- errors.New("torn snapshot: value does not match the snapshot's generation")
							return
						}
					}
				}
				// The store-level query path must serve a consistent
				// (value, version) pair even while swaps happen between
				// the load and the read.
				v, ver, err := st.At(keys[0], probes[2])
				if err != nil {
					errs <- err
					return
				}
				if ver == 0 || int(ver-1) >= len(maps) || v != expected[ver-1][2] {
					errs <- errors.New("store query (value, version) pair inconsistent")
					return
				}
			}
		}(r)
	}
	for g := 1; g <= publishes; g++ {
		if _, err := st.Publish(maps[g], len(keys)); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := st.Stats()
	if stats.Publishes != publishes+1 {
		t.Fatalf("publishes = %d, want %d", stats.Publishes, publishes+1)
	}
	if stats.HistoryLen != 3 {
		t.Fatalf("history length = %d, want 3", stats.HistoryLen)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries counted")
	}
}

// TestPublishAtExplicitVersion: the replication hook publishes under the
// caller's version numbers — strictly increasing, gaps allowed — and the
// publish counter still counts every publish.
func TestPublishAtExplicitVersion(t *testing.T) {
	st := New(0)
	keys := []string{"a", "b"}
	if _, err := st.PublishAt(constMap(t, -1, keys), 2, 0); err == nil {
		t.Fatal("explicit version 0 accepted")
	}
	s, err := st.PublishAt(constMap(t, -1, keys), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 7 {
		t.Fatalf("version = %d, want 7", s.Version())
	}
	if _, err := st.PublishAt(constMap(t, -2, keys), 2, 7); err == nil {
		t.Fatal("repeated version accepted")
	}
	if _, err := st.PublishAt(constMap(t, -2, keys), 2, 3); err == nil {
		t.Fatal("backwards version accepted")
	}
	if s, err = st.PublishAt(constMap(t, -2, keys), 2, 12); err != nil || s.Version() != 12 {
		t.Fatalf("gap publish = (%v, %v), want version 12", s, err)
	}
	if _, ver, err := st.At("a", geom.V(1, 1, 1)); err != nil || ver != 12 {
		t.Fatalf("At serves version %d (%v), want 12", ver, err)
	}
	stats := st.Stats()
	if stats.Publishes != 2 || stats.CurrentVersion != 12 {
		t.Fatalf("stats = %+v, want 2 publishes at version 12", stats)
	}
	// An implicit Publish into the same store stays monotonic even though
	// the publish sequence (3) lags the serving version.
	if s, err = st.Publish(constMap(t, -3, keys), 2); err != nil || s.Version() != 13 {
		t.Fatalf("implicit publish after explicit = version %d (%v), want 13", s.Version(), err)
	}
}

// TestSnapshotAt: exact-version history lookup — hit while retained, nil
// once evicted or for a version never published.
func TestSnapshotAt(t *testing.T) {
	st := New(3)
	keys := []string{"a"}
	for gen := 1; gen <= 5; gen++ {
		if _, err := st.Publish(constMap(t, float64(-gen), keys), 1); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(3); want <= 5; want++ {
		s := st.SnapshotAt(want)
		if s == nil || s.Version() != want {
			t.Fatalf("SnapshotAt(%d) = %v", want, s)
		}
		if v, err := s.Map().At("a", geom.V(1, 1, 1)); err != nil || v != -float64(want) {
			t.Fatalf("SnapshotAt(%d) serves %v (%v)", want, v, err)
		}
	}
	if s := st.SnapshotAt(2); s != nil {
		t.Fatal("evicted version still resolvable")
	}
	if s := st.SnapshotAt(99); s != nil {
		t.Fatal("never-published version resolvable")
	}
}
