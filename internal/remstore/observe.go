package remstore

import (
	"time"

	"repro/internal/remobs"
)

// This file attaches the observability layer to a snapshot store. The
// query path is deliberately untouched: the store's existing padded
// counters are bridged as scrape-time CounterFuncs, so attaching an
// Observer adds zero work per query — the ≤2 ns no-op bound CI guards
// is really a zero. Publish-side instruments (latency histograms, the
// cover-index gauges, the event ring) live on the publish path, which
// is per-generation, not per-request.

// storeObs is the pre-registered instrument set; nil means
// uninstrumented.
type storeObs struct {
	obs         *remobs.Observer
	publishHist *remobs.Histogram // whole publish call
	indexHist   *remobs.Histogram // BuildCoverIndex inside publish
	mendHist    *remobs.Histogram // index mends carried in by RebuildKeys
	mendedCubes *remobs.Counter   // cumulative cubes re-filtered by mends
}

// SetObserver registers the store's metrics with the observer and
// starts recording publish events. Call before traffic for complete
// counts; calling again with the same observer is harmless
// (registration is idempotent). A nil observer (or registry) is the
// documented opt-out and leaves the store untouched.
func (st *Store) SetObserver(obs *remobs.Observer) {
	if obs == nil || obs.Registry == nil {
		return
	}
	reg := obs.Registry
	o := &storeObs{
		obs: obs,
		publishHist: reg.Histogram("rem_store_publish_seconds",
			"snapshot publish latency (geometry checks, index build, retention)"),
		indexHist: reg.Histogram("rem_store_coverindex_build_seconds",
			"coverage-index construction inside publish (zero-length for pre-mended maps)"),
		mendHist: reg.Histogram("rem_store_coverindex_mend_seconds",
			"coverage-index mend latency carried in by incremental rebuilds"),
		mendedCubes: reg.Counter("rem_store_coverindex_mended_cubes_total",
			"cubes re-filtered by coverage-index mends across all publishes"),
	}
	reg.CounterFunc("rem_store_queries_total",
		"logical queries served (one per point)",
		func() float64 { return float64(st.queries.Load()) })
	reg.CounterFunc("rem_store_publishes_total",
		"snapshot generations published",
		func() float64 { return float64(st.publishes.Load()) })
	reg.CounterFunc("rem_store_evictions_total",
		"snapshots evicted by retention",
		func() float64 {
			st.mu.Lock()
			defer st.mu.Unlock()
			return float64(st.evictions)
		})
	reg.GaugeFunc("rem_store_serving_version",
		"version of the serving snapshot (0 before the first publish)",
		func() float64 {
			if s := st.cur.Load(); s != nil {
				return float64(s.version)
			}
			return 0
		})
	reg.GaugeFunc("rem_store_coverindex_candidate_ratio",
		"mean Strongest candidates per cube over the vocabulary size (1 = no pruning, 0 = empty)",
		func() float64 { return st.coverCandidateRatio() })
	reg.GaugeFunc("rem_store_coverindex_bytes",
		"storage footprint of the serving snapshot's coverage index",
		func() float64 {
			s := st.cur.Load()
			if s == nil {
				return 0
			}
			cs, ok := s.m.CoverIndexStats()
			if !ok {
				return 0
			}
			return float64(cs.Bytes)
		})
	st.mu.Lock()
	st.o = o
	st.mu.Unlock()
}

// coverCandidateRatio is the pruning-ratio gauge: how much of the
// brute O(K) Strongest scan the serving index actually admits. 1 means
// the index prunes nothing; the PR 8 benchmarks saw ~0.1 at paper
// scale. NaN-free: an empty or unindexed store reports 1 (brute cost).
func (st *Store) coverCandidateRatio() float64 {
	s := st.cur.Load()
	if s == nil {
		return 1
	}
	cs, ok := s.m.CoverIndexStats()
	k := len(s.m.Keys())
	if !ok || cs.Cubes == 0 || k == 0 {
		return 1
	}
	return float64(cs.Candidates) / float64(cs.Cubes) / float64(k)
}

// observePublish records one successful publish: latency histograms,
// mend provenance and the generation event. Called under st.mu with
// the just-published snapshot.
func (st *Store) observePublish(s *Snapshot, total, index time.Duration) {
	o := st.o
	if o == nil {
		return
	}
	o.publishHist.Observe(total)
	o.indexHist.Observe(index)
	mended, mendD := s.m.CoverMendStats()
	if mended > 0 {
		o.mendHist.Observe(mendD)
		o.mendedCubes.Add(uint64(mended))
	}
	o.obs.Event("publish",
		"version=%d built_keys=%d shared_tiles=%d mended_cubes=%d publish=%s index=%s",
		s.version, s.builtKeys, s.sharedTiles, mended,
		total.Round(time.Microsecond), index.Round(time.Microsecond))
}
