// Package remstore is the live-serving side of the REM: a concurrent
// snapshot store that decouples queries from rebuilds. A writer publishes
// immutable rem.Map generations (typically produced by Map.RebuildKeys
// from a window of new observations); readers resolve the current
// snapshot with a single atomic pointer load and query it lock-free, so a
// rebuild never blocks a query and a query never observes a half-built
// map. The store keeps a bounded history of recent snapshots (useful for
// delta inspection and for readers pinned to an old generation) under a
// configurable retention policy (max count and max age, see
// SetRetention), and per-snapshot build/query counters. The hot counters
// are cache-line padded (parallel.PaddedUint64) so concurrent readers
// bumping them do not invalidate each other's lines — and, in a sharded
// deployment, so two stores' counters never share a line.
package remstore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rem"
)

// DefaultMaxHistory bounds the snapshot history when New is given no
// explicit bound.
const DefaultMaxHistory = 4

// ErrEmpty is returned by queries against a store that has never
// published a snapshot.
var ErrEmpty = errors.New("remstore: no snapshot published")

// Snapshot is one published, immutable REM generation together with its
// serving counters. All methods are safe for concurrent use.
type Snapshot struct {
	m           *rem.Map
	version     uint64
	publishedAt time.Time
	// Build provenance: how many keys the publisher re-rasterised for
	// this generation and how many tiles it shares with its predecessor.
	builtKeys   int
	sharedTiles int
	// queries is bumped by every reader serving from this snapshot; the
	// padding keeps those increments off the immutable fields' cache
	// lines above.
	queries parallel.PaddedUint64
}

// Map returns the snapshot's immutable map.
func (s *Snapshot) Map() *rem.Map { return s.m }

// Version returns the snapshot's version: the store's publish sequence
// number (1 for the first published snapshot), unless the publisher
// chose one explicitly via PublishAt. Strictly increasing across
// publishes either way.
func (s *Snapshot) Version() uint64 { return s.version }

// PublishedAt returns when the snapshot was published (the store clock;
// wall time outside tests). Age-based retention evicts against it.
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// Queries returns how many queries this snapshot has served.
func (s *Snapshot) Queries() uint64 { return s.queries.Load() }

// BuildStats returns the publish-time provenance: the number of keys
// rebuilt for this generation and the number of tiles shared with the
// previous snapshot.
func (s *Snapshot) BuildStats() (builtKeys, sharedTiles int) {
	return s.builtKeys, s.sharedTiles
}

// Retention is the snapshot history policy. The serving snapshot is
// never evicted, whatever the bounds say.
type Retention struct {
	// MaxCount bounds the retained snapshots, serving one included;
	// ≤ 0 keeps the store's current count bound unchanged.
	MaxCount int
	// MaxAge evicts snapshots published longer than this ago; ≤ 0
	// disables age-based eviction.
	MaxAge time.Duration
}

// Store is the concurrent snapshot store. Publish swaps the current
// snapshot atomically; Current and the query helpers are lock-free. The
// zero value is not usable; call New.
type Store struct {
	cur atomic.Pointer[Snapshot]

	// mu serialises publishers and guards history/retention; readers
	// never take it.
	mu        sync.Mutex
	history   []*Snapshot
	retain    Retention
	evictions uint64
	// now is the store clock — time.Now outside tests, injectable so
	// age-based retention is testable without sleeping.
	now func() time.Time

	// noIndex disables publish-time coverage-index construction (the
	// opt-out; see SetCoverIndexing). Guarded by mu like the rest of the
	// publish path.
	noIndex bool

	// o is the attached instrument set (observe.go); nil means
	// uninstrumented. Guarded by mu: written once by SetObserver, read
	// on the publish path, never on the query path.
	o *storeObs

	// The store-wide counters are padded to their own cache lines:
	// queries is bumped by every concurrent reader and must not share a
	// line with publishes (bumped by writers) or with cur (loaded by
	// every reader).
	publishes parallel.PaddedUint64
	queries   parallel.PaddedUint64
}

// New returns an empty store keeping at most maxHistory snapshots
// (≤ 0 means DefaultMaxHistory). Use SetRetention to add an age bound
// or change the count bound later.
func New(maxHistory int) *Store {
	if maxHistory <= 0 {
		maxHistory = DefaultMaxHistory
	}
	return &Store{retain: Retention{MaxCount: maxHistory}, now: time.Now}
}

// SetCoverIndexing toggles publish-time coverage-index construction (on
// by default). With it off, snapshots without an index serve
// Strongest/StrongestBatch via the brute O(keys) scan — same results
// (rule 9), pre-index cost. Maps that already carry an index (a mended
// RebuildKeys/ApplyDelta generation) keep it either way.
func (st *Store) SetCoverIndexing(on bool) {
	st.mu.Lock()
	st.noIndex = !on
	st.mu.Unlock()
}

// SetRetention updates the history policy and prunes immediately.
// A non-positive MaxCount leaves the count bound unchanged; a
// non-positive MaxAge disables age eviction.
func (st *Store) SetRetention(r Retention) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.MaxCount > 0 {
		st.retain.MaxCount = r.MaxCount
	}
	st.retain.MaxAge = r.MaxAge
	st.pruneLocked(st.now())
}

// pruneLocked applies the retention policy to the history front (the
// oldest snapshots). The serving snapshot — always the last history
// entry — survives both bounds.
func (st *Store) pruneLocked(now time.Time) {
	for len(st.history) > st.retain.MaxCount {
		st.history[0] = nil
		st.history = st.history[1:]
		st.evictions++
	}
	if st.retain.MaxAge > 0 {
		cutoff := now.Add(-st.retain.MaxAge)
		for len(st.history) > 1 && st.history[0].publishedAt.Before(cutoff) {
			st.history[0] = nil
			st.history = st.history[1:]
			st.evictions++
		}
	}
}

// Publish makes m the current snapshot and returns it. builtKeys records
// how many keys the caller re-rasterised to produce m (its key count for
// a from-scratch build). Publishers are serialised; readers continue on
// the previous snapshot until the single atomic swap.
func (st *Store) Publish(m *rem.Map, builtKeys int) (*Snapshot, error) {
	return st.publish(m, builtKeys, 0)
}

// PublishAt is Publish with an explicit snapshot version instead of the
// store's own publish sequence — the replication hook: a follower
// mirroring a leader publishes each synced generation under the
// leader's version number, so version-tagged responses from leader and
// replica agree at the same generation. The version must exceed the
// serving snapshot's (a replica can skip generations, never revisit
// one); the publish counter still counts every publish.
func (st *Store) PublishAt(m *rem.Map, builtKeys int, version uint64) (*Snapshot, error) {
	if version == 0 {
		return nil, errors.New("remstore: explicit version must be positive")
	}
	return st.publish(m, builtKeys, version)
}

func (st *Store) publish(m *rem.Map, builtKeys int, version uint64) (*Snapshot, error) {
	if m == nil {
		return nil, errors.New("remstore: nil map")
	}
	start := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	prev := st.cur.Load()
	if prev != nil {
		pn, pm, pz := prev.m.Resolution()
		nn, nm, nz := m.Resolution()
		if pn != nn || pm != nm || pz != nz || len(prev.m.Keys()) != len(m.Keys()) {
			return nil, fmt.Errorf("remstore: snapshot geometry %dx%dx%d/%d keys does not match current %dx%dx%d/%d keys",
				nn, nm, nz, len(m.Keys()), pn, pm, pz, len(prev.m.Keys()))
		}
		// Same cardinality is not enough: mixing vocabularies in one
		// store would make key-addressed queries answer from whichever
		// generation happens to be current.
		for i, k := range m.Keys() {
			if pk := prev.m.Keys()[i]; pk != k {
				return nil, fmt.Errorf("remstore: snapshot key %d is %q, current store serves %q", i, k, pk)
			}
		}
		// And the coordinate frame must match: a snapshot over a
		// different volume would silently clamp and interpolate queries
		// in the wrong frame under the same keys.
		if pv, v := prev.m.Volume(), m.Volume(); !sameBounds(pv, v) {
			return nil, fmt.Errorf("remstore: snapshot volume %v–%v does not match current %v–%v", v.Min, v.Max, pv.Min, pv.Max)
		}
	}
	if version != 0 && prev != nil && version <= prev.version {
		return nil, fmt.Errorf("remstore: explicit version %d not after serving version %d", version, prev.version)
	}
	seq := st.publishes.Add(1)
	if version == 0 {
		version = seq
		// The publish sequence can lag the serving version if explicit
		// versions were published into this store; versions stay strictly
		// monotonic regardless.
		if prev != nil && version <= prev.version {
			version = prev.version + 1
		}
	}
	// Materialise the coverage index before the snapshot becomes visible,
	// so no reader ever pays the brute Strongest scan on an indexed
	// store. Incremental generations usually arrive with a mended index
	// already attached (RebuildKeys/ApplyDelta carry it forward); this
	// covers from-scratch builds and codec-loaded maps.
	var indexD time.Duration
	if !st.noIndex {
		t0 := time.Now()
		m.BuildCoverIndex()
		indexD = time.Since(t0)
	}
	s := &Snapshot{m: m, version: version, publishedAt: st.now(), builtKeys: builtKeys}
	if prev != nil {
		s.sharedTiles = m.SharedTiles(prev.m)
	}
	st.history = append(st.history, s)
	st.cur.Store(s)
	st.pruneLocked(s.publishedAt)
	st.observePublish(s, time.Since(start), indexD)
	return s, nil
}

// sameBounds compares two volumes bit-for-bit (the identity rem.Map.Equal
// uses), so NaN coordinates can never slip past the frame check.
func sameBounds(a, b geom.Cuboid) bool {
	av := [6]float64{a.Min.X, a.Min.Y, a.Min.Z, a.Max.X, a.Max.Y, a.Max.Z}
	bv := [6]float64{b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

// Current returns the latest snapshot, or nil before the first publish.
// It is a single atomic load — safe to call from any number of
// goroutines while publishes proceed.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// At answers a point query against the current snapshot, returning the
// interpolated value and the snapshot version that served it. Only
// served queries count: a failed lookup (unknown key, empty store)
// leaves the counters alone.
func (st *Store) At(key string, p geom.Vec3) (float64, uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return 0, 0, ErrEmpty
	}
	v, err := s.m.At(key, p)
	if err == nil {
		s.queries.Add(1)
		st.queries.Add(1)
	}
	return v, s.version, err
}

// AtBatch answers a multi-point query against the current snapshot: the
// key is resolved once and every point is served by the same snapshot,
// whose version is returned. Element i corresponds to pts[i] and is
// bit-identical to At(key, pts[i]); each point counts as one query.
func (st *Store) AtBatch(key string, pts []geom.Vec3) ([]float64, uint64, error) {
	out := make([]float64, len(pts))
	ver, err := st.AtBatchInto(out, key, pts)
	if err != nil {
		return nil, 0, err
	}
	return out, ver, nil
}

// AtBatchInto is AtBatch into a caller-owned buffer — the
// zero-allocation serving path. len(dst) must equal len(pts). A failed
// batch (unknown key, buffer mismatch) counts no queries.
func (st *Store) AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return 0, ErrEmpty
	}
	if err := s.m.AtBatchInto(dst, key, pts); err != nil {
		return 0, err
	}
	s.queries.Add(uint64(len(pts)))
	st.queries.Add(uint64(len(pts)))
	return s.version, nil
}

// Strongest answers a best-server query against the current snapshot,
// returning the winning key, its value and the serving snapshot version.
func (st *Store) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return "", 0, 0, ErrEmpty
	}
	s.queries.Add(1)
	st.queries.Add(1)
	key, v := s.m.Strongest(p)
	return key, v, s.version, nil
}

// StrongestBatch answers a best-server query for every point against one
// snapshot (whose version is returned): element i matches what
// Strongest(pts[i]) would return. Each point counts as one query.
func (st *Store) StrongestBatch(pts []geom.Vec3) ([]string, []float64, uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return nil, nil, 0, ErrEmpty
	}
	s.queries.Add(uint64(len(pts)))
	st.queries.Add(uint64(len(pts)))
	keys, vals := s.m.StrongestBatch(pts)
	return keys, vals, s.version, nil
}

// StrongestBatchInto is StrongestBatch into caller-owned buffers — the
// zero-allocation serving path behind POST /strongest. len(keys) and
// len(vals) must equal len(pts). A failed batch counts no queries.
func (st *Store) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) (uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return 0, ErrEmpty
	}
	if err := s.m.StrongestBatchInto(keys, vals, pts); err != nil {
		return 0, err
	}
	s.queries.Add(uint64(len(pts)))
	st.queries.Add(uint64(len(pts)))
	return s.version, nil
}

// History returns the retained snapshots, oldest first. The slice is a
// copy; the snapshots are shared (and immutable apart from their
// counters).
func (st *Store) History() []*Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*Snapshot(nil), st.history...)
}

// SnapshotAt returns the retained snapshot with exactly the given
// version, or nil if it was never published or has been evicted — the
// delta-base lookup: a server asked for "the changes since version v"
// can only answer if v is still in its history.
func (st *Store) SnapshotAt(version uint64) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	// Newest first: delta bases are overwhelmingly the latest or
	// next-to-latest generation.
	for i := len(st.history) - 1; i >= 0; i-- {
		if st.history[i].version == version {
			return st.history[i]
		}
	}
	return nil
}

// LiveTiles returns the distinct tile count referenced by the retained
// snapshots — the memory the history actually holds live, as opposed to
// HistoryLen × NumTiles. It is computed from the per-snapshot
// SharedTiles provenance: the oldest retained snapshot contributes all
// its tiles, every later one only the tiles it did not share with its
// immediate predecessor. Exact for publish chains produced by
// RebuildKeys (tile sharing is strictly between consecutive
// generations there); an upper bound if unrelated maps that alias
// storage are published out of order.
func (st *Store) LiveTiles() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.liveTilesLocked()
}

func (st *Store) liveTilesLocked() int {
	if len(st.history) == 0 {
		return 0
	}
	live := st.history[0].m.NumTiles()
	for _, s := range st.history[1:] {
		live += s.m.NumTiles() - s.sharedTiles
	}
	return live
}

// Stats is an aggregate view of the store. The json tags are the wire
// shape the remserve /stats endpoint exposes per shard.
type Stats struct {
	// Publishes counts snapshots ever published.
	Publishes uint64 `json:"publishes"`
	// Queries counts queries served across all snapshots (each point of
	// a batch query counts once).
	Queries uint64 `json:"queries"`
	// CurrentVersion is the serving snapshot's version (0 when empty).
	CurrentVersion uint64 `json:"current_version"`
	// HistoryLen is the retained snapshot count.
	HistoryLen int `json:"history_len"`
	// Evictions counts snapshots dropped by the retention policy.
	Evictions uint64 `json:"evictions"`
	// LiveTiles is the distinct tile count the retained history
	// references (see Store.LiveTiles).
	LiveTiles int `json:"live_tiles"`
}

// Stats returns the aggregate counters.
func (st *Store) Stats() Stats {
	s := Stats{
		Publishes: st.publishes.Load(),
		Queries:   st.queries.Load(),
	}
	if cur := st.cur.Load(); cur != nil {
		s.CurrentVersion = cur.version
	}
	st.mu.Lock()
	s.HistoryLen = len(st.history)
	s.Evictions = st.evictions
	s.LiveTiles = st.liveTilesLocked()
	st.mu.Unlock()
	return s
}
