// Package remstore is the live-serving side of the REM: a concurrent
// snapshot store that decouples queries from rebuilds. A writer publishes
// immutable rem.Map generations (typically produced by Map.RebuildKeys
// from a window of new observations); readers resolve the current
// snapshot with a single atomic pointer load and query it lock-free, so a
// rebuild never blocks a query and a query never observes a half-built
// map. The store keeps a bounded history of recent snapshots (useful for
// delta inspection and for readers pinned to an old generation) and
// per-snapshot build/query counters.
package remstore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/rem"
)

// DefaultMaxHistory bounds the snapshot history when New is given no
// explicit bound.
const DefaultMaxHistory = 4

// ErrEmpty is returned by queries against a store that has never
// published a snapshot.
var ErrEmpty = errors.New("remstore: no snapshot published")

// Snapshot is one published, immutable REM generation together with its
// serving counters. All methods are safe for concurrent use.
type Snapshot struct {
	m       *rem.Map
	version uint64
	// Build provenance: how many keys the publisher re-rasterised for
	// this generation and how many tiles it shares with its predecessor.
	builtKeys   int
	sharedTiles int
	queries     atomic.Uint64
}

// Map returns the snapshot's immutable map.
func (s *Snapshot) Map() *rem.Map { return s.m }

// Version returns the store's publish sequence number (1 for the first
// published snapshot).
func (s *Snapshot) Version() uint64 { return s.version }

// Queries returns how many queries this snapshot has served.
func (s *Snapshot) Queries() uint64 { return s.queries.Load() }

// BuildStats returns the publish-time provenance: the number of keys
// rebuilt for this generation and the number of tiles shared with the
// previous snapshot.
func (s *Snapshot) BuildStats() (builtKeys, sharedTiles int) {
	return s.builtKeys, s.sharedTiles
}

// Store is the concurrent snapshot store. Publish swaps the current
// snapshot atomically; Current and the query helpers are lock-free. The
// zero value is not usable; call New.
type Store struct {
	cur atomic.Pointer[Snapshot]

	// mu serialises publishers and guards history; readers never take it.
	mu      sync.Mutex
	history []*Snapshot
	maxHist int

	publishes atomic.Uint64
	queries   atomic.Uint64
}

// New returns an empty store keeping at most maxHistory snapshots
// (≤ 0 means DefaultMaxHistory).
func New(maxHistory int) *Store {
	if maxHistory <= 0 {
		maxHistory = DefaultMaxHistory
	}
	return &Store{maxHist: maxHistory}
}

// Publish makes m the current snapshot and returns it. builtKeys records
// how many keys the caller re-rasterised to produce m (its key count for
// a from-scratch build). Publishers are serialised; readers continue on
// the previous snapshot until the single atomic swap.
func (st *Store) Publish(m *rem.Map, builtKeys int) (*Snapshot, error) {
	if m == nil {
		return nil, errors.New("remstore: nil map")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	prev := st.cur.Load()
	if prev != nil {
		pn, pm, pz := prev.m.Resolution()
		nn, nm, nz := m.Resolution()
		if pn != nn || pm != nm || pz != nz || len(prev.m.Keys()) != len(m.Keys()) {
			return nil, fmt.Errorf("remstore: snapshot geometry %dx%dx%d/%d keys does not match current %dx%dx%d/%d keys",
				nn, nm, nz, len(m.Keys()), pn, pm, pz, len(prev.m.Keys()))
		}
		// Same cardinality is not enough: mixing vocabularies in one
		// store would make key-addressed queries answer from whichever
		// generation happens to be current.
		for i, k := range m.Keys() {
			if pk := prev.m.Keys()[i]; pk != k {
				return nil, fmt.Errorf("remstore: snapshot key %d is %q, current store serves %q", i, k, pk)
			}
		}
		// And the coordinate frame must match: a snapshot over a
		// different volume would silently clamp and interpolate queries
		// in the wrong frame under the same keys.
		if pv, v := prev.m.Volume(), m.Volume(); !sameBounds(pv, v) {
			return nil, fmt.Errorf("remstore: snapshot volume %v–%v does not match current %v–%v", v.Min, v.Max, pv.Min, pv.Max)
		}
	}
	s := &Snapshot{m: m, version: st.publishes.Add(1), builtKeys: builtKeys}
	if prev != nil {
		s.sharedTiles = m.SharedTiles(prev.m)
	}
	st.history = append(st.history, s)
	if len(st.history) > st.maxHist {
		st.history = append(st.history[:0], st.history[len(st.history)-st.maxHist:]...)
	}
	st.cur.Store(s)
	return s, nil
}

// sameBounds compares two volumes bit-for-bit (the identity rem.Map.Equal
// uses), so NaN coordinates can never slip past the frame check.
func sameBounds(a, b geom.Cuboid) bool {
	av := [6]float64{a.Min.X, a.Min.Y, a.Min.Z, a.Max.X, a.Max.Y, a.Max.Z}
	bv := [6]float64{b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

// Current returns the latest snapshot, or nil before the first publish.
// It is a single atomic load — safe to call from any number of
// goroutines while publishes proceed.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// At answers a point query against the current snapshot, returning the
// interpolated value and the snapshot version that served it.
func (st *Store) At(key string, p geom.Vec3) (float64, uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return 0, 0, ErrEmpty
	}
	s.queries.Add(1)
	st.queries.Add(1)
	v, err := s.m.At(key, p)
	return v, s.version, err
}

// Strongest answers a best-server query against the current snapshot,
// returning the winning key, its value and the serving snapshot version.
func (st *Store) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	s := st.cur.Load()
	if s == nil {
		return "", 0, 0, ErrEmpty
	}
	s.queries.Add(1)
	st.queries.Add(1)
	key, v := s.m.Strongest(p)
	return key, v, s.version, nil
}

// History returns the retained snapshots, oldest first. The slice is a
// copy; the snapshots are shared (and immutable apart from their
// counters).
func (st *Store) History() []*Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*Snapshot(nil), st.history...)
}

// Stats is an aggregate view of the store.
type Stats struct {
	// Publishes counts snapshots ever published.
	Publishes uint64
	// Queries counts queries served across all snapshots.
	Queries uint64
	// CurrentVersion is the serving snapshot's version (0 when empty).
	CurrentVersion uint64
	// HistoryLen is the retained snapshot count.
	HistoryLen int
}

// Stats returns the aggregate counters.
func (st *Store) Stats() Stats {
	s := Stats{
		Publishes: st.publishes.Load(),
		Queries:   st.queries.Load(),
	}
	if cur := st.cur.Load(); cur != nil {
		s.CurrentVersion = cur.version
	}
	st.mu.Lock()
	s.HistoryLen = len(st.history)
	st.mu.Unlock()
	return s
}
