package remstore

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/remobs"
)

// TestObserverPublishMetrics publishes through an instrumented store
// and asserts the scrape is valid and carries the publish histogram,
// the bridged counters and a sane candidate-pruning ratio.
func TestObserverPublishMetrics(t *testing.T) {
	obs := remobs.New(0)
	st := New(4)
	st.SetObserver(obs)
	keys := []string{"a", "b", "c"}
	if _, err := st.Publish(constMap(t, -50, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(constMap(t, -60, keys), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := st.At("a", geom.V(1, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}

	body := obs.Registry.AppendPrometheus(nil)
	if err := remobs.CheckExposition(body); err != nil {
		t.Fatalf("exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"rem_store_publish_seconds_count 2",
		"rem_store_queries_total 5",
		"rem_store_publishes_total 2",
		"rem_store_serving_version 2",
		"rem_store_coverindex_candidate_ratio ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	// Two events (one per publish) in the ring, in order.
	evs := obs.Events.Snapshot()
	if len(evs) != 2 || evs[0].Kind != "publish" || evs[1].Kind != "publish" {
		t.Fatalf("event ring = %+v, want 2 publish events", evs)
	}
	if !strings.Contains(evs[1].Text, "version=2") {
		t.Errorf("second publish event %q does not name version 2", evs[1].Text)
	}
}

// TestObserverQueryZeroAlloc pins the acceptance bound at the library
// layer: attaching an Observer adds no per-query allocation (the query
// counters are bridged at scrape time, not incremented per call).
func TestObserverQueryZeroAlloc(t *testing.T) {
	obs := remobs.New(0)
	st := New(2)
	st.SetObserver(obs)
	keys := []string{"a", "b", "c"}
	if _, err := st.Publish(constMap(t, -50, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	p := geom.V(1, 1, 1)
	query := func() {
		if _, _, err := st.At("a", p); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := st.Strongest(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		query()
	}
	if allocs := testing.AllocsPerRun(200, query); allocs != 0 {
		t.Errorf("instrumented At+Strongest: %v allocs/op, want 0", allocs)
	}
}
