package remstore

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
)

// gradMap builds a map whose field tilts with the generation, so every
// RebuildKeys derivation really moves cells and forces an index mend.
func gradMap(t testing.TB, gen int, keys []string) *rem.Map {
	t.Helper()
	m, err := rem.BuildMapBatch(testVol, 6, 5, 4, keys, gradPredict(gen), rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func gradPredict(gen int) rem.BatchPredictFunc {
	return func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -60 - p.X*float64(gen) - 2*p.Y + float64(k)*0.5
		}
		return out, nil
	}
}

// TestPublishBuildsCoverIndex: a published map carries a coverage index
// (built at publish time before the snapshot becomes visible) unless
// indexing is opted out, and either way the served answers match the
// brute scan (rule 9 at the store layer).
func TestPublishBuildsCoverIndex(t *testing.T) {
	keys := []string{"a", "b", "c"}
	st := New(2)
	if _, err := st.Publish(gradMap(t, 1, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	s := st.Current()
	if !s.Map().HasCoverIndex() {
		t.Fatal("published snapshot has no coverage index")
	}
	p := geom.V(1.3, 0.7, 1.1)
	key, v, _, err := st.Strongest(p)
	if err != nil {
		t.Fatal(err)
	}
	bk, bv := s.Map().StrongestBrute(p)
	if key != bk || math.Float64bits(v) != math.Float64bits(bv) {
		t.Fatalf("indexed store answer (%q, %v) != brute (%q, %v)", key, v, bk, bv)
	}

	opt := New(2)
	opt.SetCoverIndexing(false)
	if _, err := opt.Publish(gradMap(t, 1, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	if opt.Current().Map().HasCoverIndex() {
		t.Fatal("opted-out store built an index anyway")
	}
	ok, ov, _, err := opt.Strongest(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok != key || math.Float64bits(ov) != math.Float64bits(v) {
		t.Fatalf("opt-out changed the answer: (%q, %v) != (%q, %v)", ok, ov, key, v)
	}
}

// TestStrongestBatchIntoMatchesStrongest: the zero-alloc batch entry
// point answers exactly like per-point Strongest against one snapshot.
func TestStrongestBatchIntoMatchesStrongest(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	st := New(2)
	if _, err := st.Publish(gradMap(t, 2, keys), len(keys)); err != nil {
		t.Fatal(err)
	}
	pts := []geom.Vec3{{X: 0.2, Y: 0.3, Z: 0.1}, {X: 3.9, Y: 2.8, Z: 2.5}, {X: 2, Y: 1.5, Z: 1.3}}
	ks := make([]string, len(pts))
	vs := make([]float64, len(pts))
	ver, err := st.StrongestBatchInto(ks, vs, pts)
	if err != nil {
		t.Fatal(err)
	}
	if ver != st.Current().Version() {
		t.Fatalf("batch version %d, serving %d", ver, st.Current().Version())
	}
	for i, p := range pts {
		wk, wv, _, err := st.Strongest(p)
		if err != nil {
			t.Fatal(err)
		}
		if ks[i] != wk || math.Float64bits(vs[i]) != math.Float64bits(wv) {
			t.Fatalf("point %d: batch (%q, %v) != Strongest (%q, %v)", i, ks[i], vs[i], wk, wv)
		}
	}
	if _, err := st.StrongestBatchInto(ks[:1], vs, pts); err == nil {
		t.Fatal("mismatched buffers accepted")
	}
}

// TestCoverIndexPublishRace hammers Strongest/StrongestBatch readers
// while a publisher streams index-mending RebuildKeys generations
// through the store — the in-flight-query-during-mend scenario. Run
// under -race in CI; the readers also verify each answer against the
// brute scan on the same snapshot, so a torn index would fail loudly
// even without the race detector.
func TestCoverIndexPublishRace(t *testing.T) {
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	st := New(3)
	m := gradMap(t, 1, keys)
	if _, err := st.Publish(m, len(keys)); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			pts := make([]geom.Vec3, 8)
			ks := make([]string, len(pts))
			vs := make([]float64, len(pts))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := geom.V(float64((i+seed)%5), float64(i%4)*0.7, float64(i%3)*0.9)
				s := st.Current()
				key, v := s.Map().Strongest(p)
				bk, bv := s.Map().StrongestBrute(p)
				if key != bk || math.Float64bits(v) != math.Float64bits(bv) {
					panic(fmt.Sprintf("indexed (%q, %v) != brute (%q, %v) during publish race", key, v, bk, bv))
				}
				for j := range pts {
					pts[j] = geom.V(p.X+float64(j)*0.3, p.Y, p.Z)
				}
				if _, err := st.StrongestBatchInto(ks, vs, pts); err != nil {
					panic(err)
				}
			}
		}(r)
	}
	cur := m
	for gen := 2; gen <= rounds; gen++ {
		next, err := cur.RebuildKeys([]int{gen % len(keys), (gen + 1) % len(keys)}, gradPredict(gen), rem.BuildOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !next.HasCoverIndex() {
			t.Fatalf("gen %d: rebuild lost the index", gen)
		}
		if _, err := st.Publish(next, 2); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(stop)
	wg.Wait()
}
