package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/geom"
	"repro/internal/receiver"
	"repro/internal/sim"
	"repro/internal/uav"
	"repro/internal/uwb"
)

// EnduranceResult is experiment E2: the §III-A endurance test — hover ≈1 m
// above ground with eight TWR anchors active, scanning every 8 s with ≈2 s
// scans, until the battery gives out. The paper measured 36 scans over
// 6 min 12 s.
type EnduranceResult struct {
	// Scans completed before the battery depleted.
	Scans int
	// FlightTime is the total airborne time.
	FlightTime time.Duration
	// FailureReason describes what ended the flight.
	FailureReason string
}

// enduranceDriver is a no-op receiver that only consumes scan time; the
// endurance test measures energy, not RF.
type enduranceDriver struct{ scanned bool }

func (d *enduranceDriver) Init() error   { return nil }
func (d *enduranceDriver) Status() error { return nil }
func (d *enduranceDriver) TriggerScan() error {
	d.scanned = true
	return nil
}
func (d *enduranceDriver) Results() ([]receiver.Measurement, error) {
	if !d.scanned {
		return nil, errors.New("experiments: no scan pending")
	}
	d.scanned = false
	return nil, nil
}
func (d *enduranceDriver) ScanDuration() time.Duration { return 2 * time.Second }

var _ receiver.Driver = (*enduranceDriver)(nil)

// Endurance runs E2.
func Endurance(seed uint64) (*EnduranceResult, error) {
	engine := sim.NewEngine()
	cfg := uwb.DefaultConfig(uwb.TWR)
	cfg.Seed = seed
	lps, err := uwb.CornerConstellation(geom.PaperScanVolume(), cfg)
	if err != nil {
		return nil, err
	}
	lps.SelfCalibrate()
	cf, err := uav.New(uav.DefaultConfig("endurance", 80, seed), engine, &enduranceDriver{}, lps, geom.V(1.8, 1.6, 0))
	if err != nil {
		return nil, err
	}
	res := &EnduranceResult{}
	if err := cf.TakeOff(1.0); err != nil {
		return nil, err
	}
	for {
		if err := cf.Hover(8 * time.Second); err != nil {
			res.FailureReason = err.Error()
			break
		}
		if _, _, err := cf.Scan(); err != nil {
			res.FailureReason = err.Error()
			break
		}
		res.Scans++
	}
	res.FlightTime = engine.Now()
	return res, nil
}

// WriteText renders the endurance result next to the paper's measurement.
func (r *EnduranceResult) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"Endurance test (paper: 36 scans over 6 min 12 s)\n"+
			"scans completed: %d\nflight time:     %v\nflight ended:    %s\n",
		r.Scans, r.FlightTime.Round(time.Second), r.FailureReason)
	return err
}
