package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/lighthouse"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// LighthouseRow is one localization configuration in experiment E11.
type LighthouseRow struct {
	// System names the configuration.
	System string
	// Anchors is the infrastructure count (UWB anchors or IR stations).
	Anchors int
	// MeanErrM is the hover error averaged over trials.
	MeanErrM float64
	// RFQuiet reports whether the system emits in the 2.4 GHz band (UWB
	// is out of band but RF; Lighthouse is optical — fully quiet).
	RFQuiet bool
}

// LighthouseResult is experiment E11: the paper's §IV future-work claim
// that the infrared Lighthouse system achieves precision comparable to the
// UWB LPS with fewer, cheaper anchors and no RF self-interference concerns.
type LighthouseResult struct {
	Rows   []LighthouseRow
	Trials int
}

// LighthouseComparison runs E11: hover accuracy of the paper's 8-anchor
// UWB deployment versus a two-station Lighthouse setup.
func LighthouseComparison(seed uint64) (*LighthouseResult, error) {
	vol := geom.PaperScanVolume()
	truth := geom.V(1.87, 1.60, 1.0)
	res := &LighthouseResult{Trials: 5}

	// UWB TDoA with the paper's 8 corner anchors.
	var uwbTotal float64
	for trial := 0; trial < res.Trials; trial++ {
		cfg := uwb.DefaultConfig(uwb.TDoA)
		cfg.Seed = seed + uint64(trial)
		c, err := uwb.CornerConstellation(vol, cfg)
		if err != nil {
			return nil, err
		}
		c.SelfCalibrate()
		hr, err := ekf.RunHover(c, ekf.DefaultHoverTrial(truth), simrand.New(cfg.Seed^0xBEEF))
		if err != nil {
			return nil, err
		}
		uwbTotal += hr.MeanErrorM
	}
	res.Rows = append(res.Rows, LighthouseRow{
		System: "UWB LPS (TDoA)", Anchors: 8,
		MeanErrM: uwbTotal / float64(res.Trials),
	})

	// Lighthouse with two diagonal ceiling stations.
	var lhTotal float64
	for trial := 0; trial < res.Trials; trial++ {
		cfg := lighthouse.DefaultConfig()
		cfg.Seed = seed + uint64(trial)
		sys, err := lighthouse.CeilingPair(vol, cfg)
		if err != nil {
			return nil, err
		}
		err2 := func() error {
			rng := simrand.New(cfg.Seed ^ 0xCAFE)
			f, err := ekf.New(truth.Add(geom.V(rng.Gauss(0, 0.4), rng.Gauss(0, 0.4), rng.Gauss(0, 0.2))), ekf.DefaultConfig())
			if err != nil {
				return err
			}
			imu := rng.Derive("imu")
			meas := rng.Derive("sweep")
			var sum float64
			n := 0
			for k := 0; k < 300; k++ {
				accel := geom.V(imu.Gauss(0, 0.05), imu.Gauss(0, 0.05), imu.Gauss(0, 0.08))
				if err := f.Predict(accel, 0.1); err != nil {
					return err
				}
				for _, m := range sys.Measure(truth, meas) {
					if err := f.UpdateBearing(m.Station, m.AzimuthRad, m.ElevationRad, 0.002); err != nil {
						return err
					}
				}
				if k >= 100 {
					sum += f.Position().Dist(truth)
					n++
				}
			}
			lhTotal += sum / float64(n)
			return nil
		}()
		if err2 != nil {
			return nil, err2
		}
	}
	res.Rows = append(res.Rows, LighthouseRow{
		System: "Lighthouse (IR sweeps)", Anchors: 2,
		MeanErrM: lhTotal / float64(res.Trials), RFQuiet: true,
	})
	return res, nil
}

// WriteText renders E11.
func (r *LighthouseResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Lighthouse vs UWB hover localization (avg of %d trials; §IV future work)\n", r.Trials)
	fmt.Fprintln(tw, "system\tanchors\tmean error (m)\t2.4 GHz quiet")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%v\n", row.System, row.Anchors, row.MeanErrM, row.RFQuiet)
	}
	return tw.Flush()
}
