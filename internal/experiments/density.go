package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/parallel"
	"repro/internal/simrand"
	"repro/internal/wifi"
)

// DensityRow is one waypoint-density configuration in experiment E9.
type DensityRow struct {
	// Waypoints is the total lattice size flown.
	Waypoints int
	// Samples is the dataset size collected.
	Samples int
	// BestRMSE is the winning estimator's test RMSE.
	BestRMSE float64
	// BestName labels the winner.
	BestName string
}

// DensityResult is experiment E9: prediction error versus the number of
// visited waypoints — a first cut at the paper's stated future work of
// "deriving the fundamental limitations on the density of 3D REMs".
type DensityResult struct {
	Rows []DensityRow
}

// densityLattices are the swept lattice shapes (8 → 72 waypoints).
var densityLattices = [][3]int{
	{2, 2, 2},
	{3, 3, 2},
	{4, 3, 3},
	{4, 6, 3},
}

// DensitySweep runs E9: the same environment is surveyed with increasingly
// dense waypoint lattices, and the Figure 8 pipeline is re-run on each
// dataset. Lattice configurations are independent missions, so they run
// concurrently on the worker pool (≤ 0 means GOMAXPROCS); rows come back
// in lattice order regardless of scheduling.
func DensitySweep(seed uint64, workers int) (*DensityResult, error) {
	env := floorplan.PaperApartment()
	rng := simrand.New(seed)
	aps, err := wifi.GeneratePopulation(env, wifi.DefaultPopulation(), rng.Derive("population"))
	if err != nil {
		return nil, err
	}
	net, err := wifi.NewNetwork(aps, wifi.DefaultChannelParams(env, seed^0xA11CE))
	if err != nil {
		return nil, err
	}

	rows, err := parallel.Map(len(densityLattices), workers, func(i int) (DensityRow, error) {
		plan, err := densityPlan(densityLattices[i])
		if err != nil {
			return DensityRow{}, err
		}
		ctrl, err := mission.NewController(plan, env, net, wifi.DefaultScanner(), mission.DefaultOptions(seed))
		if err != nil {
			return DensityRow{}, err
		}
		data, report, err := ctrl.Run()
		if err != nil {
			return DensityRow{}, err
		}
		// Sparse missions yield few samples per MAC; lower the retention
		// threshold proportionally so the comparison stays defined.
		cfg := core.DefaultConfig(seed)
		cfg.REMResolution = [3]int{}
		cfg.MinSamplesPerMAC = minThresholdFor(plan.TotalWaypoints())
		cfg.Estimators = core.PaperEstimators(seed)
		cfg.Workers = 1 // the sweep itself saturates the pool
		out, err := core.RunWithDataset(cfg, data, report)
		if err != nil {
			return DensityRow{}, err
		}
		return DensityRow{
			Waypoints: plan.TotalWaypoints(),
			Samples:   data.Len(),
			BestRMSE:  out.BestScore().RMSE,
			BestName:  out.BestScore().Name,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &DensityResult{Rows: rows}, nil
}

// minThresholdFor scales the paper's 16-samples-per-MAC threshold to the
// mission size (16 at 72 waypoints).
func minThresholdFor(waypoints int) int {
	t := dataset.MinSamplesPerMAC * waypoints / 72
	if t < 3 {
		t = 3
	}
	return t
}

// densityPlan builds a two-UAV plan over the given lattice shape.
func densityPlan(shape [3]int) (*mission.Plan, error) {
	vol := geom.PaperScanVolume()
	points, err := vol.Lattice(shape[0], shape[1], shape[2], 0.30)
	if err != nil {
		return nil, err
	}
	halves, err := geom.SplitRoundRobin(points, 2)
	if err != nil {
		return nil, err
	}
	plan := &mission.Plan{
		Volume:          vol,
		LegTime:         4 * time.Second,
		ScanStop:        3 * time.Second,
		ResultLatency:   1200 * time.Millisecond,
		TakeoffAltitude: 0.5,
		UAVs: []mission.UAVPlan{
			{Name: "A", RadioChannel: 80, Start: geom.V(0.6, 0.5, 0), Waypoints: halves[0]},
			{Name: "B", RadioChannel: 90, Start: geom.V(0.6, 2.7, 0), Waypoints: halves[1]},
		},
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// WriteText renders E9.
func (r *DensityResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Waypoint-density sweep: prediction error vs surveyed density (E9)")
	fmt.Fprintln(tw, "waypoints\tsamples\tbest RMSE (dB)\tbest estimator")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%s\n", row.Waypoints, row.Samples, row.BestRMSE, row.BestName)
	}
	return tw.Flush()
}
