package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/parallel"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// AnchorRow is one anchor-count configuration in experiment E7.
type AnchorRow struct {
	// Anchors is the constellation size.
	Anchors int
	// Mode is TWR or TDoA.
	Mode uwb.Mode
	// MeanErrM is the hover localization error averaged over trials.
	MeanErrM float64
}

// AnchorResult is experiment E7: hovering localization accuracy versus
// anchor count and ranging mode, supporting the paper's §II-B accuracy
// claims (≈9 cm with 6 anchors).
type AnchorResult struct {
	Rows   []AnchorRow
	Trials int
}

// AnchorAblation runs E7. Each (mode, anchor-count) configuration seeds
// its trials independently, so configurations run concurrently on the
// worker pool (≤ 0 means GOMAXPROCS) with rows in configuration order.
func AnchorAblation(seed uint64, workers int) (*AnchorResult, error) {
	vol := geom.PaperScanVolume()
	corners := vol.Corners()
	// Corner subsets with vertical diversity: four coplanar floor anchors
	// would leave z unobservable, so reduced constellations alternate
	// floor and ceiling corners as a real deployment would.
	subsets := map[int][]int{
		4: {0, 3, 5, 6},
		6: {0, 1, 3, 4, 6, 7},
		8: {0, 1, 2, 3, 4, 5, 6, 7},
	}
	type combo struct {
		mode uwb.Mode
		n    int
	}
	var combos []combo
	for _, mode := range []uwb.Mode{uwb.TWR, uwb.TDoA} {
		for _, n := range []int{4, 6, 8} {
			combos = append(combos, combo{mode, n})
		}
	}
	res := &AnchorResult{Trials: 5}
	truePos := geom.V(1.87, 1.60, 1.0)
	rows, err := parallel.Map(len(combos), workers, func(ci int) (AnchorRow, error) {
		mode, n := combos[ci].mode, combos[ci].n
		var total float64
		for trial := 0; trial < res.Trials; trial++ {
			cfg := uwb.DefaultConfig(mode)
			cfg.Seed = seed + uint64(trial)*1000 + uint64(n)
			anchors := make([]uwb.Anchor, n)
			for i, idx := range subsets[n] {
				anchors[i] = uwb.Anchor{ID: i, Pos: corners[idx]}
			}
			c, err := uwb.NewConstellation(anchors, cfg)
			if err != nil {
				return AnchorRow{}, err
			}
			c.SelfCalibrate()
			hr, err := ekf.RunHover(c, ekf.DefaultHoverTrial(truePos), simrand.New(cfg.Seed^0xFEED))
			if err != nil {
				return AnchorRow{}, err
			}
			total += hr.MeanErrorM
		}
		return AnchorRow{
			Anchors:  n,
			Mode:     mode,
			MeanErrM: total / float64(res.Trials),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// WriteText renders E7.
func (r *AnchorResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Anchor ablation: hover localization error (avg of %d trials; paper cites ≈0.09 m at 6 anchors)\n", r.Trials)
	fmt.Fprintln(tw, "mode\tanchors\tmean error (m)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\n", row.Mode, row.Anchors, row.MeanErrM)
	}
	return tw.Flush()
}

// MitigationResult is experiment E8: the paper's radio-off-during-scan
// design versus leaving the Crazyradio on.
type MitigationResult struct {
	// SamplesWith is the dataset size with the mitigation (the default).
	SamplesWith int
	// SamplesWithout is the dataset size with the radio left on.
	SamplesWithout int
	// MACsWith and MACsWithout count distinct beacon sources seen.
	MACsWith, MACsWithout int
}

// MitigationAblation runs E8 by flying the validation mission twice — the
// two configurations are independent worlds, so they fly concurrently on
// the worker pool (≤ 0 means GOMAXPROCS).
func MitigationAblation(seed uint64, workers int) (*MitigationResult, error) {
	type outcome struct{ samples, macs int }
	runs, err := parallel.Map(2, workers, func(i int) (outcome, error) {
		opts := mission.DefaultOptions(seed)
		opts.DisableMitigation = i == 1
		ctrl, err := mission.NewPaperController(opts)
		if err != nil {
			return outcome{}, err
		}
		data, _, err := ctrl.Run()
		if err != nil {
			return outcome{}, err
		}
		st := data.Stats()
		return outcome{st.Total, st.DistinctMACs}, nil
	})
	if err != nil {
		return nil, err
	}
	return &MitigationResult{
		SamplesWith:    runs[0].samples,
		MACsWith:       runs[0].macs,
		SamplesWithout: runs[1].samples,
		MACsWithout:    runs[1].macs,
	}, nil
}

// LossFraction returns the fraction of samples lost to self-interference.
func (r *MitigationResult) LossFraction() float64 {
	if r.SamplesWith == 0 {
		return 0
	}
	return 1 - float64(r.SamplesWithout)/float64(r.SamplesWith)
}

// WriteText renders E8.
func (r *MitigationResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Self-interference mitigation ablation (radio off during scans vs on)")
	fmt.Fprintln(tw, "configuration\tsamples\tdistinct MACs")
	fmt.Fprintf(tw, "radio off during scan (paper design)\t%d\t%d\n", r.SamplesWith, r.MACsWith)
	fmt.Fprintf(tw, "radio on during scan\t%d\t%d\n", r.SamplesWithout, r.MACsWithout)
	fmt.Fprintf(tw, "samples lost to self-interference\t%.0f%%\t\n", 100*r.LossFraction())
	return tw.Flush()
}
