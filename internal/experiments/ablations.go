package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// AnchorRow is one anchor-count configuration in experiment E7.
type AnchorRow struct {
	// Anchors is the constellation size.
	Anchors int
	// Mode is TWR or TDoA.
	Mode uwb.Mode
	// MeanErrM is the hover localization error averaged over trials.
	MeanErrM float64
}

// AnchorResult is experiment E7: hovering localization accuracy versus
// anchor count and ranging mode, supporting the paper's §II-B accuracy
// claims (≈9 cm with 6 anchors).
type AnchorResult struct {
	Rows   []AnchorRow
	Trials int
}

// AnchorAblation runs E7.
func AnchorAblation(seed uint64) (*AnchorResult, error) {
	vol := geom.PaperScanVolume()
	corners := vol.Corners()
	// Corner subsets with vertical diversity: four coplanar floor anchors
	// would leave z unobservable, so reduced constellations alternate
	// floor and ceiling corners as a real deployment would.
	subsets := map[int][]int{
		4: {0, 3, 5, 6},
		6: {0, 1, 3, 4, 6, 7},
		8: {0, 1, 2, 3, 4, 5, 6, 7},
	}
	res := &AnchorResult{Trials: 5}
	truePos := geom.V(1.87, 1.60, 1.0)
	for _, mode := range []uwb.Mode{uwb.TWR, uwb.TDoA} {
		for _, n := range []int{4, 6, 8} {
			var total float64
			for trial := 0; trial < res.Trials; trial++ {
				cfg := uwb.DefaultConfig(mode)
				cfg.Seed = seed + uint64(trial)*1000 + uint64(n)
				anchors := make([]uwb.Anchor, n)
				for i, ci := range subsets[n] {
					anchors[i] = uwb.Anchor{ID: i, Pos: corners[ci]}
				}
				c, err := uwb.NewConstellation(anchors, cfg)
				if err != nil {
					return nil, err
				}
				c.SelfCalibrate()
				hr, err := ekf.RunHover(c, ekf.DefaultHoverTrial(truePos), simrand.New(cfg.Seed^0xFEED))
				if err != nil {
					return nil, err
				}
				total += hr.MeanErrorM
			}
			res.Rows = append(res.Rows, AnchorRow{
				Anchors:  n,
				Mode:     mode,
				MeanErrM: total / float64(res.Trials),
			})
		}
	}
	return res, nil
}

// WriteText renders E7.
func (r *AnchorResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Anchor ablation: hover localization error (avg of %d trials; paper cites ≈0.09 m at 6 anchors)\n", r.Trials)
	fmt.Fprintln(tw, "mode\tanchors\tmean error (m)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\n", row.Mode, row.Anchors, row.MeanErrM)
	}
	return tw.Flush()
}

// MitigationResult is experiment E8: the paper's radio-off-during-scan
// design versus leaving the Crazyradio on.
type MitigationResult struct {
	// SamplesWith is the dataset size with the mitigation (the default).
	SamplesWith int
	// SamplesWithout is the dataset size with the radio left on.
	SamplesWithout int
	// MACsWith and MACsWithout count distinct beacon sources seen.
	MACsWith, MACsWithout int
}

// MitigationAblation runs E8 by flying the validation mission twice.
func MitigationAblation(seed uint64) (*MitigationResult, error) {
	run := func(disable bool) (int, int, error) {
		opts := mission.DefaultOptions(seed)
		opts.DisableMitigation = disable
		ctrl, err := mission.NewPaperController(opts)
		if err != nil {
			return 0, 0, err
		}
		data, _, err := ctrl.Run()
		if err != nil {
			return 0, 0, err
		}
		st := data.Stats()
		return st.Total, st.DistinctMACs, nil
	}
	res := &MitigationResult{}
	var err error
	if res.SamplesWith, res.MACsWith, err = run(false); err != nil {
		return nil, err
	}
	if res.SamplesWithout, res.MACsWithout, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// LossFraction returns the fraction of samples lost to self-interference.
func (r *MitigationResult) LossFraction() float64 {
	if r.SamplesWith == 0 {
		return 0
	}
	return 1 - float64(r.SamplesWithout)/float64(r.SamplesWith)
}

// WriteText renders E8.
func (r *MitigationResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Self-interference mitigation ablation (radio off during scans vs on)")
	fmt.Fprintln(tw, "configuration\tsamples\tdistinct MACs")
	fmt.Fprintf(tw, "radio off during scan (paper design)\t%d\t%d\n", r.SamplesWith, r.MACsWith)
	fmt.Fprintf(tw, "radio on during scan\t%d\t%d\n", r.SamplesWithout, r.MACsWithout)
	fmt.Fprintf(tw, "samples lost to self-interference\t%.0f%%\t\n", 100*r.LossFraction())
	return tw.Flush()
}
