package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/mission"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/simrand"
)

// GridSearchResult is experiment E10: reproducing the paper's §III-B
// hyper-parameter tuning. The paper grid-searched the kNN regressor over an
// "exhaustive set of hyperparameters" and reports the winners —
// metric=minkowski with p=2, weights=distance, k=3 for the plain variant
// and k=16 for the one-hot×3 variant. This experiment re-runs that search
// with our from-scratch grid-search harness.
type GridSearchResult struct {
	// PlainTop are the best assignments for the plain (one-hot×1) encoding.
	PlainTop []ml.SearchResult
	// ScaledTop are the best assignments for the one-hot×3 encoding.
	ScaledTop []ml.SearchResult
	// Evaluated is the number of grid points per encoding.
	Evaluated int
}

// knnSpace is the searched hyper-parameter space.
var knnSpace = map[string][]float64{
	"k":       {1, 2, 3, 5, 8, 16, 32},
	"weights": {float64(knn.Uniform), float64(knn.Distance)},
	"p":       {1, 2},
}

// GridSearchReproduction runs E10. The 28 grid points per encoding are
// evaluated concurrently on the worker pool (≤ 0 means GOMAXPROCS); the
// two encodings draw from independent derived streams, so every worker
// count reproduces the same ranking.
func GridSearchReproduction(seed uint64, workers int) (*GridSearchResult, error) {
	ctrl, err := mission.NewPaperController(mission.DefaultOptions(seed))
	if err != nil {
		return nil, err
	}
	data, _, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	pre, err := dataset.Preprocess(data, dataset.MinSamplesPerMAC)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(seed).Derive("gridsearch")
	train, _, err := pre.Split(0.75, rng.Derive("split"))
	if err != nil {
		return nil, err
	}

	factory := func(p ml.Params) (ml.Estimator, error) {
		return knn.New(knn.Config{
			K:          int(p["k"]),
			Weights:    knn.Weighting(p["weights"]),
			MinkowskiP: p["p"],
		})
	}
	candidates := ml.Grid(knnSpace)

	search := func(opt dataset.FeatureOptions, name string) ([]ml.SearchResult, error) {
		trX, trY := train.DesignMatrix(opt)
		// "The validation set was taken out of the training set" (§III-B).
		results, err := ml.GridSearchWorkers(factory, candidates, trX, trY, 0.25, rng.Derive(name), workers)
		if err != nil {
			return nil, err
		}
		top := 5
		if len(results) < top {
			top = len(results)
		}
		return results[:top], nil
	}

	res := &GridSearchResult{Evaluated: len(candidates)}
	if res.PlainTop, err = search(dataset.FeatureOptions{OneHotMACScale: 1}, "plain"); err != nil {
		return nil, err
	}
	if res.ScaledTop, err = search(dataset.FeatureOptions{OneHotMACScale: 3}, "scaled"); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText renders E10.
func (r *GridSearchResult) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "kNN hyper-parameter grid search (%d grid points per encoding; §III-B)\n", r.Evaluated)
	render := func(label, paper string, top []ml.SearchResult) {
		fmt.Fprintf(tw, "%s (paper winner: %s)\n", label, paper)
		fmt.Fprintln(tw, "rank\tk\tweights\tp\tvalidation RMSE (dB)")
		for i, sr := range top {
			fmt.Fprintf(tw, "%d\t%.0f\t%s\t%.0f\t%.4f\n",
				i+1, sr.Params["k"], knn.Weighting(sr.Params["weights"]), sr.Params["p"], sr.RMSE)
		}
	}
	render("one-hot×1 encoding", "k=3, weights=distance, p=2", r.PlainTop)
	render("one-hot×3 encoding", "k=16, weights=distance, p=2", r.ScaledTop)
	return tw.Flush()
}

// BestPlain returns the winning assignment for the plain encoding.
func (r *GridSearchResult) BestPlain() ml.Params { return r.PlainTop[0].Params }

// BestScaled returns the winning assignment for the scaled encoding.
func (r *GridSearchResult) BestScaled() ml.Params { return r.ScaledTop[0].Params }
