package experiments

import (
	"bytes"
	"testing"
)

// TestFigure5WorkerCountInvariance: each radio setting owns a derived
// noise stream, so the rendered figure must be identical for any pool
// size.
func TestFigure5WorkerCountInvariance(t *testing.T) {
	render := func(workers int) string {
		res, err := Figure5(1, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := render(1), render(4)
	if seq != par {
		t.Errorf("Figure 5 differs between workers=1 and workers=4:\n%s\nvs\n%s", seq, par)
	}
}

// TestAnchorAblationWorkerCountInvariance: configurations seed their own
// trials, so the table must be identical for any pool size.
func TestAnchorAblationWorkerCountInvariance(t *testing.T) {
	seq, err := AnchorAblation(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnchorAblation(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i] != par.Rows[i] {
			t.Errorf("row %d: workers=4 %+v ≠ workers=1 %+v", i, par.Rows[i], seq.Rows[i])
		}
	}
}
