package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
)

// Fig8Result is experiment E6: the estimator RMSE comparison of Figure 8.
type Fig8Result struct {
	// Scores are the estimator results in suite order.
	Scores []core.Score
	// Best indexes the winner.
	Best int
	// Retained and Dropped mirror the paper's preprocessing outcome
	// (2565 retained / 131 dropped).
	Retained, Dropped int
}

// paperRMSE maps the suite labels to the paper's reported values for
// side-by-side rendering.
var paperRMSE = map[string]string{
	"baseline mean-per-MAC":     "4.8107",
	"kNN k=3 distance-weighted": "≈4.5",
	"kNN one-hot×3 k=16":        "4.4186",
	"per-MAC kNN":               "≈4.5",
	"NN 16-node sigmoid Adam":   "4.4870",
}

// Figure8 runs the full pipeline and returns the estimator comparison. With
// extended=true the IDW/kriging interpolators are appended to the suite.
// workers bounds the pipeline's concurrency (≤ 0 means GOMAXPROCS); every
// worker count reproduces the same figure.
func Figure8(seed uint64, extended bool, workers int) (*Fig8Result, error) {
	cfg := core.DefaultConfig(seed)
	cfg.REMResolution = [3]int{} // the comparison does not need the map
	cfg.Workers = workers
	if extended {
		cfg.Estimators = core.ExtendedEstimators(seed)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Scores:   res.Scores,
		Best:     res.Best,
		Retained: len(res.Pre.Rows),
		Dropped:  res.Pre.Dropped,
	}, nil
}

// WriteText renders the comparison next to the paper's numbers.
func (r *Fig8Result) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 8: prediction RMSE per estimator (%d rows retained, %d dropped; paper: 2565/131)\n",
		r.Retained, r.Dropped)
	fmt.Fprintln(tw, "estimator\tRMSE (dB)\tMAE (dB)\tpaper RMSE")
	for i, s := range r.Scores {
		marker := ""
		if i == r.Best {
			marker = "  ← best"
		}
		paper := paperRMSE[s.Name]
		if paper == "" {
			paper = "—"
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%s%s\n", s.Name, s.RMSE, s.MAE, paper, marker)
	}
	return tw.Flush()
}
