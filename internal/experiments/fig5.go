// Package experiments regenerates every table and figure of the paper's
// evaluation (plus this repository's ablations) as structured results with
// text renderers. The cmd/experiments binary and the repository-level
// benchmarks are both thin wrappers around these functions; the experiment
// IDs (E1–E11) are indexed in DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/floorplan"
	"repro/internal/parallel"
	"repro/internal/simrand"
	"repro/internal/spectrum"
	"repro/internal/wifi"
)

// Fig5Result is experiment E1: the number of APs detected per 802.11
// channel with the Crazyradio at each survey frequency or off (Figure 5).
type Fig5Result struct {
	// Channels lists the Wi-Fi channels that had any detections.
	Channels []int
	// RadioFreqsMHz are the surveyed Crazyradio frequencies.
	RadioFreqsMHz []float64
	// DetectedOff[ch] is the mean AP count with the radio off.
	DetectedOff map[int]float64
	// DetectedOn[freq][ch] is the mean AP count with the radio at freq.
	DetectedOn map[float64]map[int]float64
	// ScansPerSetting is the averaging count (paper: 3).
	ScansPerSetting int
}

// Figure5 reproduces the interference survey of §III-A: a fixed scan
// position, three AP scans per Crazyradio setting, the radio stepped over
// {off, 2400, 2425, 2450, 2475, 2500, 2525} MHz. Each radio setting scans
// on the worker pool with its own derived noise stream, so the figure is
// identical for every worker count (≤ 0 means GOMAXPROCS).
func Figure5(seed uint64, workers int) (*Fig5Result, error) {
	env := floorplan.PaperApartment()
	rng := simrand.New(seed)
	aps, err := wifi.GeneratePopulation(env, wifi.DefaultPopulation(), rng.Derive("population"))
	if err != nil {
		return nil, err
	}
	net, err := wifi.NewNetwork(aps, wifi.DefaultChannelParams(env, seed^0xA11CE))
	if err != nil {
		return nil, err
	}
	sc, err := wifi.NewScanner(net, wifi.DefaultScanner())
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{
		RadioFreqsMHz:   []float64{2400, 2425, 2450, 2475, 2500, 2525},
		DetectedOff:     map[int]float64{},
		DetectedOn:      map[float64]map[int]float64{},
		ScansPerSetting: 3,
	}
	pos := env.Room.Center()

	// Setting 0 is radio-off; setting i ≥ 1 is RadioFreqsMHz[i-1].
	counts, err := parallel.Map(len(res.RadioFreqsMHz)+1, workers, func(i int) (map[int]float64, error) {
		scanRng := rng.DeriveN("scan", i)
		var itfs []spectrum.Interferer
		if i > 0 {
			itf, err := spectrum.CrazyradioInterferer(int(res.RadioFreqsMHz[i-1] - 2400))
			if err != nil {
				return nil, err
			}
			itfs = []spectrum.Interferer{itf}
		}
		c := map[int]float64{}
		for s := 0; s < res.ScansPerSetting; s++ {
			for _, obs := range sc.Scan(pos, itfs, scanRng) {
				c[obs.Channel]++
			}
		}
		for ch := range c {
			c[ch] /= float64(res.ScansPerSetting)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	res.DetectedOff = counts[0]
	for i, f := range res.RadioFreqsMHz {
		res.DetectedOn[f] = counts[i+1]
	}

	// Channels with any detections, sorted (the paper omits empty ones).
	chSet := map[int]bool{}
	for ch := range res.DetectedOff {
		chSet[ch] = true
	}
	for _, m := range res.DetectedOn {
		for ch := range m {
			chSet[ch] = true
		}
	}
	for ch := range chSet {
		res.Channels = append(res.Channels, ch)
	}
	sort.Ints(res.Channels)
	return res, nil
}

// TotalOff returns the mean AP count summed over channels with the radio
// off.
func (r *Fig5Result) TotalOff() float64 {
	var t float64
	for _, v := range r.DetectedOff {
		t += v
	}
	return t
}

// TotalOn returns the mean AP count summed over channels at the given radio
// frequency.
func (r *Fig5Result) TotalOn(freq float64) float64 {
	var t float64
	for _, v := range r.DetectedOn[freq] {
		t += v
	}
	return t
}

// WriteText renders the figure as an aligned table, one row per Wi-Fi
// channel, one column per radio setting.
func (r *Fig5Result) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 5: mean APs detected per 802.11 channel (avg of %d scans)\n", r.ScansPerSetting)
	fmt.Fprint(tw, "channel\toff")
	for _, f := range r.RadioFreqsMHz {
		fmt.Fprintf(tw, "\t%.0f MHz", f)
	}
	fmt.Fprintln(tw)
	for _, ch := range r.Channels {
		fmt.Fprintf(tw, "%d\t%.2f", ch, r.DetectedOff[ch])
		for _, f := range r.RadioFreqsMHz {
			fmt.Fprintf(tw, "\t%.2f", r.DetectedOn[f][ch])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "total\t%.2f", r.TotalOff())
	for _, f := range r.RadioFreqsMHz {
		fmt.Fprintf(tw, "\t%.2f", r.TotalOn(f))
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}
