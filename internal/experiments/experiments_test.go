package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ml/knn"
	"repro/internal/uwb"
)

func TestFigure5ShapeMatchesPaper(t *testing.T) {
	res, err := Figure5(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Channels) == 0 {
		t.Fatal("no occupied channels")
	}
	off := res.TotalOff()
	if off < 10 {
		t.Fatalf("radio-off detections = %v, too few for a populated building", off)
	}
	// The paper's core observation: the radio-off scan detects strictly
	// more APs than any radio-on setting, irrespective of frequency.
	for _, f := range res.RadioFreqsMHz {
		on := res.TotalOn(f)
		if on >= off {
			t.Errorf("radio at %v MHz detects %v ≥ radio-off %v", f, on, off)
		}
		if on > 0.8*off {
			t.Errorf("radio at %v MHz suppression too mild: %v vs off %v", f, on, off)
		}
	}
}

func TestFigure5Render(t *testing.T) {
	res, err := Figure5(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "2400 MHz") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

func TestEnduranceMatchesPaperScale(t *testing.T) {
	res, err := Endurance(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 36 scans over 6 min 12 s before erratic behaviour.
	if res.Scans < 30 || res.Scans > 44 {
		t.Errorf("scans = %d, want ≈36", res.Scans)
	}
	if res.FlightTime < 5*time.Minute || res.FlightTime > 8*time.Minute {
		t.Errorf("flight time = %v, want ≈6 min 12 s", res.FlightTime)
	}
	if !strings.Contains(res.FailureReason, "battery") {
		t.Errorf("failure reason = %q, want battery depletion", res.FailureReason)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scans completed") {
		t.Error("render missing scans line")
	}
}

func TestMissionResultRenders(t *testing.T) {
	res, err := RunMission(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2696") {
		t.Error("stats render missing paper reference")
	}
	buf.Reset()
	if err := res.WriteFigure6(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UAV A") || !strings.Contains(buf.String(), "UAV B") {
		t.Error("figure 6 render missing UAVs")
	}
	buf.Reset()
	if err := res.WriteFigure7(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x ∈ [") || !strings.Contains(buf.String(), "y ∈ [") {
		t.Error("figure 7 render missing axes")
	}
}

func TestFigure8EndToEnd(t *testing.T) {
	res, err := Figure8(1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 5 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	if res.Retained < 2000 {
		t.Errorf("retained = %d", res.Retained)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4.8107") || !strings.Contains(out, "← best") {
		t.Errorf("figure 8 render incomplete:\n%s", out)
	}
}

func TestAnchorAblationShape(t *testing.T) {
	res, err := AnchorAblation(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 anchor counts × 2 modes)", len(res.Rows))
	}
	err6 := map[uwb.Mode]float64{}
	err4 := map[uwb.Mode]float64{}
	err8 := map[uwb.Mode]float64{}
	for _, row := range res.Rows {
		if row.MeanErrM <= 0 || row.MeanErrM > 0.5 {
			t.Errorf("%v/%d anchors error = %v m implausible", row.Mode, row.Anchors, row.MeanErrM)
		}
		switch row.Anchors {
		case 4:
			err4[row.Mode] = row.MeanErrM
		case 6:
			err6[row.Mode] = row.MeanErrM
		case 8:
			err8[row.Mode] = row.MeanErrM
		}
	}
	for _, mode := range []uwb.Mode{uwb.TWR, uwb.TDoA} {
		if err8[mode] >= err4[mode] {
			t.Errorf("%v: 8-anchor error %v not below 4-anchor %v", mode, err8[mode], err4[mode])
		}
		// Paper: ≈9 cm at 6 anchors — demand decimetre scale.
		if err6[mode] > 0.2 {
			t.Errorf("%v 6-anchor error = %v m, want decimetre-level", mode, err6[mode])
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "anchors") {
		t.Error("render incomplete")
	}
}

func TestMitigationAblation(t *testing.T) {
	res, err := MitigationAblation(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesWithout >= res.SamplesWith {
		t.Errorf("radio-on samples %d not below radio-off %d", res.SamplesWithout, res.SamplesWith)
	}
	if res.LossFraction() < 0.2 {
		t.Errorf("loss fraction = %.2f, interference too mild for Figure 5's lesson", res.LossFraction())
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lost to self-interference") {
		t.Error("render incomplete")
	}
}

func TestDensitySweepTrend(t *testing.T) {
	res, err := DensitySweep(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(densityLattices) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Sample counts must grow with density.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Samples <= res.Rows[i-1].Samples {
			t.Errorf("samples not increasing: %d → %d", res.Rows[i-1].Samples, res.Rows[i].Samples)
		}
	}
	// The densest survey must predict better than the sparsest.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.BestRMSE >= first.BestRMSE {
		t.Errorf("72-waypoint RMSE %.3f not below 8-waypoint RMSE %.3f", last.BestRMSE, first.BestRMSE)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "waypoints") {
		t.Error("render incomplete")
	}
}

func TestGridSearchSpaceContainsPaperWinners(t *testing.T) {
	has := func(vals []float64, want float64) bool {
		for _, v := range vals {
			if v == want {
				return true
			}
		}
		return false
	}
	if !has(knnSpace["k"], 3) || !has(knnSpace["k"], 16) {
		t.Error("grid must contain the paper's k=3 and k=16")
	}
	if !has(knnSpace["weights"], float64(knn.Distance)) {
		t.Error("grid must contain distance weighting (the paper's winner)")
	}
	if !has(knnSpace["p"], 2) {
		t.Error("grid must contain p=2 (Euclidean, the paper's winner)")
	}
}

func TestGridSearchReproduction(t *testing.T) {
	res, err := GridSearchReproduction(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 7*2*2 {
		t.Errorf("evaluated %d grid points, want 28", res.Evaluated)
	}
	if len(res.PlainTop) != 5 || len(res.ScaledTop) != 5 {
		t.Fatalf("top lists = %d/%d", len(res.PlainTop), len(res.ScaledTop))
	}
	// Validation RMSEs sorted ascending.
	for i := 1; i < len(res.PlainTop); i++ {
		if res.PlainTop[i].RMSE < res.PlainTop[i-1].RMSE {
			t.Error("plain results not sorted")
		}
	}
	// The paper's search selected Euclidean distance weighting; ours must
	// agree on the weighting (the most robust of the tuned choices).
	best := res.BestPlain()
	if best["weights"] != float64(knn.Distance) {
		t.Errorf("plain winner weights = %v, want distance (the paper's choice)", best["weights"])
	}
	if best["k"] < 2 || best["k"] > 32 {
		t.Errorf("plain winner k = %v outside the searched range", best["k"])
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "grid search") {
		t.Error("render incomplete")
	}
}

func TestLighthouseComparison(t *testing.T) {
	res, err := LighthouseComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	uwbRow, lhRow := res.Rows[0], res.Rows[1]
	if uwbRow.Anchors != 8 || lhRow.Anchors != 2 {
		t.Errorf("anchor counts = %d/%d, want 8/2", uwbRow.Anchors, lhRow.Anchors)
	}
	// §IV: Lighthouse precision is comparable (or better) with fewer
	// anchors. "Comparable" here: within 2× of the UWB error, and both
	// decimetre-level.
	if lhRow.MeanErrM > 2*uwbRow.MeanErrM {
		t.Errorf("Lighthouse error %.3f not comparable to UWB %.3f", lhRow.MeanErrM, uwbRow.MeanErrM)
	}
	for _, row := range res.Rows {
		if row.MeanErrM <= 0 || row.MeanErrM > 0.2 {
			t.Errorf("%s error = %.3f m implausible", row.System, row.MeanErrM)
		}
	}
	if !lhRow.RFQuiet || uwbRow.RFQuiet {
		t.Error("RF-quiet flags wrong")
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Lighthouse") {
		t.Error("render incomplete")
	}
}
