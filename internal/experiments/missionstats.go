package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dataset"
	"repro/internal/mission"
)

// MissionResult bundles experiments E3 (dataset statistics), E4 (Figure 6)
// and E5 (Figure 7): they all derive from one two-UAV validation mission.
type MissionResult struct {
	// Data is the collected dataset.
	Data *dataset.Dataset
	// Report is the flight report.
	Report *mission.Report
	// Stats are the aggregate dataset statistics (E3).
	Stats dataset.Stats
	// LocErrMean and LocErrMax summarise annotation accuracy.
	LocErrMean, LocErrMax float64
}

// RunMission executes the paper's validation mission once.
func RunMission(seed uint64) (*MissionResult, error) {
	ctrl, err := mission.NewPaperController(mission.DefaultOptions(seed))
	if err != nil {
		return nil, err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	res := &MissionResult{Data: data, Report: report, Stats: data.Stats()}
	res.LocErrMean, res.LocErrMax = mission.LocalizationErrorStats(data)
	return res, nil
}

// WriteStats renders E3 next to the paper's numbers.
func (r *MissionResult) WriteStats(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset statistics (§III-A)\tmeasured\tpaper")
	fmt.Fprintf(tw, "total samples\t%d\t2696\n", r.Stats.Total)
	fmt.Fprintf(tw, "samples UAV A\t%d\t1495\n", r.Stats.PerUAV["A"])
	fmt.Fprintf(tw, "samples UAV B\t%d\t1201\n", r.Stats.PerUAV["B"])
	fmt.Fprintf(tw, "distinct MACs\t%d\t73\n", r.Stats.DistinctMACs)
	fmt.Fprintf(tw, "distinct SSIDs\t%d\t49\n", r.Stats.DistinctSSIDs)
	fmt.Fprintf(tw, "mean RSS (dBm)\t%.1f\t≈-73\n", r.Stats.MeanRSSI)
	for _, s := range r.Report.Sorties {
		fmt.Fprintf(tw, "UAV %s active time\t%v\t%s\n", s.UAV, s.ActiveTime.Round(time.Second),
			map[string]string{"A": "5 min 3 s", "B": "5 min"}[s.UAV])
	}
	fmt.Fprintf(tw, "mean localization error (m)\t%.3f\t≈0.09\n", r.LocErrMean)
	return tw.Flush()
}

// WriteFigure6 renders E4: samples per UAV and scanned location.
func (r *MissionResult) WriteFigure6(w io.Writer) error {
	counts := r.Data.CountPerWaypoint()
	uavs := make([]string, 0, len(counts))
	for u := range counts {
		uavs = append(uavs, u)
	}
	sort.Strings(uavs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 6: samples per UAV and scanned location")
	for _, u := range uavs {
		per := counts[u]
		wps := make([]int, 0, len(per))
		for wp := range per {
			wps = append(wps, wp)
		}
		sort.Ints(wps)
		var row strings.Builder
		total := 0
		for _, wp := range wps {
			fmt.Fprintf(&row, "%d ", per[wp])
			total += per[wp]
		}
		fmt.Fprintf(tw, "UAV %s (%d total)\t%s\n", u, total, strings.TrimSpace(row.String()))
	}
	return tw.Flush()
}

// WriteFigure7 renders E5: 0.5 m-bin histograms along x and y.
func (r *MissionResult) WriteFigure7(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 7: samples per 0.5 m bin")
	for _, axis := range []dataset.Axis{dataset.AxisX, dataset.AxisY} {
		bins, err := r.Data.Histogram(axis, 0.5)
		if err != nil {
			return err
		}
		for _, b := range bins {
			bar := strings.Repeat("#", b.Count/12)
			fmt.Fprintf(tw, "%s ∈ [%.1f, %.1f)\t%d\t%s\n", axis, b.Lo, b.Hi, b.Count, bar)
		}
	}
	return tw.Flush()
}
