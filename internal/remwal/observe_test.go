package remwal

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/remobs"
)

func obsBatch(n int) Batch {
	b := Batch{Key: "aa:bb"}
	for i := 0; i < n; i++ {
		b.Points = append(b.Points, geom.V(float64(i), 1, 1))
		b.Values = append(b.Values, -50)
	}
	return b
}

// TestQueueObserverCounters drives every Submit outcome through an
// instrumented queue and asserts the rejected-batch counter splits by
// cause and the depth/capacity/Retry-After gauges are exposed.
func TestQueueObserverCounters(t *testing.T) {
	obs := remobs.New(0)
	q := NewQueue(QueueConfig{Capacity: 2})
	q.SetValidator(func(b Batch) error {
		if b.Key == "reject" {
			return errors.New("rejected by validator")
		}
		return nil
	})
	q.SetObserver(obs)

	// Two accepted, then full.
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(obsBatch(1)); err != nil {
			t.Fatal(err)
		}
	}
	var full *FullError
	if _, err := q.Submit(obsBatch(1)); !errors.As(err, &full) {
		t.Fatalf("Submit on full queue = %v, want FullError", err)
	}
	// Invalid twice: shape error (pre-lock) and validator error.
	if _, err := q.Submit(Batch{Key: "x", Points: []geom.Vec3{geom.V(1, 1, 1)}}); err == nil {
		t.Fatal("shape-mismatched batch accepted")
	}
	bad := obsBatch(1)
	bad.Key = "reject"
	if _, err := q.Submit(bad); err == nil {
		t.Fatal("validator-rejected batch accepted")
	}
	q.Close()
	if _, err := q.Submit(obsBatch(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on closed queue = %v, want ErrClosed", err)
	}

	body := obs.Registry.AppendPrometheus(nil)
	if err := remobs.CheckExposition(body); err != nil {
		t.Fatalf("exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"rem_wal_queue_submitted_total 2",
		`rem_wal_queue_rejected_total{cause="full"} 1`,
		`rem_wal_queue_rejected_total{cause="invalid"} 2`,
		`rem_wal_queue_rejected_total{cause="closed"} 1`,
		"rem_wal_queue_depth 2",
		"rem_wal_queue_capacity 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	if v, ok := findSample(text, "rem_wal_queue_retry_after_seconds"); !ok || v == "" {
		t.Errorf("retry-after gauge missing (ok=%v)", ok)
	}
}

// findSample returns the raw value of the first sample line for series.
func findSample(text, series string) (string, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// TestLogObserverReplayAndAppend runs a WAL through append, crash and
// replay with an Observer attached and asserts the fsync/append/replay
// histograms and the replayed-records counter advance, and that the
// events land in the ring.
func TestLogObserverReplayAndAppend(t *testing.T) {
	dir := t.TempDir()
	obs := remobs.New(0)
	l, recs, err := Open(Config{Dir: dir, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	const appends = 3
	for i := 0; i < appends; i++ {
		if _, err := l.Append(AppendBatch(nil, obsBatch(2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	obs2 := remobs.New(0)
	l2, recs2, err := Open(Config{Dir: dir, Observer: obs2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs2) != appends {
		t.Fatalf("replay returned %d records, want %d", len(recs2), appends)
	}
	for _, tc := range []struct {
		obs  *remobs.Observer
		want []string
	}{
		{obs, []string{
			fmt.Sprintf("rem_wal_append_seconds_count %d", appends),
			fmt.Sprintf("rem_wal_fsync_seconds_count %d", appends),
			"rem_wal_replay_seconds_count 1",
			"rem_wal_replayed_records_total 0",
		}},
		{obs2, []string{
			"rem_wal_replay_seconds_count 1",
			fmt.Sprintf("rem_wal_replayed_records_total %d", appends),
			fmt.Sprintf("rem_wal_next_seq %d", appends+1),
		}},
	} {
		body := tc.obs.Registry.AppendPrometheus(nil)
		if err := remobs.CheckExposition(body); err != nil {
			t.Fatalf("exposition: %v\n%s", err, body)
		}
		for _, want := range tc.want {
			if !strings.Contains(string(body), want) {
				t.Errorf("scrape missing %q:\n%s", want, body)
			}
		}
	}
	var kinds []string
	for _, e := range obs2.Events.Snapshot() {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) == 0 || kinds[0] != "wal-replay" {
		t.Errorf("event kinds %v, want leading wal-replay", kinds)
	}
}
