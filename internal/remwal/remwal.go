// Package remwal is the durability layer of the ingestion edge: a
// segmented write-ahead log of observation batches, in the snapshot
// codec's dialect (rem/wire.go — little-endian integers, 4-byte magic
// and a u32 format version first, CRC-32/IEEE integrity), plus the
// bounded ingest queue remserve's POST /observe feeds and core's
// ingest loop drains.
//
// A segment file is
//
//	magic "REML" | u32 version (1) | u64 first sequence number
//
// followed by length-prefixed CRC-framed records:
//
//	u32 payload length | u32 CRC-32/IEEE of payload | payload bytes
//
// Records are observation batches in the "REMO" encoding (batch.go),
// but the log itself is payload-agnostic. Segments are named
// <first-seq, 16 hex digits>.reml, rotate at SegmentBytes, and are
// pruned as whole files by Prune once the observations they hold are
// folded into a durably exported snapshot.
//
// The replayer (Open) is the crash-recovery half of determinism
// contract rule 10: it scans the segments in sequence order and
// truncates at the first torn or corrupt record — a crash mid-write
// loses at most the unacknowledged tail, never an acknowledged record
// (with SyncAlways, the default, Append returns only after fsync).
// Open never fails on corruption and never panics on hostile bytes
// (FuzzWALReplay): the corrupt segment is physically truncated at the
// last good record and any later segments are deleted, so the log is
// immediately appendable again and a second Open replays the same
// prefix.
package remwal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rem"
	"repro/internal/remobs"
)

const (
	segMagic   = "REML"
	segVersion = 1
	// segHeaderLen is the fixed segment prefix: magic, version, first
	// sequence number.
	segHeaderLen = 4 + 4 + 8
	// recHeaderLen frames one record: payload length, payload CRC.
	recHeaderLen = 4 + 4

	// DefaultSegmentBytes rotates segments at 4 MiB — small enough that
	// retention (Prune) reclaims space promptly, large enough that a
	// directory holds few files.
	DefaultSegmentBytes = 4 << 20

	// maxRecordLen bounds one record payload, mirroring the serving
	// layer's body cap with headroom; a declared length beyond it is
	// treated as corruption, so a torn length field cannot make the
	// replayer attempt a huge allocation.
	maxRecordLen = 64 << 20
)

// SyncPolicy selects when Append reaches the disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — an acknowledged record
	// survives kill -9 and power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS (and to explicit Sync/Close
	// calls). A crash may lose an acknowledged tail; replay then
	// recovers the longest synced prefix (rule 10's fsync-lag fault).
	SyncNone
)

// Config tunes a Log.
type Config struct {
	// Dir is the segment directory, created if absent.
	Dir string
	// Sync is the fsync policy (zero value: SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size (≤ 0 means DefaultSegmentBytes).
	SegmentBytes int64
	// Observer attaches the observability layer before replay runs, so
	// the recovery pass itself lands in the replay histogram and event
	// ring. nil leaves the log uninstrumented (SetObserver can still
	// attach later, missing only the replay).
	Observer *remobs.Observer
}

// Record is one replayed WAL entry.
type Record struct {
	// Seq is the record's log-wide sequence number (1-based).
	Seq uint64
	// Payload is the framed bytes, CRC-verified.
	Payload []byte
}

// ErrLogClosed is returned by Append and Sync after Close.
var ErrLogClosed = errors.New("remwal: log closed")

// segment is one on-disk file of the log.
type segment struct {
	path     string
	firstSeq uint64
}

// Log is the segmented write-ahead log. All methods are safe for
// concurrent use; appends are serialised.
type Log struct {
	dir      string
	sync     SyncPolicy
	segBytes int64

	mu      sync.Mutex
	f       *os.File // active segment, open for append
	size    int64    // bytes written to the active segment
	nextSeq uint64
	segs    []segment // in sequence order; last is active
	scratch []byte    // frame assembly buffer, reused across appends
	closed  bool
	// o is the attached instrument set (observe.go); nil means
	// uninstrumented. Written under mu by SetObserver, read under mu on
	// the append path.
	o *logObs
}

// Open opens (or creates) the log in cfg.Dir and replays every intact
// record, truncating at the first torn or corrupt one. The returned
// records are the durable history in append order; the log is ready
// for Append, continuing the sequence numbering after them.
func Open(cfg Config) (*Log, []Record, error) {
	if cfg.Dir == "" {
		return nil, nil, errors.New("remwal: config needs a directory")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{dir: cfg.Dir, sync: cfg.Sync, segBytes: cfg.SegmentBytes}
	l.SetObserver(cfg.Observer)
	replayStart := time.Now()
	recs, err := l.replay()
	if err != nil {
		return nil, nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, nil, err
	}
	l.observeReplay(len(recs), time.Since(replayStart))
	return l, recs, nil
}

// segmentPath names the segment whose first record is seq.
func (l *Log) segmentPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016x.reml", seq))
}

// listSegments enumerates the on-disk segments in sequence order,
// ignoring anything that is not a well-formed segment name (the log
// owns its directory, but a stray file must not wedge recovery).
func (l *Log) listSegments() ([]segment, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".reml") || len(name) != 16+5 {
			continue
		}
		seq, err := strconv.ParseUint(name[:16], 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// replay scans the segments in order, collecting intact records and
// repairing the log in place: the first segment with a corrupt header
// (or a sequence gap) is deleted along with everything after it; a
// segment with a corrupt record is truncated at the last good offset
// and everything after it is deleted.
func (l *Log) replay() ([]Record, error) {
	segs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	var recs []Record
	l.nextSeq = 1
	for i, s := range segs {
		if i == 0 {
			// The first remaining segment fixes the numbering origin —
			// earlier segments may have been pruned.
			l.nextSeq = s.firstSeq
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		good, segRecs := scanSegment(data, s.firstSeq)
		headerOK := good > 0
		if !headerOK || s.firstSeq != l.nextSeq {
			// A corrupt header or a gap in the sequence: this segment and
			// everything after it are unusable.
			if err := removeAll(segs[i:]); err != nil {
				return nil, err
			}
			return recs, nil
		}
		recs = append(recs, segRecs...)
		l.nextSeq = s.firstSeq + uint64(len(segRecs))
		if good < int64(len(data)) {
			// A torn or corrupt record: keep the intact prefix, drop the
			// tail and every later segment.
			if err := os.Truncate(s.path, good); err != nil {
				return nil, err
			}
			if err := removeAll(segs[i+1:]); err != nil {
				return nil, err
			}
			l.segs = append(l.segs, s)
			return recs, nil
		}
		l.segs = append(l.segs, s)
	}
	return recs, nil
}

// scanSegment validates one segment's bytes: the byte offset of the
// last intact record's end (0 when the header itself is bad) and the
// decoded records. Every check guards an allocation, so hostile bytes
// (FuzzWALReplay) cost at most one bounded copy.
func scanSegment(data []byte, firstSeq uint64) (good int64, recs []Record) {
	if len(data) < segHeaderLen ||
		string(data[:4]) != segMagic ||
		rem.U32(data[4:]) != segVersion ||
		rem.U64(data[8:]) != firstSeq {
		return 0, nil
	}
	off := int64(segHeaderLen)
	seq := firstSeq
	for {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return off, recs
		}
		n := rem.U32(rest)
		if uint64(n) > maxRecordLen || uint64(recHeaderLen)+uint64(n) > uint64(len(rest)) {
			return off, recs
		}
		payload := rest[recHeaderLen : recHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != rem.U32(rest[4:]) {
			return off, recs
		}
		// The copy detaches the record from the file read buffer.
		recs = append(recs, Record{Seq: seq, Payload: append([]byte(nil), payload...)})
		seq++
		off += recHeaderLen + int64(n)
	}
}

// removeAll deletes the listed segment files.
func removeAll(segs []segment) error {
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	return nil
}

// openActive opens the last replayed segment for append, or creates
// the first one.
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return l.createSegment()
	}
	s := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, info.Size()
	return nil
}

// createSegment starts a fresh segment whose first record will be
// nextSeq, fsyncing the directory so the new name itself is durable.
func (l *Log) createSegment() error {
	path := l.segmentPath(l.nextSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	rem.PutU32(hdr[4:], segVersion)
	rem.PutU64(hdr[8:], l.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if l.sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.size = f, segHeaderLen
	l.segs = append(l.segs, segment{path: path, firstSeq: l.nextSeq})
	return nil
}

// syncDir fsyncs a directory so a just-created file name survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Append frames payload into the active segment (rotating first if it
// is full) and returns the record's sequence number. With SyncAlways
// the record is on disk when Append returns — the acknowledgement
// contract POST /observe relies on.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("remwal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordLen)
	}
	rec := int64(recHeaderLen + len(payload))
	if l.size > segHeaderLen && l.size+rec > l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var start time.Time
	if l.o != nil {
		start = time.Now()
	}
	l.scratch = l.scratch[:0]
	l.scratch = rem.AppendU32(l.scratch, uint32(len(payload)))
	l.scratch = rem.AppendU32(l.scratch, crc32.ChecksumIEEE(payload))
	l.scratch = append(l.scratch, payload...)
	if _, err := l.f.Write(l.scratch); err != nil {
		return 0, err
	}
	l.size += rec
	var fsyncD time.Duration
	if l.sync == SyncAlways {
		var t0 time.Time
		if l.o != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		if l.o != nil {
			fsyncD = time.Since(t0)
		}
	}
	seq := l.nextSeq
	l.nextSeq++
	if l.o != nil {
		l.observeAppend(seq, time.Since(start), fsyncD)
	}
	return seq, nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	return l.createSegment()
}

// Sync flushes the active segment to disk — the explicit flush point
// for SyncNone logs (graceful shutdown, periodic checkpoints).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.f.Sync()
}

// Close fsyncs and closes the active segment; the tail record is
// intact on the next Open regardless of the sync policy. Further
// appends fail with ErrLogClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// NextSeq returns the sequence number the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Prune deletes whole segments every one of whose records has sequence
// number < beforeSeq — retention keyed to published snapshot versions:
// once a snapshot that folds in observation seq S is durably exported,
// Prune(S+1) reclaims the segments replay no longer needs. The active
// segment is never removed, so the log stays appendable.
func (l *Log) Prune(beforeSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	kept := l.segs[:0]
	for i, s := range l.segs {
		last := i == len(l.segs)-1
		// A non-final segment's records end where the next one starts.
		if !last && l.segs[i+1].firstSeq <= beforeSeq {
			if err := os.Remove(s.path); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return nil
}

// Segments returns the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}
