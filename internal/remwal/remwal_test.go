package remwal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
)

// testBatch builds a deterministic batch for key k with n observations.
func testBatch(k string, n int) Batch {
	b := Batch{Key: k}
	for i := 0; i < n; i++ {
		f := float64(i)
		b.Points = append(b.Points, geom.V(f, f*0.5, f*0.25))
		b.Values = append(b.Values, -40-f)
	}
	return b
}

// appendBatches submits encoded batches straight to a log and returns
// their payload bytes in order.
func appendBatches(t *testing.T, l *Log, batches []Batch) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i, b := range batches {
		p := AppendBatch(nil, b)
		if _, err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		payloads = append(payloads, p)
	}
	return payloads
}

func TestBatchCodecRoundTrip(t *testing.T) {
	in := testBatch("aa:bb:cc:dd:ee:ff", 5)
	enc := AppendBatch(nil, in)
	out, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Key != in.Key || len(out.Points) != len(in.Points) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Points {
		if out.Points[i] != in.Points[i] || out.Values[i] != in.Values[i] {
			t.Fatalf("observation %d mismatch", i)
		}
	}
}

func TestBatchCodecRejects(t *testing.T) {
	good := AppendBatch(nil, testBatch("aa:bb", 2))
	cases := map[string][]byte{
		"truncated header": good[:10],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			rem.PutU32(b[4:], 99)
			return b
		}(),
		"empty key": func() []byte {
			b := AppendBatch(nil, Batch{Key: "", Points: []geom.Vec3{{}}, Values: []float64{1}})
			return b
		}(),
		"size mismatch": good[:len(good)-3],
		"empty batch":   AppendBatch(nil, Batch{Key: "aa:bb"}),
		"nan value": func() []byte {
			b := Batch{Key: "aa:bb", Points: []geom.Vec3{{X: 1}}, Values: []float64{1}}
			enc := AppendBatch(nil, b)
			rem.PutU64(enc[len(enc)-8:], 0x7ff8000000000001) // NaN bits
			return enc
		}(),
	}
	for name, body := range cases {
		if _, err := DecodeBatch(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestLogRoundTripAndCloseDurability(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	batches := []Batch{testBatch("aa:00", 3), testBatch("bb:11", 1), testBatch("cc:22", 7)}
	payloads := appendBatches(t, l, batches)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close: %v", err)
	}

	l2, recs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches))
	}
	for i, r := range recs {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d payload differs", i)
		}
	}
	got, n := Batches(recs)
	if n != len(recs) || len(got) != len(batches) {
		t.Fatalf("Batches decoded %d of %d", n, len(recs))
	}
	if got[2].Key != "cc:22" || len(got[2].Points) != 7 {
		t.Fatalf("decoded batch 2 = %+v", got[2])
	}
	// Numbering continues after replay.
	if seq, err := l2.Append([]byte("x")); err != nil || seq != 4 {
		t.Fatalf("post-replay append: seq %d err %v", seq, err)
	}
}

func TestLogRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, _, err := Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		p := AppendBatch(nil, testBatch("aa:00", 2))
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
	}
	if l.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segment(s)", l.Segments())
	}
	// Replay spans all segments.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d payload differs after rotation", i)
		}
	}
	// Prune everything folded into a snapshot through seq 3: segments
	// wholly below 4 go away, replay resumes mid-sequence.
	before := l.Segments()
	if err := l.Prune(4); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("prune removed nothing (%d → %d segments)", before, l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, recs, err = Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) == 0 || recs[len(recs)-1].Seq != 5 {
		t.Fatalf("post-prune replay ends at %v, want seq 5", recs)
	}
	for _, r := range recs {
		if !bytes.Equal(r.Payload, payloads[r.Seq-1]) {
			t.Fatalf("post-prune record %d payload differs", r.Seq)
		}
	}
	// Numbering still continues from the true tail.
	if seq, err := l.Append([]byte("y")); err != nil || seq != 6 {
		t.Fatalf("post-prune append: seq %d err %v", seq, err)
	}
}

// segPath returns the single segment file of a fresh unrotated log.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.reml"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one segment, have %v (%v)", matches, err)
	}
	return matches[0]
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, l, []Batch{testBatch("aa:00", 2), testBatch("bb:11", 2)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop 3 bytes off.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("torn tail: replayed %d records, want the 1-record prefix", len(recs))
	}
	// The log is appendable and the repair sticks: a new record lands at
	// seq 2 and a further replay sees exactly [1, 2].
	if seq, err := l.Append([]byte("fresh")); err != nil || seq != 2 {
		t.Fatalf("append after repair: seq %d err %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1].Payload) != "fresh" {
		t.Fatalf("post-repair replay = %v", recs)
	}
}

func TestReplayTruncatesBitFlippedRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p1 := AppendBatch(nil, testBatch("aa:00", 2))
	if _, err := l.Append(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(AppendBatch(nil, testBatch("bb:11", 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload: its CRC fails,
	// the first record survives.
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, p1) {
		t.Fatalf("bit flip: replayed %d records, want the intact first", len(recs))
	}
}

func TestReplayDropsCorruptHeaderSegmentAndLaterOnes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(AppendBatch(nil, testBatch("aa:00", 2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.reml"))
	if len(matches) < 3 {
		t.Fatalf("want ≥3 segments, have %d", len(matches))
	}
	// Corrupt the second segment's header: it and every later segment
	// are dropped, the first survives.
	data, err := os.ReadFile(matches[1])
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := os.WriteFile(matches[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want the first segment's 1", len(recs))
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.reml"))
	if len(left) != 1 { // the surviving first segment, reopened for append
		t.Fatalf("%d segment files after repair, want 1: %v", len(left), left)
	}
}

func TestSyncNoneLosesOnlyUnsyncedTail(t *testing.T) {
	// In-process we cannot drop the page cache, so the fsync-lag crash is
	// simulated by truncating the file at the offset of the last record
	// written before an explicit Sync — exactly the prefix the kernel
	// guarantees.
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	p1 := AppendBatch(nil, testBatch("aa:00", 1))
	if _, err := l.Append(p1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	syncedSize := info.Size()
	if _, err := l.Append(AppendBatch(nil, testBatch("bb:11", 1))); err != nil {
		t.Fatal(err)
	}
	// Crash: the unsynced tail never reached the platter.
	l.f.Close() // bypass Close's fsync — this is the crash, not a shutdown
	if err := os.Truncate(path, syncedSize); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, p1) {
		t.Fatalf("fsync-lag crash: replayed %d records, want the synced prefix", len(recs))
	}
}
