package remwal

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
)

// FuzzWALReplay feeds arbitrary bytes to the replayer as a segment
// file. The contract under fuzzing: Open never panics and never
// errors on corruption (only on real I/O faults), the repair is
// idempotent (a second Open replays exactly the same records), and the
// repaired log accepts appends that survive a further replay.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a valid two-record segment, an empty segment, a bare
	// header, plus classic corruptions of each region.
	valid := func() []byte {
		var b []byte
		b = append(b, segMagic...)
		b = rem.AppendU32(b, segVersion)
		b = rem.AppendU64(b, 1)
		for _, p := range [][]byte{
			AppendBatch(nil, Batch{Key: "aa:00", Points: []geom.Vec3{{X: 1, Y: 2, Z: 3}}, Values: []float64{-42}}),
			AppendBatch(nil, Batch{Key: "bb:11", Points: []geom.Vec3{{X: 4}}, Values: []float64{-60}}),
		} {
			b = rem.AppendU32(b, uint32(len(p)))
			b = rem.AppendU32(b, crc32.ChecksumIEEE(p))
			b = append(b, p...)
		}
		return b
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:segHeaderLen])           // empty segment
	f.Add([]byte{})                       // empty file
	f.Add([]byte("REML"))                 // truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // garbage
	huge := append([]byte(nil), valid[:segHeaderLen]...)
	huge = rem.AppendU32(huge, 1<<31) // record length far beyond the bound
	huge = rem.AppendU32(huge, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "0000000000000001.reml")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open errored on corrupt input: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotent repair: replay again, same records.
		l2, recs2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("second Open errored: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("repair not idempotent: %d then %d records", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].Seq != recs2[i].Seq || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d differs between replays", i)
			}
		}
		// The repaired log accepts a record that survives replay.
		seq, err := l2.Append([]byte("post-repair"))
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, recs3, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("third Open errored: %v", err)
		}
		defer l3.Close()
		if len(recs3) != len(recs)+1 {
			t.Fatalf("appended record lost: %d records, want %d", len(recs3), len(recs)+1)
		}
		tail := recs3[len(recs3)-1]
		if tail.Seq != seq || string(tail.Payload) != "post-repair" {
			t.Fatalf("tail record = %+v, want seq %d", tail, seq)
		}
	})
}
