package remwal

import (
	"sync/atomic"
	"time"

	"repro/internal/remobs"
)

// Observability for the durable ingest edge. The queue surfaces what
// previously only escaped inside 429 FullError responses — depth and
// the EWMA-drain Retry-After estimate — as gauges, plus rejected-batch
// counters split by cause; the log times appends, the fsync inside
// them, and replay. Instruments attach via SetObserver (or
// Config.Observer for the log, so replay itself is measured); nil is
// the opt-out and costs one pointer load per operation.

// queueObs is the queue's instrument set.
type queueObs struct {
	obs        *remobs.Observer
	submitted  *remobs.Counter
	rejFull    *remobs.Counter
	rejClosed  *remobs.Counter
	rejInvalid *remobs.Counter
}

// SetObserver registers the queue's metrics: depth, capacity and
// Retry-After gauges plus accepted/rejected counters. Safe to call
// concurrently with Submit (the instrument set swaps in atomically);
// counts before the call are simply not attributed.
func (q *Queue) SetObserver(obs *remobs.Observer) {
	if obs == nil || obs.Registry == nil {
		return
	}
	reg := obs.Registry
	o := &queueObs{
		obs: obs,
		submitted: reg.Counter("rem_wal_queue_submitted_total",
			"batches accepted by Submit (validated, persisted, enqueued)"),
		rejFull: reg.Counter("rem_wal_queue_rejected_total",
			"batches rejected by Submit, by cause", remobs.L("cause", "full")),
		rejClosed: reg.Counter("rem_wal_queue_rejected_total",
			"batches rejected by Submit, by cause", remobs.L("cause", "closed")),
		rejInvalid: reg.Counter("rem_wal_queue_rejected_total",
			"batches rejected by Submit, by cause", remobs.L("cause", "invalid")),
	}
	reg.GaugeFunc("rem_wal_queue_depth", "batches waiting in the ingest queue",
		func() float64 { return float64(q.Len()) })
	reg.GaugeFunc("rem_wal_queue_capacity", "configured ingest queue capacity",
		func() float64 { return float64(q.Cap()) })
	reg.GaugeFunc("rem_wal_queue_retry_after_seconds",
		"EWMA drain estimate of when a full queue frees a slot (the 429 Retry-After value)",
		func() float64 { return float64(q.RetryAfterEstimate()) })
	q.o.Store(o)
}

// RetryAfterEstimate is the drain-rate projection Submit puts in
// FullError.RetryAfter, exported so operators see the backpressure
// signal without driving the queue into 429s first: whole seconds
// until a slot should free up, ≥ 1.
func (q *Queue) RetryAfterEstimate() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retryAfterLocked()
}

// logObs is the log's instrument set.
type logObs struct {
	obs        *remobs.Observer
	appendHist *remobs.Histogram
	fsyncHist  *remobs.Histogram
	replayHist *remobs.Histogram
	replayed   *remobs.Counter
}

// SetObserver registers the log's metrics. Open wires Config.Observer
// through here before replay so the replay histogram sees the
// recovery pass; attaching later just misses it.
func (l *Log) SetObserver(obs *remobs.Observer) {
	if obs == nil || obs.Registry == nil {
		return
	}
	reg := obs.Registry
	o := &logObs{
		obs: obs,
		appendHist: reg.Histogram("rem_wal_append_seconds",
			"WAL append latency (framing, write and any fsync)"),
		fsyncHist: reg.Histogram("rem_wal_fsync_seconds",
			"fsync latency inside WAL appends (SyncAlways only)"),
		replayHist: reg.Histogram("rem_wal_replay_seconds",
			"crash-recovery replay latency per Open"),
		replayed: reg.Counter("rem_wal_replayed_records_total",
			"records recovered by replay across Opens"),
	}
	reg.GaugeFunc("rem_wal_next_seq", "next WAL sequence number to be assigned",
		func() float64 { return float64(l.NextSeq()) })
	l.mu.Lock()
	l.o = o
	l.mu.Unlock()
}

// observeAppend records one durable append. Called under l.mu.
func (l *Log) observeAppend(seq uint64, total, fsync time.Duration) {
	o := l.o
	if o == nil {
		return
	}
	o.appendHist.Observe(total)
	if fsync > 0 || l.sync == SyncAlways {
		o.fsyncHist.Observe(fsync)
	}
	o.obs.Event("wal-append", "seq=%d append=%s fsync=%s",
		seq, total.Round(time.Microsecond), fsync.Round(time.Microsecond))
}

// observeReplay records one recovery pass.
func (l *Log) observeReplay(records int, d time.Duration) {
	o := l.o
	if o == nil {
		return
	}
	o.replayHist.Observe(d)
	o.replayed.Add(uint64(records))
	o.obs.Event("wal-replay", "records=%d next_seq=%d took=%s",
		records, l.NextSeq(), d.Round(time.Microsecond))
}

// obsPtr is a typed atomic holder so Queue can swap its instrument set
// without racing Submit's pre-lock rejection paths.
type obsPtr struct{ p atomic.Pointer[queueObs] }

func (h *obsPtr) Store(o *queueObs) { h.p.Store(o) }
func (h *obsPtr) Load() *queueObs   { return h.p.Load() }

// The mark helpers are nil-safe so Submit needs no instrument guard.

func (o *queueObs) markSubmitted() {
	if o != nil {
		o.submitted.Inc()
	}
}

func (o *queueObs) markInvalid() {
	if o != nil {
		o.rejInvalid.Inc()
	}
}

func (o *queueObs) markClosed() {
	if o != nil {
		o.rejClosed.Inc()
	}
}

func (o *queueObs) markFull() {
	if o != nil {
		o.rejFull.Inc()
	}
}
