package remwal

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
)

// fakeClock mirrors the rate-limiter tests' deterministic clock: the
// Retry-After estimate is pure arithmetic over it.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func qBatch(k string) Batch {
	return Batch{Key: k, Points: []geom.Vec3{{X: 1}}, Values: []float64{-50}}
}

func TestQueueFullRetryAfter(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{Capacity: 2, Now: clk.now})
	ctx := context.Background()

	// No drain history yet: a full queue advises the 1-second floor.
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(qBatch("aa:00")); err != nil {
			t.Fatal(err)
		}
	}
	var full *FullError
	if _, err := q.Submit(qBatch("aa:00")); !errors.As(err, &full) || full.RetryAfter != 1 {
		t.Fatalf("cold full queue: err %v, want FullError{1}", err)
	}

	// Establish a 5s drain rhythm: pop, 5s, pop → EWMA 5s.
	if _, err := q.Pop(ctx); err != nil {
		t.Fatal(err)
	}
	clk.advance(5 * time.Second)
	if _, err := q.Pop(ctx); err != nil {
		t.Fatal(err)
	}
	// Refill; a rejection right after the pop projects the full interval.
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(qBatch("aa:00")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(qBatch("aa:00")); !errors.As(err, &full) || full.RetryAfter != 5 {
		t.Fatalf("just-popped full queue: err %v, want FullError{5}", err)
	}
	// 3s into the interval only 2s remain.
	clk.advance(3 * time.Second)
	if _, err := q.Submit(qBatch("aa:00")); !errors.As(err, &full) || full.RetryAfter != 2 {
		t.Fatalf("mid-interval full queue: err %v, want FullError{2}", err)
	}
	// Past the projection the floor applies again.
	clk.advance(10 * time.Second)
	if _, err := q.Submit(qBatch("aa:00")); !errors.As(err, &full) || full.RetryAfter != 1 {
		t.Fatalf("overdue full queue: err %v, want FullError{1}", err)
	}
}

func TestQueueCloseSemantics(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 4})
	if _, err := q.Submit(qBatch("aa:00")); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close() // idempotent
	if _, err := q.Submit(qBatch("aa:00")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// Accepted batches drain, then Pop reports closure.
	if b, err := q.Pop(context.Background()); err != nil || b.Key != "aa:00" {
		t.Fatalf("drain after close: %v %v", b, err)
	}
	if _, err := q.Pop(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop on drained closed queue: %v", err)
	}
}

func TestQueuePopHonoursContext(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pop on cancelled ctx: %v", err)
	}
}

func TestQueueValidatorGatesWAL(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	q := NewQueue(QueueConfig{Capacity: 4, Log: l})
	wantErr := errors.New("unknown key")
	q.SetValidator(func(b Batch) error {
		if b.Key == "nope" {
			return wantErr
		}
		return nil
	})
	if _, err := q.Submit(qBatch("nope")); !errors.Is(err, wantErr) {
		t.Fatalf("validator bypass: %v", err)
	}
	seq, err := q.Submit(qBatch("aa:00"))
	if err != nil || seq != 1 {
		t.Fatalf("valid submit: seq %d err %v", seq, err)
	}
	// Only the accepted batch reached the log.
	if next := l.NextSeq(); next != 2 {
		t.Fatalf("log NextSeq = %d, want 2", next)
	}
	// Mismatched lengths are rejected before the validator even runs.
	if _, err := q.Submit(Batch{Key: "aa:00", Points: []geom.Vec3{{}}, Values: nil}); err == nil {
		t.Fatal("mismatched points/values accepted")
	}
	if _, err := q.Submit(Batch{Key: "aa:00"}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestQueueFullLeavesNoWALRecord pins the at-most-once-per-ack
// property: a 429'd submission must not leave a record behind, or the
// client's retry would be replayed twice.
func TestQueueFullLeavesNoWALRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	q := NewQueue(QueueConfig{Capacity: 1, Log: l})
	if _, err := q.Submit(qBatch("aa:00")); err != nil {
		t.Fatal(err)
	}
	var full *FullError
	if _, err := q.Submit(qBatch("bb:11")); !errors.As(err, &full) {
		t.Fatalf("second submit: %v", err)
	}
	if next := l.NextSeq(); next != 2 {
		t.Fatalf("rejected submit reached the WAL: NextSeq %d", next)
	}
}
