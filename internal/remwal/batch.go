package remwal

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rem"
)

// The observation batch message ("REMO") is both the POST /observe
// binary request body and the WAL record payload — a batch submitted
// over either wire is persisted as the same canonical bytes, which is
// what makes crash replay independent of how the observations arrived
// (rule 10). The dialect is the snapshot codec's:
//
//	magic "REMO" | u32 version (1) | u32 key length | u32 observation
//	count | key bytes | count × 4 × f64 (x y z value)
//
// One batch carries observations for one key (the POST /at idiom); a
// client with several sources posts several batches. Every field is
// validated before any allocation, mirroring the query wire decoder:
// bad magic, an unsupported version, a key outside the codec bound, a
// declared size disagreeing with the body, an empty batch, or a
// non-finite coordinate or value is rejected.

const (
	batchMagic   = "REMO"
	batchVersion = 1
	// batchHeaderLen is the fixed prefix: magic, version, key length,
	// observation count.
	batchHeaderLen = 4 + 4 + 4 + 4
	// obsLen is one observation: three coordinates and a value.
	obsLen = 4 * 8
)

// Batch is one key's observations: Points[i] was measured at Values[i]
// dBm. Points and Values are always the same length.
type Batch struct {
	Key    string
	Points []geom.Vec3
	Values []float64
}

// AppendBatch appends the canonical "REMO" encoding of b — the bytes
// POST /observe accepts and the WAL persists. len(b.Points) must equal
// len(b.Values).
func AppendBatch(dst []byte, b Batch) []byte {
	dst = append(dst, batchMagic...)
	dst = rem.AppendU32(dst, batchVersion)
	dst = rem.AppendU32(dst, uint32(len(b.Key)))
	dst = rem.AppendU32(dst, uint32(len(b.Points)))
	dst = append(dst, b.Key...)
	for i, p := range b.Points {
		dst = rem.AppendF64(dst, p.X)
		dst = rem.AppendF64(dst, p.Y)
		dst = rem.AppendF64(dst, p.Z)
		dst = rem.AppendF64(dst, b.Values[i])
	}
	return dst
}

// DecodeBatch parses a "REMO" message. The returned batch shares
// nothing with body — safe to retain past a pooled request buffer.
func DecodeBatch(body []byte) (Batch, error) {
	if len(body) < batchHeaderLen {
		return Batch{}, fmt.Errorf("remwal: observation batch header truncated: %d bytes, need %d", len(body), batchHeaderLen)
	}
	if string(body[:4]) != batchMagic {
		return Batch{}, fmt.Errorf("remwal: bad observation batch magic %q", body[:4])
	}
	if v := rem.U32(body[4:]); v != batchVersion {
		return Batch{}, fmt.Errorf("remwal: unsupported observation batch version %d (want %d)", v, batchVersion)
	}
	keyLen := rem.U32(body[8:])
	count := rem.U32(body[12:])
	if keyLen < 1 || keyLen > rem.WireMaxKeyLen {
		return Batch{}, fmt.Errorf("remwal: observation batch key length %d outside [1, %d]", keyLen, rem.WireMaxKeyLen)
	}
	// Declared sizes must agree with the body exactly; the arithmetic is
	// uint64 so a hostile count cannot wrap a native int and slip past.
	want := uint64(batchHeaderLen) + uint64(keyLen) + uint64(count)*obsLen
	if want != uint64(len(body)) {
		return Batch{}, fmt.Errorf("remwal: observation batch declares %d bytes, body has %d", want, len(body))
	}
	if count == 0 {
		return Batch{}, fmt.Errorf("remwal: empty observation batch")
	}
	b := Batch{
		Key:    string(body[batchHeaderLen : batchHeaderLen+keyLen]),
		Points: make([]geom.Vec3, count),
		Values: make([]float64, count),
	}
	off := batchHeaderLen + int(keyLen)
	for i := range b.Points {
		x := rem.F64(body[off:])
		y := rem.F64(body[off+8:])
		z := rem.F64(body[off+16:])
		v := rem.F64(body[off+24:])
		if !finite(x) || !finite(y) || !finite(z) {
			return Batch{}, fmt.Errorf("remwal: observation %d's point is not finite", i)
		}
		if !finite(v) {
			return Batch{}, fmt.Errorf("remwal: observation %d's value is not finite", i)
		}
		b.Points[i] = geom.Vec3{X: x, Y: y, Z: z}
		b.Values[i] = v
		off += obsLen
	}
	return b, nil
}

// Batches decodes replayed records back into observation batches,
// stopping at the first undecodable payload (which, past the CRC, can
// only mean a format-version skew): the intact prefix and how many
// records it covers.
func Batches(recs []Record) ([]Batch, int) {
	out := make([]Batch, 0, len(recs))
	for i, r := range recs {
		b, err := DecodeBatch(r.Payload)
		if err != nil {
			return out, i
		}
		out = append(out, b)
	}
	return out, len(recs)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
