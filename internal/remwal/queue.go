package remwal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// The ingest queue is the backpressure joint between the HTTP edge and
// the stream loop: Submit validates, persists (WAL append + fsync,
// when a Log is attached) and enqueues under one lock — so the WAL
// order is exactly the processing order, and an acknowledged batch is
// durable before the client sees the acknowledgement. A full queue
// sheds load (ErrFull → 429 + Retry-After) instead of blocking; a
// closed queue (the stream loop is down) fails fast (ErrClosed → 503).
// Queries never touch the queue, so ingest pressure cannot slow reads.

// DefaultQueueCapacity bounds the queue when Config leaves it zero.
const DefaultQueueCapacity = 64

// ErrClosed is returned by Submit and Pop once the queue is closed —
// the stream loop has stopped consuming.
var ErrClosed = errors.New("remwal: ingest queue closed")

// ErrAppend wraps a WAL write failure inside Submit, so the serving
// layer can tell an I/O fault (500) from a validation fault (4xx).
var ErrAppend = errors.New("remwal: wal append failed")

// FullError is returned by Submit when the queue is at capacity.
// RetryAfter is the server's drain-rate estimate of when a slot should
// free up, in whole seconds (≥ 1) — the Retry-After header value.
type FullError struct{ RetryAfter int }

func (e *FullError) Error() string {
	return fmt.Sprintf("remwal: ingest queue full (retry after %ds)", e.RetryAfter)
}

// QueueConfig tunes a Queue.
type QueueConfig struct {
	// Capacity bounds the queued batches (≤ 0 means
	// DefaultQueueCapacity).
	Capacity int
	// Log, when set, makes Submit durable: the batch is framed and
	// fsynced (per the log's policy) before it is enqueued, and the
	// returned sequence number names its WAL record.
	Log *Log
	// Now is the drain-rate clock (nil means time.Now) — injectable so
	// the Retry-After tests run on a fake clock.
	Now func() time.Time
}

// Queue is the bounded ingest queue. Submit is safe for arbitrary
// concurrency (the HTTP handlers); Pop for any number of consumers,
// though the stream loop is the only one in practice.
type Queue struct {
	ch  chan Batch
	log *Log
	now func() time.Time
	// o is the attached instrument set (observe.go), swapped atomically
	// so rejection paths that run before the lock stay race-free.
	o obsPtr

	mu       sync.Mutex
	closed   bool
	validate func(Batch) error
	enc      []byte // REMO scratch, reused across submits
	lastPop  time.Time
	drainAvg time.Duration // EWMA of the inter-pop interval
}

// NewQueue builds a queue over cfg.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultQueueCapacity
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Queue{ch: make(chan Batch, cfg.Capacity), log: cfg.Log, now: cfg.Now}
}

// SetValidator installs the shape check Submit applies before
// persisting — the ingest loop's vocabulary/geometry gate. A batch the
// validator rejects is never written to the WAL, so replay only ever
// sees batches the pipeline can process.
func (q *Queue) SetValidator(fn func(Batch) error) {
	q.mu.Lock()
	q.validate = fn
	q.mu.Unlock()
}

// Submit validates, persists and enqueues one batch, returning its WAL
// sequence number (0 without a Log). A full queue returns *FullError
// without persisting anything — the client retries and no duplicate
// record is left behind; a closed queue returns ErrClosed.
func (q *Queue) Submit(b Batch) (uint64, error) {
	o := q.o.Load()
	if len(b.Points) != len(b.Values) {
		o.markInvalid()
		return 0, fmt.Errorf("remwal: batch has %d points for %d values", len(b.Points), len(b.Values))
	}
	if len(b.Points) == 0 {
		o.markInvalid()
		return 0, errors.New("remwal: empty observation batch")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		o.markClosed()
		return 0, ErrClosed
	}
	if q.validate != nil {
		if err := q.validate(b); err != nil {
			o.markInvalid()
			return 0, err
		}
	}
	if len(q.ch) == cap(q.ch) {
		o.markFull()
		return 0, &FullError{RetryAfter: q.retryAfterLocked()}
	}
	var seq uint64
	if q.log != nil {
		q.enc = AppendBatch(q.enc[:0], b)
		var err error
		if seq, err = q.log.Append(q.enc); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrAppend, err)
		}
	}
	// Cannot block: every sender holds q.mu and the length was checked
	// under it; Pop only removes.
	q.ch <- b
	o.markSubmitted()
	return seq, nil
}

// Pop dequeues the next batch, blocking until one arrives, ctx is
// done, or the queue is closed and drained (ErrClosed).
func (q *Queue) Pop(ctx context.Context) (Batch, error) {
	select {
	case b, ok := <-q.ch:
		if !ok {
			return Batch{}, ErrClosed
		}
		q.observePop()
		return b, nil
	case <-ctx.Done():
		return Batch{}, ctx.Err()
	}
}

// observePop feeds the drain-rate estimate: an EWMA (half weight on
// the newest interval) of the time between consecutive pops.
func (q *Queue) observePop() {
	q.mu.Lock()
	now := q.now()
	if !q.lastPop.IsZero() {
		dt := now.Sub(q.lastPop)
		if q.drainAvg == 0 {
			q.drainAvg = dt
		} else {
			q.drainAvg = (q.drainAvg + dt) / 2
		}
	}
	q.lastPop = now
	q.mu.Unlock()
}

// retryAfterLocked projects when the consumer should free a slot: the
// drain-interval estimate minus the time already waited since the last
// pop, rounded up to whole seconds, at least 1 (Retry-After is
// integral and "come straight back" is never useful advice from a full
// queue).
func (q *Queue) retryAfterLocked() int {
	if q.drainAvg == 0 {
		return 1
	}
	wait := q.drainAvg
	if !q.lastPop.IsZero() {
		wait -= q.now().Sub(q.lastPop)
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		return 1
	}
	return secs
}

// Close stops intake: further Submits fail with ErrClosed (503 at the
// edge), while Pop keeps draining already-accepted batches and then
// reports ErrClosed. Closing twice is a no-op.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
}

// Len is the current queue depth.
func (q *Queue) Len() int { return len(q.ch) }

// Cap is the configured capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// WAL exposes the attached log (nil when the queue is ephemeral).
func (q *Queue) WAL() *Log { return q.log }
