package dataset

import (
	"fmt"
	"sort"

	"repro/internal/simrand"
)

// MinSamplesPerMAC is the paper's retention threshold: MAC addresses with
// fewer than 16 samples are dropped, "since the goal was to predict RSS
// values of APs with a sufficient number of measurements" (§III-B). On the
// paper's data this keeps 2565 of 2696 samples.
const MinSamplesPerMAC = 16

// Row is one preprocessed training example.
type Row struct {
	// Pos is the annotated 3-D position.
	Pos [3]float64
	// MACIndex is the index into the one-hot MAC vocabulary.
	MACIndex int
	// ChannelIndex is the index into the one-hot channel vocabulary.
	ChannelIndex int
	// RSSI is the regression target in dBm.
	RSSI float64
}

// Preprocessed is the ML-ready dataset. Timestamps and SSIDs are
// deliberately absent: the paper discards SSIDs (shared between devices)
// and timestamps (the collection window is under 10 minutes).
type Preprocessed struct {
	// Rows are the retained examples.
	Rows []Row
	// MACs is the one-hot vocabulary, sorted for determinism; MACIndex
	// refers into it.
	MACs []string
	// Channels is the channel vocabulary, sorted; ChannelIndex refers
	// into it.
	Channels []int
	// Dropped is the number of samples removed by the MAC threshold
	// (paper: 131).
	Dropped int
}

// Preprocess applies the paper's §III-B pipeline: group by MAC, drop MACs
// with fewer than minPerMAC samples, and build the categorical vocabularies
// for one-hot encoding.
func Preprocess(d *Dataset, minPerMAC int) (*Preprocessed, error) {
	if minPerMAC < 1 {
		return nil, fmt.Errorf("dataset: minPerMAC must be ≥1, got %d", minPerMAC)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("dataset: nothing to preprocess")
	}
	counts := map[string]int{}
	for _, s := range d.Samples {
		counts[s.MAC]++
	}
	keep := map[string]bool{}
	var macs []string
	for mac, n := range counts {
		if n >= minPerMAC {
			keep[mac] = true
			macs = append(macs, mac)
		}
	}
	if len(macs) == 0 {
		return nil, fmt.Errorf("dataset: no MAC reaches the %d-sample threshold", minPerMAC)
	}
	sort.Strings(macs)
	macIdx := make(map[string]int, len(macs))
	for i, m := range macs {
		macIdx[m] = i
	}

	chSet := map[int]bool{}
	for _, s := range d.Samples {
		if keep[s.MAC] {
			chSet[s.Channel] = true
		}
	}
	channels := make([]int, 0, len(chSet))
	for ch := range chSet {
		channels = append(channels, ch)
	}
	sort.Ints(channels)
	chIdx := make(map[int]int, len(channels))
	for i, ch := range channels {
		chIdx[ch] = i
	}

	p := &Preprocessed{MACs: macs, Channels: channels}
	for _, s := range d.Samples {
		if !keep[s.MAC] {
			p.Dropped++
			continue
		}
		p.Rows = append(p.Rows, Row{
			Pos:          [3]float64{s.X, s.Y, s.Z},
			MACIndex:     macIdx[s.MAC],
			ChannelIndex: chIdx[s.Channel],
			RSSI:         float64(s.RSSI),
		})
	}
	return p, nil
}

// FeatureOptions selects the feature encoding for a design matrix.
type FeatureOptions struct {
	// OneHotMACScale multiplies the one-hot MAC block; the paper's best
	// kNN uses 3 so that samples from different MACs sit farther apart.
	// Zero omits the MAC block entirely.
	OneHotMACScale float64
	// IncludeChannel appends a one-hot channel block.
	IncludeChannel bool
}

// FeatureDim returns the dimensionality the options produce.
func (p *Preprocessed) FeatureDim(opt FeatureOptions) int {
	dim := 3
	if opt.OneHotMACScale != 0 {
		dim += len(p.MACs)
	}
	if opt.IncludeChannel {
		dim += len(p.Channels)
	}
	return dim
}

// DesignMatrix materialises features X and targets y under the given
// encoding.
func (p *Preprocessed) DesignMatrix(opt FeatureOptions) (x [][]float64, y []float64) {
	dim := p.FeatureDim(opt)
	x = make([][]float64, len(p.Rows))
	y = make([]float64, len(p.Rows))
	for i, r := range p.Rows {
		v := make([]float64, dim)
		v[0], v[1], v[2] = r.Pos[0], r.Pos[1], r.Pos[2]
		off := 3
		if opt.OneHotMACScale != 0 {
			v[off+r.MACIndex] = opt.OneHotMACScale
			off += len(p.MACs)
		}
		if opt.IncludeChannel {
			v[off+r.ChannelIndex] = 1
		}
		x[i] = v
		y[i] = r.RSSI
	}
	return x, y
}

// Split partitions the rows into train and test subsets with the given
// train fraction, shuffling with the provided stream (the paper uses 75/25).
func (p *Preprocessed) Split(trainFrac float64, rng *simrand.Source) (train, test *Preprocessed, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %g outside (0, 1)", trainFrac)
	}
	if len(p.Rows) < 2 {
		return nil, nil, fmt.Errorf("dataset: need at least 2 rows to split, have %d", len(p.Rows))
	}
	perm := rng.Perm(len(p.Rows))
	nTrain := int(float64(len(p.Rows)) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= len(p.Rows) {
		nTrain = len(p.Rows) - 1
	}
	mk := func(idx []int) *Preprocessed {
		q := &Preprocessed{MACs: p.MACs, Channels: p.Channels}
		q.Rows = make([]Row, len(idx))
		for i, j := range idx {
			q.Rows[i] = p.Rows[j]
		}
		return q
	}
	return mk(perm[:nTrain]), mk(perm[nTrain:]), nil
}

// ByMAC groups row indices by MAC index, used by the per-MAC kNN ensemble.
func (p *Preprocessed) ByMAC() map[int][]int {
	out := map[int][]int{}
	for i, r := range p.Rows {
		out[r.MACIndex] = append(out[r.MACIndex], i)
	}
	return out
}
