// Package dataset holds the location-annotated signal-quality samples the
// UAV fleet streams back to the base station, plus the aggregate statistics
// (§III-A) and the ML preprocessing steps (§III-B) of the paper: grouping by
// MAC, dropping rarely seen MACs, one-hot encoding, and train/test
// splitting.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/simrand"
)

// Sample is one location-annotated measurement.
type Sample struct {
	// UAV labels which vehicle collected the sample ("A", "B", ...).
	UAV string
	// Waypoint is the index of the scan location in the UAV's plan.
	Waypoint int
	// Time is the virtual collection time since mission start.
	Time time.Duration
	// X, Y, Z is the annotated position (the UAV's on-board estimate).
	X, Y, Z float64
	// TrueX, TrueY, TrueZ is the simulation ground truth, kept for
	// localization-error analysis; the ML stage never sees it.
	TrueX, TrueY, TrueZ float64
	// MAC is the beacon source identity (the REM key).
	MAC string
	// SSID is the advertised network name.
	SSID string
	// RSSI is the measured signal strength in dBm.
	RSSI int
	// Channel is the Wi-Fi channel.
	Channel int
}

// Dataset is an append-only collection of samples.
type Dataset struct {
	Samples []Sample
}

// Add appends one sample.
func (d *Dataset) Add(s Sample) { d.Samples = append(d.Samples, s) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Stats are the aggregate dataset statistics the paper reports in §III-A.
type Stats struct {
	// Total is the overall sample count (paper: 2696).
	Total int
	// PerUAV maps UAV label to its sample count (paper: A=1495, B=1201).
	PerUAV map[string]int
	// DistinctMACs is the number of unique MAC addresses (paper: 73).
	DistinctMACs int
	// DistinctSSIDs is the number of unique SSIDs (paper: 49).
	DistinctSSIDs int
	// MeanRSSI is the mean measured RSS in dBm (paper: ≈ −73).
	MeanRSSI float64
}

// Stats computes the aggregate statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{PerUAV: map[string]int{}}
	macs := map[string]bool{}
	ssids := map[string]bool{}
	var rssiSum float64
	for _, smp := range d.Samples {
		s.Total++
		s.PerUAV[smp.UAV]++
		macs[smp.MAC] = true
		ssids[smp.SSID] = true
		rssiSum += float64(smp.RSSI)
	}
	s.DistinctMACs = len(macs)
	s.DistinctSSIDs = len(ssids)
	if s.Total > 0 {
		s.MeanRSSI = rssiSum / float64(s.Total)
	}
	return s
}

// CountPerWaypoint returns, per UAV, the number of samples collected at each
// waypoint index — the data behind the paper's Figure 6.
func (d *Dataset) CountPerWaypoint() map[string]map[int]int {
	out := map[string]map[int]int{}
	for _, s := range d.Samples {
		m, ok := out[s.UAV]
		if !ok {
			m = map[int]int{}
			out[s.UAV] = m
		}
		m[s.Waypoint]++
	}
	return out
}

// Axis selects a coordinate for histogramming.
type Axis int

// Histogram axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	default:
		return "z"
	}
}

// Bin is one histogram bucket.
type Bin struct {
	// Lo and Hi bound the bucket: [Lo, Hi).
	Lo, Hi float64
	// Count is the number of samples whose coordinate falls in the bucket.
	Count int
}

// Histogram buckets sample positions along an axis in bins of the given
// width anchored at zero — the paper's Figure 7 uses 0.5 m bins along x and
// y. Empty leading/trailing bins are trimmed.
func (d *Dataset) Histogram(axis Axis, binWidth float64) ([]Bin, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("dataset: bin width must be positive, got %g", binWidth)
	}
	if len(d.Samples) == 0 {
		return nil, nil
	}
	counts := map[int]int{}
	minIdx, maxIdx := math.MaxInt32, math.MinInt32
	for _, s := range d.Samples {
		var v float64
		switch axis {
		case AxisX:
			v = s.X
		case AxisY:
			v = s.Y
		default:
			v = s.Z
		}
		idx := int(math.Floor(v / binWidth))
		counts[idx]++
		if idx < minIdx {
			minIdx = idx
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	bins := make([]Bin, 0, maxIdx-minIdx+1)
	for i := minIdx; i <= maxIdx; i++ {
		bins = append(bins, Bin{
			Lo:    float64(i) * binWidth,
			Hi:    float64(i+1) * binWidth,
			Count: counts[i],
		})
	}
	return bins, nil
}

// csvHeader is the canonical column order.
var csvHeader = []string{
	"uav", "waypoint", "time_us",
	"x", "y", "z",
	"true_x", "true_y", "true_z",
	"mac", "ssid", "rssi", "channel",
}

// WriteCSV streams the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, s := range d.Samples {
		rec[0] = s.UAV
		rec[1] = strconv.Itoa(s.Waypoint)
		rec[2] = strconv.FormatInt(s.Time.Microseconds(), 10)
		rec[3] = strconv.FormatFloat(s.X, 'g', -1, 64)
		rec[4] = strconv.FormatFloat(s.Y, 'g', -1, 64)
		rec[5] = strconv.FormatFloat(s.Z, 'g', -1, 64)
		rec[6] = strconv.FormatFloat(s.TrueX, 'g', -1, 64)
		rec[7] = strconv.FormatFloat(s.TrueY, 'g', -1, 64)
		rec[8] = strconv.FormatFloat(s.TrueZ, 'g', -1, 64)
		rec[9] = s.MAC
		rec[10] = s.SSID
		rec[11] = strconv.Itoa(s.RSSI)
		rec[12] = strconv.Itoa(s.Channel)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range header {
		if h != csvHeader[i] {
			return nil, fmt.Errorf("dataset: column %d is %q, want %q", i, h, csvHeader[i])
		}
	}
	d := &Dataset{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		s, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		d.Add(s)
	}
}

func parseRecord(rec []string) (Sample, error) {
	var s Sample
	var err error
	s.UAV = rec[0]
	if s.Waypoint, err = strconv.Atoi(rec[1]); err != nil {
		return s, fmt.Errorf("waypoint: %w", err)
	}
	us, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return s, fmt.Errorf("time: %w", err)
	}
	s.Time = time.Duration(us) * time.Microsecond
	floats := []*float64{&s.X, &s.Y, &s.Z, &s.TrueX, &s.TrueY, &s.TrueZ}
	for i, dst := range floats {
		if *dst, err = strconv.ParseFloat(rec[3+i], 64); err != nil {
			return s, fmt.Errorf("column %d: %w", 3+i, err)
		}
	}
	s.MAC = rec[9]
	s.SSID = rec[10]
	if s.RSSI, err = strconv.Atoi(rec[11]); err != nil {
		return s, fmt.Errorf("rssi: %w", err)
	}
	if s.Channel, err = strconv.Atoi(rec[12]); err != nil {
		return s, fmt.Errorf("channel: %w", err)
	}
	return s, nil
}

// Shuffle randomly permutes the samples in place.
func (d *Dataset) Shuffle(rng *simrand.Source) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// MACs returns the distinct MAC addresses in deterministic (sorted) order.
func (d *Dataset) MACs() []string {
	set := map[string]bool{}
	for _, s := range d.Samples {
		set[s.MAC] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
