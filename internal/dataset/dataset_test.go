package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/simrand"
)

func sampleData() *Dataset {
	d := &Dataset{}
	macs := []string{"02:00:00:00:00:01", "02:00:00:00:00:02", "02:00:00:00:00:03"}
	ssids := []string{"net-a", "net-a", "net-b"}
	for i := 0; i < 60; i++ {
		mac := macs[i%3]
		d.Add(Sample{
			UAV:      map[bool]string{true: "A", false: "B"}[i%2 == 0],
			Waypoint: i % 6,
			Time:     time.Duration(i) * time.Second,
			X:        float64(i%4) * 0.9, Y: float64(i%5) * 0.6, Z: 1.0,
			TrueX: float64(i%4) * 0.9, TrueY: float64(i%5) * 0.6, TrueZ: 1.0,
			MAC: mac, SSID: ssids[i%3], RSSI: -60 - i%30, Channel: 1 + i%13,
		})
	}
	return d
}

func TestStats(t *testing.T) {
	d := sampleData()
	s := d.Stats()
	if s.Total != 60 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.PerUAV["A"] != 30 || s.PerUAV["B"] != 30 {
		t.Errorf("PerUAV = %v", s.PerUAV)
	}
	if s.DistinctMACs != 3 {
		t.Errorf("DistinctMACs = %d", s.DistinctMACs)
	}
	if s.DistinctSSIDs != 2 {
		t.Errorf("DistinctSSIDs = %d", s.DistinctSSIDs)
	}
	if s.MeanRSSI >= -60 || s.MeanRSSI <= -90 {
		t.Errorf("MeanRSSI = %v", s.MeanRSSI)
	}
}

func TestStatsEmpty(t *testing.T) {
	d := &Dataset{}
	s := d.Stats()
	if s.Total != 0 || s.MeanRSSI != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestCountPerWaypoint(t *testing.T) {
	d := sampleData()
	counts := d.CountPerWaypoint()
	if len(counts) != 2 {
		t.Fatalf("UAV count = %d", len(counts))
	}
	totalA := 0
	for _, n := range counts["A"] {
		totalA += n
	}
	if totalA != 30 {
		t.Errorf("A waypoint counts sum to %d", totalA)
	}
}

func TestHistogram(t *testing.T) {
	d := sampleData()
	bins, err := d.Histogram(AxisX, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi-b.Lo != 0.5 {
			t.Errorf("bin width = %v", b.Hi-b.Lo)
		}
	}
	if total != 60 {
		t.Errorf("histogram total = %d", total)
	}
	// Bins must tile contiguously.
	for i := 1; i < len(bins); i++ {
		if bins[i].Lo != bins[i-1].Hi {
			t.Errorf("gap between bins %d and %d", i-1, i)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	d := sampleData()
	if _, err := d.Histogram(AxisX, 0); err == nil {
		t.Error("zero bin width accepted")
	}
	empty := &Dataset{}
	bins, err := empty.Histogram(AxisY, 0.5)
	if err != nil || bins != nil {
		t.Errorf("empty histogram = %v, %v", bins, err)
	}
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "x" || AxisY.String() != "y" || AxisZ.String() != "z" {
		t.Error("axis strings wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleData()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), d.Len())
	}
	for i := range d.Samples {
		if d.Samples[i] != back.Samples[i] {
			t.Fatalf("sample %d mismatch:\n got %+v\nwant %+v", i, back.Samples[i], d.Samples[i])
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "a,b,c\n",
		"short header": "uav,waypoint\n",
		"bad waypoint": "uav,waypoint,time_us,x,y,z,true_x,true_y,true_z,mac,ssid,rssi,channel\nA,xx,0,0,0,0,0,0,0,m,s,-70,6\n",
		"bad rssi":     "uav,waypoint,time_us,x,y,z,true_x,true_y,true_z,mac,ssid,rssi,channel\nA,0,0,0,0,0,0,0,0,m,s,zz,6\n",
		"bad float":    "uav,waypoint,time_us,x,y,z,true_x,true_y,true_z,mac,ssid,rssi,channel\nA,0,0,q,0,0,0,0,0,m,s,-70,6\n",
		"bad time":     "uav,waypoint,time_us,x,y,z,true_x,true_y,true_z,mac,ssid,rssi,channel\nA,0,q,0,0,0,0,0,0,m,s,-70,6\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMACsSorted(t *testing.T) {
	d := sampleData()
	macs := d.MACs()
	if len(macs) != 3 {
		t.Fatalf("MACs = %v", macs)
	}
	for i := 1; i < len(macs); i++ {
		if macs[i] <= macs[i-1] {
			t.Error("MACs not sorted")
		}
	}
}

func TestShuffleKeepsAll(t *testing.T) {
	d := sampleData()
	before := d.Stats()
	d.Shuffle(simrand.New(5))
	after := d.Stats()
	if before.Total != after.Total || before.MeanRSSI != after.MeanRSSI {
		t.Error("shuffle changed content")
	}
}

func TestPreprocessDropsRareMACs(t *testing.T) {
	d := sampleData() // 3 MACs × 20 samples each
	// Add a rare MAC with 5 samples.
	for i := 0; i < 5; i++ {
		d.Add(Sample{UAV: "A", MAC: "02:00:00:00:00:99", SSID: "rare", RSSI: -80, Channel: 6})
	}
	p, err := Preprocess(d, MinSamplesPerMAC)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dropped != 5 {
		t.Errorf("Dropped = %d, want 5", p.Dropped)
	}
	if len(p.Rows) != 60 {
		t.Errorf("retained = %d, want 60", len(p.Rows))
	}
	if len(p.MACs) != 3 {
		t.Errorf("vocabulary = %v", p.MACs)
	}
}

func TestPreprocessValidation(t *testing.T) {
	if _, err := Preprocess(&Dataset{}, 16); err == nil {
		t.Error("empty dataset accepted")
	}
	d := sampleData()
	if _, err := Preprocess(d, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := Preprocess(d, 1000); err == nil {
		t.Error("impossible threshold accepted")
	}
}

func TestDesignMatrixEncodings(t *testing.T) {
	d := sampleData()
	p, err := Preprocess(d, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinates only.
	x, y := p.DesignMatrix(FeatureOptions{})
	if len(x) != len(p.Rows) || len(y) != len(p.Rows) {
		t.Fatal("matrix size mismatch")
	}
	if len(x[0]) != 3 {
		t.Errorf("xyz-only dim = %d", len(x[0]))
	}

	// xyz + one-hot MAC (the paper's kNN features).
	opt := FeatureOptions{OneHotMACScale: 1}
	x, _ = p.DesignMatrix(opt)
	if len(x[0]) != 3+len(p.MACs) {
		t.Errorf("mac-encoded dim = %d, want %d", len(x[0]), 3+len(p.MACs))
	}
	// Exactly one hot element per row, equal to the scale.
	for _, row := range x {
		hot := 0
		for _, v := range row[3:] {
			if v != 0 {
				hot++
				if v != 1 {
					t.Errorf("one-hot value = %v, want 1", v)
				}
			}
		}
		if hot != 1 {
			t.Fatalf("row has %d hot MAC entries", hot)
		}
	}

	// Scaled one-hot (paper's best variant uses ×3).
	opt = FeatureOptions{OneHotMACScale: 3}
	x, _ = p.DesignMatrix(opt)
	for _, row := range x {
		for _, v := range row[3:] {
			if v != 0 && v != 3 {
				t.Fatalf("scaled one-hot value = %v, want 3", v)
			}
		}
	}

	// With channel block.
	opt = FeatureOptions{OneHotMACScale: 1, IncludeChannel: true}
	if got := p.FeatureDim(opt); got != 3+len(p.MACs)+len(p.Channels) {
		t.Errorf("FeatureDim = %d", got)
	}
	x, _ = p.DesignMatrix(opt)
	if len(x[0]) != p.FeatureDim(opt) {
		t.Error("design matrix dim disagrees with FeatureDim")
	}
}

func TestSplit(t *testing.T) {
	d := sampleData()
	p, _ := Preprocess(d, 1)
	train, test, err := p.Split(0.75, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Rows)+len(test.Rows) != len(p.Rows) {
		t.Error("split lost rows")
	}
	if len(train.Rows) != 45 {
		t.Errorf("train size = %d, want 45 (75%% of 60)", len(train.Rows))
	}
	// Vocabularies must be shared, not recomputed.
	if &train.MACs[0] != &p.MACs[0] {
		t.Error("train vocabulary reallocated; must share the parent's")
	}
}

func TestSplitValidation(t *testing.T) {
	d := sampleData()
	p, _ := Preprocess(d, 1)
	if _, _, err := p.Split(0, simrand.New(1)); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, err := p.Split(1, simrand.New(1)); err == nil {
		t.Error("fraction 1 accepted")
	}
	tiny := &Preprocessed{Rows: []Row{{}}}
	if _, _, err := tiny.Split(0.5, simrand.New(1)); err == nil {
		t.Error("single-row split accepted")
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := sampleData()
	p, _ := Preprocess(d, 1)
	tr1, _, _ := p.Split(0.75, simrand.New(42))
	tr2, _, _ := p.Split(0.75, simrand.New(42))
	for i := range tr1.Rows {
		if tr1.Rows[i] != tr2.Rows[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestByMAC(t *testing.T) {
	d := sampleData()
	p, _ := Preprocess(d, 1)
	groups := p.ByMAC()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for mi, idxs := range groups {
		total += len(idxs)
		for _, i := range idxs {
			if p.Rows[i].MACIndex != mi {
				t.Fatal("row grouped under wrong MAC")
			}
		}
	}
	if total != len(p.Rows) {
		t.Error("grouping lost rows")
	}
}
