package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simrand"
)

// sanitizeField strips characters the CSV layer would alter semantically is
// NOT needed — encoding/csv quotes everything properly. The property test
// therefore feeds raw strings straight through.
func TestCSVQuickRoundTrip(t *testing.T) {
	f := func(uavName, mac, ssid string, wp uint8, rssi int8, channel uint8, x, y, z float64) bool {
		// NaN/Inf are not representable in the CSV schema by design.
		if x != x || y != y || z != z {
			return true
		}
		if x > 1e15 || x < -1e15 || y > 1e15 || y < -1e15 || z > 1e15 || z < -1e15 {
			return true
		}
		// Strip the CR/LF the csv reader normalises inside quoted fields.
		clean := func(s string) string {
			return strings.NewReplacer("\r", "", "\n", "").Replace(s)
		}
		d := &Dataset{}
		d.Add(Sample{
			UAV:      clean(uavName),
			Waypoint: int(wp),
			Time:     time.Duration(wp) * time.Second,
			X:        x, Y: y, Z: z,
			TrueX: x, TrueY: y, TrueZ: z,
			MAC:  clean(mac),
			SSID: clean(ssid),
			RSSI: int(rssi), Channel: int(channel),
		})
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Logf("read error: %v", err)
			return false
		}
		return back.Len() == 1 && back.Samples[0] == d.Samples[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPreprocessQuickConservation: for any dataset, dropped + retained must
// equal the total, and every retained row's MAC index must be valid.
func TestPreprocessQuickConservation(t *testing.T) {
	f := func(seed uint16, nMACs, perMAC uint8) bool {
		macs := int(nMACs)%6 + 1
		per := int(perMAC)%30 + 1
		rng := simrand.New(uint64(seed))
		d := &Dataset{}
		for m := 0; m < macs; m++ {
			count := per + m // vary counts so some MACs fall under threshold
			for i := 0; i < count; i++ {
				d.Add(Sample{
					UAV: "A", MAC: string(rune('a' + m)), SSID: "s",
					X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
					RSSI: -60 - rng.Intn(30), Channel: 1 + rng.Intn(13),
				})
			}
		}
		p, err := Preprocess(d, 8)
		if err != nil {
			// Legitimate when every MAC is under threshold.
			return per+macs-1 < 8
		}
		if p.Dropped+len(p.Rows) != d.Len() {
			return false
		}
		for _, r := range p.Rows {
			if r.MACIndex < 0 || r.MACIndex >= len(p.MACs) {
				return false
			}
			if r.ChannelIndex < 0 || r.ChannelIndex >= len(p.Channels) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSplitQuickConservation: any valid split partitions the rows exactly.
func TestSplitQuickConservation(t *testing.T) {
	f := func(seed uint16, n uint8, fracRaw uint8) bool {
		rows := int(n)%60 + 2
		frac := 0.1 + 0.8*float64(fracRaw)/255
		p := &Preprocessed{MACs: []string{"m"}, Channels: []int{1}}
		for i := 0; i < rows; i++ {
			p.Rows = append(p.Rows, Row{Pos: [3]float64{float64(i), 0, 0}, RSSI: float64(-i)})
		}
		train, test, err := p.Split(frac, simrand.New(uint64(seed)))
		if err != nil {
			return false
		}
		if len(train.Rows)+len(test.Rows) != rows {
			return false
		}
		if len(train.Rows) == 0 || len(test.Rows) == 0 {
			return false
		}
		// No row lost or duplicated: positions were unique.
		seen := map[float64]bool{}
		for _, r := range train.Rows {
			seen[r.Pos[0]] = true
		}
		for _, r := range test.Rows {
			if seen[r.Pos[0]] {
				return false // duplicated across splits
			}
			seen[r.Pos[0]] = true
		}
		return len(seen) == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
