package planner

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/simrand"
)

func TestPaperBudgetReproducesTwoUAVFleet(t *testing.T) {
	b := PaperBudget()
	if err := b.Validate(); err != nil {
		t.Fatalf("paper budget invalid: %v", err)
	}
	// The paper surveys 72 waypoints with 2 UAVs of 36 each; the budget
	// must reproduce that fleet decision.
	per := b.MaxWaypoints()
	if per < 36 || per > 45 {
		t.Errorf("max waypoints per sortie = %d, want ≈36–38 (the paper's per-UAV load)", per)
	}
	fleet, err := FleetSize(72, b)
	if err != nil {
		t.Fatal(err)
	}
	if fleet != 2 {
		t.Errorf("fleet size for 72 waypoints = %d, want 2 (the paper's choice)", fleet)
	}
}

func TestBudgetValidation(t *testing.T) {
	b := PaperBudget()
	b.Endurance = 0
	if err := b.Validate(); err == nil {
		t.Error("zero endurance accepted")
	}
	b = PaperBudget()
	b.SafetyMargin = 1
	if err := b.Validate(); err == nil {
		t.Error("margin 1 accepted")
	}
	b = PaperBudget()
	b.Overhead = -time.Second
	if err := b.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestMaxWaypointsDegenerate(t *testing.T) {
	b := SortieBudget{Endurance: 5 * time.Second, PerWaypoint: 10 * time.Second, Overhead: time.Second}
	if got := b.MaxWaypoints(); got != 0 {
		t.Errorf("tiny budget MaxWaypoints = %d", got)
	}
	if _, err := FleetSize(10, b); err == nil {
		t.Error("infeasible budget accepted")
	}
	if _, err := FleetSize(0, PaperBudget()); err == nil {
		t.Error("zero waypoints accepted")
	}
}

func TestPartitionRespectsBudget(t *testing.T) {
	vol := geom.PaperScanVolume()
	points, err := vol.Lattice(4, 6, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(points, PaperBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	per := PaperBudget().MaxWaypoints()
	total := 0
	for _, p := range parts {
		if len(p) > per {
			t.Errorf("sortie of %d exceeds budget %d", len(p), per)
		}
		total += len(p)
	}
	if total != len(points) {
		t.Errorf("partition lost waypoints: %d of %d", total, len(points))
	}
}

func TestTwoOptNeverWorsensTour(t *testing.T) {
	rng := simrand.New(1)
	f := func(seed uint16, n uint8) bool {
		r := rng.DeriveN("tour", int(seed))
		count := int(n)%20 + 3
		points := make([]geom.Vec3, count)
		for i := range points {
			points[i] = geom.V(r.Range(0, 4), r.Range(0, 3), r.Range(0, 2))
		}
		start := geom.V(0, 0, 0)
		before := TourLength(start, points)
		optimised := TwoOpt(start, points, 10)
		after := TourLength(start, optimised)
		if after > before+1e-9 {
			return false
		}
		// Same multiset of points.
		if len(optimised) != len(points) {
			return false
		}
		seen := map[geom.Vec3]int{}
		for _, p := range points {
			seen[p]++
		}
		for _, p := range optimised {
			seen[p]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTwoOptFixesObviousCrossing(t *testing.T) {
	// A deliberately bad order: far point first.
	points := []geom.Vec3{
		geom.V(3, 0, 0), geom.V(1, 0, 0), geom.V(2, 0, 0),
	}
	start := geom.V(0, 0, 0)
	got := TwoOpt(start, points, 10)
	want := []geom.Vec3{geom.V(1, 0, 0), geom.V(2, 0, 0), geom.V(3, 0, 0)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("2-opt order = %v, want %v", got, want)
		}
	}
	if TourLength(start, got) != 3 {
		t.Errorf("tour length = %v, want 3", TourLength(start, got))
	}
}

func TestTwoOptDoesNotMutateInput(t *testing.T) {
	points := []geom.Vec3{geom.V(3, 0, 0), geom.V(1, 0, 0), geom.V(2, 0, 0)}
	orig := append([]geom.Vec3(nil), points...)
	_ = TwoOpt(geom.V(0, 0, 0), points, 10)
	for i := range orig {
		if points[i] != orig[i] {
			t.Fatal("TwoOpt mutated its input")
		}
	}
}

func TestTwoOptSmallInputs(t *testing.T) {
	start := geom.V(0, 0, 0)
	if got := TwoOpt(start, nil, 5); len(got) != 0 {
		t.Error("empty tour changed")
	}
	two := []geom.Vec3{geom.V(1, 0, 0), geom.V(2, 0, 0)}
	if got := TwoOpt(start, two, 5); len(got) != 2 {
		t.Error("two-point tour changed size")
	}
}

func TestTourLength(t *testing.T) {
	start := geom.V(0, 0, 0)
	if got := TourLength(start, nil); got != 0 {
		t.Errorf("empty tour length = %v", got)
	}
	pts := []geom.Vec3{geom.V(1, 0, 0), geom.V(1, 1, 0)}
	if got := TourLength(start, pts); got != 2 {
		t.Errorf("tour length = %v, want 2", got)
	}
}

func TestTwoOptImprovesShuffledLattice(t *testing.T) {
	// A shuffled survey lattice must come out substantially shorter.
	vol := geom.PaperScanVolume()
	points, err := vol.Lattice(4, 6, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(9)
	shuffled := append([]geom.Vec3(nil), points...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	start := geom.V(0.6, 0.5, 0)
	before := TourLength(start, shuffled)
	after := TourLength(start, TwoOpt(start, shuffled, 25))
	if after > 0.6*before {
		t.Errorf("2-opt only improved %.1f m → %.1f m on a shuffled lattice", before, after)
	}
}
