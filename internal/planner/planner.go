// Package planner sizes and orders REM survey missions. The paper's fleet
// design is implicit — "the first UAV visits a subset of the provided
// points, with the main limitation stemming from the constrained battery";
// this package makes it explicit: given a waypoint set and a sortie energy
// budget it computes how many UAVs the survey needs (reproducing the
// paper's choice of two UAVs for 72 waypoints), partitions the waypoints,
// and locally optimises each tour with 2-opt.
package planner

import (
	"fmt"
	"time"

	"repro/internal/geom"
)

// SortieBudget captures what one UAV can do on one battery.
type SortieBudget struct {
	// Endurance is the usable flight time per battery (the paper measured
	// 6 min 12 s of scan-hover with full deck load).
	Endurance time.Duration
	// PerWaypoint is the time cost of one waypoint: flight leg + scan
	// stop + result turnaround (the paper plans 4 s + 3 s + transfer).
	PerWaypoint time.Duration
	// Overhead is the fixed take-off + landing cost.
	Overhead time.Duration
	// SafetyMargin is the fraction of endurance held in reserve (0..1).
	SafetyMargin float64
}

// PaperBudget returns the budget of the paper's validation setup.
func PaperBudget() SortieBudget {
	return SortieBudget{
		Endurance:    372 * time.Second, // 6 min 12 s
		PerWaypoint:  8200 * time.Millisecond,
		Overhead:     10 * time.Second,
		SafetyMargin: 0.15,
	}
}

// Validate checks the budget.
func (b SortieBudget) Validate() error {
	if b.Endurance <= 0 || b.PerWaypoint <= 0 {
		return fmt.Errorf("planner: endurance and per-waypoint cost must be positive")
	}
	if b.Overhead < 0 {
		return fmt.Errorf("planner: overhead must be non-negative")
	}
	if b.SafetyMargin < 0 || b.SafetyMargin >= 1 {
		return fmt.Errorf("planner: safety margin %g outside [0, 1)", b.SafetyMargin)
	}
	return nil
}

// MaxWaypoints returns how many waypoints one sortie can visit within the
// budget.
func (b SortieBudget) MaxWaypoints() int {
	usable := time.Duration(float64(b.Endurance)*(1-b.SafetyMargin)) - b.Overhead
	if usable <= 0 {
		return 0
	}
	return int(usable / b.PerWaypoint)
}

// FleetSize returns the number of UAV sorties needed to visit n waypoints.
func FleetSize(n int, b SortieBudget) (int, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("planner: no waypoints to plan")
	}
	per := b.MaxWaypoints()
	if per < 1 {
		return 0, fmt.Errorf("planner: budget cannot cover a single waypoint")
	}
	return (n + per - 1) / per, nil
}

// Partition splits waypoints into the minimum number of budget-feasible
// sorties of near-equal size, preserving the input's spatial order (feed it
// a lawnmower lattice or a 2-opt tour for short legs).
func Partition(points []geom.Vec3, b SortieBudget) ([][]geom.Vec3, error) {
	k, err := FleetSize(len(points), b)
	if err != nil {
		return nil, err
	}
	parts, err := geom.SplitRoundRobin(points, k)
	if err != nil {
		return nil, err
	}
	per := b.MaxWaypoints()
	for i, p := range parts {
		if len(p) > per {
			return nil, fmt.Errorf("planner: sortie %d has %d waypoints, budget allows %d", i, len(p), per)
		}
	}
	return parts, nil
}

// TwoOpt locally optimises the visiting order starting from start: it
// repeatedly reverses tour segments while doing so shortens the path,
// up to maxPasses full sweeps. The input is not modified.
func TwoOpt(start geom.Vec3, points []geom.Vec3, maxPasses int) []geom.Vec3 {
	tour := append([]geom.Vec3(nil), points...)
	if len(tour) < 3 || maxPasses < 1 {
		return tour
	}
	dist := func(a, b geom.Vec3) float64 { return a.Dist(b) }
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < len(tour)-1; i++ {
			prev := start
			if i > 0 {
				prev = tour[i-1]
			}
			for j := i + 1; j < len(tour); j++ {
				// Reversing tour[i..j] replaces edges (prev, tour[i]) and
				// (tour[j], next) with (prev, tour[j]) and (tour[i], next).
				var next *geom.Vec3
				if j+1 < len(tour) {
					next = &tour[j+1]
				}
				before := dist(prev, tour[i])
				after := dist(prev, tour[j])
				if next != nil {
					before += dist(tour[j], *next)
					after += dist(tour[i], *next)
				}
				if after+1e-12 < before {
					reverse(tour[i : j+1])
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return tour
}

func reverse(xs []geom.Vec3) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// TourLength returns the path length of visiting points in order from start.
func TourLength(start geom.Vec3, points []geom.Vec3) float64 {
	if len(points) == 0 {
		return 0
	}
	total := start.Dist(points[0])
	return total + geom.PathLength(points)
}
