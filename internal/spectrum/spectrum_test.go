package spectrum

import (
	"math"
	"testing"
)

func TestWiFiChannelFreqs(t *testing.T) {
	cases := map[int]float64{
		1:  2412,
		6:  2437,
		11: 2462,
		13: 2472,
		14: 2484,
	}
	for ch, want := range cases {
		got, err := WiFiChannelFreqMHz(ch)
		if err != nil {
			t.Fatalf("channel %d: %v", ch, err)
		}
		if got != want {
			t.Errorf("channel %d = %v MHz, want %v", ch, got, want)
		}
	}
	if _, err := WiFiChannelFreqMHz(0); err == nil {
		t.Error("channel 0 accepted")
	}
	if _, err := WiFiChannelFreqMHz(15); err == nil {
		t.Error("channel 15 accepted")
	}
}

func TestCrazyradioChannelFreqs(t *testing.T) {
	got, err := CrazyradioChannelFreqMHz(0)
	if err != nil || got != 2400 {
		t.Errorf("channel 0 = %v, %v", got, err)
	}
	got, err = CrazyradioChannelFreqMHz(125)
	if err != nil || got != 2525 {
		t.Errorf("channel 125 = %v, %v", got, err)
	}
	// The paper's six survey frequencies are all valid nRF24 channels.
	for _, f := range []float64{2400, 2425, 2450, 2475, 2500, 2525} {
		ch := int(f - 2400)
		got, err := CrazyradioChannelFreqMHz(ch)
		if err != nil || got != f {
			t.Errorf("survey frequency %v not reachable: got %v, err %v", f, got, err)
		}
	}
	if _, err := CrazyradioChannelFreqMHz(-1); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := CrazyradioChannelFreqMHz(126); err == nil {
		t.Error("channel 126 accepted")
	}
}

func TestOverlapFactor(t *testing.T) {
	centre, _ := WiFiChannelFreqMHz(6)
	if got := OverlapFactor(centre, 2, 6); math.Abs(got-1) > 1e-12 {
		t.Errorf("on-centre overlap = %v, want 1", got)
	}
	// Far away → zero.
	if got := OverlapFactor(2525, 2, 1); got != 0 {
		t.Errorf("far-off overlap = %v, want 0", got)
	}
	// Halfway to the edge → 0.5.
	halfSpan := (WiFiChannelBandwidthMHz + 2) / 2
	if got := OverlapFactor(centre+halfSpan/2, 2, 6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-separation overlap = %v, want 0.5", got)
	}
	// Symmetry.
	if OverlapFactor(centre+3, 2, 6) != OverlapFactor(centre-3, 2, 6) {
		t.Error("overlap not symmetric")
	}
	// Invalid Wi-Fi channel → 0.
	if got := OverlapFactor(2440, 2, 99); got != 0 {
		t.Errorf("invalid channel overlap = %v", got)
	}
}

func TestOverlapMonotoneInSeparation(t *testing.T) {
	centre, _ := WiFiChannelFreqMHz(6)
	prev := 2.0
	for sep := 0.0; sep <= 15; sep += 0.5 {
		got := OverlapFactor(centre+sep, 2, 6)
		if got > prev {
			t.Fatalf("overlap increased with separation at %v MHz", sep)
		}
		prev = got
	}
}

func TestInterfererValidate(t *testing.T) {
	good := Interferer{FreqMHz: 2440, BandwidthMHz: 2, DutyCycle: 0.5, BroadbandDesenseFactor: 0.3, CoChannelSuppressionFactor: 0.3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid interferer rejected: %v", err)
	}
	bad := good
	bad.DutyCycle = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("duty cycle > 1 accepted")
	}
	bad = good
	bad.FreqMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	bad = good
	bad.BroadbandDesenseFactor = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative desense accepted")
	}
}

func TestDetectionScaleNoInterferers(t *testing.T) {
	if got := DetectionScale(nil, 6); got != 1 {
		t.Errorf("no-interferer scale = %v, want 1", got)
	}
}

func TestDetectionScaleBounds(t *testing.T) {
	itf, err := CrazyradioInterferer(50)
	if err != nil {
		t.Fatal(err)
	}
	for ch := MinWiFiChannel; ch <= MaxWiFiChannel; ch++ {
		s := DetectionScale([]Interferer{itf}, ch)
		if s < 0 || s > 1 {
			t.Errorf("channel %d scale = %v out of [0,1]", ch, s)
		}
		if s >= 1 {
			t.Errorf("channel %d scale = %v; an active Crazyradio must degrade every channel (Fig 5)", ch, s)
		}
	}
}

func TestDetectionScaleCoChannelWorse(t *testing.T) {
	// Crazyradio at 2437 MHz (channel 37) sits exactly on Wi-Fi channel 6.
	itf, err := CrazyradioInterferer(37)
	if err != nil {
		t.Fatal(err)
	}
	co := DetectionScale([]Interferer{itf}, 6)
	far := DetectionScale([]Interferer{itf}, 13)
	if co >= far {
		t.Errorf("co-channel scale %v not below far-channel scale %v", co, far)
	}
}

func TestDetectionScaleMultipleInterferersCompound(t *testing.T) {
	itf, _ := CrazyradioInterferer(37)
	one := DetectionScale([]Interferer{itf}, 6)
	two := DetectionScale([]Interferer{itf, itf}, 6)
	if two >= one {
		t.Errorf("two interferers scale %v not below one %v", two, one)
	}
}

func TestCrazyradioInterfererValid(t *testing.T) {
	itf, err := CrazyradioInterferer(25)
	if err != nil {
		t.Fatal(err)
	}
	if err := itf.Validate(); err != nil {
		t.Errorf("calibrated interferer invalid: %v", err)
	}
	if itf.FreqMHz != 2425 {
		t.Errorf("FreqMHz = %v", itf.FreqMHz)
	}
	if _, err := CrazyradioInterferer(200); err == nil {
		t.Error("invalid radio channel accepted")
	}
}

func TestFigure5ShapeAcrossFrequencies(t *testing.T) {
	// For every paper survey frequency, the radio-on detection scale must be
	// substantially below 1 on every 2.4 GHz Wi-Fi channel — the paper's
	// "interference is significant irrespective of operating frequency".
	for _, f := range []float64{2400, 2425, 2450, 2475, 2500, 2525} {
		itf, err := CrazyradioInterferer(int(f - 2400))
		if err != nil {
			t.Fatal(err)
		}
		for ch := 1; ch <= 13; ch++ {
			s := DetectionScale([]Interferer{itf}, ch)
			if s > 0.75 {
				t.Errorf("radio at %v MHz, channel %d: scale %v too mild for Fig 5 shape", f, ch, s)
			}
		}
	}
}
