// Package spectrum models the 2.4 GHz ISM band shared by the IEEE 802.11
// access points the system maps and the nRF24-based Crazyradio link that
// controls the UAVs. Its job is to quantify self-interference: how much an
// active Crazyradio carrier degrades the ESP8266 scanner's ability to detect
// beacons on each Wi-Fi channel — the effect the paper measures in Figure 5
// and mitigates by shutting the radio down during scans.
package spectrum

import "fmt"

// Wi-Fi channel plan constants (IEEE 802.11b/g/n, 2.4 GHz).
const (
	// MinWiFiChannel and MaxWiFiChannel bound the 2.4 GHz channel numbers.
	MinWiFiChannel = 1
	MaxWiFiChannel = 14
	// WiFiChannelBandwidthMHz is the occupied bandwidth of an 802.11g/n
	// 20 MHz channel.
	WiFiChannelBandwidthMHz = 20.0
)

// Crazyradio channel plan constants (nRF24LU1).
const (
	// MinCrazyradioChannel and MaxCrazyradioChannel bound the nRF24 channel
	// numbers; the 126 channels are uniformly distributed over
	// 2400–2525 MHz (§II-C).
	MinCrazyradioChannel = 0
	MaxCrazyradioChannel = 125
	// CrazyradioBandwidthMHz is the occupied bandwidth of the nRF24 carrier
	// at 2 Mbps.
	CrazyradioBandwidthMHz = 2.0
)

// WiFiChannelFreqMHz returns the centre frequency of a 2.4 GHz Wi-Fi channel.
func WiFiChannelFreqMHz(ch int) (float64, error) {
	if ch < MinWiFiChannel || ch > MaxWiFiChannel {
		return 0, fmt.Errorf("spectrum: Wi-Fi channel %d out of range [%d, %d]", ch, MinWiFiChannel, MaxWiFiChannel)
	}
	if ch == 14 {
		return 2484, nil
	}
	return 2407 + 5*float64(ch), nil
}

// CrazyradioChannelFreqMHz returns the carrier frequency of an nRF24 channel:
// 2400 + n MHz.
func CrazyradioChannelFreqMHz(ch int) (float64, error) {
	if ch < MinCrazyradioChannel || ch > MaxCrazyradioChannel {
		return 0, fmt.Errorf("spectrum: Crazyradio channel %d out of range [%d, %d]", ch, MinCrazyradioChannel, MaxCrazyradioChannel)
	}
	return 2400 + float64(ch), nil
}

// OverlapFactor returns the fraction (0..1) of a narrowband interferer's
// energy that falls inside a Wi-Fi channel, using a triangular spectral-mask
// approximation: full overlap when the carrier sits at the Wi-Fi centre,
// tapering to zero once the separation exceeds half the combined bandwidth.
func OverlapFactor(interfererFreqMHz, interfererBWMHz float64, wifiCh int) float64 {
	centre, err := WiFiChannelFreqMHz(wifiCh)
	if err != nil {
		return 0
	}
	halfSpan := (WiFiChannelBandwidthMHz + interfererBWMHz) / 2
	sep := interfererFreqMHz - centre
	if sep < 0 {
		sep = -sep
	}
	if sep >= halfSpan {
		return 0
	}
	return 1 - sep/halfSpan
}

// Interferer is an active in-band transmitter degrading beacon reception.
type Interferer struct {
	// FreqMHz is the carrier frequency.
	FreqMHz float64
	// BandwidthMHz is the occupied bandwidth.
	BandwidthMHz float64
	// DutyCycle is the fraction of time the interferer transmits (0..1).
	DutyCycle float64
	// BroadbandDesenseFactor is the fraction of detections lost across the
	// whole band while the interferer transmits, modelling front-end
	// blocking/desensitisation of the cheap scanning receiver. The paper's
	// Figure 5 shows the Crazyradio suppresses detections on all channels
	// regardless of its frequency, which is this effect.
	BroadbandDesenseFactor float64
	// CoChannelSuppressionFactor is the additional fraction of detections
	// lost on channels spectrally overlapping the carrier.
	CoChannelSuppressionFactor float64
}

// Validate checks the interferer's parameters.
func (i Interferer) Validate() error {
	if i.FreqMHz <= 0 || i.BandwidthMHz <= 0 {
		return fmt.Errorf("spectrum: interferer needs positive frequency and bandwidth")
	}
	for name, v := range map[string]float64{
		"duty cycle":             i.DutyCycle,
		"broadband desense":      i.BroadbandDesenseFactor,
		"co-channel suppression": i.CoChannelSuppressionFactor,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("spectrum: interferer %s %g outside [0, 1]", name, v)
		}
	}
	return nil
}

// DetectionScale returns the multiplicative factor (0..1) applied to the
// scanner's per-beacon detection probability on the given Wi-Fi channel in
// the presence of the listed interferers. With no interferers it returns 1.
func DetectionScale(interferers []Interferer, wifiCh int) float64 {
	scale := 1.0
	for _, itf := range interferers {
		overlap := OverlapFactor(itf.FreqMHz, itf.BandwidthMHz, wifiCh)
		// Loss while the interferer is on-air, weighted by duty cycle.
		loss := itf.DutyCycle * (itf.BroadbandDesenseFactor + itf.CoChannelSuppressionFactor*overlap)
		if loss > 1 {
			loss = 1
		}
		scale *= 1 - loss
	}
	return scale
}

// CrazyradioInterferer returns the interferer profile of an active Crazyradio
// PA as calibrated against the paper's Figure 5: heavy broadband
// desensitisation of the co-located ESP8266 scanner plus additional
// co-channel suppression.
func CrazyradioInterferer(radioCh int) (Interferer, error) {
	f, err := CrazyradioChannelFreqMHz(radioCh)
	if err != nil {
		return Interferer{}, err
	}
	itf := Interferer{
		FreqMHz:      f,
		BandwidthMHz: CrazyradioBandwidthMHz,
		// The CRTP link polls continuously, so the carrier is on-air most
		// of the time.
		DutyCycle: 0.9,
		// Calibrated so that radio-on scans detect roughly two thirds of
		// the APs a radio-off scan does, irrespective of carrier frequency
		// (Fig 5).
		BroadbandDesenseFactor:     0.55,
		CoChannelSuppressionFactor: 0.35,
	}
	return itf, nil
}
