// Package wifi models the IEEE 802.11b/g/n access points the system maps and
// the beacon-scanning receiver the UAV carries. It covers MAC/SSID identity,
// the AP population of an apartment building (with the density gradient
// toward the building core the paper observes), and a beacon-detection model
// whose output feeds the ESP8266 driver simulation.
package wifi

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/propagation"
	"repro/internal/simrand"
)

// MAC is an IEEE 802 MAC address.
type MAC [6]byte

// String renders the address in canonical colon-separated uppercase hex.
func (m MAC) String() string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	b.Grow(17)
	for i, octet := range m {
		if i > 0 {
			b.WriteByte(':')
		}
		b.WriteByte(hexDigits[octet>>4])
		b.WriteByte(hexDigits[octet&0xF])
	}
	return b.String()
}

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("wifi: malformed MAC %q", s)
	}
	for i, p := range parts {
		if len(p) != 2 {
			return m, fmt.Errorf("wifi: malformed MAC octet %q in %q", p, s)
		}
		hi, ok1 := hexVal(p[0])
		lo, ok2 := hexVal(p[1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("wifi: malformed MAC octet %q in %q", p, s)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// RandomMAC draws a locally administered unicast MAC from the stream.
func RandomMAC(rng *simrand.Source) MAC {
	var m MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	m[0] = (m[0] | 0x02) &^ 0x01 // locally administered, unicast
	return m
}

// DefaultBeaconInterval is the near-universal 802.11 beacon interval of 100
// time units (102.4 ms).
const DefaultBeaconInterval = 102400 * time.Microsecond

// AccessPoint is one Wi-Fi AP in the environment.
type AccessPoint struct {
	// MAC is the BSSID the scanner reports; it is the primary key of the
	// REM (the paper groups samples by MAC, not SSID).
	MAC MAC
	// SSID is the advertised network name; SSIDs may be shared by several
	// MACs (mesh systems, multi-AP households).
	SSID string
	// Channel is the 2.4 GHz channel (1–13 in Europe).
	Channel int
	// EIRPdBm is the effective isotropic radiated power.
	EIRPdBm float64
	// Pos is the AP's location in the room frame.
	Pos geom.Vec3
	// BeaconInterval is the beacon period; zero means DefaultBeaconInterval.
	BeaconInterval time.Duration
}

// beaconInterval returns the effective beacon period.
func (ap AccessPoint) beaconInterval() time.Duration {
	if ap.BeaconInterval <= 0 {
		return DefaultBeaconInterval
	}
	return ap.BeaconInterval
}

// Network couples an AP population to per-AP radio channels. Each AP gets
// its own shadowing field (obstructions differ per transmitter position), so
// RSS varies smoothly but independently per AP across the room — exactly the
// structure the kNN/NN estimators later exploit.
type Network struct {
	aps      []AccessPoint
	channels []*propagation.Channel
}

// ChannelParams configures the per-AP radio channels of a Network.
type ChannelParams struct {
	// Env supplies the multi-wall geometry.
	Env *floorplan.Environment
	// PathLossExponent is the in-room log-distance exponent (≈1.8 LoS).
	PathLossExponent float64
	// ShadowSigmaDB is the log-normal shadowing deviation per AP.
	ShadowSigmaDB float64
	// ShadowDecorrelationM is the shadowing decorrelation distance.
	ShadowDecorrelationM float64
	// RicianKdB is the small-scale fading K-factor.
	RicianKdB float64
	// FadingEnabled toggles per-sample fading.
	FadingEnabled bool
	// Seed derives all per-AP stochastic fields.
	Seed uint64
}

// DefaultChannelParams returns parameters calibrated for the paper's
// residential 2.4 GHz setting.
func DefaultChannelParams(env *floorplan.Environment, seed uint64) ChannelParams {
	return ChannelParams{
		Env:                  env,
		PathLossExponent:     2.4,
		ShadowSigmaDB:        4.2,
		ShadowDecorrelationM: 1.4,
		RicianKdB:            6.5,
		FadingEnabled:        true,
		Seed:                 seed,
	}
}

// NewNetwork builds a Network for the given APs.
func NewNetwork(aps []AccessPoint, p ChannelParams) (*Network, error) {
	if len(aps) == 0 {
		return nil, fmt.Errorf("wifi: network requires at least one AP")
	}
	n := &Network{
		aps:      append([]AccessPoint(nil), aps...),
		channels: make([]*propagation.Channel, len(aps)),
	}
	for i, ap := range n.aps {
		if ap.Channel < 1 || ap.Channel > 14 {
			return nil, fmt.Errorf("wifi: AP %s has invalid channel %d", ap.MAC, ap.Channel)
		}
		freq := 2407 + 5*float64(ap.Channel)
		if ap.Channel == 14 {
			freq = 2484
		}
		ch, err := propagation.NewChannel(propagation.Config{
			PathLoss: propagation.MultiWall{
				Base: propagation.LogDistance{
					PL0:      propagation.ReferenceLossDB(freq),
					D0:       1,
					Exponent: p.PathLossExponent,
				},
				Env: p.Env,
			},
			ShadowSigmaDB:        p.ShadowSigmaDB,
			ShadowDecorrelationM: p.ShadowDecorrelationM,
			RicianKdB:            p.RicianKdB,
			FadingEnabled:        p.FadingEnabled,
			Seed:                 p.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15,
		})
		if err != nil {
			return nil, fmt.Errorf("wifi: AP %s channel: %w", ap.MAC, err)
		}
		n.channels[i] = ch
	}
	return n, nil
}

// APs returns the network's access points (shared slice; do not mutate).
func (n *Network) APs() []AccessPoint { return n.aps }

// MeanRSS returns the local-mean RSS in dBm of AP i at the receiver position.
func (n *Network) MeanRSS(i int, rx geom.Vec3) float64 {
	ap := n.aps[i]
	return n.channels[i].MeanRSS(ap.EIRPdBm, ap.Pos, rx)
}

// SampleRSS draws a measured RSS in dBm of AP i at the receiver position,
// including small-scale fading.
func (n *Network) SampleRSS(i int, rx geom.Vec3, rng *simrand.Source) float64 {
	ap := n.aps[i]
	return n.channels[i].SampleRSS(ap.EIRPdBm, ap.Pos, rx, rng)
}
