package wifi

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/spectrum"
)

// Observation is one detected beacon, the ⟨ssid, rssi, mac, channel⟩ tuple
// the ESP8266's AT+CWLAP instruction reports (§III-A).
type Observation struct {
	SSID    string
	RSSI    int // dBm, integer as reported by the hardware
	MAC     MAC
	Channel int
}

// ScannerConfig describes the scanning receiver carried by the UAV.
type ScannerConfig struct {
	// SensitivityDBm is the RSS at which per-beacon detection probability
	// is 50%.
	SensitivityDBm float64
	// DetectionSlopeDB is the softness of the detection threshold; small
	// values approximate a hard cliff.
	DetectionSlopeDB float64
	// NoiseSigmaDB is the RSSI measurement noise of the receiver.
	NoiseSigmaDB float64
	// DwellPerChannel is how long the scanner listens on each channel.
	DwellPerChannel time.Duration
	// Channels lists the channels scanned, in order.
	Channels []int
}

// DefaultScanner returns an ESP-01-like configuration: a cheap 2.4 GHz
// receiver sweeping the 13 EU channels with a ~2 s total scan, matching the
// paper's "beacon scan duration of around 2 sec".
func DefaultScanner() ScannerConfig {
	chs := make([]int, 13)
	for i := range chs {
		chs[i] = i + 1
	}
	return ScannerConfig{
		SensitivityDBm:   -88.5,
		DetectionSlopeDB: 2.5,
		NoiseSigmaDB:     1.2,
		DwellPerChannel:  160 * time.Millisecond,
		Channels:         chs,
	}
}

// Validate checks the configuration.
func (c ScannerConfig) Validate() error {
	if c.DetectionSlopeDB <= 0 {
		return fmt.Errorf("wifi: detection slope must be positive")
	}
	if c.NoiseSigmaDB < 0 {
		return fmt.Errorf("wifi: noise sigma must be non-negative")
	}
	if c.DwellPerChannel <= 0 {
		return fmt.Errorf("wifi: dwell must be positive")
	}
	if len(c.Channels) == 0 {
		return fmt.Errorf("wifi: scanner needs at least one channel")
	}
	for _, ch := range c.Channels {
		if ch < 1 || ch > 14 {
			return fmt.Errorf("wifi: scan channel %d out of range", ch)
		}
	}
	return nil
}

// ScanDuration returns the total air time of one scan sweep.
func (c ScannerConfig) ScanDuration() time.Duration {
	return time.Duration(len(c.Channels)) * c.DwellPerChannel
}

// Scanner performs beacon scans against a Network.
type Scanner struct {
	cfg ScannerConfig
	net *Network
}

// NewScanner builds a scanner. It returns an error on invalid configuration.
func NewScanner(net *Network, cfg ScannerConfig) (*Scanner, error) {
	if net == nil {
		return nil, fmt.Errorf("wifi: scanner requires a network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scanner{cfg: cfg, net: net}, nil
}

// Config returns the scanner's configuration.
func (s *Scanner) Config() ScannerConfig { return s.cfg }

// Scan performs one full sweep from the given receiver position under the
// given interference conditions and returns the detected beacons, strongest
// first (the ESP8266 output ordering). The rng must be the scan's noise
// stream; each call consumes randomness, so repeated scans at the same
// position differ, exactly like the thousands of samples the paper's UAVs
// collect over repeated visits.
func (s *Scanner) Scan(pos geom.Vec3, interferers []spectrum.Interferer, rng *simrand.Source) []Observation {
	var out []Observation
	for _, ch := range s.cfg.Channels {
		scale := spectrum.DetectionScale(interferers, ch)
		beacons := float64(s.cfg.DwellPerChannel) / float64(DefaultBeaconInterval)
		for i, ap := range s.net.aps {
			if ap.Channel != ch {
				continue
			}
			rss := s.net.SampleRSS(i, pos, rng)
			// Logistic detection around the sensitivity threshold.
			p1 := 1 / (1 + math.Exp(-(rss-s.cfg.SensitivityDBm)/s.cfg.DetectionSlopeDB))
			p1 *= scale
			// Beacon opportunities within the dwell window.
			n := float64(s.cfg.DwellPerChannel) / float64(ap.beaconInterval())
			if n <= 0 {
				n = beacons
			}
			pDetect := 1 - math.Pow(1-p1, n)
			if !rng.Bool(pDetect) {
				continue
			}
			// The ESP8266 reports integer dBm clamped to its ADC range.
			measured := int(math.Round(rng.Gauss(rss, s.cfg.NoiseSigmaDB)))
			if measured < -100 {
				measured = -100
			}
			if measured > -10 {
				measured = -10
			}
			out = append(out, Observation{
				SSID:    ap.SSID,
				RSSI:    measured,
				MAC:     ap.MAC,
				Channel: ap.Channel,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RSSI != out[j].RSSI {
			return out[i].RSSI > out[j].RSSI
		}
		return out[i].MAC.String() < out[j].MAC.String()
	})
	return out
}
