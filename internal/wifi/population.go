package wifi

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/simrand"
)

// PopulationConfig controls the synthetic AP population of the apartment
// building. The defaults are calibrated so that a two-UAV 72-waypoint
// mission reproduces the paper's dataset statistics: ≈73 distinct MACs, ≈49
// SSIDs, mean RSS ≈ −73 dBm, and sample counts growing toward the building
// core (+x/−y).
type PopulationConfig struct {
	// NumAPs is the number of AP radios placed in the building.
	NumAPs int
	// NearAPs of the NumAPs are placed in the near tier — the scanned
	// apartment and its direct neighbours — producing the strong-signal
	// mode of the RSS distribution (the paper's mean RSS of ≈ −73 dBm
	// needs both a strong near tier and a weak far tier).
	NearAPs int
	// NearSpread is the half-extent in metres of the near tier's
	// placement box.
	NearSpread float64
	// NumSSIDs is the size of the SSID pool; several MACs share an SSID
	// (multi-AP households, mesh nodes), as in the paper's data where 73
	// MACs advertised only 49 SSIDs.
	NumSSIDs int
	// Spread is the half-extent in metres of the AP placement box around
	// the room centre in x and y.
	Spread float64
	// Floors is the number of storeys above and below to populate.
	Floors int
	// FloorHeight is the storey height used for z placement.
	FloorHeight float64
	// CoreBias is the exponential tilt strength toward the building core;
	// 0 places APs uniformly.
	CoreBias float64
	// EIRPMeanDBm and EIRPSigmaDB describe the AP transmit-power spread.
	EIRPMeanDBm, EIRPSigmaDB float64
}

// DefaultPopulation returns the calibrated configuration used for paper
// reproduction.
func DefaultPopulation() PopulationConfig {
	return PopulationConfig{
		NumAPs:      76,
		NearAPs:     10,
		NearSpread:  5,
		NumSSIDs:    58,
		Spread:      10,
		Floors:      1,
		FloorHeight: 2.8,
		CoreBias:    0.45,
		EIRPMeanDBm: 14,
		EIRPSigmaDB: 3.0,
	}
}

// Validate checks the configuration.
func (c PopulationConfig) Validate() error {
	if c.NumAPs < 1 {
		return fmt.Errorf("wifi: population needs at least one AP, got %d", c.NumAPs)
	}
	if c.NumSSIDs < 1 || c.NumSSIDs > c.NumAPs {
		return fmt.Errorf("wifi: NumSSIDs %d must be in [1, NumAPs=%d]", c.NumSSIDs, c.NumAPs)
	}
	if c.Spread <= 0 || c.FloorHeight <= 0 {
		return fmt.Errorf("wifi: Spread and FloorHeight must be positive")
	}
	if c.NearAPs < 0 || c.NearAPs > c.NumAPs {
		return fmt.Errorf("wifi: NearAPs %d must be in [0, NumAPs=%d]", c.NearAPs, c.NumAPs)
	}
	if c.NearAPs > 0 && c.NearSpread <= 0 {
		return fmt.Errorf("wifi: NearSpread must be positive when NearAPs > 0")
	}
	if c.Floors < 0 || c.CoreBias < 0 {
		return fmt.Errorf("wifi: Floors and CoreBias must be non-negative")
	}
	return nil
}

// euChannelWeights reflects the real-world 2.4 GHz occupancy skew toward the
// non-overlapping channels 1/6/11, with channel 13 present in Europe.
var euChannelWeights = map[int]float64{
	1: 0.22, 2: 0.02, 3: 0.03, 4: 0.02, 5: 0.03,
	6: 0.22, 7: 0.03, 8: 0.02, 9: 0.03, 10: 0.03,
	11: 0.22, 12: 0.03, 13: 0.10,
}

func drawChannel(rng *simrand.Source) int {
	u := rng.Float64()
	acc := 0.0
	for ch := 1; ch <= 13; ch++ {
		acc += euChannelWeights[ch]
		if u < acc {
			return ch
		}
	}
	return 13
}

// ssidPool generates plausible residential network names.
func ssidPool(n int, rng *simrand.Source) []string {
	prefixes := []string{"telenet", "Proximus", "WiFi", "Orange", "home", "linksys", "TP-Link", "DIRECT", "Apartment", "VOO"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%04X", prefixes[rng.Intn(len(prefixes))], rng.Intn(0x10000))
	}
	return out
}

// GeneratePopulation places NumAPs access points around the environment's
// room with placement probability exponentially tilted toward the building
// core, matching the paper's observation that AP detections increase with +x
// and −y. The draw is deterministic for a given rng stream.
func GeneratePopulation(env *floorplan.Environment, cfg PopulationConfig, rng *simrand.Source) ([]AccessPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	centre := env.Room.Center()
	core := env.CoreDirection
	ssids := ssidPool(cfg.NumSSIDs, rng.Derive("ssid"))
	place := rng.Derive("placement")
	ident := rng.Derive("identity")

	aps := make([]AccessPoint, 0, cfg.NumAPs)
	for len(aps) < cfg.NumAPs {
		// Near-tier APs live in the scanned apartment and its direct
		// neighbours; the remainder spread over the wider building box.
		spread := cfg.Spread
		floors := cfg.Floors
		if len(aps) < cfg.NearAPs {
			spread = cfg.NearSpread
			floors = 0
		}
		p := geom.V(
			centre.X+place.Range(-spread, spread),
			centre.Y+place.Range(-spread, spread),
			centre.Z+float64(place.Intn(2*floors+1)-floors)*cfg.FloorHeight+place.Range(-0.8, 0.8),
		)
		// Exponential tilt toward the core: accept with probability
		// proportional to exp(bias · projection). Rejection sampling keeps
		// the spatial distribution explicit and easy to test.
		proj := p.Sub(centre).Dot(core)
		accept := math.Exp(cfg.CoreBias*proj) / math.Exp(cfg.CoreBias*spread*math.Sqrt2)
		if !place.Bool(accept) {
			continue
		}
		// SSIDs are assigned round-robin: most APs get a unique SSID and
		// the overflow shares, reproducing the paper's multi-AP-household
		// pattern (73 MACs advertising 49 SSIDs).
		aps = append(aps, AccessPoint{
			MAC:     RandomMAC(ident),
			SSID:    ssids[len(aps)%len(ssids)],
			Channel: drawChannel(ident),
			EIRPdBm: ident.Gauss(cfg.EIRPMeanDBm, cfg.EIRPSigmaDB),
			Pos:     p,
		})
	}
	return aps, nil
}
