package wifi

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/spectrum"
)

func TestMACStringAndParseRoundTrip(t *testing.T) {
	m := MAC{0xAA, 0x0B, 0xC0, 0x01, 0x02, 0xFF}
	s := m.String()
	if s != "AA:0B:C0:01:02:FF" {
		t.Errorf("String = %q", s)
	}
	back, err := ParseMAC(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip = %v", back)
	}
}

func TestParseMACLowercase(t *testing.T) {
	m, err := ParseMAC("aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}) {
		t.Errorf("parsed = %v", m)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, bad := range []string{"", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "gg:bb:cc:dd:ee:ff", "aaa:bb:cc:dd:ee:f"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) accepted", bad)
		}
	}
}

func TestParseMACQuick(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		back, err := ParseMAC(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomMACIsLocalUnicast(t *testing.T) {
	rng := simrand.New(1)
	for i := 0; i < 100; i++ {
		m := RandomMAC(rng)
		if m[0]&0x01 != 0 {
			t.Fatalf("multicast MAC generated: %v", m)
		}
		if m[0]&0x02 == 0 {
			t.Fatalf("universally administered MAC generated: %v", m)
		}
	}
}

func TestRandomMACsDistinct(t *testing.T) {
	rng := simrand.New(2)
	seen := map[MAC]bool{}
	for i := 0; i < 200; i++ {
		m := RandomMAC(rng)
		if seen[m] {
			t.Fatalf("duplicate MAC after %d draws", i)
		}
		seen[m] = true
	}
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	env := floorplan.PaperApartment()
	aps := []AccessPoint{
		{MAC: MAC{2, 0, 0, 0, 0, 1}, SSID: "own", Channel: 6, EIRPdBm: 17, Pos: geom.V(1.8, 1.6, 1.9)},
		{MAC: MAC{2, 0, 0, 0, 0, 2}, SSID: "neighbour", Channel: 1, EIRPdBm: 17, Pos: geom.V(8, -3, 1)},
		{MAC: MAC{2, 0, 0, 0, 0, 3}, SSID: "below", Channel: 11, EIRPdBm: 17, Pos: geom.V(1, 1, -2.5)},
	}
	net, err := NewNetwork(aps, DefaultChannelParams(env, 7))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, ChannelParams{}); err == nil {
		t.Error("empty AP list accepted")
	}
	bad := []AccessPoint{{MAC: MAC{1}, Channel: 0, Pos: geom.V(0, 0, 0)}}
	if _, err := NewNetwork(bad, DefaultChannelParams(floorplan.PaperApartment(), 1)); err == nil {
		t.Error("invalid channel accepted")
	}
}

func TestNetworkNearAPStrongerThanFar(t *testing.T) {
	net := testNetwork(t)
	rx := geom.V(1.8, 1.6, 1.0) // directly under the in-room AP
	own := net.MeanRSS(0, rx)
	neighbour := net.MeanRSS(1, rx)
	if own <= neighbour {
		t.Errorf("in-room AP %v dBm not stronger than neighbour %v dBm", own, neighbour)
	}
}

func TestNetworkMeanRSSDeterministic(t *testing.T) {
	net := testNetwork(t)
	rx := geom.V(2, 2, 1)
	if net.MeanRSS(0, rx) != net.MeanRSS(0, rx) {
		t.Error("MeanRSS not deterministic")
	}
}

func TestDefaultScannerValid(t *testing.T) {
	cfg := DefaultScanner()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default scanner invalid: %v", err)
	}
	// Paper: "beacon scan duration of around 2 sec".
	if d := cfg.ScanDuration(); d < 1500*time.Millisecond || d > 2500*time.Millisecond {
		t.Errorf("scan duration = %v, want ≈2 s", d)
	}
}

func TestScannerConfigValidation(t *testing.T) {
	base := DefaultScanner()

	c := base
	c.DetectionSlopeDB = 0
	if err := c.Validate(); err == nil {
		t.Error("zero slope accepted")
	}
	c = base
	c.Channels = nil
	if err := c.Validate(); err == nil {
		t.Error("no channels accepted")
	}
	c = base
	c.Channels = []int{99}
	if err := c.Validate(); err == nil {
		t.Error("bad channel accepted")
	}
	c = base
	c.DwellPerChannel = 0
	if err := c.Validate(); err == nil {
		t.Error("zero dwell accepted")
	}
	c = base
	c.NoiseSigmaDB = -1
	if err := c.Validate(); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestNewScannerRequiresNetwork(t *testing.T) {
	if _, err := NewScanner(nil, DefaultScanner()); err == nil {
		t.Error("nil network accepted")
	}
}

func TestScanDetectsStrongAP(t *testing.T) {
	net := testNetwork(t)
	sc, err := NewScanner(net, DefaultScanner())
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(3)
	detected := 0
	for i := 0; i < 20; i++ {
		obs := sc.Scan(geom.V(1.8, 1.6, 1.0), nil, rng)
		for _, o := range obs {
			if o.MAC == (MAC{2, 0, 0, 0, 0, 1}) {
				detected++
				break
			}
		}
	}
	if detected < 18 {
		t.Errorf("strong in-room AP detected in %d/20 scans", detected)
	}
}

func TestScanMissesOutOfRangeAP(t *testing.T) {
	env := floorplan.PaperApartment()
	aps := []AccessPoint{
		{MAC: MAC{2, 0, 0, 0, 0, 9}, SSID: "far", Channel: 6, EIRPdBm: 10, Pos: geom.V(500, 500, 0)},
	}
	net, err := NewNetwork(aps, DefaultChannelParams(env, 9))
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := NewScanner(net, DefaultScanner())
	rng := simrand.New(4)
	for i := 0; i < 10; i++ {
		if obs := sc.Scan(geom.V(1, 1, 1), nil, rng); len(obs) != 0 {
			t.Fatalf("AP 700 m away detected: %+v", obs)
		}
	}
}

func TestScanInterferenceReducesDetections(t *testing.T) {
	env := floorplan.PaperApartment()
	rng := simrand.New(5)
	aps, err := GeneratePopulation(env, DefaultPopulation(), rng.Derive("pop"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(aps, DefaultChannelParams(env, 11))
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := NewScanner(net, DefaultScanner())
	itf, _ := spectrum.CrazyradioInterferer(50)

	pos := env.Room.Center()
	scanRng := rng.Derive("scan")
	var offCount, onCount int
	const trials = 12
	for i := 0; i < trials; i++ {
		offCount += len(sc.Scan(pos, nil, scanRng))
		onCount += len(sc.Scan(pos, []spectrum.Interferer{itf}, scanRng))
	}
	if onCount >= offCount {
		t.Errorf("radio-on detections %d not below radio-off %d (Fig 5 shape)", onCount, offCount)
	}
	if float64(onCount) > 0.8*float64(offCount) {
		t.Errorf("interference too mild: on=%d off=%d", onCount, offCount)
	}
}

func TestScanOutputSortedByRSSI(t *testing.T) {
	env := floorplan.PaperApartment()
	rng := simrand.New(6)
	aps, _ := GeneratePopulation(env, DefaultPopulation(), rng.Derive("pop"))
	net, _ := NewNetwork(aps, DefaultChannelParams(env, 13))
	sc, _ := NewScanner(net, DefaultScanner())
	obs := sc.Scan(env.Room.Center(), nil, rng.Derive("scan"))
	if len(obs) < 5 {
		t.Fatalf("too few detections to test ordering: %d", len(obs))
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].RSSI > obs[i-1].RSSI {
			t.Fatalf("output not sorted by RSSI at %d", i)
		}
	}
}

func TestPopulationValidation(t *testing.T) {
	env := floorplan.PaperApartment()
	rng := simrand.New(7)
	bad := DefaultPopulation()
	bad.NumAPs = 0
	if _, err := GeneratePopulation(env, bad, rng); err == nil {
		t.Error("zero APs accepted")
	}
	bad = DefaultPopulation()
	bad.NumSSIDs = bad.NumAPs + 1
	if _, err := GeneratePopulation(env, bad, rng); err == nil {
		t.Error("more SSIDs than APs accepted")
	}
	bad = DefaultPopulation()
	bad.Spread = 0
	if _, err := GeneratePopulation(env, bad, rng); err == nil {
		t.Error("zero spread accepted")
	}
}

func TestPopulationDeterministic(t *testing.T) {
	env := floorplan.PaperApartment()
	a, err := GeneratePopulation(env, DefaultPopulation(), simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GeneratePopulation(env, DefaultPopulation(), simrand.New(42))
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].MAC != b[i].MAC || a[i].Pos != b[i].Pos {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
}

func TestPopulationCoreGradient(t *testing.T) {
	env := floorplan.PaperApartment()
	cfg := DefaultPopulation()
	cfg.NumAPs = 600 // more statistics for the spatial test
	aps, err := GeneratePopulation(env, cfg, simrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	centre := env.Room.Center()
	coreSide, farSide := 0, 0
	for _, ap := range aps {
		if ap.Pos.Sub(centre).Dot(env.CoreDirection) > 0 {
			coreSide++
		} else {
			farSide++
		}
	}
	if coreSide <= farSide {
		t.Errorf("AP density not tilted toward core: core=%d far=%d", coreSide, farSide)
	}
}

func TestPopulationChannelsValid(t *testing.T) {
	env := floorplan.PaperApartment()
	aps, err := GeneratePopulation(env, DefaultPopulation(), simrand.New(44))
	if err != nil {
		t.Fatal(err)
	}
	ssids := map[string]bool{}
	for _, ap := range aps {
		if ap.Channel < 1 || ap.Channel > 13 {
			t.Errorf("AP %s channel %d out of EU range", ap.MAC, ap.Channel)
		}
		ssids[ap.SSID] = true
	}
	// SSID sharing: strictly fewer SSIDs than APs, as in the paper (49 vs 73).
	if len(ssids) >= len(aps) {
		t.Errorf("no SSID sharing: %d SSIDs for %d APs", len(ssids), len(aps))
	}
}

func TestPopulationMACsUnique(t *testing.T) {
	env := floorplan.PaperApartment()
	aps, err := GeneratePopulation(env, DefaultPopulation(), simrand.New(45))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[MAC]bool{}
	for _, ap := range aps {
		if seen[ap.MAC] {
			t.Fatalf("duplicate MAC %s", ap.MAC)
		}
		seen[ap.MAC] = true
	}
}

func TestScanRSSIPlausible(t *testing.T) {
	env := floorplan.PaperApartment()
	rng := simrand.New(46)
	aps, _ := GeneratePopulation(env, DefaultPopulation(), rng.Derive("pop"))
	net, _ := NewNetwork(aps, DefaultChannelParams(env, 47))
	sc, _ := NewScanner(net, DefaultScanner())
	scanRng := rng.Derive("scan")
	var sum float64
	var n int
	for i := 0; i < 10; i++ {
		for _, o := range sc.Scan(env.Room.Center(), nil, scanRng) {
			if o.RSSI > -20 || o.RSSI < -100 {
				t.Fatalf("implausible RSSI %d", o.RSSI)
			}
			sum += float64(o.RSSI)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no detections at room centre")
	}
	mean := sum / float64(n)
	// Paper: mean RSS ≈ −73 dBm. Allow a generous band here; the tight
	// check lives in the mission-level statistics test.
	if mean < -83 || mean > -60 {
		t.Errorf("mean RSSI = %.1f dBm, want ≈ −73", mean)
	}
}
