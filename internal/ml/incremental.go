package ml

import "fmt"

// DirtyAll is the sentinel key index an IncrementalEstimator returns from
// Observe when a new batch can change predictions for every key — global
// models (the NN) and shared-feature-space models with cross-key reach
// (the one-hot kNN) report it instead of enumerating the vocabulary.
const DirtyAll = -1

// IncrementalEstimator is an estimator that can absorb new observations
// after an initial Fit without a from-scratch retrain, reporting which
// one-hot keys (MAC indices) the delta can affect — the "mend a partial
// solution with few changes" contract the incremental REM pipeline is
// built on.
//
// Observe ingests a batch of new rows (same feature layout as Fit) and
// returns the dirty key set: every key whose predictions may differ once
// the batch is folded in. A result containing DirtyAll means every key.
// Observe requires a prior successful Fit and must be conservative —
// over-reporting dirty keys costs rebuild time, under-reporting breaks
// the snapshot identity.
//
// Refit guarantees the model fully reflects every observed batch.
// Implementations may surface observations earlier (the kNN's insert log
// answers queries immediately), but only after Refit does the contract
// hold: **the refitted estimator predicts byte-identically to a fresh
// estimator of the same configuration fitted on the cumulative dataset in
// arrival order** (determinism contract rule 7). The NN's warm-start
// fine-tune mode (Config.FineTuneEpochs > 0) is the one documented
// exception: it trades that identity for bounded refit cost and promises
// determinism of the incremental sequence instead.
type IncrementalEstimator interface {
	Estimator
	// Observe buffers a batch of new training rows and returns the keys
	// whose predictions may change once the batch is folded in.
	Observe(x [][]float64, y []float64) ([]int, error)
	// Refit folds every observed batch into the fitted model.
	Refit() error
}

// ValidateObserved performs the shape checks every Observe needs: rows
// consistent with each other and with the fitted feature dimension.
// Empty batches are allowed (and dirty nothing).
func ValidateObserved(x [][]float64, y []float64, dim int) error {
	if len(x) != len(y) {
		return fmt.Errorf("ml: %d feature rows but %d targets", len(x), len(y))
	}
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("ml: observed row %d has %d features, want %d", i, len(row), dim)
		}
	}
	return nil
}

// RefitAdapter lifts any Estimator into the IncrementalEstimator contract
// by retaining the cumulative training set and refitting from scratch on
// every Refit. Observe always dirties every key. It is the fallback the
// streaming pipeline uses for estimators without a native incremental
// path (kriging, IDW, ensembles): correctness is identical, only the
// refit cost is not proportional to the delta.
type RefitAdapter struct {
	// Est is the wrapped estimator.
	Est Estimator

	x       [][]float64
	y       []float64
	pending bool
	fitted  bool
}

var _ IncrementalEstimator = (*RefitAdapter)(nil)

// NewRefitAdapter wraps est; if est is already incremental it is returned
// unchanged.
func NewRefitAdapter(est Estimator) IncrementalEstimator {
	if inc, ok := est.(IncrementalEstimator); ok {
		return inc
	}
	return &RefitAdapter{Est: est}
}

// Name implements Named, delegating when the wrapped estimator labels
// itself.
func (a *RefitAdapter) Name() string {
	if n, ok := a.Est.(Named); ok {
		return n.Name()
	}
	return fmt.Sprintf("refit adapter (%T)", a.Est)
}

// Fit implements Estimator: it records the training set as the cumulative
// baseline and fits the wrapped estimator.
func (a *RefitAdapter) Fit(x [][]float64, y []float64) error {
	if err := ValidateTrainingData(x, y); err != nil {
		return err
	}
	a.x = make([][]float64, 0, len(x))
	a.y = make([]float64, 0, len(y))
	a.append(x, y)
	a.pending = false
	if err := a.Est.Fit(a.x, a.y); err != nil {
		return err
	}
	a.fitted = true
	return nil
}

// Predict implements Estimator.
func (a *RefitAdapter) Predict(q []float64) (float64, error) { return a.Est.Predict(q) }

// PredictBatch implements BatchPredictor via the wrapped estimator's batch
// path when it has one.
func (a *RefitAdapter) PredictBatch(x [][]float64) ([]float64, error) {
	return PredictAll(a.Est, x)
}

// Observe implements IncrementalEstimator: the batch is appended to the
// cumulative set and every key is reported dirty (the adapter knows
// nothing about the wrapped model's locality).
func (a *RefitAdapter) Observe(x [][]float64, y []float64) ([]int, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if err := ValidateObserved(x, y, len(a.x[0])); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	a.append(x, y)
	a.pending = true
	return []int{DirtyAll}, nil
}

// Refit implements IncrementalEstimator: a from-scratch fit on the
// cumulative rows in arrival order, so the result is exactly what a fresh
// estimator would learn.
func (a *RefitAdapter) Refit() error {
	if !a.fitted {
		return ErrNotFitted
	}
	if !a.pending {
		return nil
	}
	if err := a.Est.Fit(a.x, a.y); err != nil {
		return err
	}
	a.pending = false
	return nil
}

func (a *RefitAdapter) append(x [][]float64, y []float64) {
	for _, row := range x {
		a.x = append(a.x, append([]float64(nil), row...))
	}
	a.y = append(a.y, y...)
}
