package ml

import "fmt"

// PerKeyEnsemble routes samples to one sub-estimator per one-hot key: the
// generalisation of the paper's "kNN estimator per MAC address" to any base
// estimator (IDW, kriging, NN, ...). Features are x, y, z followed by a
// one-hot block at KeyOffset; sub-estimators see only the coordinates.
type PerKeyEnsemble struct {
	// Factory builds a fresh sub-estimator per key.
	Factory func() Estimator
	// KeyOffset is where the one-hot block starts (3 for xyz + key).
	KeyOffset int

	fitted bool
	subs   map[int]Estimator
	global Estimator
}

var _ Estimator = (*PerKeyEnsemble)(nil)

// Fit implements Estimator.
func (p *PerKeyEnsemble) Fit(x [][]float64, y []float64) error {
	if p.Factory == nil {
		return fmt.Errorf("ml: ensemble requires a factory")
	}
	if err := ValidateTrainingData(x, y); err != nil {
		return err
	}
	if p.KeyOffset < 3 || p.KeyOffset > len(x[0]) {
		return fmt.Errorf("ml: ensemble key offset %d invalid for dim %d", p.KeyOffset, len(x[0]))
	}
	groupsX := map[int][][]float64{}
	groupsY := map[int][]float64{}
	var allXYZ [][]float64
	for i, row := range x {
		key := oneHotIndex(row, p.KeyOffset)
		if key < 0 {
			return fmt.Errorf("ml: ensemble row %d has no unique hot key", i)
		}
		xyz := append([]float64(nil), row[:3]...)
		groupsX[key] = append(groupsX[key], xyz)
		groupsY[key] = append(groupsY[key], y[i])
		allXYZ = append(allXYZ, xyz)
	}
	p.subs = make(map[int]Estimator, len(groupsX))
	for key, gx := range groupsX {
		sub := p.Factory()
		if err := sub.Fit(gx, groupsY[key]); err != nil {
			return fmt.Errorf("ml: ensemble key %d: %w", key, err)
		}
		p.subs[key] = sub
	}
	p.global = p.Factory()
	if err := p.global.Fit(allXYZ, y); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// Predict implements Estimator.
func (p *PerKeyEnsemble) Predict(q []float64) (float64, error) {
	if !p.fitted {
		return 0, ErrNotFitted
	}
	if len(q) < p.KeyOffset {
		return 0, fmt.Errorf("ml: ensemble query dim %d below offset %d", len(q), p.KeyOffset)
	}
	key := oneHotIndex(q, p.KeyOffset)
	if sub, ok := p.subs[key]; key >= 0 && ok {
		return sub.Predict(q[:3])
	}
	return p.global.Predict(q[:3])
}

// oneHotIndex returns the index of the single non-zero entry at or after
// offset, or -1 if absent or ambiguous.
func oneHotIndex(row []float64, offset int) int {
	hot := -1
	for i := offset; i < len(row); i++ {
		if row[i] != 0 {
			if hot >= 0 {
				return -1
			}
			hot = i - offset
		}
	}
	return hot
}
