package ml

import (
	"math"
	"testing"
)

// sumEstimator is a trivial estimator for adapter tests: it predicts the
// mean of its training targets and counts fits.
type sumEstimator struct {
	fits int
	mean float64
	rows int
}

func (s *sumEstimator) Fit(x [][]float64, y []float64) error {
	if err := ValidateTrainingData(x, y); err != nil {
		return err
	}
	s.fits++
	s.rows = len(y)
	var sum float64
	for _, v := range y {
		sum += v
	}
	s.mean = sum / float64(len(y))
	return nil
}

func (s *sumEstimator) Predict(_ []float64) (float64, error) {
	if s.fits == 0 {
		return 0, ErrNotFitted
	}
	return s.mean, nil
}

// TestRefitAdapterLifecycle: the adapter accumulates rows, dirties
// everything, refits from scratch on the cumulative set, and skips refits
// with nothing pending.
func TestRefitAdapterLifecycle(t *testing.T) {
	base := &sumEstimator{}
	a := NewRefitAdapter(base)
	if _, err := a.Observe([][]float64{{1}}, []float64{2}); err == nil {
		t.Error("Observe before Fit accepted")
	}
	if err := a.Fit([][]float64{{1}, {2}}, []float64{-10, -20}); err != nil {
		t.Fatal(err)
	}
	dirty, err := a.Observe([][]float64{{3}}, []float64{-60})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0] != DirtyAll {
		t.Fatalf("dirty = %v, want [DirtyAll]", dirty)
	}
	if _, err := a.Observe([][]float64{{1, 2}}, []float64{0}); err == nil {
		t.Error("dim-mismatched observe accepted")
	}
	if err := a.Refit(); err != nil {
		t.Fatal(err)
	}
	if base.fits != 2 || base.rows != 3 {
		t.Fatalf("after refit: fits = %d rows = %d, want 2 and 3", base.fits, base.rows)
	}
	got, err := a.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if want := (-10.0 + -20.0 + -60.0) / 3; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("prediction = %v, want %v", got, want)
	}
	if err := a.Refit(); err != nil { // nothing pending
		t.Fatal(err)
	}
	if base.fits != 2 {
		t.Fatalf("no-op refit retrained: fits = %d", base.fits)
	}
}

// TestNewRefitAdapterPassThrough: an estimator that is already incremental
// is returned unchanged.
func TestNewRefitAdapterPassThrough(t *testing.T) {
	a := NewRefitAdapter(&sumEstimator{})
	if NewRefitAdapter(a) != a {
		t.Fatal("incremental estimator re-wrapped")
	}
}

// TestRefitAdapterCopiesRows: mutating the caller's slices after
// Fit/Observe must not change the adapter's cumulative set.
func TestRefitAdapterCopiesRows(t *testing.T) {
	base := &sumEstimator{}
	a := NewRefitAdapter(base).(*RefitAdapter)
	x := [][]float64{{1}, {2}}
	y := []float64{-10, -20}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	x[0][0] = 99
	ox := [][]float64{{3}}
	if _, err := a.Observe(ox, []float64{-30}); err != nil {
		t.Fatal(err)
	}
	ox[0][0] = 99
	if a.x[0][0] != 1 || a.x[2][0] != 3 {
		t.Fatalf("adapter rows aliased caller slices: %v", a.x)
	}
}
