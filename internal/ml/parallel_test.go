package ml

import (
	"errors"
	"math"
	"testing"

	"repro/internal/simrand"
)

// noisyEstimator memorises the training targets' mean plus a
// parameter-dependent bias, making grid-search scores parameter-sensitive.
type noisyEstimator struct {
	bias   float64
	mean   float64
	fitted bool
}

func (e *noisyEstimator) Fit(x [][]float64, y []float64) error {
	if err := ValidateTrainingData(x, y); err != nil {
		return err
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	e.mean = sum / float64(len(y))
	e.fitted = true
	return nil
}

func (e *noisyEstimator) Predict(q []float64) (float64, error) {
	if !e.fitted {
		return 0, ErrNotFitted
	}
	return e.mean + e.bias*math.Sin(q[0]), nil
}

func searchFixture(rng *simrand.Source) ([][]float64, []float64, []Params) {
	x := make([][]float64, 120)
	y := make([]float64, 120)
	for i := range x {
		x[i] = []float64{rng.Range(0, 4), rng.Range(0, 3)}
		y[i] = -60 + 5*math.Sin(x[i][0]) + rng.Gauss(0, 0.5)
	}
	return x, y, Grid(map[string][]float64{"bias": {0, 1, 2, 3, 4, 5, 6, 7}})
}

// TestGridSearchWorkerCountInvariance: identical rng seeds and candidate
// sets must yield byte-identical result lists for every worker count.
func TestGridSearchWorkerCountInvariance(t *testing.T) {
	factory := func(p Params) (Estimator, error) { return &noisyEstimator{bias: p["bias"]}, nil }
	var baseline []SearchResult
	for _, workers := range []int{1, 2, 8} {
		rng := simrand.New(99)
		x, y, candidates := searchFixture(rng)
		got, err := GridSearchWorkers(factory, candidates, x, y, 0.25, rng, workers)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if len(got) != len(baseline) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(baseline))
		}
		for i := range got {
			if got[i].RMSE != baseline[i].RMSE || got[i].Params["bias"] != baseline[i].Params["bias"] {
				t.Fatalf("workers=%d: result %d = %+v, want %+v", workers, i, got[i], baseline[i])
			}
		}
	}
}

// TestGridSearchWorkersErrorPropagates: a factory failure must cancel the
// search and surface the error.
func TestGridSearchWorkersErrorPropagates(t *testing.T) {
	boom := errors.New("bad params")
	factory := func(p Params) (Estimator, error) {
		if p["bias"] == 3 {
			return nil, boom
		}
		return &noisyEstimator{bias: p["bias"]}, nil
	}
	x, y, candidates := searchFixture(simrand.New(5))
	for _, workers := range []int{1, 8} {
		if _, err := GridSearchWorkers(factory, candidates, x, y, 0.25, simrand.New(7), workers); !errors.Is(err, boom) {
			t.Errorf("workers=%d: error = %v, want boom", workers, err)
		}
	}
}

// TestCrossValidateWorkerCountInvariance: fold scores must fold in fold
// order, so the mean is byte-identical across worker counts.
func TestCrossValidateWorkerCountInvariance(t *testing.T) {
	factory := func() Estimator { return &noisyEstimator{bias: 1} }
	var baseline float64
	for i, workers := range []int{1, 2, 8} {
		rng := simrand.New(17)
		x := make([][]float64, 60)
		y := make([]float64, 60)
		for j := range x {
			x[j] = []float64{rng.Range(0, 4)}
			y[j] = rng.Range(-90, -50)
		}
		got, err := CrossValidateRMSEWorkers(factory, x, y, 5, rng, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseline = got
		} else if got != baseline {
			t.Errorf("workers=%d: CV RMSE %v ≠ workers=1 %v", workers, got, baseline)
		}
	}
}

// TestPredictAllUsesBatchPath: an estimator advertising BatchPredictor
// must be served through it.
func TestPredictAllUsesBatchPath(t *testing.T) {
	e := &batchCounting{}
	out, err := PredictAll(e, [][]float64{{1}, {2}, {3}})
	if err != nil || len(out) != 3 {
		t.Fatalf("PredictAll = %v, %v", out, err)
	}
	if e.batchCalls != 1 || e.singleCalls != 0 {
		t.Errorf("batch path not taken: batch=%d single=%d", e.batchCalls, e.singleCalls)
	}
}

type batchCounting struct {
	batchCalls, singleCalls int
}

func (b *batchCounting) Fit(x [][]float64, y []float64) error { return nil }
func (b *batchCounting) Predict(q []float64) (float64, error) {
	b.singleCalls++
	return q[0], nil
}
func (b *batchCounting) PredictBatch(x [][]float64) ([]float64, error) {
	b.batchCalls++
	out := make([]float64, len(x))
	for i, q := range x {
		out[i] = q[0]
	}
	return out, nil
}
