// Package baseline implements the paper's reference estimator: predict the
// mean RSS per MAC address, ignoring position entirely. Every smarter model
// in Figure 8 is judged against it (RMSE 4.8107 dBm on the paper's data).
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/ml"
)

// MeanPerKey predicts the training-set mean of the target for each one-hot
// key group. Features must contain a one-hot block starting at KeyOffset;
// rows with no hot entry fall back to the global mean.
type MeanPerKey struct {
	// KeyOffset is the index where the one-hot block starts (3 when the
	// features are x, y, z followed by the MAC one-hot).
	KeyOffset int

	fitted     bool
	globalMean float64
	means      map[int]float64
}

var (
	_ ml.Estimator = (*MeanPerKey)(nil)
	_ ml.Named     = (*MeanPerKey)(nil)
)

// Name implements ml.Named.
func (m *MeanPerKey) Name() string { return "baseline (mean per MAC)" }

// Fit implements ml.Estimator.
func (m *MeanPerKey) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if m.KeyOffset < 0 || m.KeyOffset >= len(x[0]) {
		return fmt.Errorf("baseline: key offset %d outside feature dim %d", m.KeyOffset, len(x[0]))
	}
	sums := map[int]float64{}
	counts := map[int]int{}
	var total float64
	for i, row := range x {
		key, err := hotIndex(row, m.KeyOffset)
		if err != nil {
			return fmt.Errorf("baseline: row %d: %w", i, err)
		}
		sums[key] += y[i]
		counts[key]++
		total += y[i]
	}
	m.means = make(map[int]float64, len(sums))
	for k, s := range sums {
		m.means[k] = s / float64(counts[k])
	}
	m.globalMean = total / float64(len(y))
	m.fitted = true
	return nil
}

// Predict implements ml.Estimator.
func (m *MeanPerKey) Predict(x []float64) (float64, error) {
	if !m.fitted {
		return 0, ml.ErrNotFitted
	}
	key, err := hotIndex(x, m.KeyOffset)
	if err != nil {
		return m.globalMean, nil
	}
	if mean, ok := m.means[key]; ok {
		return mean, nil
	}
	return m.globalMean, nil
}

// hotIndex finds the index of the non-zero entry in the one-hot block.
func hotIndex(row []float64, offset int) (int, error) {
	if offset >= len(row) {
		return 0, errors.New("one-hot block missing")
	}
	hot := -1
	for i := offset; i < len(row); i++ {
		if row[i] != 0 {
			if hot >= 0 {
				return 0, errors.New("multiple hot entries in one-hot block")
			}
			hot = i - offset
		}
	}
	if hot < 0 {
		return 0, errors.New("no hot entry in one-hot block")
	}
	return hot, nil
}

// GlobalMean predicts the overall training mean regardless of features; the
// weakest sensible reference, useful in ablations.
type GlobalMean struct {
	fitted bool
	mean   float64
}

var (
	_ ml.Estimator = (*GlobalMean)(nil)
	_ ml.Named     = (*GlobalMean)(nil)
)

// Name implements ml.Named.
func (g *GlobalMean) Name() string { return "global mean" }

// Fit implements ml.Estimator.
func (g *GlobalMean) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	g.mean = sum / float64(len(y))
	g.fitted = true
	return nil
}

// Predict implements ml.Estimator.
func (g *GlobalMean) Predict(_ []float64) (float64, error) {
	if !g.fitted {
		return 0, ml.ErrNotFitted
	}
	return g.mean, nil
}
