// Package baseline implements the paper's reference estimator: predict the
// mean RSS per MAC address, ignoring position entirely. Every smarter model
// in Figure 8 is judged against it (RMSE 4.8107 dBm on the paper's data).
package baseline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ml"
)

// MeanPerKey predicts the training-set mean of the target for each one-hot
// key group. Features must contain a one-hot block starting at KeyOffset;
// rows with no hot entry fall back to the global mean.
//
// MeanPerKey is incremental: it keeps O(1)-updatable running sums per key,
// so Observe folds a delta batch in constant time per row and the result
// is byte-identical to a from-scratch Fit on the cumulative dataset (the
// per-key addition sequence is exactly the cumulative row order).
type MeanPerKey struct {
	// KeyOffset is the index where the one-hot block starts (3 when the
	// features are x, y, z followed by the MAC one-hot).
	KeyOffset int

	fitted     bool
	dim        int // fitted feature dimension
	width      int // one-hot block width (the key universe size)
	globalMean float64
	means      map[int]float64
	// Running accumulators behind the means.
	sums   map[int]float64
	counts map[int]int
	total  float64
	n      int
}

var (
	_ ml.Estimator            = (*MeanPerKey)(nil)
	_ ml.Named                = (*MeanPerKey)(nil)
	_ ml.IncrementalEstimator = (*MeanPerKey)(nil)
)

// Name implements ml.Named.
func (m *MeanPerKey) Name() string { return "baseline (mean per MAC)" }

// Fit implements ml.Estimator.
func (m *MeanPerKey) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if m.KeyOffset < 0 || m.KeyOffset >= len(x[0]) {
		return fmt.Errorf("baseline: key offset %d outside feature dim %d", m.KeyOffset, len(x[0]))
	}
	keys, err := hotKeys(x, m.KeyOffset)
	if err != nil {
		return err
	}
	m.dim = len(x[0])
	m.width = m.dim - m.KeyOffset
	m.sums = map[int]float64{}
	m.counts = map[int]int{}
	m.total, m.n = 0, 0
	m.fold(keys, y)
	m.recompute()
	m.fitted = true
	return nil
}

// Observe implements ml.IncrementalEstimator: the batch is folded into the
// running sums and the dirty set is the batch's keys plus — because every
// sample moves the global-mean fallback — every key that still has no
// samples of its own.
func (m *MeanPerKey) Observe(x [][]float64, y []float64) ([]int, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	if err := ml.ValidateObserved(x, y, m.dim); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	keys, err := hotKeys(x, m.KeyOffset)
	if err != nil {
		return nil, err
	}
	dirty := map[int]bool{}
	for _, k := range keys {
		dirty[k] = true
	}
	m.fold(keys, y)
	for k := 0; k < m.width; k++ {
		if m.counts[k] == 0 {
			dirty[k] = true
		}
	}
	m.recompute()
	out := make([]int, 0, len(dirty))
	for k := range dirty {
		out = append(out, k)
	}
	sort.Ints(out)
	return out, nil
}

// Refit implements ml.IncrementalEstimator. Observe already folds each
// batch into the running means, so there is nothing deferred.
func (m *MeanPerKey) Refit() error {
	if !m.fitted {
		return ml.ErrNotFitted
	}
	return nil
}

// hotKeys resolves every row's hot key upfront, so a malformed row is
// rejected before any accumulator mutates.
func hotKeys(x [][]float64, offset int) ([]int, error) {
	keys := make([]int, len(x))
	for i, row := range x {
		key, err := hotIndex(row, offset)
		if err != nil {
			return nil, fmt.Errorf("baseline: row %d: %w", i, err)
		}
		keys[i] = key
	}
	return keys, nil
}

// fold adds a batch to the running accumulators in row order — the same
// addition sequence a from-scratch fit on the cumulative data performs.
func (m *MeanPerKey) fold(keys []int, y []float64) {
	for i, k := range keys {
		m.sums[k] += y[i]
		m.counts[k]++
		m.total += y[i]
		m.n++
	}
}

// recompute derives the served means from the accumulators.
func (m *MeanPerKey) recompute() {
	m.means = make(map[int]float64, len(m.sums))
	for k, s := range m.sums {
		m.means[k] = s / float64(m.counts[k])
	}
	m.globalMean = m.total / float64(m.n)
}

// Predict implements ml.Estimator.
func (m *MeanPerKey) Predict(x []float64) (float64, error) {
	if !m.fitted {
		return 0, ml.ErrNotFitted
	}
	key, err := hotIndex(x, m.KeyOffset)
	if err != nil {
		return m.globalMean, nil
	}
	if mean, ok := m.means[key]; ok {
		return mean, nil
	}
	return m.globalMean, nil
}

// hotIndex finds the index of the non-zero entry in the one-hot block.
func hotIndex(row []float64, offset int) (int, error) {
	if offset >= len(row) {
		return 0, errors.New("one-hot block missing")
	}
	hot := -1
	for i := offset; i < len(row); i++ {
		if row[i] != 0 {
			if hot >= 0 {
				return 0, errors.New("multiple hot entries in one-hot block")
			}
			hot = i - offset
		}
	}
	if hot < 0 {
		return 0, errors.New("no hot entry in one-hot block")
	}
	return hot, nil
}

// GlobalMean predicts the overall training mean regardless of features; the
// weakest sensible reference, useful in ablations.
type GlobalMean struct {
	fitted bool
	mean   float64
}

var (
	_ ml.Estimator = (*GlobalMean)(nil)
	_ ml.Named     = (*GlobalMean)(nil)
)

// Name implements ml.Named.
func (g *GlobalMean) Name() string { return "global mean" }

// Fit implements ml.Estimator.
func (g *GlobalMean) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	g.mean = sum / float64(len(y))
	g.fitted = true
	return nil
}

// Predict implements ml.Estimator.
func (g *GlobalMean) Predict(_ []float64) (float64, error) {
	if !g.fitted {
		return 0, ml.ErrNotFitted
	}
	return g.mean, nil
}
