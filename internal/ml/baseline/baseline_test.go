package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ml"
)

// rows builds xyz + 2-way one-hot features.
func rows() ([][]float64, []float64) {
	x := [][]float64{
		{0, 0, 0, 1, 0}, {1, 0, 0, 1, 0}, {2, 0, 0, 1, 0}, // key 0: mean −60
		{0, 1, 0, 0, 1}, {1, 1, 0, 0, 1}, // key 1: mean −80
	}
	y := []float64{-58, -60, -62, -78, -82}
	return x, y
}

func TestMeanPerKey(t *testing.T) {
	x, y := rows()
	m := &MeanPerKey{KeyOffset: 3}
	if _, err := m.Predict(x[0]); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{9, 9, 9, 1, 0})
	if err != nil || math.Abs(got+60) > 1e-12 {
		t.Errorf("key 0 prediction = %v, want −60 (position must be ignored)", got)
	}
	got, _ = m.Predict([]float64{0, 0, 0, 0, 1})
	if math.Abs(got+80) > 1e-12 {
		t.Errorf("key 1 prediction = %v, want −80", got)
	}
}

func TestMeanPerKeyFallsBackToGlobalMean(t *testing.T) {
	x, y := rows()
	m := &MeanPerKey{KeyOffset: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	globalMean := (-58.0 - 60 - 62 - 78 - 82) / 5
	// No hot entry at all → global mean.
	got, err := m.Predict([]float64{0, 0, 0, 0, 0})
	if err != nil || math.Abs(got-globalMean) > 1e-12 {
		t.Errorf("no-key prediction = %v, want global mean %v", got, globalMean)
	}
}

func TestMeanPerKeyValidation(t *testing.T) {
	x, y := rows()
	m := &MeanPerKey{KeyOffset: 99}
	if err := m.Fit(x, y); err == nil {
		t.Error("offset beyond features accepted")
	}
	m = &MeanPerKey{KeyOffset: 3}
	bad := [][]float64{{0, 0, 0, 1, 1}} // two hot entries
	if err := m.Fit(bad, []float64{1}); err == nil {
		t.Error("multi-hot row accepted")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	noHot := [][]float64{{0, 0, 0, 0, 0}}
	if err := m.Fit(noHot, []float64{1}); err == nil {
		t.Error("no-hot row accepted at fit time")
	}
}

func TestMeanPerKeyScaledOneHot(t *testing.T) {
	// The hot entry need not be 1 — scaled encodings (×3) must still work.
	x := [][]float64{
		{0, 0, 0, 3, 0}, {1, 0, 0, 3, 0},
		{0, 0, 0, 0, 3},
	}
	y := []float64{-50, -52, -90}
	m := &MeanPerKey{KeyOffset: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Predict([]float64{0, 0, 0, 3, 0})
	if math.Abs(got+51) > 1e-12 {
		t.Errorf("scaled one-hot prediction = %v, want −51", got)
	}
}

func TestGlobalMean(t *testing.T) {
	g := &GlobalMean{}
	if _, err := g.Predict(nil); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
	if err := g.Fit([][]float64{{1}, {2}, {3}}, []float64{-70, -72, -74}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Predict([]float64{123})
	if err != nil || math.Abs(got+72) > 1e-12 {
		t.Errorf("global mean = %v, want −72", got)
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
}

func TestNames(t *testing.T) {
	if (&MeanPerKey{}).Name() == "" {
		t.Error("empty baseline name")
	}
}
