package baseline

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/simrand"
)

// streamBatches builds a synthetic stream over nKeys one-hot keys, cut
// into batches; batch 0 deliberately leaves some keys unseen.
func streamBatches(nKeys int, sizes []int, maxKeyPerBatch []int) ([][][]float64, [][]float64) {
	rng := simrand.New(321)
	xs := make([][][]float64, len(sizes))
	ys := make([][]float64, len(sizes))
	for b, n := range sizes {
		for i := 0; i < n; i++ {
			row := make([]float64, 3+nKeys)
			row[0], row[1], row[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
			row[3+rng.Intn(maxKeyPerBatch[b])] = 1
			xs[b] = append(xs[b], row)
			ys[b] = append(ys[b], rng.Range(-90, -40))
		}
	}
	return xs, ys
}

func cumulative(xs [][][]float64, ys [][]float64, upto int) ([][]float64, []float64) {
	var cx [][]float64
	var cy []float64
	for b := 0; b <= upto; b++ {
		cx = append(cx, xs[b]...)
		cy = append(cy, ys[b]...)
	}
	return cx, cy
}

// TestMeanPerKeyIncrementalIdentity is rule 7 at the estimator layer:
// after every Observe, the running-mean model predicts byte-identically to
// a fresh MeanPerKey fitted on the cumulative rows.
func TestMeanPerKeyIncrementalIdentity(t *testing.T) {
	const nKeys = 6
	xs, ys := streamBatches(nKeys, []int{20, 7, 13}, []int{3, 5, nKeys})
	inc := &MeanPerKey{KeyOffset: 3}
	if err := inc.Fit(xs[0], ys[0]); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, nKeys)
	for k := range queries {
		q := make([]float64, 3+nKeys)
		q[3+k] = 1
		queries[k] = q
	}
	for b := 1; b < len(xs); b++ {
		if _, err := inc.Observe(xs[b], ys[b]); err != nil {
			t.Fatal(err)
		}
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
		cx, cy := cumulative(xs, ys, b)
		fresh := &MeanPerKey{KeyOffset: 3}
		if err := fresh.Fit(cx, cy); err != nil {
			t.Fatal(err)
		}
		for k, q := range queries {
			got, err := inc.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("batch %d key %d: incremental %x ≠ from-scratch %x", b, k, got, want)
			}
		}
	}
}

// TestMeanPerKeyDirtySet: Observe reports the batch's keys plus every key
// still served by the (moved) global mean, and nothing else once all keys
// have samples.
func TestMeanPerKeyDirtySet(t *testing.T) {
	const nKeys = 5
	mk := func(key int, v float64) ([]float64, float64) {
		row := make([]float64, 3+nKeys)
		row[3+key] = 1
		return row, v
	}
	m := &MeanPerKey{KeyOffset: 3}
	x0, y0 := mk(0, -50)
	x1, y1 := mk(1, -60)
	if err := m.Fit([][]float64{x0, x1}, []float64{y0, y1}); err != nil {
		t.Fatal(err)
	}
	// Keys 2, 3, 4 are unseen: any new sample moves their global-mean
	// fallback, so observing key 1 dirties {1, 2, 3, 4}.
	xo, yo := mk(1, -65)
	dirty, err := m.Observe([][]float64{xo}, []float64{yo})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	// Give every key a sample; then a key-0 delta dirties only key 0.
	var xs [][]float64
	var ys []float64
	for k := 2; k < nKeys; k++ {
		x, y := mk(k, -70)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	if _, err := m.Observe(xs, ys); err != nil {
		t.Fatal(err)
	}
	x2, y2 := mk(0, -55)
	dirty, err = m.Observe([][]float64{x2}, []float64{y2})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0}; !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty after full coverage = %v, want %v", dirty, want)
	}
}

// TestMeanPerKeyObserveValidation: unfitted observes, shape mismatches and
// malformed one-hot rows are rejected without corrupting state.
func TestMeanPerKeyObserveValidation(t *testing.T) {
	m := &MeanPerKey{KeyOffset: 3}
	if _, err := m.Observe([][]float64{{1, 2, 3, 1}}, []float64{-50}); err == nil {
		t.Error("Observe before Fit accepted")
	}
	row := []float64{0, 0, 0, 1, 0}
	if err := m.Fit([][]float64{row, row}, []float64{-50, -52}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe([][]float64{{1, 2}}, []float64{-60}); err == nil {
		t.Error("dim-mismatched observe accepted")
	}
	bad := []float64{0, 0, 0, 1, 1} // two hot entries
	if _, err := m.Observe([][]float64{bad}, []float64{-60}); err == nil {
		t.Error("multi-hot observe accepted")
	}
	// State must be unchanged by the rejected batches.
	got, err := m.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	if got != -51 {
		t.Fatalf("mean after rejected observes = %v, want -51", got)
	}
	// Empty batches are fine and dirty nothing.
	dirty, err := m.Observe(nil, nil)
	if err != nil || dirty != nil {
		t.Fatalf("empty observe = %v, %v", dirty, err)
	}
	if err := m.Refit(); err != nil {
		t.Fatal(err)
	}
}
