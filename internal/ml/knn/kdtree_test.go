package knn

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simrand"
)

// syntheticOneHot builds an RSS-like training set in the paper's feature
// layout: xyz in a room-sized box followed by a one-hot key block of the
// given scale.
func syntheticOneHot(rng *simrand.Source, n, keys int, scale float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, 3+keys)
		row[0] = rng.Range(0, 4)
		row[1] = rng.Range(0, 3)
		row[2] = rng.Range(0, 2.6)
		row[3+rng.Intn(keys)] = scale
		x[i] = row
		y[i] = rng.Range(-95, -40)
	}
	return x, y
}

// syntheticXYZ builds a coordinate-only training set (the per-MAC
// sub-regressor layout).
func syntheticXYZ(rng *simrand.Source, n int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)}
		y[i] = rng.Range(-95, -40)
	}
	return x, y
}

// fitPair fits a KD-tree-backed and a brute-force regressor on the same
// data.
func fitPair(t *testing.T, cfg Config, x [][]float64, y []float64) (tree, brute *Regressor) {
	t.Helper()
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.BruteForce = true
	brute, err = New(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := brute.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tree.index == nil {
		t.Fatal("Euclidean fit did not build a KD-tree index")
	}
	if brute.index != nil {
		t.Fatal("BruteForce fit built an index")
	}
	return tree, brute
}

// TestKDTreeMatchesBruteForce is the determinism contract: for every
// weighting, k, and feature layout, the KD-tree answer must be
// byte-identical to the brute-force scan.
func TestKDTreeMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name  string
		keys  int
		scale float64
	}{
		{"xyz-only", 0, 0},
		{"one-hot×1", 12, 1},
		{"one-hot×3", 12, 3},
	}
	for _, tc := range cases {
		for _, k := range []int{1, 3, 16, 40} {
			for _, w := range []Weighting{Uniform, Distance} {
				t.Run(fmt.Sprintf("%s/k=%d/%s", tc.name, k, w), func(t *testing.T) {
					rng := simrand.New(42)
					var x [][]float64
					var y []float64
					if tc.keys == 0 {
						x, y = syntheticXYZ(rng, 600)
					} else {
						x, y = syntheticOneHot(rng, 600, tc.keys, tc.scale)
					}
					tree, brute := fitPair(t, Config{K: k, Weights: w, MinkowskiP: 2}, x, y)
					for q := 0; q < 300; q++ {
						query := make([]float64, len(x[0]))
						query[0] = rng.Range(-0.5, 4.5)
						query[1] = rng.Range(-0.5, 3.5)
						query[2] = rng.Range(-0.5, 3)
						if tc.keys > 0 {
							query[3+rng.Intn(tc.keys)] = tc.scale
						}
						want, err := brute.Predict(query)
						if err != nil {
							t.Fatal(err)
						}
						got, err := tree.Predict(query)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("query %d: kdtree %v ≠ brute %v", q, got, want)
						}
					}
				})
			}
		}
	}
}

// TestKDTreeMatchesBruteOnTrainingPoints exercises the zero-distance
// (exact match) path through both backends, including coincident points.
func TestKDTreeMatchesBruteOnTrainingPoints(t *testing.T) {
	rng := simrand.New(7)
	x, y := syntheticOneHot(rng, 400, 8, 3)
	// Duplicate a slice of points so zero-distance ties exist.
	for i := 0; i < 40; i++ {
		x = append(x, append([]float64(nil), x[i]...))
		y = append(y, y[i]-1)
	}
	tree, brute := fitPair(t, Config{K: 16, Weights: Distance, MinkowskiP: 2}, x, y)
	for i := range x {
		want, err := brute.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := tree.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("training point %d: kdtree %v ≠ brute %v", i, got, want)
		}
	}
}

// TestKDTreeUnseenAndMalformedQueries covers queries the per-key forest
// cannot serve natively: a hot key absent from training, a hot value that
// differs from the training scale, and a query with no hot entry — all
// must agree with brute force.
func TestKDTreeUnseenAndMalformedQueries(t *testing.T) {
	rng := simrand.New(13)
	// Keys 0..5 trained out of 8 slots, so 6 and 7 are unseen.
	x, y := syntheticOneHot(rng, 300, 6, 3)
	for i := range x {
		x[i] = append(x[i], 0, 0) // widen the one-hot block to 8 slots
	}
	tree, brute := fitPair(t, Config{K: 5, Weights: Distance, MinkowskiP: 2}, x, y)
	queries := [][]float64{
		append([]float64{1, 1, 1}, 0, 0, 0, 0, 0, 0, 3, 0), // unseen key 6
		append([]float64{1, 1, 1}, 5, 0, 0, 0, 0, 0, 0, 0), // wrong scale
		append([]float64{1, 1, 1}, 0, 0, 0, 0, 0, 0, 0, 0), // no hot entry
		append([]float64{1, 1, 1}, 3, 0, 3, 0, 0, 0, 0, 0), // two hot entries
	}
	for qi, q := range queries {
		want, err := brute.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tree.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: kdtree %v ≠ brute %v", qi, got, want)
		}
	}
}

// TestPredictBatchMatchesPredict checks the amortised path returns exactly
// the per-call values.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := simrand.New(21)
	x, y := syntheticOneHot(rng, 500, 10, 3)
	r, err := New(PaperScaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 200)
	for i := range queries {
		q := make([]float64, len(x[0]))
		q[0], q[1], q[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		q[3+rng.Intn(10)] = 3
		queries[i] = q
	}
	batch, err := r.PredictBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := r.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Fatalf("row %d: batch %v ≠ single %v", i, batch[i], single)
		}
	}
	if _, err := (&Regressor{cfg: PaperPlainConfig()}).PredictBatch(queries); err == nil {
		t.Error("unfitted PredictBatch accepted")
	}
}

// TestConcurrentPredict hammers one fitted regressor from many goroutines;
// run under -race this proves the query path shares no mutable state.
func TestConcurrentPredict(t *testing.T) {
	rng := simrand.New(5)
	x, y := syntheticOneHot(rng, 400, 8, 3)
	r, err := New(PaperScaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := append([]float64{2, 1.5, 1.3}, make([]float64, 8)...)
	q[3] = 3
	want, err := r.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := r.Predict(q)
				if err != nil || got != want {
					t.Errorf("concurrent predict = %v, %v; want %v", got, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBruteForceTieOrdering pins the canonical ordering: with more
// equidistant points than k, the lowest training indices win, for both
// backends.
func TestBruteForceTieOrdering(t *testing.T) {
	// Four corners of a square, query at the centre: all at distance √2/2.
	x := [][]float64{{0, 0, 9}, {1, 0, 9}, {0, 1, 9}, {1, 1, 9}}
	y := []float64{1, 2, 4, 8}
	for _, brute := range []bool{false, true} {
		r, err := New(Config{K: 2, Weights: Uniform, MinkowskiP: 2, BruteForce: brute})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		got, err := r.Predict([]float64{0.5, 0.5, 9})
		if err != nil {
			t.Fatal(err)
		}
		if got != 1.5 { // indices 0 and 1 win the tie
			t.Errorf("brute=%v: tie-broken k=2 mean = %v, want 1.5", brute, got)
		}
	}
}
