package knn

import (
	"fmt"

	"repro/internal/ml"
)

// PerKey is the paper's "kNN estimator per MAC address": one xyz-only
// Regressor per one-hot key, each trained only on that key's samples. The
// feature layout is x, y, z followed by a one-hot block at KeyOffset; the
// one-hot block is used solely for routing, and each sub-regressor sees only
// the coordinates.
type PerKey struct {
	// Sub configures every per-key regressor (the paper keeps the tuned
	// plain-kNN hyper-parameters).
	Sub Config
	// KeyOffset is where the one-hot block starts (3 for xyz + MAC).
	KeyOffset int

	fitted bool
	subs   map[int]*Regressor
	global *Regressor
}

var (
	_ ml.Estimator = (*PerKey)(nil)
	_ ml.Named     = (*PerKey)(nil)
)

// Name implements ml.Named.
func (p *PerKey) Name() string {
	return fmt.Sprintf("per-MAC kNN (k=%d, %s)", p.Sub.K, p.Sub.Weights)
}

// Fit implements ml.Estimator.
func (p *PerKey) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if err := p.Sub.Validate(); err != nil {
		return err
	}
	if p.KeyOffset < 3 || p.KeyOffset > len(x[0]) {
		return fmt.Errorf("knn: per-key offset %d invalid for feature dim %d", p.KeyOffset, len(x[0]))
	}
	groupsX := map[int][][]float64{}
	groupsY := map[int][]float64{}
	var allXYZ [][]float64
	for i, row := range x {
		key := hotIndex(row, p.KeyOffset)
		if key < 0 {
			return fmt.Errorf("knn: row %d has no hot key", i)
		}
		xyz := append([]float64(nil), row[:3]...)
		groupsX[key] = append(groupsX[key], xyz)
		groupsY[key] = append(groupsY[key], y[i])
		allXYZ = append(allXYZ, xyz)
	}
	p.subs = make(map[int]*Regressor, len(groupsX))
	for key, gx := range groupsX {
		sub, err := New(p.Sub)
		if err != nil {
			return err
		}
		if err := sub.Fit(gx, groupsY[key]); err != nil {
			return fmt.Errorf("knn: fitting key %d: %w", key, err)
		}
		p.subs[key] = sub
	}
	// Fallback for unseen keys: a regressor over all samples.
	global, err := New(p.Sub)
	if err != nil {
		return err
	}
	if err := global.Fit(allXYZ, y); err != nil {
		return err
	}
	p.global = global
	p.fitted = true
	return nil
}

// Predict implements ml.Estimator.
func (p *PerKey) Predict(q []float64) (float64, error) {
	if !p.fitted {
		return 0, ml.ErrNotFitted
	}
	if len(q) < p.KeyOffset {
		return 0, fmt.Errorf("knn: query dim %d below key offset %d", len(q), p.KeyOffset)
	}
	xyz := q[:3]
	key := hotIndex(q, p.KeyOffset)
	if sub, ok := p.subs[key]; key >= 0 && ok {
		return sub.Predict(xyz)
	}
	return p.global.Predict(xyz)
}

// hotIndex returns the index of the single non-zero entry at or after
// offset, or -1 if there is none or several.
func hotIndex(row []float64, offset int) int {
	hot := -1
	for i := offset; i < len(row); i++ {
		if row[i] != 0 {
			if hot >= 0 {
				return -1
			}
			hot = i - offset
		}
	}
	return hot
}
