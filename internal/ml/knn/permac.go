package knn

import (
	"fmt"
	"sort"

	"repro/internal/ml"
)

// PerKey is the paper's "kNN estimator per MAC address": one xyz-only
// Regressor per one-hot key, each trained only on that key's samples. The
// feature layout is x, y, z followed by a one-hot block at KeyOffset; the
// one-hot block is used solely for routing, and each sub-regressor sees only
// the coordinates.
//
// PerKey is the incremental estimator with *tight* dirty sets: a new
// sample routes to exactly one sub-regressor, so Observe dirties only the
// batch's keys (plus the keys still served by the global fallback, which
// every sample moves). That locality is what makes incremental REM
// rebuilds proportional to the delta.
type PerKey struct {
	// Sub configures every per-key regressor (the paper keeps the tuned
	// plain-kNN hyper-parameters).
	Sub Config
	// KeyOffset is where the one-hot block starts (3 for xyz + MAC).
	KeyOffset int

	fitted bool
	dim    int // fitted feature dimension
	width  int // one-hot block width (the key universe size)
	subs   map[int]*Regressor
	global *Regressor
}

var (
	_ ml.Estimator            = (*PerKey)(nil)
	_ ml.Named                = (*PerKey)(nil)
	_ ml.IncrementalEstimator = (*PerKey)(nil)
)

// Name implements ml.Named.
func (p *PerKey) Name() string {
	return fmt.Sprintf("per-MAC kNN (k=%d, %s)", p.Sub.K, p.Sub.Weights)
}

// Fit implements ml.Estimator.
func (p *PerKey) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	if err := p.Sub.Validate(); err != nil {
		return err
	}
	if p.KeyOffset < 3 || p.KeyOffset > len(x[0]) {
		return fmt.Errorf("knn: per-key offset %d invalid for feature dim %d", p.KeyOffset, len(x[0]))
	}
	groupsX, groupsY, allXYZ, err := groupByKey(x, y, p.KeyOffset)
	if err != nil {
		return err
	}
	p.subs = make(map[int]*Regressor, len(groupsX))
	for key, gx := range groupsX {
		sub, err := New(p.Sub)
		if err != nil {
			return err
		}
		if err := sub.Fit(gx, groupsY[key]); err != nil {
			return fmt.Errorf("knn: fitting key %d: %w", key, err)
		}
		p.subs[key] = sub
	}
	// Fallback for unseen keys: a regressor over all samples.
	global, err := New(p.Sub)
	if err != nil {
		return err
	}
	if err := global.Fit(allXYZ, y); err != nil {
		return err
	}
	p.global = global
	p.dim = len(x[0])
	p.width = p.dim - p.KeyOffset
	p.fitted = true
	return nil
}

// Observe implements ml.IncrementalEstimator: each row routes to its
// key's sub-regressor (created on first sight) and to the global
// fallback. The dirty set is the batch's keys plus every key that still
// lacks a sub-regressor — those predict through the global fallback,
// which any new sample moves. Not safe concurrently with queries.
func (p *PerKey) Observe(x [][]float64, y []float64) ([]int, error) {
	if !p.fitted {
		return nil, ml.ErrNotFitted
	}
	if err := ml.ValidateObserved(x, y, p.dim); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	groupsX, groupsY, allXYZ, err := groupByKey(x, y, p.KeyOffset)
	if err != nil {
		return nil, err
	}
	dirty := map[int]bool{}
	for key, gx := range groupsX {
		dirty[key] = true
		if sub, ok := p.subs[key]; ok {
			if _, err := sub.Observe(gx, groupsY[key]); err != nil {
				return nil, err
			}
			continue
		}
		sub, err := New(p.Sub)
		if err != nil {
			return nil, err
		}
		if err := sub.Fit(gx, groupsY[key]); err != nil {
			return nil, fmt.Errorf("knn: fitting new key %d: %w", key, err)
		}
		p.subs[key] = sub
	}
	if _, err := p.global.Observe(allXYZ, y); err != nil {
		return nil, err
	}
	for k := 0; k < p.width; k++ {
		if _, ok := p.subs[k]; !ok {
			dirty[k] = true
		}
	}
	out := make([]int, 0, len(dirty))
	for k := range dirty {
		out = append(out, k)
	}
	sort.Ints(out)
	return out, nil
}

// Refit implements ml.IncrementalEstimator: every sub-regressor and the
// global fallback merge their insert logs.
func (p *PerKey) Refit() error {
	if !p.fitted {
		return ml.ErrNotFitted
	}
	for _, sub := range p.subs {
		if err := sub.Refit(); err != nil {
			return err
		}
	}
	return p.global.Refit()
}

// Predict implements ml.Estimator.
func (p *PerKey) Predict(q []float64) (float64, error) {
	if !p.fitted {
		return 0, ml.ErrNotFitted
	}
	if len(q) < p.KeyOffset {
		return 0, fmt.Errorf("knn: query dim %d below key offset %d", len(q), p.KeyOffset)
	}
	xyz := q[:3]
	key := hotIndex(q, p.KeyOffset)
	if sub, ok := p.subs[key]; key >= 0 && ok {
		return sub.Predict(xyz)
	}
	return p.global.Predict(xyz)
}

// groupByKey routes rows into per-key xyz groups (the one-hot block used
// solely for routing) plus the flat xyz list the global fallback trains
// on. Both Fit and Observe group through it, so the layout contract has
// exactly one owner; rows are validated upfront, before anything is
// built.
func groupByKey(x [][]float64, y []float64, offset int) (groupsX map[int][][]float64, groupsY map[int][]float64, allXYZ [][]float64, err error) {
	keys := make([]int, len(x))
	for i, row := range x {
		key := hotIndex(row, offset)
		if key < 0 {
			return nil, nil, nil, fmt.Errorf("knn: row %d has no hot key", i)
		}
		keys[i] = key
	}
	groupsX = map[int][][]float64{}
	groupsY = map[int][]float64{}
	allXYZ = make([][]float64, len(x))
	for i, row := range x {
		xyz := append([]float64(nil), row[:3]...)
		groupsX[keys[i]] = append(groupsX[keys[i]], xyz)
		groupsY[keys[i]] = append(groupsY[keys[i]], y[i])
		allXYZ[i] = xyz
	}
	return groupsX, groupsY, allXYZ, nil
}

// hotIndex returns the index of the single non-zero entry at or after
// offset, or -1 if there is none or several.
func hotIndex(row []float64, offset int) int {
	hot := -1
	for i := offset; i < len(row); i++ {
		if row[i] != 0 {
			if hot >= 0 {
				return -1
			}
			hot = i - offset
		}
	}
	return hot
}
