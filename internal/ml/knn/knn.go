// Package knn implements the k-nearest-neighbour regressors of the paper's
// §III-B: a Minkowski-metric kNN with uniform or distance weighting over
// x/y/z + one-hot-MAC features (including the scaled-one-hot variant that
// wins Figure 8), and the per-MAC ensemble alternative that fits one
// xyz-only regressor per MAC address.
//
// Euclidean (p=2) queries are served by a KD-tree spatial index with
// per-key subtrees for the one-hot-MAC layout (see kdtree.go); other
// metrics use the original brute-force scan. Both backends rank neighbours
// by the same canonical (distance, training-index) order, so predictions
// are byte-identical whichever one answers. Predict and PredictBatch are
// safe for concurrent use once Fit has returned.
package knn

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Weighting selects how neighbours are combined.
type Weighting int

// Weighting schemes, mirroring scikit-learn's `weights` parameter.
const (
	// Uniform averages the k neighbours equally.
	Uniform Weighting = iota + 1
	// Distance weights each neighbour by 1/distance ("weights=distance",
	// the paper's tuned choice).
	Distance
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case Distance:
		return "distance"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Config parameterises a Regressor.
type Config struct {
	// K is the neighbour count (paper: 3 for the plain variant, 16 for the
	// scaled-one-hot variant).
	K int
	// Weights selects uniform or inverse-distance combination.
	Weights Weighting
	// MinkowskiP is the metric order; p=2 with metric=minkowski is the
	// Euclidean distance the paper's grid search selects.
	MinkowskiP float64
	// BruteForce disables the KD-tree index and forces the O(n) scan even
	// for p=2. Predictions are identical either way; the flag exists to
	// benchmark the index against its baseline.
	BruteForce bool
	// MergeThreshold bounds the incremental insert log: once more than
	// this many observed rows sit outside the KD-tree index, Observe
	// merges them in, rebuilding only the per-MAC subtrees whose keys
	// gained rows (rows that break the one-hot layout degrade to a full
	// index rebuild). Queries are byte-identical before and after a
	// merge — the log is scanned with the same canonical
	// (distance, index) ordering the index uses — so the threshold
	// trades only query cost against rebuild frequency. ≤ 0 derives the
	// bound from the training-set size (≈√n, floored at
	// MinMergeThreshold): every query scans the log linearly — O(t) for
	// a log of t rows — while a subtree rebuild costs O(n log n)
	// amortised over those t observations, and t ≈ √n balances the two
	// as the set grows — a small survey merges eagerly, a large one
	// lets the log amortise more.
	MergeThreshold int
}

// MinMergeThreshold floors the derived ≈√n insert-log bound so tiny
// training sets do not rebuild their index on nearly every observation.
const MinMergeThreshold = 16

// PaperPlainConfig is the paper's tuned plain kNN: k=3, distance weights,
// Euclidean metric.
func PaperPlainConfig() Config {
	return Config{K: 3, Weights: Distance, MinkowskiP: 2}
}

// PaperScaledConfig is the paper's best estimator configuration: the one-hot
// MAC features are multiplied by 3 (done at feature-encoding time) and k=16.
func PaperScaledConfig() Config {
	return Config{K: 16, Weights: Distance, MinkowskiP: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("knn: k must be ≥1, got %d", c.K)
	}
	if c.Weights != Uniform && c.Weights != Distance {
		return fmt.Errorf("knn: invalid weighting %d", c.Weights)
	}
	if c.MinkowskiP <= 0 {
		return fmt.Errorf("knn: Minkowski p must be positive, got %g", c.MinkowskiP)
	}
	return nil
}

// Regressor is a kNN regressor. Fit stores the training set and, for the
// Euclidean metric, builds the KD-tree index; Predict queries it.
//
// Regressor is incremental: Observe appends new samples to an insert log
// that queries scan alongside the index (canonical neighbour ordering
// makes the two paths merge byte-identically), and the log folds into the
// KD-forest once it exceeds Config.MergeThreshold or Refit is called.
// Observe and Refit must not run concurrently with queries.
type Regressor struct {
	cfg Config
	x   [][]float64
	y   []float64
	// index covers x[:indexed]; rows at and beyond indexed are the insert
	// log, scanned linearly by every query until the next merge.
	index   *kdIndex
	indexed int
}

var (
	_ ml.Estimator            = (*Regressor)(nil)
	_ ml.Named                = (*Regressor)(nil)
	_ ml.BatchPredictor       = (*Regressor)(nil)
	_ ml.IncrementalEstimator = (*Regressor)(nil)
)

// New builds a regressor with the given configuration.
func New(cfg Config) (*Regressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Regressor{cfg: cfg}, nil
}

// Name implements ml.Named.
func (r *Regressor) Name() string {
	return fmt.Sprintf("kNN (k=%d, %s, p=%g)", r.cfg.K, r.cfg.Weights, r.cfg.MinkowskiP)
}

// Fit implements ml.Estimator. The training data is copied.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	r.x = make([][]float64, len(x))
	for i, row := range x {
		r.x[i] = append([]float64(nil), row...)
	}
	r.y = append([]float64(nil), y...)
	r.index = nil
	r.indexed = 0
	r.merge()
	return nil
}

// Observe implements ml.IncrementalEstimator: the batch lands in the
// insert log (immediately visible to queries) and merges into the index
// once the log outgrows the threshold. A single shared-feature-space kNN
// has cross-key reach — a new sample under one hot key can enter the
// neighbour set of queries under any other key, because the one-hot
// offset is a constant distance penalty, not a wall — so the whole
// vocabulary is reported dirty. The per-key ensemble (PerKey) is the
// variant with tight dirty sets.
func (r *Regressor) Observe(x [][]float64, y []float64) ([]int, error) {
	if r.x == nil {
		return nil, ml.ErrNotFitted
	}
	if err := ml.ValidateObserved(x, y, len(r.x[0])); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	for _, row := range x {
		r.x = append(r.x, append([]float64(nil), row...))
	}
	r.y = append(r.y, y...)
	if len(r.x)-r.indexed > r.mergeThreshold() {
		r.merge()
	}
	return []int{ml.DirtyAll}, nil
}

// mergeThreshold resolves the insert-log bound: the configured value, or
// ≈√n derived from the current training-set size when unset (floored at
// MinMergeThreshold). Deriving from len(r.x) means the bound grows with
// the set: merges stay rare relative to the observations they amortise.
func (r *Regressor) mergeThreshold() int {
	if r.cfg.MergeThreshold > 0 {
		return r.cfg.MergeThreshold
	}
	if t := int(math.Sqrt(float64(len(r.x)))); t > MinMergeThreshold {
		return t
	}
	return MinMergeThreshold
}

// Refit implements ml.IncrementalEstimator: any logged rows merge into
// the index. Queries return the same bits before and after.
func (r *Regressor) Refit() error {
	if r.x == nil {
		return ml.ErrNotFitted
	}
	if r.indexed < len(r.x) {
		r.merge()
	}
	return nil
}

// merge folds the insert log into the index, emptying it. When the
// logged rows fit the index's per-MAC layout, only the subtrees whose
// keys gained members are rebuilt (the cheap per-key merge); a layout
// change — or the full-dimension fallback tree — falls back to a
// from-scratch index build. Queries return the same bits either way.
func (r *Regressor) merge() {
	if r.cfg.MinkowskiP != 2 || r.cfg.BruteForce {
		r.index = nil
		r.indexed = len(r.x)
		return
	}
	if r.index != nil && r.index.addRows(r.x, r.indexed) {
		r.indexed = len(r.x)
		return
	}
	r.index = buildIndex(r.x)
	r.indexed = len(r.x)
}

// distance computes the Minkowski distance of order p and, for p=2, the
// pre-sqrt squared distance used as the KD-tree pruning bound.
func (r *Regressor) distance(a, b []float64) (float64, float64) {
	p := r.cfg.MinkowskiP
	if p == 2 {
		return euclid(a, b)
	}
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	d := math.Pow(sum, 1/p)
	return d, d * d
}

// gather fills nb with the k nearest training points in canonical
// (dist, idx) order, via the index when one applies. Rows in the insert
// log (past indexed) are scanned linearly either way; consider keeps the
// canonical ordering regardless of offer order, so indexed and logged
// candidates merge byte-identically to a full scan.
func (r *Regressor) gather(q []float64, nb *nearest) {
	if r.index != nil && r.index.search(q, nb) {
		for i := r.indexed; i < len(r.x); i++ {
			d, sq := r.distance(q, r.x[i])
			nb.consider(i, d, sq)
		}
		return
	}
	for i, row := range r.x {
		d, sq := r.distance(q, row)
		nb.consider(i, d, sq)
	}
}

// aggregate combines the gathered neighbours under the configured
// weighting.
func (r *Regressor) aggregate(nbrs []neighbour) float64 {
	switch r.cfg.Weights {
	case Uniform:
		var sum float64
		for _, n := range nbrs {
			sum += r.y[n.idx]
		}
		return sum / float64(len(nbrs))
	default: // Distance
		// An exact match dominates: return the mean of zero-distance
		// neighbours (scikit-learn behaviour).
		var exactSum float64
		exact := 0
		for _, n := range nbrs {
			if n.dist == 0 {
				exactSum += r.y[n.idx]
				exact++
			}
		}
		if exact > 0 {
			return exactSum / float64(exact)
		}
		var wSum, sum float64
		for _, n := range nbrs {
			w := 1 / n.dist
			wSum += w
			sum += w * r.y[n.idx]
		}
		return sum / wSum
	}
}

// predictInto answers one query reusing the caller's candidate buffer.
func (r *Regressor) predictInto(q []float64, nb *nearest) (float64, error) {
	if r.x == nil {
		return 0, ml.ErrNotFitted
	}
	if len(q) != len(r.x[0]) {
		return 0, fmt.Errorf("knn: query dim %d, want %d", len(q), len(r.x[0]))
	}
	nb.reset()
	r.gather(q, nb)
	return r.aggregate(nb.nbrs), nil
}

// effectiveK clamps K to the training-set size.
func (r *Regressor) effectiveK() int {
	k := r.cfg.K
	if k > len(r.x) {
		k = len(r.x)
	}
	return k
}

// Predict implements ml.Estimator.
func (r *Regressor) Predict(q []float64) (float64, error) {
	if r.x == nil {
		return 0, ml.ErrNotFitted
	}
	return r.predictInto(q, newNearest(r.effectiveK()))
}

// PredictBatch implements ml.BatchPredictor: one candidate buffer is
// reused across the whole batch, amortising per-query allocation on the
// REM rasterisation path.
func (r *Regressor) PredictBatch(x [][]float64) ([]float64, error) {
	if r.x == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([]float64, len(x))
	nb := newNearest(r.effectiveK())
	for i, q := range x {
		v, err := r.predictInto(q, nb)
		if err != nil {
			return nil, fmt.Errorf("knn: predicting row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
