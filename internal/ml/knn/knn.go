// Package knn implements the k-nearest-neighbour regressors of the paper's
// §III-B: a Minkowski-metric kNN with uniform or distance weighting over
// x/y/z + one-hot-MAC features (including the scaled-one-hot variant that
// wins Figure 8), and the per-MAC ensemble alternative that fits one
// xyz-only regressor per MAC address.
//
// Euclidean (p=2) queries are served by a KD-tree spatial index with
// per-key subtrees for the one-hot-MAC layout (see kdtree.go); other
// metrics use the original brute-force scan. Both backends rank neighbours
// by the same canonical (distance, training-index) order, so predictions
// are byte-identical whichever one answers. Predict and PredictBatch are
// safe for concurrent use once Fit has returned.
package knn

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Weighting selects how neighbours are combined.
type Weighting int

// Weighting schemes, mirroring scikit-learn's `weights` parameter.
const (
	// Uniform averages the k neighbours equally.
	Uniform Weighting = iota + 1
	// Distance weights each neighbour by 1/distance ("weights=distance",
	// the paper's tuned choice).
	Distance
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case Distance:
		return "distance"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Config parameterises a Regressor.
type Config struct {
	// K is the neighbour count (paper: 3 for the plain variant, 16 for the
	// scaled-one-hot variant).
	K int
	// Weights selects uniform or inverse-distance combination.
	Weights Weighting
	// MinkowskiP is the metric order; p=2 with metric=minkowski is the
	// Euclidean distance the paper's grid search selects.
	MinkowskiP float64
	// BruteForce disables the KD-tree index and forces the O(n) scan even
	// for p=2. Predictions are identical either way; the flag exists to
	// benchmark the index against its baseline.
	BruteForce bool
}

// PaperPlainConfig is the paper's tuned plain kNN: k=3, distance weights,
// Euclidean metric.
func PaperPlainConfig() Config {
	return Config{K: 3, Weights: Distance, MinkowskiP: 2}
}

// PaperScaledConfig is the paper's best estimator configuration: the one-hot
// MAC features are multiplied by 3 (done at feature-encoding time) and k=16.
func PaperScaledConfig() Config {
	return Config{K: 16, Weights: Distance, MinkowskiP: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("knn: k must be ≥1, got %d", c.K)
	}
	if c.Weights != Uniform && c.Weights != Distance {
		return fmt.Errorf("knn: invalid weighting %d", c.Weights)
	}
	if c.MinkowskiP <= 0 {
		return fmt.Errorf("knn: Minkowski p must be positive, got %g", c.MinkowskiP)
	}
	return nil
}

// Regressor is a kNN regressor. Fit stores the training set and, for the
// Euclidean metric, builds the KD-tree index; Predict queries it.
type Regressor struct {
	cfg   Config
	x     [][]float64
	y     []float64
	index *kdIndex
}

var (
	_ ml.Estimator      = (*Regressor)(nil)
	_ ml.Named          = (*Regressor)(nil)
	_ ml.BatchPredictor = (*Regressor)(nil)
)

// New builds a regressor with the given configuration.
func New(cfg Config) (*Regressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Regressor{cfg: cfg}, nil
}

// Name implements ml.Named.
func (r *Regressor) Name() string {
	return fmt.Sprintf("kNN (k=%d, %s, p=%g)", r.cfg.K, r.cfg.Weights, r.cfg.MinkowskiP)
}

// Fit implements ml.Estimator. The training data is copied.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	r.x = make([][]float64, len(x))
	for i, row := range x {
		r.x[i] = append([]float64(nil), row...)
	}
	r.y = append([]float64(nil), y...)
	r.index = nil
	if r.cfg.MinkowskiP == 2 && !r.cfg.BruteForce {
		r.index = buildIndex(r.x)
	}
	return nil
}

// distance computes the Minkowski distance of order p and, for p=2, the
// pre-sqrt squared distance used as the KD-tree pruning bound.
func (r *Regressor) distance(a, b []float64) (float64, float64) {
	p := r.cfg.MinkowskiP
	if p == 2 {
		return euclid(a, b)
	}
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	d := math.Pow(sum, 1/p)
	return d, d * d
}

// gather fills nb with the k nearest training points in canonical
// (dist, idx) order, via the index when one applies.
func (r *Regressor) gather(q []float64, nb *nearest) {
	if r.index != nil && r.index.search(q, nb) {
		return
	}
	for i, row := range r.x {
		d, sq := r.distance(q, row)
		nb.consider(i, d, sq)
	}
}

// aggregate combines the gathered neighbours under the configured
// weighting.
func (r *Regressor) aggregate(nbrs []neighbour) float64 {
	switch r.cfg.Weights {
	case Uniform:
		var sum float64
		for _, n := range nbrs {
			sum += r.y[n.idx]
		}
		return sum / float64(len(nbrs))
	default: // Distance
		// An exact match dominates: return the mean of zero-distance
		// neighbours (scikit-learn behaviour).
		var exactSum float64
		exact := 0
		for _, n := range nbrs {
			if n.dist == 0 {
				exactSum += r.y[n.idx]
				exact++
			}
		}
		if exact > 0 {
			return exactSum / float64(exact)
		}
		var wSum, sum float64
		for _, n := range nbrs {
			w := 1 / n.dist
			wSum += w
			sum += w * r.y[n.idx]
		}
		return sum / wSum
	}
}

// predictInto answers one query reusing the caller's candidate buffer.
func (r *Regressor) predictInto(q []float64, nb *nearest) (float64, error) {
	if r.x == nil {
		return 0, ml.ErrNotFitted
	}
	if len(q) != len(r.x[0]) {
		return 0, fmt.Errorf("knn: query dim %d, want %d", len(q), len(r.x[0]))
	}
	nb.reset()
	r.gather(q, nb)
	return r.aggregate(nb.nbrs), nil
}

// effectiveK clamps K to the training-set size.
func (r *Regressor) effectiveK() int {
	k := r.cfg.K
	if k > len(r.x) {
		k = len(r.x)
	}
	return k
}

// Predict implements ml.Estimator.
func (r *Regressor) Predict(q []float64) (float64, error) {
	if r.x == nil {
		return 0, ml.ErrNotFitted
	}
	return r.predictInto(q, newNearest(r.effectiveK()))
}

// PredictBatch implements ml.BatchPredictor: one candidate buffer is
// reused across the whole batch, amortising per-query allocation on the
// REM rasterisation path.
func (r *Regressor) PredictBatch(x [][]float64) ([]float64, error) {
	if r.x == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([]float64, len(x))
	nb := newNearest(r.effectiveK())
	for i, q := range x {
		v, err := r.predictInto(q, nb)
		if err != nil {
			return nil, fmt.Errorf("knn: predicting row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
