// Package knn implements the k-nearest-neighbour regressors of the paper's
// §III-B: a Minkowski-metric kNN with uniform or distance weighting over
// x/y/z + one-hot-MAC features (including the scaled-one-hot variant that
// wins Figure 8), and the per-MAC ensemble alternative that fits one
// xyz-only regressor per MAC address.
package knn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// Weighting selects how neighbours are combined.
type Weighting int

// Weighting schemes, mirroring scikit-learn's `weights` parameter.
const (
	// Uniform averages the k neighbours equally.
	Uniform Weighting = iota + 1
	// Distance weights each neighbour by 1/distance ("weights=distance",
	// the paper's tuned choice).
	Distance
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case Distance:
		return "distance"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Config parameterises a Regressor.
type Config struct {
	// K is the neighbour count (paper: 3 for the plain variant, 16 for the
	// scaled-one-hot variant).
	K int
	// Weights selects uniform or inverse-distance combination.
	Weights Weighting
	// MinkowskiP is the metric order; p=2 with metric=minkowski is the
	// Euclidean distance the paper's grid search selects.
	MinkowskiP float64
}

// PaperPlainConfig is the paper's tuned plain kNN: k=3, distance weights,
// Euclidean metric.
func PaperPlainConfig() Config {
	return Config{K: 3, Weights: Distance, MinkowskiP: 2}
}

// PaperScaledConfig is the paper's best estimator configuration: the one-hot
// MAC features are multiplied by 3 (done at feature-encoding time) and k=16.
func PaperScaledConfig() Config {
	return Config{K: 16, Weights: Distance, MinkowskiP: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("knn: k must be ≥1, got %d", c.K)
	}
	if c.Weights != Uniform && c.Weights != Distance {
		return fmt.Errorf("knn: invalid weighting %d", c.Weights)
	}
	if c.MinkowskiP <= 0 {
		return fmt.Errorf("knn: Minkowski p must be positive, got %g", c.MinkowskiP)
	}
	return nil
}

// Regressor is a brute-force kNN regressor. Fit stores the training set;
// Predict scans it, which at the paper's dataset scale (≈2.5k samples) is
// faster than building an index.
type Regressor struct {
	cfg Config
	x   [][]float64
	y   []float64
}

var (
	_ ml.Estimator = (*Regressor)(nil)
	_ ml.Named     = (*Regressor)(nil)
)

// New builds a regressor with the given configuration.
func New(cfg Config) (*Regressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Regressor{cfg: cfg}, nil
}

// Name implements ml.Named.
func (r *Regressor) Name() string {
	return fmt.Sprintf("kNN (k=%d, %s, p=%g)", r.cfg.K, r.cfg.Weights, r.cfg.MinkowskiP)
}

// Fit implements ml.Estimator. The training data is copied.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	r.x = make([][]float64, len(x))
	for i, row := range x {
		r.x[i] = append([]float64(nil), row...)
	}
	r.y = append([]float64(nil), y...)
	return nil
}

// distance computes the Minkowski distance of order p.
func (r *Regressor) distance(a, b []float64) float64 {
	p := r.cfg.MinkowskiP
	if p == 2 {
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// neighbour pairs a training index with its distance to the query.
type neighbour struct {
	idx  int
	dist float64
}

// Predict implements ml.Estimator.
func (r *Regressor) Predict(q []float64) (float64, error) {
	if r.x == nil {
		return 0, ml.ErrNotFitted
	}
	if len(q) != len(r.x[0]) {
		return 0, fmt.Errorf("knn: query dim %d, want %d", len(q), len(r.x[0]))
	}
	k := r.cfg.K
	if k > len(r.x) {
		k = len(r.x)
	}
	// Partial selection of the k smallest distances.
	nbrs := make([]neighbour, 0, k+1)
	worst := math.Inf(1)
	for i, row := range r.x {
		d := r.distance(q, row)
		if len(nbrs) < k {
			nbrs = append(nbrs, neighbour{i, d})
			if len(nbrs) == k {
				sort.Slice(nbrs, func(a, b int) bool { return nbrs[a].dist < nbrs[b].dist })
				worst = nbrs[k-1].dist
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Insert in order, dropping the current worst.
		pos := sort.Search(k, func(j int) bool { return nbrs[j].dist > d })
		copy(nbrs[pos+1:], nbrs[pos:k-1])
		nbrs[pos] = neighbour{i, d}
		worst = nbrs[k-1].dist
	}
	if len(nbrs) < k {
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a].dist < nbrs[b].dist })
	}

	switch r.cfg.Weights {
	case Uniform:
		var sum float64
		for _, n := range nbrs {
			sum += r.y[n.idx]
		}
		return sum / float64(len(nbrs)), nil
	default: // Distance
		// An exact match dominates: return the mean of zero-distance
		// neighbours (scikit-learn behaviour).
		var exactSum float64
		exact := 0
		for _, n := range nbrs {
			if n.dist == 0 {
				exactSum += r.y[n.idx]
				exact++
			}
		}
		if exact > 0 {
			return exactSum / float64(exact), nil
		}
		var wSum, sum float64
		for _, n := range nbrs {
			w := 1 / n.dist
			wSum += w
			sum += w * r.y[n.idx]
		}
		return sum / wSum, nil
	}
}
