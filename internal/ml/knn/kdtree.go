package knn

import (
	"math"
	"sort"
)

// This file implements the spatial index behind Euclidean (p=2) neighbour
// queries: a KD-tree with median splits on the axis of widest spread, plus
// a per-key forest for the one-hot-MAC feature layout. The index is an
// exact drop-in for the brute-force scan — both paths rank neighbours by
// the canonical (distance, training-index) order and compute distances
// with the same floating-point operation sequence, so predictions are
// byte-identical whichever backend answers the query.

// neighbour pairs a training index with its distance to the query. sq is
// the pre-sqrt squared distance, kept for KD-tree pruning.
type neighbour struct {
	idx  int
	dist float64
	sq   float64
}

// nearest accumulates the k best candidates in canonical (dist, idx)
// ascending order. It is a plain insertion list: k is small (the paper
// uses 3 and 16), so ordered insertion beats heap bookkeeping.
type nearest struct {
	k    int
	nbrs []neighbour
}

func newNearest(k int) *nearest {
	return &nearest{k: k, nbrs: make([]neighbour, 0, k)}
}

// reset clears the list for reuse across queries in a batch.
func (nb *nearest) reset() { nb.nbrs = nb.nbrs[:0] }

func (nb *nearest) full() bool { return len(nb.nbrs) == nb.k }

// worstSq returns the pruning bound: the squared distance of the current
// k-th candidate, or +Inf while the list is not yet full.
func (nb *nearest) worstSq() float64 {
	if !nb.full() {
		return math.Inf(1)
	}
	return nb.nbrs[len(nb.nbrs)-1].sq
}

// consider offers a candidate; it is inserted iff it precedes the current
// k-th candidate in (dist, idx) order.
func (nb *nearest) consider(idx int, dist, sq float64) {
	if nb.full() {
		last := nb.nbrs[len(nb.nbrs)-1]
		if dist > last.dist || (dist == last.dist && idx > last.idx) {
			return
		}
	}
	pos := sort.Search(len(nb.nbrs), func(j int) bool {
		n := nb.nbrs[j]
		return n.dist > dist || (n.dist == dist && n.idx > idx)
	})
	if !nb.full() {
		nb.nbrs = append(nb.nbrs, neighbour{})
	}
	copy(nb.nbrs[pos+1:], nb.nbrs[pos:])
	nb.nbrs[pos] = neighbour{idx: idx, dist: dist, sq: sq}
}

// distFunc computes (dist, squaredDist) between the query and one stored
// point. Implementations must mirror the brute-force accumulation order so
// results stay byte-identical.
type distFunc func(p []float64) (dist, sq float64)

// euclid accumulates squared differences in feature order and returns
// (sqrt(sum), sum) — the exact operation sequence of the brute-force p=2
// scan.
func euclid(a, b []float64) (float64, float64) {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), sum
}

// kdNode is one tree node. Leaves hold a contiguous range of the order
// slice; internal nodes split on axis at value split.
type kdNode struct {
	axis        int
	split       float64
	left, right int32 // node indices; -1 on leaves
	lo, hi      int32 // leaf point range into kdTree.order
}

// kdTree is a static KD-tree over a point set. pts holds the coordinate
// views used for splitting (3-dim xyz for per-key subtrees, full feature
// vectors otherwise); idx maps tree-local positions to training indices.
type kdTree struct {
	pts   [][]float64
	idx   []int
	order []int // permutation of tree-local positions, grouped by leaf
	nodes []kdNode
}

// kdLeafSize is the maximum leaf population; below this a linear scan of
// the leaf beats further splitting.
const kdLeafSize = 16

// newKDTree builds a tree over the given points. idx[i] is the training
// index of pts[i]; both slices are retained, not copied.
func newKDTree(pts [][]float64, idx []int) *kdTree {
	t := &kdTree{pts: pts, idx: idx, order: make([]int, len(pts))}
	for i := range t.order {
		t.order[i] = i
	}
	if len(pts) > 0 {
		t.build(0, len(pts))
	}
	return t
}

// build recursively splits order[lo:hi] and returns the node index.
func (t *kdTree) build(lo, hi int) int32 {
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{left: -1, right: -1, lo: int32(lo), hi: int32(hi)})
	if hi-lo <= kdLeafSize {
		return ni
	}
	axis, spread := t.widestAxis(lo, hi)
	if spread == 0 {
		// All points coincide on every axis: keep as a leaf.
		return ni
	}
	seg := t.order[lo:hi]
	sort.Slice(seg, func(a, b int) bool {
		pa, pb := t.pts[seg[a]][axis], t.pts[seg[b]][axis]
		if pa != pb {
			return pa < pb
		}
		return seg[a] < seg[b]
	})
	mid := lo + (hi-lo)/2
	split := t.pts[t.order[mid]][axis]
	t.nodes[ni].axis = axis
	t.nodes[ni].split = split
	left := t.build(lo, mid)
	right := t.build(mid, hi)
	t.nodes[ni].left = left
	t.nodes[ni].right = right
	return ni
}

// widestAxis returns the axis with the largest coordinate range over
// order[lo:hi] and that range.
func (t *kdTree) widestAxis(lo, hi int) (int, float64) {
	dims := len(t.pts[t.order[lo]])
	bestAxis, bestSpread := 0, 0.0
	for a := 0; a < dims; a++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, oi := range t.order[lo:hi] {
			v := t.pts[oi][a]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if s := max - min; s > bestSpread {
			bestAxis, bestSpread = a, s
		}
	}
	return bestAxis, bestSpread
}

// search offers every point within pruning reach to nb. q is in the
// tree's coordinate space; extraSq is a constant added to every squared
// distance in this tree (the cross-key one-hot offset), used only for
// pruning — dist itself comes from distFn.
func (t *kdTree) search(q []float64, extraSq float64, nb *nearest, distFn distFunc) {
	if len(t.pts) == 0 {
		return
	}
	t.searchNode(0, q, extraSq, nb, distFn)
}

func (t *kdTree) searchNode(ni int32, q []float64, extraSq float64, nb *nearest, distFn distFunc) {
	n := &t.nodes[ni]
	if n.left < 0 {
		for _, oi := range t.order[n.lo:n.hi] {
			d, sq := distFn(t.pts[oi])
			nb.consider(t.idx[oi], d, sq)
		}
		return
	}
	near, far := n.left, n.right
	if q[n.axis] > n.split {
		near, far = far, near
	}
	t.searchNode(near, q, extraSq, nb, distFn)
	ad := q[n.axis] - n.split
	if adSq := ad * ad; adSq+extraSq <= nb.worstSq() {
		t.searchNode(far, q, extraSq, nb, distFn)
	}
}

// kdIndex is the Euclidean neighbour index of a Regressor. For the
// one-hot-MAC feature layout (x, y, z, one-hot block) it keeps one 3-D
// subtree per hot key: same-key neighbours differ only in xyz, and
// cross-key neighbours add a constant 2·scale² offset, so whole per-key
// subtrees prune in one comparison. For any other layout it keeps a single
// full-dimension tree.
type kdIndex struct {
	dims  int
	scale float64         // one-hot magnitude; 0 ⇒ full-dimension tree
	keys  []int           // hot keys in ascending order
	byKey map[int]*kdTree // per-key xyz subtrees
	// groups holds each key's training indices in insertion order — the
	// member lists incremental merges rebuild subtrees from.
	groups map[int][]int
	tree   *kdTree // full-dimension fallback layout
}

// buildIndex constructs the index for the stored training set, or nil when
// no index applies (the caller then scans).
func buildIndex(x [][]float64) *kdIndex {
	if len(x) == 0 {
		return nil
	}
	dims := len(x[0])
	idx := &kdIndex{dims: dims}
	if scale, ok := oneHotScale(x); ok {
		idx.scale = scale
		idx.groups = map[int][]int{}
		for i, row := range x {
			h := hotIndex(row, oneHotOffset)
			idx.groups[h] = append(idx.groups[h], i)
		}
		idx.byKey = make(map[int]*kdTree, len(idx.groups))
		for h := range idx.groups {
			idx.rebuildKey(x, h)
			idx.keys = append(idx.keys, h)
		}
		sort.Ints(idx.keys)
		return idx
	}
	pts := make([][]float64, len(x))
	ids := make([]int, len(x))
	for i, row := range x {
		pts[i] = row
		ids[i] = i
	}
	idx.tree = newKDTree(pts, ids)
	return idx
}

// rebuildKey rebuilds one key's subtree from its member list. Members
// are in insertion order, so an incrementally rebuilt subtree is
// identical to the one a from-scratch buildIndex over the cumulative
// rows produces.
func (ix *kdIndex) rebuildKey(x [][]float64, h int) {
	members := ix.groups[h]
	pts := make([][]float64, len(members))
	for j, m := range members {
		pts[j] = x[m][:oneHotOffset]
	}
	ix.byKey[h] = newKDTree(pts, members)
}

// addRows merges rows x[from:] into the index incrementally, rebuilding
// only the per-key subtrees that gained members (the cheap per-MAC merge
// the insert log is buffered for). It reports false — mutating nothing —
// when any new row does not fit the index's one-hot layout; the caller
// then rebuilds the index from scratch.
func (ix *kdIndex) addRows(x [][]float64, from int) bool {
	if ix.tree != nil {
		// Full-dimension fallback layout: no per-key structure to merge
		// into.
		return false
	}
	hs := make([]int, len(x)-from)
	for i := from; i < len(x); i++ {
		row := x[i]
		if len(row) != ix.dims {
			return false
		}
		h := hotIndex(row, oneHotOffset)
		if h < 0 || row[oneHotOffset+h] != ix.scale {
			return false
		}
		hs[i-from] = h
	}
	dirty := map[int]bool{}
	for i, h := range hs {
		ix.groups[h] = append(ix.groups[h], from+i)
		dirty[h] = true
	}
	for h := range dirty {
		if _, known := ix.byKey[h]; !known {
			pos := sort.SearchInts(ix.keys, h)
			ix.keys = append(ix.keys, 0)
			copy(ix.keys[pos+1:], ix.keys[pos:])
			ix.keys[pos] = h
		}
		ix.rebuildKey(x, h)
	}
	return true
}

// oneHotOffset is where the one-hot block starts in the paper's feature
// layout (x, y, z, one-hot MAC).
const oneHotOffset = 3

// oneHotScale reports whether every row is xyz followed by exactly one hot
// entry of a common non-zero magnitude, returning that magnitude.
func oneHotScale(x [][]float64) (float64, bool) {
	if len(x[0]) <= oneHotOffset {
		return 0, false
	}
	scale := 0.0
	for _, row := range x {
		h := hotIndex(row, oneHotOffset)
		if h < 0 {
			return 0, false
		}
		v := row[oneHotOffset+h]
		if scale == 0 {
			scale = v
		}
		if v != scale {
			return 0, false
		}
	}
	return scale, scale != 0
}

// search fills nb with the k nearest training points to q in canonical
// (dist, idx) order. It reports false when the query does not fit the
// index's layout (the caller must fall back to the scan).
func (ix *kdIndex) search(q []float64, nb *nearest) bool {
	if ix.tree != nil {
		ix.tree.search(q, 0, nb, func(p []float64) (float64, float64) { return euclid(q, p) })
		return true
	}
	h := hotIndex(q, oneHotOffset)
	if h < 0 || q[oneHotOffset+h] != ix.scale {
		return false
	}
	qxyz := q[:oneHotOffset]
	s2 := ix.scale * ix.scale
	sameKey := func(p []float64) (float64, float64) {
		return euclid(qxyz, p)
	}
	crossKey := func(p []float64) (float64, float64) {
		var sum float64
		for i := range qxyz {
			d := qxyz[i] - p[i]
			sum += d * d
		}
		sum += s2
		sum += s2
		return math.Sqrt(sum), sum
	}
	// Same-key subtree first: it owns the closest candidates and tightens
	// the bound before any cross-key subtree is visited.
	if own, ok := ix.byKey[h]; ok {
		own.search(qxyz, 0, nb, sameKey)
	}
	crossSq := s2 + s2
	for _, key := range ix.keys {
		if key == h {
			continue
		}
		if crossSq > nb.worstSq() {
			break // every remaining subtree is at least this far away
		}
		ix.byKey[key].search(qxyz, crossSq, nb, crossKey)
	}
	return true
}
