package knn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/simrand"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{K: 0, Weights: Uniform, MinkowskiP: 2}).Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	if err := (Config{K: 3, Weights: 0, MinkowskiP: 2}).Validate(); err == nil {
		t.Error("invalid weighting accepted")
	}
	if err := (Config{K: 3, Weights: Uniform, MinkowskiP: 0}).Validate(); err == nil {
		t.Error("p=0 accepted")
	}
	if err := PaperPlainConfig().Validate(); err != nil {
		t.Errorf("paper plain config invalid: %v", err)
	}
	if err := PaperScaledConfig().Validate(); err != nil {
		t.Errorf("paper scaled config invalid: %v", err)
	}
	if PaperPlainConfig().K != 3 || PaperScaledConfig().K != 16 {
		t.Error("paper configs do not match §III-B (k=3 and k=16)")
	}
}

func TestWeightingString(t *testing.T) {
	if Uniform.String() != "uniform" || Distance.String() != "distance" {
		t.Error("weighting strings wrong")
	}
	if Weighting(9).String() == "" {
		t.Error("unknown weighting empty")
	}
}

func TestUnfittedPredict(t *testing.T) {
	r, err := New(PaperPlainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
}

func TestExactNeighborK1(t *testing.T) {
	r, _ := New(Config{K: 1, Weights: Uniform, MinkowskiP: 2})
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	y := []float64{10, 20, 30}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{0.9, 0.1})
	if err != nil || got != 20 {
		t.Errorf("nearest = %v, want 20", got)
	}
}

func TestUniformAveraging(t *testing.T) {
	r, _ := New(Config{K: 2, Weights: Uniform, MinkowskiP: 2})
	x := [][]float64{{0}, {1}, {100}}
	y := []float64{10, 20, 1000}
	_ = r.Fit(x, y)
	got, _ := r.Predict([]float64{0.5})
	if got != 15 {
		t.Errorf("uniform k=2 = %v, want 15", got)
	}
}

func TestDistanceWeighting(t *testing.T) {
	r, _ := New(Config{K: 2, Weights: Distance, MinkowskiP: 2})
	x := [][]float64{{0}, {3}}
	y := []float64{0, 30}
	_ = r.Fit(x, y)
	// Query at 1: weights 1/1 and 1/2 → (0·1 + 30·0.5)/1.5 = 10.
	got, _ := r.Predict([]float64{1})
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("distance-weighted = %v, want 10", got)
	}
}

func TestDistanceWeightingExactMatchDominates(t *testing.T) {
	r, _ := New(Config{K: 3, Weights: Distance, MinkowskiP: 2})
	x := [][]float64{{0}, {0}, {1}}
	y := []float64{5, 7, 100}
	_ = r.Fit(x, y)
	got, _ := r.Predict([]float64{0})
	if got != 6 {
		t.Errorf("exact-match prediction = %v, want 6 (mean of coincident points)", got)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	r, _ := New(Config{K: 50, Weights: Uniform, MinkowskiP: 2})
	x := [][]float64{{0}, {1}}
	y := []float64{10, 30}
	_ = r.Fit(x, y)
	got, err := r.Predict([]float64{0.5})
	if err != nil || got != 20 {
		t.Errorf("k>n prediction = %v, %v", got, err)
	}
}

func TestMinkowskiP1ManhattanDiffersFromEuclidean(t *testing.T) {
	x := [][]float64{{0, 0}, {1.5, 0}, {1, 1}}
	y := []float64{1, 2, 3}
	man, _ := New(Config{K: 1, Weights: Uniform, MinkowskiP: 1})
	euc, _ := New(Config{K: 1, Weights: Uniform, MinkowskiP: 2})
	_ = man.Fit(x, y)
	_ = euc.Fit(x, y)
	// Query (1.2, 0.9): Manhattan distance to (1.5,0)=1.2, to (1,1)=0.3;
	// Euclidean to (1.5,0)=0.949, to (1,1)=0.224 — both pick (1,1) here, so
	// craft a point where they disagree: (0.8, 0.75).
	q := []float64{0.8, 0.75}
	m, _ := man.Predict(q)
	e, _ := euc.Predict(q)
	if m == 0 || e == 0 {
		t.Fatal("predictions missing")
	}
	// At minimum both must return a training label.
	for _, v := range []float64{m, e} {
		if v != 1 && v != 2 && v != 3 {
			t.Errorf("prediction %v not a training label", v)
		}
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	r, _ := New(PaperPlainConfig())
	_ = r.Fit([][]float64{{1, 2}}, []float64{1})
	if _, err := r.Predict([]float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFitCopiesData(t *testing.T) {
	r, _ := New(Config{K: 1, Weights: Uniform, MinkowskiP: 2})
	x := [][]float64{{0}, {5}}
	y := []float64{1, 2}
	_ = r.Fit(x, y)
	x[0][0] = 100 // mutate caller data
	y[0] = 999
	got, _ := r.Predict([]float64{0.1})
	if got != 1 {
		t.Error("regressor aliases caller slices")
	}
}

func TestKNNBeatsMeanOnSpatialData(t *testing.T) {
	// RSS-like smooth function + noise: kNN must beat the global mean.
	rng := simrand.New(11)
	f := func(x, y float64) float64 { return -60 - 8*math.Hypot(x-2, y-1.5) }
	var trainX [][]float64
	var trainY []float64
	for i := 0; i < 300; i++ {
		x, y := rng.Range(0, 4), rng.Range(0, 3)
		trainX = append(trainX, []float64{x, y})
		trainY = append(trainY, f(x, y)+rng.Gauss(0, 1))
	}
	var testX [][]float64
	var testY []float64
	for i := 0; i < 100; i++ {
		x, y := rng.Range(0, 4), rng.Range(0, 3)
		testX = append(testX, []float64{x, y})
		testY = append(testY, f(x, y))
	}
	r, _ := New(PaperPlainConfig())
	rmse, err := ml.EvaluateRMSE(r, trainX, trainY, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range trainY {
		mean += v
	}
	mean /= float64(len(trainY))
	var meanRMSE float64
	for _, v := range testY {
		meanRMSE += (v - mean) * (v - mean)
	}
	meanRMSE = math.Sqrt(meanRMSE / float64(len(testY)))
	if rmse >= meanRMSE/2 {
		t.Errorf("kNN RMSE %v not well below mean-predictor RMSE %v", rmse, meanRMSE)
	}
}

func TestPerKeyRouting(t *testing.T) {
	p := &PerKey{Sub: Config{K: 1, Weights: Uniform, MinkowskiP: 2}, KeyOffset: 3}
	// Two keys at the same location with different values: routing must
	// separate them perfectly.
	x := [][]float64{
		{1, 1, 1, 1, 0}, {2, 2, 2, 1, 0},
		{1, 1, 1, 0, 1}, {2, 2, 2, 0, 1},
	}
	y := []float64{-50, -55, -90, -95}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict([]float64{1, 1, 1, 1, 0})
	if err != nil || got != -50 {
		t.Errorf("key-0 prediction = %v, want −50", got)
	}
	got, _ = p.Predict([]float64{1, 1, 1, 0, 1})
	if got != -90 {
		t.Errorf("key-1 prediction = %v, want −90", got)
	}
}

func TestPerKeyUnseenKeyFallsBack(t *testing.T) {
	p := &PerKey{Sub: Config{K: 1, Weights: Uniform, MinkowskiP: 2}, KeyOffset: 3}
	x := [][]float64{
		{1, 1, 1, 1, 0, 0},
		{2, 2, 2, 0, 1, 0},
	}
	y := []float64{-50, -90}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Key 2 never seen: prediction must still work (global fallback).
	got, err := p.Predict([]float64{1, 1, 1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != -50 && got != -90 {
		t.Errorf("fallback prediction = %v, want a training label", got)
	}
}

func TestPerKeyValidation(t *testing.T) {
	p := &PerKey{Sub: Config{K: 0}, KeyOffset: 3}
	if err := p.Fit([][]float64{{1, 1, 1, 1}}, []float64{1}); err == nil {
		t.Error("invalid sub-config accepted")
	}
	p = &PerKey{Sub: PaperPlainConfig(), KeyOffset: 2}
	if err := p.Fit([][]float64{{1, 1, 1, 1}}, []float64{1}); err == nil {
		t.Error("offset < 3 accepted")
	}
	p = &PerKey{Sub: PaperPlainConfig(), KeyOffset: 3}
	if _, err := p.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
	if err := p.Fit([][]float64{{1, 1, 1, 0}}, []float64{1}); err == nil {
		t.Error("row with no hot key accepted")
	}
}

func TestNames(t *testing.T) {
	r, _ := New(PaperPlainConfig())
	if r.Name() == "" {
		t.Error("empty regressor name")
	}
	p := &PerKey{Sub: PaperPlainConfig(), KeyOffset: 3}
	if p.Name() == "" {
		t.Error("empty per-key name")
	}
}
