package knn

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/simrand"
)

func knnStream(nKeys, n int, scale float64, rng *simrand.Source) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, 3+nKeys)
		row[0], row[1], row[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		row[3+rng.Intn(nKeys)] = scale
		x[i] = row
		y[i] = -60 - 8*math.Hypot(row[0]-2, row[1]-1.5) + rng.Gauss(0, 2)
	}
	return x, y
}

// predictAllBits fails the test at the first bitwise prediction mismatch.
func predictAllBits(t *testing.T, label string, a, b ml.Estimator, queries [][]float64) {
	t.Helper()
	for i, q := range queries {
		va, err := a.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Fatalf("%s: query %d: %x ≠ %x", label, i, va, vb)
		}
	}
}

// TestRegressorIncrementalIdentity is rule 7 for the shared-feature-space
// kNN: with the insert log still unmerged, after an auto-merge, and after
// an explicit Refit, predictions are byte-identical to a fresh regressor
// fitted on the cumulative rows — for both the scaled one-hot and a
// non-Euclidean (scan-only) configuration.
func TestRegressorIncrementalIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"scaled-kdtree", PaperScaledConfig()},
		{"plain-kdtree", PaperPlainConfig()},
		{"minkowski-scan", Config{K: 4, Weights: Uniform, MinkowskiP: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := simrand.New(555)
			const nKeys = 5
			x, y := knnStream(nKeys, 260, 3, rng)
			queries, _ := knnStream(nKeys, 64, 3, rng)
			cfg := tc.cfg
			cfg.MergeThreshold = 40
			inc, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.Fit(x[:120], y[:120]); err != nil {
				t.Fatal(err)
			}
			cuts := []int{120, 150, 210, 260} // 30 (logged), 60 (auto-merged), 50
			for c := 1; c < len(cuts); c++ {
				dirty, err := inc.Observe(x[cuts[c-1]:cuts[c]], y[cuts[c-1]:cuts[c]])
				if err != nil {
					t.Fatal(err)
				}
				if len(dirty) != 1 || dirty[0] != ml.DirtyAll {
					t.Fatalf("dirty = %v, want [DirtyAll]", dirty)
				}
				fresh, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Fit(x[:cuts[c]], y[:cuts[c]]); err != nil {
					t.Fatal(err)
				}
				predictAllBits(t, "pre-refit", inc, fresh, queries)
				if err := inc.Refit(); err != nil {
					t.Fatal(err)
				}
				predictAllBits(t, "post-refit", inc, fresh, queries)
			}
			if inc.indexed != 260 {
				t.Fatalf("after final refit, indexed = %d, want 260", inc.indexed)
			}
		})
	}
}

// TestRegressorMergeThreshold: the log merges exactly when it outgrows the
// threshold, and batch predictions match per-sample ones while the log is
// live.
func TestRegressorMergeThreshold(t *testing.T) {
	rng := simrand.New(9)
	x, y := knnStream(3, 90, 1, rng)
	cfg := PaperPlainConfig()
	cfg.MergeThreshold = 25
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(x[:50], y[:50]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Observe(x[50:70], y[50:70]); err != nil { // log = 20 ≤ 25
		t.Fatal(err)
	}
	if r.indexed != 50 {
		t.Fatalf("log of 20 merged early: indexed = %d", r.indexed)
	}
	queries, _ := knnStream(3, 32, 1, rng)
	batch, err := r.PredictBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		v, err := r.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v) != math.Float64bits(batch[i]) {
			t.Fatalf("query %d: batch %x ≠ per-sample %x with live insert log", i, batch[i], v)
		}
	}
	if _, err := r.Observe(x[70:90], y[70:90]); err != nil { // log = 40 > 25
		t.Fatal(err)
	}
	if r.indexed != 90 {
		t.Fatalf("log of 40 not merged: indexed = %d", r.indexed)
	}
}

// TestDerivedMergeThreshold: with MergeThreshold unset, the insert-log
// bound derives from the training-set size (≈√n, floored at
// MinMergeThreshold) and grows as the set does — and the derived bound
// changes only when the log merges, never a prediction bit (pinned by
// TestRegressorIncrementalIdentity, which sweeps merged and unmerged
// states).
func TestDerivedMergeThreshold(t *testing.T) {
	rng := simrand.New(31)
	x, y := knnStream(3, 1000, 1, rng)
	r, err := New(PaperPlainConfig()) // MergeThreshold unset
	if err != nil {
		t.Fatal(err)
	}
	// Tiny set: the floor applies.
	if err := r.Fit(x[:9], y[:9]); err != nil {
		t.Fatal(err)
	}
	if got := r.mergeThreshold(); got != MinMergeThreshold {
		t.Fatalf("threshold for n=9 is %d, want the %d floor", got, MinMergeThreshold)
	}
	if _, err := r.Observe(x[9:25], y[9:25]); err != nil { // log = 16 ≤ 16
		t.Fatal(err)
	}
	if r.indexed != 9 {
		t.Fatalf("log within the floor merged early: indexed = %d", r.indexed)
	}
	if _, err := r.Observe(x[25:26], y[25:26]); err != nil { // log = 17 > 16
		t.Fatal(err)
	}
	if r.indexed != 26 {
		t.Fatalf("log over the floor did not merge: indexed = %d", r.indexed)
	}
	// Large set: √n takes over and scales with the cumulative size.
	if err := r.Fit(x[:900], y[:900]); err != nil {
		t.Fatal(err)
	}
	if got := r.mergeThreshold(); got != 30 {
		t.Fatalf("threshold for n=900 is %d, want √900 = 30", got)
	}
	if _, err := r.Observe(x[900:930], y[900:930]); err != nil { // log = 30 ≤ 30
		t.Fatal(err)
	}
	if r.indexed != 900 {
		t.Fatalf("log within √n merged early: indexed = %d", r.indexed)
	}
	if _, err := r.Observe(x[930:932], y[930:932]); err != nil { // log = 32 > √932 ≈ 30.5
		t.Fatal(err)
	}
	if r.indexed != 932 {
		t.Fatalf("log over √n did not merge: indexed = %d", r.indexed)
	}
	// An explicit configuration still pins the bound exactly.
	cfg := PaperPlainConfig()
	cfg.MergeThreshold = 500
	pinned, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pinned.Fit(x[:900], y[:900]); err != nil {
		t.Fatal(err)
	}
	if got := pinned.mergeThreshold(); got != 500 {
		t.Fatalf("explicit threshold resolved to %d", got)
	}
}

// TestMergeRebuildsOnlyDirtySubtrees: an insert-log merge rebuilds the
// per-MAC subtrees that gained rows and leaves every other subtree's
// structure untouched (pointer-identical) — the cheap per-key merge the
// log is buffered for.
func TestMergeRebuildsOnlyDirtySubtrees(t *testing.T) {
	const nKeys = 4
	mk := func(key int, xv float64) []float64 {
		row := make([]float64, 3+nKeys)
		row[0] = xv
		row[3+key] = 1
		return row
	}
	var x [][]float64
	var y []float64
	for k := 0; k < nKeys; k++ {
		for i := 0; i < 4; i++ {
			x = append(x, mk(k, float64(i)))
			y = append(y, -50-float64(i))
		}
	}
	cfg := PaperPlainConfig()
	cfg.MergeThreshold = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	before := map[int]*kdTree{}
	for h, tr := range r.index.byKey {
		before[h] = tr
	}
	// Two rows for key 2 exceed the threshold and force a merge.
	if _, err := r.Observe([][]float64{mk(2, 9), mk(2, 10)}, []float64{-60, -61}); err != nil {
		t.Fatal(err)
	}
	if r.indexed != len(r.x) {
		t.Fatalf("merge did not run: indexed = %d of %d", r.indexed, len(r.x))
	}
	for h, tr := range before {
		got := r.index.byKey[h]
		if h == 2 {
			if got == tr {
				t.Fatal("dirty subtree not rebuilt")
			}
			continue
		}
		if got != tr {
			t.Fatalf("clean subtree %d rebuilt by the merge", h)
		}
	}
	// A row that breaks the one-hot layout degrades to a full rebuild —
	// and predictions still match a from-scratch fit (the index becomes
	// a full-dimension tree on both paths).
	odd := mk(1, 3)
	odd[3+1] = 2 // different scale
	if _, err := r.Observe([][]float64{odd, mk(0, 4)}, []float64{-70, -55}); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(r.x, r.y); err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{mk(0, 2.5), mk(1, 3.5), mk(2, 9.5), mk(3, 1.5)}
	predictAllBits(t, "degraded-layout", r, fresh, queries)
}

// TestPerKeyIncrementalIdentity is rule 7 for the per-MAC ensemble, the
// estimator with tight dirty sets.
func TestPerKeyIncrementalIdentity(t *testing.T) {
	rng := simrand.New(777)
	const nKeys = 4
	x, y := knnStream(nKeys, 200, 1, rng)
	queries, _ := knnStream(nKeys, 48, 1, rng)
	inc := &PerKey{Sub: PaperPlainConfig(), KeyOffset: 3}
	if err := inc.Fit(x[:100], y[:100]); err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][2]int{{100, 140}, {140, 200}} {
		if _, err := inc.Observe(x[cut[0]:cut[1]], y[cut[0]:cut[1]]); err != nil {
			t.Fatal(err)
		}
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
		fresh := &PerKey{Sub: PaperPlainConfig(), KeyOffset: 3}
		if err := fresh.Fit(x[:cut[1]], y[:cut[1]]); err != nil {
			t.Fatal(err)
		}
		predictAllBits(t, "per-key", inc, fresh, queries)
	}
}

// TestPerKeyDirtySet: a delta touching one key dirties that key alone once
// every key has its own sub-regressor, and new keys spawn sub-regressors.
func TestPerKeyDirtySet(t *testing.T) {
	const nKeys = 4
	mk := func(key int, xv float64) ([]float64, float64) {
		row := make([]float64, 3+nKeys)
		row[0] = xv
		row[3+key] = 1
		return row, -50 - xv
	}
	var xs [][]float64
	var ys []float64
	for k := 0; k < 3; k++ { // keys 0..2 fitted; key 3 unseen
		for i := 0; i < 3; i++ {
			x, y := mk(k, float64(i))
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	p := &PerKey{Sub: PaperPlainConfig(), KeyOffset: 3}
	if err := p.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	x0, y0 := mk(0, 9)
	dirty, err := p.Observe([][]float64{x0}, []float64{y0})
	if err != nil {
		t.Fatal(err)
	}
	// Key 3 still predicts through the global fallback, which moved.
	if want := []int{0, 3}; len(dirty) != 2 || dirty[0] != want[0] || dirty[1] != want[1] {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	x3, y3 := mk(3, 1)
	dirty, err = p.Observe([][]float64{x3}, []float64{y3})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("dirty = %v, want [3]", dirty)
	}
	if p.subs[3] == nil {
		t.Fatal("no sub-regressor spawned for the new key")
	}
	x0b, y0b := mk(0, 5)
	dirty, err = p.Observe([][]float64{x0b}, []float64{y0b})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0] != 0 {
		t.Fatalf("dirty with full coverage = %v, want [0]", dirty)
	}
}
