package ml

import (
	"errors"
	"math"
	"testing"

	"repro/internal/simrand"
)

// constEstimator predicts a fixed value; linEstimator fits nothing but
// echoes the first feature. Both are test doubles.
type constEstimator struct {
	v      float64
	fitted bool
}

func (c *constEstimator) Fit(x [][]float64, y []float64) error {
	if err := ValidateTrainingData(x, y); err != nil {
		return err
	}
	c.fitted = true
	return nil
}
func (c *constEstimator) Predict(_ []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	return c.v, nil
}

func TestValidateTrainingData(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	if err := ValidateTrainingData(good, []float64{1, 2}); err != nil {
		t.Errorf("valid data rejected: %v", err)
	}
	if err := ValidateTrainingData(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if err := ValidateTrainingData(good, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := ValidateTrainingData([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged features accepted")
	}
	if err := ValidateTrainingData([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-dim features accepted")
	}
}

func TestRMSEKnownValues(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("perfect RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{2, 2}, []float64{0, 0})
	if err != nil || got != 2 {
		t.Errorf("RMSE = %v, want 2", got)
	}
	got, err = RMSE([]float64{3, 0}, []float64{0, 0})
	if err != nil || math.Abs(got-3/math.Sqrt2) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, 3/math.Sqrt2)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty slices accepted")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil || got != 1 {
		t.Errorf("MAE = %v, %v", got, err)
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("mismatched MAE accepted")
	}
}

func TestR2(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	perfect, err := R2(truth, truth)
	if err != nil || math.Abs(perfect-1) > 1e-12 {
		t.Errorf("perfect R2 = %v, %v", perfect, err)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	zero, err := R2(meanPred, truth)
	if err != nil || math.Abs(zero) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v, want 0", zero)
	}
	if _, err := R2([]float64{1, 2}, []float64{5, 5}); err == nil {
		t.Error("constant truth accepted")
	}
}

func TestPredictAll(t *testing.T) {
	e := &constEstimator{v: 7}
	if _, err := PredictAll(e, [][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted PredictAll error = %v", err)
	}
	_ = e.Fit([][]float64{{1}}, []float64{1})
	out, err := PredictAll(e, [][]float64{{1}, {2}, {3}})
	if err != nil || len(out) != 3 || out[0] != 7 {
		t.Errorf("PredictAll = %v, %v", out, err)
	}
}

func TestEvaluateRMSE(t *testing.T) {
	e := &constEstimator{v: 0}
	rmse, err := EvaluateRMSE(e,
		[][]float64{{1}, {2}}, []float64{0, 0},
		[][]float64{{3}, {4}}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
}

func TestCrossValidateRMSE(t *testing.T) {
	rng := simrand.New(1)
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = 5 // constant target
	}
	score, err := CrossValidateRMSE(func() Estimator { return &constEstimator{v: 5} }, x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Errorf("CV RMSE = %v for a perfect constant predictor", score)
	}
	if _, err := CrossValidateRMSE(func() Estimator { return &constEstimator{} }, x, y, 1, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidateRMSE(func() Estimator { return &constEstimator{} }, x, y, 51, rng); err == nil {
		t.Error("k>n accepted")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(map[string][]float64{
		"k": {1, 3, 16},
		"p": {1, 2},
	})
	if len(g) != 6 {
		t.Fatalf("grid size = %d, want 6", len(g))
	}
	seen := map[[2]float64]bool{}
	for _, p := range g {
		key := [2]float64{p["k"], p["p"]}
		if seen[key] {
			t.Fatalf("duplicate grid point %v", p)
		}
		seen[key] = true
	}
}

func TestGridEmptySpace(t *testing.T) {
	g := Grid(nil)
	if len(g) != 1 || len(g[0]) != 0 {
		t.Errorf("empty-space grid = %v", g)
	}
}

func TestGridSearchRanksByRMSE(t *testing.T) {
	rng := simrand.New(3)
	// Targets are constant 5; the candidate with v closest to 5 must win.
	x := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = 5
	}
	factory := func(p Params) (Estimator, error) {
		return &constEstimator{v: p["v"]}, nil
	}
	results, err := GridSearch(factory, Grid(map[string][]float64{"v": {0, 4, 5, 9}}), x, y, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Params["v"] != 5 {
		t.Errorf("best params = %v, want v=5", results[0].Params)
	}
	for i := 1; i < len(results); i++ {
		if results[i].RMSE < results[i-1].RMSE {
			t.Error("results not sorted by RMSE")
		}
	}
}

func TestGridSearchValidation(t *testing.T) {
	rng := simrand.New(4)
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	factory := func(Params) (Estimator, error) { return &constEstimator{}, nil }
	if _, err := GridSearch(factory, nil, x, y, 0.25, rng); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := GridSearch(factory, []Params{{}}, x, y, 0, rng); err == nil {
		t.Error("zero validation fraction accepted")
	}
	if _, err := GridSearch(factory, []Params{{}}, nil, nil, 0.25, rng); err == nil {
		t.Error("empty training data accepted")
	}
}
