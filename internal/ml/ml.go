// Package ml defines the estimator abstraction of the paper's toolchain —
// any regressor that learns RSS as a function of features — together with
// the evaluation metrics (RMSE, MAE, R²), k-fold cross-validation and the
// grid-search harness used to tune hyper-parameters (§III-B).
package ml

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/simrand"
)

// Estimator is a trainable regressor. Implementations live in the baseline,
// knn and nn sub-packages. Predict must be safe for concurrent use once
// Fit has returned — the REM rasteriser fans queries out across a worker
// pool against a single fitted estimator.
type Estimator interface {
	// Fit trains on the design matrix x and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) (float64, error)
}

// BatchPredictor is implemented by estimators with an amortised batch
// inference path. PredictBatch must return exactly the values Predict
// would return row by row (the determinism contract lets callers switch
// freely between the two), and must be safe for concurrent use.
type BatchPredictor interface {
	// PredictBatch returns the estimate for every feature row.
	PredictBatch(x [][]float64) ([]float64, error)
}

// Named is implemented by estimators that can label themselves for reports.
type Named interface {
	// Name returns a short display label.
	Name() string
}

// ErrNotFitted is returned by Predict before Fit.
var ErrNotFitted = errors.New("ml: estimator not fitted")

// ValidateTrainingData performs the shape checks every estimator needs.
func ValidateTrainingData(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return errors.New("ml: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("ml: %d feature rows but %d targets", len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return errors.New("ml: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	return nil
}

// PredictAll evaluates the estimator on every row, taking the amortised
// batch path when the estimator provides one.
func PredictAll(e Estimator, x [][]float64) ([]float64, error) {
	if bp, ok := e.(BatchPredictor); ok {
		return bp.PredictBatch(x)
	}
	out := make([]float64, len(x))
	for i, row := range x {
		p, err := e.Predict(row)
		if err != nil {
			return nil, fmt.Errorf("ml: predicting row %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// RMSE returns the root-mean-square error between predictions and truth —
// the accuracy measure of the paper's Figure 8.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: RMSE needs equal non-empty slices, got %d and %d", len(pred), len(truth))
	}
	var sum float64
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: MAE needs equal non-empty slices, got %d and %d", len(pred), len(truth))
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// R2 returns the coefficient of determination.
func R2(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: R2 needs equal non-empty slices, got %d and %d", len(pred), len(truth))
	}
	var mean float64
	for _, t := range truth {
		mean += t
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - mean) * (truth[i] - mean)
	}
	if ssTot == 0 {
		return 0, errors.New("ml: R2 undefined for constant truth")
	}
	return 1 - ssRes/ssTot, nil
}

// EvaluateRMSE fits the estimator on the training split and scores it on the
// test split.
func EvaluateRMSE(e Estimator, trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) (float64, error) {
	if err := e.Fit(trainX, trainY); err != nil {
		return 0, err
	}
	pred, err := PredictAll(e, testX)
	if err != nil {
		return 0, err
	}
	return RMSE(pred, testY)
}

// CrossValidateRMSE runs k-fold cross-validation and returns the mean fold
// RMSE. The factory builds a fresh estimator per fold. Folds are evaluated
// on the shared worker pool; see CrossValidateRMSEWorkers.
func CrossValidateRMSE(factory func() Estimator, x [][]float64, y []float64, k int, rng *simrand.Source) (float64, error) {
	return CrossValidateRMSEWorkers(factory, x, y, k, rng, 0)
}

// CrossValidateRMSEWorkers is CrossValidateRMSE with an explicit bound on
// concurrent fold evaluations (≤ 0 means GOMAXPROCS). The permutation is
// drawn before any fold runs and fold scores are summed in fold order, so
// the result is byte-identical for every worker count.
func CrossValidateRMSEWorkers(factory func() Estimator, x [][]float64, y []float64, k int, rng *simrand.Source, workers int) (float64, error) {
	if err := ValidateTrainingData(x, y); err != nil {
		return 0, err
	}
	if k < 2 || k > len(x) {
		return 0, fmt.Errorf("ml: fold count %d outside [2, %d]", k, len(x))
	}
	perm := rng.Perm(len(x))
	total, err := parallel.MapReduce(k, workers, func(fold int) (float64, error) {
		var trX, teX [][]float64
		var trY, teY []float64
		for i, idx := range perm {
			if i%k == fold {
				teX = append(teX, x[idx])
				teY = append(teY, y[idx])
			} else {
				trX = append(trX, x[idx])
				trY = append(trY, y[idx])
			}
		}
		rmse, err := EvaluateRMSE(factory(), trX, trY, teX, teY)
		if err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		return rmse, nil
	}, 0.0, func(acc, v float64) float64 { return acc + v })
	if err != nil {
		return 0, err
	}
	return total / float64(k), nil
}
