package nn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/simrand"
)

func TestConfigValidation(t *testing.T) {
	good := PaperConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	c := good
	c.Hidden = []LayerSpec{{Units: 0, Activation: Sigmoid}}
	if err := c.Validate(); err == nil {
		t.Error("zero-unit layer accepted")
	}
	c = good
	c.LearningRate = 0
	if err := c.Validate(); err == nil {
		t.Error("zero learning rate accepted")
	}
	c = good
	c.Epochs = 0
	if err := c.Validate(); err == nil {
		t.Error("zero epochs accepted")
	}
	c = good
	c.Optimizer = 0
	if err := c.Validate(); err == nil {
		t.Error("invalid optimizer accepted")
	}
	c = good
	c.BatchSize = 0
	if err := c.Validate(); err == nil {
		t.Error("zero batch accepted")
	}
	c = good
	c.OutputActivation = Activation(99)
	if err := c.Validate(); err == nil {
		t.Error("invalid output activation accepted")
	}
}

func TestPaperConfigTopology(t *testing.T) {
	c := PaperConfig(1)
	if len(c.Hidden) != 1 || c.Hidden[0].Units != 16 || c.Hidden[0].Activation != Sigmoid {
		t.Errorf("paper topology = %+v, want one 16-node sigmoid layer", c.Hidden)
	}
	if c.Optimizer != Adam || c.OutputActivation != Linear || !c.NormalizeTargets {
		t.Error("paper config must use Adam, linear output and normalised targets")
	}
}

func TestActivations(t *testing.T) {
	if got := Sigmoid.apply(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := ReLU.apply(-3); got != 0 {
		t.Errorf("relu(-3) = %v", got)
	}
	if got := ReLU.apply(3); got != 3 {
		t.Errorf("relu(3) = %v", got)
	}
	if got := Tanh.apply(0); got != 0 {
		t.Errorf("tanh(0) = %v", got)
	}
	if got := Linear.apply(1.5); got != 1.5 {
		t.Errorf("linear(1.5) = %v", got)
	}
	// Derivatives at the activation output.
	if got := Sigmoid.derivative(0.5); got != 0.25 {
		t.Errorf("sigmoid'(out=0.5) = %v", got)
	}
	if got := Linear.derivative(3); got != 1 {
		t.Errorf("linear' = %v", got)
	}
	if got := ReLU.derivative(0); got != 0 {
		t.Errorf("relu'(0) = %v", got)
	}
	if got := Tanh.derivative(0); got != 1 {
		t.Errorf("tanh'(out=0) = %v", got)
	}
}

func TestStringers(t *testing.T) {
	for _, a := range []Activation{Linear, Sigmoid, Tanh, ReLU} {
		if a.String() == "" {
			t.Errorf("activation %d has empty string", a)
		}
	}
	for _, o := range []Optimizer{SGD, Adam} {
		if o.String() == "" {
			t.Errorf("optimizer %d has empty string", o)
		}
	}
}

func TestUnfittedPredict(t *testing.T) {
	n, err := New(PaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Predict([]float64{1}); !errors.Is(err, ml.ErrNotFitted) {
		t.Errorf("unfitted error = %v", err)
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	cfg := Config{
		Hidden:           []LayerSpec{{Units: 8, Activation: Tanh}},
		OutputActivation: Linear,
		Optimizer:        Adam,
		LearningRate:     0.01,
		Epochs:           300,
		BatchSize:        16,
		NormalizeTargets: true,
		Seed:             3,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.Range(-1, 1), rng.Range(-1, 1)
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+1)
	}
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 0; i < 50; i++ {
		a, b := rng.Range(-0.8, 0.8), rng.Range(-0.8, 0.8)
		pred, err := n.Predict([]float64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(pred - (3*a - 2*b + 1)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.5 {
		t.Errorf("max error on linear function = %v", maxErr)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	cfg := PaperConfig(7)
	cfg.Epochs = 400
	n, _ := New(cfg)
	rng := simrand.New(9)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := rng.Range(-2, 2)
		x = append(x, []float64{a})
		y = append(y, a*a) // parabola: impossible for a linear model
	}
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var sse, sst, mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i, row := range x {
		pred, _ := n.Predict(row)
		sse += (pred - y[i]) * (pred - y[i])
		sst += (y[i] - mean) * (y[i] - mean)
	}
	r2 := 1 - sse/sst
	if r2 < 0.9 {
		t.Errorf("parabola fit R² = %v, want > 0.9 (the hidden layer must add value)", r2)
	}
}

func TestSGDAlsoTrains(t *testing.T) {
	cfg := Config{
		Hidden:           []LayerSpec{{Units: 6, Activation: Sigmoid}},
		OutputActivation: Linear,
		Optimizer:        SGD,
		LearningRate:     0.05,
		Epochs:           300,
		BatchSize:        8,
		NormalizeTargets: true,
		Seed:             11,
	}
	n, _ := New(cfg)
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a := float64(i)/50 - 1
		x = append(x, []float64{a})
		y = append(y, 2*a)
	}
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := n.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-1) > 0.4 {
		t.Errorf("SGD prediction at 0.5 = %v, want ≈1", pred)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() float64 {
		n, _ := New(PaperConfig(21))
		var x [][]float64
		var y []float64
		rng := simrand.New(2)
		for i := 0; i < 60; i++ {
			a := rng.Range(-1, 1)
			x = append(x, []float64{a})
			y = append(y, math.Sin(a))
		}
		_ = n.Fit(x, y)
		p, _ := n.Predict([]float64{0.3})
		return p
	}
	if build() != build() {
		t.Error("training not deterministic for a fixed seed")
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	n, _ := New(PaperConfig(1))
	_ = n.Fit([][]float64{{1, 2}, {2, 3}}, []float64{1, 2})
	if _, err := n.Predict([]float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestNormalizationRecoversScale(t *testing.T) {
	// Targets around −73 dBm: with normalisation the output must come back
	// on the dBm scale, not the normalised one.
	cfg := PaperConfig(13)
	cfg.Epochs = 100
	n, _ := New(cfg)
	var x [][]float64
	var y []float64
	rng := simrand.New(17)
	for i := 0; i < 100; i++ {
		a := rng.Range(0, 1)
		x = append(x, []float64{a})
		y = append(y, -73+4*a)
	}
	_ = n.Fit(x, y)
	pred, _ := n.Predict([]float64{0.5})
	if pred > -60 || pred < -85 {
		t.Errorf("prediction %v not on the dBm scale", pred)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	n, _ := New(PaperConfig(1))
	if err := n.Fit(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if err := n.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestName(t *testing.T) {
	n, _ := New(PaperConfig(1))
	if n.Name() == "" {
		t.Error("empty name")
	}
	multi, _ := New(Config{
		Hidden:           []LayerSpec{{Units: 4, Activation: ReLU}, {Units: 4, Activation: ReLU}},
		OutputActivation: Linear,
		Optimizer:        SGD,
		LearningRate:     0.1,
		Epochs:           1,
		BatchSize:        1,
	})
	if multi.Name() == "" {
		t.Error("empty multi-layer name")
	}
}

func TestNormalizeInputsImprovesScaleMismatch(t *testing.T) {
	// Features on wildly different scales: with input standardisation the
	// network must still learn; predictions come back on the target scale.
	cfg := PaperConfig(31)
	cfg.NormalizeInputs = true
	cfg.Epochs = 200
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(33)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Range(0, 1e4) // large-scale feature
		b := rng.Range(0, 1)   // small-scale feature
		x = append(x, []float64{a, b})
		y = append(y, -70+a/1e4*6-4*b)
	}
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var sse, sst, mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i, row := range x {
		pred, err := n.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		sse += (pred - y[i]) * (pred - y[i])
		sst += (y[i] - mean) * (y[i] - mean)
	}
	if r2 := 1 - sse/sst; r2 < 0.8 {
		t.Errorf("normalised-input fit R² = %v, want > 0.8", r2)
	}
}

func TestConstantFeatureWithNormalization(t *testing.T) {
	// A constant input column has zero variance; standardisation must not
	// divide by zero.
	cfg := PaperConfig(35)
	cfg.NormalizeInputs = true
	cfg.Epochs = 50
	n, _ := New(cfg)
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{1.0, float64(i) / 50})
		y = append(y, float64(i))
	}
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := n.Predict([]float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Errorf("prediction = %v with constant feature", pred)
	}
}
