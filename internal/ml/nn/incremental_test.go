package nn

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/simrand"
)

func nnStream(n int, rng *simrand.Source) ([][]float64, []float64) {
	const nKeys = 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, 3+nKeys)
		row[0], row[1], row[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		row[3+rng.Intn(nKeys)] = 1
		x[i] = row
		y[i] = -55 - 6*row[0] + 3*row[1] - 2*row[2] + rng.Gauss(0, 1)
	}
	return x, y
}

func smallCfg(seed uint64) Config {
	cfg := PaperConfig(seed)
	cfg.Epochs = 12
	cfg.RetainTraining = true
	return cfg
}

// TestNetworkRefitFullRetrainIdentity is rule 7 for the NN's default
// incremental regime (FineTuneEpochs = 0): Refit on the cumulative data
// predicts byte-identically to a fresh network of the same Config fitted
// on that data.
func TestNetworkRefitFullRetrainIdentity(t *testing.T) {
	rng := simrand.New(31)
	x, y := nnStream(180, rng)
	queries, _ := nnStream(32, rng)
	inc, err := New(smallCfg(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Fit(x[:100], y[:100]); err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][2]int{{100, 130}, {130, 180}} {
		dirty, err := inc.Observe(x[cut[0]:cut[1]], y[cut[0]:cut[1]])
		if err != nil {
			t.Fatal(err)
		}
		if len(dirty) != 1 || dirty[0] != ml.DirtyAll {
			t.Fatalf("dirty = %v, want [DirtyAll]", dirty)
		}
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(smallCfg(99))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Fit(x[:cut[1]], y[:cut[1]]); err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			a, err := inc.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("cut %v query %d: refit %x ≠ from-scratch %x", cut, i, a, b)
			}
		}
	}
}

// TestNetworkFineTuneDeterminism: the warm-start regime is not pinned to
// the from-scratch bits, but an identical Fit/Observe/Refit sequence must
// reproduce identical weights — and the fine-tuned model must keep fitting
// the data sensibly.
func TestNetworkFineTuneDeterminism(t *testing.T) {
	rng := simrand.New(77)
	x, y := nnStream(200, rng)
	queries, _ := nnStream(32, rng)
	cfg := smallCfg(7)
	cfg.FineTuneEpochs = 5
	run := func() *Network {
		t.Helper()
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Fit(x[:120], y[:120]); err != nil {
			t.Fatal(err)
		}
		for _, cut := range [][2]int{{120, 160}, {160, 200}} {
			if _, err := net.Observe(x[cut[0]:cut[1]], y[cut[0]:cut[1]]); err != nil {
				t.Fatal(err)
			}
			if err := net.Refit(); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	a, b := run(), run()
	for i, q := range queries {
		va, err := a.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Fatalf("query %d: replayed fine-tune sequence diverged: %x ≠ %x", i, va, vb)
		}
		if math.IsNaN(va) || math.IsInf(va, 0) {
			t.Fatalf("query %d: fine-tuned prediction %v not finite", i, va)
		}
	}
	// The fine-tuned model should still beat predicting the mean.
	pred, err := ml.PredictAll(a, x[:200])
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := ml.RMSE(pred, y[:200])
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range y[:200] {
		mean += v
	}
	mean /= 200
	var ssTot float64
	for _, v := range y[:200] {
		ssTot += (v - mean) * (v - mean)
	}
	if base := math.Sqrt(ssTot / 200); rmse >= base {
		t.Fatalf("fine-tuned RMSE %.3f not better than mean baseline %.3f", rmse, base)
	}
}

// TestNetworkObserveValidation: unfitted observes and dim mismatches are
// rejected; empty batches are no-ops; Refit without pending is a no-op
// that keeps predictions stable.
func TestNetworkObserveValidation(t *testing.T) {
	net, err := New(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Observe([][]float64{{1, 2, 3}}, []float64{-50}); err == nil {
		t.Error("Observe before Fit accepted")
	}
	rng := simrand.New(5)
	x, y := nnStream(60, rng)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Observe([][]float64{{1, 2}}, []float64{-50}); err == nil {
		t.Error("dim-mismatched observe accepted")
	}
	before, err := net.Predict(x[0])
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := net.Observe(nil, nil)
	if err != nil || dirty != nil {
		t.Fatalf("empty observe = %v, %v", dirty, err)
	}
	if err := net.Refit(); err != nil {
		t.Fatal(err)
	}
	after, err := net.Predict(x[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(before) != math.Float64bits(after) {
		t.Fatal("no-op Refit changed predictions")
	}
}

// TestNetworkObserveNeedsRetention: a batch-mode network (the default,
// which releases its training data after Fit) refuses Observe with a
// descriptive error instead of silently losing the original rows.
func TestNetworkObserveNeedsRetention(t *testing.T) {
	cfg := smallCfg(3)
	cfg.RetainTraining = false
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	x, y := nnStream(40, rng)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if net.trainX != nil {
		t.Fatal("batch-mode Fit retained the training set")
	}
	if _, err := net.Observe(x[:1], y[:1]); err == nil {
		t.Fatal("Observe accepted without retained training data")
	}
}
