package nn

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/simrand"
)

// goldenFixture is the dataset behind the golden predictions below,
// captured from the seed implementation (per-sample updates) before the
// minibatch rewrite. The compat path must reproduce it bit-for-bit.
func goldenFixture() ([][]float64, []float64) {
	rng := simrand.New(4242)
	const n, dim = 120, 5
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Range(-2, 2)
		}
		x[i] = row
		y[i] = -70 + 3*row[0] - 2*row[1] + math.Sin(row[2]) + rng.Gauss(0, 0.5)
	}
	return x, y
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// TestCompatModeReproducesSeedWeights pins Config.PerSampleUpdates to the
// seed implementation's exact numerics: predictions (a pure function of the
// trained weights) must match hex-formatted values captured from the seed
// commit, bit for bit, across Adam, input standardisation and SGD regimes.
func TestCompatModeReproducesSeedWeights(t *testing.T) {
	x, y := goldenFixture()

	check := func(t *testing.T, net *Network, stride int, want []string) {
		t.Helper()
		if err := net.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			p, err := net.Predict(x[i*stride])
			if err != nil {
				t.Fatal(err)
			}
			if got := hexFloat(p); got != w {
				t.Errorf("prediction %d = %s, want seed value %s", i, got, w)
			}
		}
	}

	t.Run("adam", func(t *testing.T) {
		cfg := PaperConfig(99)
		cfg.Epochs = 40
		cfg.PerSampleUpdates = true
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, net, 17, []string{
			"-0x1.04d84dfae9ceap+06",
			"-0x1.2c03af220068p+06",
			"-0x1.2110af514ccb1p+06",
			"-0x1.30feabbbd7f87p+06",
			"-0x1.221d5f69a6165p+06",
			"-0x1.21961cbd1350dp+06",
		})
	})
	t.Run("adam-normalized-inputs", func(t *testing.T) {
		cfg := PaperConfig(7)
		cfg.Epochs = 25
		cfg.NormalizeInputs = true
		cfg.PerSampleUpdates = true
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, net, 23, []string{
			"-0x1.021ca8211dca8p+06",
			"-0x1.0e86746d7a657p+06",
			"-0x1.21d1da6f9c69ep+06",
			"-0x1.177c129a88fd5p+06",
		})
	})
	t.Run("sgd", func(t *testing.T) {
		cfg := Config{
			Hidden:           []LayerSpec{{Units: 8, Activation: Tanh}},
			OutputActivation: Linear,
			Optimizer:        SGD,
			LearningRate:     0.02,
			Epochs:           30,
			BatchSize:        16,
			NormalizeTargets: true,
			PerSampleUpdates: true,
			Seed:             55,
		}
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, net, 29, []string{
			"-0x1.03bf88f63cba3p+06",
			"-0x1.233ce8c4fd6f6p+06",
			"-0x1.f3154bfc52549p+05",
			"-0x1.0aff8a2c1b50cp+06",
		})
	})
}

// randomNetwork draws a random topology/regime and a matching training set.
func randomNetwork(t *testing.T, rng *simrand.Source) (*Network, [][]float64, []float64, int) {
	t.Helper()
	acts := []Activation{Linear, Sigmoid, Tanh, ReLU}
	dim := 1 + rng.Intn(8)
	nLayers := 1 + rng.Intn(3)
	hidden := make([]LayerSpec, nLayers)
	for i := range hidden {
		hidden[i] = LayerSpec{Units: 1 + rng.Intn(10), Activation: acts[rng.Intn(len(acts))]}
	}
	opt := SGD
	if rng.Bool(0.5) {
		opt = Adam
	}
	cfg := Config{
		Hidden:           hidden,
		OutputActivation: acts[rng.Intn(len(acts))],
		Optimizer:        opt,
		LearningRate:     0.01,
		Epochs:           1 + rng.Intn(3),
		BatchSize:        1 + rng.Intn(40),
		NormalizeTargets: rng.Bool(0.5),
		NormalizeInputs:  rng.Bool(0.5),
		PerSampleUpdates: rng.Bool(0.5),
		Seed:             rng.Uint64(),
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := 5 + rng.Intn(80)
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			// A mix of dense and exactly-zero features covers the
			// kernels' one-hot zero-skip path.
			if rng.Bool(0.7) {
				row[j] = rng.Range(-3, 3)
			}
		}
		x[i] = row
		y[i] = rng.Range(-90, -40)
	}
	return net, x, y, dim
}

// TestBatchInferenceBitIdentical is the determinism-contract quick-check:
// across random topologies, activations, optimisers, batch sizes and input
// dims, PredictBatch must return bit-for-bit what Predict returns row by
// row — including ragged final batches and batch=1.
func TestBatchInferenceBitIdentical(t *testing.T) {
	rng := simrand.New(20260726)
	for trial := 0; trial < 60; trial++ {
		net, x, y, dim := randomNetwork(t, rng)
		if err := net.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		batch := 1 + rng.Intn(65)
		queries := make([][]float64, batch)
		for i := range queries {
			q := make([]float64, dim)
			for j := range q {
				if rng.Bool(0.6) {
					q[j] = rng.Range(-4, 4)
				}
			}
			queries[i] = q
		}
		got, err := net.PredictBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != batch {
			t.Fatalf("trial %d: %d results for %d queries", trial, len(got), batch)
		}
		for i, q := range queries {
			want, err := net.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			// Compare raw bits: NaN from a diverged net must equal NaN,
			// and the contract is bit-for-bit, not approximate.
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d query %d: PredictBatch=%s Predict=%s (cfg %+v)",
					trial, i, hexFloat(got[i]), hexFloat(want), net.cfg)
			}
		}
	}
}

// TestPredictBatchIntoValidation covers the batch path's error surface.
func TestPredictBatchIntoValidation(t *testing.T) {
	net, err := New(PaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PredictBatchInto(make([]float64, 1), [][]float64{{1, 2}}); err == nil {
		t.Error("unfitted batch predict accepted")
	}
	if err := net.Fit([][]float64{{1, 2}, {2, 3}, {3, 4}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := net.PredictBatchInto(make([]float64, 1), [][]float64{{1, 2}, {2, 3}}); err == nil {
		t.Error("short dst accepted")
	}
	if err := net.PredictBatchInto(make([]float64, 2), [][]float64{{1, 2}, {2}}); err == nil {
		t.Error("ragged query accepted")
	}
	if err := net.PredictBatchInto(nil, nil); err != nil {
		t.Errorf("empty batch = %v", err)
	}
}

// TestInferenceZeroAllocs: after warm-up, Predict and PredictBatchInto must
// not touch the heap — the workspace pool absorbs all scratch.
func TestInferenceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	cfg := PaperConfig(3)
	cfg.Epochs = 5
	cfg.NormalizeInputs = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, y := goldenFixture()
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := x[0]
	dst := make([]float64, len(x))
	// Warm the pool.
	if _, err := net.Predict(q); err != nil {
		t.Fatal(err)
	}
	if err := net.PredictBatchInto(dst, x); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := net.Predict(q); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("Predict allocates %v objects per call after warm-up", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := net.PredictBatchInto(dst, x); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("PredictBatchInto allocates %v objects per call after warm-up", allocs)
	}
}
