// Package nn implements the feed-forward neural network of the paper's
// §III-B from scratch: fully connected layers, sigmoid/tanh/ReLU/linear
// activations, mean-squared-error loss, mini-batch training with SGD or
// Adam, and target normalisation. The paper's tuned topology — inputs for
// x/y/z plus the one-hot MAC block, one 16-node sigmoid hidden layer, a
// single linear output, Adam optimiser — is available as PaperConfig.
package nn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/simrand"
)

// Activation is a layer non-linearity.
type Activation int

// Supported activations.
const (
	// Linear is the identity.
	Linear Activation = iota + 1
	// Sigmoid is the logistic function (the paper's hidden activation).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is max(0, x).
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// derivative computes dσ/dx given the activation output.
func (a Activation) derivative(out float64) float64 {
	switch a {
	case Sigmoid:
		return out * (1 - out)
	case Tanh:
		return 1 - out*out
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Optimizer selects the weight-update rule.
type Optimizer int

// Supported optimizers.
const (
	// SGD is plain stochastic gradient descent.
	SGD Optimizer = iota + 1
	// Adam is adaptive moment estimation (the paper's choice).
	Adam
)

// String implements fmt.Stringer.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Adam:
		return "adam"
	default:
		return fmt.Sprintf("Optimizer(%d)", int(o))
	}
}

// LayerSpec declares one dense layer.
type LayerSpec struct {
	// Units is the layer width.
	Units int
	// Activation is the layer non-linearity.
	Activation Activation
}

// Config describes a network and its training regime.
type Config struct {
	// Hidden lists the hidden layers in order.
	Hidden []LayerSpec
	// OutputActivation is the final layer's non-linearity (Linear for
	// regression).
	OutputActivation Activation
	// Optimizer selects SGD or Adam.
	Optimizer Optimizer
	// LearningRate is the optimiser step size.
	LearningRate float64
	// Epochs is the number of passes over the training data.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// NormalizeTargets rescales targets to zero mean / unit variance
	// during training (the paper normalises RSS values).
	NormalizeTargets bool
	// NormalizeInputs standardises each input feature to zero mean / unit
	// variance, so the coordinate block and the one-hot block train on
	// comparable scales.
	NormalizeInputs bool
	// Seed drives weight initialisation and batch shuffling.
	Seed uint64
}

// PaperConfig is the paper's optimised network: a single 16-node sigmoid
// hidden layer, linear output, Adam, normalised RSS targets.
func PaperConfig(seed uint64) Config {
	return Config{
		Hidden:           []LayerSpec{{Units: 16, Activation: Sigmoid}},
		OutputActivation: Linear,
		Optimizer:        Adam,
		LearningRate:     0.01,
		Epochs:           220,
		BatchSize:        32,
		NormalizeTargets: true,
		Seed:             seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for i, l := range c.Hidden {
		if l.Units < 1 {
			return fmt.Errorf("nn: hidden layer %d has %d units", i, l.Units)
		}
		if l.Activation < Linear || l.Activation > ReLU {
			return fmt.Errorf("nn: hidden layer %d has invalid activation", i)
		}
	}
	if c.OutputActivation < Linear || c.OutputActivation > ReLU {
		return errors.New("nn: invalid output activation")
	}
	if c.Optimizer != SGD && c.Optimizer != Adam {
		return errors.New("nn: invalid optimizer")
	}
	if c.LearningRate <= 0 {
		return errors.New("nn: learning rate must be positive")
	}
	if c.Epochs < 1 {
		return errors.New("nn: epochs must be ≥1")
	}
	if c.BatchSize < 1 {
		return errors.New("nn: batch size must be ≥1")
	}
	return nil
}

// layer is one dense layer's parameters and Adam state.
type layer struct {
	in, out    int
	act        Activation
	w          []float64 // out×in, row-major
	b          []float64
	mW, vW     []float64 // Adam moments
	mB, vB     []float64
	outBuf     []float64 // forward activation cache
	deltaBuf   []float64 // backward error cache
	inputCache []float64
}

// Network is a trainable feed-forward regressor with a single output.
type Network struct {
	cfg    Config
	layers []*layer
	dim    int
	fitted bool
	// target normalisation
	yMean, yStd float64
	// input standardisation (nil when disabled)
	xMean, xStd []float64
	adamStep    int
}

var (
	_ ml.Estimator = (*Network)(nil)
	_ ml.Named     = (*Network)(nil)
)

// New builds an untrained network; the input dimension is fixed at Fit time.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements ml.Named.
func (n *Network) Name() string {
	if len(n.cfg.Hidden) == 1 {
		return fmt.Sprintf("NN (%d-node %s hidden, %s)", n.cfg.Hidden[0].Units, n.cfg.Hidden[0].Activation, n.cfg.Optimizer)
	}
	return fmt.Sprintf("NN (%d hidden layers, %s)", len(n.cfg.Hidden), n.cfg.Optimizer)
}

// build initialises layers for the given input dimension with Xavier/Glorot
// uniform weights.
func (n *Network) build(dim int, rng *simrand.Source) {
	n.dim = dim
	sizes := make([]int, 0, len(n.cfg.Hidden)+2)
	sizes = append(sizes, dim)
	for _, h := range n.cfg.Hidden {
		sizes = append(sizes, h.Units)
	}
	sizes = append(sizes, 1)
	n.layers = n.layers[:0]
	for i := 1; i < len(sizes); i++ {
		act := n.cfg.OutputActivation
		if i-1 < len(n.cfg.Hidden) {
			act = n.cfg.Hidden[i-1].Activation
		}
		l := &layer{
			in:  sizes[i-1],
			out: sizes[i],
			act: act,
		}
		l.w = make([]float64, l.out*l.in)
		limit := math.Sqrt(6 / float64(l.in+l.out))
		for j := range l.w {
			l.w[j] = rng.Range(-limit, limit)
		}
		l.b = make([]float64, l.out)
		l.mW = make([]float64, len(l.w))
		l.vW = make([]float64, len(l.w))
		l.mB = make([]float64, l.out)
		l.vB = make([]float64, l.out)
		l.outBuf = make([]float64, l.out)
		l.deltaBuf = make([]float64, l.out)
		n.layers = append(n.layers, l)
	}
	n.adamStep = 0
}

// forward runs one input through the network, caching activations.
func (n *Network) forward(x []float64) float64 {
	cur := x
	for _, l := range n.layers {
		l.inputCache = cur
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range cur {
				sum += row[i] * v
			}
			l.outBuf[o] = l.act.apply(sum)
		}
		cur = l.outBuf
	}
	return cur[0]
}

// backward propagates the output error and applies one optimiser step.
func (n *Network) backward(outErr float64, lr float64) {
	last := n.layers[len(n.layers)-1]
	last.deltaBuf[0] = outErr * last.act.derivative(last.outBuf[0])
	for li := len(n.layers) - 2; li >= 0; li-- {
		l := n.layers[li]
		next := n.layers[li+1]
		for o := 0; o < l.out; o++ {
			var sum float64
			for no := 0; no < next.out; no++ {
				sum += next.w[no*next.in+o] * next.deltaBuf[no]
			}
			l.deltaBuf[o] = sum * l.act.derivative(l.outBuf[o])
		}
	}
	n.adamStep++
	for _, l := range n.layers {
		n.updateLayer(l, lr)
	}
}

// Adam hyper-parameters (standard defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (n *Network) updateLayer(l *layer, lr float64) {
	switch n.cfg.Optimizer {
	case Adam:
		bc1 := 1 - math.Pow(adamBeta1, float64(n.adamStep))
		bc2 := 1 - math.Pow(adamBeta2, float64(n.adamStep))
		for o := 0; o < l.out; o++ {
			d := l.deltaBuf[o]
			for i := 0; i < l.in; i++ {
				g := d * l.inputCache[i]
				idx := o*l.in + i
				l.mW[idx] = adamBeta1*l.mW[idx] + (1-adamBeta1)*g
				l.vW[idx] = adamBeta2*l.vW[idx] + (1-adamBeta2)*g*g
				l.w[idx] -= lr * (l.mW[idx] / bc1) / (math.Sqrt(l.vW[idx]/bc2) + adamEps)
			}
			l.mB[o] = adamBeta1*l.mB[o] + (1-adamBeta1)*d
			l.vB[o] = adamBeta2*l.vB[o] + (1-adamBeta2)*d*d
			l.b[o] -= lr * (l.mB[o] / bc1) / (math.Sqrt(l.vB[o]/bc2) + adamEps)
		}
	default: // SGD
		for o := 0; o < l.out; o++ {
			d := l.deltaBuf[o]
			for i := 0; i < l.in; i++ {
				l.w[o*l.in+i] -= lr * d * l.inputCache[i]
			}
			l.b[o] -= lr * d
		}
	}
}

// Fit implements ml.Estimator.
func (n *Network) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	rng := simrand.New(n.cfg.Seed).Derive("nn")
	n.build(len(x[0]), rng)

	// Input standardisation.
	n.xMean, n.xStd = nil, nil
	if n.cfg.NormalizeInputs {
		dim := len(x[0])
		n.xMean = make([]float64, dim)
		n.xStd = make([]float64, dim)
		for j := 0; j < dim; j++ {
			var sum, sumSq float64
			for _, row := range x {
				sum += row[j]
				sumSq += row[j] * row[j]
			}
			mean := sum / float64(len(x))
			variance := sumSq/float64(len(x)) - mean*mean
			n.xMean[j] = mean
			if variance > 1e-12 {
				n.xStd[j] = math.Sqrt(variance)
			} else {
				n.xStd[j] = 1
			}
		}
		scaled := make([][]float64, len(x))
		for i, row := range x {
			s := make([]float64, dim)
			for j, v := range row {
				s[j] = (v - n.xMean[j]) / n.xStd[j]
			}
			scaled[i] = s
		}
		x = scaled
	}

	// Target normalisation.
	n.yMean, n.yStd = 0, 1
	targets := y
	if n.cfg.NormalizeTargets {
		var sum, sumSq float64
		for _, v := range y {
			sum += v
			sumSq += v * v
		}
		n.yMean = sum / float64(len(y))
		variance := sumSq/float64(len(y)) - n.yMean*n.yMean
		if variance > 1e-12 {
			n.yStd = math.Sqrt(variance)
		}
		targets = make([]float64, len(y))
		for i, v := range y {
			targets[i] = (v - n.yMean) / n.yStd
		}
	}

	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Mini-batches are processed sample-by-sample with per-sample
		// updates (the batch size modulates only the effective step
		// schedule here, keeping the implementation single-threaded and
		// allocation-free).
		for _, idx := range order {
			pred := n.forward(x[idx])
			outErr := pred - targets[idx] // d(MSE/2)/dpred
			n.backward(outErr, n.cfg.LearningRate)
		}
	}
	n.fitted = true
	return nil
}

// infer runs one input through the network without touching the training
// caches, so concurrent Predict calls never share state. The arithmetic
// mirrors forward exactly (same per-neuron accumulation order), keeping
// inference byte-identical to the training-time pass.
func (n *Network) infer(x []float64) float64 {
	cur := x
	for _, l := range n.layers {
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range cur {
				sum += row[i] * v
			}
			next[o] = l.act.apply(sum)
		}
		cur = next
	}
	return cur[0]
}

// Predict implements ml.Estimator. It is safe for concurrent use once Fit
// has returned.
func (n *Network) Predict(x []float64) (float64, error) {
	if !n.fitted {
		return 0, ml.ErrNotFitted
	}
	if len(x) != n.dim {
		return 0, fmt.Errorf("nn: query dim %d, want %d", len(x), n.dim)
	}
	if n.xMean != nil {
		scaled := make([]float64, len(x))
		for j, v := range x {
			scaled[j] = (v - n.xMean[j]) / n.xStd[j]
		}
		x = scaled
	}
	return n.infer(x)*n.yStd + n.yMean, nil
}
