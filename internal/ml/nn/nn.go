// Package nn implements the feed-forward neural network of the paper's
// §III-B from scratch: fully connected layers, sigmoid/tanh/ReLU/linear
// activations, mean-squared-error loss, mini-batch training with SGD or
// Adam, and target normalisation. The paper's tuned topology — inputs for
// x/y/z plus the one-hot MAC block, one 16-node sigmoid hidden layer, a
// single linear output, Adam optimiser — is available as PaperConfig.
//
// The network is laid out on flat row-major matrices and trains with true
// minibatch GEMM passes by default (one matrix multiply per layer per batch,
// one fused optimiser step per minibatch). The original per-sample-update
// numerics remain available behind Config.PerSampleUpdates and are pinned
// bit-for-bit by golden tests. Inference offers a batch path
// (PredictBatch / PredictBatchInto) that is byte-identical to
// sample-at-a-time Predict and allocation-free after warm-up.
package nn

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/simrand"
)

// Activation is a layer non-linearity.
type Activation int

// Supported activations.
const (
	// Linear is the identity.
	Linear Activation = iota + 1
	// Sigmoid is the logistic function (the paper's hidden activation).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is max(0, x).
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// derivative computes dσ/dx given the activation output.
func (a Activation) derivative(out float64) float64 {
	switch a {
	case Sigmoid:
		return out * (1 - out)
	case Tanh:
		return 1 - out*out
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Optimizer selects the weight-update rule.
type Optimizer int

// Supported optimizers.
const (
	// SGD is plain stochastic gradient descent.
	SGD Optimizer = iota + 1
	// Adam is adaptive moment estimation (the paper's choice).
	Adam
)

// String implements fmt.Stringer.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Adam:
		return "adam"
	default:
		return fmt.Sprintf("Optimizer(%d)", int(o))
	}
}

// LayerSpec declares one dense layer.
type LayerSpec struct {
	// Units is the layer width.
	Units int
	// Activation is the layer non-linearity.
	Activation Activation
}

// Config describes a network and its training regime.
type Config struct {
	// Hidden lists the hidden layers in order.
	Hidden []LayerSpec
	// OutputActivation is the final layer's non-linearity (Linear for
	// regression).
	OutputActivation Activation
	// Optimizer selects SGD or Adam.
	Optimizer Optimizer
	// LearningRate is the optimiser step size.
	LearningRate float64
	// Epochs is the number of passes over the training data.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// NormalizeTargets rescales targets to zero mean / unit variance
	// during training (the paper normalises RSS values).
	NormalizeTargets bool
	// NormalizeInputs standardises each input feature to zero mean / unit
	// variance, so the coordinate block and the one-hot block train on
	// comparable scales.
	NormalizeInputs bool
	// RetainTraining keeps a copy of the cumulative training set on the
	// network after Fit, which the incremental path (Observe/Refit)
	// needs to extend and retrain on. Off by default so batch-mode
	// networks don't hold a dataset-sized copy for a capability they
	// never use; Observe fails with a descriptive error when unset.
	RetainTraining bool
	// FineTuneEpochs selects the incremental Refit regime. Zero (the
	// default) makes Refit a full deterministic retrain on the cumulative
	// dataset — byte-identical to a fresh network fitted on the same data
	// (determinism contract rule 7). A positive value opts into
	// warm-start fine-tuning instead: Refit keeps the current weights,
	// optimiser moments and normalisation statistics and runs this many
	// epochs over the cumulative data — refit cost bounded regardless of
	// Epochs, deterministic across identical Observe/Refit sequences, but
	// deliberately *not* identical to a from-scratch retrain.
	FineTuneEpochs int
	// PerSampleUpdates selects the original per-sample training path: one
	// scalar forward/backward and one optimiser step per sample, exactly
	// the numerics of the seed implementation (pinned by golden tests).
	// The default (false) is the minibatch path: whole-batch GEMM
	// forward/backward with the mean gradient and one fused optimiser
	// step per minibatch. The two modes converge to comparable models but
	// are deliberately different numerics; inference is byte-identical to
	// Predict under both.
	PerSampleUpdates bool
	// Seed drives weight initialisation and batch shuffling.
	Seed uint64
}

// PaperConfig is the paper's optimised network: a single 16-node sigmoid
// hidden layer, linear output, Adam, normalised RSS targets.
func PaperConfig(seed uint64) Config {
	return Config{
		Hidden:           []LayerSpec{{Units: 16, Activation: Sigmoid}},
		OutputActivation: Linear,
		Optimizer:        Adam,
		LearningRate:     0.01,
		Epochs:           220,
		BatchSize:        32,
		NormalizeTargets: true,
		Seed:             seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for i, l := range c.Hidden {
		if l.Units < 1 {
			return fmt.Errorf("nn: hidden layer %d has %d units", i, l.Units)
		}
		if l.Activation < Linear || l.Activation > ReLU {
			return fmt.Errorf("nn: hidden layer %d has invalid activation", i)
		}
	}
	if c.OutputActivation < Linear || c.OutputActivation > ReLU {
		return errors.New("nn: invalid output activation")
	}
	if c.Optimizer != SGD && c.Optimizer != Adam {
		return errors.New("nn: invalid optimizer")
	}
	if c.LearningRate <= 0 {
		return errors.New("nn: learning rate must be positive")
	}
	if c.Epochs < 1 {
		return errors.New("nn: epochs must be ≥1")
	}
	if c.BatchSize < 1 {
		return errors.New("nn: batch size must be ≥1")
	}
	if c.FineTuneEpochs < 0 {
		return errors.New("nn: fine-tune epochs must be ≥0")
	}
	return nil
}

// layer is one dense layer's parameters, optimiser state and training
// scratch. Weights are flat row-major (out×in), so a whole minibatch
// forward is one GEMM against the weight rows.
type layer struct {
	in, out    int
	act        Activation
	w          []float64 // out×in, row-major
	b          []float64
	mW, vW     []float64 // Adam moments
	mB, vB     []float64
	outBuf     []float64 // per-sample forward activation cache
	deltaBuf   []float64 // per-sample backward error cache
	inputCache []float64
	// Minibatch scratch, sized batch×out at Fit time.
	actBuf   []float64 // batch activations, batch×out
	deltaBat []float64 // batch deltas, batch×out
	gW       []float64 // batch weight gradient, out×in
	gB       []float64 // batch bias gradient
}

// Network is a trainable feed-forward regressor with a single output.
type Network struct {
	cfg    Config
	layers []*layer
	dim    int
	fitted bool
	// target normalisation
	yMean, yStd float64
	// input standardisation (nil when disabled)
	xMean, xStd []float64
	adamStep    int
	// wsPool holds *mat.Workspace scratch arenas so concurrent Predict /
	// PredictBatch calls are allocation-free after warm-up.
	wsPool sync.Pool
	// Cumulative training set (copies), retained so Observe/Refit can
	// extend it; one dataset-sized block, the same order of magnitude Fit
	// already holds while training.
	trainX   [][]float64
	trainY   []float64
	pending  bool
	refitGen int
}

var (
	_ ml.Estimator      = (*Network)(nil)
	_ ml.Named          = (*Network)(nil)
	_ ml.BatchPredictor = (*Network)(nil)
)

// New builds an untrained network; the input dimension is fixed at Fit time.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements ml.Named.
func (n *Network) Name() string {
	if len(n.cfg.Hidden) == 1 {
		return fmt.Sprintf("NN (%d-node %s hidden, %s)", n.cfg.Hidden[0].Units, n.cfg.Hidden[0].Activation, n.cfg.Optimizer)
	}
	return fmt.Sprintf("NN (%d hidden layers, %s)", len(n.cfg.Hidden), n.cfg.Optimizer)
}

// build initialises layers for the given input dimension with Xavier/Glorot
// uniform weights.
func (n *Network) build(dim int, rng *simrand.Source) {
	n.dim = dim
	sizes := make([]int, 0, len(n.cfg.Hidden)+2)
	sizes = append(sizes, dim)
	for _, h := range n.cfg.Hidden {
		sizes = append(sizes, h.Units)
	}
	sizes = append(sizes, 1)
	n.layers = n.layers[:0]
	for i := 1; i < len(sizes); i++ {
		act := n.cfg.OutputActivation
		if i-1 < len(n.cfg.Hidden) {
			act = n.cfg.Hidden[i-1].Activation
		}
		l := &layer{
			in:  sizes[i-1],
			out: sizes[i],
			act: act,
		}
		l.w = make([]float64, l.out*l.in)
		limit := math.Sqrt(6 / float64(l.in+l.out))
		for j := range l.w {
			l.w[j] = rng.Range(-limit, limit)
		}
		l.b = make([]float64, l.out)
		l.mW = make([]float64, len(l.w))
		l.vW = make([]float64, len(l.w))
		l.mB = make([]float64, l.out)
		l.vB = make([]float64, l.out)
		l.outBuf = make([]float64, l.out)
		l.deltaBuf = make([]float64, l.out)
		n.layers = append(n.layers, l)
	}
	n.adamStep = 0
}

// forward runs one input through the network, caching activations.
func (n *Network) forward(x []float64) float64 {
	cur := x
	for _, l := range n.layers {
		l.inputCache = cur
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range cur {
				sum += row[i] * v
			}
			l.outBuf[o] = l.act.apply(sum)
		}
		cur = l.outBuf
	}
	return cur[0]
}

// backward propagates the output error and applies one optimiser step.
func (n *Network) backward(outErr float64, lr float64) {
	last := n.layers[len(n.layers)-1]
	last.deltaBuf[0] = outErr * last.act.derivative(last.outBuf[0])
	for li := len(n.layers) - 2; li >= 0; li-- {
		l := n.layers[li]
		next := n.layers[li+1]
		for o := 0; o < l.out; o++ {
			var sum float64
			for no := 0; no < next.out; no++ {
				sum += next.w[no*next.in+o] * next.deltaBuf[no]
			}
			l.deltaBuf[o] = sum * l.act.derivative(l.outBuf[o])
		}
	}
	n.adamStep++
	for _, l := range n.layers {
		n.updateLayer(l, lr)
	}
}

// Adam hyper-parameters (standard defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (n *Network) updateLayer(l *layer, lr float64) {
	switch n.cfg.Optimizer {
	case Adam:
		bc1 := 1 - math.Pow(adamBeta1, float64(n.adamStep))
		bc2 := 1 - math.Pow(adamBeta2, float64(n.adamStep))
		for o := 0; o < l.out; o++ {
			d := l.deltaBuf[o]
			for i := 0; i < l.in; i++ {
				g := d * l.inputCache[i]
				idx := o*l.in + i
				l.mW[idx] = adamBeta1*l.mW[idx] + (1-adamBeta1)*g
				l.vW[idx] = adamBeta2*l.vW[idx] + (1-adamBeta2)*g*g
				l.w[idx] -= lr * (l.mW[idx] / bc1) / (math.Sqrt(l.vW[idx]/bc2) + adamEps)
			}
			l.mB[o] = adamBeta1*l.mB[o] + (1-adamBeta1)*d
			l.vB[o] = adamBeta2*l.vB[o] + (1-adamBeta2)*d*d
			l.b[o] -= lr * (l.mB[o] / bc1) / (math.Sqrt(l.vB[o]/bc2) + adamEps)
		}
	default: // SGD
		for o := 0; o < l.out; o++ {
			d := l.deltaBuf[o]
			for i := 0; i < l.in; i++ {
				l.w[o*l.in+i] -= lr * d * l.inputCache[i]
			}
			l.b[o] -= lr * d
		}
	}
}

// Fit implements ml.Estimator. Unlike the seed, which deep-copied the
// whole [][]float64 design matrix to standardise it, training never
// materialises a second copy: rows are standardised on the fly into a
// reused row (per-sample path) or batch (minibatch path) buffer —
// (v−mean)/std is deterministic, so recomputing it per epoch reproduces
// the exact same bits the one-shot copy held.
func (n *Network) Fit(x [][]float64, y []float64) error {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	rng := simrand.New(n.cfg.Seed).Derive("nn")
	dim := len(x[0])
	rows := len(x)
	n.build(dim, rng)

	// Input standardisation statistics over the raw input.
	n.xMean, n.xStd = nil, nil
	if n.cfg.NormalizeInputs {
		n.xMean = make([]float64, dim)
		n.xStd = make([]float64, dim)
		for j := 0; j < dim; j++ {
			var sum, sumSq float64
			for _, row := range x {
				sum += row[j]
				sumSq += row[j] * row[j]
			}
			mean := sum / float64(rows)
			variance := sumSq/float64(rows) - mean*mean
			n.xMean[j] = mean
			if variance > 1e-12 {
				n.xStd[j] = math.Sqrt(variance)
			} else {
				n.xStd[j] = 1
			}
		}
	}

	// Target normalisation.
	n.yMean, n.yStd = 0, 1
	targets := y
	if n.cfg.NormalizeTargets {
		var sum, sumSq float64
		for _, v := range y {
			sum += v
			sumSq += v * v
		}
		n.yMean = sum / float64(len(y))
		variance := sumSq/float64(len(y)) - n.yMean*n.yMean
		if variance > 1e-12 {
			n.yStd = math.Sqrt(variance)
		}
		targets = make([]float64, len(y))
		for i, v := range y {
			targets[i] = (v - n.yMean) / n.yStd
		}
	}

	if n.cfg.PerSampleUpdates {
		n.trainPerSample(x, targets, rng, n.cfg.Epochs)
	} else {
		n.trainMinibatch(x, targets, rng, n.cfg.Epochs)
	}
	if n.cfg.RetainTraining {
		n.retain(x, y)
	} else {
		n.trainX, n.trainY = nil, nil
	}
	n.pending = false
	n.refitGen = 0
	n.fitted = true
	return nil
}

// retain snapshots the cumulative training set so Observe/Refit can
// extend it. Rows are copied: callers keep ownership of their slices.
func (n *Network) retain(x [][]float64, y []float64) {
	tx := make([][]float64, len(x))
	flat := make([]float64, len(x)*n.dim)
	for i, row := range x {
		dst := flat[i*n.dim : (i+1)*n.dim]
		copy(dst, row)
		tx[i] = dst
	}
	n.trainX = tx
	n.trainY = append([]float64(nil), y...)
}

// standardizeInto writes the standardised row into dst; (v−mean)/std is the
// same arithmetic the seed applied when it copied the design matrix, so
// every recomputation yields the seed's exact bits.
func (n *Network) standardizeInto(dst, row []float64) {
	for j, v := range row {
		dst[j] = (v - n.xMean[j]) / n.xStd[j]
	}
}

// trainPerSample is the compatibility path: one forward/backward and one
// optimiser step per sample, in shuffle order — the seed implementation's
// exact numerics (same rng consumption, same accumulation order).
func (n *Network) trainPerSample(x [][]float64, targets []float64, rng *simrand.Source, epochs int) {
	var rowBuf []float64
	if n.xMean != nil {
		rowBuf = make([]float64, n.dim)
	}
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			row := x[idx]
			if rowBuf != nil {
				n.standardizeInto(rowBuf, row)
				row = rowBuf
			}
			pred := n.forward(row)
			outErr := pred - targets[idx] // d(MSE/2)/dpred
			n.backward(outErr, n.cfg.LearningRate)
		}
	}
}

// trainMinibatch is the default path: gather each shuffled minibatch into a
// flat batch matrix (standardising on the fly), run one GEMM forward and
// one GEMM backward for the whole batch, and apply a single fused optimiser
// step on the mean gradient.
func (n *Network) trainMinibatch(x [][]float64, targets []float64, rng *simrand.Source, epochs int) {
	dim := n.dim
	rows := len(x)
	bs := n.cfg.BatchSize
	if bs > rows {
		bs = rows
	}
	for _, l := range n.layers {
		l.actBuf = make([]float64, bs*l.out)
		l.deltaBat = make([]float64, bs*l.out)
		l.gW = make([]float64, len(l.w))
		l.gB = make([]float64, l.out)
	}
	xb := make([]float64, bs*dim)
	yb := make([]float64, bs)
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < rows; start += bs {
			end := min(start+bs, rows)
			batch := end - start
			for r := 0; r < batch; r++ {
				idx := order[start+r]
				d := xb[r*dim : (r+1)*dim]
				if n.xMean != nil {
					n.standardizeInto(d, x[idx])
				} else {
					copy(d, x[idx])
				}
				yb[r] = targets[idx]
			}
			n.forwardBatch(xb, batch)
			n.backwardBatch(xb, yb, batch)
		}
	}
}

// forwardBatch computes activations for a whole batch: one GEMM per layer
// (batch×in times the in-major weight rows), bias folded into the
// accumulator, activation applied in place.
func (n *Network) forwardBatch(xb []float64, batch int) {
	cur := xb[:batch*n.dim]
	for _, l := range n.layers {
		out := l.actBuf[:batch*l.out]
		mat.MatMulBTBias(out, cur, l.w, l.b, batch, l.in, l.out)
		for i, v := range out {
			out[i] = l.act.apply(v)
		}
		cur = out
	}
}

// backwardBatch propagates the whole batch's deltas (one GEMM per layer),
// forms the mean gradient (∇W = Δᵀ·X as a GEMM, ∇b as column sums) and
// applies one fused optimiser step.
func (n *Network) backwardBatch(xb, yb []float64, batch int) {
	last := n.layers[len(n.layers)-1]
	invB := 1 / float64(batch)
	for r := 0; r < batch; r++ {
		for o := 0; o < last.out; o++ {
			v := last.actBuf[r*last.out+o]
			last.deltaBat[r*last.out+o] = (v - yb[r]) * invB * last.act.derivative(v)
		}
	}
	for li := len(n.layers) - 2; li >= 0; li-- {
		l, next := n.layers[li], n.layers[li+1]
		mat.MatMul(l.deltaBat[:batch*l.out], next.deltaBat[:batch*next.out], next.w, batch, next.out, l.out)
		for i, v := range l.actBuf[:batch*l.out] {
			l.deltaBat[i] *= l.act.derivative(v)
		}
	}
	n.adamStep++
	input := xb[:batch*n.dim]
	for _, l := range n.layers {
		mat.MatMulAT(l.gW, l.deltaBat[:batch*l.out], input, batch, l.out, l.in)
		for o := range l.gB {
			l.gB[o] = 0
		}
		for r := 0; r < batch; r++ {
			d := l.deltaBat[r*l.out : (r+1)*l.out]
			mat.VecAdd(l.gB, d)
		}
		n.applyGradients(l)
		input = l.actBuf[:batch*l.out]
	}
}

// applyGradients performs one optimiser step from the accumulated batch
// gradients as fused sweeps over the flat parameter arrays.
func (n *Network) applyGradients(l *layer) {
	lr := n.cfg.LearningRate
	switch n.cfg.Optimizer {
	case Adam:
		bc1 := 1 - math.Pow(adamBeta1, float64(n.adamStep))
		bc2 := 1 - math.Pow(adamBeta2, float64(n.adamStep))
		adamFused(l.w, l.gW, l.mW, l.vW, lr, bc1, bc2)
		adamFused(l.b, l.gB, l.mB, l.vB, lr, bc1, bc2)
	default: // SGD
		mat.Axpy(-lr, l.gW, l.w)
		mat.Axpy(-lr, l.gB, l.b)
	}
}

// adamFused is one Adam step over a flat parameter array: moment update,
// bias correction and weight step in a single sweep.
func adamFused(w, g, m, v []float64, lr, bc1, bc2 float64) {
	for i, gi := range g {
		m[i] = adamBeta1*m[i] + (1-adamBeta1)*gi
		v[i] = adamBeta2*v[i] + (1-adamBeta2)*gi*gi
		w[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + adamEps)
	}
}

// workspace borrows a scratch arena from the pool; callers must Reset and
// return it. The pool keeps concurrent inference allocation-free once each
// worker's arena has grown to the working-set size.
func (n *Network) workspace() *mat.Workspace {
	if ws, ok := n.wsPool.Get().(*mat.Workspace); ok {
		return ws
	}
	return mat.NewWorkspace(0)
}

func (n *Network) release(ws *mat.Workspace) {
	ws.Reset()
	n.wsPool.Put(ws)
}

// Predict implements ml.Estimator. It is safe for concurrent use once Fit
// has returned and performs no heap allocations after warm-up: the scaled
// input and per-layer activation buffers live in a pooled Workspace.
func (n *Network) Predict(x []float64) (float64, error) {
	if !n.fitted {
		return 0, ml.ErrNotFitted
	}
	if len(x) != n.dim {
		return 0, fmt.Errorf("nn: query dim %d, want %d", len(x), n.dim)
	}
	ws := n.workspace()
	defer n.release(ws)
	cur := x
	if n.xMean != nil {
		scaled := ws.TakeUninit(len(x))
		n.standardizeInto(scaled, x)
		cur = scaled
	}
	// One-row GEMM per layer: the same kernel the batch path runs, so the
	// per-sample/batch bit-identity is structural — there is exactly one
	// copy of the order-critical accumulation loop.
	for _, l := range n.layers {
		next := ws.TakeUninit(l.out)
		mat.MatMulBTBias(next, cur, l.w, l.b, 1, l.in, l.out)
		for i, v := range next {
			next[i] = l.act.apply(v)
		}
		cur = next
	}
	return cur[0]*n.yStd + n.yMean, nil
}

// PredictBatch implements ml.BatchPredictor: one GEMM per layer for the
// whole batch, byte-identical to calling Predict row by row. It is safe for
// concurrent use once Fit has returned.
func (n *Network) PredictBatch(x [][]float64) ([]float64, error) {
	out := make([]float64, len(x))
	if err := n.PredictBatchInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice, so
// steady-state batch inference performs zero heap allocations: all scratch
// comes from a pooled Workspace that stops growing once it has seen the
// largest batch.
func (n *Network) PredictBatchInto(dst []float64, x [][]float64) error {
	if !n.fitted {
		return ml.ErrNotFitted
	}
	if len(dst) < len(x) {
		return fmt.Errorf("nn: dst length %d for %d queries", len(dst), len(x))
	}
	batch := len(x)
	if batch == 0 {
		return nil
	}
	for i, row := range x {
		if len(row) != n.dim {
			return fmt.Errorf("nn: query %d dim %d, want %d", i, len(row), n.dim)
		}
	}
	ws := n.workspace()
	defer n.release(ws)
	xb := ws.TakeUninit(batch * n.dim)
	for i, row := range x {
		d := xb[i*n.dim : (i+1)*n.dim]
		if n.xMean != nil {
			n.standardizeInto(d, row)
		} else {
			copy(d, row)
		}
	}
	cur := xb
	for _, l := range n.layers {
		next := ws.TakeUninit(batch * l.out)
		mat.MatMulBTBias(next, cur, l.w, l.b, batch, l.in, l.out)
		for i, v := range next {
			next[i] = l.act.apply(v)
		}
		cur = next
	}
	for r := 0; r < batch; r++ {
		dst[r] = cur[r]*n.yStd + n.yMean
	}
	return nil
}
