package nn

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/simrand"
)

// Incremental training: Observe extends the retained cumulative training
// set; Refit either retrains from scratch (Config.FineTuneEpochs == 0 —
// byte-identical to a fresh network fitted on the cumulative data, the
// determinism contract's rule 7) or warm-starts from the current weights
// for a bounded number of epochs (FineTuneEpochs > 0 — deterministic
// across identical Observe/Refit sequences, documented as diverging from
// the from-scratch bits). Observe and Refit must not run concurrently
// with Predict.

var _ ml.IncrementalEstimator = (*Network)(nil)

// Observe implements ml.IncrementalEstimator: the batch is appended to the
// cumulative training set. A neural network is a global function
// approximator — any sample moves every weight at the next Refit — so the
// whole vocabulary is dirty.
func (n *Network) Observe(x [][]float64, y []float64) ([]int, error) {
	if !n.fitted {
		return nil, ml.ErrNotFitted
	}
	if !n.cfg.RetainTraining {
		return nil, fmt.Errorf("nn: incremental use needs Config.RetainTraining (the cumulative training set is released after a batch-mode Fit)")
	}
	if err := ml.ValidateObserved(x, y, n.dim); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	for _, row := range x {
		n.trainX = append(n.trainX, append([]float64(nil), row...))
	}
	n.trainY = append(n.trainY, y...)
	n.pending = true
	return []int{ml.DirtyAll}, nil
}

// Refit implements ml.IncrementalEstimator; see the file comment for the
// two regimes.
func (n *Network) Refit() error {
	if !n.fitted {
		return ml.ErrNotFitted
	}
	if !n.pending {
		return nil
	}
	if n.cfg.FineTuneEpochs <= 0 {
		// Fit re-derives its rng from the seed, so this is exactly what a
		// fresh network of the same Config learns from the cumulative
		// data. Fit also clears pending.
		return n.Fit(n.trainX, n.trainY)
	}
	n.fineTune()
	n.pending = false
	return nil
}

// fineTune continues training from the current weights: optimiser moments
// and the input/target normalisation statistics stay frozen at their
// initial-Fit values (new rows are standardised with the old statistics —
// the usual warm-start drift caveat), and the shuffle stream is derived
// from the seed and the refit generation, so an identical
// Observe/Refit sequence reproduces identical weights.
func (n *Network) fineTune() {
	n.refitGen++
	rng := simrand.New(n.cfg.Seed).Derive("nn").Derive(fmt.Sprintf("refit-%d", n.refitGen))
	targets := n.trainY
	if n.cfg.NormalizeTargets {
		targets = make([]float64, len(n.trainY))
		for i, v := range n.trainY {
			targets[i] = (v - n.yMean) / n.yStd
		}
	}
	if n.cfg.PerSampleUpdates {
		n.trainPerSample(n.trainX, targets, rng, n.cfg.FineTuneEpochs)
	} else {
		n.trainMinibatch(n.trainX, targets, rng, n.cfg.FineTuneEpochs)
	}
}
