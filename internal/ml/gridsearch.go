package ml

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/simrand"
)

// Params is one hyper-parameter assignment.
type Params map[string]float64

// clone copies a Params map.
func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Grid enumerates the cartesian product of per-parameter candidate values,
// in deterministic (sorted-key) order — the "exhaustive set of
// hyperparameters" the paper's grid search walks.
func Grid(space map[string][]float64) []Params {
	keys := make([]string, 0, len(space))
	for k := range space {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := []Params{{}}
	for _, k := range keys {
		var next []Params
		for _, base := range out {
			for _, v := range space[k] {
				p := base.clone()
				p[k] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

// SearchResult is one grid-search evaluation.
type SearchResult struct {
	// Params is the evaluated assignment.
	Params Params
	// RMSE is its validation score.
	RMSE float64
}

// GridSearch evaluates every parameter assignment by building an estimator
// via the factory, training on a sub-split of the training data and scoring
// on a held-out validation split ("the validation set was taken out of the
// training set", §III-B). It returns all results sorted by RMSE, best first.
// Candidates are evaluated on the shared worker pool; see
// GridSearchWorkers for the determinism contract.
func GridSearch(
	factory func(Params) (Estimator, error),
	candidates []Params,
	trainX [][]float64, trainY []float64,
	valFrac float64,
	rng *simrand.Source,
) ([]SearchResult, error) {
	return GridSearchWorkers(factory, candidates, trainX, trainY, valFrac, rng, 0)
}

// GridSearchWorkers is GridSearch with an explicit bound on concurrent
// candidate evaluations (≤ 0 means GOMAXPROCS). The validation split is
// drawn from rng before any candidate runs, results land in candidate
// order, and the final sort is stable — so the output is byte-identical to
// the sequential run for every worker count. Factories needing randomness
// must derive it from the Params themselves (e.g. a seed entry) rather
// than consume a shared stream inside the pool.
func GridSearchWorkers(
	factory func(Params) (Estimator, error),
	candidates []Params,
	trainX [][]float64, trainY []float64,
	valFrac float64,
	rng *simrand.Source,
	workers int,
) ([]SearchResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("ml: grid search needs candidates")
	}
	if err := ValidateTrainingData(trainX, trainY); err != nil {
		return nil, err
	}
	if valFrac <= 0 || valFrac >= 1 {
		return nil, fmt.Errorf("ml: validation fraction %g outside (0, 1)", valFrac)
	}
	perm := rng.Perm(len(trainX))
	nVal := int(float64(len(trainX)) * valFrac)
	if nVal < 1 || nVal >= len(trainX) {
		return nil, fmt.Errorf("ml: validation split of %d rows from %d is degenerate", nVal, len(trainX))
	}
	var subX, valX [][]float64
	var subY, valY []float64
	for i, idx := range perm {
		if i < nVal {
			valX = append(valX, trainX[idx])
			valY = append(valY, trainY[idx])
		} else {
			subX = append(subX, trainX[idx])
			subY = append(subY, trainY[idx])
		}
	}

	results, err := parallel.Map(len(candidates), workers, func(i int) (SearchResult, error) {
		p := candidates[i]
		est, err := factory(p)
		if err != nil {
			return SearchResult{}, fmt.Errorf("ml: building estimator for %v: %w", p, err)
		}
		rmse, err := EvaluateRMSE(est, subX, subY, valX, valY)
		if err != nil {
			return SearchResult{}, fmt.Errorf("ml: evaluating %v: %w", p, err)
		}
		return SearchResult{Params: p, RMSE: rmse}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].RMSE < results[j].RMSE })
	return results, nil
}
