// Package crtp models the Crazyradio RealTime Protocol link between the base
// station and a Crazyflie (§II-C): packet framing, the firmware's bounded TX
// queue, and radio power control. Two behaviours from the paper are central:
// the radio can be shut down during REM scans to avoid self-interference
// (registering itself as a 2.4 GHz interferer only while on), and the TX
// queue — enlarged in the paper's firmware patch via CRTP_TX_QUEUE_SIZE —
// buffers full scan results until the radio comes back online.
package crtp

import (
	"errors"
	"fmt"

	"repro/internal/spectrum"
)

// Port identifies a CRTP service, mirroring the Crazyflie port map.
type Port uint8

// CRTP ports used by this system.
const (
	PortConsole   Port = 0x0
	PortParam     Port = 0x2
	PortCommander Port = 0x3
	PortAppData   Port = 0xD // scan results travel on the app channel
	PortLink      Port = 0xF
)

// MaxPayload is the CRTP payload limit (30 bytes on the wire; results are
// fragmented across packets).
const MaxPayload = 30

// Packet is one CRTP frame.
type Packet struct {
	// Port and Channel address the service endpoint.
	Port    Port
	Channel uint8
	// Payload carries up to MaxPayload bytes.
	Payload []byte
}

// Validate checks the packet against protocol limits.
func (p Packet) Validate() error {
	if p.Port > 0xF {
		return fmt.Errorf("crtp: port %d out of range", p.Port)
	}
	if p.Channel > 3 {
		return fmt.Errorf("crtp: channel %d out of range", p.Channel)
	}
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("crtp: payload %d bytes exceeds %d", len(p.Payload), MaxPayload)
	}
	return nil
}

// Queue sizing constants.
const (
	// DefaultTxQueueSize is the stock firmware CRTP_TX_QUEUE_SIZE.
	DefaultTxQueueSize = 16
	// PaperTxQueueSize is the enlarged queue of the paper's firmware patch,
	// sized so a full AT+CWLAP result set survives a radio-off scan.
	PaperTxQueueSize = 120
)

// ErrQueueFull is returned when the firmware TX queue overflows; packets are
// dropped, which with the stock queue size loses scan results (the failure
// the paper's patch prevents).
var ErrQueueFull = errors.New("crtp: TX queue full, packet dropped")

// Link is one radio link between the base station and a UAV.
type Link struct {
	radioChannel int
	radioOn      bool
	queueSize    int
	txQueue      []Packet
	delivered    []Packet
	droppedTx    int
	sentTx       int
}

// NewLink creates a link on the given nRF24 channel with the given firmware
// TX queue capacity. The radio starts powered on.
func NewLink(radioChannel, queueSize int) (*Link, error) {
	if _, err := spectrum.CrazyradioChannelFreqMHz(radioChannel); err != nil {
		return nil, err
	}
	if queueSize < 1 {
		return nil, fmt.Errorf("crtp: queue size must be ≥1, got %d", queueSize)
	}
	return &Link{radioChannel: radioChannel, radioOn: true, queueSize: queueSize}, nil
}

// RadioChannel returns the nRF24 channel number.
func (l *Link) RadioChannel() int { return l.radioChannel }

// RadioOn reports whether the carrier is up.
func (l *Link) RadioOn() bool { return l.radioOn }

// SetRadio powers the radio on or off. Turning it on drains the firmware TX
// queue to the base station; turning it off silences the carrier (and stops
// it interfering with the REM receiver).
func (l *Link) SetRadio(on bool) {
	l.radioOn = on
	if on {
		l.drain()
	}
}

// Send transmits a packet from the firmware toward the base station. While
// the radio is off the packet is queued; if the queue is full the packet is
// dropped and ErrQueueFull returned.
func (l *Link) Send(p Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if l.radioOn {
		l.delivered = append(l.delivered, p)
		l.sentTx++
		return nil
	}
	if len(l.txQueue) >= l.queueSize {
		l.droppedTx++
		return ErrQueueFull
	}
	// Copy the payload: callers may reuse their buffers.
	q := p
	q.Payload = append([]byte(nil), p.Payload...)
	l.txQueue = append(l.txQueue, q)
	return nil
}

func (l *Link) drain() {
	l.delivered = append(l.delivered, l.txQueue...)
	l.sentTx += len(l.txQueue)
	l.txQueue = l.txQueue[:0]
}

// Receive returns and clears the packets delivered to the base station.
func (l *Link) Receive() []Packet {
	out := l.delivered
	l.delivered = nil
	return out
}

// QueuedTx returns the number of packets waiting in the firmware TX queue.
func (l *Link) QueuedTx() int { return len(l.txQueue) }

// DroppedTx returns the number of packets lost to queue overflow.
func (l *Link) DroppedTx() int { return l.droppedTx }

// SentTx returns the number of packets that reached the base station.
func (l *Link) SentTx() int { return l.sentTx }

// Interferer returns the link's spectral footprint if the carrier is up, and
// reports whether it is active. The scanning layer folds this into the
// beacon-detection model, reproducing Figure 5.
func (l *Link) Interferer() (spectrum.Interferer, bool) {
	if !l.radioOn {
		return spectrum.Interferer{}, false
	}
	itf, err := spectrum.CrazyradioInterferer(l.radioChannel)
	if err != nil {
		// Unreachable: the channel was validated at construction.
		return spectrum.Interferer{}, false
	}
	return itf, true
}
