package crtp

import (
	"bytes"
	"errors"
	"testing"
)

func TestPacketValidate(t *testing.T) {
	good := Packet{Port: PortAppData, Channel: 1, Payload: []byte("hello")}
	if err := good.Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	bad := Packet{Port: 0x1F}
	if err := bad.Validate(); err == nil {
		t.Error("port 0x1F accepted")
	}
	bad = Packet{Channel: 4}
	if err := bad.Validate(); err == nil {
		t.Error("channel 4 accepted")
	}
	bad = Packet{Payload: make([]byte, MaxPayload+1)}
	if err := bad.Validate(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink(200, 16); err == nil {
		t.Error("invalid radio channel accepted")
	}
	if _, err := NewLink(80, 0); err == nil {
		t.Error("zero queue size accepted")
	}
	l, err := NewLink(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !l.RadioOn() {
		t.Error("link should start with radio on")
	}
	if l.RadioChannel() != 80 {
		t.Errorf("RadioChannel = %d", l.RadioChannel())
	}
}

func TestSendWhileRadioOnDeliversImmediately(t *testing.T) {
	l, _ := NewLink(80, 4)
	p := Packet{Port: PortAppData, Payload: []byte("scan")}
	if err := l.Send(p); err != nil {
		t.Fatal(err)
	}
	got := l.Receive()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("scan")) {
		t.Fatalf("Receive = %+v", got)
	}
	if l.Receive() != nil {
		t.Error("Receive did not clear delivered packets")
	}
	if l.SentTx() != 1 {
		t.Errorf("SentTx = %d", l.SentTx())
	}
}

func TestRadioOffQueuesAndDrainsOnRestart(t *testing.T) {
	l, _ := NewLink(80, 8)
	l.SetRadio(false)
	for i := 0; i < 5; i++ {
		if err := l.Send(Packet{Port: PortAppData, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Receive(); len(got) != 0 {
		t.Fatalf("packets delivered while radio off: %d", len(got))
	}
	if l.QueuedTx() != 5 {
		t.Errorf("QueuedTx = %d", l.QueuedTx())
	}
	l.SetRadio(true)
	got := l.Receive()
	if len(got) != 5 {
		t.Fatalf("drained %d packets, want 5", len(got))
	}
	for i, p := range got {
		if p.Payload[0] != byte(i) {
			t.Errorf("packet order broken at %d", i)
		}
	}
	if l.QueuedTx() != 0 {
		t.Errorf("QueuedTx after drain = %d", l.QueuedTx())
	}
}

func TestQueueOverflowDropsPackets(t *testing.T) {
	l, _ := NewLink(80, 2)
	l.SetRadio(false)
	_ = l.Send(Packet{Payload: []byte{1}})
	_ = l.Send(Packet{Payload: []byte{2}})
	err := l.Send(Packet{Payload: []byte{3}})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow error = %v, want ErrQueueFull", err)
	}
	if l.DroppedTx() != 1 {
		t.Errorf("DroppedTx = %d", l.DroppedTx())
	}
	l.SetRadio(true)
	if got := l.Receive(); len(got) != 2 {
		t.Errorf("delivered %d, want 2", len(got))
	}
}

func TestPaperQueueHoldsFullScan(t *testing.T) {
	// A full scan of ~73 APs at one AT+CWLAP line per packet must survive a
	// radio-off window with the paper's enlarged queue, and must NOT with
	// the stock queue — the reason the paper patched CRTP_TX_QUEUE_SIZE.
	const scanPackets = 73

	stock, _ := NewLink(80, DefaultTxQueueSize)
	stock.SetRadio(false)
	var stockErr error
	for i := 0; i < scanPackets; i++ {
		if err := stock.Send(Packet{Payload: []byte{byte(i)}}); err != nil {
			stockErr = err
		}
	}
	if stockErr == nil {
		t.Error("stock queue absorbed a full scan; expected drops")
	}

	patched, _ := NewLink(80, PaperTxQueueSize)
	patched.SetRadio(false)
	for i := 0; i < scanPackets; i++ {
		if err := patched.Send(Packet{Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("patched queue dropped packet %d: %v", i, err)
		}
	}
	patched.SetRadio(true)
	if got := patched.Receive(); len(got) != scanPackets {
		t.Errorf("patched queue delivered %d/%d", len(got), scanPackets)
	}
}

func TestSendRejectsInvalidPacket(t *testing.T) {
	l, _ := NewLink(80, 4)
	if err := l.Send(Packet{Payload: make([]byte, 64)}); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestQueuedPayloadIsCopied(t *testing.T) {
	l, _ := NewLink(80, 4)
	l.SetRadio(false)
	buf := []byte{42}
	_ = l.Send(Packet{Payload: buf})
	buf[0] = 99
	l.SetRadio(true)
	got := l.Receive()
	if got[0].Payload[0] != 42 {
		t.Error("queued payload aliases the caller's buffer")
	}
}

func TestInterfererFollowsRadioState(t *testing.T) {
	l, _ := NewLink(37, 16) // 2437 MHz, on Wi-Fi channel 6
	itf, active := l.Interferer()
	if !active {
		t.Fatal("radio on but no interferer")
	}
	if itf.FreqMHz != 2437 {
		t.Errorf("interferer at %v MHz, want 2437", itf.FreqMHz)
	}
	l.SetRadio(false)
	if _, active := l.Interferer(); active {
		t.Error("radio off but interferer active")
	}
	l.SetRadio(true)
	if _, active := l.Interferer(); !active {
		t.Error("radio back on but interferer inactive")
	}
}
