package esp_test

import (
	"testing"
	"time"

	"repro/internal/esp"
	"repro/internal/receiver"
	"repro/internal/receiver/receivertest"
	"repro/internal/wifi"
)

// TestDriverConformance validates the ESP8266 driver against the §II-A
// receiver contract via the shared conformance suite.
func TestDriverConformance(t *testing.T) {
	receivertest.Conformance(t, func() (receiver.Driver, error) {
		mod, err := esp.NewModule(func() []wifi.Observation {
			return []wifi.Observation{
				{SSID: "net", RSSI: -70, MAC: wifi.MAC{2, 0, 0, 0, 0, 1}, Channel: 6},
			}
		})
		if err != nil {
			return nil, err
		}
		return esp.NewDriver(mod, 2*time.Second)
	})
}
