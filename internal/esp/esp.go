// Package esp simulates the AI Thinker ESP-01 (ESP8266) Wi-Fi module the
// paper mounts on a Crazyflie prototyping deck, at the level the custom
// firmware driver interacts with it: an AT command interface over UART. The
// module supports exactly the instruction subset the paper's driver uses
// (§III-A): AT, AT+CWMODE_CUR, AT+CWLAP and AT+CWLAPOPT, and formats scan
// results as ⟨ssid, rssi, mac, channel⟩ tuples.
package esp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/wifi"
)

// ScanFunc binds the module to the physical world: it performs a beacon scan
// at the module's current (UAV-determined) position and interference
// conditions. The UAV layer injects it, keeping the module purely
// protocol-level.
type ScanFunc func() []wifi.Observation

// Wi-Fi operating modes of the CWMODE command.
const (
	ModeUnset   = 0
	ModeStation = 1
	ModeAP      = 2
	ModeBoth    = 3
)

// Module is the simulated ESP-01.
type Module struct {
	scan ScanFunc
	mode int
	// sortByRSSI and printMask are the AT+CWLAPOPT settings.
	sortByRSSI bool
	printMask  int
}

// defaultPrintMask prints ecn, ssid, rssi, mac and channel; the paper's
// driver narrows it to ssid, rssi, mac, channel.
const defaultPrintMask = 0x7FF

// NewModule creates a powered-on, un-initialised module.
func NewModule(scan ScanFunc) (*Module, error) {
	if scan == nil {
		return nil, errors.New("esp: module requires a scan binding")
	}
	return &Module{scan: scan, printMask: defaultPrintMask}, nil
}

// Mode returns the current Wi-Fi mode.
func (m *Module) Mode() int { return m.mode }

// ErrAT is the generic AT "ERROR" response.
var ErrAT = errors.New("esp: ERROR")

// Exec executes one AT command line and returns the response lines,
// excluding the final status token. A nil error corresponds to an "OK"
// response; ErrAT corresponds to "ERROR".
func (m *Module) Exec(cmd string) ([]string, error) {
	cmd = strings.TrimSpace(cmd)
	switch {
	case cmd == "AT":
		return nil, nil

	case strings.HasPrefix(cmd, "AT+CWMODE_CUR="):
		arg := strings.TrimPrefix(cmd, "AT+CWMODE_CUR=")
		mode, err := strconv.Atoi(arg)
		if err != nil || mode < ModeStation || mode > ModeBoth {
			return nil, fmt.Errorf("%w: invalid CWMODE_CUR argument %q", ErrAT, arg)
		}
		m.mode = mode
		return nil, nil

	case cmd == "AT+CWMODE_CUR?":
		return []string{fmt.Sprintf("+CWMODE_CUR:%d", m.mode)}, nil

	case strings.HasPrefix(cmd, "AT+CWLAPOPT="):
		arg := strings.TrimPrefix(cmd, "AT+CWLAPOPT=")
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%w: CWLAPOPT wants <sort>,<mask>, got %q", ErrAT, arg)
		}
		sortFlag, err1 := strconv.Atoi(parts[0])
		mask, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || sortFlag < 0 || sortFlag > 1 || mask < 0 {
			return nil, fmt.Errorf("%w: malformed CWLAPOPT %q", ErrAT, arg)
		}
		m.sortByRSSI = sortFlag == 1
		m.printMask = mask
		return nil, nil

	case cmd == "AT+CWLAP":
		if m.mode != ModeStation && m.mode != ModeBoth {
			// The real module requires station mode before scanning.
			return nil, fmt.Errorf("%w: CWLAP requires station mode (current %d)", ErrAT, m.mode)
		}
		obs := m.scan()
		lines := make([]string, 0, len(obs))
		for _, o := range obs {
			lines = append(lines, m.formatCWLAP(o))
		}
		return lines, nil

	default:
		return nil, fmt.Errorf("%w: unknown command %q", ErrAT, cmd)
	}
}

// CWLAPOPT print-mask bits (subset used here, mirroring the ESP AT manual).
const (
	maskECN     = 1 << 0
	maskSSID    = 1 << 1
	maskRSSI    = 1 << 2
	maskMAC     = 1 << 3
	maskChannel = 1 << 4
)

// PaperPrintMask selects the ⟨ssid, rssi, mac, channel⟩ tuple the paper's
// driver configures via AT+CWLAPOPT.
const PaperPrintMask = maskSSID | maskRSSI | maskMAC | maskChannel

// formatCWLAP renders one observation per the active print mask, e.g.
// +CWLAP:("telenet-1F2A",-67,"AA:BB:CC:DD:EE:FF",6).
func (m *Module) formatCWLAP(o wifi.Observation) string {
	fields := make([]string, 0, 5)
	if m.printMask&maskECN != 0 {
		fields = append(fields, "3") // WPA2_PSK; encryption is irrelevant to the REM
	}
	if m.printMask&maskSSID != 0 {
		fields = append(fields, strconv.Quote(o.SSID))
	}
	if m.printMask&maskRSSI != 0 {
		fields = append(fields, strconv.Itoa(o.RSSI))
	}
	if m.printMask&maskMAC != 0 {
		fields = append(fields, strconv.Quote(o.MAC.String()))
	}
	if m.printMask&maskChannel != 0 {
		fields = append(fields, strconv.Itoa(o.Channel))
	}
	return "+CWLAP:(" + strings.Join(fields, ",") + ")"
}

// ParseCWLAP parses a +CWLAP line produced with PaperPrintMask back into its
// fields. It is the "parse the output" half of the driver contract.
func ParseCWLAP(line string) (ssid string, rssi int, mac string, channel int, err error) {
	const prefix = "+CWLAP:("
	if !strings.HasPrefix(line, prefix) || !strings.HasSuffix(line, ")") {
		return "", 0, "", 0, fmt.Errorf("esp: malformed CWLAP line %q", line)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(line, prefix), ")")
	fields, err := splitQuoted(body)
	if err != nil {
		return "", 0, "", 0, fmt.Errorf("esp: %w in line %q", err, line)
	}
	if len(fields) != 4 {
		return "", 0, "", 0, fmt.Errorf("esp: CWLAP line %q has %d fields, want 4", line, len(fields))
	}
	ssid, err = strconv.Unquote(fields[0])
	if err != nil {
		return "", 0, "", 0, fmt.Errorf("esp: bad ssid field %q: %w", fields[0], err)
	}
	rssi, err = strconv.Atoi(fields[1])
	if err != nil {
		return "", 0, "", 0, fmt.Errorf("esp: bad rssi field %q: %w", fields[1], err)
	}
	mac, err = strconv.Unquote(fields[2])
	if err != nil {
		return "", 0, "", 0, fmt.Errorf("esp: bad mac field %q: %w", fields[2], err)
	}
	if _, err := wifi.ParseMAC(mac); err != nil {
		return "", 0, "", 0, err
	}
	channel, err = strconv.Atoi(fields[3])
	if err != nil {
		return "", 0, "", 0, fmt.Errorf("esp: bad channel field %q: %w", fields[3], err)
	}
	return ssid, rssi, mac, channel, nil
}

// splitQuoted splits a comma-separated field list, respecting quoted strings
// (SSIDs may contain commas).
func splitQuoted(s string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == ',' && !inQuote:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, errors.New("unterminated quote")
	}
	fields = append(fields, cur.String())
	return fields, nil
}
