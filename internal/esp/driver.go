package esp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/receiver"
)

// Driver adapts the ESP-01 module's AT interface to the toolchain's
// four-instruction receiver contract (§II-A). It mirrors the paper's custom
// C driver for the Crazyflie 2021.06 firmware: initialise the module into
// station mode, narrow CWLAP output to the ⟨ssid, rssi, mac, channel⟩ tuple,
// trigger scans, and parse the raw response lines.
type Driver struct {
	mod         *Module
	scanTime    time.Duration
	initialized bool
	raw         []string
	scanned     bool
}

var (
	_ receiver.Driver     = (*Driver)(nil)
	_ receiver.Timed      = (*Driver)(nil)
	_ receiver.Technology = (*Driver)(nil)
)

// NewDriver wraps a module. scanTime is the air time of one AT+CWLAP sweep,
// used by the mission layer to budget hover time (the paper's scans take
// ≈2 s).
func NewDriver(mod *Module, scanTime time.Duration) (*Driver, error) {
	if mod == nil {
		return nil, errors.New("esp: driver requires a module")
	}
	if scanTime <= 0 {
		return nil, errors.New("esp: scan time must be positive")
	}
	return &Driver{mod: mod, scanTime: scanTime}, nil
}

// Init implements instruction i: AT start-up test, station mode, output
// format.
func (d *Driver) Init() error {
	if _, err := d.mod.Exec("AT"); err != nil {
		return fmt.Errorf("esp: start-up test failed: %w", err)
	}
	if _, err := d.mod.Exec(fmt.Sprintf("AT+CWMODE_CUR=%d", ModeStation)); err != nil {
		return fmt.Errorf("esp: setting station mode failed: %w", err)
	}
	if _, err := d.mod.Exec(fmt.Sprintf("AT+CWLAPOPT=1,%d", PaperPrintMask)); err != nil {
		return fmt.Errorf("esp: configuring CWLAP output failed: %w", err)
	}
	d.initialized = true
	return nil
}

// Status implements instruction ii: checking the state of the receiver.
func (d *Driver) Status() error {
	if !d.initialized {
		return errors.New("esp: driver not initialised")
	}
	if _, err := d.mod.Exec("AT"); err != nil {
		return fmt.Errorf("esp: module not responding: %w", err)
	}
	return nil
}

// TriggerScan implements instruction iii: instructing the receiver to
// collect a measurement.
func (d *Driver) TriggerScan() error {
	if err := d.Status(); err != nil {
		return err
	}
	lines, err := d.mod.Exec("AT+CWLAP")
	if err != nil {
		return fmt.Errorf("esp: scan failed: %w", err)
	}
	d.raw = lines
	d.scanned = true
	return nil
}

// Results implements instruction iv: parsing the output of the previous
// instruction.
func (d *Driver) Results() ([]receiver.Measurement, error) {
	if !d.scanned {
		return nil, errors.New("esp: no scan results pending; call TriggerScan first")
	}
	out := make([]receiver.Measurement, 0, len(d.raw))
	for _, line := range d.raw {
		ssid, rssi, mac, channel, err := ParseCWLAP(line)
		if err != nil {
			return nil, err
		}
		out = append(out, receiver.Measurement{
			Key:     mac,
			Name:    ssid,
			RSSI:    rssi,
			Channel: channel,
		})
	}
	d.scanned = false
	d.raw = nil
	return out, nil
}

// ScanDuration implements receiver.Timed.
func (d *Driver) ScanDuration() time.Duration { return d.scanTime }

// TechnologyName implements receiver.Technology.
func (d *Driver) TechnologyName() string { return "wifi-2.4" }
