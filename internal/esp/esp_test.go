package esp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/wifi"
)

func fixedScan(obs []wifi.Observation) ScanFunc {
	return func() []wifi.Observation { return obs }
}

var sampleObs = []wifi.Observation{
	{SSID: "telenet-1F2A", RSSI: -67, MAC: wifi.MAC{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}, Channel: 6},
	{SSID: "home, sweet", RSSI: -80, MAC: wifi.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}, Channel: 11},
}

func TestNewModuleRequiresScan(t *testing.T) {
	if _, err := NewModule(nil); err == nil {
		t.Error("nil scan accepted")
	}
}

func TestATBasic(t *testing.T) {
	m, err := NewModule(fixedScan(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec("AT"); err != nil {
		t.Errorf("AT returned %v", err)
	}
	if _, err := m.Exec("AT+BOGUS"); !errors.Is(err, ErrAT) {
		t.Errorf("unknown command error = %v, want ErrAT", err)
	}
}

func TestCWModeCur(t *testing.T) {
	m, _ := NewModule(fixedScan(nil))
	if m.Mode() != ModeUnset {
		t.Errorf("initial mode = %d", m.Mode())
	}
	if _, err := m.Exec("AT+CWMODE_CUR=1"); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeStation {
		t.Errorf("mode = %d, want station", m.Mode())
	}
	lines, err := m.Exec("AT+CWMODE_CUR?")
	if err != nil || len(lines) != 1 || lines[0] != "+CWMODE_CUR:1" {
		t.Errorf("query = %v, %v", lines, err)
	}
	for _, bad := range []string{"AT+CWMODE_CUR=0", "AT+CWMODE_CUR=4", "AT+CWMODE_CUR=x"} {
		if _, err := m.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCWLAPRequiresStationMode(t *testing.T) {
	m, _ := NewModule(fixedScan(sampleObs))
	if _, err := m.Exec("AT+CWLAP"); !errors.Is(err, ErrAT) {
		t.Errorf("CWLAP before station mode error = %v, want ErrAT", err)
	}
	if _, err := m.Exec("AT+CWMODE_CUR=1"); err != nil {
		t.Fatal(err)
	}
	lines, err := m.Exec("AT+CWLAP")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("CWLAP lines = %v", lines)
	}
}

func TestCWLAPOPTAndFormatting(t *testing.T) {
	m, _ := NewModule(fixedScan(sampleObs[:1]))
	mustExec(t, m, "AT+CWMODE_CUR=1")
	mustExec(t, m, "AT+CWLAPOPT=1,30") // paper mask: ssid|rssi|mac|channel

	lines, err := m.Exec("AT+CWLAP")
	if err != nil {
		t.Fatal(err)
	}
	want := `+CWLAP:("telenet-1F2A",-67,"AA:BB:CC:DD:EE:FF",6)`
	if lines[0] != want {
		t.Errorf("CWLAP line = %q, want %q", lines[0], want)
	}
}

func TestCWLAPOPTValidation(t *testing.T) {
	m, _ := NewModule(fixedScan(nil))
	for _, bad := range []string{"AT+CWLAPOPT=1", "AT+CWLAPOPT=2,30", "AT+CWLAPOPT=1,-1", "AT+CWLAPOPT=a,b"} {
		if _, err := m.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFullMaskIncludesECN(t *testing.T) {
	m, _ := NewModule(fixedScan(sampleObs[:1]))
	mustExec(t, m, "AT+CWMODE_CUR=1")
	lines, err := m.Exec("AT+CWLAP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lines[0], "+CWLAP:(3,") {
		t.Errorf("default mask should include ecn: %q", lines[0])
	}
}

func TestParseCWLAPRoundTrip(t *testing.T) {
	m, _ := NewModule(fixedScan(sampleObs))
	mustExec(t, m, "AT+CWMODE_CUR=1")
	mustExec(t, m, "AT+CWLAPOPT=1,30")
	lines, err := m.Exec("AT+CWLAP")
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range lines {
		ssid, rssi, mac, ch, err := ParseCWLAP(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		want := sampleObs[i]
		if ssid != want.SSID || rssi != want.RSSI || mac != want.MAC.String() || ch != want.Channel {
			t.Errorf("round trip mismatch: got (%q,%d,%q,%d), want %+v", ssid, rssi, mac, ch, want)
		}
	}
}

func TestParseCWLAPSSIDWithComma(t *testing.T) {
	line := `+CWLAP:("home, sweet",-80,"02:00:00:00:00:01",11)`
	ssid, rssi, mac, ch, err := ParseCWLAP(line)
	if err != nil {
		t.Fatal(err)
	}
	if ssid != "home, sweet" || rssi != -80 || mac != "02:00:00:00:00:01" || ch != 11 {
		t.Errorf("parsed (%q,%d,%q,%d)", ssid, rssi, mac, ch)
	}
}

func TestParseCWLAPErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"+CWLAP:(",
		`CWLAP:("x",-1,"02:00:00:00:00:01",1)`,
		`+CWLAP:("x",-1,"02:00:00:00:00:01")`, // 3 fields
		`+CWLAP:("x",notanumber,"02:00:00:00:00:01",1)`,       // bad rssi
		`+CWLAP:("x",-1,"zz:00:00:00:00:01",1)`,               // bad mac
		`+CWLAP:("x",-1,"02:00:00:00:00:01",c)`,               // bad channel
		`+CWLAP:("unterminated,-1,"02:00:00:00:00:01",1)`,     // quote chaos
		`+CWLAP:(x,-1,"02:00:00:00:00:01",1)`,                 // unquoted ssid
		`+CWLAP:("x",-1,"02:00:00:00:00:01",1,"extra-field")`, // 5 fields
	} {
		if _, _, _, _, err := ParseCWLAP(bad); err == nil {
			t.Errorf("ParseCWLAP(%q) accepted", bad)
		}
	}
}

func TestDriverLifecycle(t *testing.T) {
	m, _ := NewModule(fixedScan(sampleObs))
	d, err := NewDriver(m, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Status before Init must fail (instruction ordering).
	if err := d.Status(); err == nil {
		t.Error("Status before Init accepted")
	}
	if err := d.TriggerScan(); err == nil {
		t.Error("TriggerScan before Init accepted")
	}
	if _, err := d.Results(); err == nil {
		t.Error("Results before scan accepted")
	}

	if err := d.Init(); err != nil {
		t.Fatal(err)
	}
	if err := d.Status(); err != nil {
		t.Fatal(err)
	}
	if err := d.TriggerScan(); err != nil {
		t.Fatal(err)
	}
	ms, err := d.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Key != "AA:BB:CC:DD:EE:FF" || ms[0].RSSI != -67 || ms[0].Name != "telenet-1F2A" || ms[0].Channel != 6 {
		t.Errorf("measurement = %+v", ms[0])
	}

	// Results are one-shot: a second call without a new scan must fail.
	if _, err := d.Results(); err == nil {
		t.Error("second Results without scan accepted")
	}
}

func TestDriverInitSetsStationMode(t *testing.T) {
	m, _ := NewModule(fixedScan(nil))
	d, _ := NewDriver(m, time.Second)
	if err := d.Init(); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeStation {
		t.Errorf("mode after Init = %d", m.Mode())
	}
}

func TestDriverMetadata(t *testing.T) {
	m, _ := NewModule(fixedScan(nil))
	d, _ := NewDriver(m, 1700*time.Millisecond)
	if d.ScanDuration() != 1700*time.Millisecond {
		t.Errorf("ScanDuration = %v", d.ScanDuration())
	}
	if d.TechnologyName() != "wifi-2.4" {
		t.Errorf("TechnologyName = %q", d.TechnologyName())
	}
}

func TestNewDriverValidation(t *testing.T) {
	if _, err := NewDriver(nil, time.Second); err == nil {
		t.Error("nil module accepted")
	}
	m, _ := NewModule(fixedScan(nil))
	if _, err := NewDriver(m, 0); err == nil {
		t.Error("zero scan time accepted")
	}
}

func mustExec(t *testing.T, m *Module, cmd string) {
	t.Helper()
	if _, err := m.Exec(cmd); err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
}
