package esp

import (
	"testing"
	"testing/quick"

	"repro/internal/wifi"
)

// TestCWLAPQuickRoundTrip formats arbitrary observations through the
// module's CWLAP output (paper mask) and parses them back; the tuple must
// survive exactly, including SSIDs with commas, quotes and escapes.
func TestCWLAPQuickRoundTrip(t *testing.T) {
	m, err := NewModule(func() []wifi.Observation { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec("AT+CWMODE_CUR=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec("AT+CWLAPOPT=1,30"); err != nil {
		t.Fatal(err)
	}

	f := func(ssidRaw []byte, rssi int8, macBytes [6]byte, channel uint8) bool {
		// SSIDs are arbitrary printable-ish bytes up to 32 long.
		if len(ssidRaw) > 32 {
			ssidRaw = ssidRaw[:32]
		}
		ssid := string(ssidRaw)
		ch := int(channel)%13 + 1
		obs := wifi.Observation{
			SSID:    ssid,
			RSSI:    int(rssi),
			MAC:     wifi.MAC(macBytes),
			Channel: ch,
		}
		line := m.formatCWLAP(obs)
		gotSSID, gotRSSI, gotMAC, gotCh, err := ParseCWLAP(line)
		if err != nil {
			t.Logf("parse error for %q: %v", line, err)
			return false
		}
		return gotSSID == ssid && gotRSSI == int(rssi) &&
			gotMAC == obs.MAC.String() && gotCh == ch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseCWLAPQuickNeverPanics feeds arbitrary strings to the parser.
func TestParseCWLAPQuickNeverPanics(t *testing.T) {
	f := func(line string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", line, r)
			}
		}()
		_, _, _, _, _ = ParseCWLAP(line)
		_, _, _, _, _ = ParseCWLAP("+CWLAP:(" + line + ")")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
