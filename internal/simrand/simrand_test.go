package simrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("uwb")
	b := root.Derive("wifi")
	a2 := New(7).Derive("uwb")
	if a.Uint64() != a2.Uint64() {
		t.Error("Derive is not reproducible")
	}
	if a.Uint64() == b.Uint64() {
		t.Error("differently named sub-streams should differ")
	}
}

func TestDeriveN(t *testing.T) {
	root := New(7)
	s0 := root.DeriveN("ap", 0)
	s1 := root.DeriveN("ap", 1)
	if s0.Uint64() == s1.Uint64() {
		t.Error("indexed sub-streams should differ")
	}
	again := New(7).DeriveN("ap", 0)
	s0b := New(7).DeriveN("ap", 0)
	if again.Uint64() != s0b.Uint64() {
		t.Error("DeriveN not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[s.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d drawn %d/10000 times", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestGaussMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Gauss(-73, 4.5)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean+73) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ≈ -73", mean)
	}
	if math.Abs(math.Sqrt(variance)-4.5) > 0.05 {
		t.Errorf("Gaussian stddev = %v, want ≈ 4.5", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	s.Exp(0)
}

func TestRicianPositive(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		if r := s.Rician(1, 0.5); r < 0 {
			t.Fatalf("Rician draw negative: %v", r)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	s := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Error("shuffle lost elements")
	}
	different := false
	for i := range xs {
		if xs[i] != orig[i] {
			different = true
			break
		}
	}
	if !different {
		t.Error("shuffle of 10 elements left order unchanged (astronomically unlikely)")
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(37)
	for i := 0; i < 1000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
