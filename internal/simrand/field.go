package simrand

import (
	"hash/fnv"
	"math"
)

// GaussianField is a deterministic, spatially correlated Gaussian random
// field over 3-D space. It models log-normal shadow fading: nearby points see
// similar shadowing values, with correlation decaying over the decorrelation
// distance (the Gudmundson model commonly used in indoor propagation
// studies).
//
// The field is realised as independent N(0,1) values on a cubic lattice with
// spacing equal to the decorrelation distance, interpolated trilinearly and
// rescaled to preserve the requested standard deviation. Evaluation is pure:
// the same coordinates always produce the same value regardless of query
// order, which keeps whole-simulation determinism trivial.
type GaussianField struct {
	seed    uint64
	stddev  float64
	spacing float64
}

// NewGaussianField creates a field with the given per-point standard
// deviation and decorrelation distance (lattice spacing, metres). It panics
// if spacing <= 0 or stddev < 0, which indicate programming errors in the
// caller's configuration.
func NewGaussianField(seed uint64, stddev, spacing float64) *GaussianField {
	if spacing <= 0 {
		panic("simrand: field spacing must be positive")
	}
	if stddev < 0 {
		panic("simrand: field stddev must be non-negative")
	}
	return &GaussianField{seed: seed, stddev: stddev, spacing: spacing}
}

// StdDev returns the field's configured standard deviation.
func (f *GaussianField) StdDev() float64 { return f.stddev }

// DecorrelationDistance returns the field's lattice spacing.
func (f *GaussianField) DecorrelationDistance() float64 { return f.spacing }

// At evaluates the field at (x, y, z).
func (f *GaussianField) At(x, y, z float64) float64 {
	if f.stddev == 0 {
		return 0
	}
	gx, gy, gz := x/f.spacing, y/f.spacing, z/f.spacing
	ix, iy, iz := math.Floor(gx), math.Floor(gy), math.Floor(gz)
	fx, fy, fz := gx-ix, gy-iy, gz-iz
	// Smoothstep weights give a C1-continuous field.
	wx, wy, wz := smooth(fx), smooth(fy), smooth(fz)

	var acc, wsum float64
	for dx := 0; dx <= 1; dx++ {
		for dy := 0; dy <= 1; dy++ {
			for dz := 0; dz <= 1; dz++ {
				w := pick(wx, dx) * pick(wy, dy) * pick(wz, dz)
				g := f.latticeGauss(int64(ix)+int64(dx), int64(iy)+int64(dy), int64(iz)+int64(dz))
				acc += w * g
				wsum += w * w
			}
		}
	}
	if wsum == 0 {
		return 0
	}
	// Dividing by sqrt(Σw²) restores unit variance after interpolation.
	return f.stddev * acc / math.Sqrt(wsum)
}

// latticeGauss returns the deterministic N(0,1) value attached to a lattice
// node.
func (f *GaussianField) latticeGauss(ix, iy, iz int64) float64 {
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], uint64(ix))
	put64(buf[8:16], uint64(iy))
	put64(buf[16:24], uint64(iz))
	_, _ = h.Write(buf[:])
	s := New(mix(f.seed ^ h.Sum64()))
	return s.NormFloat64()
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

func pick(w float64, d int) float64 {
	if d == 0 {
		return 1 - w
	}
	return w
}
