// Package simrand provides the deterministic randomness substrate for the
// whole simulation. Every stochastic component (ranging noise, shadowing,
// beacon arrivals, ML weight initialisation, ...) draws from a named
// sub-stream derived from a single master seed, so entire experiments are
// bit-reproducible and independent of the order in which components consume
// randomness.
package simrand

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random stream. It implements the
// SplitMix64 generator, which is small, fast, has a full 2^64 period, and
// passes BigCrush — more than adequate for simulation noise.
type Source struct {
	state uint64
	// spare holds a cached second Gaussian draw from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// New returns a stream seeded with the given value.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new independent stream keyed by the given name. Streams
// derived with different names from the same parent are statistically
// independent; deriving the same name twice yields identical streams.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(mix(s.state ^ h.Sum64()))
}

// DeriveN returns a stream keyed by name and an integer index, convenient for
// per-entity streams (per-AP fading, per-anchor noise, ...).
func (s *Source) DeriveN(name string, n int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(mix(s.state ^ h.Sum64() ^ (uint64(n)+1)*0x9E3779B97F4A7C15))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform draw in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard Gaussian draw via Box-Muller.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u1 float64
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.spare = r * math.Sin(2*math.Pi*u2)
	s.hasSpare = true
	return r * math.Cos(2*math.Pi*u2)
}

// Gauss returns a Gaussian draw with the given mean and standard deviation.
func (s *Source) Gauss(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// Exp returns an exponentially distributed draw with the given rate. It
// panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exp with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Rician returns a draw from a Rician distribution with line-of-sight
// amplitude nu and scatter sigma. It models small-scale fading envelopes in
// indoor channels with a dominant path.
func (s *Source) Rician(nu, sigma float64) float64 {
	x := s.Gauss(nu, sigma)
	y := s.Gauss(0, sigma)
	return math.Hypot(x, y)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n indices using the provided swap
// function, mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
