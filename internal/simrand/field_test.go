package simrand

import (
	"math"
	"testing"
)

func TestFieldDeterminism(t *testing.T) {
	f := NewGaussianField(99, 4.0, 2.0)
	a := f.At(1.23, 4.56, 0.78)
	b := f.At(1.23, 4.56, 0.78)
	if a != b {
		t.Errorf("field not deterministic: %v vs %v", a, b)
	}
	g := NewGaussianField(99, 4.0, 2.0)
	if g.At(1.23, 4.56, 0.78) != a {
		t.Error("field not reproducible across instances")
	}
}

func TestFieldSeedSensitivity(t *testing.T) {
	f := NewGaussianField(1, 4.0, 2.0)
	g := NewGaussianField(2, 4.0, 2.0)
	if f.At(0.5, 0.5, 0.5) == g.At(0.5, 0.5, 0.5) {
		t.Error("different seeds produced identical field values")
	}
}

func TestFieldZeroStdDev(t *testing.T) {
	f := NewGaussianField(1, 0, 2.0)
	if got := f.At(3, 1, 4); got != 0 {
		t.Errorf("zero-stddev field returned %v", got)
	}
}

func TestFieldMarginalStats(t *testing.T) {
	f := NewGaussianField(7, 4.0, 2.0)
	// Sample at lattice-decorrelated points; marginal should be ~N(0, 4²).
	var sum, sumSq float64
	n := 0
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			v := f.At(float64(i)*6.0, float64(j)*6.0, 1.0)
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.4 {
		t.Errorf("field mean = %v, want ≈0", mean)
	}
	if sd < 3.0 || sd > 5.0 {
		t.Errorf("field stddev = %v, want ≈4", sd)
	}
}

func TestFieldSpatialCorrelation(t *testing.T) {
	f := NewGaussianField(11, 4.0, 2.0)
	// Nearby points must be much more similar than far-apart points.
	var nearDiff, farDiff float64
	const n = 300
	for i := 0; i < n; i++ {
		x, y := float64(i)*0.37, float64(i)*0.73
		base := f.At(x, y, 1)
		nearDiff += math.Abs(f.At(x+0.1, y, 1) - base)
		farDiff += math.Abs(f.At(x+20, y+20, 1) - base)
	}
	if nearDiff >= farDiff*0.5 {
		t.Errorf("near diff %v not ≪ far diff %v — field is not spatially correlated", nearDiff/n, farDiff/n)
	}
}

func TestFieldContinuity(t *testing.T) {
	f := NewGaussianField(13, 4.0, 2.0)
	// Field must be continuous: small displacement ⇒ small change.
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.17
		d := math.Abs(f.At(x+1e-6, 1, 1) - f.At(x, 1, 1))
		if d > 1e-3 {
			t.Fatalf("discontinuity at x=%v: Δ=%v", x, d)
		}
	}
}

func TestFieldAccessors(t *testing.T) {
	f := NewGaussianField(1, 4.5, 2.5)
	if f.StdDev() != 4.5 {
		t.Errorf("StdDev = %v", f.StdDev())
	}
	if f.DecorrelationDistance() != 2.5 {
		t.Errorf("DecorrelationDistance = %v", f.DecorrelationDistance())
	}
}

func TestFieldInvalidConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-spacing":    func() { NewGaussianField(1, 1, 0) },
		"negative-stddev": func() { NewGaussianField(1, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFieldNegativeCoordinates(t *testing.T) {
	f := NewGaussianField(3, 4.0, 2.0)
	v := f.At(-10.5, -3.3, -0.7)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("field at negative coords = %v", v)
	}
}
