package uav

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Firmware timeout constants (§II-C).
const (
	// LevelingTimeout is the stock firmware behaviour: with no setpoint
	// for over 500 ms the Crazyflie zeroes its attitude angles to
	// stabilise itself.
	LevelingTimeout = 500 * time.Millisecond
	// DefaultWatchdogShutdown is the stock COMMANDER_WDT_TIMEOUT_SHUTDOWN:
	// with no setpoint for this long the Crazyflie shuts down, assuming
	// something went wrong. Too short to bridge a radio-off scan.
	DefaultWatchdogShutdown = 2 * time.Second
	// PaperWatchdogShutdown is the paper's patched value, long enough to
	// bridge the radio shutdown period during a scan.
	PaperWatchdogShutdown = 10 * time.Second
	// FeedbackInterval is the period of the paper's extra FreeRTOS task
	// that re-feeds the scanning position to the commander while the
	// radio is down.
	FeedbackInterval = 100 * time.Millisecond
)

// CommanderState describes the setpoint watchdog's verdict.
type CommanderState int

// Watchdog states, from healthy to failed.
const (
	// CommanderActive means setpoints are fresh.
	CommanderActive CommanderState = iota + 1
	// CommanderLeveling means no setpoint for >500 ms; attitude zeroed.
	CommanderLeveling
	// CommanderShutdown means the watchdog expired; motors stopped.
	CommanderShutdown
)

// String implements fmt.Stringer.
func (s CommanderState) String() string {
	switch s {
	case CommanderActive:
		return "active"
	case CommanderLeveling:
		return "leveling"
	case CommanderShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("CommanderState(%d)", int(s))
	}
}

// Commander is the firmware component that consumes setpoints and enforces
// the safety watchdog (Figure 4 of the paper).
type Commander struct {
	clock            sim.Clock
	watchdogShutdown time.Duration
	lastSetpoint     time.Duration
	everFed          bool
	shutdown         bool
}

// NewCommander creates a commander against the simulation clock with the
// given shutdown timeout.
func NewCommander(clock sim.Clock, watchdogShutdown time.Duration) (*Commander, error) {
	if clock == nil {
		return nil, fmt.Errorf("uav: commander requires a clock")
	}
	if watchdogShutdown <= LevelingTimeout {
		return nil, fmt.Errorf("uav: watchdog shutdown %v must exceed the %v levelling timeout",
			watchdogShutdown, LevelingTimeout)
	}
	return &Commander{clock: clock, watchdogShutdown: watchdogShutdown}, nil
}

// WatchdogTimeout returns the configured shutdown timeout.
func (c *Commander) WatchdogTimeout() time.Duration { return c.watchdogShutdown }

// Feed registers a fresh setpoint (from the radio link or from the on-board
// position-feedback task). Feeding after shutdown has no effect: a real
// Crazyflie stays down until rebooted.
func (c *Commander) Feed() {
	if c.shutdown {
		return
	}
	c.lastSetpoint = c.clock.Now()
	c.everFed = true
}

// State evaluates the watchdog at the current virtual time. Once shutdown is
// reached it latches.
func (c *Commander) State() CommanderState {
	if c.shutdown {
		return CommanderShutdown
	}
	if !c.everFed {
		return CommanderActive // pre-flight; watchdog arms on first feed
	}
	idle := c.clock.Now() - c.lastSetpoint
	switch {
	case idle > c.watchdogShutdown:
		c.shutdown = true
		return CommanderShutdown
	case idle > LevelingTimeout:
		return CommanderLeveling
	default:
		return CommanderActive
	}
}
