package uav

import (
	"fmt"

	"repro/internal/crtp"
	"repro/internal/receiver"
)

// Scan-result wire format on the CRTP app-data port. One measurement per
// packet: [keyLen u8][key bytes][rssi i8][channel u8][nameLen u8][name
// bytes], truncated to fit the 30-byte CRTP payload. The key (MAC/address)
// is never truncated — it is the REM's primary key; the human-readable name
// is best-effort.
const (
	maxKeyLen = 17 // "AA:BB:CC:DD:EE:FF"
	headerLen = 4  // keyLen + rssi + channel + nameLen
)

// EncodeMeasurement marshals a measurement into a CRTP packet.
func EncodeMeasurement(m receiver.Measurement) (crtp.Packet, error) {
	if len(m.Key) == 0 || len(m.Key) > maxKeyLen {
		return crtp.Packet{}, fmt.Errorf("uav: measurement key %q must be 1..%d bytes", m.Key, maxKeyLen)
	}
	if m.RSSI < -128 || m.RSSI > 127 {
		return crtp.Packet{}, fmt.Errorf("uav: RSSI %d does not fit int8", m.RSSI)
	}
	if m.Channel < 0 || m.Channel > 255 {
		return crtp.Packet{}, fmt.Errorf("uav: channel %d does not fit uint8", m.Channel)
	}
	nameBudget := crtp.MaxPayload - headerLen - len(m.Key)
	name := m.Name
	if len(name) > nameBudget {
		name = name[:nameBudget]
	}
	payload := make([]byte, 0, headerLen+len(m.Key)+len(name))
	payload = append(payload, byte(len(m.Key)))
	payload = append(payload, m.Key...)
	payload = append(payload, byte(int8(m.RSSI)), byte(m.Channel), byte(len(name)))
	payload = append(payload, name...)
	return crtp.Packet{Port: crtp.PortAppData, Payload: payload}, nil
}

// DecodeMeasurement unmarshals a scan-result packet.
func DecodeMeasurement(p crtp.Packet) (receiver.Measurement, error) {
	if p.Port != crtp.PortAppData {
		return receiver.Measurement{}, fmt.Errorf("uav: packet on port %d is not a scan result", p.Port)
	}
	b := p.Payload
	if len(b) < 1 {
		return receiver.Measurement{}, fmt.Errorf("uav: empty scan-result payload")
	}
	keyLen := int(b[0])
	if keyLen == 0 || keyLen > maxKeyLen || len(b) < 1+keyLen+3 {
		return receiver.Measurement{}, fmt.Errorf("uav: malformed scan-result payload (keyLen=%d, len=%d)", keyLen, len(b))
	}
	key := string(b[1 : 1+keyLen])
	rssi := int(int8(b[1+keyLen]))
	channel := int(b[2+keyLen])
	nameLen := int(b[3+keyLen])
	rest := b[4+keyLen:]
	if nameLen > len(rest) {
		return receiver.Measurement{}, fmt.Errorf("uav: scan-result name truncated (want %d, have %d)", nameLen, len(rest))
	}
	return receiver.Measurement{
		Key:     key,
		Name:    string(rest[:nameLen]),
		RSSI:    rssi,
		Channel: channel,
	}, nil
}
