package uav

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/crtp"
	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/receiver"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// Config describes one Crazyflie 2.1 with its deck load.
type Config struct {
	// Name labels the UAV ("A", "B", ...).
	Name string
	// RadioChannel is the CRTP nRF24 channel.
	RadioChannel int
	// TxQueueSize is the firmware CRTP TX queue capacity.
	TxQueueSize int
	// MaxSpeedMPS limits translation speed.
	MaxSpeedMPS float64
	// BatteryCapacityJ is the usable pack energy.
	BatteryCapacityJ float64
	// HoverPowerW is the hover draw with the LPD and receiver decks
	// mounted (their weight is why endurance drops below the advertised
	// 7 min).
	HoverPowerW float64
	// MovePowerW is the extra draw while translating.
	MovePowerW float64
	// ScanPowerW is the extra draw while the receiver deck scans.
	ScanPowerW float64
	// WatchdogShutdown is COMMANDER_WDT_TIMEOUT_SHUTDOWN.
	WatchdogShutdown time.Duration
	// FeedbackTask enables the paper's extra FreeRTOS task that re-feeds
	// the scan position to the commander every 100 ms while the radio is
	// down. Without it (and with the stock watchdog) scans kill the UAV.
	FeedbackTask bool
	// KeepRadioOnDuringScan disables the paper's self-interference
	// mitigation (the radio stays up while scanning). Only used by the
	// mitigation ablation (experiment E8); the default is false.
	KeepRadioOnDuringScan bool
	// Seed derives the UAV's noise streams.
	Seed uint64
}

// DefaultConfig returns a paper-faithful Crazyflie: patched watchdog,
// enlarged TX queue, feedback task enabled, and an energy budget calibrated
// to the measured 6 min 12 s scan-hover endurance.
func DefaultConfig(name string, radioChannel int, seed uint64) Config {
	return Config{
		Name:             name,
		RadioChannel:     radioChannel,
		TxQueueSize:      crtp.PaperTxQueueSize,
		MaxSpeedMPS:      0.8,
		BatteryCapacityJ: 5850, // ≈ full pack at the deck-laden hover draw below
		HoverPowerW:      15.7,
		MovePowerW:       1.1,
		ScanPowerW:       0.5,
		WatchdogShutdown: PaperWatchdogShutdown,
		FeedbackTask:     true,
		Seed:             seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Name == "" {
		return errors.New("uav: config needs a name")
	}
	if c.MaxSpeedMPS <= 0 {
		return errors.New("uav: max speed must be positive")
	}
	if c.BatteryCapacityJ <= 0 || c.HoverPowerW <= 0 {
		return errors.New("uav: battery capacity and hover power must be positive")
	}
	if c.MovePowerW < 0 || c.ScanPowerW < 0 {
		return errors.New("uav: move/scan power must be non-negative")
	}
	return nil
}

// Crazyflie state errors.
var (
	// ErrNotFlying is returned for flight commands while on the ground.
	ErrNotFlying = errors.New("uav: not flying")
	// ErrBatteryDepleted is returned when the pack empties mid-operation;
	// the paper describes the UAV becoming "less responsive and its
	// motions erratic".
	ErrBatteryDepleted = errors.New("uav: battery depleted, behaviour erratic")
	// ErrWatchdogShutdown is returned when the commander watchdog expires
	// (no setpoint within COMMANDER_WDT_TIMEOUT_SHUTDOWN).
	ErrWatchdogShutdown = errors.New("uav: commander watchdog shutdown")
)

// Crazyflie is one simulated UAV with its decks.
type Crazyflie struct {
	cfg       Config
	engine    *sim.Engine
	battery   *Battery
	commander *Commander
	link      *crtp.Link
	driver    receiver.Driver
	lps       *uwb.Constellation
	filter    *ekf.Filter
	rng       *simrand.Source

	truePos geom.Vec3
	flying  bool
	scans   int
}

// New assembles a Crazyflie. The receiver driver and the UWB constellation
// are its two expansion decks (§II: both expansion slots are used — one for
// the Loco Positioning Deck, one for the REM-generating receiver).
func New(cfg Config, engine *sim.Engine, drv receiver.Driver, lps *uwb.Constellation, start geom.Vec3) (*Crazyflie, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || drv == nil || lps == nil {
		return nil, errors.New("uav: engine, driver and constellation are required")
	}
	bat, err := NewBattery(cfg.BatteryCapacityJ)
	if err != nil {
		return nil, err
	}
	cmd, err := NewCommander(engine, cfg.WatchdogShutdown)
	if err != nil {
		return nil, err
	}
	link, err := crtp.NewLink(cfg.RadioChannel, cfg.TxQueueSize)
	if err != nil {
		return nil, err
	}
	filt, err := ekf.New(start, ekf.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Crazyflie{
		cfg:       cfg,
		engine:    engine,
		battery:   bat,
		commander: cmd,
		link:      link,
		driver:    drv,
		lps:       lps,
		filter:    filt,
		rng:       simrand.New(cfg.Seed).Derive("uav-" + cfg.Name),
		truePos:   start,
	}, nil
}

// Name returns the UAV's label.
func (cf *Crazyflie) Name() string { return cf.cfg.Name }

// TruePos returns the ground-truth position (the simulation knows it; the
// UAV itself only knows EstimatedPos).
func (cf *Crazyflie) TruePos() geom.Vec3 { return cf.truePos }

// EstimatedPos returns the on-board EKF position estimate — the location
// annotation attached to REM samples.
func (cf *Crazyflie) EstimatedPos() geom.Vec3 { return cf.filter.Position() }

// Link exposes the CRTP link (the base station holds the other end).
func (cf *Crazyflie) Link() *crtp.Link { return cf.link }

// Battery exposes the battery for telemetry.
func (cf *Crazyflie) Battery() *Battery { return cf.battery }

// Flying reports whether the UAV is airborne.
func (cf *Crazyflie) Flying() bool { return cf.flying }

// Scans returns the number of completed scans this sortie.
func (cf *Crazyflie) Scans() int { return cf.scans }

// Driver exposes the REM receiver driver deck.
func (cf *Crazyflie) Driver() receiver.Driver { return cf.driver }

// tick advances one control period: drains the battery, runs the EKF cycle,
// and checks the watchdog. extraPowerW is the draw beyond hover.
func (cf *Crazyflie) tick(dt time.Duration, extraPowerW float64, accel geom.Vec3, feed bool) error {
	seconds := dt.Seconds()
	if !cf.battery.Drain(cf.cfg.HoverPowerW+extraPowerW, seconds) {
		cf.flying = false
		return fmt.Errorf("%w (t=%v)", ErrBatteryDepleted, cf.engine.Now())
	}
	if feed {
		cf.commander.Feed()
	}
	if cf.commander.State() == CommanderShutdown {
		cf.flying = false
		return fmt.Errorf("%w (t=%v)", ErrWatchdogShutdown, cf.engine.Now())
	}
	// On-board state estimation: IMU prediction + UWB correction.
	noisy := accel.Add(geom.V(cf.rng.Gauss(0, 0.05), cf.rng.Gauss(0, 0.05), cf.rng.Gauss(0, 0.08)))
	if err := cf.filter.Predict(noisy, seconds); err != nil {
		return err
	}
	switch cf.lps.Mode() {
	case uwb.TWR:
		ranges, err := cf.lps.TWRRanges(cf.truePos, cf.rng)
		if err != nil {
			return err
		}
		for _, r := range ranges {
			if err := cf.filter.UpdateRange(r.Anchor, r.RangeM, 0.15); err != nil {
				return err
			}
		}
	case uwb.TDoA:
		diffs, err := cf.lps.TDoAMeasurements(cf.truePos, cf.rng)
		if err != nil {
			return err
		}
		for _, d := range diffs {
			if err := cf.filter.UpdateTDoA(d.Anchor, d.RefAnchor, d.DiffM, 0.13); err != nil {
				return err
			}
		}
	}
	cf.engine.RunUntil(cf.engine.Now() + dt)
	return nil
}

// TakeOff spins up and climbs to the given altitude above the current
// position.
func (cf *Crazyflie) TakeOff(altitude float64) error {
	if cf.flying {
		return errors.New("uav: already flying")
	}
	if altitude <= 0 {
		return errors.New("uav: take-off altitude must be positive")
	}
	if cf.commander.State() == CommanderShutdown {
		return ErrWatchdogShutdown
	}
	cf.flying = true
	cf.commander.Feed()
	target := cf.truePos.Add(geom.V(0, 0, altitude))
	return cf.moveTo(target, 0)
}

// GoTo flies in a straight line to the target. minLegTime pads short hops to
// the mission plan's per-leg budget (the paper allots 4 s per leg).
func (cf *Crazyflie) GoTo(target geom.Vec3, minLegTime time.Duration) error {
	if !cf.flying {
		return ErrNotFlying
	}
	return cf.moveTo(target, minLegTime)
}

func (cf *Crazyflie) moveTo(target geom.Vec3, minLegTime time.Duration) error {
	dist := cf.truePos.Dist(target)
	dur := time.Duration(dist / cf.cfg.MaxSpeedMPS * float64(time.Second))
	if dur < minLegTime {
		dur = minLegTime
	}
	if dur == 0 {
		return nil
	}
	start := cf.truePos
	steps := int(dur / FeedbackInterval)
	if steps < 1 {
		steps = 1
	}
	stepDt := dur / time.Duration(steps)
	for i := 1; i <= steps; i++ {
		cf.truePos = start.Lerp(target, float64(i)/float64(steps))
		// Setpoints stream from the base station while the radio is up.
		if err := cf.tick(stepDt, cf.cfg.MovePowerW, geom.V(0, 0, 0), cf.link.RadioOn()); err != nil {
			return err
		}
	}
	cf.truePos = target
	return nil
}

// Hover holds position for the given duration.
func (cf *Crazyflie) Hover(d time.Duration) error {
	if !cf.flying {
		return ErrNotFlying
	}
	steps := int(d / FeedbackInterval)
	if steps < 1 {
		steps = 1
	}
	stepDt := d / time.Duration(steps)
	for i := 0; i < steps; i++ {
		if err := cf.tick(stepDt, 0, geom.V(0, 0, 0), cf.link.RadioOn()); err != nil {
			return err
		}
	}
	return nil
}

// Scan runs the paper's §II-C measurement sequence at the current position:
// shut the Crazyradio down, hold position (fed by the feedback task if
// enabled), trigger the receiver scan, restart the radio, and return the
// parsed measurements together with the EKF position estimate at scan time.
// The radio-off window means no CRTP interference reaches the receiver.
func (cf *Crazyflie) Scan() ([]receiver.Measurement, geom.Vec3, error) {
	if !cf.flying {
		return nil, geom.Vec3{}, ErrNotFlying
	}
	if err := cf.driver.Status(); err != nil {
		return nil, geom.Vec3{}, err
	}
	scanTime := 2 * time.Second
	if td, ok := cf.driver.(receiver.Timed); ok {
		scanTime = td.ScanDuration()
	}

	// iv) shut down the Crazyradio right before the scan starts (unless
	// the mitigation ablation keeps it up).
	if !cf.cfg.KeepRadioOnDuringScan {
		cf.link.SetRadio(false)
	}

	// The position the feedback task re-feeds is the estimate at scan start.
	scanPos := cf.filter.Position()

	// Trigger the receiver; the module scans while we hold position.
	if err := cf.driver.TriggerScan(); err != nil {
		cf.link.SetRadio(true)
		return nil, geom.Vec3{}, err
	}

	steps := int(scanTime / FeedbackInterval)
	if steps < 1 {
		steps = 1
	}
	stepDt := scanTime / time.Duration(steps)
	for i := 0; i < steps; i++ {
		// With the radio down, only the feedback task feeds the commander;
		// with the radio up (ablation), base-station setpoints still flow.
		if err := cf.tick(stepDt, cf.cfg.ScanPowerW, geom.V(0, 0, 0), cf.cfg.FeedbackTask || cf.link.RadioOn()); err != nil {
			cf.link.SetRadio(true)
			return nil, geom.Vec3{}, err
		}
	}

	ms, err := cf.driver.Results()
	if err != nil {
		cf.link.SetRadio(true)
		return nil, geom.Vec3{}, err
	}

	// Queue the results on the CRTP TX queue while the radio is still
	// down, then restart the radio, which drains the queue to the base
	// station (the paper's enlarged CRTP_TX_QUEUE_SIZE makes this fit).
	for _, m := range ms {
		pkt, err := EncodeMeasurement(m)
		if err != nil {
			cf.link.SetRadio(true)
			return nil, geom.Vec3{}, err
		}
		if err := cf.link.Send(pkt); err != nil {
			// Queue overflow: the measurement is lost, exactly the stock-
			// firmware failure mode. Keep going; the caller sees fewer
			// results via the link's drop counter.
			continue
		}
	}

	// v) restart the radio connection after the scan is done.
	cf.link.SetRadio(true)
	cf.commander.Feed()
	cf.scans++
	return ms, scanPos, nil
}

// Land descends to z=0 at the current x/y and stops the motors.
func (cf *Crazyflie) Land() error {
	if !cf.flying {
		return ErrNotFlying
	}
	target := geom.V(cf.truePos.X, cf.truePos.Y, 0)
	if err := cf.moveTo(target, 0); err != nil {
		return err
	}
	cf.flying = false
	return nil
}
