// Package uav models the BitCraze Crazyflie 2.1 platform the paper flies:
// point-mass flight kinematics, the LiPo battery and its deck-load-dependent
// endurance, the commander with its setpoint watchdog (including the
// firmware timeouts the paper patches), the expansion-deck registry, and the
// position-hold feedback task that keeps the UAV stable while the radio is
// shut down during scans.
package uav

import "fmt"

// Battery is a simple energy-reservoir model of the Crazyflie's 250 mAh
// LiPo. Power draws are integrated over virtual time; when the reservoir
// empties the UAV's behaviour becomes erratic — the endurance limit the
// paper measures at 6 min 12 s of scan-hover with full deck load.
type Battery struct {
	capacityJ float64
	remainJ   float64
}

// NewBattery creates a full battery with the given capacity in joules.
func NewBattery(capacityJ float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("uav: battery capacity must be positive, got %g", capacityJ)
	}
	return &Battery{capacityJ: capacityJ, remainJ: capacityJ}, nil
}

// CapacityJ returns the full capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// RemainingJ returns the remaining energy in joules.
func (b *Battery) RemainingJ() float64 { return b.remainJ }

// Fraction returns the state of charge in [0, 1].
func (b *Battery) Fraction() float64 { return b.remainJ / b.capacityJ }

// Depleted reports whether the reservoir is empty.
func (b *Battery) Depleted() bool { return b.remainJ <= 0 }

// Drain consumes powerW for seconds of operation and reports whether the
// battery survived the draw.
func (b *Battery) Drain(powerW, seconds float64) bool {
	if powerW < 0 || seconds < 0 {
		return !b.Depleted()
	}
	b.remainJ -= powerW * seconds
	if b.remainJ < 0 {
		b.remainJ = 0
	}
	return !b.Depleted()
}

// Recharge refills the battery (swap in a fresh pack between sorties).
func (b *Battery) Recharge() { b.remainJ = b.capacityJ }
