package uav

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/receiver"
	"repro/internal/sim"
	"repro/internal/uwb"
)

// stubDriver is a minimal REM receiver for UAV-level tests.
type stubDriver struct {
	inited   bool
	scanned  bool
	scanTime time.Duration
	results  []receiver.Measurement
	failScan bool
}

func (d *stubDriver) Init() error { d.inited = true; return nil }
func (d *stubDriver) Status() error {
	if !d.inited {
		return errors.New("stub: not initialised")
	}
	return nil
}
func (d *stubDriver) TriggerScan() error {
	if d.failScan {
		return errors.New("stub: scan failure")
	}
	d.scanned = true
	return nil
}
func (d *stubDriver) Results() ([]receiver.Measurement, error) {
	if !d.scanned {
		return nil, errors.New("stub: no scan")
	}
	d.scanned = false
	return d.results, nil
}
func (d *stubDriver) ScanDuration() time.Duration { return d.scanTime }

var _ receiver.Driver = (*stubDriver)(nil)
var _ receiver.Timed = (*stubDriver)(nil)

func testLPS(t *testing.T) *uwb.Constellation {
	t.Helper()
	c, err := uwb.CornerConstellation(geom.PaperScanVolume(), uwb.DefaultConfig(uwb.TDoA))
	if err != nil {
		t.Fatal(err)
	}
	c.SelfCalibrate()
	return c
}

func testUAV(t *testing.T, cfg Config) (*Crazyflie, *stubDriver, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	drv := &stubDriver{scanTime: 2 * time.Second, results: []receiver.Measurement{
		{Key: "AA:BB:CC:DD:EE:FF", Name: "net", RSSI: -70, Channel: 6},
	}}
	if err := drv.Init(); err != nil {
		t.Fatal(err)
	}
	cf, err := New(cfg, engine, drv, testLPS(t), geom.V(0.5, 0.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	return cf, drv, engine
}

func TestBattery(t *testing.T) {
	b, err := NewBattery(100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fraction() != 1 || b.Depleted() {
		t.Error("fresh battery wrong state")
	}
	if !b.Drain(10, 5) { // 50 J
		t.Error("half drain reported depleted")
	}
	if b.RemainingJ() != 50 {
		t.Errorf("RemainingJ = %v", b.RemainingJ())
	}
	if b.Drain(10, 10) { // 100 J more → empty
		t.Error("over-drain reported alive")
	}
	if !b.Depleted() || b.RemainingJ() != 0 {
		t.Error("battery should be pinned at empty")
	}
	b.Recharge()
	if b.Fraction() != 1 {
		t.Error("recharge failed")
	}
	if _, err := NewBattery(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestBatteryNegativeDrainIgnored(t *testing.T) {
	b, _ := NewBattery(100)
	b.Drain(-5, 10)
	b.Drain(5, -10)
	if b.RemainingJ() != 100 {
		t.Errorf("negative drain changed charge: %v", b.RemainingJ())
	}
}

func TestCommanderStates(t *testing.T) {
	clock := &sim.FixedClock{}
	c, err := NewCommander(clock, PaperWatchdogShutdown)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != CommanderActive {
		t.Errorf("pre-feed state = %v", c.State())
	}
	c.Feed()
	clock.Advance(400 * time.Millisecond)
	if c.State() != CommanderActive {
		t.Errorf("state at 400 ms = %v, want active", c.State())
	}
	clock.Advance(200 * time.Millisecond) // 600 ms since feed
	if c.State() != CommanderLeveling {
		t.Errorf("state at 600 ms = %v, want leveling (paper: 500 ms)", c.State())
	}
	clock.Advance(10 * time.Second) // way past shutdown
	if c.State() != CommanderShutdown {
		t.Errorf("state past watchdog = %v, want shutdown", c.State())
	}
	// Shutdown latches; feeding cannot revive it.
	c.Feed()
	if c.State() != CommanderShutdown {
		t.Error("shutdown did not latch")
	}
}

func TestCommanderStockVsPaperTimeout(t *testing.T) {
	clock := &sim.FixedClock{}
	stock, _ := NewCommander(clock, DefaultWatchdogShutdown)
	paper, _ := NewCommander(clock, PaperWatchdogShutdown)
	stock.Feed()
	paper.Feed()
	clock.Advance(3 * time.Second) // a radio-off scan lasts ≈2–3 s
	if stock.State() != CommanderShutdown {
		t.Error("stock watchdog survived a scan-length gap; paper says it must not")
	}
	if paper.State() == CommanderShutdown {
		t.Error("paper watchdog died within a scan-length gap")
	}
}

func TestNewCommanderValidation(t *testing.T) {
	if _, err := NewCommander(nil, PaperWatchdogShutdown); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewCommander(&sim.FixedClock{}, 100*time.Millisecond); err == nil {
		t.Error("watchdog below levelling timeout accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := receiver.Measurement{Key: "AA:BB:CC:DD:EE:FF", Name: "net", RSSI: -73, Channel: 11}
	pkt, err := EncodeMeasurement(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkt.Validate(); err != nil {
		t.Fatalf("encoded packet invalid: %v", err)
	}
	back, err := DecodeMeasurement(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip = %+v, want %+v", back, m)
	}
}

func TestCodecTruncatesLongNames(t *testing.T) {
	m := receiver.Measurement{Key: "AA:BB:CC:DD:EE:FF", Name: strings.Repeat("x", 40), RSSI: -50, Channel: 1}
	pkt, err := EncodeMeasurement(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMeasurement(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != m.Key || back.RSSI != m.RSSI {
		t.Error("key/rssi corrupted by truncation")
	}
	if len(back.Name) >= 40 || len(back.Name) == 0 {
		t.Errorf("name length = %d, want truncated but non-empty", len(back.Name))
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := EncodeMeasurement(receiver.Measurement{Key: ""}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := EncodeMeasurement(receiver.Measurement{Key: strings.Repeat("k", 30)}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := EncodeMeasurement(receiver.Measurement{Key: "k", RSSI: -300}); err == nil {
		t.Error("out-of-range RSSI accepted")
	}
	if _, err := EncodeMeasurement(receiver.Measurement{Key: "k", Channel: 300}); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	m := receiver.Measurement{Key: "AA:BB:CC:DD:EE:FF", Name: "n", RSSI: -1, Channel: 1}
	pkt, _ := EncodeMeasurement(m)

	wrongPort := pkt
	wrongPort.Port = 0x1
	if _, err := DecodeMeasurement(wrongPort); err == nil {
		t.Error("wrong port accepted")
	}
	short := pkt
	short.Payload = pkt.Payload[:3]
	if _, err := DecodeMeasurement(short); err == nil {
		t.Error("truncated payload accepted")
	}
	empty := pkt
	empty.Payload = nil
	if _, err := DecodeMeasurement(empty); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestTakeOffAndLand(t *testing.T) {
	cf, _, engine := testUAV(t, DefaultConfig("A", 80, 1))
	if cf.Flying() {
		t.Error("flying before take-off")
	}
	if err := cf.TakeOff(1.0); err != nil {
		t.Fatal(err)
	}
	if !cf.Flying() {
		t.Error("not flying after take-off")
	}
	if got := cf.TruePos().Z; got != 1.0 {
		t.Errorf("altitude = %v", got)
	}
	if engine.Now() == 0 {
		t.Error("take-off consumed no time")
	}
	if err := cf.Land(); err != nil {
		t.Fatal(err)
	}
	if cf.Flying() || cf.TruePos().Z != 0 {
		t.Errorf("landing failed: flying=%v z=%v", cf.Flying(), cf.TruePos().Z)
	}
}

func TestTakeOffValidation(t *testing.T) {
	cf, _, _ := testUAV(t, DefaultConfig("A", 80, 1))
	if err := cf.TakeOff(0); err == nil {
		t.Error("zero altitude accepted")
	}
	if err := cf.GoTo(geom.V(1, 1, 1), 0); !errors.Is(err, ErrNotFlying) {
		t.Errorf("GoTo on ground error = %v", err)
	}
	if err := cf.Hover(time.Second); !errors.Is(err, ErrNotFlying) {
		t.Errorf("Hover on ground error = %v", err)
	}
	if _, _, err := cf.Scan(); !errors.Is(err, ErrNotFlying) {
		t.Errorf("Scan on ground error = %v", err)
	}
	if err := cf.Land(); !errors.Is(err, ErrNotFlying) {
		t.Errorf("Land on ground error = %v", err)
	}
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	if err := cf.TakeOff(1); err == nil {
		t.Error("double take-off accepted")
	}
}

func TestGoToRespectsLegTime(t *testing.T) {
	cf, _, engine := testUAV(t, DefaultConfig("A", 80, 1))
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	before := engine.Now()
	// A 10 cm hop with a 4 s leg budget must still take 4 s (paper plan).
	if err := cf.GoTo(cf.TruePos().Add(geom.V(0.1, 0, 0)), 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if legDur := engine.Now() - before; legDur != 4*time.Second {
		t.Errorf("leg duration = %v, want 4 s", legDur)
	}
}

func TestGoToSpeedLimit(t *testing.T) {
	cfg := DefaultConfig("A", 80, 1)
	cfg.MaxSpeedMPS = 0.5
	cf, _, engine := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	before := engine.Now()
	if err := cf.GoTo(cf.TruePos().Add(geom.V(2, 0, 0)), 0); err != nil {
		t.Fatal(err)
	}
	legDur := engine.Now() - before
	if legDur < 3900*time.Millisecond { // 2 m at 0.5 m/s ⇒ 4 s
		t.Errorf("2 m leg at 0.5 m/s took %v, want ≈4 s", legDur)
	}
}

func TestScanSequence(t *testing.T) {
	cf, _, engine := testUAV(t, DefaultConfig("A", 80, 1))
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	// Give the EKF time to converge before annotating positions.
	if err := cf.Hover(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := engine.Now()
	ms, pos, err := cf.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Key != "AA:BB:CC:DD:EE:FF" {
		t.Fatalf("measurements = %+v", ms)
	}
	if dur := engine.Now() - before; dur < 2*time.Second {
		t.Errorf("scan consumed %v, want ≥ scan duration (2 s)", dur)
	}
	if !cf.Link().RadioOn() {
		t.Error("radio not restarted after scan")
	}
	if cf.Scans() != 1 {
		t.Errorf("Scans = %d", cf.Scans())
	}
	// The position annotation must be near the true hover position (the
	// EKF is decimetre-accurate).
	if e := pos.Dist(cf.TruePos()); e > 0.5 {
		t.Errorf("annotated position off by %v m", e)
	}
	// Scan results arrive at the base station via CRTP after the radio
	// restart.
	pkts := cf.Link().Receive()
	found := false
	for _, p := range pkts {
		if m, err := DecodeMeasurement(p); err == nil && m.Key == "AA:BB:CC:DD:EE:FF" {
			found = true
		}
	}
	if !found {
		t.Error("scan result packet not delivered to base station")
	}
}

func TestScanTurnsRadioOffDuringMeasurement(t *testing.T) {
	cfg := DefaultConfig("A", 80, 1)
	cf, drv, _ := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	// Wrap the stub to observe the radio state at trigger time.
	radioDuringScan := true
	orig := drv.results
	drv.results = orig
	drvCheck := &radioProbeDriver{inner: drv, cf: cf, radioSeen: &radioDuringScan}
	cf.driver = drvCheck
	if _, _, err := cf.Scan(); err != nil {
		t.Fatal(err)
	}
	if radioDuringScan {
		t.Error("radio was on while the receiver scanned; self-interference mitigation broken")
	}
}

type radioProbeDriver struct {
	inner     *stubDriver
	cf        *Crazyflie
	radioSeen *bool
}

func (d *radioProbeDriver) Init() error   { return d.inner.Init() }
func (d *radioProbeDriver) Status() error { return d.inner.Status() }
func (d *radioProbeDriver) TriggerScan() error {
	*d.radioSeen = d.cf.Link().RadioOn()
	return d.inner.TriggerScan()
}
func (d *radioProbeDriver) Results() ([]receiver.Measurement, error) { return d.inner.Results() }
func (d *radioProbeDriver) ScanDuration() time.Duration              { return d.inner.ScanDuration() }

func TestScanWithStockWatchdogDies(t *testing.T) {
	cfg := DefaultConfig("A", 80, 1)
	cfg.WatchdogShutdown = DefaultWatchdogShutdown
	cfg.FeedbackTask = false // stock firmware: no feedback task either
	cf, _, _ := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	_, _, err := cf.Scan()
	if !errors.Is(err, ErrWatchdogShutdown) {
		t.Errorf("stock-firmware scan error = %v, want ErrWatchdogShutdown", err)
	}
	if cf.Flying() {
		t.Error("UAV still flying after watchdog shutdown")
	}
}

func TestScanWithFeedbackTaskSurvivesEvenStockWatchdog(t *testing.T) {
	// The feedback task alone keeps the commander fed every 100 ms, so even
	// the stock 2 s watchdog survives a 2 s scan.
	cfg := DefaultConfig("A", 80, 1)
	cfg.WatchdogShutdown = DefaultWatchdogShutdown
	cfg.FeedbackTask = true
	cf, _, _ := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cf.Scan(); err != nil {
		t.Errorf("scan with feedback task failed: %v", err)
	}
}

func TestBatteryDepletionEndsFlight(t *testing.T) {
	cfg := DefaultConfig("A", 80, 1)
	cfg.BatteryCapacityJ = 100 // tiny pack: ~6 s of hover
	cf, _, _ := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	err := cf.Hover(time.Minute)
	if !errors.Is(err, ErrBatteryDepleted) {
		t.Errorf("hover-to-empty error = %v, want ErrBatteryDepleted", err)
	}
	if cf.Flying() {
		t.Error("flying after battery depletion")
	}
}

func TestEnduranceMatchesPaperScale(t *testing.T) {
	// Reproduce §III-A's endurance test: hover ≈1 m up, scan every 8 s
	// (plus ≈2 s scan time per cycle). The paper measured 36 scans over
	// 6 min 12 s; require the same scale.
	cfg := DefaultConfig("A", 80, 1)
	cf, _, engine := testUAV(t, cfg)
	if err := cf.TakeOff(1); err != nil {
		t.Fatal(err)
	}
	scans := 0
	for {
		if err := cf.Hover(8 * time.Second); err != nil {
			break
		}
		if _, _, err := cf.Scan(); err != nil {
			break
		}
		scans++
	}
	elapsed := engine.Now()
	if scans < 30 || scans > 44 {
		t.Errorf("endurance scans = %d, want ≈36 (paper)", scans)
	}
	if elapsed < 5*time.Minute || elapsed > 8*time.Minute {
		t.Errorf("endurance = %v, want ≈6 min 12 s (paper)", elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig("A", 80, 1)

	c := base
	c.Name = ""
	if err := c.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	c = base
	c.MaxSpeedMPS = 0
	if err := c.Validate(); err == nil {
		t.Error("zero speed accepted")
	}
	c = base
	c.BatteryCapacityJ = 0
	if err := c.Validate(); err == nil {
		t.Error("zero battery accepted")
	}
	c = base
	c.MovePowerW = -1
	if err := c.Validate(); err == nil {
		t.Error("negative move power accepted")
	}
}

func TestNewValidation(t *testing.T) {
	engine := sim.NewEngine()
	drv := &stubDriver{scanTime: time.Second}
	lps := testLPS(t)
	cfg := DefaultConfig("A", 80, 1)
	if _, err := New(cfg, nil, drv, lps, geom.Vec3{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(cfg, engine, nil, lps, geom.Vec3{}); err == nil {
		t.Error("nil driver accepted")
	}
	if _, err := New(cfg, engine, drv, nil, geom.Vec3{}); err == nil {
		t.Error("nil constellation accepted")
	}
	bad := cfg
	bad.RadioChannel = 500
	if _, err := New(bad, engine, drv, lps, geom.Vec3{}); err == nil {
		t.Error("invalid radio channel accepted")
	}
}
