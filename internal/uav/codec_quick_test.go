package uav

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/receiver"
)

// TestCodecQuickRoundTrip drives the CRTP scan-result codec with arbitrary
// inputs: any measurement with a valid key, int8 RSSI and uint8 channel must
// round-trip exactly apart from documented name truncation.
func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(keyBytes [12]byte, name string, rssi int8, channel uint8) bool {
		// Build a printable, non-empty key from the raw bytes.
		var kb strings.Builder
		for _, b := range keyBytes {
			kb.WriteByte("0123456789ABCDEF"[b%16])
		}
		m := receiver.Measurement{
			Key:     kb.String(),
			Name:    name,
			RSSI:    int(rssi),
			Channel: int(channel),
		}
		pkt, err := EncodeMeasurement(m)
		if err != nil {
			return false
		}
		if pkt.Validate() != nil {
			return false
		}
		back, err := DecodeMeasurement(pkt)
		if err != nil {
			return false
		}
		if back.Key != m.Key || back.RSSI != m.RSSI || back.Channel != m.Channel {
			return false
		}
		// Name may be truncated but must be a prefix.
		return strings.HasPrefix(m.Name, back.Name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecodeQuickNeverPanics feeds arbitrary payload bytes to the decoder;
// it may reject them but must never panic.
func TestDecodeQuickNeverPanics(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 30 {
			payload = payload[:30]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked on %x: %v", payload, r)
			}
		}()
		pkt, err := EncodeMeasurement(receiver.Measurement{Key: "k", RSSI: -1})
		if err != nil {
			return false
		}
		pkt.Payload = payload
		_, _ = DecodeMeasurement(pkt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
