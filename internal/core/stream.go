package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/rem"
	"repro/internal/remobs"
	"repro/internal/remshard"
	"repro/internal/remstore"
)

// This file is the streaming half of the pipeline: instead of one
// fly-fit-rasterise pass, RunStream consumes the mission's samples in
// windows and publishes one REM snapshot per window into a remstore —
// the incremental estimators (ml.IncrementalEstimator) report which keys
// a window can affect, and rem.Map.RebuildKeys re-rasterises only those,
// sharing every other tile with the previous snapshot. Queries against
// the store never block on a rebuild.
//
// With StreamConfig.Shards the sink is a remshard.ShardedStore instead:
// each window's dirty-key set is grouped by shard and only the affected
// shards rebuild and publish, concurrently — an update to one AP never
// touches the serving snapshots of the rest, and every query still
// answers byte-identically to the monolithic stream (determinism
// contract rule 8). The estimator's Observe/Refit remain single
// estimator-level calls either way (the estimator owns its internal
// structure); it is the rasterise-and-publish half that fans out.
//
// The key vocabulary is fixed upfront by preprocessing the full dataset
// (the simulated AP population is known to the mission), so every window
// encodes against the same one-hot layout; a live deployment would
// periodically re-run the full pipeline to admit new MACs — see the
// ROADMAP's snapshot-GC / re-vocabulary open item.

// StreamConfig tunes a streaming run. The embedded Config supplies the
// seed, mission options, MAC threshold, REM resolution and worker bound;
// TrainFraction and Estimators are unused here (streaming serves a single
// estimator on all arrived data rather than comparing a suite).
type StreamConfig struct {
	Config
	// Spec is the served estimator; nil means DefaultStreamSpec. Specs
	// whose estimator implements ml.IncrementalEstimator get
	// delta-proportional refits and rebuilds; any other estimator is
	// wrapped in ml.NewRefitAdapter (correct, but refitted from scratch
	// each window).
	Spec *EstimatorSpec
	// WindowRows is the number of preprocessed rows per published
	// window; ≤ 0 splits the dataset into 4 equal windows.
	WindowRows int
	// MaxHistory bounds the store's retained snapshot history
	// (≤ 0 means remstore.DefaultMaxHistory).
	MaxHistory int
	// Store, when set, receives the published snapshots instead of a
	// freshly created store — so clients can query the store while the
	// stream is still running (MaxHistory is then ignored). Monolithic
	// mode only; incompatible with Shards/Partitioner/ShardStore.
	Store *remstore.Store
	// OnWindow, when set, observes every published window in order —
	// the live-serving hook (progress logs, query probes). Monolithic
	// mode only; sharded streams report through OnShardWindow.
	OnWindow func(WindowReport, *remstore.Snapshot)

	// Context, when set, cancels the stream between windows: the loop
	// checks it before fitting each window and returns the result so
	// far together with the context's error — the published snapshots
	// stay serveable, so a signal-driven shutdown (remgen -serve) can
	// keep answering queries while it drains. Nil means never cancel.
	Context context.Context
	// OnStore, when set, fires exactly once, after the sink store
	// exists and before the first window publishes — the
	// serve-while-streaming hook: an HTTP front (remserve) started here
	// serves every generation from the very first publish. Exactly one
	// of the two arguments is non-nil, matching the stream mode.
	OnStore func(*remstore.Store, *remshard.ShardedStore)

	// Shards > 0 streams into a sharded store instead of a single
	// monolithic one: the key vocabulary is partitioned across that many
	// independent stores, each window's dirty-key set is grouped by
	// shard, and only the affected shards rebuild and publish —
	// concurrently, within the Workers bound. Every query answers
	// byte-identically to the monolithic stream (determinism contract
	// rule 8), so sharding is purely an availability/parallelism choice.
	Shards int
	// Partitioner routes keys to shards in sharded mode; nil means
	// remshard.HashByKey. Setting it (or ShardStore) implies sharded
	// mode even when Shards is 0.
	Partitioner remshard.Partitioner
	// ShardStore, when set, receives the sharded publishes instead of a
	// freshly created store — the sharded analogue of Store. Its
	// vocabulary and geometry must match the preprocessed dataset and
	// the configured resolution.
	ShardStore *remshard.ShardedStore
	// OnShardWindow observes every sharded window in order — the
	// sharded analogue of OnWindow.
	OnShardWindow func(WindowReport, remshard.Round)

	// Observer, when set, instruments the stream: per-window stage
	// latencies (Observe/Refit/rebuild), generation events with
	// dirty-key counts, and — wired through to the sink store — publish
	// and cover-index timings. Nil is the no-op and costs nothing on
	// the query path.
	Observer *remobs.Observer
}

// DefaultStreamConfig mirrors DefaultConfig for streaming runs.
func DefaultStreamConfig(seed uint64) StreamConfig {
	return StreamConfig{Config: DefaultConfig(seed)}
}

// DefaultStreamSpec is the streaming default: the per-MAC kNN ensemble.
// Its Observe reports tight dirty sets — a window's samples dirty only
// the MACs they belong to (plus any still served by the global fallback)
// — which is what makes incremental rebuild cost proportional to the
// delta rather than the map.
func DefaultStreamSpec() EstimatorSpec {
	plain := dataset.FeatureOptions{OneHotMACScale: 1}
	return EstimatorSpec{
		Name:     "per-MAC kNN",
		Features: plain,
		Build: func() (ml.Estimator, error) {
			return &knn.PerKey{Sub: knn.PaperPlainConfig(), KeyOffset: 3}, nil
		},
	}
}

// WindowReport summarises one published window.
type WindowReport struct {
	// Window is the window index (0-based).
	Window int
	// NewRows is the number of rows this window added.
	NewRows int
	// TotalRows is the cumulative row count after the window.
	TotalRows int
	// DirtyKeys is how many keys the window dirtied (every key in
	// window 0).
	DirtyKeys int
	// SharedTiles is how many tiles the published snapshot(s) share
	// with their predecessors (0 in window 0). In sharded mode only the
	// affected shards publish, so untouched shards' tiles — still
	// serving, never copied — are not part of this count.
	SharedTiles int
	// Version is the published snapshot's store version; in sharded
	// mode, the rebuild-round sequence number. Both equal window+1.
	Version uint64
	// Shards is how many shards rebuilt and published this window
	// (0 in monolithic mode).
	Shards int
}

// StreamResult is the full streaming output.
type StreamResult struct {
	// Store serves the published snapshots; Store.Current() is the final
	// generation. Nil in sharded mode — see Sharded.
	Store *remstore.Store
	// Sharded serves the published snapshots in sharded mode;
	// Sharded.MergedSnapshot() is the final monolithic view. Nil in
	// monolithic mode.
	Sharded *remshard.ShardedStore
	// Windows are the per-window reports, in publish order.
	Windows []WindowReport
	// Data is the raw mission dataset.
	Data *dataset.Dataset
	// Report is the mission flight report (nil for stored datasets).
	Report *mission.Report
	// Pre is the preprocessed dataset whose vocabulary the snapshots
	// share.
	Pre *dataset.Preprocessed
	// Estimator is the served incremental estimator, left fitted on every
	// streamed row — callers can keep the stream going (Observe → Refit →
	// RebuildKeys → Publish) after RunStream returns.
	Estimator ml.IncrementalEstimator
}

// RunStream flies the mission and streams its samples through the
// incremental pipeline; see RunStreamWithDataset.
func RunStream(cfg StreamConfig) (*StreamResult, error) {
	ctrl, err := mission.NewPaperController(cfg.Mission)
	if err != nil {
		return nil, err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	return RunStreamWithDataset(cfg, data, report)
}

// RunStreamWithDataset streams an existing dataset through the
// incremental pipeline: fit the estimator on the first window, then per
// window Observe → Refit → RebuildKeys → Publish. After every publish,
// the served snapshot is byte-identical to a from-scratch build against a
// fresh estimator fitted on all rows so far (determinism contract rule 7;
// exact for the kNN family and the baseline, pinned at full-retrain
// numerics for the NN), for any worker count.
func RunStreamWithDataset(cfg StreamConfig, data *dataset.Dataset, report *mission.Report) (*StreamResult, error) {
	if data == nil || data.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if cfg.MinSamplesPerMAC < 1 {
		return nil, errors.New("core: MinSamplesPerMAC must be ≥1")
	}
	if cfg.REMResolution[0] < 1 || cfg.REMResolution[1] < 1 || cfg.REMResolution[2] < 1 {
		return nil, fmt.Errorf("core: streaming needs a positive REM resolution, got %v", cfg.REMResolution)
	}
	pre, err := dataset.Preprocess(data, cfg.MinSamplesPerMAC)
	if err != nil {
		return nil, err
	}
	spec := DefaultStreamSpec()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	est, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", spec.Name, err)
	}
	inc := ml.NewRefitAdapter(est)
	allX, allY := pre.DesignMatrix(spec.Features)
	rows := len(allX)
	win := cfg.WindowRows
	if win <= 0 {
		win = (rows + 3) / 4
	}
	predict := BatchPredictorFor(inc, pre.FeatureDim(spec.Features), spec.Features.OneHotMACScale)
	opts := rem.BuildOptions{Workers: cfg.Workers}
	vol := geom.PaperScanVolume()
	nKeys := len(pre.MACs)
	res := &StreamResult{
		Data:      data,
		Report:    report,
		Pre:       pre,
		Estimator: inc,
	}
	sharded := cfg.Shards > 0 || cfg.Partitioner != nil || cfg.ShardStore != nil
	if sharded {
		if cfg.Store != nil {
			return nil, errors.New("core: Store is the monolithic sink; sharded streams publish into ShardStore")
		}
		if cfg.OnWindow != nil {
			return nil, errors.New("core: OnWindow is the monolithic hook; sharded streams report through OnShardWindow")
		}
		if res.Sharded, err = shardStoreFor(cfg, pre.MACs, vol); err != nil {
			return nil, err
		}
	} else {
		if cfg.OnShardWindow != nil {
			return nil, errors.New("core: OnShardWindow reports sharded streams; set Shards (or stay with OnWindow)")
		}
		res.Store = cfg.Store
		if res.Store == nil {
			res.Store = remstore.New(cfg.MaxHistory)
		}
	}
	o := newGenObs(cfg.Observer)
	if sharded {
		res.Sharded.SetObserver(cfg.Observer)
	} else {
		res.Store.SetObserver(cfg.Observer)
	}
	if cfg.OnStore != nil {
		cfg.OnStore(res.Store, res.Sharded)
	}
	first := true
	var cur *rem.Map
	for start, w := 0, 0; start < rows; start, w = start+win, w+1 {
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				// A clean stop, not a failure: everything published so
				// far keeps serving, so hand the partial result back
				// alongside the cancellation cause.
				return res, fmt.Errorf("core: stream cancelled after %d window(s): %w", w, err)
			}
		}
		end := min(start+win, rows)
		winStart := time.Now()
		var dirty []int
		var observeD, refitD time.Duration
		if first {
			// The bootstrap Fit is the refit stage of window 0.
			t := time.Now()
			if err := inc.Fit(allX[:end], allY[:end]); err != nil {
				return nil, fmt.Errorf("core: fitting %s on window 0: %w", spec.Name, err)
			}
			refitD = time.Since(t)
		} else {
			t := time.Now()
			if dirty, err = inc.Observe(allX[start:end], allY[start:end]); err != nil {
				return nil, fmt.Errorf("core: observing window %d: %w", w, err)
			}
			observeD = time.Since(t)
			t = time.Now()
			if err := inc.Refit(); err != nil {
				return nil, fmt.Errorf("core: refitting after window %d: %w", w, err)
			}
			refitD = time.Since(t)
		}
		dirtyKeys := resolveDirty(dirty, nKeys, first)
		rep := WindowReport{
			Window:    w,
			NewRows:   end - start,
			TotalRows: end,
			DirtyKeys: len(dirtyKeys),
		}
		if sharded {
			// The window's dirty set, grouped by shard: only the
			// affected shards re-rasterise and publish, concurrently on
			// the worker pool. Rebuild covers rasterise AND publish, so
			// the rebuild stage absorbs both here.
			t := time.Now()
			round, err := res.Sharded.Rebuild(dirtyKeys, predict, opts)
			if err != nil {
				return nil, fmt.Errorf("core: rasterising window %d: %w", w, err)
			}
			o.markStages(observeD, refitD, time.Since(t))
			rep.SharedTiles = round.SharedTiles
			rep.Version = round.Seq
			rep.Shards = round.AffectedShards
			res.Windows = append(res.Windows, rep)
			o.markGeneration("window", rep.NewRows, rep.DirtyKeys, rep.SharedTiles,
				time.Since(winStart), fmt.Sprintf("window=%d version=%d shards=%d", w, rep.Version, rep.Shards))
			if cfg.OnShardWindow != nil {
				cfg.OnShardWindow(rep, round)
			}
		} else {
			t := time.Now()
			next, err := rebuild(cur, vol, cfg.REMResolution, pre.MACs, dirtyKeys, predict, opts)
			if err != nil {
				return nil, fmt.Errorf("core: rasterising window %d: %w", w, err)
			}
			rebuildD := time.Since(t)
			snap, err := res.Store.Publish(next, len(dirtyKeys))
			if err != nil {
				return nil, err
			}
			o.markStages(observeD, refitD, rebuildD)
			_, shared := snap.BuildStats() // computed once by Publish
			rep.SharedTiles = shared
			rep.Version = snap.Version()
			res.Windows = append(res.Windows, rep)
			o.markGeneration("window", rep.NewRows, rep.DirtyKeys, rep.SharedTiles,
				time.Since(winStart), fmt.Sprintf("window=%d version=%d", w, rep.Version))
			if cfg.OnWindow != nil {
				cfg.OnWindow(rep, snap)
			}
			cur = next
		}
		first = false
	}
	return res, nil
}

// shardStoreFor resolves the sharded sink: the caller's ShardStore when
// set (validated against the dataset's vocabulary and the configured
// geometry, so a store built for a different mission cannot silently
// serve this one), a freshly partitioned one otherwise.
func shardStoreFor(cfg StreamConfig, macs []string, vol geom.Cuboid) (*remshard.ShardedStore, error) {
	if st := cfg.ShardStore; st != nil {
		// The store owns its layout; a conflicting Shards/Partitioner
		// request would be silently ignored, so reject it instead.
		if cfg.Shards > 0 && cfg.Shards != st.NumShards() {
			return nil, fmt.Errorf("core: ShardStore has %d shards, Shards asks for %d", st.NumShards(), cfg.Shards)
		}
		if cfg.Partitioner != nil {
			return nil, errors.New("core: ShardStore already fixed its partitioning; Partitioner only applies to a store the stream creates")
		}
		keys := st.Keys()
		if len(keys) != len(macs) {
			return nil, fmt.Errorf("core: ShardStore serves %d keys, dataset has %d", len(keys), len(macs))
		}
		for i, k := range keys {
			if macs[i] != k {
				return nil, fmt.Errorf("core: ShardStore key %d is %q, dataset has %q", i, k, macs[i])
			}
		}
		if got := st.Resolution(); got != cfg.REMResolution {
			return nil, fmt.Errorf("core: ShardStore resolution %v does not match configured %v", got, cfg.REMResolution)
		}
		if got := st.Volume(); got != vol {
			return nil, fmt.Errorf("core: ShardStore volume %v–%v does not match the scan volume %v–%v", got.Min, got.Max, vol.Min, vol.Max)
		}
		return st, nil
	}
	return remshard.New(macs, remshard.Config{
		Shards:      cfg.Shards,
		Partitioner: cfg.Partitioner,
		Volume:      vol,
		Resolution:  cfg.REMResolution,
		MaxHistory:  cfg.MaxHistory,
	})
}

// resolveDirty turns an estimator's dirty report into an explicit key
// list: the full vocabulary on the first window or when the estimator
// reports ml.DirtyAll, the listed keys otherwise.
func resolveDirty(dirty []int, nKeys int, first bool) []int {
	all := first
	for _, k := range dirty {
		if k == ml.DirtyAll {
			all = true
			break
		}
	}
	if all {
		out := make([]int, nKeys)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return dirty
}

// rebuild rasterises the next generation: a from-scratch build for the
// first window, an incremental tile-sharing rebuild afterwards.
func rebuild(cur *rem.Map, vol geom.Cuboid, res [3]int, keys []string, dirty []int, predict rem.BatchPredictFunc, opts rem.BuildOptions) (*rem.Map, error) {
	if cur == nil {
		return rem.BuildMapBatch(vol, res[0], res[1], res[2], keys, predict, opts)
	}
	return cur.RebuildKeys(dirty, predict, opts)
}
