package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/rem"
	"repro/internal/remstore"
)

// This file is the streaming half of the pipeline: instead of one
// fly-fit-rasterise pass, RunStream consumes the mission's samples in
// windows and publishes one REM snapshot per window into a remstore —
// the incremental estimators (ml.IncrementalEstimator) report which keys
// a window can affect, and rem.Map.RebuildKeys re-rasterises only those,
// sharing every other tile with the previous snapshot. Queries against
// the store never block on a rebuild.
//
// The key vocabulary is fixed upfront by preprocessing the full dataset
// (the simulated AP population is known to the mission), so every window
// encodes against the same one-hot layout; a live deployment would
// periodically re-run the full pipeline to admit new MACs — see the
// ROADMAP's snapshot-GC / re-vocabulary open item.

// StreamConfig tunes a streaming run. The embedded Config supplies the
// seed, mission options, MAC threshold, REM resolution and worker bound;
// TrainFraction and Estimators are unused here (streaming serves a single
// estimator on all arrived data rather than comparing a suite).
type StreamConfig struct {
	Config
	// Spec is the served estimator; nil means DefaultStreamSpec. Specs
	// whose estimator implements ml.IncrementalEstimator get
	// delta-proportional refits and rebuilds; any other estimator is
	// wrapped in ml.NewRefitAdapter (correct, but refitted from scratch
	// each window).
	Spec *EstimatorSpec
	// WindowRows is the number of preprocessed rows per published
	// window; ≤ 0 splits the dataset into 4 equal windows.
	WindowRows int
	// MaxHistory bounds the store's retained snapshot history
	// (≤ 0 means remstore.DefaultMaxHistory).
	MaxHistory int
	// Store, when set, receives the published snapshots instead of a
	// freshly created store — so clients can query the store while the
	// stream is still running (MaxHistory is then ignored).
	Store *remstore.Store
	// OnWindow, when set, observes every published window in order —
	// the live-serving hook (progress logs, query probes).
	OnWindow func(WindowReport, *remstore.Snapshot)
}

// DefaultStreamConfig mirrors DefaultConfig for streaming runs.
func DefaultStreamConfig(seed uint64) StreamConfig {
	return StreamConfig{Config: DefaultConfig(seed)}
}

// DefaultStreamSpec is the streaming default: the per-MAC kNN ensemble.
// Its Observe reports tight dirty sets — a window's samples dirty only
// the MACs they belong to (plus any still served by the global fallback)
// — which is what makes incremental rebuild cost proportional to the
// delta rather than the map.
func DefaultStreamSpec() EstimatorSpec {
	plain := dataset.FeatureOptions{OneHotMACScale: 1}
	return EstimatorSpec{
		Name:     "per-MAC kNN",
		Features: plain,
		Build: func() (ml.Estimator, error) {
			return &knn.PerKey{Sub: knn.PaperPlainConfig(), KeyOffset: 3}, nil
		},
	}
}

// WindowReport summarises one published window.
type WindowReport struct {
	// Window is the window index (0-based).
	Window int
	// NewRows is the number of rows this window added.
	NewRows int
	// TotalRows is the cumulative row count after the window.
	TotalRows int
	// DirtyKeys is how many keys were re-rasterised for this snapshot
	// (every key in window 0).
	DirtyKeys int
	// SharedTiles is how many tiles the snapshot shares with its
	// predecessor (0 in window 0).
	SharedTiles int
	// Version is the published snapshot's store version.
	Version uint64
}

// StreamResult is the full streaming output.
type StreamResult struct {
	// Store serves the published snapshots; Store.Current() is the final
	// generation.
	Store *remstore.Store
	// Windows are the per-window reports, in publish order.
	Windows []WindowReport
	// Data is the raw mission dataset.
	Data *dataset.Dataset
	// Report is the mission flight report (nil for stored datasets).
	Report *mission.Report
	// Pre is the preprocessed dataset whose vocabulary the snapshots
	// share.
	Pre *dataset.Preprocessed
	// Estimator is the served incremental estimator, left fitted on every
	// streamed row — callers can keep the stream going (Observe → Refit →
	// RebuildKeys → Publish) after RunStream returns.
	Estimator ml.IncrementalEstimator
}

// RunStream flies the mission and streams its samples through the
// incremental pipeline; see RunStreamWithDataset.
func RunStream(cfg StreamConfig) (*StreamResult, error) {
	ctrl, err := mission.NewPaperController(cfg.Mission)
	if err != nil {
		return nil, err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	return RunStreamWithDataset(cfg, data, report)
}

// RunStreamWithDataset streams an existing dataset through the
// incremental pipeline: fit the estimator on the first window, then per
// window Observe → Refit → RebuildKeys → Publish. After every publish,
// the served snapshot is byte-identical to a from-scratch build against a
// fresh estimator fitted on all rows so far (determinism contract rule 7;
// exact for the kNN family and the baseline, pinned at full-retrain
// numerics for the NN), for any worker count.
func RunStreamWithDataset(cfg StreamConfig, data *dataset.Dataset, report *mission.Report) (*StreamResult, error) {
	if data == nil || data.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if cfg.MinSamplesPerMAC < 1 {
		return nil, errors.New("core: MinSamplesPerMAC must be ≥1")
	}
	if cfg.REMResolution[0] < 1 || cfg.REMResolution[1] < 1 || cfg.REMResolution[2] < 1 {
		return nil, fmt.Errorf("core: streaming needs a positive REM resolution, got %v", cfg.REMResolution)
	}
	pre, err := dataset.Preprocess(data, cfg.MinSamplesPerMAC)
	if err != nil {
		return nil, err
	}
	spec := DefaultStreamSpec()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	est, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", spec.Name, err)
	}
	inc := ml.NewRefitAdapter(est)
	allX, allY := pre.DesignMatrix(spec.Features)
	rows := len(allX)
	win := cfg.WindowRows
	if win <= 0 {
		win = (rows + 3) / 4
	}
	predict := BatchPredictorFor(inc, pre.FeatureDim(spec.Features), spec.Features.OneHotMACScale)
	opts := rem.BuildOptions{Workers: cfg.Workers}
	vol := geom.PaperScanVolume()
	nKeys := len(pre.MACs)
	store := cfg.Store
	if store == nil {
		store = remstore.New(cfg.MaxHistory)
	}
	res := &StreamResult{
		Store:     store,
		Data:      data,
		Report:    report,
		Pre:       pre,
		Estimator: inc,
	}
	var cur *rem.Map
	for start, w := 0, 0; start < rows; start, w = start+win, w+1 {
		end := min(start+win, rows)
		var dirty []int
		if cur == nil {
			if err := inc.Fit(allX[:end], allY[:end]); err != nil {
				return nil, fmt.Errorf("core: fitting %s on window 0: %w", spec.Name, err)
			}
		} else {
			if dirty, err = inc.Observe(allX[start:end], allY[start:end]); err != nil {
				return nil, fmt.Errorf("core: observing window %d: %w", w, err)
			}
			if err := inc.Refit(); err != nil {
				return nil, fmt.Errorf("core: refitting after window %d: %w", w, err)
			}
		}
		dirtyKeys := resolveDirty(dirty, nKeys, cur == nil)
		next, err := rebuild(cur, vol, cfg.REMResolution, pre.MACs, dirtyKeys, predict, opts)
		if err != nil {
			return nil, fmt.Errorf("core: rasterising window %d: %w", w, err)
		}
		snap, err := res.Store.Publish(next, len(dirtyKeys))
		if err != nil {
			return nil, err
		}
		_, shared := snap.BuildStats() // computed once by Publish
		rep := WindowReport{
			Window:      w,
			NewRows:     end - start,
			TotalRows:   end,
			DirtyKeys:   len(dirtyKeys),
			SharedTiles: shared,
			Version:     snap.Version(),
		}
		res.Windows = append(res.Windows, rep)
		if cfg.OnWindow != nil {
			cfg.OnWindow(rep, snap)
		}
		cur = next
	}
	return res, nil
}

// resolveDirty turns an estimator's dirty report into an explicit key
// list: the full vocabulary on the first window or when the estimator
// reports ml.DirtyAll, the listed keys otherwise.
func resolveDirty(dirty []int, nKeys int, first bool) []int {
	all := first
	for _, k := range dirty {
		if k == ml.DirtyAll {
			all = true
			break
		}
	}
	if all {
		out := make([]int, nKeys)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return dirty
}

// rebuild rasterises the next generation: a from-scratch build for the
// first window, an incremental tile-sharing rebuild afterwards.
func rebuild(cur *rem.Map, vol geom.Cuboid, res [3]int, keys []string, dirty []int, predict rem.BatchPredictFunc, opts rem.BuildOptions) (*rem.Map, error) {
	if cur == nil {
		return rem.BuildMapBatch(vol, res[0], res[1], res[2], keys, predict, opts)
	}
	return cur.RebuildKeys(dirty, predict, opts)
}
