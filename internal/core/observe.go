package core

import (
	"time"

	"repro/internal/remobs"
)

// genObs instruments a generation loop — the streaming windows of
// RunStream or the live batches of RunIngest. Both loops share the
// Observe → Refit → rebuild → publish shape, so they share one
// instrument set; the publish half is timed by the sink store itself
// (remstore/remshard SetObserver), which the loops wire up from the
// same Observer. A nil *genObs is the no-op: every method checks the
// receiver, so uninstrumented runs pay one pointer test per window.
type genObs struct {
	obs     *remobs.Observer
	observe *remobs.Histogram
	refit   *remobs.Histogram
	rebuild *remobs.Histogram
	gen     *remobs.Histogram
	gens    *remobs.Counter
	rows    *remobs.Counter
	dirty   *remobs.Counter
}

// newGenObs registers the generation metrics, or returns nil for a nil
// observer.
func newGenObs(obs *remobs.Observer) *genObs {
	if obs == nil || obs.Registry == nil {
		return nil
	}
	reg := obs.Registry
	return &genObs{
		obs: obs,
		observe: reg.Histogram("rem_gen_observe_seconds",
			"estimator Observe latency per generation (dirty-set reporting)"),
		refit: reg.Histogram("rem_gen_refit_seconds",
			"estimator Refit latency per generation"),
		rebuild: reg.Histogram("rem_gen_rebuild_seconds",
			"rasterisation latency per generation (RebuildKeys or from-scratch build)"),
		gen: reg.Histogram("rem_gen_generation_seconds",
			"whole-generation latency: observe, refit, rebuild and publish"),
		gens: reg.Counter("rem_gen_generations_total",
			"generations published (stream windows plus ingest batches, bootstrap included)"),
		rows: reg.Counter("rem_gen_rows_total",
			"observation rows consumed across generations"),
		dirty: reg.Counter("rem_gen_dirty_keys_total",
			"keys dirtied across generations (every key on a bootstrap)"),
	}
}

// markStages records the learner-side stage timings (zero durations —
// a bootstrap window has no Observe/Refit — are skipped rather than
// polluting the low buckets).
func (o *genObs) markStages(observe, refit, rebuild time.Duration) {
	if o == nil {
		return
	}
	if observe > 0 {
		o.observe.Observe(observe)
	}
	if refit > 0 {
		o.refit.Observe(refit)
	}
	o.rebuild.Observe(rebuild)
}

// markGeneration records one published generation: the end-to-end
// histogram, the volume counters and a lifecycle event. kind is
// "window" (stream) or "batch" (ingest); detail carries the per-loop
// tail (window/seq numbering, replay flag).
func (o *genObs) markGeneration(kind string, rows, dirtyKeys, sharedTiles int, total time.Duration, detail string) {
	if o == nil {
		return
	}
	o.gen.Observe(total)
	o.gens.Inc()
	o.rows.Add(uint64(rows))
	o.dirty.Add(uint64(dirtyKeys))
	o.obs.Event(kind, "%s rows=%d dirty_keys=%d shared_tiles=%d took=%s",
		detail, rows, dirtyKeys, sharedTiles, total.Round(time.Microsecond))
}
