package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/ml"
	"repro/internal/ml/baseline"
	"repro/internal/ml/knn"
	"repro/internal/ml/nn"
	"repro/internal/rem"
	"repro/internal/remshard"
	"repro/internal/remstore"
	"repro/internal/simrand"
)

// streamDataset builds a 4-MAC dataset whose arrival order makes the
// window structure interesting: the first 40 samples interleave all MACs,
// then two MAC-blocked tails — so later windows dirty only a subset of
// keys and tile sharing is observable.
func streamDataset() *dataset.Dataset {
	rng := simrand.New(2024)
	macs := []string{"aa:00", "bb:11", "cc:22", "dd:33"}
	d := &dataset.Dataset{}
	add := func(mi int) {
		x, y, z := rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		d.Add(dataset.Sample{
			UAV: "A", X: x, Y: y, Z: z, MAC: macs[mi], SSID: "net",
			RSSI: -40 - int(8*x) - int(3*y) - 2*mi - rng.Intn(4), Channel: 1 + mi,
		})
	}
	for i := 0; i < 40; i++ { // window 0: all MACs
		add(i % 4)
	}
	for _, mi := range []int{0, 1} { // window 1: MACs 0 and 1
		for i := 0; i < 20; i++ {
			add(mi)
		}
	}
	for _, mi := range []int{2, 3} { // window 2: MACs 2 and 3
		for i := 0; i < 20; i++ {
			add(mi)
		}
	}
	return d
}

func streamCfg(spec *EstimatorSpec, workers int) StreamConfig {
	cfg := DefaultStreamConfig(5)
	cfg.REMResolution = [3]int{6, 5, 4}
	cfg.Workers = workers
	cfg.WindowRows = 40
	cfg.Spec = spec
	return cfg
}

// fromScratchMap is the rule 7 comparator: a fresh estimator fitted on
// the first upto cumulative rows, rasterised from scratch.
func fromScratchMap(t *testing.T, spec EstimatorSpec, pre *dataset.Preprocessed, upto int, res [3]int) *rem.Map {
	t.Helper()
	est, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	allX, allY := pre.DesignMatrix(spec.Features)
	if err := est.Fit(allX[:upto], allY[:upto]); err != nil {
		t.Fatal(err)
	}
	predict := BatchPredictorFor(est, pre.FeatureDim(spec.Features), spec.Features.OneHotMACScale)
	m, err := rem.BuildMapBatch(geom.PaperScanVolume(), res[0], res[1], res[2], pre.MACs, predict, rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// streamSpecs are the estimators the identity test sweeps: the tight
// dirty-set default, the running-mean baseline, the shared one-hot kNN
// (DirtyAll), a small full-retrain NN, and a non-incremental IDW ensemble
// exercising the RefitAdapter fallback.
func streamSpecs() []EstimatorSpec {
	plain := dataset.FeatureOptions{OneHotMACScale: 1}
	scaled := dataset.FeatureOptions{OneHotMACScale: 3}
	nnCfg := nn.PaperConfig(5)
	nnCfg.Epochs = 10
	nnCfg.RetainTraining = true // incremental use extends the training set
	return []EstimatorSpec{
		DefaultStreamSpec(),
		{
			Name:     "baseline",
			Features: plain,
			Build:    func() (ml.Estimator, error) { return &baseline.MeanPerKey{KeyOffset: 3}, nil },
		},
		{
			Name:     "scaled kNN",
			Features: scaled,
			Build:    func() (ml.Estimator, error) { return knn.New(knn.PaperScaledConfig()) },
		},
		{
			Name:     "small NN",
			Features: plain,
			Build:    func() (ml.Estimator, error) { return nn.New(nnCfg) },
		},
		{
			Name:     "per-MAC IDW (adapter)",
			Features: plain,
			Build: func() (ml.Estimator, error) {
				return &ml.PerKeyEnsemble{
					Factory:   func() ml.Estimator { return &rem.IDW{Power: 2, Smoothing: 0.05} },
					KeyOffset: 3,
				}, nil
			},
		},
	}
}

// TestRunStreamSnapshotIdentity is rule 7 end to end: after every
// published window, the served snapshot is byte-identical to a
// from-scratch pipeline on the cumulative rows — across every estimator
// family.
func TestRunStreamSnapshotIdentity(t *testing.T) {
	data := streamDataset()
	for _, spec := range streamSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := streamCfg(&spec, 2)
			cfg.MinSamplesPerMAC = 16
			type published struct {
				rep  WindowReport
				snap *remstore.Snapshot
			}
			var pubs []published
			cfg.OnWindow = func(rep WindowReport, snap *remstore.Snapshot) {
				pubs = append(pubs, published{rep, snap})
			}
			res, err := RunStreamWithDataset(cfg, data, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Windows) != 3 {
				t.Fatalf("windows = %d, want 3", len(res.Windows))
			}
			for i, p := range pubs {
				want := fromScratchMap(t, spec, res.Pre, p.rep.TotalRows, cfg.REMResolution)
				if !p.snap.Map().Equal(want) {
					t.Fatalf("window %d: snapshot differs from from-scratch build", i)
				}
				if p.rep.Version != uint64(i+1) {
					t.Fatalf("window %d: version = %d", i, p.rep.Version)
				}
			}
			if cur := res.Store.Current(); cur == nil || cur.Version() != 3 {
				t.Fatal("store does not serve the final window")
			}
		})
	}
}

// TestRunStreamTileSharing: with the per-MAC default, a MAC-blocked
// window dirties only its keys and the snapshot shares the other keys'
// tiles with its parent.
func TestRunStreamTileSharing(t *testing.T) {
	cfg := streamCfg(nil, 1)
	res, err := RunStreamWithDataset(cfg, streamDataset(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Windows
	if w[0].DirtyKeys != 4 || w[0].SharedTiles != 0 {
		t.Fatalf("window 0 = %+v, want 4 dirty keys and no sharing", w[0])
	}
	// Window 1 adds samples for MACs 0 and 1 only; every key already has
	// its own sub-regressor after window 0, so exactly 2 keys are dirty
	// and the other 2 keys' tiles are shared.
	tpk := res.Store.Current().Map().TilesPerKey()
	if w[1].DirtyKeys != 2 || w[1].SharedTiles != 2*tpk {
		t.Fatalf("window 1 = %+v, want 2 dirty keys and %d shared tiles", w[1], 2*tpk)
	}
	if w[2].DirtyKeys != 2 || w[2].SharedTiles != 2*tpk {
		t.Fatalf("window 2 = %+v, want 2 dirty keys and %d shared tiles", w[2], 2*tpk)
	}
	if stats := res.Store.Stats(); stats.Publishes != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestRunStreamWorkerInvariance: the streaming pipeline keeps the
// determinism contract across worker counts.
func TestRunStreamWorkerInvariance(t *testing.T) {
	data := streamDataset()
	run := func(workers int) *StreamResult {
		res, err := RunStreamWithDataset(streamCfg(nil, workers), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if !seq.Store.Current().Map().Equal(par.Store.Current().Map()) {
		t.Fatal("final snapshots differ between workers=1 and workers=4")
	}
	for i := range seq.Windows {
		if seq.Windows[i] != par.Windows[i] {
			t.Fatalf("window %d: %+v ≠ %+v", i, par.Windows[i], seq.Windows[i])
		}
	}
}

// TestRunStreamShardedEquivalence is determinism contract rule 8 at the
// pipeline layer: the same dataset streamed into a sharded store — for
// two partitioner families and shard counts 1, 2 and 4 — serves every
// query byte-identically to the monolithic stream, window for window,
// and the merged sharded view is Map.Equal to the monolithic snapshot.
func TestRunStreamShardedEquivalence(t *testing.T) {
	data := streamDataset()
	mono, err := RunStreamWithDataset(streamCfg(nil, 2), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	macs := mono.Pre.MACs
	partitioners := func(shards int) map[string]remshard.Partitioner {
		assign := make(map[string]int, len(macs))
		for i, m := range macs {
			assign[m] = i % shards
		}
		return map[string]remshard.Partitioner{
			"hash":     remshard.HashByKey{},
			"explicit": remshard.Explicit{Assign: assign, Fallback: remshard.HashByKey{}},
		}
	}
	rng := simrand.New(8)
	probes := make([]geom.Vec3, 16)
	for i := range probes {
		probes[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	for _, shards := range []int{1, 2, 4} {
		for name, p := range partitioners(shards) {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				cfg := streamCfg(nil, 4)
				cfg.Shards = shards
				cfg.Partitioner = p
				var rounds []remshard.Round
				cfg.OnShardWindow = func(rep WindowReport, round remshard.Round) {
					rounds = append(rounds, round)
				}
				sh, err := RunStreamWithDataset(cfg, data, nil)
				if err != nil {
					t.Fatal(err)
				}
				if sh.Store != nil || sh.Sharded == nil {
					t.Fatal("sharded stream did not publish into a sharded store")
				}
				if len(sh.Windows) != len(mono.Windows) {
					t.Fatalf("windows = %d, want %d", len(sh.Windows), len(mono.Windows))
				}
				for i, w := range sh.Windows {
					mw := mono.Windows[i]
					if w.DirtyKeys != mw.DirtyKeys || w.Version != mw.Version || w.NewRows != mw.NewRows {
						t.Fatalf("window %d: sharded %+v, monolithic %+v", i, w, mw)
					}
					if w.Shards < 1 || rounds[i].Seq != w.Version {
						t.Fatalf("window %d: round %+v for report %+v", i, rounds[i], w)
					}
				}
				merged, err := sh.Sharded.MergedSnapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !merged.Equal(mono.Store.Current().Map()) {
					t.Fatal("merged sharded view differs from the monolithic snapshot")
				}
				monoQ0 := mono.Store.Stats().Queries
				for _, pb := range probes {
					for _, mac := range macs {
						wv, _, err := mono.Store.At(mac, pb)
						if err != nil {
							t.Fatal(err)
						}
						gv, _, err := sh.Sharded.At(mac, pb)
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(gv) != math.Float64bits(wv) {
							t.Fatalf("At(%s, %v): sharded %v, monolithic %v", mac, pb, gv, wv)
						}
					}
					wk, wv, _, err := mono.Store.Strongest(pb)
					if err != nil {
						t.Fatal(err)
					}
					gk, gv, _, err := sh.Sharded.Strongest(pb)
					if err != nil {
						t.Fatal(err)
					}
					if gk != wk || math.Float64bits(gv) != math.Float64bits(wv) {
						t.Fatalf("Strongest(%v): sharded (%s, %v), monolithic (%s, %v)", pb, gk, gv, wk, wv)
					}
				}
				// The same query stream counts identically (rule 8 on
				// Stats): compare the deltas this subtest produced.
				wantQ := mono.Store.Stats().Queries - monoQ0
				if got := sh.Sharded.Stats().Queries; got != wantQ {
					t.Fatalf("sharded logical queries = %d, monolithic = %d", got, wantQ)
				}
			})
		}
	}
}

// TestRunStreamShardedPrebuiltStore: a caller-owned sharded store is
// used when compatible and rejected when its vocabulary or geometry
// differs.
func TestRunStreamShardedPrebuiltStore(t *testing.T) {
	data := streamDataset()
	cfg := streamCfg(nil, 1)
	mono, err := RunStreamWithDataset(cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	macs := mono.Pre.MACs
	mk := func(res [3]int, keys []string) *remshard.ShardedStore {
		st, err := remshard.New(keys, remshard.Config{
			Shards: 2, Volume: geom.PaperScanVolume(), Resolution: res,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	good := mk(cfg.REMResolution, macs)
	cfg.ShardStore = good
	res, err := RunStreamWithDataset(cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharded != good {
		t.Fatal("caller-owned sharded store not used")
	}
	if got := good.Rounds(); got != uint64(len(res.Windows)) {
		t.Fatalf("store saw %d rounds for %d windows", got, len(res.Windows))
	}
	cfg.ShardStore = mk([3]int{5, 5, 5}, macs)
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("resolution mismatch accepted")
	}
	cfg.ShardStore = mk(cfg.REMResolution, []string{"zz:99", "zz:98", "zz:97", "zz:96"})
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
	// A ShardStore fixes its own layout: conflicting Shards/Partitioner
	// requests are rejected rather than silently ignored.
	cfg.ShardStore = mk(cfg.REMResolution, macs)
	cfg.Shards = 8 // store has 2
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("shard-count conflict accepted")
	}
	cfg.Shards = 0
	cfg.Partitioner = remshard.HashByKey{}
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("Partitioner alongside ShardStore accepted")
	}
	cfg.Partitioner = nil
	// Conflicting monolithic/sharded options are rejected loudly.
	cfg = streamCfg(nil, 1)
	cfg.Shards = 2
	cfg.Store = remstore.New(0)
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("Store + Shards accepted")
	}
	cfg = streamCfg(nil, 1)
	cfg.Shards = 2
	cfg.OnWindow = func(WindowReport, *remstore.Snapshot) {}
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("OnWindow + Shards accepted")
	}
	cfg = streamCfg(nil, 1)
	cfg.OnShardWindow = func(WindowReport, remshard.Round) {}
	if _, err := RunStreamWithDataset(cfg, data, nil); err == nil {
		t.Fatal("OnShardWindow without Shards accepted")
	}
}

// TestRunStreamShardedWorkerInvariance: the sharded pipeline keeps the
// determinism contract across worker counts.
func TestRunStreamShardedWorkerInvariance(t *testing.T) {
	data := streamDataset()
	run := func(workers int) *StreamResult {
		cfg := streamCfg(nil, workers)
		cfg.Shards = 3
		res, err := RunStreamWithDataset(cfg, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	a, err := seq.Sharded.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Sharded.MergedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("final sharded snapshots differ between workers=1 and workers=4")
	}
	for i := range seq.Windows {
		if seq.Windows[i] != par.Windows[i] {
			t.Fatalf("window %d: %+v ≠ %+v", i, par.Windows[i], seq.Windows[i])
		}
	}
}

// TestRunStreamValidation: configurations that cannot stream are
// rejected.
func TestRunStreamValidation(t *testing.T) {
	if _, err := RunStreamWithDataset(streamCfg(nil, 1), nil, nil); err == nil {
		t.Error("nil dataset accepted")
	}
	cfg := streamCfg(nil, 1)
	cfg.REMResolution = [3]int{}
	if _, err := RunStreamWithDataset(cfg, streamDataset(), nil); err == nil {
		t.Error("zero REM resolution accepted")
	}
	cfg = streamCfg(nil, 1)
	cfg.MinSamplesPerMAC = 0
	if _, err := RunStreamWithDataset(cfg, streamDataset(), nil); err == nil {
		t.Error("zero MAC threshold accepted")
	}
}

// TestRunStreamCancellation pins the graceful-stop contract: cancelling
// the config Context between windows stops the stream cleanly — the
// partial result is returned alongside the context error, and every
// snapshot published before the stop keeps serving.
func TestRunStreamCancellation(t *testing.T) {
	data := streamDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := streamCfg(nil, 1)
	cfg.Context = ctx
	published := 0
	cfg.OnWindow = func(rep WindowReport, _ *remstore.Snapshot) {
		published++
		if rep.Window == 0 {
			cancel() // stop after the first publish; window 1 must not run
		}
	}
	res, err := RunStreamWithDataset(cfg, data, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v, want context.Canceled", err)
	}
	if published != 1 {
		t.Fatalf("published %d windows after cancelling in window 0, want 1", published)
	}
	if res == nil || len(res.Windows) != 1 {
		t.Fatalf("cancelled stream must hand back the partial result (got %+v)", res)
	}
	// The published generation keeps serving after the stop.
	if _, _, err := res.Store.At(res.Pre.MACs[0], geom.V(1, 1, 1)); err != nil {
		t.Fatalf("partial store stopped serving: %v", err)
	}
	// An already-cancelled context publishes nothing at all.
	cfg = streamCfg(nil, 1)
	cfg.Context = ctx
	res, err = RunStreamWithDataset(cfg, data, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled stream returned %v, want context.Canceled", err)
	}
	if res == nil || len(res.Windows) != 0 {
		t.Fatal("pre-cancelled stream must return an empty partial result")
	}
}

// TestRunStreamOnStore pins the serve-while-streaming hook: it fires
// exactly once, before the first publish, with the mode-matching sink —
// so an HTTP front started there observes every generation from v1.
func TestRunStreamOnStore(t *testing.T) {
	data := streamDataset()
	for _, shards := range []int{0, 2} {
		cfg := streamCfg(nil, 1)
		cfg.Shards = shards
		calls := 0
		sawEmpty := false
		cfg.OnStore = func(st *remstore.Store, ss *remshard.ShardedStore) {
			calls++
			if shards > 0 {
				if st != nil || ss == nil {
					t.Fatalf("sharded OnStore got (store %v, sharded %v)", st != nil, ss != nil)
				}
				sawEmpty = ss.StoreOf(0).Current() == nil && ss.StoreOf(1).Current() == nil
			} else {
				if st == nil || ss != nil {
					t.Fatalf("monolithic OnStore got (store %v, sharded %v)", st != nil, ss != nil)
				}
				sawEmpty = st.Current() == nil
			}
		}
		if shards > 0 {
			cfg.OnWindow = nil
		}
		res, err := RunStreamWithDataset(cfg, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if calls != 1 {
			t.Fatalf("OnStore fired %d times, want 1", calls)
		}
		if !sawEmpty {
			t.Fatal("OnStore fired after the first publish")
		}
		if shards > 0 && res.Sharded == nil || shards == 0 && res.Store == nil {
			t.Fatal("result sink does not match the hooked one")
		}
	}
}
