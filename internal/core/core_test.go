package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
)

// sharedResult caches one full pipeline run; the Figure 8 tests all consume
// it.
var sharedResult *Result

func runPipeline(t *testing.T) *Result {
	t.Helper()
	if sharedResult != nil {
		return sharedResult
	}
	res, err := Run(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sharedResult = res
	return res
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TrainFraction = 0
	if _, err := Run(cfg); err == nil {
		t.Error("train fraction 0 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.TrainFraction = 1
	if _, err := Run(cfg); err == nil {
		t.Error("train fraction 1 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.MinSamplesPerMAC = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero MAC threshold accepted")
	}
	if _, err := RunWithDataset(DefaultConfig(1), nil, nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := RunWithDataset(DefaultConfig(1), &dataset.Dataset{}, nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestPipelinePreprocessingMatchesPaperScale(t *testing.T) {
	res := runPipeline(t)
	// Paper: 2696 collected, 2565 retained, 131 dropped.
	retained := len(res.Pre.Rows)
	if retained < 2000 || retained > 3200 {
		t.Errorf("retained rows = %d, want ≈2565", retained)
	}
	if res.Pre.Dropped < 30 || res.Pre.Dropped > 350 {
		t.Errorf("dropped rows = %d, want ≈131", res.Pre.Dropped)
	}
	if res.Pre.Dropped+retained != res.Data.Len() {
		t.Error("dropped + retained ≠ total")
	}
}

func TestFigure8ScoresMatchPaperShape(t *testing.T) {
	res := runPipeline(t)
	if len(res.Scores) != 5 {
		t.Fatalf("scores = %d, want 5 estimators", len(res.Scores))
	}
	byName := map[string]Score{}
	for _, s := range res.Scores {
		byName[s.Name] = s
		// All RMSEs live in the paper's 4–5.5 dB band.
		if s.RMSE < 3.2 || s.RMSE > 5.8 {
			t.Errorf("%s RMSE = %.3f dB outside the plausible band", s.Name, s.RMSE)
		}
		if s.MAE <= 0 || s.MAE >= s.RMSE {
			t.Errorf("%s MAE = %.3f inconsistent with RMSE %.3f", s.Name, s.MAE, s.RMSE)
		}
	}
	baseline := byName["baseline mean-per-MAC"]
	// Every kNN variant must beat the baseline (Figure 8).
	for _, name := range []string{"kNN k=3 distance-weighted", "kNN one-hot×3 k=16", "per-MAC kNN"} {
		if byName[name].RMSE >= baseline.RMSE {
			t.Errorf("%s RMSE %.3f not below baseline %.3f", name, byName[name].RMSE, baseline.RMSE)
		}
	}
	// The NN sits between the best kNN and the baseline (Figure 8); the
	// paper itself calls the regressors "comparable", so allow a small
	// tolerance against the baseline.
	nnScore := byName["NN 16-node sigmoid Adam"]
	if nnScore.RMSE >= baseline.RMSE*1.03 {
		t.Errorf("NN RMSE %.3f not comparable to baseline %.3f", nnScore.RMSE, baseline.RMSE)
	}
	best := res.BestScore()
	if nnScore.RMSE <= best.RMSE {
		t.Errorf("NN RMSE %.3f unexpectedly beats the best kNN %.3f", nnScore.RMSE, best.RMSE)
	}
	if res.BestScore().Name == "NN 16-node sigmoid Adam" || res.BestScore().Name == "baseline mean-per-MAC" {
		t.Errorf("best estimator is %q; the paper's winner is a kNN variant", res.BestScore().Name)
	}
}

func TestBestIndexConsistent(t *testing.T) {
	res := runPipeline(t)
	for _, s := range res.Scores {
		if s.RMSE < res.BestScore().RMSE {
			t.Errorf("Best does not point at the minimum: %s %.3f < %.3f", s.Name, s.RMSE, res.BestScore().RMSE)
		}
	}
}

func TestREMIsBuiltAndQueryable(t *testing.T) {
	res := runPipeline(t)
	if res.REM == nil {
		t.Fatal("REM not built")
	}
	if len(res.REM.Keys()) != len(res.Pre.MACs) {
		t.Errorf("REM keys = %d, want %d", len(res.REM.Keys()), len(res.Pre.MACs))
	}
	// Query the map at the volume centre for every MAC: predictions must be
	// plausible RSS values.
	centre := geom.PaperScanVolume().Center()
	for _, key := range res.REM.Keys() {
		v, err := res.REM.At(key, centre)
		if err != nil {
			t.Fatal(err)
		}
		if v > -15 || v < -110 {
			t.Errorf("REM prediction for %s = %.1f dBm implausible", key, v)
		}
	}
	// Coverage analysis must run.
	frac := res.REM.CoverageFraction(-85)
	if frac <= 0 || frac > 1 {
		t.Errorf("coverage fraction = %v", frac)
	}
}

func TestREMDisabled(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.REMResolution = [3]int{}
	cfg.Estimators = PaperEstimators(2)[:1] // baseline only: fast
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.REM != nil {
		t.Error("REM built despite zero resolution")
	}
}

func TestRunWithStoredDataset(t *testing.T) {
	// The ML half must be re-runnable on a stored dataset.
	res := runPipeline(t)
	cfg := DefaultConfig(1)
	cfg.Estimators = PaperEstimators(1)[:2]
	cfg.REMResolution = [3]int{}
	again, err := RunWithDataset(cfg, res.Data, res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Scores) != 2 {
		t.Fatalf("scores = %d", len(again.Scores))
	}
	// Same data, same seed, same estimator → identical RMSE.
	if again.Scores[0].RMSE != res.Scores[0].RMSE {
		t.Errorf("re-run baseline RMSE %.4f differs from original %.4f",
			again.Scores[0].RMSE, res.Scores[0].RMSE)
	}
}

func TestExtendedEstimatorsRun(t *testing.T) {
	res := runPipeline(t)
	cfg := DefaultConfig(1)
	cfg.Estimators = ExtendedEstimators(1)[5:] // just IDW + kriging
	cfg.REMResolution = [3]int{}
	ext, err := RunWithDataset(cfg, res.Data, res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Scores) != 2 {
		t.Fatalf("extended scores = %d", len(ext.Scores))
	}
	for _, s := range ext.Scores {
		if s.RMSE < 3.0 || s.RMSE > 6.5 {
			t.Errorf("%s RMSE = %.3f outside plausible band", s.Name, s.RMSE)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Estimators = PaperEstimators(3)[:2]
	cfg.REMResolution = [3]int{}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Errorf("score %d differs across identical runs: %+v vs %+v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestMissionAblationThroughPipeline(t *testing.T) {
	// The stock-firmware ablation must produce a much smaller dataset but
	// still flow through the pipeline if any MACs survive the threshold.
	opts := mission.DefaultOptions(1)
	opts.StockFirmware = true
	ctrl, err := mission.NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	full := runPipeline(t)
	if data.Len() >= full.Data.Len()/4 {
		t.Errorf("stock firmware dataset %d not ≪ full %d", data.Len(), full.Data.Len())
	}
}

func TestPipelineWorkerCountInvariance(t *testing.T) {
	// The concurrency contract end to end: the ML half of the pipeline —
	// estimator comparison and REM rasterisation — must be byte-identical
	// for workers=1 and workers=4.
	full := runPipeline(t)
	run := func(workers int) *Result {
		cfg := DefaultConfig(1)
		cfg.Workers = workers
		cfg.Estimators = PaperEstimators(1)[:3] // baseline + both kNNs: fast
		cfg.REMResolution = [3]int{6, 5, 4}
		res, err := RunWithDataset(cfg, full.Data, full.Report)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	for i := range seq.Scores {
		if seq.Scores[i] != par.Scores[i] {
			t.Errorf("score %d: workers=4 %+v ≠ workers=1 %+v", i, par.Scores[i], seq.Scores[i])
		}
	}
	if seq.Best != par.Best {
		t.Errorf("winner differs: workers=4 %d ≠ workers=1 %d", par.Best, seq.Best)
	}
	var seqCSV, parCSV bytes.Buffer
	if err := seq.REM.WriteCSV(&seqCSV); err != nil {
		t.Fatal(err)
	}
	if err := par.REM.WriteCSV(&parCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqCSV.Bytes(), parCSV.Bytes()) {
		t.Error("REM maps differ between workers=1 and workers=4")
	}
}
