package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remstore"
	"repro/internal/remwal"
)

// ingestBatches is the live-traffic fixture: batches across the
// streamDataset vocabulary, each dirtying a different key subset, with
// positions inside the paper scan volume.
func ingestBatches() []remwal.Batch {
	return []remwal.Batch{
		{Key: "aa:00", Points: []geom.Vec3{geom.V(1, 1, 0.5), geom.V(2, 2, 1)}, Values: []float64{-47, -52.5}},
		{Key: "cc:22", Points: []geom.Vec3{geom.V(3, 0.5, 2)}, Values: []float64{-61}},
		{Key: "aa:00", Points: []geom.Vec3{geom.V(0.5, 2.5, 1.5)}, Values: []float64{-44.25}},
		{Key: "dd:33", Points: []geom.Vec3{geom.V(3.5, 1, 0.5), geom.V(1.5, 0.5, 2.2)}, Values: []float64{-70, -66}},
	}
}

func ingestCfg() IngestConfig {
	cfg := IngestConfig{Config: DefaultConfig(5)}
	cfg.REMResolution = [3]int{6, 5, 4}
	cfg.Workers = 1
	cfg.MaxHistory = 64
	return cfg
}

// runIngestTo drives RunIngestWithDataset deterministically: replay
// first, then the live batches pre-submitted to a closed queue — the
// loop drains them in order and stops cleanly on ErrClosed. Returns the
// per-version snapshot codec bytes (1 = bootstrap) and the final map.
func runIngestTo(t *testing.T, log *remwal.Log, replay, live []remwal.Batch) (map[uint64][]byte, *rem.Map) {
	t.Helper()
	q := remwal.NewQueue(remwal.QueueConfig{Capacity: len(live) + 1, Log: log})
	for _, b := range live {
		if _, err := q.Submit(b); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	cfg := ingestCfg()
	cfg.Queue = q
	cfg.Replay = replay
	cfg.Context = context.Background()
	res, err := RunIngestWithDataset(cfg, streamDataset(), nil)
	if !errors.Is(err, remwal.ErrClosed) {
		t.Fatalf("ingest run ended with %v, want queue closure", err)
	}
	if len(res.Batches) != len(replay)+len(live) {
		t.Fatalf("published %d batches, want %d", len(res.Batches), len(replay)+len(live))
	}
	for i, rep := range res.Batches {
		if rep.Seq != uint64(i+1) || rep.Version != uint64(i+2) {
			t.Fatalf("batch %d: seq %d version %d, want %d/%d", i, rep.Seq, rep.Version, i+1, i+2)
		}
		if want := i < len(replay); rep.Replayed != want {
			t.Fatalf("batch %d: Replayed %v, want %v", i, rep.Replayed, want)
		}
	}
	byVersion := make(map[uint64][]byte)
	for v := uint64(1); v <= uint64(len(replay)+len(live)+1); v++ {
		snap := res.Store.SnapshotAt(v)
		if snap == nil {
			t.Fatalf("version %d missing from history", v)
		}
		var buf bytes.Buffer
		if _, err := snap.Map().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		byVersion[v] = buf.Bytes()
	}
	return byVersion, res.Store.Current().Map()
}

// appendToWAL persists batches the way the queue does — canonical REMO
// bytes — simulating a run that acknowledged them and then died before
// (or while) processing.
func appendToWAL(t *testing.T, dir string, batches []remwal.Batch, sync remwal.SyncPolicy) {
	t.Helper()
	l, recs, err := remwal.Open(remwal.Config{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	for _, b := range batches {
		if _, err := l.Append(remwal.AppendBatch(nil, b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// recoverWAL reopens a crashed WAL and decodes what survived.
func recoverWAL(t *testing.T, dir string) []remwal.Batch {
	t.Helper()
	l, recs, err := remwal.Open(remwal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batches, good := remwal.Batches(recs)
	if good != len(recs) {
		t.Fatalf("only %d of %d replayed records decoded", good, len(recs))
	}
	return batches
}

// compareRuns asserts two runs published byte-identical snapshots at
// every version, and that the final maps are Equal.
func compareRuns(t *testing.T, got, want map[uint64][]byte, gotMap, wantMap *rem.Map) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("published %d versions, oracle has %d", len(got), len(want))
	}
	for v, wb := range want {
		if !bytes.Equal(got[v], wb) {
			t.Fatalf("version %d: snapshot bytes differ from the uninterrupted run", v)
		}
	}
	if !gotMap.Equal(wantMap) {
		t.Fatal("final maps differ")
	}
}

// TestRule10CrashMatrix pins determinism contract rule 10 at every
// crash point: a run killed after acknowledging k batches and restarted
// from its WAL publishes snapshots byte-identical, version for version,
// to a run that never crashed.
func TestRule10CrashMatrix(t *testing.T) {
	batches := ingestBatches()
	oracle, oracleMap := runIngestTo(t, nil, nil, batches)
	for k := 0; k <= len(batches); k++ {
		t.Run(fmt.Sprintf("crash_after_%d", k), func(t *testing.T) {
			dir := t.TempDir()
			appendToWAL(t, dir, batches[:k], remwal.SyncAlways)
			recovered := recoverWAL(t, dir)
			if len(recovered) != k {
				t.Fatalf("recovered %d batches, want %d", len(recovered), k)
			}
			got, gotMap := runIngestTo(t, nil, recovered, batches[k:])
			compareRuns(t, got, oracle, gotMap, oracleMap)
		})
	}
}

// TestRule10FaultMatrix pins rule 10 under storage faults: a torn final
// record, a bit-flipped frame, duplicate delivery after a mid-window
// crash, and an fsync-lag crash each replay into exactly the oracle's
// snapshots once the affected batches are re-delivered.
func TestRule10FaultMatrix(t *testing.T) {
	batches := ingestBatches()
	oracle, oracleMap := runIngestTo(t, nil, nil, batches)
	seg := func(dir string) string { return filepath.Join(dir, fmt.Sprintf("%016x.reml", 1)) }
	k := 3 // acknowledged batches before the crash

	t.Run("torn_final_record", func(t *testing.T) {
		dir := t.TempDir()
		appendToWAL(t, dir, batches[:k], remwal.SyncAlways)
		fi, err := os.Stat(seg(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg(dir), fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		recovered := recoverWAL(t, dir)
		if len(recovered) != k-1 {
			t.Fatalf("torn tail: recovered %d batches, want %d", len(recovered), k-1)
		}
		// The client re-delivers the unacknowledged batch; the stream is
		// whole again and must match the oracle exactly.
		got, gotMap := runIngestTo(t, nil, recovered, batches[k-1:])
		compareRuns(t, got, oracle, gotMap, oracleMap)
	})

	t.Run("bit_flipped_record", func(t *testing.T) {
		dir := t.TempDir()
		appendToWAL(t, dir, batches[:k], remwal.SyncAlways)
		data, err := os.ReadFile(seg(dir))
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-5] ^= 0x40
		if err := os.WriteFile(seg(dir), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recovered := recoverWAL(t, dir)
		if len(recovered) != k-1 {
			t.Fatalf("bit flip: recovered %d batches, want %d", len(recovered), k-1)
		}
		got, gotMap := runIngestTo(t, nil, recovered, batches[k-1:])
		compareRuns(t, got, oracle, gotMap, oracleMap)
	})

	t.Run("duplicate_delivery", func(t *testing.T) {
		// The client's ack for batch k-1 was lost in the crash, so it
		// re-sends what the WAL already holds. Rule 10 says the replayed
		// run equals the uninterrupted run fed the same (duplicated)
		// sequence — at-least-once delivery, deterministic either way.
		dup := append(append([]remwal.Batch{}, batches[:k]...), batches[k-1])
		withDup := append(append([]remwal.Batch{}, dup...), batches[k:]...)
		dupOracle, dupOracleMap := runIngestTo(t, nil, nil, withDup)

		dir := t.TempDir()
		appendToWAL(t, dir, dup, remwal.SyncAlways)
		recovered := recoverWAL(t, dir)
		if len(recovered) != k+1 {
			t.Fatalf("duplicate: recovered %d batches, want %d", len(recovered), k+1)
		}
		got, gotMap := runIngestTo(t, nil, recovered, batches[k:])
		compareRuns(t, got, dupOracle, gotMap, dupOracleMap)
	})

	t.Run("fsync_lag_crash", func(t *testing.T) {
		// Under SyncNone only an explicit Sync barrier is durable: write
		// j batches, sync, write more, then crash before the OS flushes —
		// simulated by truncating to the synced watermark. Replay yields
		// exactly the synced prefix; re-delivering the rest restores the
		// oracle's stream.
		j := 2
		dir := t.TempDir()
		l, _, err := remwal.Open(remwal.Config{Dir: dir, Sync: remwal.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:j] {
			if _, err := l.Append(remwal.AppendBatch(nil, b)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(seg(dir))
		if err != nil {
			t.Fatal(err)
		}
		synced := fi.Size()
		for _, b := range batches[j:k] {
			if _, err := l.Append(remwal.AppendBatch(nil, b)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg(dir), synced); err != nil {
			t.Fatal(err)
		}
		recovered := recoverWAL(t, dir)
		if len(recovered) != j {
			t.Fatalf("fsync lag: recovered %d batches, want %d", len(recovered), j)
		}
		got, gotMap := runIngestTo(t, nil, recovered, batches[j:])
		compareRuns(t, got, oracle, gotMap, oracleMap)
	})
}

// TestIngestLiveEqualsReplayWAL closes the loop over the serving path:
// batches submitted through a WAL-backed queue during a live run leave
// a WAL whose replay reproduces the identical snapshots.
func TestIngestLiveEqualsReplayWAL(t *testing.T) {
	batches := ingestBatches()
	dir := t.TempDir()
	l, recs, err := remwal.Open(remwal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	oracle, oracleMap := runIngestTo(t, l, nil, batches)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered := recoverWAL(t, dir)
	if len(recovered) != len(batches) {
		t.Fatalf("recovered %d batches, want %d", len(recovered), len(batches))
	}
	got, gotMap := runIngestTo(t, nil, recovered, nil)
	compareRuns(t, got, oracle, gotMap, oracleMap)
}

// TestIngestValidation pins the config error surface.
func TestIngestValidation(t *testing.T) {
	data := streamDataset()
	base := func() IngestConfig {
		cfg := ingestCfg()
		cfg.Queue = remwal.NewQueue(remwal.QueueConfig{Capacity: 1})
		cfg.Context = context.Background()
		return cfg
	}
	if _, err := RunIngestWithDataset(IngestConfig{}, data, nil); err == nil {
		t.Fatal("missing queue accepted")
	}
	cfg := base()
	cfg.Context = nil
	if _, err := RunIngestWithDataset(cfg, data, nil); err == nil {
		t.Fatal("missing context accepted")
	}
	cfg = base()
	spec := DefaultStreamSpec()
	spec.Features.IncludeChannel = true
	cfg.Spec = &spec
	if _, err := RunIngestWithDataset(cfg, data, nil); err == nil {
		t.Fatal("channel features accepted")
	}
	cfg = base()
	if _, err := RunIngestWithDataset(cfg, nil, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}

	// The installed validator rejects unknown keys before the WAL.
	cfg = base()
	done := make(chan struct{})
	var vErr error
	cfg.OnStore = func(*remstore.Store) {
		_, vErr = cfg.Queue.Submit(remwal.Batch{
			Key: "nope", Points: []geom.Vec3{{X: 1}}, Values: []float64{-50},
		})
		cfg.Queue.Close()
		close(done)
	}
	if _, err := RunIngestWithDataset(cfg, data, nil); !errors.Is(err, remwal.ErrClosed) {
		t.Fatalf("run ended with %v", err)
	}
	<-done
	if !errors.Is(vErr, rem.ErrUnknownKey) {
		t.Fatalf("unknown-key submit error %v does not wrap rem.ErrUnknownKey", vErr)
	}
}
