package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/ml"
	"repro/internal/rem"
	"repro/internal/remobs"
	"repro/internal/remstore"
	"repro/internal/remwal"
)

// This file is the ingest-driven variant of the stream loop: instead of
// windowing a pre-recorded dataset, RunIngest bootstraps the estimator
// on the mission's survey and then consumes live observation batches
// from a remwal.Queue — each popped batch is one window (Observe →
// Refit → RebuildKeys → Publish), so the serving store advances one
// version per accepted batch and queries never block on a rebuild.
//
// Durability rides on the queue's write-ahead log: a batch is
// acknowledged only after its canonical REMO bytes are on disk, and
// Config.Replay re-feeds recovered batches through the identical code
// path before any live batch is popped. Determinism contract rule 10
// follows: a run killed at any point and restarted from its WAL
// publishes snapshots byte-identical to a run that never crashed,
// because the publish sequence is a pure function of the batch
// sequence, which the WAL preserves exactly.
//
// The key vocabulary stays fixed by the bootstrap dataset — a live
// batch for an unknown MAC is rejected at the serving edge (404) by
// the validator this loop installs, and never reaches the WAL.

// IngestConfig tunes an ingest run. The embedded Config supplies the
// seed, mission options, MAC threshold, REM resolution and worker
// bound; TrainFraction and Estimators are unused here.
type IngestConfig struct {
	Config
	// Spec is the served estimator; nil means DefaultStreamSpec.
	// Features.IncludeChannel is rejected: live observations carry no
	// channel, so the design-matrix row for a batch could not be built.
	Spec *EstimatorSpec
	// MaxHistory bounds the store's retained snapshot history
	// (≤ 0 means remstore.DefaultMaxHistory).
	MaxHistory int
	// Store, when set, receives the published snapshots instead of a
	// freshly created store (MaxHistory is then ignored).
	Store *remstore.Store
	// Queue is the batch source — required. The loop installs a
	// vocabulary/geometry validator on it (so rejected batches never
	// reach the WAL) and closes it when the loop exits, flipping the
	// serving edge to 503.
	Queue *remwal.Queue
	// Replay is the WAL's recovered batches, processed before any live
	// pop — pass remwal.Batches(recs) from the Open that produced Queue's
	// log so a restart resumes exactly where the crash interrupted.
	Replay []remwal.Batch
	// Context stops the loop — required (an ingest run has no natural
	// end). Cancellation between batches is a clean stop: everything
	// published keeps serving and the partial result is returned
	// alongside the context's error.
	Context context.Context
	// OnStore fires exactly once, after the sink store exists and before
	// the bootstrap snapshot publishes — the serve-while-ingesting hook.
	OnStore func(*remstore.Store)
	// OnBatch observes every published batch in order (replayed ones
	// included, flagged), after the bootstrap publish.
	OnBatch func(IngestReport)
	// Observer, when set, instruments the loop: per-batch stage
	// latencies, generation events with dirty-key counts, and the sink
	// store's publish metrics. The caller should hand the same Observer
	// to the Queue and its Log so one scrape covers the whole ingest
	// edge. Nil is the no-op.
	Observer *remobs.Observer
}

// IngestReport summarises one published batch.
type IngestReport struct {
	// Seq is the batch ordinal (1-based; the bootstrap publish is not a
	// batch). For WAL-backed queues this equals the record sequence.
	Seq uint64
	// Version is the published snapshot's store version (bootstrap is 1,
	// so Version = Seq+1).
	Version uint64
	// Rows is the number of observations in the batch.
	Rows int
	// DirtyKeys is how many keys the batch dirtied.
	DirtyKeys int
	// SharedTiles is how many tiles the published snapshot shares with
	// its predecessor.
	SharedTiles int
	// Replayed marks a batch recovered from the WAL rather than popped
	// live.
	Replayed bool
}

// IngestResult is the full ingest output.
type IngestResult struct {
	// Store serves the published snapshots; Store.Current() is the final
	// generation.
	Store *remstore.Store
	// Batches are the per-batch reports, in publish order.
	Batches []IngestReport
	// Data is the bootstrap mission dataset.
	Data *dataset.Dataset
	// Report is the mission flight report (nil for stored datasets).
	Report *mission.Report
	// Pre is the preprocessed bootstrap whose vocabulary the snapshots
	// share.
	Pre *dataset.Preprocessed
	// Estimator is the served incremental estimator, left fitted on
	// every row seen.
	Estimator ml.IncrementalEstimator
}

// RunIngest flies the mission for the bootstrap survey and then serves
// live batches; see RunIngestWithDataset.
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	ctrl, err := mission.NewPaperController(cfg.Mission)
	if err != nil {
		return nil, err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	return RunIngestWithDataset(cfg, data, report)
}

// RunIngestWithDataset bootstraps the estimator on the full dataset,
// publishes the bootstrap snapshot (version 1), then consumes batches —
// Replay first, then live pops — publishing one snapshot per batch
// until the context cancels or the queue closes. The returned result is
// partial but valid in both cases; the error wraps the cause.
func RunIngestWithDataset(cfg IngestConfig, data *dataset.Dataset, report *mission.Report) (*IngestResult, error) {
	if data == nil || data.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if cfg.Queue == nil {
		return nil, errors.New("core: ingest needs a Queue")
	}
	if cfg.Context == nil {
		return nil, errors.New("core: ingest needs a Context (the loop has no natural end)")
	}
	if cfg.MinSamplesPerMAC < 1 {
		return nil, errors.New("core: MinSamplesPerMAC must be ≥1")
	}
	if cfg.REMResolution[0] < 1 || cfg.REMResolution[1] < 1 || cfg.REMResolution[2] < 1 {
		return nil, fmt.Errorf("core: ingest needs a positive REM resolution, got %v", cfg.REMResolution)
	}
	spec := DefaultStreamSpec()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	if spec.Features.IncludeChannel {
		return nil, errors.New("core: ingest cannot serve channel features (live observations carry no channel)")
	}
	pre, err := dataset.Preprocess(data, cfg.MinSamplesPerMAC)
	if err != nil {
		return nil, err
	}
	est, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", spec.Name, err)
	}
	inc := ml.NewRefitAdapter(est)
	allX, allY := pre.DesignMatrix(spec.Features)
	featDim := pre.FeatureDim(spec.Features)
	predict := BatchPredictorFor(inc, featDim, spec.Features.OneHotMACScale)
	opts := rem.BuildOptions{Workers: cfg.Workers}
	vol := geom.PaperScanVolume()
	nKeys := len(pre.MACs)
	macIdx := make(map[string]int, nKeys)
	for i, m := range pre.MACs {
		macIdx[m] = i
	}
	res := &IngestResult{
		Data:      data,
		Report:    report,
		Pre:       pre,
		Estimator: inc,
	}
	res.Store = cfg.Store
	if res.Store == nil {
		res.Store = remstore.New(cfg.MaxHistory)
	}
	// The vocabulary gate: a batch for an unknown MAC never reaches the
	// WAL, so replay only ever sees batches this loop can encode.
	cfg.Queue.SetValidator(func(b remwal.Batch) error {
		if _, ok := macIdx[b.Key]; !ok {
			return fmt.Errorf("%w: %q", rem.ErrUnknownKey, b.Key)
		}
		return nil
	})
	// Once the loop exits — however it exits — the serving edge sheds
	// writes with 503 instead of acknowledging batches nobody will
	// process.
	defer cfg.Queue.Close()
	o := newGenObs(cfg.Observer)
	res.Store.SetObserver(cfg.Observer)
	if cfg.OnStore != nil {
		cfg.OnStore(res.Store)
	}

	// Bootstrap: fit on the whole survey, build and publish version 1.
	bootStart := time.Now()
	t := time.Now()
	if err := inc.Fit(allX, allY); err != nil {
		return nil, fmt.Errorf("core: fitting %s on the bootstrap survey: %w", spec.Name, err)
	}
	fitD := time.Since(t)
	t = time.Now()
	cur, err := rem.BuildMapBatch(vol, cfg.REMResolution[0], cfg.REMResolution[1], cfg.REMResolution[2], pre.MACs, predict, opts)
	if err != nil {
		return nil, fmt.Errorf("core: rasterising the bootstrap snapshot: %w", err)
	}
	buildD := time.Since(t)
	if _, err := res.Store.Publish(cur, nKeys); err != nil {
		return nil, err
	}
	o.markStages(0, fitD, buildD)
	o.markGeneration("batch", len(allX), nKeys, 0, time.Since(bootStart), "bootstrap version=1")

	processBatch := func(b remwal.Batch, seq uint64, replayed bool) error {
		batchStart := time.Now()
		ki, ok := macIdx[b.Key]
		if !ok {
			// Replay of a WAL written before the validator existed (or by
			// a different vocabulary) — a config error, not a data fault.
			return fmt.Errorf("core: batch %d: %w: %q", seq, rem.ErrUnknownKey, b.Key)
		}
		x := make([][]float64, len(b.Points))
		y := make([]float64, len(b.Points))
		for i, p := range b.Points {
			row := make([]float64, featDim)
			row[0], row[1], row[2] = p.X, p.Y, p.Z
			row[3+ki] = spec.Features.OneHotMACScale
			x[i] = row
			y[i] = b.Values[i]
		}
		t := time.Now()
		dirty, err := inc.Observe(x, y)
		if err != nil {
			return fmt.Errorf("core: observing batch %d: %w", seq, err)
		}
		observeD := time.Since(t)
		t = time.Now()
		if err := inc.Refit(); err != nil {
			return fmt.Errorf("core: refitting after batch %d: %w", seq, err)
		}
		refitD := time.Since(t)
		dirtyKeys := resolveDirty(dirty, nKeys, false)
		t = time.Now()
		next, err := cur.RebuildKeys(dirtyKeys, predict, opts)
		if err != nil {
			return fmt.Errorf("core: rasterising batch %d: %w", seq, err)
		}
		rebuildD := time.Since(t)
		snap, err := res.Store.Publish(next, len(dirtyKeys))
		if err != nil {
			return err
		}
		o.markStages(observeD, refitD, rebuildD)
		_, shared := snap.BuildStats()
		rep := IngestReport{
			Seq:         seq,
			Version:     snap.Version(),
			Rows:        len(b.Points),
			DirtyKeys:   len(dirtyKeys),
			SharedTiles: shared,
			Replayed:    replayed,
		}
		res.Batches = append(res.Batches, rep)
		o.markGeneration("batch", rep.Rows, rep.DirtyKeys, rep.SharedTiles,
			time.Since(batchStart), fmt.Sprintf("seq=%d version=%d replayed=%v", rep.Seq, rep.Version, rep.Replayed))
		if cfg.OnBatch != nil {
			cfg.OnBatch(rep)
		}
		cur = next
		return nil
	}

	stopped := func(cause error) (*IngestResult, error) {
		return res, fmt.Errorf("core: ingest stopped after %d batch(es): %w", len(res.Batches), cause)
	}
	seq := uint64(0)
	for _, b := range cfg.Replay {
		if err := cfg.Context.Err(); err != nil {
			return stopped(err)
		}
		seq++
		if err := processBatch(b, seq, true); err != nil {
			return res, err
		}
	}
	for {
		b, err := cfg.Queue.Pop(cfg.Context)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, remwal.ErrClosed) {
				return stopped(err)
			}
			return res, err
		}
		seq++
		if err := processBatch(b, seq, false); err != nil {
			return res, err
		}
	}
}
