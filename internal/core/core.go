// Package core assembles the paper's toolchain end to end — the system's
// primary contribution: UAV-collected, location-annotated signal samples are
// streamed into an ML stage, estimators are trained and compared (Figure 8),
// and the best one is materialised into a queryable fine-grained 3-D Radio
// Environmental Map.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/ml"
	"repro/internal/ml/baseline"
	"repro/internal/ml/knn"
	"repro/internal/ml/nn"
	"repro/internal/parallel"
	"repro/internal/rem"
	"repro/internal/simrand"
)

// EstimatorSpec names an estimator together with its feature encoding.
type EstimatorSpec struct {
	// Name labels the estimator in reports (Figure 8's x-axis).
	Name string
	// Features selects the design-matrix encoding.
	Features dataset.FeatureOptions
	// Build constructs a fresh estimator.
	Build func() (ml.Estimator, error)
}

// PaperEstimators returns the estimator suite of the paper's Figure 8: the
// per-MAC-mean baseline, the plain tuned kNN, the scaled-one-hot kNN (the
// paper's best), the per-MAC kNN ensemble, and the tuned neural network.
func PaperEstimators(seed uint64) []EstimatorSpec {
	plain := dataset.FeatureOptions{OneHotMACScale: 1}
	scaled := dataset.FeatureOptions{OneHotMACScale: 3}
	return []EstimatorSpec{
		{
			Name:     "baseline mean-per-MAC",
			Features: plain,
			Build:    func() (ml.Estimator, error) { return &baseline.MeanPerKey{KeyOffset: 3}, nil },
		},
		{
			Name:     "kNN k=3 distance-weighted",
			Features: plain,
			Build:    func() (ml.Estimator, error) { return knn.New(knn.PaperPlainConfig()) },
		},
		{
			Name:     "kNN one-hot×3 k=16",
			Features: scaled,
			Build:    func() (ml.Estimator, error) { return knn.New(knn.PaperScaledConfig()) },
		},
		{
			Name:     "per-MAC kNN",
			Features: plain,
			Build: func() (ml.Estimator, error) {
				return &knn.PerKey{Sub: knn.PaperPlainConfig(), KeyOffset: 3}, nil
			},
		},
		{
			Name:     "NN 16-node sigmoid Adam",
			Features: plain,
			Build:    func() (ml.Estimator, error) { return nn.New(nn.PaperConfig(seed)) },
		},
	}
}

// ExtendedEstimators appends the geostatistical interpolators this
// repository adds beyond the paper: per-MAC IDW and per-MAC ordinary
// kriging.
func ExtendedEstimators(seed uint64) []EstimatorSpec {
	plain := dataset.FeatureOptions{OneHotMACScale: 1}
	extra := []EstimatorSpec{
		{
			Name:     "per-MAC IDW p=2",
			Features: plain,
			Build: func() (ml.Estimator, error) {
				return &ml.PerKeyEnsemble{
					Factory:   func() ml.Estimator { return &rem.IDW{Power: 2, Smoothing: 0.05} },
					KeyOffset: 3,
				}, nil
			},
		},
		{
			Name:     "per-MAC ordinary kriging",
			Features: plain,
			Build: func() (ml.Estimator, error) {
				return &ml.PerKeyEnsemble{
					Factory:   func() ml.Estimator { return &rem.Kriging{Nugget: -1} },
					KeyOffset: 3,
				}, nil
			},
		},
	}
	return append(PaperEstimators(seed), extra...)
}

// Config tunes a pipeline run.
type Config struct {
	// Seed drives the mission, splits and weight initialisation.
	Seed uint64
	// Mission selects mission options; zero value means paper defaults.
	Mission mission.Options
	// TrainFraction is the train share of the 75/25 split.
	TrainFraction float64
	// MinSamplesPerMAC is the §III-B retention threshold.
	MinSamplesPerMAC int
	// Estimators is the suite to compare; nil means PaperEstimators.
	Estimators []EstimatorSpec
	// REMResolution is the map grid (cells per axis); zero disables REM
	// construction.
	REMResolution [3]int
	// Workers bounds the pipeline's concurrency — estimator training,
	// evaluation and REM rasterisation all share the setting. ≤ 0 means
	// GOMAXPROCS. Every worker count produces byte-identical results.
	Workers int
}

// DefaultConfig reproduces the paper's §III-B evaluation.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		Mission:          mission.DefaultOptions(seed),
		TrainFraction:    0.75,
		MinSamplesPerMAC: dataset.MinSamplesPerMAC,
		REMResolution:    [3]int{12, 10, 6},
	}
}

// Score is one estimator's Figure 8 result.
type Score struct {
	// Name is the estimator label.
	Name string
	// RMSE is the test-set root-mean-square error in dB.
	RMSE float64
	// MAE is the test-set mean absolute error in dB.
	MAE float64
}

// Result is the full pipeline output.
type Result struct {
	// Data is the raw mission dataset.
	Data *dataset.Dataset
	// Report is the mission flight report.
	Report *mission.Report
	// Pre is the preprocessed dataset.
	Pre *dataset.Preprocessed
	// Scores are the estimator comparisons, in suite order.
	Scores []Score
	// Best indexes the lowest-RMSE estimator in Scores.
	Best int
	// REM is the map built from the best estimator (nil if disabled).
	REM *rem.Map
}

// BestScore returns the winning estimator's score.
func (r *Result) BestScore() Score { return r.Scores[r.Best] }

// Run executes the paper pipeline: fly the mission, preprocess, train and
// compare the estimator suite, and build the REM from the winner.
func Run(cfg Config) (*Result, error) {
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		return nil, fmt.Errorf("core: train fraction %g outside (0, 1)", cfg.TrainFraction)
	}
	if cfg.MinSamplesPerMAC < 1 {
		return nil, errors.New("core: MinSamplesPerMAC must be ≥1")
	}
	ctrl, err := mission.NewPaperController(cfg.Mission)
	if err != nil {
		return nil, err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return nil, err
	}
	return RunWithDataset(cfg, data, report)
}

// RunWithDataset executes the ML half of the pipeline on an existing
// dataset — useful for re-analysing stored CSV missions.
func RunWithDataset(cfg Config, data *dataset.Dataset, report *mission.Report) (*Result, error) {
	if data == nil || data.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	pre, err := dataset.Preprocess(data, cfg.MinSamplesPerMAC)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(cfg.Seed).Derive("pipeline")
	train, test, err := pre.Split(cfg.TrainFraction, rng.Derive("split"))
	if err != nil {
		return nil, err
	}

	specs := cfg.Estimators
	if specs == nil {
		specs = PaperEstimators(cfg.Seed)
	}
	res := &Result{Data: data, Report: report, Pre: pre}

	// Design matrices are shared read-only across workers; materialise
	// each distinct encoding once instead of per estimator.
	type split struct {
		trX, teX [][]float64
		trY, teY []float64
	}
	splits := map[dataset.FeatureOptions]*split{}
	for _, spec := range specs {
		if _, ok := splits[spec.Features]; ok {
			continue
		}
		s := &split{}
		s.trX, s.trY = train.DesignMatrix(spec.Features)
		s.teX, s.teY = test.DesignMatrix(spec.Features)
		splits[spec.Features] = s
	}

	// Each estimator trains and scores independently on the pool; scores
	// land in suite order, so the winner selection below is identical to
	// the sequential loop.
	scores, err := parallel.Map(len(specs), cfg.Workers, func(i int) (Score, error) {
		spec := specs[i]
		est, err := spec.Build()
		if err != nil {
			return Score{}, fmt.Errorf("core: building %s: %w", spec.Name, err)
		}
		s := splits[spec.Features]
		if err := est.Fit(s.trX, s.trY); err != nil {
			return Score{}, fmt.Errorf("core: fitting %s: %w", spec.Name, err)
		}
		pred, err := ml.PredictAll(est, s.teX)
		if err != nil {
			return Score{}, fmt.Errorf("core: evaluating %s: %w", spec.Name, err)
		}
		rmse, err := ml.RMSE(pred, s.teY)
		if err != nil {
			return Score{}, err
		}
		mae, err := ml.MAE(pred, s.teY)
		if err != nil {
			return Score{}, err
		}
		return Score{Name: spec.Name, RMSE: rmse, MAE: mae}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Scores = scores
	var bestSpec EstimatorSpec
	for i, s := range scores {
		if i == 0 || s.RMSE < scores[res.Best].RMSE {
			res.Best = i
			bestSpec = specs[i]
		}
	}

	if cfg.REMResolution[0] > 0 {
		m, err := buildREM(cfg, pre, bestSpec)
		if err != nil {
			return nil, err
		}
		res.REM = m
	}
	return res, nil
}

// buildREM refits the winning estimator on the full dataset and rasterises
// it over the scan volume on the worker pool, feeding each worker's run of
// cells through the estimator's batch path.
func buildREM(cfg Config, pre *dataset.Preprocessed, spec EstimatorSpec) (*rem.Map, error) {
	est, err := spec.Build()
	if err != nil {
		return nil, err
	}
	allX, allY := pre.DesignMatrix(spec.Features)
	if err := est.Fit(allX, allY); err != nil {
		return nil, fmt.Errorf("core: refitting %s for REM: %w", spec.Name, err)
	}
	predict := BatchPredictorFor(est, pre.FeatureDim(spec.Features), spec.Features.OneHotMACScale)
	vol := geom.PaperScanVolume()
	return rem.BuildMapBatch(vol, cfg.REMResolution[0], cfg.REMResolution[1], cfg.REMResolution[2],
		pre.MACs, predict, rem.BuildOptions{Workers: cfg.Workers})
}

// BatchPredictorFor adapts a fitted estimator to the REM's batched cell
// contract under this pipeline's feature encoding: dim-wide rows with
// the cell centre at columns 0..2 and the one-hot MAC block (scaled by
// scale; 0 omits it) at offset 3. It is the single owner of that layout
// — rasterisation callers (the pipeline, the streaming loop, examples,
// benchmarks) share it rather than re-encoding by hand.
func BatchPredictorFor(est ml.Estimator, dim int, scale float64) rem.BatchPredictFunc {
	return func(centers []geom.Vec3, keyIdx int) ([]float64, error) {
		// One flat backing array per batch instead of one allocation per
		// cell; estimators with a batch path (kNN, NN) then answer the
		// whole run in a single PredictBatch call.
		flat := make([]float64, len(centers)*dim)
		qs := make([][]float64, len(centers))
		for i, pos := range centers {
			q := flat[i*dim : (i+1)*dim]
			q[0], q[1], q[2] = pos.X, pos.Y, pos.Z
			if scale != 0 {
				q[3+keyIdx] = scale
			}
			qs[i] = q
		}
		return ml.PredictAll(est, qs)
	}
}
