package lighthouse

import (
	"math"
	"testing"

	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/simrand"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.AngleNoiseRad = -1
	if err := c.Validate(); err == nil {
		t.Error("negative noise accepted")
	}
	c = DefaultConfig()
	c.MaxRangeM = 0
	if err := c.Validate(); err == nil {
		t.Error("zero range accepted")
	}
	c = DefaultConfig()
	c.OcclusionProbability = 2
	if err := c.Validate(); err == nil {
		t.Error("occlusion probability > 1 accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := New([]BaseStation{{ID: 1}}, cfg); err == nil {
		t.Error("single station accepted")
	}
	if _, err := New([]BaseStation{{ID: 1}, {ID: 1}}, cfg); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestCeilingPair(t *testing.T) {
	sys, err := CeilingPair(geom.PaperScanVolume(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stations := sys.Stations()
	if len(stations) != 2 {
		t.Fatalf("stations = %d", len(stations))
	}
	for _, s := range stations {
		if s.Pos.Z != 2.10 {
			t.Errorf("station %d not at ceiling height: %v", s.ID, s.Pos)
		}
	}
	if stations[0].Pos.Dist2D(stations[1].Pos) < 3 {
		t.Error("stations not diagonal")
	}
}

func TestMeasureAnglesNearTruth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OcclusionProbability = 0
	sys, err := CeilingPair(geom.PaperScanVolume(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(2)
	pos := geom.V(1.8, 1.6, 1.0)
	ms := sys.Measure(pos, rng)
	if len(ms) != 2 {
		t.Fatalf("measurements = %d, want 2", len(ms))
	}
	for _, m := range ms {
		d := pos.Sub(m.Station)
		wantAz := math.Atan2(d.Y, d.X)
		wantEl := math.Atan2(d.Z, math.Hypot(d.X, d.Y))
		if math.Abs(m.AzimuthRad-wantAz) > 0.01 {
			t.Errorf("station %d azimuth error %v rad", m.StationID, m.AzimuthRad-wantAz)
		}
		if math.Abs(m.ElevationRad-wantEl) > 0.01 {
			t.Errorf("station %d elevation error %v rad", m.StationID, m.ElevationRad-wantEl)
		}
	}
}

func TestMeasureRangeLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OcclusionProbability = 0
	sys, _ := New([]BaseStation{
		{ID: 1, Pos: geom.V(0, 0, 2)},
		{ID: 2, Pos: geom.V(100, 100, 2)},
	}, cfg)
	rng := simrand.New(3)
	ms := sys.Measure(geom.V(1, 1, 1), rng)
	if len(ms) != 1 || ms[0].StationID != 1 {
		t.Errorf("measurements = %+v, want only station 1", ms)
	}
}

func TestOcclusionDropsSweeps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OcclusionProbability = 1
	sys, _ := CeilingPair(geom.PaperScanVolume(), cfg)
	rng := simrand.New(4)
	if ms := sys.Measure(geom.V(1, 1, 1), rng); len(ms) != 0 {
		t.Errorf("fully occluded system returned %d measurements", len(ms))
	}
}

// TestEKFBearingHover demonstrates the paper's §IV claim: two Lighthouse
// base stations give hovering accuracy comparable to the 8-anchor UWB setup
// (decimetre or better).
func TestEKFBearingHover(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := CeilingPair(geom.PaperScanVolume(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	truth := geom.V(1.87, 1.60, 1.0)
	f, err := ekf.New(truth.Add(geom.V(0.4, -0.3, 0.2)), ekf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imu := rng.Derive("imu")
	meas := rng.Derive("sweep")
	var sumErr float64
	n := 0
	for k := 0; k < 300; k++ {
		accel := geom.V(imu.Gauss(0, 0.05), imu.Gauss(0, 0.05), imu.Gauss(0, 0.08))
		if err := f.Predict(accel, 0.1); err != nil {
			t.Fatal(err)
		}
		for _, m := range sys.Measure(truth, meas) {
			if err := f.UpdateBearing(m.Station, m.AzimuthRad, m.ElevationRad, 0.002); err != nil {
				t.Fatal(err)
			}
		}
		if k >= 100 {
			sumErr += f.Position().Dist(truth)
			n++
		}
	}
	mean := sumErr / float64(n)
	if mean > 0.10 {
		t.Errorf("Lighthouse hover error = %.3f m, want ≤ 0.10 (comparable to UWB per §IV)", mean)
	}
	if mean == 0 {
		t.Error("zero error is unrealistically perfect")
	}
}

func TestEKFBearingValidation(t *testing.T) {
	f, _ := ekf.New(geom.V(1, 1, 1), ekf.DefaultConfig())
	if err := f.UpdateBearing(geom.V(0, 0, 2), 0, 0, 0); err == nil {
		t.Error("zero sigma accepted")
	}
	// Tag directly below the station: azimuth undefined.
	if err := f.UpdateBearing(geom.V(1, 1, 2), 0, 0, 0.01); err == nil {
		t.Error("degenerate geometry accepted")
	}
}
