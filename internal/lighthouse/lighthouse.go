// Package lighthouse simulates BitCraze's Lighthouse positioning system —
// the SteamVR-style infrared sweep localization the paper's §IV names as
// future work: "comparable precision, while requiring less anchors and
// being cheaper" than the UWB Loco Positioning System, and free of 2.4 GHz
// self-interference (the sweeps are optical).
//
// Each base station sweeps laser planes across the volume; the deck on the
// UAV converts sweep timings into an azimuth and an elevation angle toward
// each visible base station. Two base stations suffice for 3-D positioning.
package lighthouse

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// BaseStation is one sweep emitter, typically mounted high in opposite
// corners of the room.
type BaseStation struct {
	// ID identifies the station (channel 1/2 on real hardware).
	ID int
	// Pos is the surveyed emitter position.
	Pos geom.Vec3
}

// MinBaseStations is the minimum constellation for 3-D positioning.
const MinBaseStations = 2

// Config tunes the optical error model.
type Config struct {
	// AngleNoiseRad is the white noise of one sweep-angle measurement;
	// real Lighthouse decks resolve well under a milliradian.
	AngleNoiseRad float64
	// StationBiasRad spreads a static per-station pointing bias
	// (imperfect mounting calibration).
	StationBiasRad float64
	// MaxRangeM bounds the usable optical range (~6 m for V2 stations).
	MaxRangeM float64
	// OcclusionProbability is the chance a sweep is missed (rotor blades,
	// body shadowing).
	OcclusionProbability float64
	// Seed derives the per-station bias draws.
	Seed uint64
}

// DefaultConfig returns an error model matched to Lighthouse V2 hardware.
func DefaultConfig() Config {
	return Config{
		AngleNoiseRad:        0.0008,
		StationBiasRad:       0.0012,
		MaxRangeM:            6,
		OcclusionProbability: 0.04,
		Seed:                 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AngleNoiseRad < 0 || c.StationBiasRad < 0 {
		return fmt.Errorf("lighthouse: noise parameters must be non-negative")
	}
	if c.MaxRangeM <= 0 {
		return fmt.Errorf("lighthouse: max range must be positive")
	}
	if c.OcclusionProbability < 0 || c.OcclusionProbability > 1 {
		return fmt.Errorf("lighthouse: occlusion probability %g outside [0, 1]", c.OcclusionProbability)
	}
	return nil
}

// Measurement is one decoded pair of sweep angles toward a base station,
// expressed in the world frame: azimuth = atan2(Δy, Δx) of the
// station→tag direction, elevation = atan2(Δz, horizontal distance).
type Measurement struct {
	StationID int
	Station   geom.Vec3
	// AzimuthRad and ElevationRad are the measured angles.
	AzimuthRad, ElevationRad float64
}

// System is a deployed base-station constellation.
type System struct {
	stations []BaseStation
	cfg      Config
	azBias   []float64
	elBias   []float64
}

// New deploys base stations. At least MinBaseStations are required.
func New(stations []BaseStation, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stations) < MinBaseStations {
		return nil, fmt.Errorf("lighthouse: need ≥%d base stations, got %d", MinBaseStations, len(stations))
	}
	seen := map[int]bool{}
	for _, s := range stations {
		if seen[s.ID] {
			return nil, fmt.Errorf("lighthouse: duplicate station ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	sys := &System{
		stations: append([]BaseStation(nil), stations...),
		cfg:      cfg,
		azBias:   make([]float64, len(stations)),
		elBias:   make([]float64, len(stations)),
	}
	rng := simrand.New(cfg.Seed).Derive("lighthouse-bias")
	for i := range sys.azBias {
		sys.azBias[i] = rng.Gauss(0, cfg.StationBiasRad)
		sys.elBias[i] = rng.Gauss(0, cfg.StationBiasRad)
	}
	return sys, nil
}

// CeilingPair deploys the standard two-station setup: opposite upper
// corners of the volume, the usual Crazyflie Lighthouse arrangement.
func CeilingPair(volume geom.Cuboid, cfg Config) (*System, error) {
	c := volume.Corners()
	// Corners 4 and 7 are (min,min,max) and (max,max,max): the diagonal
	// ceiling pair.
	return New([]BaseStation{
		{ID: 1, Pos: c[4]},
		{ID: 2, Pos: c[7]},
	}, cfg)
}

// Stations returns the deployed base stations.
func (s *System) Stations() []BaseStation { return s.stations }

// Measure returns the sweep-angle measurements visible from pos.
func (s *System) Measure(pos geom.Vec3, rng *simrand.Source) []Measurement {
	out := make([]Measurement, 0, len(s.stations))
	for i, st := range s.stations {
		d := pos.Sub(st.Pos)
		if d.Norm() > s.cfg.MaxRangeM {
			continue
		}
		if rng.Bool(s.cfg.OcclusionProbability) {
			continue
		}
		az := math.Atan2(d.Y, d.X) + s.azBias[i] + rng.Gauss(0, s.cfg.AngleNoiseRad)
		el := math.Atan2(d.Z, math.Hypot(d.X, d.Y)) + s.elBias[i] + rng.Gauss(0, s.cfg.AngleNoiseRad)
		out = append(out, Measurement{
			StationID:  st.ID,
			Station:    st.Pos,
			AzimuthRad: az, ElevationRad: el,
		})
	}
	return out
}
