// Command promlint reads Prometheus text-format exposition on stdin
// and validates it with remobs.CheckExposition — the same checker the
// package tests run against the registry's own output. CI pipes live
// /metrics scrapes through it:
//
//	curl -s localhost:8099/metrics | go run ./internal/remobs/promlint
//
// Exit status 0 means the scrape parses; 1 prints the first violation.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/remobs"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read:", err)
		os.Exit(1)
	}
	if err := remobs.CheckExposition(data); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	samples := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && line[0] != '#' {
			samples++
		}
	}
	fmt.Printf("promlint: ok (%d samples)\n", samples)
}
