package remobs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultEventCap is the event-ring capacity when the caller does not
// pick one (remgen's -events flag does).
const DefaultEventCap = 256

// Event is one structured entry in the generation-lifecycle ring:
// publishes and rebuilds (with dirty-key and mended-cube counts), WAL
// appends and replays (with seq and fsync latency), follower sync
// outcomes (delta vs full, backoff state). Seq increases forever even
// as the ring drops old entries, so a dump shows how much history was
// lost.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Text string    `json:"text"`
}

// EventLog is a bounded ring of Events. Recording takes a mutex and
// formats the text — events fire per generation, sync or replay, never
// per request, so this is deliberately simple rather than lock-free.
type EventLog struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event
	next int // ring slot the next event lands in
	n    int // live entries (≤ len(ring))
}

// NewEventLog builds a ring holding the last capacity events
// (≤ 0 picks DefaultEventCap).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Record appends one formatted event, evicting the oldest when full.
func (l *EventLog) Record(kind, format string, args ...any) {
	if l == nil {
		return
	}
	text := fmt.Sprintf(format, args...)
	l.mu.Lock()
	l.seq++
	l.ring[l.next] = Event{Seq: l.seq, Time: time.Now(), Kind: kind, Text: text}
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Snapshot returns the retained events oldest-first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Dump writes the retained events oldest-first as one line each
// (`seq time kind text`), the format remgen prints on SIGUSR1 and at
// exit.
func (l *EventLog) Dump(w io.Writer) error {
	for _, e := range l.Snapshot() {
		if _, err := fmt.Fprintf(w, "%6d %s %-10s %s\n",
			e.Seq, e.Time.Format("15:04:05.000"), e.Kind, e.Text); err != nil {
			return err
		}
	}
	return nil
}
