package remobs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every latency histogram:
// buckets 0..HistBuckets-2 hold durations whose nanosecond count has
// bit length i (i.e. d ∈ [2^(i-1), 2^i)), bucket HistBuckets-1 is the
// +Inf overflow. 40 buckets cover 1 ns .. ~275 s, which spans every
// latency in the system from a 190 ns store query to a multi-second
// WAL replay. Fixed log-scale buckets mean Observe is two atomic adds
// and a bits.Len64 — no search, no allocation, no configuration.
const HistBuckets = 40

// Histogram is a fixed-bucket log₂-scale latency histogram. Observe
// is lock-free and allocation-free; rendering snapshots the buckets
// and derives the cumulative counts (and the count itself) from that
// snapshot so one scrape is always self-consistent even while writers
// race. Padded like Counter so adjacent instruments never share a
// cache line.
type Histogram struct {
	_       [64]byte
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
	_       [56]byte
}

// bucketOf maps a nanosecond count to its bucket index.
func bucketOf(ns uint64) int {
	i := bits.Len64(ns)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// Observe records one duration (negative clamps to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNs.Load()) / 1e9
}

// snapshot copies the bucket array and returns it with its total.
// The total (not the count atomic) is what exposition reports as
// _count, so `+Inf bucket == count` holds inside one scrape even with
// observations in flight.
func (h *Histogram) snapshot() (b [HistBuckets]uint64, total uint64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	return b, total
}

// BucketUpperSeconds returns the inclusive upper bound of bucket i in
// seconds: (2^i − 1) ns. Bucket 0 is le="0" (zero-duration
// observations); the last bucket is +Inf and returns +Inf here.
func BucketUpperSeconds(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)-1) / 1e9
}

// Quantile returns an upper-bound estimate of the q-quantile in
// seconds from the bucket boundaries (the event-ring dump and the
// example's summary printer use it; exposition does not).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	b, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range b {
		cum += b[i]
		if cum >= target {
			return BucketUpperSeconds(i)
		}
	}
	return BucketUpperSeconds(HistBuckets - 1)
}
