// Package remobs is the repo's dependency-free observability layer: a
// metrics registry (counters, gauges, fixed-bucket log-scale latency
// histograms), a hand-rolled Prometheus text-format writer, and a
// bounded structured event ring recording the generation lifecycle.
//
// The design constraint is the same one remserve's handlers and
// remstore's query path already live under: instruments on the hot
// path must cost nothing but an atomic add — 0 allocs/op after
// warm-up, pinned by tests. Everything stringy (metric names, label
// rendering, exposition) happens once at registration or on the cold
// scrape path. Counters and histograms carry the same leading/trailing
// cache-line padding as parallel.PaddedUint64 so two instruments
// updated by different goroutines never share a line.
//
// Instrumented packages receive a *Observer (registry + event ring)
// and pre-create their instruments at construction; a nil Observer
// means no instruments exist and hot paths pay one nil check.
package remobs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label inline.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64, cache-line padded so
// counters registered next to each other never false-share.
type Counter struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (stored as bits under one atomic word),
// padded like Counter.
type Gauge struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// kind is the Prometheus metric family type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instrument inside a family. Exactly one of
// the instrument fields is set; fn covers both CounterFunc and
// GaugeFunc (the family kind disambiguates on exposition).
type series struct {
	labels string // pre-rendered `{k="v",…}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one metric name with its help text, type and series set.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families in registration order. Registration
// takes the lock and may allocate; reading instruments never touches
// the registry at all.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family finds or creates the named family, panicking on a kind or
// help mismatch — re-registering the same (name, labels) is legal and
// returns the existing instrument, so construction paths can run twice.
func (r *Registry) family(name, help string, k kind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("remobs: invalid metric name %q", name))
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("remobs: metric %q registered as %s and %s", name, f.kind, k))
	}
	return f
}

// lookup finds or creates the series for the rendered label set.
func (f *family) lookup(labels []Label) (*series, bool) {
	key := renderLabels(labels)
	if s := f.byKey[key]; s != nil {
		return s, false
	}
	s := &series{labels: key}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s, true
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.family(name, help, kindCounter).lookup(labels)
	if fresh {
		s.c = new(Counter)
	} else if s.c == nil {
		panic(fmt.Sprintf("remobs: %q%s already registered as a counter func", name, s.labels))
	}
	return s.c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.family(name, help, kindGauge).lookup(labels)
	if fresh {
		s.g = new(Gauge)
	} else if s.g == nil {
		panic(fmt.Sprintf("remobs: %q%s already registered as a gauge func", name, s.labels))
	}
	return s.g
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the bridge for counters that already exist elsewhere (the
// store's padded query counters, the follower's sync tallies) so hot
// paths are never double-instrumented.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, kindCounter).lookup(labels)
	s.fn = fn
	s.c = nil
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, kindGauge).lookup(labels)
	s.fn = fn
	s.g = nil
}

// Histogram registers (or finds) a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.family(name, help, kindHistogram).lookup(labels)
	if fresh {
		s.h = new(Histogram)
	}
	return s.h
}

// validMetricName enforces the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]* (no colon in labels).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels produces the canonical `{k="v",…}` suffix (sorted by
// label name so the same set always renders identically) with
// backslash, quote and newline escaped per the text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("remobs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		for j := 0; j < len(l.Value); j++ {
			switch c := l.Value[j]; c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Observer bundles the registry and the event ring that instrumented
// packages share. A nil *Observer is the documented opt-out: every
// method is nil-safe, and packages that receive nil simply never
// create their instruments, so the query path pays one pointer test.
type Observer struct {
	Registry *Registry
	Events   *EventLog
}

// New builds an Observer with a fresh registry and an event ring
// holding the last eventCap events (≤ 0 picks DefaultEventCap).
func New(eventCap int) *Observer {
	return &Observer{Registry: NewRegistry(), Events: NewEventLog(eventCap)}
}

// Reg returns the registry, or nil on a nil Observer — callers can
// chain `obs.Reg()` without a guard when they only need registration
// to be skipped.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Event records a formatted event in the ring; no-op on a nil
// Observer or ring. Formatting cost is only paid when a ring exists,
// and events fire per generation / sync / replay — never per request.
func (o *Observer) Event(kind, format string, args ...any) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Record(kind, format, args...)
}
