package remobs

import (
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionRoundTrip renders a registry with every instrument
// kind and runs the output through the package's own checker — the
// same pairing CI uses (live scrape → promlint).
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rem_test_requests_total", "requests served", L("endpoint", "at"), L("wire", "json"))
	c.Add(7)
	r.Counter("rem_test_requests_total", "requests served", L("endpoint", "at"), L("wire", "binary")).Inc()
	g := r.Gauge("rem_test_depth", "queue depth")
	g.Set(3.5)
	r.GaugeFunc("rem_test_ratio", "computed at scrape", func() float64 { return 0.25 })
	r.CounterFunc("rem_test_queries_total", "bridged counter", func() float64 { return 42 })
	h := r.Histogram("rem_test_latency_seconds", "request latency", L("endpoint", "at"))
	for _, d := range []time.Duration{0, time.Nanosecond, 100 * time.Nanosecond, time.Millisecond, time.Second} {
		h.Observe(d)
	}
	out := r.AppendPrometheus(nil)
	if err := CheckExposition(out); err != nil {
		t.Fatalf("own exposition fails checker: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		`rem_test_requests_total{endpoint="at",wire="json"} 7`,
		`rem_test_requests_total{endpoint="at",wire="binary"} 1`,
		"rem_test_depth 3.5",
		"rem_test_ratio 0.25",
		"rem_test_queries_total 42",
		`rem_test_latency_seconds_count{endpoint="at"} 5`,
		`le="+Inf"} 5`,
		"# TYPE rem_test_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRegistrationIdempotent pins that re-registering the same (name,
// labels) returns the same instrument — construction paths may run
// more than once (e.g. SetObserver on a restarted component).
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rem_test_total", "", L("k", "v"))
	b := r.Counter("rem_test_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	// Label order must not matter: the rendered key is sorted.
	h1 := r.Histogram("rem_test_h", "", L("a", "1"), L("b", "2"))
	h2 := r.Histogram("rem_test_h", "", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order produced distinct histogram series")
	}
}

// TestHistogramQuickcheck drives random observations through a
// histogram and checks the structural invariants: bucket counts sum to
// the observation count, the sum matches, every observation landed in
// the bucket its bit length names, and the rendered cumulative
// sequence is non-decreasing with +Inf == count.
func TestHistogramQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		h := new(Histogram)
		n := rng.Intn(2000)
		var wantSum uint64
		wantBuckets := [HistBuckets]uint64{}
		for i := 0; i < n; i++ {
			// Span the full range: bias toward small values but include
			// huge ones that clamp into +Inf.
			ns := uint64(rng.Int63()) >> uint(rng.Intn(63))
			wantSum += ns
			wantBuckets[bucketOf(ns)]++
			h.Observe(time.Duration(ns))
		}
		got, total := h.snapshot()
		if total != uint64(n) || h.Count() != uint64(n) {
			t.Fatalf("trial %d: bucket sum %d, count %d, want %d", trial, total, h.Count(), n)
		}
		if got != wantBuckets {
			t.Fatalf("trial %d: bucket layout mismatch", trial)
		}
		if math.Abs(h.SumSeconds()-float64(wantSum)/1e9) > 1e-9 {
			t.Fatalf("trial %d: sum %v, want %v", trial, h.SumSeconds(), float64(wantSum)/1e9)
		}
	}
}

// TestHistogramBucketBounds pins the bucket map: value v lands in the
// bucket whose inclusive upper bound is the smallest 2^i − 1 ≥ v.
func TestHistogramBucketBounds(t *testing.T) {
	for _, ns := range []uint64{0, 1, 2, 3, 4, 7, 8, 255, 256, 1 << 30, 1 << 62} {
		i := bucketOf(ns)
		if i < HistBuckets-1 {
			upper := uint64(1)<<uint(i) - 1
			if ns > upper {
				t.Errorf("ns=%d landed in bucket %d with upper %d", ns, i, upper)
			}
			if i > 0 {
				lower := uint64(1)<<uint(i-1) - 1
				if ns <= lower {
					t.Errorf("ns=%d landed in bucket %d but fits bucket %d", ns, i, i-1)
				}
			}
		} else if bits.Len64(ns) < HistBuckets {
			t.Errorf("ns=%d clamped to +Inf prematurely", ns)
		}
	}
}

// TestConcurrentScrapeRace hammers counters, gauges and a histogram
// from many goroutines while scraping concurrently — run under -race
// in CI, and every scrape must still pass the checker (histogram
// consistency is per-snapshot, not global).
func TestConcurrentScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rem_race_total", "")
	g := r.Gauge("rem_race_gauge", "")
	h := r.Histogram("rem_race_seconds", "")
	r.GaugeFunc("rem_race_func", "", func() float64 { return float64(c.Value()) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(rng.Float64())
				g.Add(1)
				h.Observe(time.Duration(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var buf []byte
	scrapes := 0
	for time.Now().Before(deadline) {
		buf = r.AppendPrometheus(buf[:0])
		if err := CheckExposition(buf); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d inconsistent under concurrency: %v", scrapes, err)
		}
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
}

// TestInstrumentZeroAlloc pins the hot-path contract at the source:
// counter adds, gauge sets and histogram observes allocate nothing.
func TestInstrumentZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rem_alloc_total", "")
	g := r.Gauge("rem_alloc_gauge", "")
	h := r.Histogram("rem_alloc_seconds", "")
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(123 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("instrument updates allocate %v/op, want 0", allocs)
	}
}

// TestNilObserverSafe pins the opt-out: every nil-receiver method is a
// no-op, including instruments that were never created.
func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	o.Event("publish", "version=%d", 1)
	if o.Reg() != nil {
		t.Fatal("nil observer returned a registry")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	l.Record("x", "y")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || l.Len() != 0 {
		t.Fatal("nil instruments reported non-zero state")
	}
	var r *Registry
	if out := r.AppendPrometheus(nil); out != nil {
		t.Fatal("nil registry rendered output")
	}
}

// TestEventLogRing pins ring semantics: capacity bounds retention,
// sequence numbers keep counting across evictions, snapshot is
// oldest-first.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		l.Record("publish", "gen %d", i)
	}
	evs := l.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	if evs[0].Text != "gen 7" || evs[3].Text != "gen 10" {
		t.Fatalf("ring order wrong: %q … %q", evs[0].Text, evs[3].Text)
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gen 10") {
		t.Fatalf("dump missing newest event:\n%s", sb.String())
	}
}

// TestCheckExpositionRejects feeds the checker known-bad expositions.
func TestCheckExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"no newline":        "rem_x 1",
		"dup series":        "# TYPE rem_x counter\nrem_x 1\nrem_x 2\n",
		"no TYPE":           "rem_x 1\n",
		"bad value":         "# TYPE rem_x counter\nrem_x abc\n",
		"bad label":         "# TYPE rem_x counter\nrem_x{1bad=\"v\"} 1\n",
		"unterminated":      "# TYPE rem_x counter\nrem_x{k=\"v} 1\n",
		"inf != count":      "# TYPE rem_h histogram\nrem_h_bucket{le=\"+Inf\"} 5\nrem_h_sum 1\nrem_h_count 4\n",
		"missing inf":       "# TYPE rem_h histogram\nrem_h_sum 1\nrem_h_count 4\n",
		"decreasing bucket": "# TYPE rem_h histogram\nrem_h_bucket{le=\"1\"} 5\nrem_h_bucket{le=\"+Inf\"} 3\nrem_h_sum 1\nrem_h_count 3\n",
	}
	for name, text := range bad {
		if err := CheckExposition([]byte(text)); err == nil {
			t.Errorf("%s: checker accepted\n%s", name, text)
		}
	}
	good := "# HELP rem_ok fine\n# TYPE rem_ok gauge\nrem_ok{k=\"v\"} 1.5\n"
	if err := CheckExposition([]byte(good)); err != nil {
		t.Errorf("checker rejected valid exposition: %v", err)
	}
}

// TestQuantile sanity-checks the bucket-boundary quantile estimate.
func TestQuantile(t *testing.T) {
	h := new(Histogram)
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Nanosecond) // bucket le=127ns
	}
	q := h.Quantile(0.5)
	if q < 100e-9 || q > 127.5e-9 {
		t.Fatalf("median estimate %v outside [100ns, 127ns]", q)
	}
	if e := new(Histogram).Quantile(0.99); e != 0 {
		t.Fatalf("empty histogram quantile %v, want 0", e)
	}
}
