package remobs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AppendPrometheus renders every registered family in Prometheus text
// format (version 0.0.4) into b, in registration order with series in
// registration order — the output is deterministic for a fixed
// registry and workload, which is what lets CI diff two scrapes.
// Rendering takes the registry lock (registrations are rare) but reads
// instruments with their own atomics; it is the cold path and may
// allocate.
func (r *Registry) AppendPrometheus(b []byte) []byte {
	if r == nil {
		return b
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if f.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, f.name...)
			b = append(b, ' ')
			b = appendEscapedHelp(b, f.help)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind.String()...)
		b = append(b, '\n')
		for _, s := range f.series {
			switch {
			case f.kind == kindHistogram:
				b = appendHistogram(b, f.name, s)
			case s.fn != nil:
				b = appendSample(b, f.name, s.labels, s.fn())
			case f.kind == kindCounter:
				b = appendSample(b, f.name, s.labels, float64(s.c.Value()))
			default:
				b = appendSample(b, f.name, s.labels, s.g.Value())
			}
		}
	}
	return b
}

// appendEscapedHelp escapes backslash and newline per the text format.
func appendEscapedHelp(b []byte, help string) []byte {
	for i := 0; i < len(help); i++ {
		switch c := help[i]; c {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, c)
		}
	}
	return b
}

func appendSample(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	b = append(b, labels...)
	b = append(b, ' ')
	b = appendValue(b, v)
	return append(b, '\n')
}

// appendValue renders a sample value: NaN/±Inf use the text-format
// spellings, everything else strconv 'g' shortest form.
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	default:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
}

// appendHistogram renders one histogram series: cumulative _bucket
// lines with le bounds (2^i − 1 ns, in seconds), the +Inf bucket,
// then _sum and _count. The counts all derive from one bucket
// snapshot, so `+Inf == _count` holds even while writers race.
func appendHistogram(b []byte, name string, s *series) []byte {
	buckets, total := s.h.snapshot()
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += buckets[i]
		// Skip empty leading/inner buckets beyond the first to keep the
		// exposition compact, but always render bucket 0, any bucket with
		// mass and the +Inf bucket so cumulative semantics stay intact.
		if i > 0 && i < HistBuckets-1 && buckets[i] == 0 {
			continue
		}
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLe(b, s.labels, BucketUpperSeconds(i))
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = appendValue(b, s.h.SumSeconds())
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, total, 10)
	return append(b, '\n')
}

// appendLe splices the le label into a pre-rendered label set.
func appendLe(b []byte, labels string, upper float64) []byte {
	b = append(b, '{')
	if labels != "" {
		b = append(b, labels[1:len(labels)-1]...) // strip { }
		b = append(b, ',')
	}
	b = append(b, `le="`...)
	b = appendValue(b, upper)
	return append(b, `"}`...)
}

// CheckExposition validates Prometheus text-format output: line
// grammar, TYPE declarations preceding their samples, no duplicate
// series, parseable values, and histogram self-consistency (+Inf
// bucket present and equal to _count, cumulative buckets
// non-decreasing). It is the shared backstop between the package's own
// tests and the CI smoke's line-format lint (internal/remobs/promlint
// pipes a live scrape through it).
func CheckExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("exposition does not end in a newline")
	}
	types := map[string]string{}      // family name → declared type
	seen := map[string]bool{}         // "name{labels}" → sample emitted
	infBucket := map[string]uint64{}  // histogram series key → +Inf cumulative
	countValue := map[string]uint64{} // histogram series key → _count
	lastCum := map[string]uint64{}    // histogram series key → last cumulative seen
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", ln+1)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", ln+1, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", ln+1, fields[2])
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln+1, err)
		}
		fam := familyOf(name, types)
		if fam == "" {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		key := name + labels
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %q", ln+1, key)
		}
		seen[key] = true
		if types[fam] == "histogram" {
			if err := checkHistogramSample(fam, name, labels, value, infBucket, countValue, lastCum); err != nil {
				return fmt.Errorf("line %d: %v", ln+1, err)
			}
		}
	}
	for key, inf := range infBucket {
		c, ok := countValue[key]
		if !ok {
			return fmt.Errorf("histogram series %q has buckets but no _count", key)
		}
		if c != inf {
			return fmt.Errorf("histogram series %q: +Inf bucket %d != _count %d", key, inf, c)
		}
	}
	for key := range countValue {
		if _, ok := infBucket[key]; !ok {
			return fmt.Errorf("histogram series %q has _count but no +Inf bucket", key)
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, peeling
// histogram suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return ""
}

// checkHistogramSample tracks per-series histogram invariants.
func checkHistogramSample(fam, name, labels string, value float64,
	infBucket, countValue, lastCum map[string]uint64) error {
	key := fam + stripLe(labels)
	switch {
	case name == fam+"_bucket":
		le, ok := leValue(labels)
		if !ok {
			return fmt.Errorf("bucket series %q has no le label", name+labels)
		}
		cum := uint64(value)
		if float64(cum) != value || value < 0 {
			return fmt.Errorf("bucket value %v is not a non-negative integer", value)
		}
		if prev, ok := lastCum[key]; ok && cum < prev {
			return fmt.Errorf("bucket counts decrease (%d after %d) in %q", cum, prev, key)
		}
		lastCum[key] = cum
		if le == "+Inf" {
			infBucket[key] = cum
		}
	case name == fam+"_count":
		countValue[key] = uint64(value)
	}
	return nil
}

// parseSample splits `name{labels} value` (labels optional), checking
// the grammar and that value parses as a float.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i : j+1]
		if err := checkLabelSyntax(labels); err != nil {
			return "", "", 0, err
		}
		rest = rest[j+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid sample name %q", name)
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is legal; the value is the first field.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, perr := parseValue(valStr)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", valStr, perr)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkLabelSyntax validates a `{k="v",…}` block: label-name grammar,
// quoted values, commas between pairs.
func checkLabelSyntax(labels string) error {
	inner := labels[1 : len(labels)-1]
	for inner != "" {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 || !validLabelName(inner[:eq]) {
			return fmt.Errorf("bad label name in %q", labels)
		}
		rest := inner[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		inner = rest[end+1:]
		if inner != "" {
			if inner[0] != ',' {
				return fmt.Errorf("missing comma in %q", labels)
			}
			inner = inner[1:]
		}
	}
	return nil
}

// stripLe removes the le="…" pair from a bucket label block so bucket,
// _sum and _count lines of one series share a key.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := labels[1 : len(labels)-1]
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// leValue extracts the le label value from a bucket label block.
func leValue(labels string) (string, bool) {
	inner := labels[1 : len(labels)-1]
	for _, p := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			return strings.TrimSuffix(v, `"`), true
		}
	}
	return "", false
}
