package uwb

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
)

func calibrated(t *testing.T, n int, mode Mode) *Constellation {
	t.Helper()
	vol := geom.PaperScanVolume()
	corners := vol.Corners()
	anchors := make([]Anchor, 0, n)
	for i := 0; i < n && i < len(corners); i++ {
		anchors = append(anchors, Anchor{ID: i, Pos: corners[i]})
	}
	c, err := NewConstellation(anchors, DefaultConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	c.SelfCalibrate()
	return c
}

func TestModeString(t *testing.T) {
	if TWR.String() != "TWR" || TDoA.String() != "TDoA" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestNewConstellationValidation(t *testing.T) {
	cfg := DefaultConfig(TWR)
	few := []Anchor{{ID: 0}, {ID: 1}, {ID: 2}}
	if _, err := NewConstellation(few, cfg); err == nil {
		t.Error("3 anchors accepted for 3-D localization")
	}
	dup := []Anchor{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 2}}
	if _, err := NewConstellation(dup, cfg); err == nil {
		t.Error("duplicate anchor IDs accepted")
	}
	bad := cfg
	bad.Mode = 0
	ok4 := []Anchor{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	if _, err := NewConstellation(ok4, bad); err == nil {
		t.Error("invalid mode accepted")
	}
	bad = cfg
	bad.NLoSProbability = 1.5
	if _, err := NewConstellation(ok4, bad); err == nil {
		t.Error("NLoS probability > 1 accepted")
	}
	bad = cfg
	bad.MaxRangeM = 0
	if _, err := NewConstellation(ok4, bad); err == nil {
		t.Error("zero range accepted")
	}
	bad = cfg
	bad.RangeNoiseSigmaM = -1
	if _, err := NewConstellation(ok4, bad); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestCornerConstellationMatchesPaper(t *testing.T) {
	c, err := CornerConstellation(geom.PaperScanVolume(), DefaultConfig(TDoA))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Anchors()) != 8 {
		t.Fatalf("anchors = %d, want 8 (one per cuboid corner)", len(c.Anchors()))
	}
	if c.Mode() != TDoA {
		t.Errorf("mode = %v", c.Mode())
	}
}

func TestRangingRequiresCalibration(t *testing.T) {
	c, err := CornerConstellation(geom.PaperScanVolume(), DefaultConfig(TWR))
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(1)
	if _, err := c.TWRRanges(geom.V(1, 1, 1), rng); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("pre-calibration TWR error = %v", err)
	}
	if _, err := c.TDoAMeasurements(geom.V(1, 1, 1), rng); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("pre-calibration TDoA error = %v", err)
	}
	if c.Calibrated() {
		t.Error("Calibrated before SelfCalibrate")
	}
	c.SelfCalibrate()
	if !c.Calibrated() {
		t.Error("Calibrated false after SelfCalibrate")
	}
	if _, err := c.TWRRanges(geom.V(1, 1, 1), rng); err != nil {
		t.Errorf("post-calibration TWR error = %v", err)
	}
}

func TestTWRRangesNearTruth(t *testing.T) {
	c := calibrated(t, 8, TWR)
	rng := simrand.New(2)
	pos := geom.V(1.8, 1.6, 1.0)
	const trials = 200
	var sumAbsErr float64
	var count int
	for i := 0; i < trials; i++ {
		ranges, err := c.TWRRanges(pos, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranges) != 8 {
			t.Fatalf("ranges = %d, want 8 (all corners within 10 m)", len(ranges))
		}
		for _, r := range ranges {
			sumAbsErr += math.Abs(r.RangeM - pos.Dist(r.Anchor))
			count++
		}
	}
	mean := sumAbsErr / float64(count)
	if mean > 0.35 {
		t.Errorf("mean |range error| = %v m, too large", mean)
	}
	if mean < 0.01 {
		t.Errorf("mean |range error| = %v m, suspiciously perfect", mean)
	}
}

func TestTWRRangeLimit(t *testing.T) {
	c := calibrated(t, 8, TWR)
	rng := simrand.New(3)
	far := geom.V(100, 100, 100)
	ranges, err := c.TWRRanges(far, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 0 {
		t.Errorf("anchors in reach at 170 m: %d (max range is ~10 m)", len(ranges))
	}
}

func TestTWRRangesNonNegative(t *testing.T) {
	cfg := DefaultConfig(TWR)
	cfg.RangeNoiseSigmaM = 5 // extreme noise to push ranges negative
	c, err := CornerConstellation(geom.PaperScanVolume(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SelfCalibrate()
	rng := simrand.New(4)
	for i := 0; i < 50; i++ {
		ranges, _ := c.TWRRanges(geom.V(0.1, 0.1, 0.1), rng)
		for _, r := range ranges {
			if r.RangeM < 0 {
				t.Fatalf("negative range %v", r.RangeM)
			}
		}
	}
}

func TestTDoAMeasurements(t *testing.T) {
	c := calibrated(t, 8, TDoA)
	rng := simrand.New(5)
	pos := geom.V(1.8, 1.6, 1.0)
	diffs, err := c.TDoAMeasurements(pos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 7 {
		t.Fatalf("diffs = %d, want 7 (8 anchors minus reference)", len(diffs))
	}
	for _, d := range diffs {
		truth := pos.Dist(d.Anchor) - pos.Dist(d.RefAnchor)
		if math.Abs(d.DiffM-truth) > 1.5 {
			t.Errorf("TDoA diff error %v m too large", math.Abs(d.DiffM-truth))
		}
		if d.RefID == d.AnchorID {
			t.Error("anchor equals reference")
		}
	}
}

func TestTDoANeedsTwoInReach(t *testing.T) {
	c := calibrated(t, 8, TDoA)
	rng := simrand.New(6)
	diffs, err := c.TDoAMeasurements(geom.V(1000, 0, 0), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("TDoA with no anchors in reach = %d diffs", len(diffs))
	}
}

func TestBiasesAreStaticPerAnchor(t *testing.T) {
	// The same constellation must apply the same bias on every call — the
	// bias models static calibration error, not noise.
	cfg := DefaultConfig(TWR)
	cfg.RangeNoiseSigmaM = 0
	cfg.NLoSProbability = 0
	c, err := CornerConstellation(geom.PaperScanVolume(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SelfCalibrate()
	rng := simrand.New(7)
	pos := geom.V(1, 1, 1)
	first, _ := c.TWRRanges(pos, rng)
	second, _ := c.TWRRanges(pos, rng)
	for i := range first {
		if first[i].RangeM != second[i].RangeM {
			t.Fatal("noiseless ranges differ; bias is not static")
		}
		if first[i].RangeM == pos.Dist(first[i].Anchor) {
			t.Fatal("range exactly equals truth; bias missing")
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	for _, m := range []Mode{TWR, TDoA} {
		if err := DefaultConfig(m).Validate(); err != nil {
			t.Errorf("default config (%v) invalid: %v", m, err)
		}
	}
}
