// Package uwb simulates the Crazyflie Loco Positioning System (LPS): a
// DWM1000-based ultra-wideband constellation of anchors that lets the UAV
// estimate its own position via Two-Way Ranging (TWR) or Time Difference of
// Arrival (TDoA) measurements (§II-B). The noise model includes white
// ranging noise, static per-anchor biases (miscalibrated anchor positions,
// antenna delays) and occasional non-line-of-sight excess delay — the error
// sources that give the real system its ≈9 cm hovering accuracy with six or
// more anchors.
package uwb

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/simrand"
)

// Mode selects the localization procedure.
type Mode int

const (
	// TWR is two-way ranging: one distance measurement per anchor per
	// cycle, requiring pairwise transactions (one tag at a time).
	TWR Mode = iota + 1
	// TDoA is time-difference-of-arrival: passive reception of anchor
	// broadcasts, supporting simultaneous localization of multiple UAVs
	// with slightly better accuracy (§II-B).
	TDoA
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case TWR:
		return "TWR"
	case TDoA:
		return "TDoA"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Anchor is one fixed localization anchor.
type Anchor struct {
	// ID is the anchor's index in the constellation.
	ID int
	// Pos is the surveyed anchor position.
	Pos geom.Vec3
}

// MinAnchors3D is the minimum constellation size for 3-D localization; the
// vendor advises at least six for robustness (§II-B).
const (
	MinAnchors3D       = 4
	RecommendedAnchors = 6
)

// Config tunes the constellation's error model.
type Config struct {
	// Mode selects TWR or TDoA.
	Mode Mode
	// RangeNoiseSigmaM is the white noise of a single TWR range.
	RangeNoiseSigmaM float64
	// TDoANoiseSigmaM is the white noise of a single TDoA difference.
	TDoANoiseSigmaM float64
	// AnchorBiasSigmaM spreads the static per-anchor range bias; these
	// biases do not average out over time and set the accuracy floor.
	AnchorBiasSigmaM float64
	// NLoSProbability is the chance a given measurement is non-line-of-
	// sight, adding a positive excess delay.
	NLoSProbability float64
	// NLoSExcessMeanM is the mean excess range of an NLoS measurement.
	NLoSExcessMeanM float64
	// MaxRangeM drops measurements beyond the radio's reach (≈10 m, §II-B).
	MaxRangeM float64
	// Seed derives the per-anchor bias draws.
	Seed uint64
}

// DefaultConfig returns an error model calibrated to the LPS accuracy the
// paper cites: ≈9 cm hovering accuracy with 6 anchors.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Mode:             mode,
		RangeNoiseSigmaM: 0.12,
		TDoANoiseSigmaM:  0.10,
		AnchorBiasSigmaM: 0.055,
		NLoSProbability:  0.05,
		NLoSExcessMeanM:  0.30,
		MaxRangeM:        10,
		Seed:             1,
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Mode != TWR && c.Mode != TDoA {
		return fmt.Errorf("uwb: invalid mode %d", c.Mode)
	}
	if c.RangeNoiseSigmaM < 0 || c.TDoANoiseSigmaM < 0 || c.AnchorBiasSigmaM < 0 {
		return fmt.Errorf("uwb: noise parameters must be non-negative")
	}
	if c.NLoSProbability < 0 || c.NLoSProbability > 1 {
		return fmt.Errorf("uwb: NLoS probability %g outside [0, 1]", c.NLoSProbability)
	}
	if c.MaxRangeM <= 0 {
		return fmt.Errorf("uwb: max range must be positive")
	}
	return nil
}

// RangeMeasurement is one TWR distance.
type RangeMeasurement struct {
	AnchorID int
	Anchor   geom.Vec3
	// RangeM is the measured distance in metres.
	RangeM float64
}

// TDoAMeasurement is one TDoA range difference relative to a reference
// anchor.
type TDoAMeasurement struct {
	AnchorID, RefID   int
	Anchor, RefAnchor geom.Vec3
	// DiffM is the measured |tag−anchor| − |tag−ref| in metres.
	DiffM float64
}

// Constellation is a deployed, optionally calibrated anchor set.
type Constellation struct {
	anchors    []Anchor
	cfg        Config
	biases     []float64
	calibrated bool
}

// NewConstellation deploys anchors with the given error model. At least
// MinAnchors3D anchors are required.
func NewConstellation(anchors []Anchor, cfg Config) (*Constellation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(anchors) < MinAnchors3D {
		return nil, fmt.Errorf("uwb: 3-D localization needs ≥%d anchors, got %d", MinAnchors3D, len(anchors))
	}
	seen := map[int]bool{}
	for _, a := range anchors {
		if seen[a.ID] {
			return nil, fmt.Errorf("uwb: duplicate anchor ID %d", a.ID)
		}
		seen[a.ID] = true
	}
	c := &Constellation{
		anchors: append([]Anchor(nil), anchors...),
		cfg:     cfg,
		biases:  make([]float64, len(anchors)),
	}
	biasRng := simrand.New(cfg.Seed).Derive("anchor-bias")
	for i := range c.biases {
		c.biases[i] = biasRng.Gauss(0, cfg.AnchorBiasSigmaM)
	}
	return c, nil
}

// CornerConstellation places one anchor at each corner of the volume — the
// paper's deployment (8 anchors at the corners of the scan cuboid).
func CornerConstellation(volume geom.Cuboid, cfg Config) (*Constellation, error) {
	corners := volume.Corners()
	anchors := make([]Anchor, len(corners))
	for i, p := range corners {
		anchors[i] = Anchor{ID: i, Pos: p}
	}
	return NewConstellation(anchors, cfg)
}

// Anchors returns the deployed anchors.
func (c *Constellation) Anchors() []Anchor { return c.anchors }

// Mode returns the configured localization procedure.
func (c *Constellation) Mode() Mode { return c.cfg.Mode }

// Calibrated reports whether self-calibration has completed.
func (c *Constellation) Calibrated() bool { return c.calibrated }

// SelfCalibrate runs the anchors' automated calibration, which synchronises
// their transmission schedules (§II-B). Measurements before calibration are
// refused — mirroring the real deployment procedure: place anchors, survey
// their coordinates, initiate self-calibration, then fly.
func (c *Constellation) SelfCalibrate() {
	c.calibrated = true
}

// ErrNotCalibrated is returned when ranging before self-calibration.
var ErrNotCalibrated = fmt.Errorf("uwb: constellation not self-calibrated")

// TWRRanges returns one noisy range per in-reach anchor for a tag at pos.
func (c *Constellation) TWRRanges(pos geom.Vec3, rng *simrand.Source) ([]RangeMeasurement, error) {
	if !c.calibrated {
		return nil, ErrNotCalibrated
	}
	out := make([]RangeMeasurement, 0, len(c.anchors))
	for i, a := range c.anchors {
		d := pos.Dist(a.Pos)
		if d > c.cfg.MaxRangeM {
			continue
		}
		m := d + c.biases[i] + rng.Gauss(0, c.cfg.RangeNoiseSigmaM)
		if rng.Bool(c.cfg.NLoSProbability) {
			m += rng.Exp(1 / c.cfg.NLoSExcessMeanM)
		}
		if m < 0 {
			m = 0
		}
		out = append(out, RangeMeasurement{AnchorID: a.ID, Anchor: a.Pos, RangeM: m})
	}
	return out, nil
}

// TDoAMeasurements returns noisy range differences against the first
// in-reach anchor for a tag at pos.
func (c *Constellation) TDoAMeasurements(pos geom.Vec3, rng *simrand.Source) ([]TDoAMeasurement, error) {
	if !c.calibrated {
		return nil, ErrNotCalibrated
	}
	inReach := make([]int, 0, len(c.anchors))
	for i, a := range c.anchors {
		if pos.Dist(a.Pos) <= c.cfg.MaxRangeM {
			inReach = append(inReach, i)
		}
	}
	if len(inReach) < 2 {
		return nil, nil
	}
	refIdx := inReach[0]
	ref := c.anchors[refIdx]
	refDist := pos.Dist(ref.Pos) + c.biases[refIdx]
	out := make([]TDoAMeasurement, 0, len(inReach)-1)
	for _, i := range inReach[1:] {
		a := c.anchors[i]
		diff := (pos.Dist(a.Pos) + c.biases[i]) - refDist + rng.Gauss(0, c.cfg.TDoANoiseSigmaM)
		if rng.Bool(c.cfg.NLoSProbability) {
			diff += rng.Exp(1 / c.cfg.NLoSExcessMeanM)
		}
		out = append(out, TDoAMeasurement{
			AnchorID: a.ID, RefID: ref.ID,
			Anchor: a.Pos, RefAnchor: ref.Pos,
			DiffM: diff,
		})
	}
	return out, nil
}
