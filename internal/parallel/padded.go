package parallel

import "sync/atomic"

// PaddedUint64 is an atomic counter padded to live alone on its cache
// line(s): 64 bytes of padding on either side keep a hot counter from
// sharing a line with its neighbours, so independent counters bumped from
// different CPUs never invalidate each other (false sharing). The serving
// layers use one per shard/store for their query counters; the padding is
// the whole point — use atomic.Uint64 directly when the counter is not
// hammered concurrently.
//
// The leading pad also distances the counter from whatever field precedes
// it inside an enclosing struct, so embedding a PaddedUint64 after
// read-mostly fields keeps those fields' lines clean too.
type PaddedUint64 struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// Add atomically adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Load atomically loads the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically stores v.
func (p *PaddedUint64) Store(v uint64) { p.v.Store(v) }
