// Package parallel is the concurrency substrate of the pipeline: a bounded
// worker pool over index ranges with deterministic result ordering and
// first-error cancellation. Every hot loop in the toolchain — REM
// rasterisation, grid search, estimator comparison, experiment sweeps —
// distributes its embarrassingly parallel units of work through this
// package, so "workers=1 and workers=N produce byte-identical results" is a
// single contract enforced here rather than re-proved per call site.
//
// The determinism contract: Map and MapReduce place the result of item i at
// position i regardless of execution order, and MapReduce folds in index
// order, so any reduction that is deterministic sequentially stays
// deterministic under concurrency. Work items must not communicate through
// shared mutable state; randomness must come from per-item derived
// simrand streams, never from a shared stream consumed inside workers.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values ≤ 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (≤ 0 means GOMAXPROCS). If any call returns an error, no new items are
// started and the error with the smallest index among those observed is
// returned. A panic in fn is re-raised on the calling goroutine.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = math.MaxInt
		panicVal any
		panicked bool
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if !panicked {
								panicked, panicVal = true, r
							}
							mu.Unlock()
							stop.Store(true)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return firstErr
}

// ForEachChunk partitions [0, n) into contiguous chunks and runs
// fn(lo, hi) for each on the bounded pool. Chunks are sized for load
// balance (a few per worker); callers that amortise per-call overhead over
// a chunk — batched prediction, buffer reuse — get that amortisation
// without giving up the pool's cancellation and ordering guarantees.
func ForEachChunk(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	size := chunkSize(n, workers)
	chunks := (n + size - 1) / size
	return ForEach(chunks, workers, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// chunkSize targets four chunks per worker so stragglers rebalance, with a
// floor of one item.
func chunkSize(n, workers int) int {
	size := n / (workers * 4)
	if size < 1 {
		size = 1
	}
	return size
}

// Map evaluates fn(i) for every i in [0, n) concurrently and returns the
// results in index order: out[i] is fn(i)'s value no matter which worker
// computed it or when. On error the first (lowest-index observed) error is
// returned with a nil slice.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapReduce maps every index concurrently, then folds the results in index
// order: reduce(...reduce(reduce(init, out[0]), out[1])..., out[n-1]).
// Because the fold is sequential over an index-ordered slice, the reduction
// is byte-identical to a fully sequential run even for non-associative
// operations such as floating-point accumulation.
func MapReduce[T, R any](n, workers int, fn func(i int) (T, error), init R, reduce func(R, T) R) (R, error) {
	out, err := Map(n, workers, fn)
	if err != nil {
		var zero R
		return zero, err
	}
	acc := init
	for _, v := range out {
		acc = reduce(acc, v)
	}
	return acc, nil
}
