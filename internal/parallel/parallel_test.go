package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive requests must resolve to at least one worker")
	}
	if Workers(3) != 3 {
		t.Error("positive requests must pass through")
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Error("n=0 must be a no-op")
	}
	if err := ForEach(-3, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Error("n<0 must be a no-op")
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := ForEach(10_000, workers, func(i int) error {
			ran.Add(1)
			if i == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error = %v, want boom", workers, err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Errorf("workers=%d: error did not cancel remaining work", workers)
		}
	}
}

func TestForEachReturnsLowestObservedError(t *testing.T) {
	// Every item fails; the reported error must be the lowest-indexed one
	// among those that actually ran, and with workers=1 that is index 0.
	err := ForEach(100, 1, func(i int) error { return fmt.Errorf("item %d", i) })
	if err == nil || err.Error() != "item 0" {
		t.Errorf("sequential first error = %v, want item 0", err)
	}
	// Concurrently, the winner must still be a real item error.
	err = ForEach(100, 8, func(i int) error { return fmt.Errorf("item %d", i) })
	if err == nil {
		t.Error("concurrent run swallowed all errors")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("worker panic not re-raised on caller")
		}
	}()
	_ = ForEach(100, 4, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
}

func TestForEachChunkCoversRangeOnce(t *testing.T) {
	for _, n := range []int{1, 7, 100, 1023} {
		for _, workers := range []int{1, 3, 8} {
			var hits = make([]atomic.Int32, n)
			err := ForEachChunk(n, workers, func(lo, hi int) error {
				if lo >= hi || lo < 0 || hi > n {
					return fmt.Errorf("bad chunk [%d, %d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, hits[i].Load())
				}
			}
		}
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(n, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrorYieldsNil(t *testing.T) {
	out, err := Map(10, 4, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map on error = (%v, %v), want (nil, error)", out, err)
	}
}

func TestMapReduceFoldsInIndexOrder(t *testing.T) {
	// Floating-point accumulation is order-sensitive; the concurrent fold
	// must be bit-identical to the sequential one.
	const n = 2000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	seq := 0.0
	for _, v := range vals {
		seq += v
	}
	for _, workers := range []int{1, 8} {
		got, err := MapReduce(n, workers,
			func(i int) (float64, error) { return vals[i], nil },
			0.0, func(acc, v float64) float64 { return acc + v })
		if err != nil {
			t.Fatal(err)
		}
		if got != seq {
			t.Errorf("workers=%d: fold = %v, want bit-identical %v", workers, got, seq)
		}
	}
}

func TestMapReduceError(t *testing.T) {
	_, err := MapReduce(5, 2,
		func(i int) (int, error) { return 0, errors.New("bad") },
		0, func(a, b int) int { return a + b })
	if err == nil {
		t.Error("MapReduce swallowed error")
	}
}
