package mat

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

func randFlat(rng *simrand.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Range(-2, 2)
	}
	return out
}

// naiveMul is the obvious triple loop used as the reference for every GEMM
// variant.
func naiveMul(a, b []float64, m, k, n int) []float64 {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for kk := 0; kk < k; kk++ {
				sum += a[i*k+kk] * b[kk*n+j]
			}
			out[i*n+j] = sum
		}
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestMatMulMatchesNaive exercises the blocked kernel across shapes that
// straddle the tile edge, including sparse (zero-skipping) inputs.
func TestMatMulMatchesNaive(t *testing.T) {
	rng := simrand.New(11)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 4}, {16, 16, 16}, {63, 64, 65}, {70, 129, 40}, {2, 200, 3}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randFlat(rng, m*k), randFlat(rng, k*n)
		// Make a sparse to cover the zero-skip branch.
		for i := range a {
			if rng.Bool(0.3) {
				a[i] = 0
			}
		}
		got := make([]float64, m*n)
		MatMul(got, a, b, m, k, n)
		if d := maxAbsDiff(got, naiveMul(a, b, m, k, n)); d > 1e-12 {
			t.Errorf("MatMul %dx%dx%d deviates from naive by %g", m, k, n, d)
		}
	}
}

func TestMatMulTransposeVariants(t *testing.T) {
	rng := simrand.New(13)
	const m, k, n = 17, 70, 9
	a := randFlat(rng, m*k)
	bt := randFlat(rng, n*k) // b stored transposed: n×k
	b := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for kk := 0; kk < k; kk++ {
			b[kk*n+j] = bt[j*k+kk]
		}
	}
	want := naiveMul(a, b, m, k, n)

	got := make([]float64, m*n)
	MatMulBT(got, a, bt, m, k, n)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("MatMulBT deviates by %g", d)
	}

	bias := randFlat(rng, n)
	MatMulBTBias(got, a, bt, bias, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(got[i*n+j] - (want[i*n+j] + bias[j])); d > 1e-12 {
				t.Fatalf("MatMulBTBias (%d,%d) off by %g", i, j, d)
			}
		}
	}

	// Aᵀ·B: reuse naive on the explicitly transposed a.
	at := make([]float64, k*m)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			at[kk*m+i] = a[i*k+kk]
		}
	}
	b2 := randFlat(rng, m*n)
	wantAT := naiveMul(at, b2, k, m, n)
	gotAT := make([]float64, k*n)
	MatMulAT(gotAT, a, b2, m, k, n)
	if d := maxAbsDiff(gotAT, wantAT); d > 1e-12 {
		t.Errorf("MatMulAT deviates by %g", d)
	}
}

// TestMatMulBTBiasMatchesScalarOrder pins the bit-exactness contract: the
// kernel's accumulation must equal the scalar per-neuron loop `sum := bias;
// sum += a[k]*b[k]` exactly, not just approximately — including on
// one-hot-style sparse rows and around the 2×4 micro-kernel's block edges.
func TestMatMulBTBiasMatchesScalarOrder(t *testing.T) {
	rng := simrand.New(17)
	for _, shape := range [][2]int{{7, 5}, {8, 4}, {1, 1}, {2, 9}, {64, 16}} {
		m, n := shape[0], shape[1]
		const k = 23
		a, bt, bias := randFlat(rng, m*k), randFlat(rng, n*k), randFlat(rng, n)
		// Sparse rows mirror the one-hot design matrices the NN sees.
		for i := range a {
			if rng.Bool(0.7) {
				a[i] = 0
			}
		}
		got := make([]float64, m*n)
		MatMulBTBias(got, a, bt, bias, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				sum := bias[j]
				for kk := 0; kk < k; kk++ {
					sum += a[i*k+kk] * bt[j*k+kk]
				}
				if got[i*n+j] != sum {
					t.Fatalf("%dx%d (%d,%d): kernel %x ≠ scalar order %x", m, n, i, j, got[i*n+j], sum)
				}
			}
		}
	}
}

func TestGemvAndVectorOps(t *testing.T) {
	rng := simrand.New(19)
	const m, n = 9, 31
	a, x := randFlat(rng, m*n), randFlat(rng, n)
	dst := make([]float64, m)
	Gemv(dst, a, x, m, n)
	for i := 0; i < m; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += a[i*n+j] * x[j]
		}
		if dst[i] != sum {
			t.Errorf("Gemv row %d = %v, want %v", i, dst[i], sum)
		}
	}

	y := randFlat(rng, n)
	yc := append([]float64(nil), y...)
	Axpy(0.5, x, y)
	for i := range y {
		if y[i] != yc[i]+0.5*x[i] {
			t.Fatalf("Axpy element %d wrong", i)
		}
	}

	v := append([]float64(nil), yc...)
	VecAdd(v, x)
	VecSub(v, x)
	if d := maxAbsDiff(v, yc); d != 0 {
		t.Errorf("VecAdd/VecSub round trip off by %g", d)
	}
	VecMul(v, x)
	for i := range v {
		if v[i] != yc[i]*x[i] {
			t.Fatalf("VecMul element %d wrong", i)
		}
	}
	VecScale(2, v)
	for i := range v {
		if v[i] != yc[i]*x[i]*2 {
			t.Fatalf("VecScale element %d wrong", i)
		}
	}
}

func TestWorkspace(t *testing.T) {
	ws := NewWorkspace(4)
	a := ws.Take(3)
	if len(a) != 3 {
		t.Fatalf("Take(3) length %d", len(a))
	}
	for i := range a {
		a[i] = 7
	}
	b := ws.Take(8) // forces growth; a must stay usable
	if len(b) != 8 {
		t.Fatalf("Take(8) length %d", len(b))
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("Take returned non-zeroed memory")
		}
	}
	for _, v := range a {
		if v != 7 {
			t.Fatal("growth corrupted an earlier slice")
		}
	}
	ws.Reset()
	c := ws.Take(8)
	for _, v := range c {
		if v != 0 {
			t.Fatal("Take after Reset returned dirty memory")
		}
	}
	// Steady state: same demand, no allocation.
	if allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		_ = ws.Take(5)
		_ = ws.Take(3)
	}); allocs > 0 {
		t.Errorf("warm Workspace allocates %v per cycle", allocs)
	}
}

// spdMatrix builds a random symmetric positive-definite system AᵀA + n·I.
func spdMatrix(rng *simrand.Source, n int) *Matrix {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Range(-1, 1))
		}
	}
	spd := a.T().Mul(a)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

// TestCholeskySolveMatchesLU: the Cholesky solver must agree with the LU
// path on SPD systems and reject indefinite ones.
func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := simrand.New(23)
	for _, n := range []int{1, 4, 25, 80} {
		spd := spdMatrix(rng, n)
		b := randFlat(rng, n)
		want, err := Solve(spd, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CholeskySolve(spd, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d: Cholesky vs LU solution differs by %g", n, d)
		}
		// Reusable factor + in-place solve.
		f, err := CholeskyFactor(spd)
		if err != nil {
			t.Fatal(err)
		}
		inplace := append([]float64(nil), b...)
		if err := f.SolveInto(inplace, inplace); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(inplace, got); d != 0 {
			t.Errorf("n=%d: SolveInto aliased differs by %g", n, d)
		}
		if f.Size() != n {
			t.Errorf("Size = %d, want %d", f.Size(), n)
		}
	}
	if _, err := CholeskySolve(Diag(1, -1), []float64{1, 1}); err == nil {
		t.Error("indefinite matrix accepted")
	}
	f, _ := CholeskyFactor(Diag(2, 2))
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
	if err := f.SolveInto(make([]float64, 1), []float64{1, 2}); err == nil {
		t.Error("short dst accepted")
	}
}
