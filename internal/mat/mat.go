// Package mat implements the dense linear-algebra kernel used by the EKF
// state estimator, the kriging interpolator and the neural network. The
// Matrix type keeps the convenient row-major API; underneath it sits an
// allocation-free compute core (kernel.go) of flat blocked/tiled GEMM
// variants, Gemv, Axpy, in-place element-wise ops, a Workspace scratch
// arena and Cholesky solves, which the hot paths — batched NN training and
// inference, kriging — call directly.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given shape. It panics on non-positive
// dimensions, which indicate a programming error.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: FromRows requires non-empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mat: ragged input, row %d has %d columns, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with the given diagonal entries.
func Diag(d ...float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Scale multiplies every element by s, returning a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	c := m.Clone()
	for i := range c.data {
		c.data[i] *= s
	}
	return c
}

// Plus returns m + b. It panics on shape mismatch.
func (m *Matrix) Plus(b *Matrix) *Matrix {
	m.sameShape(b)
	c := m.Clone()
	for i := range c.data {
		c.data[i] += b.data[i]
	}
	return c
}

// Minus returns m - b. It panics on shape mismatch.
func (m *Matrix) Minus(b *Matrix) *Matrix {
	m.sameShape(b)
	c := m.Clone()
	for i := range c.data {
		c.data[i] -= b.data[i]
	}
	return c
}

func (m *Matrix) sameShape(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m·b. It panics if the inner dimensions
// disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: cannot multiply %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	c := New(m.rows, b.cols)
	MatMul(c.data, m.data, b.data, m.rows, m.cols, b.cols)
	return c
}

// MulVec returns the matrix-vector product m·x as a new slice.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	Gemv(out, m.data, x, m.rows, m.cols)
	return out
}

// Symmetrize overwrites m with (m + mᵀ)/2, useful for keeping covariance
// matrices numerically symmetric. It panics if m is not square.
func (m *Matrix) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
}

// ErrSingular is returned when a solve or inverse encounters a singular (or
// numerically singular) matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU is an LU factorisation with partial pivoting.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// Factor computes the LU factorisation of a square matrix.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: LU requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs < 1e-14 {
			return nil, fmt.Errorf("%w: pivot %d ≈ 0", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				tmp := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, tmp)
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for x given the factorisation of A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	det := f.sign
	for i := 0; i < f.lu.rows; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Solve solves A·x = b directly.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix A.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("%w: not positive definite at %d (value %g)", ErrSingular, i, sum)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
