package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func matAlmostEq(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > tol {
				t.Fatalf("element (%d,%d) = %v, want %v\ngot:\n%v\nwant:\n%v", i, j, got.At(i, j), want.At(i, j), got, want)
			}
		}
	}
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Errorf("after Add At = %v", m.At(1, 2))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestIndexPanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if i3.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v", i, j, i3.At(i, j))
			}
		}
	}
	d := Diag(2, 5)
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Error("Diag wrong")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	matAlmostEq(t, a.Mul(b), want, 1e-12)
}

func TestMulShapePanic(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul did not panic")
		}
	}()
	a.Mul(b)
}

func TestMulIdentity(t *testing.T) {
	rng := simrand.New(1)
	a := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.Gauss(0, 1))
		}
	}
	matAlmostEq(t, a.Mul(Identity(4)), a, 1e-12)
	matAlmostEq(t, Identity(4).Mul(a), a, 1e-12)
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Error("T values wrong")
	}
	matAlmostEq(t, at.T(), a, 0)
}

func TestPlusMinusScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum, _ := FromRows([][]float64{{5, 5}, {5, 5}})
	matAlmostEq(t, a.Plus(b), sum, 0)
	matAlmostEq(t, a.Plus(b).Minus(b), a, 0)
	matAlmostEq(t, a.Scale(2), a.Plus(a), 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestRowIsCopy(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 100
	if a.At(0, 0) != 1 {
		t.Error("Row shares storage")
	}
}

func TestSolve(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 1, 0},
		{1, 3, -1},
		{0, -1, 2},
	})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the top-left corner forces a row swap.
	a, _ := FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular solve error = %v", err)
	}
}

func TestSolveRandomSystems(t *testing.T) {
	rng := simrand.New(44)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Gauss(0, 1))
			}
			a.Add(i, i, float64(n)) // diagonally dominant ⇒ well conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Gauss(0, 3)
		}
		x, err := Solve(a, a.MulVec(want))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	matAlmostEq(t, a.Mul(inv), Identity(2), 1e-12)
	matAlmostEq(t, inv.Mul(a), Identity(2), 1e-12)
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 0},
		{0, 3},
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Errorf("Det = %v, want 6", f.Det())
	}
	// Row swap flips the sign.
	b, _ := FromRows([][]float64{
		{0, 2},
		{3, 0},
	})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+6) > 1e-12 {
		t.Errorf("Det = %v, want -6", fb.Det())
	}
}

func TestCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 2, 0},
		{2, 5, 2},
		{0, 2, 5},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	matAlmostEq(t, l.Mul(l.T()), a, 1e-12)
	// Strict upper triangle must be zero.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if l.At(i, j) != 0 {
				t.Errorf("L(%d,%d) = %v, want 0", i, j, l.At(i, j))
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 1},
	})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("non-PD Cholesky error = %v", err)
	}
}

func TestSymmetrize(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{4, 3},
	})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize: off-diagonals %v, %v", a.At(0, 1), a.At(1, 0))
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := simrand.New(5)
	f := func(seed uint8) bool {
		r := rng.DeriveN("assoc", int(seed))
		a, b, c := randomMat(r, 3, 4), randomMat(r, 4, 2), randomMat(r, 2, 5)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				if math.Abs(left.At(i, j)-right.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomMat(rng *simrand.Source, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Gauss(0, 2))
		}
	}
	return m
}

func TestStringRendering(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	if m.String() == "" {
		t.Error("String returned empty")
	}
}
