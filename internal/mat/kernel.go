package mat

import "fmt"

// This file is the allocation-free compute core: flat row-major kernels that
// write into caller-provided slices, plus a Workspace arena for scratch
// buffers. The Matrix methods in mat.go are thin wrappers over these; hot
// paths (the neural network's batched forward/backward, the EKF update, the
// kriging solves) call them directly so no temporaries are allocated per
// operation.
//
// Determinism: every kernel accumulates in a fixed order. MatMulBTBias and
// Gemv use the per-row dot-product order (bias first, then k ascending),
// which is the exact accumulation order of the scalar per-neuron loops they
// replace — results are bit-for-bit identical, not merely close.

// gemmBlock is the tile edge for the blocked MatMul variants. Matrices at or
// below this size (everything in the EKF, and each NN layer dimension) run
// as a single tile, so blocking only kicks in for large kriging systems and
// wide minibatches.
const gemmBlock = 64

func checkKernelDims(name string, lenDst, lenA, m, k, n int) {
	if m < 0 || k < 0 || n < 0 {
		panic(fmt.Sprintf("mat: %s with negative shape m=%d k=%d n=%d", name, m, k, n))
	}
	if lenA < m*k {
		panic(fmt.Sprintf("mat: %s lhs has %d elements, need %d", name, lenA, m*k))
	}
	if lenDst < m*n {
		panic(fmt.Sprintf("mat: %s dst has %d elements, need %d", name, lenDst, m*n))
	}
}

// MatMul computes dst = a·b where a is m×k and b is k×n, all flat row-major.
// The multiply is blocked over k and n so large operands stay cache-resident;
// zero entries of a are skipped, which makes one-hot design matrices cheap.
func MatMul(dst, a, b []float64, m, k, n int) {
	checkKernelDims("MatMul", len(dst), len(a), m, k, n)
	if len(b) < k*n {
		panic(fmt.Sprintf("mat: MatMul rhs has %d elements, need %d", len(b), k*n))
	}
	dst = dst[:m*n]
	for i := range dst {
		dst[i] = 0
	}
	for kc := 0; kc < k; kc += gemmBlock {
		kEnd := min(kc+gemmBlock, k)
		for jc := 0; jc < n; jc += gemmBlock {
			jEnd := min(jc+gemmBlock, n)
			for i := 0; i < m; i++ {
				ai := a[i*k : (i+1)*k]
				ci := dst[i*n : (i+1)*n]
				for kk := kc; kk < kEnd; kk++ {
					av := ai[kk]
					if av == 0 {
						continue
					}
					brow := b[kk*n : (kk+1)*n]
					for j := jc; j < jEnd; j++ {
						ci[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatMulBT computes dst = a·bᵀ where a is m×k and b is n×k, all flat
// row-major. Both operands stream row-contiguously, so this is the preferred
// layout for dense layers (activations × weight-rows).
func MatMulBT(dst, a, b []float64, m, k, n int) {
	checkKernelDims("MatMulBT", len(dst), len(a), m, k, n)
	if len(b) < n*k {
		panic(fmt.Sprintf("mat: MatMulBT rhs has %d elements, need %d", len(b), n*k))
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var sum float64
			for kk, av := range ai {
				sum += av * bj[kk]
			}
			ci[j] = sum
		}
	}
}

// MatMulBTBias computes dst[i,j] = bias[j] + Σₖ a[i,k]·b[j,k] with a m×k and
// b n×k. Every (i,j) accumulator starts from bias[j] and sums in ascending
// k — the exact order of the scalar per-neuron loop `sum := bias;
// sum += w[k]*x[k]` that nn.Predict runs — so a whole batch is
// bit-identical to sample-at-a-time inference. The main path is a 2×4
// register-blocked micro-kernel: eight independent accumulator chains per
// k step, which breaks the add-latency dependency that throttles
// one-dot-at-a-time code while leaving each chain's own order untouched.
// (No data-dependent zero-skip here: the branch mispredictions cost more
// than the skipped multiplies, even on one-hot rows.)
func MatMulBTBias(dst, a, b, bias []float64, m, k, n int) {
	checkKernelDims("MatMulBTBias", len(dst), len(a), m, k, n)
	if len(b) < n*k {
		panic(fmt.Sprintf("mat: MatMulBTBias rhs has %d elements, need %d", len(b), n*k))
	}
	if len(bias) < n {
		panic(fmt.Sprintf("mat: MatMulBTBias bias has %d elements, need %d", len(bias), n))
	}
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		c0 := dst[i*n : (i+1)*n]
		c1 := dst[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			s00, s01, s02, s03 := bias[j], bias[j+1], bias[j+2], bias[j+3]
			s10, s11, s12, s13 := s00, s01, s02, s03
			for kk, v0 := range a0 {
				v1 := a1[kk]
				w0, w1, w2, w3 := b0[kk], b1[kk], b2[kk], b3[kk]
				s00 += w0 * v0
				s01 += w1 * v0
				s02 += w2 * v0
				s03 += w3 * v0
				s10 += w0 * v1
				s11 += w1 * v1
				s12 += w2 * v1
				s13 += w3 * v1
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			s0, s1 := bias[j], bias[j]
			for kk, v0 := range a0 {
				w := bj[kk]
				s0 += w * v0
				s1 += w * a1[kk]
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			sum := bias[j]
			for kk, av := range ai {
				sum += av * bj[kk]
			}
			ci[j] = sum
		}
	}
}

// MatMulAT computes dst = aᵀ·b where a is m×k and b is m×n (so dst is k×n),
// accumulating over rows in ascending order. This is the gradient shape
// ∇W = Δᵀ·X of the batched backward pass.
func MatMulAT(dst, a, b []float64, m, k, n int) {
	if len(a) < m*k {
		panic(fmt.Sprintf("mat: MatMulAT lhs has %d elements, need %d", len(a), m*k))
	}
	if len(b) < m*n {
		panic(fmt.Sprintf("mat: MatMulAT rhs has %d elements, need %d", len(b), m*n))
	}
	if len(dst) < k*n {
		panic(fmt.Sprintf("mat: MatMulAT dst has %d elements, need %d", len(dst), k*n))
	}
	dst = dst[:k*n]
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m; r++ {
		ar := a[r*k : (r+1)*k]
		br := b[r*n : (r+1)*n]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			di := dst[i*n : (i+1)*n]
			for j, bv := range br {
				di[j] += av * bv
			}
		}
	}
}

// Gemv computes dst = a·x for a flat row-major m×n matrix, one dot product
// per row in ascending column order.
func Gemv(dst, a, x []float64, m, n int) {
	if len(a) < m*n {
		panic(fmt.Sprintf("mat: Gemv matrix has %d elements, need %d", len(a), m*n))
	}
	if len(x) < n {
		panic(fmt.Sprintf("mat: Gemv vector has %d elements, need %d", len(x), n))
	}
	if len(dst) < m {
		panic(fmt.Sprintf("mat: Gemv dst has %d elements, need %d", len(dst), m))
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// Axpy computes y += α·x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(y) < len(x) {
		panic(fmt.Sprintf("mat: Axpy y has %d elements, x has %d", len(y), len(x)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// VecAdd computes dst += x element-wise.
func VecAdd(dst, x []float64) {
	if len(dst) < len(x) {
		panic(fmt.Sprintf("mat: VecAdd dst has %d elements, x has %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += v
	}
}

// VecSub computes dst -= x element-wise.
func VecSub(dst, x []float64) {
	if len(dst) < len(x) {
		panic(fmt.Sprintf("mat: VecSub dst has %d elements, x has %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] -= v
	}
}

// VecMul computes the Hadamard product dst ·= x element-wise.
func VecMul(dst, x []float64) {
	if len(dst) < len(x) {
		panic(fmt.Sprintf("mat: VecMul dst has %d elements, x has %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] *= v
	}
}

// VecScale multiplies every element of dst by s in place.
func VecScale(s float64, dst []float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// Workspace is a grow-only scratch arena for float64 buffers. Take carves
// zeroed slices off the arena; Reset reclaims them all at once. After the
// arena has warmed up to a workload's peak demand, Take never allocates —
// the pattern behind the NN's zero-allocation inference path. A Workspace is
// not safe for concurrent use; share via sync.Pool instead.
type Workspace struct {
	buf  []float64
	used int
}

// NewWorkspace returns an arena with the given initial capacity (in
// float64s). Zero is fine; the arena grows on demand.
func NewWorkspace(capacity int) *Workspace {
	if capacity < 0 {
		capacity = 0
	}
	return &Workspace{buf: make([]float64, capacity)}
}

// Take returns a zeroed length-n slice carved from the arena. Growing the
// arena orphans (but does not invalidate) slices taken earlier: they keep
// their own backing memory and stay usable until the caller drops them.
func (w *Workspace) Take(n int) []float64 {
	s := w.TakeUninit(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// TakeUninit is Take without the zeroing: the returned slice holds whatever
// a previous use left there. For buffers every element of which is about to
// be overwritten (GEMM destinations, gather targets), it skips a redundant
// memset on the hot path.
func (w *Workspace) TakeUninit(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("mat: Workspace.Take(%d)", n))
	}
	if w.used+n > len(w.buf) {
		grow := 2 * len(w.buf)
		if grow < w.used+n {
			grow = w.used + n
		}
		w.buf = make([]float64, grow)
		w.used = 0
	}
	s := w.buf[w.used : w.used+n : w.used+n]
	w.used += n
	return s
}

// Reset reclaims every outstanding Take at once. Slices taken before the
// Reset must no longer be used.
func (w *Workspace) Reset() { w.used = 0 }

// Cap reports the arena's current capacity in float64s.
func (w *Workspace) Cap() int { return len(w.buf) }

// CholFactor is a Cholesky factorisation A = L·Lᵀ of a symmetric
// positive-definite matrix, reusable for repeated solves — the kriging
// interpolator factors its covariance matrix once and solves per query.
type CholFactor struct {
	l *Matrix
}

// CholeskyFactor factors a symmetric positive-definite matrix for solving.
func CholeskyFactor(a *Matrix) (*CholFactor, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return &CholFactor{l: l}, nil
}

// Size returns the system dimension.
func (c *CholFactor) Size() int { return c.l.rows }

// Solve solves A·x = b for x.
func (c *CholFactor) Solve(b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into dst without allocating. dst and b may alias.
func (c *CholFactor) SolveInto(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n {
		return fmt.Errorf("mat: rhs length %d, want %d", len(b), n)
	}
	if len(dst) < n {
		return fmt.Errorf("mat: dst length %d, want %d", len(dst), n)
	}
	dst = dst[:n]
	copy(dst, b)
	ld := c.l.data
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		sum := dst[i]
		row := ld[i*n : i*n+i]
		for j, v := range row {
			sum -= v * dst[j]
		}
		dst[i] = sum / ld[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := dst[i]
		for j := i + 1; j < n; j++ {
			sum -= ld[j*n+i] * dst[j]
		}
		dst[i] = sum / ld[i*n+i]
	}
	return nil
}

// CholeskySolve factors A and solves A·x = b in one call.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	f, err := CholeskyFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
