// Package sim provides the discrete-event simulation kernel on which the
// whole UAV/REM toolchain runs. All timing in the repository — flight legs,
// scan dwell times, commander watchdogs, battery discharge — is expressed
// against the virtual clock defined here, so experiments that model minutes
// of flight execute in milliseconds of wall time and are fully deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Clock exposes the current virtual time. Components hold a Clock rather
// than a *Engine when they only need to read time, which keeps them trivial
// to test.
type Clock interface {
	// Now returns the current virtual time as an offset from the
	// simulation epoch.
	Now() time.Duration
}

// Event is a scheduled callback.
type Event struct {
	at     time.Duration
	seq    uint64
	name   string
	fn     func()
	fired  bool
	cancel bool
	index  int // heap index
}

// Name returns the diagnostic label the event was scheduled with.
func (e *Event) Name() string { return e.name }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same instant fire in scheduling order (FIFO), which makes simulations
// reproducible run-to-run.
//
// Engine is not safe for concurrent use; the simulation is single-threaded
// by design — determinism is a core requirement (see DESIGN.md).
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	steps uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

var _ Clock = (*Engine)(nil)

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// ErrPastEvent is returned when scheduling an event before the current
// virtual time.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// At schedules fn to run at the given absolute virtual time. The returned
// Event can be cancelled.
func (e *Engine) At(t time.Duration, name string, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: now=%v requested=%v (%s)", ErrPastEvent, e.now, t, name)
	}
	ev := &Event{at: t, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After schedules fn to run after the given delay from the current virtual
// time. Negative delays are clamped to zero (fire "immediately", i.e. at the
// current instant but after currently queued same-instant events).
func (e *Engine) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := e.At(e.now+d, name, fn)
	if err != nil {
		// Unreachable: now+non-negative d is never in the past.
		panic(err)
	}
	return ev
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or the step budget is exhausted.
// It returns the number of events fired. A budget of 0 means unlimited.
func (e *Engine) Run(budget uint64) uint64 {
	var fired uint64
	for {
		if budget > 0 && fired >= budget {
			return fired
		}
		if !e.Step() {
			return fired
		}
		fired++
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Sleep advances virtual time by d without firing any queued events that are
// scheduled within the interval. Use RunUntil for the usual "advance and
// process" semantics; Sleep exists for tests that need to create artificial
// gaps.
func (e *Engine) Sleep(d time.Duration) {
	if d > 0 {
		e.now += d
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// FixedClock is a Clock with a settable time, for unit tests of components
// that only read time.
type FixedClock struct {
	Time time.Duration
}

var _ Clock = (*FixedClock)(nil)

// Now implements Clock.
func (c *FixedClock) Now() time.Duration { return c.Time }

// Advance moves the fixed clock forward by d.
func (c *FixedClock) Advance(d time.Duration) { c.Time += d }
