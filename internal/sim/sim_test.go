package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Errorf("Now = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(3*time.Second, "c", func() { order = append(order, "c") })
	e.After(1*time.Second, "a", func() { order = append(order, "a") })
	e.After(2*time.Second, "b", func() { order = append(order, "b") })
	e.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, "tick", func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestAtRejectsPast(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, "advance", func() {})
	e.Run(0)
	if _, err := e.At(500*time.Millisecond, "late", func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event error = %v, want ErrPastEvent", err)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Sleep(time.Second)
	fired := false
	e.After(-time.Minute, "clamped", func() { fired = true })
	e.Step()
	if !fired || e.Now() != time.Second {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(time.Second, "doomed", func() { fired = true })
	ev.Cancel()
	e.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(time.Second, "keep1", func() { count++ })
	ev := e.After(time.Second, "drop", func() { count += 100 })
	e.After(time.Second, "keep2", func() { count++ })
	ev.Cancel()
	e.Run(0)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	var tick func()
	n := 0
	tick = func() {
		times = append(times, e.Now())
		n++
		if n < 5 {
			e.After(100*time.Millisecond, "tick", tick)
		}
	}
	e.After(100*time.Millisecond, "tick", tick)
	e.Run(0)
	if len(times) != 5 {
		t.Fatalf("ticks = %d", len(times))
	}
	for i, at := range times {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunBudget(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Second, "e", func() { count++ })
	}
	fired := e.Run(3)
	if fired != 3 || count != 3 {
		t.Errorf("fired=%d count=%d, want 3", fired, count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.After(1*time.Second, "a", func() { fired = append(fired, "a") })
	e.After(2*time.Second, "b", func() { fired = append(fired, "b") })
	e.After(5*time.Second, "c", func() { fired = append(fired, "c") })
	e.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s (clock must advance to the deadline)", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 || e.Now() != 10*time.Second {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.After(time.Second, "x", func() {})
	ev.Cancel()
	e.RunUntil(2 * time.Second)
	if e.Pending() != 0 {
		t.Errorf("cancelled event still pending")
	}
}

func TestSteps(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.After(time.Second, "e", func() {})
	}
	e.Run(0)
	if e.Steps() != 4 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev := e.After(7*time.Second, "probe", func() {})
	if ev.Name() != "probe" {
		t.Errorf("Name = %q", ev.Name())
	}
	if ev.At() != 7*time.Second {
		t.Errorf("At = %v", ev.At())
	}
}

func TestFixedClock(t *testing.T) {
	c := &FixedClock{Time: time.Minute}
	if c.Now() != time.Minute {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(30 * time.Second)
	if c.Now() != 90*time.Second {
		t.Errorf("after Advance Now = %v", c.Now())
	}
}

func TestSleepDoesNotFireEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(time.Second, "x", func() { fired = true })
	e.Sleep(5 * time.Second)
	if fired {
		t.Error("Sleep fired an event")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineStressManyEvents(t *testing.T) {
	// 50k events in randomised order must fire in exact time order.
	e := NewEngine()
	const n = 50000
	var last time.Duration = -1
	violations := 0
	for i := 0; i < n; i++ {
		// Deterministic pseudo-random times via a small LCG.
		at := time.Duration((uint64(i)*6364136223846793005+1442695040888963407)%1e9) * time.Microsecond
		e.At(at, "stress", func() {
			if e.Now() < last {
				violations++
			}
			last = e.Now()
		})
	}
	if fired := e.Run(0); fired != n {
		t.Fatalf("fired %d/%d", fired, n)
	}
	if violations != 0 {
		t.Errorf("%d ordering violations", violations)
	}
}
