package ekf

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// HoverTrial measures the steady-state localization accuracy of a
// constellation while a tag hovers at a fixed position — the scenario behind
// the paper's "9 cm accuracy with 6 anchors while hovering" claim (§II-B)
// and this repository's anchor-count ablation (experiment E7).
type HoverTrial struct {
	// TruePos is where the tag actually hovers.
	TruePos geom.Vec3
	// Duration is the simulated hover time in seconds.
	Duration float64
	// UpdateRateHz is the UWB measurement cycle rate.
	UpdateRateHz float64
	// WarmupFraction of the trial is excluded from the error statistics
	// while the filter converges.
	WarmupFraction float64
}

// DefaultHoverTrial hovers 1 m above the volume centre for 30 simulated
// seconds, mirroring the paper's endurance-test hover at ~1 m.
func DefaultHoverTrial(truePos geom.Vec3) HoverTrial {
	return HoverTrial{
		TruePos:        truePos,
		Duration:       30,
		UpdateRateHz:   10,
		WarmupFraction: 0.3,
	}
}

// HoverResult summarises a hover trial.
type HoverResult struct {
	// MeanErrorM is the mean 3-D position error after warm-up.
	MeanErrorM float64
	// RMSErrorM is the root-mean-square 3-D error after warm-up.
	RMSErrorM float64
	// MaxErrorM is the worst post-warm-up error.
	MaxErrorM float64
	// Samples is the number of error samples accumulated.
	Samples int
}

// RunHover simulates the trial against a constellation and returns accuracy
// statistics. The filter is deliberately initialised away from the true
// position to exercise convergence.
func RunHover(c *uwb.Constellation, trial HoverTrial, rng *simrand.Source) (HoverResult, error) {
	if trial.Duration <= 0 || trial.UpdateRateHz <= 0 {
		return HoverResult{}, fmt.Errorf("ekf: hover trial needs positive duration and rate")
	}
	if trial.WarmupFraction < 0 || trial.WarmupFraction >= 1 {
		return HoverResult{}, fmt.Errorf("ekf: warm-up fraction %g outside [0, 1)", trial.WarmupFraction)
	}
	initGuess := trial.TruePos.Add(geom.V(rng.Gauss(0, 0.5), rng.Gauss(0, 0.5), rng.Gauss(0, 0.3)))
	f, err := New(initGuess, DefaultConfig())
	if err != nil {
		return HoverResult{}, err
	}
	dt := 1 / trial.UpdateRateHz
	steps := int(trial.Duration * trial.UpdateRateHz)
	warmup := int(float64(steps) * trial.WarmupFraction)

	var res HoverResult
	imu := rng.Derive("imu")
	meas := rng.Derive("uwb")
	for k := 0; k < steps; k++ {
		// Hovering: true acceleration is zero; the IMU reports noise.
		noisyAccel := geom.V(imu.Gauss(0, 0.05), imu.Gauss(0, 0.05), imu.Gauss(0, 0.08))
		if err := f.Predict(noisyAccel, dt); err != nil {
			return HoverResult{}, err
		}
		switch c.Mode() {
		case uwb.TWR:
			ranges, err := c.TWRRanges(trial.TruePos, meas)
			if err != nil {
				return HoverResult{}, err
			}
			for _, r := range ranges {
				if err := f.UpdateRange(r.Anchor, r.RangeM, 0.15); err != nil {
					return HoverResult{}, err
				}
			}
		case uwb.TDoA:
			diffs, err := c.TDoAMeasurements(trial.TruePos, meas)
			if err != nil {
				return HoverResult{}, err
			}
			for _, d := range diffs {
				if err := f.UpdateTDoA(d.Anchor, d.RefAnchor, d.DiffM, 0.13); err != nil {
					return HoverResult{}, err
				}
			}
		}
		if k < warmup {
			continue
		}
		e := f.Position().Dist(trial.TruePos)
		res.MeanErrorM += e
		res.RMSErrorM += e * e
		if e > res.MaxErrorM {
			res.MaxErrorM = e
		}
		res.Samples++
	}
	if res.Samples > 0 {
		res.MeanErrorM /= float64(res.Samples)
		res.RMSErrorM = math.Sqrt(res.RMSErrorM / float64(res.Samples))
	}
	return res, nil
}
