package ekf

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.V(0, 0, 0), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := DefaultConfig()
	bad.AccelNoise = 0
	if _, err := New(geom.V(0, 0, 0), bad); err == nil {
		t.Error("zero accel noise accepted")
	}
	bad = DefaultConfig()
	bad.InitPosSigmaM = -1
	if _, err := New(geom.V(0, 0, 0), bad); err == nil {
		t.Error("negative init sigma accepted")
	}
}

func TestInitialState(t *testing.T) {
	f, err := New(geom.V(1, 2, 3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Position() != geom.V(1, 2, 3) {
		t.Errorf("Position = %v", f.Position())
	}
	if f.Velocity() != geom.V(0, 0, 0) {
		t.Errorf("Velocity = %v", f.Velocity())
	}
	sd := f.PositionStdDev()
	if sd.X != 1 || sd.Y != 1 || sd.Z != 1 {
		t.Errorf("initial position stddev = %v", sd)
	}
}

func TestPredictKinematics(t *testing.T) {
	f, _ := New(geom.V(0, 0, 0), DefaultConfig())
	// Constant 1 m/s² along x for 2 s ⇒ p = 2 m, v = 2 m/s.
	for i := 0; i < 20; i++ {
		if err := f.Predict(geom.V(1, 0, 0), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	p, v := f.Position(), f.Velocity()
	if diff := p.Dist(geom.V(2, 0, 0)); diff > 1e-9 {
		t.Errorf("position = %v, want (2,0,0)", p)
	}
	if diff := v.Dist(geom.V(2, 0, 0)); diff > 1e-9 {
		t.Errorf("velocity = %v, want (2,0,0)", v)
	}
}

func TestPredictRejectsBadDt(t *testing.T) {
	f, _ := New(geom.V(0, 0, 0), DefaultConfig())
	if err := f.Predict(geom.V(0, 0, 0), 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := f.Predict(geom.V(0, 0, 0), -0.1); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestPredictGrowsUncertainty(t *testing.T) {
	f, _ := New(geom.V(0, 0, 0), DefaultConfig())
	before := f.PositionStdDev().X
	for i := 0; i < 10; i++ {
		_ = f.Predict(geom.V(0, 0, 0), 0.1)
	}
	after := f.PositionStdDev().X
	if after <= before {
		t.Errorf("prediction should grow covariance: %v → %v", before, after)
	}
}

func TestUpdateRangeShrinksUncertainty(t *testing.T) {
	f, _ := New(geom.V(1, 1, 1), DefaultConfig())
	before := f.PositionStdDev()
	anchors := geom.PaperScanVolume().Corners()
	truth := geom.V(1.5, 1.2, 0.9)
	for _, a := range anchors {
		if err := f.UpdateRange(a, truth.Dist(a), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	after := f.PositionStdDev()
	if after.X >= before.X || after.Y >= before.Y || after.Z >= before.Z {
		t.Errorf("updates should shrink covariance: %v → %v", before, after)
	}
}

func TestRangeOnlyConvergence(t *testing.T) {
	// Noiseless ranges from 8 anchors must pull the estimate onto the
	// true position.
	f, _ := New(geom.V(0.2, 0.3, 0.2), DefaultConfig())
	anchors := geom.PaperScanVolume().Corners()
	truth := geom.V(2.5, 1.1, 1.4)
	for iter := 0; iter < 50; iter++ {
		_ = f.Predict(geom.V(0, 0, 0), 0.1)
		for _, a := range anchors {
			if err := f.UpdateRange(a, truth.Dist(a), 0.05); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e := f.Position().Dist(truth); e > 0.02 {
		t.Errorf("noiseless convergence error = %v m", e)
	}
}

func TestTDoAOnlyConvergence(t *testing.T) {
	f, _ := New(geom.V(1.0, 1.0, 0.5), DefaultConfig())
	anchors := geom.PaperScanVolume().Corners()
	truth := geom.V(2.2, 2.4, 1.2)
	ref := anchors[0]
	for iter := 0; iter < 80; iter++ {
		_ = f.Predict(geom.V(0, 0, 0), 0.1)
		for _, a := range anchors[1:] {
			d := truth.Dist(a) - truth.Dist(ref)
			if err := f.UpdateTDoA(a, ref, d, 0.05); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e := f.Position().Dist(truth); e > 0.05 {
		t.Errorf("TDoA convergence error = %v m", e)
	}
}

func TestUpdateValidation(t *testing.T) {
	f, _ := New(geom.V(1, 1, 1), DefaultConfig())
	if err := f.UpdateRange(geom.V(0, 0, 0), 1, 0); err == nil {
		t.Error("zero sigma accepted")
	}
	if err := f.UpdateRange(geom.V(1, 1, 1), 0, 0.1); err == nil {
		t.Error("anchor at tag position accepted")
	}
	if err := f.UpdateTDoA(geom.V(0, 0, 0), geom.V(2, 2, 2), 0, 0); err == nil {
		t.Error("zero TDoA sigma accepted")
	}
	if err := f.UpdateTDoA(geom.V(1, 1, 1), geom.V(2, 2, 2), 0, 0.1); err == nil {
		t.Error("TDoA anchor at tag position accepted")
	}
}

func hoverError(t *testing.T, nAnchors int, mode uwb.Mode, seed uint64) float64 {
	t.Helper()
	vol := geom.PaperScanVolume()
	corners := vol.Corners()
	anchors := make([]uwb.Anchor, 0, nAnchors)
	for i := 0; i < nAnchors; i++ {
		anchors = append(anchors, uwb.Anchor{ID: i, Pos: corners[i%len(corners)].Add(geom.V(0, 0, float64(i/len(corners))*0.1))})
	}
	cfg := uwb.DefaultConfig(mode)
	cfg.Seed = seed
	c, err := uwb.NewConstellation(anchors[:nAnchors], cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SelfCalibrate()
	res, err := RunHover(c, DefaultHoverTrial(geom.V(1.87, 1.60, 1.0)), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res.MeanErrorM
}

func TestHoverAccuracyMatchesPaperScale(t *testing.T) {
	// Paper (§II-B, citing Chekuri & Won): ≈9 cm hovering accuracy with 6
	// anchors. Average a few seeds and require the right decimetre scale.
	var sum float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		sum += hoverError(t, 6, uwb.TWR, 100+s)
	}
	mean := sum / seeds
	if mean < 0.02 || mean > 0.20 {
		t.Errorf("6-anchor hover accuracy = %.3f m, want ≈0.09 m (decimetre-level)", mean)
	}
}

func TestMoreAnchorsImproveAccuracy(t *testing.T) {
	var e4, e8 float64
	const seeds = 6
	for s := uint64(0); s < seeds; s++ {
		e4 += hoverError(t, 4, uwb.TWR, 200+s)
		e8 += hoverError(t, 8, uwb.TWR, 200+s)
	}
	if e8 >= e4 {
		t.Errorf("8-anchor error %v not below 4-anchor error %v", e8/seeds, e4/seeds)
	}
}

func TestHoverTrialValidation(t *testing.T) {
	c, _ := uwb.CornerConstellation(geom.PaperScanVolume(), uwb.DefaultConfig(uwb.TWR))
	c.SelfCalibrate()
	trial := DefaultHoverTrial(geom.V(1, 1, 1))
	trial.Duration = 0
	if _, err := RunHover(c, trial, simrand.New(1)); err == nil {
		t.Error("zero duration accepted")
	}
	trial = DefaultHoverTrial(geom.V(1, 1, 1))
	trial.WarmupFraction = 1
	if _, err := RunHover(c, trial, simrand.New(1)); err == nil {
		t.Error("warm-up fraction 1 accepted")
	}
}

func TestRunHoverRequiresCalibration(t *testing.T) {
	c, _ := uwb.CornerConstellation(geom.PaperScanVolume(), uwb.DefaultConfig(uwb.TWR))
	if _, err := RunHover(c, DefaultHoverTrial(geom.V(1, 1, 1)), simrand.New(1)); err == nil {
		t.Error("uncalibrated constellation accepted")
	}
}

func TestHoverResultFieldsConsistent(t *testing.T) {
	c, _ := uwb.CornerConstellation(geom.PaperScanVolume(), uwb.DefaultConfig(uwb.TDoA))
	c.SelfCalibrate()
	res, err := RunHover(c, DefaultHoverTrial(geom.V(1.8, 1.6, 1.0)), simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples accumulated")
	}
	if res.RMSErrorM < res.MeanErrorM {
		t.Errorf("RMS %v below mean %v", res.RMSErrorM, res.MeanErrorM)
	}
	if res.MaxErrorM < res.RMSErrorM {
		t.Errorf("max %v below RMS %v", res.MaxErrorM, res.RMSErrorM)
	}
}
