// Package ekf implements the extended Kalman filter a Loco-Positioning
// Crazyflie uses to estimate its state by fusing IMU accelerations with UWB
// range (TWR) or range-difference (TDoA) measurements, following the
// approach of Mueller et al. (ICRA 2015) cited by the paper (§II-B).
//
// The state is [position(3), velocity(3)]; measurements are processed
// sequentially as scalars, which keeps every update a rank-1 correction and
// avoids matrix inversion entirely.
package ekf

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mat"
)

const stateDim = 6

// Config tunes the filter.
type Config struct {
	// AccelNoise is the continuous-time accelerometer noise density used
	// to build process noise (m/s² per √Hz, effectively).
	AccelNoise float64
	// InitPosSigmaM and InitVelSigma set the initial covariance.
	InitPosSigmaM, InitVelSigma float64
}

// DefaultConfig returns gains matched to a Crazyflie-class IMU.
func DefaultConfig() Config {
	return Config{
		AccelNoise:    0.8,
		InitPosSigmaM: 1.0,
		InitVelSigma:  0.5,
	}
}

// Filter is the EKF instance.
type Filter struct {
	cfg Config
	x   [stateDim]float64 // px py pz vx vy vz
	p   *mat.Matrix
}

// New creates a filter initialised at the given position with zero velocity.
func New(initPos geom.Vec3, cfg Config) (*Filter, error) {
	if cfg.AccelNoise <= 0 {
		return nil, fmt.Errorf("ekf: accel noise must be positive")
	}
	if cfg.InitPosSigmaM <= 0 || cfg.InitVelSigma <= 0 {
		return nil, fmt.Errorf("ekf: initial sigmas must be positive")
	}
	f := &Filter{cfg: cfg, p: mat.New(stateDim, stateDim)}
	f.x[0], f.x[1], f.x[2] = initPos.X, initPos.Y, initPos.Z
	for i := 0; i < 3; i++ {
		f.p.Set(i, i, cfg.InitPosSigmaM*cfg.InitPosSigmaM)
		f.p.Set(i+3, i+3, cfg.InitVelSigma*cfg.InitVelSigma)
	}
	return f, nil
}

// Position returns the position estimate.
func (f *Filter) Position() geom.Vec3 { return geom.V(f.x[0], f.x[1], f.x[2]) }

// Velocity returns the velocity estimate.
func (f *Filter) Velocity() geom.Vec3 { return geom.V(f.x[3], f.x[4], f.x[5]) }

// PositionStdDev returns the marginal standard deviation of each position
// component, a convenient confidence readout.
func (f *Filter) PositionStdDev() geom.Vec3 {
	return geom.V(
		math.Sqrt(math.Max(f.p.At(0, 0), 0)),
		math.Sqrt(math.Max(f.p.At(1, 1), 0)),
		math.Sqrt(math.Max(f.p.At(2, 2), 0)),
	)
}

// Predict propagates the state by dt seconds under the measured body
// acceleration (world frame, gravity-compensated).
func (f *Filter) Predict(accel geom.Vec3, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("ekf: predict dt must be positive, got %g", dt)
	}
	// Constant-acceleration kinematics.
	ax := [3]float64{accel.X, accel.Y, accel.Z}
	for i := 0; i < 3; i++ {
		f.x[i] += f.x[i+3]*dt + 0.5*ax[i]*dt*dt
		f.x[i+3] += ax[i] * dt
	}
	// Jacobian F = [I, dt·I; 0, I].
	fm := mat.Identity(stateDim)
	for i := 0; i < 3; i++ {
		fm.Set(i, i+3, dt)
	}
	// Process noise from white acceleration: discrete Wiener-acceleration Q.
	q := f.cfg.AccelNoise * f.cfg.AccelNoise
	qm := mat.New(stateDim, stateDim)
	q11 := q * dt * dt * dt / 3
	q12 := q * dt * dt / 2
	q22 := q * dt
	for i := 0; i < 3; i++ {
		qm.Set(i, i, q11)
		qm.Set(i, i+3, q12)
		qm.Set(i+3, i, q12)
		qm.Set(i+3, i+3, q22)
	}
	f.p = fm.Mul(f.p).Mul(fm.T()).Plus(qm)
	f.p.Symmetrize()
	return nil
}

// scalarUpdate applies one scalar measurement z = h(x) + v, v~N(0, r), with
// Jacobian row hj.
func (f *Filter) scalarUpdate(innovation float64, hj [stateDim]float64, r float64) {
	// S = H P Hᵀ + r (scalar).
	var ph [stateDim]float64
	for i := 0; i < stateDim; i++ {
		s := 0.0
		for j := 0; j < stateDim; j++ {
			s += f.p.At(i, j) * hj[j]
		}
		ph[i] = s
	}
	s := r
	for i := 0; i < stateDim; i++ {
		s += hj[i] * ph[i]
	}
	if s <= 0 {
		return // degenerate; skip the update rather than diverge
	}
	// K = P Hᵀ / S.
	var k [stateDim]float64
	for i := 0; i < stateDim; i++ {
		k[i] = ph[i] / s
	}
	for i := 0; i < stateDim; i++ {
		f.x[i] += k[i] * innovation
	}
	// P ← (I − K H) P, Joseph-free but symmetrised.
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			f.p.Add(i, j, -k[i]*ph[j])
		}
	}
	f.p.Symmetrize()
}

// UpdateRange fuses one TWR range to an anchor. sigma is the measurement
// standard deviation in metres.
func (f *Filter) UpdateRange(anchor geom.Vec3, measured, sigma float64) error {
	if sigma <= 0 {
		return fmt.Errorf("ekf: range sigma must be positive")
	}
	p := f.Position()
	d := p.Dist(anchor)
	if d < 1e-6 {
		return fmt.Errorf("ekf: tag coincides with anchor; range update undefined")
	}
	u := p.Sub(anchor).Scale(1 / d)
	var hj [stateDim]float64
	hj[0], hj[1], hj[2] = u.X, u.Y, u.Z
	f.scalarUpdate(measured-d, hj, sigma*sigma)
	return nil
}

// UpdateBearing fuses one optical bearing (azimuth + elevation, world
// frame) toward a Lighthouse-style base station. Each angle is processed as
// a scalar measurement with standard deviation sigma.
func (f *Filter) UpdateBearing(station geom.Vec3, azimuth, elevation, sigma float64) error {
	if sigma <= 0 {
		return fmt.Errorf("ekf: bearing sigma must be positive")
	}
	p := f.Position()
	d := p.Sub(station)
	rh2 := d.X*d.X + d.Y*d.Y
	rh := math.Sqrt(rh2)
	if rh < 1e-6 {
		return fmt.Errorf("ekf: tag directly above station; bearing update undefined")
	}
	r2 := rh2 + d.Z*d.Z

	// Azimuth: h = atan2(dy, dx); ∂h/∂x = −dy/rh², ∂h/∂y = dx/rh².
	var hAz [stateDim]float64
	hAz[0] = -d.Y / rh2
	hAz[1] = d.X / rh2
	innovAz := wrapAngle(azimuth - math.Atan2(d.Y, d.X))
	f.scalarUpdate(innovAz, hAz, sigma*sigma)

	// Elevation: h = atan2(dz, rh);
	// ∂h/∂x = −dz·dx/(rh·r²), ∂h/∂y = −dz·dy/(rh·r²), ∂h/∂z = rh/r².
	p = f.Position()
	d = p.Sub(station)
	rh2 = d.X*d.X + d.Y*d.Y
	rh = math.Sqrt(rh2)
	if rh < 1e-6 {
		return nil // azimuth applied; skip the degenerate elevation update
	}
	r2 = rh2 + d.Z*d.Z
	var hEl [stateDim]float64
	hEl[0] = -d.Z * d.X / (rh * r2)
	hEl[1] = -d.Z * d.Y / (rh * r2)
	hEl[2] = rh / r2
	innovEl := wrapAngle(elevation - math.Atan2(d.Z, rh))
	f.scalarUpdate(innovEl, hEl, sigma*sigma)
	return nil
}

// wrapAngle maps an angle difference into (−π, π].
func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// UpdateTDoA fuses one TDoA range difference |p−anchor| − |p−ref|.
func (f *Filter) UpdateTDoA(anchor, ref geom.Vec3, measured, sigma float64) error {
	if sigma <= 0 {
		return fmt.Errorf("ekf: TDoA sigma must be positive")
	}
	p := f.Position()
	da := p.Dist(anchor)
	dr := p.Dist(ref)
	if da < 1e-6 || dr < 1e-6 {
		return fmt.Errorf("ekf: tag coincides with an anchor; TDoA update undefined")
	}
	ua := p.Sub(anchor).Scale(1 / da)
	ur := p.Sub(ref).Scale(1 / dr)
	g := ua.Sub(ur)
	var hj [stateDim]float64
	hj[0], hj[1], hj[2] = g.X, g.Y, g.Z
	f.scalarUpdate(measured-(da-dr), hj, sigma*sigma)
	return nil
}
