package remfollow

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remserve"
	"repro/internal/remstore"
)

// followBackend adapts a Follower to the remserve.Backend surface, so
// the replica serves the exact same query endpoints as its leader —
// /at, /strongest, /snapshot, /delta all work against the local store,
// and a replica can itself be followed (chained replication). The
// snapshot tag is the leader's tag verbatim, held in one atomic
// generation pointer with the map it names, so the ETag a client sees
// always matches the bytes it gets even mid-swap.
type followBackend struct{ f *Follower }

func (b followBackend) At(key string, p geom.Vec3) (float64, uint64, error) {
	return b.f.store.At(key, p)
}

func (b followBackend) AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error) {
	return b.f.store.AtBatchInto(dst, key, pts)
}

func (b followBackend) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	return b.f.store.Strongest(p)
}

func (b followBackend) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) (uint64, error) {
	return b.f.store.StrongestBatchInto(keys, vals, pts)
}

func (b followBackend) Snapshot() (*rem.Map, string, error) {
	g := b.f.gen.Load()
	if g == nil {
		return nil, "", remstore.ErrEmpty
	}
	return g.m, g.tag, nil
}

func (b followBackend) SnapshotAt(tag string) (*rem.Map, bool) {
	b.f.mu.Lock()
	defer b.f.mu.Unlock()
	for i := len(b.f.gens) - 1; i >= 0; i-- {
		if b.f.gens[i].tag == tag {
			return b.f.gens[i].m, true
		}
	}
	return nil, false
}

func (b followBackend) Stats() remserve.Stats {
	st := b.f.store.Stats()
	out := remserve.Stats{
		Shards:    1,
		Queries:   st.Queries,
		Publishes: st.Publishes,
		Evictions: st.Evictions,
		PerShard:  []remstore.Stats{st},
	}
	if g := b.f.gen.Load(); g != nil {
		out.Serving = true
		out.Version = g.tag
		// The tag's arity is the leader's shard count: report it, so a
		// replica's /version is bit-identical to its leader's (the local
		// store is monolithic either way — PerShard stays length 1).
		out.Shards = strings.Count(g.tag, ".") + 1
	} else {
		out.Version = "0"
		out.PendingShards = 1
	}
	return out
}

// health is the /healthz view: a replica is "serving" while fresh,
// "stale" once the last successful sync is older than MaxStaleness
// (503 — orchestrators should route reads elsewhere, though this
// process will keep answering them), and "empty" before the first sync.
func (f *Follower) health() (status string, code int, s SyncStats) {
	s = f.syncStats()
	switch {
	case s.Version == "":
		return "empty", http.StatusServiceUnavailable, s
	case s.Stale:
		return "stale", http.StatusServiceUnavailable, s
	default:
		return "serving", http.StatusOK, s
	}
}

// syncStats snapshots the replication telemetry.
func (f *Follower) syncStats() SyncStats {
	f.stateMu.Lock()
	s := f.stats
	if !f.lastSync.IsZero() {
		age := f.cfg.Now().Sub(f.lastSync)
		s.LastSyncAgeMS = age.Milliseconds()
		s.Stale = age > f.cfg.MaxStaleness
	}
	f.stateMu.Unlock()
	return s
}

// SyncStats returns the current replication telemetry (the /stats
// "sync" section).
func (f *Follower) SyncStats() SyncStats { return f.syncStats() }

// ServeHTTP serves the replica's endpoint set: /healthz and /stats are
// the follower's own (replication-aware — a query front that lies about
// its staleness is worse than one that is down), everything else is the
// standard remserve surface over the local store.
func (f *Follower) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
			return
		}
		f.handleHealthz(w)
	case "/stats":
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
			return
		}
		f.handleStats(w)
	default:
		f.server.ServeHTTP(w, r)
	}
}

// handleHealthz writes the replica health probe. Unlike the leader's
// probe it carries freshness: last-sync age, consecutive failures and
// the resync count, so "why is this replica unhealthy" is answerable
// from the probe body alone.
func (f *Follower) handleHealthz(w http.ResponseWriter) {
	status, code, s := f.health()
	body, err := json.Marshal(struct {
		Status              string `json:"status"`
		Version             string `json:"version"`
		LastSyncAgeMS       int64  `json:"last_sync_age_ms"`
		ConsecutiveFailures int    `json:"consecutive_failures"`
		Resyncs             uint64 `json:"resyncs"`
	}{status, s.Version, s.LastSyncAgeMS, s.ConsecutiveFailures, s.Resyncs})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	w.Write(append(body, '\n'))
}

// handleStats writes the replication telemetry alongside the local
// store's serving counters.
func (f *Follower) handleStats(w http.ResponseWriter) {
	body, err := json.Marshal(struct {
		Sync  SyncStats      `json:"sync"`
		Store remserve.Stats `json:"store"`
	}{f.syncStats(), followBackend{f}.Stats()})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// Serve accepts connections on l until Shutdown, with the same hardened
// connection bounds as the leader front.
func (f *Follower) Serve(l net.Listener) error {
	hs := &http.Server{
		Handler:           f,
		ReadHeaderTimeout: remserve.DefaultReadHeaderTimeout,
		ReadTimeout:       remserve.DefaultReadTimeout,
		IdleTimeout:       remserve.DefaultIdleTimeout,
	}
	f.srvMu.Lock()
	f.hs = hs
	f.addr = l.Addr().String()
	f.srvMu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr (":0" picks a free port, see Addr) and
// serves until Shutdown.
func (f *Follower) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return f.Serve(l)
}

// Addr returns the bound listen address, or "" before Serve.
func (f *Follower) Addr() string {
	f.srvMu.Lock()
	defer f.srvMu.Unlock()
	return f.addr
}

// Shutdown stops accepting connections and drains in-flight requests.
func (f *Follower) Shutdown(ctx context.Context) error {
	f.srvMu.Lock()
	hs := f.hs
	f.srvMu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}
