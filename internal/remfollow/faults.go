package remfollow

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// FaultKind is one injectable failure class — together they span the
// fault matrix the robustness tests drive: a leader that hangs, errors,
// drops the connection, or hands back damaged bytes.
type FaultKind int

const (
	// FaultNone passes the request through untouched.
	FaultNone FaultKind = iota
	// FaultTimeout blocks until the request context expires, like a
	// leader that accepted the connection and went silent.
	FaultTimeout
	// FaultStatus short-circuits with Status (e.g. 500, 503, 429),
	// optionally carrying RetryAfter.
	FaultStatus
	// FaultReset fails the round trip with a connection-reset error.
	FaultReset
	// FaultTruncate forwards the real response with the second half of
	// its body cut off — a mid-transfer disconnect.
	FaultTruncate
	// FaultBitFlip forwards the real response with one bit flipped in
	// the middle of the body — line corruption the CRC trailers must
	// catch.
	FaultBitFlip
)

// FaultStep is one scheduled fault.
type FaultStep struct {
	Kind FaultKind
	// Status is the response code for FaultStatus.
	Status int
	// RetryAfter, if positive, is sent as a Retry-After header
	// (delta-seconds) with FaultStatus.
	RetryAfter int
}

// ErrConnReset is the error FaultReset fails with.
var ErrConnReset = errors.New("connection reset by peer")

// FaultTransport is an http.RoundTripper that injects a deterministic
// fault schedule in front of a real transport: request n suffers
// Schedule[n] (pass-through once the schedule is exhausted). It makes
// every failure mode of a flaky leader reproducible in-process, under
// the race detector, with no real network misbehaviour required.
type FaultTransport struct {
	// Inner performs the real round trips (nil means
	// http.DefaultTransport).
	Inner http.RoundTripper
	// Schedule is consumed one step per request.
	Schedule []FaultStep

	mu   sync.Mutex
	pos  int
	reqs int
}

// Requests returns how many round trips have been attempted.
func (t *FaultTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqs
}

// Extend appends steps to the schedule (safe while in use — a test can
// keep a converged follower misbehaving).
func (t *FaultTransport) Extend(steps ...FaultStep) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Schedule = append(t.Schedule, steps...)
}

func (t *FaultTransport) next() FaultStep {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqs++
	if t.pos >= len(t.Schedule) {
		return FaultStep{Kind: FaultNone}
	}
	step := t.Schedule[t.pos]
	t.pos++
	return step
}

func (t *FaultTransport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// RoundTrip applies the next scheduled fault.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	step := t.next()
	switch step.Kind {
	case FaultTimeout:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case FaultStatus:
		h := make(http.Header)
		if step.RetryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(step.RetryAfter))
		}
		return &http.Response{
			StatusCode: step.Status,
			Status:     fmt.Sprintf("%d %s", step.Status, http.StatusText(step.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  h,
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}, nil
	case FaultReset:
		return nil, ErrConnReset
	case FaultTruncate, FaultBitFlip:
		resp, err := t.inner().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if step.Kind == FaultTruncate {
			body = body[:len(body)/2]
		} else if len(body) > 0 {
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x20
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	default:
		return t.inner().RoundTrip(req)
	}
}
