// Package remfollow replicates a leader's REM over HTTP and keeps
// serving reads through every failure — the read-replica tier of the
// serving stack. A Follower polls the leader's /delta endpoint (remserve)
// with its current version tag: an unchanged leader costs one 304 header
// exchange, a changed one ships only the tiles that changed (the "REMD"
// delta codec, rem.ApplyDelta), and a leader that no longer retains the
// follower's generation — evicted history, a restarted process — answers
// with a full snapshot the follower resyncs from. Every synced
// generation lands in a local remstore.Store via PublishAt under the
// leader's own version number, so the replica's query responses carry
// the same version fields as the leader's (determinism contract rule 8,
// extended across replicas: at the same version vector, follower bytes ≡
// leader bytes).
//
// The failure posture is graceful degradation, never amplification:
//
//   - Transport failures (timeouts, connection resets, 5xx) back off
//     exponentially with full jitter, capped at BackoffMax.
//   - 429 responses honour the leader's Retry-After exactly instead of
//     the follower's own backoff — the leader knows its budget.
//   - Corrupt payloads (the delta and snapshot codecs both end in a
//     CRC-32 trailer) are rejected and trigger an automatic
//     full-snapshot resync; a corrupt byte can never poison the served
//     map.
//   - MaxFailures consecutive failures force the next sync to refetch
//     the full snapshot rather than keep retrying a delta chain.
//   - The last good snapshot is never dropped: reads keep serving stale
//     data while the leader is away, and the staleness is surfaced —
//     /healthz flips to 503 "stale" past MaxStaleness, /stats reports
//     the last-sync age, consecutive failures and resync count.
package remfollow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rem"
	"repro/internal/remobs"
	"repro/internal/remserve"
	"repro/internal/remstore"
)

// Defaults for the zero Config fields.
const (
	DefaultPoll         = time.Second
	DefaultTimeout      = 10 * time.Second
	DefaultBackoffBase  = 200 * time.Millisecond
	DefaultBackoffMax   = 30 * time.Second
	DefaultMaxFailures  = 5
	DefaultMaxStaleness = 30 * time.Second
)

// Config parameterises a Follower. Leader is required; everything else
// has a serviceable default. The function fields (Now, Sleep, Rand) and
// Client.Transport are the injection points the deterministic fault
// tests drive; production code leaves them nil.
type Config struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.7:8080".
	Leader string
	// Client issues the HTTP requests; nil means a private client (so a
	// custom Transport — including FaultTransport — can be injected
	// without touching http.DefaultClient).
	Client *http.Client
	// Poll is the steady-state interval between syncs (≤ 0 means
	// DefaultPoll).
	Poll time.Duration
	// Timeout bounds one sync request (≤ 0 means DefaultTimeout).
	Timeout time.Duration
	// BackoffBase and BackoffMax shape the failure backoff: after n
	// consecutive failures the sleep is uniform in
	// [0, min(BackoffMax, BackoffBase·2ⁿ⁻¹)] — full jitter, so a fleet
	// of followers does not re-converge on a recovering leader in
	// lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFailures forces a full-snapshot resync after that many
	// consecutive sync failures (≤ 0 means DefaultMaxFailures).
	MaxFailures int
	// MaxStaleness is how long the replica may serve without a
	// successful sync before /healthz reports 503 "stale"
	// (≤ 0 means DefaultMaxStaleness).
	MaxStaleness time.Duration
	// History bounds the local snapshot history (and the generations the
	// replica can itself serve deltas from); ≤ 0 means
	// remstore.DefaultMaxHistory.
	History int
	// Now is the follower clock (nil means time.Now).
	Now func() time.Time
	// Sleep waits between syncs (nil means a timer honouring ctx).
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand yields the jitter fraction in [0, 1) (nil means a seeded
	// private source).
	Rand func() float64
	// Observer, when set, instruments the follower: sync latency and
	// outcomes, staleness and failure gauges, the local store's metrics
	// and the inner HTTP server (which also answers GET /metrics). A
	// follower sharing a process with a leader needs its own Observer —
	// both register rem_store_* names, and func instruments are
	// last-wins.
	Observer *remobs.Observer
}

// generation is the serving (map, leader tag) pair, swapped atomically
// so /snapshot and /delta always see a mutually consistent view.
type generation struct {
	m   *rem.Map
	tag string
}

// SyncStats is the replication telemetry /stats serves (alongside the
// local store's counters).
type SyncStats struct {
	// Leader is the followed base URL.
	Leader string `json:"leader"`
	// Version is the leader version tag of the serving generation
	// ("" before the first sync).
	Version string `json:"version"`
	// LastSyncAgeMS is how long ago the last successful sync finished,
	// in milliseconds (-1 before the first).
	LastSyncAgeMS int64 `json:"last_sync_age_ms"`
	// Stale reports whether the age exceeds MaxStaleness.
	Stale bool `json:"stale"`
	// ConsecutiveFailures counts sync failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent sync failure's message, cleared on
	// the next success — with ConsecutiveFailures, the first thing an
	// operator needs when a follower goes stale.
	LastError string `json:"last_error"`
	// Syncs counts successful syncs (deltas, fulls and 304s).
	Syncs uint64 `json:"syncs"`
	// Deltas, Fulls and NotModified break the successful syncs down by
	// what came over the wire.
	Deltas      uint64 `json:"deltas"`
	Fulls       uint64 `json:"fulls"`
	NotModified uint64 `json:"not_modified"`
	// Failures counts failed syncs; Corrupt the subset rejected by a
	// codec (checksum, truncation); Resyncs the full-snapshot fetches
	// forced by corruption or MaxFailures.
	Failures uint64 `json:"failures"`
	Corrupt  uint64 `json:"corrupt"`
	Resyncs  uint64 `json:"resyncs"`
	// DeltaBytes and FullBytes count payload bytes applied per path —
	// the economics of the delta wire.
	DeltaBytes uint64 `json:"delta_bytes"`
	FullBytes  uint64 `json:"full_bytes"`
}

// Follower mirrors one leader into a local store. Create with New,
// drive with Run (or SyncOnce under a custom loop), serve with
// Handler/Serve. All methods are safe for concurrent use; Run and
// SyncOnce are a single logical writer and must not run concurrently
// with each other.
type Follower struct {
	cfg    Config
	client *http.Client
	store  *remstore.Store
	server *remserve.Server
	o      *followObs

	gen atomic.Pointer[generation]

	mu   sync.Mutex
	gens []*generation
	rng  func() float64

	// Sync state, owned by the sync loop but read by /healthz and
	// /stats.
	stateMu   sync.Mutex
	lastSync  time.Time
	fails     int
	forceFull bool
	stats     SyncStats

	// Listener lifecycle (Serve/Addr/Shutdown).
	srvMu sync.Mutex
	hs    *http.Server
	addr  string
}

// New builds a follower over cfg. The local store is created here and
// owned by the follower; Store exposes it for direct library reads.
func New(cfg Config) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, errors.New("remfollow: config needs a leader URL")
	}
	cfg.Leader = strings.TrimSuffix(cfg.Leader, "/")
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = DefaultMaxStaleness
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	f := &Follower{
		cfg:    cfg,
		client: cfg.Client,
		store:  remstore.New(cfg.History),
		rng:    cfg.Rand,
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.rng == nil {
		f.rng = newJitterSource()
	}
	f.server = remserve.New(followBackend{f}, remserve.Options{Observer: cfg.Observer})
	f.store.SetObserver(cfg.Observer)
	f.initObserver(cfg.Observer)
	f.stats.Leader = cfg.Leader
	f.stats.LastSyncAgeMS = -1
	return f, nil
}

// Store exposes the local snapshot store (library-level reads against
// the replica).
func (f *Follower) Store() *remstore.Store { return f.store }

// sleepCtx is the production sleep: a timer that aborts on ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryAfterError marks a 429 whose Retry-After the loop must honour
// verbatim.
type retryAfterError struct{ after time.Duration }

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("remfollow: leader throttled the follower (retry after %v)", e.after)
}

// corruptError marks a payload a codec rejected — the trigger for an
// automatic full resync.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return "remfollow: corrupt payload: " + e.err.Error() }
func (e *corruptError) Unwrap() error { return e.err }

// Run polls the leader until ctx is cancelled: Poll between successful
// syncs, jittered exponential backoff after failures, the leader's own
// Retry-After verbatim when throttled. It returns ctx's error on
// cancellation — the only way it returns.
func (f *Follower) Run(ctx context.Context) error {
	for {
		err := f.SyncOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var delay time.Duration
		var ra *retryAfterError
		switch {
		case err == nil:
			delay = f.cfg.Poll
		case errors.As(err, &ra):
			delay = ra.after
		default:
			delay = f.backoff()
		}
		if err := f.cfg.Sleep(ctx, delay); err != nil {
			return err
		}
	}
}

// backoff returns the next failure sleep: full jitter over an
// exponentially growing cap. Reads the failure count under stateMu
// (SyncOnce updated it before returning).
func (f *Follower) backoff() time.Duration {
	f.stateMu.Lock()
	n := f.fails
	f.stateMu.Unlock()
	if n < 1 {
		n = 1
	}
	bound := f.cfg.BackoffMax
	if shift := n - 1; shift < 62 && f.cfg.BackoffBase<<shift < bound {
		bound = f.cfg.BackoffBase << shift
	}
	f.mu.Lock()
	r := f.rng()
	f.mu.Unlock()
	return time.Duration(r * float64(bound))
}

// SyncOnce performs one sync against the leader: a delta poll when a
// generation is already held (full fetch otherwise or when forced), and
// an automatic full-snapshot resync if the delta payload is corrupt.
// On failure the serving generation is left untouched — stale reads
// keep working — and the failure is recorded for backoff, /healthz and
// /stats.
func (f *Follower) SyncOnce(ctx context.Context) error {
	start := time.Now()
	f.stateMu.Lock()
	before := f.stats
	f.stateMu.Unlock()
	err := f.syncOnce(ctx)
	f.stateMu.Lock()
	if err != nil {
		f.fails++
		f.stats.Failures++
		f.stats.ConsecutiveFailures = f.fails
		f.stats.LastError = err.Error()
		if f.fails >= f.cfg.MaxFailures {
			// A delta chain that keeps failing is not worth resuming:
			// refetch the whole map next time.
			f.forceFull = true
		}
	} else {
		f.fails = 0
		f.stats.ConsecutiveFailures = 0
		f.stats.LastError = ""
		f.lastSync = f.cfg.Now()
		f.stats.Syncs++
	}
	after := f.stats
	fails := f.fails
	forceFull := f.forceFull
	f.stateMu.Unlock()
	f.observeSync(before, after, err, fails, forceFull, time.Since(start))
	return err
}

func (f *Follower) syncOnce(ctx context.Context) error {
	cur := f.gen.Load()
	f.stateMu.Lock()
	full := f.forceFull || cur == nil
	f.forceFull = false
	f.stateMu.Unlock()
	if full {
		return f.fullSync(ctx)
	}
	body, tag, status, ct, err := f.fetch(ctx, "/delta?from="+cur.tag, cur.tag)
	if err != nil {
		return err
	}
	if status == http.StatusNotModified {
		f.stateMu.Lock()
		f.stats.NotModified++
		f.stateMu.Unlock()
		return nil
	}
	if ct == remserve.DeltaContentType {
		next, err := rem.ApplyDelta(cur.m, body)
		if err != nil {
			// The CRC trailer (or a structural check) rejected the
			// payload; the delta chain is broken, resync from a full
			// snapshot without waiting a round trip.
			f.countCorrupt()
			if ferr := f.fullSync(ctx); ferr != nil {
				return fmt.Errorf("remfollow: resync after corrupt delta: %w", ferr)
			}
			return nil
		}
		if err := f.adopt(next, tag); err != nil {
			return err
		}
		f.stateMu.Lock()
		f.stats.Deltas++
		f.stats.DeltaBytes += uint64(len(body))
		f.stateMu.Unlock()
		return nil
	}
	// The leader no longer retains our base (evicted history or a
	// restart): the /delta response degraded to a full snapshot.
	return f.adoptFull(body, tag)
}

// fullSync fetches and adopts the leader's full snapshot.
func (f *Follower) fullSync(ctx context.Context) error {
	f.stateMu.Lock()
	f.stats.Resyncs++
	f.stateMu.Unlock()
	body, tag, _, _, err := f.fetch(ctx, "/snapshot", "")
	if err != nil {
		return err
	}
	return f.adoptFull(body, tag)
}

// adoptFull decodes a full snapshot body and makes it the serving
// generation.
func (f *Follower) adoptFull(body []byte, tag string) error {
	m, err := rem.ReadFrom(bytes.NewReader(body))
	if err != nil {
		f.countCorrupt()
		return &corruptError{err}
	}
	if err := f.adopt(m, tag); err != nil {
		return err
	}
	f.stateMu.Lock()
	f.stats.Fulls++
	f.stats.FullBytes += uint64(len(body))
	f.stateMu.Unlock()
	return nil
}

func (f *Follower) countCorrupt() {
	f.stateMu.Lock()
	f.stats.Corrupt++
	f.stateMu.Unlock()
}

// adopt publishes a synced generation locally and swaps the serving
// (map, tag) pair. The local version is the leader's map generation
// (rule 8 across replicas); if the leader's numbering moved backwards —
// a restarted leader starts over — the replica keeps its own versions
// strictly increasing and lets the tag carry the leader identity.
func (f *Follower) adopt(m *rem.Map, tag string) error {
	ver := m.Version()
	if cur := f.store.Current(); cur != nil && ver <= cur.Version() {
		ver = cur.Version() + 1
	}
	if ver == 0 {
		ver = 1
	}
	if _, err := f.store.PublishAt(m, len(m.Keys()), ver); err != nil {
		return fmt.Errorf("remfollow: publishing synced generation: %w", err)
	}
	g := &generation{m: m, tag: tag}
	f.gen.Store(g)
	f.mu.Lock()
	f.gens = append(f.gens, g)
	// Bound the tag-addressable history to what the store retains: a
	// generation the store evicted is not worth serving deltas from.
	if max := f.store.Stats().HistoryLen + 1; len(f.gens) > max {
		f.gens = append(f.gens[:0], f.gens[len(f.gens)-max:]...)
	}
	f.mu.Unlock()
	f.stateMu.Lock()
	f.stats.Version = tag
	f.stateMu.Unlock()
	return nil
}

// fetch issues one GET against the leader and returns the body, the
// response's version tag, status and content type. 304 returns early
// with no body; 429 surfaces the leader's Retry-After as a
// retryAfterError; every other non-200 is a plain failure.
func (f *Follower) fetch(ctx context.Context, path, etag string) (body []byte, tag string, status int, ct string, err error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Leader+path, nil)
	if err != nil {
		return nil, "", 0, "", err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", `"`+etag+`"`)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, "", 0, "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotModified:
		return nil, "", resp.StatusCode, "", nil
	case http.StatusTooManyRequests:
		return nil, "", 0, "", &retryAfterError{after: parseRetryAfter(resp.Header.Get("Retry-After"), f.cfg.Poll)}
	default:
		return nil, "", 0, "", fmt.Errorf("remfollow: leader answered %s %s", path, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, "", err
	}
	tag = resp.Header.Get("X-REM-Version")
	if tag == "" {
		tag = strings.Trim(resp.Header.Get("ETag"), `"`)
	}
	if tag == "" {
		return nil, "", 0, "", fmt.Errorf("remfollow: leader response carries no version tag")
	}
	return body, tag, resp.StatusCode, resp.Header.Get("Content-Type"), nil
}

// parseRetryAfter reads a Retry-After value in delta-seconds (the form
// remserve emits); anything else falls back to def.
func parseRetryAfter(v string, def time.Duration) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return def
}

// newJitterSource returns a cheap deterministic-free float source for
// backoff jitter without importing math/rand into the hot path
// (splitmix64 over a time seed).
func newJitterSource() func() float64 {
	state := uint64(time.Now().UnixNano())
	return func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
}
