package remfollow

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/remobs"
)

// TestFollowerObserver drives full, delta, 304 and failing syncs
// through an instrumented follower and asserts the follower serves a
// valid /metrics of its own with the sync counters, staleness gauge and
// consecutive-failure gauge moving, and that the event ring names each
// outcome.
func TestFollowerObserver(t *testing.T) {
	h := newLeader(t, 4, 2)
	h.round()
	obs := remobs.New(0)
	f := newFollower(t, h, nil, func(c *Config) { c.Observer = obs })
	ctx := context.Background()

	if err := f.SyncOnce(ctx); err != nil { // full
		t.Fatal(err)
	}
	h.round()
	if err := f.SyncOnce(ctx); err != nil { // delta
		t.Fatal(err)
	}
	if err := f.SyncOnce(ctx); err != nil { // 304
		t.Fatal(err)
	}
	h.srv.Close() // leader away: transport failure
	if err := f.SyncOnce(ctx); err == nil {
		t.Fatal("sync against a closed leader succeeded")
	}

	// The follower serves its own /metrics through the inner server.
	fsrv := httptest.NewServer(f)
	defer fsrv.Close()
	status, hdr, body := getBody(t, fsrv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics on follower: status %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("follower /metrics Content-Type %q", ct)
	}
	if err := remobs.CheckExposition(body); err != nil {
		t.Fatalf("follower exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"rem_follow_syncs_total 3",
		"rem_follow_fulls_total 1",
		"rem_follow_deltas_total 1",
		"rem_follow_not_modified_total 1",
		"rem_follow_failures_total 1",
		"rem_follow_consecutive_failures 1",
		"rem_follow_sync_seconds_count 4",
		// The replica's local store is on the same registry.
		"rem_store_publishes_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("follower scrape missing %q:\n%s", want, text)
		}
	}
	if v, ok := sampleFloat(text, "rem_follow_staleness_seconds"); !ok || v < 0 {
		t.Errorf("staleness gauge = %g ok=%v, want ≥ 0 after a sync", v, ok)
	}

	var kinds []string
	for _, e := range obs.Events.Snapshot() {
		if e.Kind == "sync" {
			kinds = append(kinds, firstField(e.Text))
		}
	}
	want := []string{"ok", "ok", "ok", "fail"}
	if len(kinds) != len(want) {
		t.Fatalf("sync events %v, want %d", kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("sync event %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

// TestFollowerStalenessGaugeAges pins that the staleness gauge tracks a
// fake clock: -1 before the first sync, then exactly the time since the
// last success.
func TestFollowerStalenessGaugeAges(t *testing.T) {
	h := newLeader(t, 3, 1)
	h.round()
	obs := remobs.New(0)
	now := time.Unix(1000, 0)
	f := newFollower(t, h, nil, func(c *Config) {
		c.Observer = obs
		c.Now = func() time.Time { return now }
	})
	if v, ok := sampleFloat(string(obs.Registry.AppendPrometheus(nil)), "rem_follow_staleness_seconds"); !ok || v != -1 {
		t.Fatalf("staleness before first sync = %g ok=%v, want -1", v, ok)
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	now = now.Add(42 * time.Second)
	if v, _ := sampleFloat(string(obs.Registry.AppendPrometheus(nil)), "rem_follow_staleness_seconds"); v != 42 {
		t.Fatalf("staleness after 42s = %g, want 42", v)
	}
}

// getBody is a tiny GET helper (the main test file's helpers are
// byte-comparison oriented).
func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header, body
}

// sampleFloat extracts one sample's value from exposition text.
func sampleFloat(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// firstField returns the first space-separated token of an event text.
func firstField(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}
