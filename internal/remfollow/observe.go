package remfollow

import (
	"time"

	"repro/internal/remobs"
)

// followObs is the follower's instrument set; nil means
// uninstrumented. The sync tallies SyncStats already keeps are bridged
// as scrape-time funcs (no double counting); only the sync-latency
// histogram and the event ring add work, once per sync.
type followObs struct {
	obs      *remobs.Observer
	syncHist *remobs.Histogram
}

// initObserver registers the follower's metrics with cfg.Observer.
// Called from New; the same observer also flows into the inner
// remserve.Server (GET /metrics, per-endpoint counters) and the local
// store (publish latency, cover-index gauges), so one scrape of the
// replica carries the whole stack.
func (f *Follower) initObserver(obs *remobs.Observer) {
	if obs == nil || obs.Registry == nil {
		return
	}
	reg := obs.Registry
	f.o = &followObs{
		obs: obs,
		syncHist: reg.Histogram("rem_follow_sync_seconds",
			"one leader sync attempt (delta poll or full fetch), success or failure"),
	}
	reg.GaugeFunc("rem_follow_staleness_seconds",
		"age of the last successful sync (-1 before the first)",
		func() float64 {
			f.stateMu.Lock()
			last := f.lastSync
			f.stateMu.Unlock()
			if last.IsZero() {
				return -1
			}
			return f.cfg.Now().Sub(last).Seconds()
		})
	reg.GaugeFunc("rem_follow_consecutive_failures",
		"sync failures since the last success",
		func() float64 {
			f.stateMu.Lock()
			defer f.stateMu.Unlock()
			return float64(f.fails)
		})
	stat := func(pick func(SyncStats) uint64) func() float64 {
		return func() float64 {
			f.stateMu.Lock()
			defer f.stateMu.Unlock()
			return float64(pick(f.stats))
		}
	}
	reg.CounterFunc("rem_follow_syncs_total", "successful syncs (deltas, fulls and 304s)",
		stat(func(s SyncStats) uint64 { return s.Syncs }))
	reg.CounterFunc("rem_follow_failures_total", "failed syncs",
		stat(func(s SyncStats) uint64 { return s.Failures }))
	reg.CounterFunc("rem_follow_deltas_total", "syncs applied from the REMD delta wire",
		stat(func(s SyncStats) uint64 { return s.Deltas }))
	reg.CounterFunc("rem_follow_fulls_total", "syncs applied from full snapshots",
		stat(func(s SyncStats) uint64 { return s.Fulls }))
	reg.CounterFunc("rem_follow_not_modified_total", "304 polls (already current)",
		stat(func(s SyncStats) uint64 { return s.NotModified }))
	reg.CounterFunc("rem_follow_resyncs_total", "full resyncs forced by corruption or MaxFailures",
		stat(func(s SyncStats) uint64 { return s.Resyncs }))
	reg.CounterFunc("rem_follow_delta_bytes_total", "payload bytes applied over the delta path",
		stat(func(s SyncStats) uint64 { return s.DeltaBytes }))
	reg.CounterFunc("rem_follow_full_bytes_total", "payload bytes applied over the full path",
		stat(func(s SyncStats) uint64 { return s.FullBytes }))
}

// observeSync records one sync attempt: the latency histogram and a
// lifecycle event naming what came over the wire (derived from the
// stats delta — the counters themselves are bridged, not re-counted)
// and the backoff state a failure leaves behind.
func (f *Follower) observeSync(before, after SyncStats, err error, fails int, forceFull bool, d time.Duration) {
	o := f.o
	if o == nil {
		return
	}
	o.syncHist.Observe(d)
	if err != nil {
		o.obs.Event("sync", "fail #%d force_full=%v took=%s err=%v",
			fails, forceFull, d.Round(time.Millisecond), err)
		return
	}
	kind := "noop"
	switch {
	case after.Deltas > before.Deltas:
		kind = "delta"
	case after.Fulls > before.Fulls:
		kind = "full"
	case after.NotModified > before.NotModified:
		kind = "not-modified"
	}
	o.obs.Event("sync", "ok kind=%s version=%s bytes=%d took=%s",
		kind, after.Version,
		(after.DeltaBytes-before.DeltaBytes)+(after.FullBytes-before.FullBytes),
		d.Round(time.Millisecond))
}
