package remfollow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remserve"
	"repro/internal/remshard"
)

var testVol = geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)

const (
	testNX = 8
	testNY = 6
	testNZ = 4
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("AA:BB:00:00:00:%02X", i)
	}
	return keys
}

func allDirty(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// leaderHarness is an in-process leader: a sharded store behind a real
// remserve HTTP server, with a generation-counting predictor so every
// round produces a genuinely new field, and a record of every merged
// generation's snapshot bytes — the ground truth the "never serves a
// non-leader generation" invariant checks against.
type leaderHarness struct {
	t     *testing.T
	keys  []string
	ss    *remshard.ShardedStore
	srv   *httptest.Server
	gen   int
	bytes [][]byte // codec bytes of every generation ever served
}

func newLeader(t *testing.T, nKeys, shards int) *leaderHarness {
	t.Helper()
	keys := testKeys(nKeys)
	ss, err := remshard.New(keys, remshard.Config{
		Shards: shards, Volume: testVol, Resolution: [3]int{testNX, testNY, testNZ},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &leaderHarness{t: t, keys: keys, ss: ss}
	h.srv = httptest.NewServer(remserve.NewSharded(ss, remserve.Options{}))
	t.Cleanup(h.srv.Close)
	return h
}

func (h *leaderHarness) predict(centers []geom.Vec3, gi int) ([]float64, error) {
	out := make([]float64, len(centers))
	g := float64(h.gen)
	for i, p := range centers {
		out[i] = -55 - p.X*float64(1+gi%3) - 2*p.Y + p.Z - float64(gi) - 3*g
	}
	return out, nil
}

// round advances every key one generation (uniform version vectors, so
// the merged map version advances every round).
func (h *leaderHarness) round() {
	h.t.Helper()
	h.gen++
	if _, err := h.ss.Rebuild(allDirty(len(h.keys)), h.predict, rem.BuildOptions{}); err != nil {
		h.t.Fatal(err)
	}
	m, err := h.ss.MergedSnapshot()
	if err != nil {
		h.t.Fatal(err)
	}
	h.bytes = append(h.bytes, snapshotBytes(h.t, m))
}

func snapshotBytes(t *testing.T, m *rem.Map) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newFollower builds a follower of h with deterministic time/jitter and
// an optional fault transport.
func newFollower(t *testing.T, h *leaderHarness, ft *FaultTransport, mut func(*Config)) *Follower {
	t.Helper()
	cfg := Config{
		Leader: h.srv.URL,
		Rand:   func() float64 { return 0.5 },
	}
	if ft != nil {
		ft.Inner = h.srv.Client().Transport
		cfg.Client = &http.Client{Transport: ft}
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// followerBytes renders the follower's serving generation through the
// snapshot codec.
func followerBytes(t *testing.T, f *Follower) []byte {
	t.Helper()
	g := f.gen.Load()
	if g == nil {
		t.Fatal("follower serves nothing")
	}
	return snapshotBytes(t, g.m)
}

// assertServesLeaderGeneration pins the robustness invariant: whatever
// the follower serves is bit-identical to SOME generation the leader
// actually published — corrupt and truncated payloads must never leak
// into the serving path.
func assertServesLeaderGeneration(t *testing.T, h *leaderHarness, f *Follower) {
	t.Helper()
	got := followerBytes(t, f)
	for _, b := range h.bytes {
		if bytes.Equal(got, b) {
			return
		}
	}
	t.Fatal("follower serves bytes matching no leader generation")
}

// TestFollowerMirrorsLeader: first sync is a full snapshot, later syncs
// ride the delta wire, an unchanged leader costs a 304 — and after every
// sync the follower's bytes equal the leader's current bytes.
func TestFollowerMirrorsLeader(t *testing.T) {
	h := newLeader(t, 9, 2)
	h.round()
	f := newFollower(t, h, nil, nil)
	ctx := context.Background()

	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(followerBytes(t, f), h.bytes[len(h.bytes)-1]) {
		t.Fatal("follower differs after full sync")
	}
	if s := f.SyncStats(); s.Fulls != 1 || s.Deltas != 0 {
		t.Fatalf("stats after first sync: %+v", s)
	}

	// Unchanged leader: a 304, no bytes.
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if s := f.SyncStats(); s.NotModified != 1 {
		t.Fatalf("stats after idle sync: %+v", s)
	}

	// Changed leader: the delta path, cheaper than the full codec.
	for i := 0; i < 3; i++ {
		h.round()
		if err := f.SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(followerBytes(t, f), h.bytes[len(h.bytes)-1]) {
			t.Fatalf("follower differs after delta sync %d", i)
		}
	}
	s := f.SyncStats()
	if s.Deltas != 3 || s.Fulls != 1 {
		t.Fatalf("stats after delta syncs: %+v", s)
	}
	if s.DeltaBytes == 0 || s.FullBytes == 0 {
		t.Fatalf("byte counters not tracked: %+v", s)
	}
}

// TestRule8Replica pins the acceptance identity: for shard counts 1, 2
// and 4, the follower's /at, /strongest and /snapshot responses are
// byte-identical to the leader's at the same version vector — version
// fields included.
func TestRule8Replica(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			h := newLeader(t, 9, shards)
			h.round()
			h.round()
			f := newFollower(t, h, nil, nil)
			if err := f.SyncOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
			h.round()
			if err := f.SyncOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
			fsrv := httptest.NewServer(f)
			defer fsrv.Close()

			paths := []string{
				"/snapshot",
				"/version",
				"/strongest?x=2&y=1.5&z=1.3",
				"/strongest?x=0.3&y=2.9&z=0.1",
			}
			for _, k := range h.keys {
				paths = append(paths, "/at?key="+k+"&x=1&y=1&z=1", "/at?key="+k+"&x=3.7&y=0.2&z=2.2")
			}
			for _, path := range paths {
				ls, lh, lb := get(t, h.srv.URL+path)
				fs, fh, fb := get(t, fsrv.URL+path)
				if ls != fs || !bytes.Equal(lb, fb) {
					t.Fatalf("%s: leader %d %q, follower %d %q", path, ls, lb, fs, fb)
				}
				if path == "/snapshot" && lh.Get("ETag") != fh.Get("ETag") {
					t.Fatalf("/snapshot ETag: leader %q, follower %q", lh.Get("ETag"), fh.Get("ETag"))
				}
			}
		})
	}
}

// TestFollowerCoverIndex: the replica's serving map carries a coverage
// index after both sync paths — the full-snapshot first sync (publish
// builds it) and delta syncs (ApplyDelta mends the previous index) —
// and the indexed answers match the brute scan bit for bit (rule 9 at
// the replica). POST /strongest on the replica front matches the
// leader's batch answers.
func TestFollowerCoverIndex(t *testing.T) {
	h := newLeader(t, 9, 2)
	h.round()
	f := newFollower(t, h, nil, nil)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	pts := []geom.Vec3{
		geom.V(2, 1.5, 1.3), geom.V(0, 0, 0), geom.V(4, 3, 2.6), geom.V(0.7, 2.1, 0.4),
	}
	checkIndexed := func(stage string) {
		t.Helper()
		g := f.gen.Load()
		if g == nil {
			t.Fatalf("%s: follower serves nothing", stage)
		}
		if !g.m.HasCoverIndex() {
			t.Fatalf("%s: serving map has no coverage index", stage)
		}
		for _, p := range pts {
			ik, iv := g.m.Strongest(p)
			bk, bv := g.m.StrongestBrute(p)
			if ik != bk || iv != bv {
				t.Fatalf("%s: indexed (%q, %v) != brute (%q, %v) at %v", stage, ik, iv, bk, bv, p)
			}
		}
	}
	checkIndexed("after full sync")
	for i := 0; i < 3; i++ {
		h.round()
		if err := f.SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
		checkIndexed(fmt.Sprintf("after delta sync %d", i))
	}
	if s := f.SyncStats(); s.Deltas == 0 {
		t.Fatalf("no delta syncs happened: %+v", s)
	}

	// The replica's batch endpoint answers byte-identically to the
	// leader's.
	fsrv := httptest.NewServer(f)
	defer fsrv.Close()
	body := `{"points":[[2,1.5,1.3],[0,0,0],[4,3,2.6],[0.7,2.1,0.4]]}`
	lreq, _ := http.NewRequest(http.MethodPost, h.srv.URL+"/strongest", strings.NewReader(body))
	lreq.Header.Set("Content-Type", "application/json")
	lr, err := http.DefaultClient.Do(lreq)
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	freq, _ := http.NewRequest(http.MethodPost, fsrv.URL+"/strongest", strings.NewReader(body))
	freq.Header.Set("Content-Type", "application/json")
	fr, err := http.DefaultClient.Do(freq)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := io.ReadAll(fr.Body)
	fr.Body.Close()
	if lr.StatusCode != 200 || fr.StatusCode != 200 {
		t.Fatalf("POST /strongest: leader %d, follower %d", lr.StatusCode, fr.StatusCode)
	}
	// The leader is sharded (version 0), the follower monolithic under
	// the leader's tag — strip the version field before comparing.
	trim := func(b []byte) string {
		s := string(b)
		if i := strings.LastIndex(s, `,"version":`); i >= 0 {
			return s[:i]
		}
		return s
	}
	if trim(lb) != trim(fb) {
		t.Fatalf("batch strongest: leader %s, follower %s", lb, fb)
	}
}

func get(t testing.TB, url string) (int, http.Header, []byte) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header, body
}

// TestFaultMatrix drives every fault class through a sync and checks
// the two robustness invariants: the fault never changes what the
// follower serves (still some real leader generation), and once the
// fault clears the follower converges to the leader's current bytes.
func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		step FaultStep
		// wantErr: the faulted sync must surface an error (timeouts,
		// resets, 5xx). Corrupt-payload faults instead recover within the
		// sync via auto-resync.
		wantErr bool
	}{
		{"timeout", FaultStep{Kind: FaultTimeout}, true},
		{"http500", FaultStep{Kind: FaultStatus, Status: 500}, true},
		{"http503", FaultStep{Kind: FaultStatus, Status: 503}, true},
		{"reset", FaultStep{Kind: FaultReset}, true},
		{"truncate", FaultStep{Kind: FaultTruncate}, false},
		{"bitflip", FaultStep{Kind: FaultBitFlip}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newLeader(t, 6, 2)
			h.round()
			ft := &FaultTransport{}
			f := newFollower(t, h, ft, func(c *Config) {
				c.Timeout = 50 * time.Millisecond
			})
			ctx := context.Background()
			if err := f.SyncOnce(ctx); err != nil {
				t.Fatal(err)
			}
			before := followerBytes(t, f)

			// Fault the next leader round's delta fetch. Corrupt-payload
			// faults hit the delta and the auto-resync full fetch both —
			// the recovery path itself must reject damaged bytes.
			h.round()
			if tc.wantErr {
				ft.Extend(tc.step)
				if err := f.SyncOnce(ctx); err == nil {
					t.Fatal("faulted sync reported success")
				}
				if !bytes.Equal(followerBytes(t, f), before) {
					t.Fatal("failed sync changed the serving generation")
				}
			} else {
				ft.Extend(tc.step, tc.step)
				if err := f.SyncOnce(ctx); err == nil {
					t.Fatal("doubly-corrupt sync reported success")
				}
				assertServesLeaderGeneration(t, h, f)
				if s := f.SyncStats(); s.Corrupt == 0 {
					t.Fatalf("corruption not counted: %+v", s)
				}
			}
			assertServesLeaderGeneration(t, h, f)

			// Fault cleared: convergence to the leader's current bytes.
			if err := f.SyncOnce(ctx); err != nil {
				t.Fatalf("post-fault sync: %v", err)
			}
			if !bytes.Equal(followerBytes(t, f), h.bytes[len(h.bytes)-1]) {
				t.Fatal("follower did not converge after the fault cleared")
			}
		})
	}
}

// TestCorruptDeltaAutoResync: a single corrupt delta is healed inside
// one SyncOnce — the CRC rejects it, the follower refetches the full
// snapshot, and the sync still succeeds.
func TestCorruptDeltaAutoResync(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	ft := &FaultTransport{}
	f := newFollower(t, h, ft, nil)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	h.round()
	ft.Extend(FaultStep{Kind: FaultBitFlip}) // delta corrupt, full fetch clean
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatalf("auto-resync did not heal a corrupt delta: %v", err)
	}
	if !bytes.Equal(followerBytes(t, f), h.bytes[len(h.bytes)-1]) {
		t.Fatal("follower did not converge via resync")
	}
	s := f.SyncStats()
	if s.Corrupt != 1 || s.Resyncs < 1 {
		t.Fatalf("resync telemetry: %+v", s)
	}
}

// TestMaxFailuresForcesFullResync: after MaxFailures consecutive
// failures the next successful sync refetches the full snapshot rather
// than resuming the delta chain.
func TestMaxFailuresForcesFullResync(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	ft := &FaultTransport{}
	f := newFollower(t, h, ft, func(c *Config) { c.MaxFailures = 2 })
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	fulls := f.SyncStats().Fulls
	ft.Extend(FaultStep{Kind: FaultReset}, FaultStep{Kind: FaultReset})
	for i := 0; i < 2; i++ {
		if err := f.SyncOnce(ctx); err == nil {
			t.Fatal("faulted sync reported success")
		}
	}
	h.round()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if s := f.SyncStats(); s.Fulls != fulls+1 {
		t.Fatalf("expected a forced full resync, stats %+v", s)
	}
	if !bytes.Equal(followerBytes(t, f), h.bytes[len(h.bytes)-1]) {
		t.Fatal("follower did not converge after forced resync")
	}
}

// TestRetryAfterHonoured: a 429 with Retry-After makes the Run loop
// sleep exactly the leader's figure — not the follower's own backoff —
// while ordinary failures use jittered backoff. The clock and sleep are
// injected, so the test is deterministic and instant.
func TestRetryAfterHonoured(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	ft := &FaultTransport{}
	var sleeps []time.Duration
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := newFollower(t, h, ft, func(c *Config) {
		c.BackoffBase = time.Second
		c.BackoffMax = 8 * time.Second
		c.Rand = func() float64 { return 1 } // jitter at the cap, deterministic
		c.Sleep = func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			if len(sleeps) >= 4 {
				cancel()
				return context.Canceled
			}
			return nil
		}
	})
	// Sync 1 clean (poll sleep), sync 2 throttled (Retry-After sleep),
	// sync 3 reset (backoff sleep), sync 4 clean (poll sleep again).
	ft.Extend(
		FaultStep{Kind: FaultNone},
		FaultStep{Kind: FaultStatus, Status: 429, RetryAfter: 7},
		FaultStep{Kind: FaultReset},
	)
	go func() {
		f.Run(ctx)
		close(done)
	}()
	<-done
	want := []time.Duration{
		f.cfg.Poll,      // clean sync
		7 * time.Second, // the leader's Retry-After, verbatim
		2 * time.Second, // own backoff: the throttle was failure 1, so base × 2¹ × jitter(1)
		f.cfg.Poll,      // recovered
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v", sleeps)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, sleeps[i], want[i], sleeps)
		}
	}
}

// TestBackoffGrowsAndCaps: repeated failures double the jittered bound
// up to BackoffMax.
func TestBackoffGrowsAndCaps(t *testing.T) {
	h := newLeader(t, 6, 1)
	h.round()
	f := newFollower(t, h, nil, func(c *Config) {
		c.BackoffBase = time.Second
		c.BackoffMax = 10 * time.Second
		c.Rand = func() float64 { return 1 }
	})
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	for i, w := range want {
		f.stateMu.Lock()
		f.fails = i + 1
		f.stateMu.Unlock()
		if got := f.backoff(); got != w {
			t.Fatalf("backoff after %d failures = %v, want %v", i+1, got, w)
		}
	}
}

// TestStaleHealthz: the replica serves stale reads forever but says so —
// /healthz flips to 503 "stale" once the last sync is older than
// MaxStaleness, and recovers to 200 after the next successful sync.
func TestStaleHealthz(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	now := time.Unix(1000, 0)
	var nowMu atomic.Int64
	nowMu.Store(now.UnixNano())
	f := newFollower(t, h, nil, func(c *Config) {
		c.MaxStaleness = 10 * time.Second
		c.Now = func() time.Time { return time.Unix(0, nowMu.Load()) }
	})
	srv := httptest.NewServer(f)
	defer srv.Close()

	// Before the first sync: empty, 503.
	if status, _, body := get(t, srv.URL+"/healthz"); status != 503 || !strings.Contains(string(body), `"empty"`) {
		t.Fatalf("pre-sync healthz: %d %q", status, body)
	}
	// Queries 503 too — nothing to serve yet.
	if status, _, _ := get(t, srv.URL+"/at?key="+h.keys[0]+"&x=1&y=1"); status != 503 {
		t.Fatal("pre-sync query did not 503")
	}

	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, _, body := get(t, srv.URL+"/healthz"); status != 200 || !strings.Contains(string(body), `"serving"`) {
		t.Fatalf("fresh healthz: %d %q", status, body)
	}

	// Cross the staleness bound: 503 "stale", but reads still serve.
	nowMu.Store(now.Add(11 * time.Second).UnixNano())
	status, _, body := get(t, srv.URL+"/healthz")
	if status != 503 || !strings.Contains(string(body), `"stale"`) {
		t.Fatalf("stale healthz: %d %q", status, body)
	}
	if !strings.Contains(string(body), `"last_sync_age_ms":11000`) {
		t.Fatalf("stale healthz body lacks age: %q", body)
	}
	if status, _, _ := get(t, srv.URL+"/at?key="+h.keys[0]+"&x=1&y=1"); status != 200 {
		t.Fatal("stale replica stopped serving reads")
	}

	// A successful sync makes it fresh again.
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := get(t, srv.URL+"/healthz"); status != 200 {
		t.Fatal("healthz did not recover after sync")
	}
	// /stats carries the sync telemetry.
	if _, _, body := get(t, srv.URL+"/stats"); !strings.Contains(string(body), `"sync"`) || !strings.Contains(string(body), `"leader"`) {
		t.Fatalf("stats body: %q", body)
	}
}

// TestLeaderRestartResync: a leader that comes back with fresh state
// (history gone, version numbering restarted) cannot serve the
// follower's delta base — the /delta fallback full snapshot resyncs the
// follower, and its local versions keep increasing.
func TestLeaderRestartResync(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	h.round()
	h.round()
	f := newFollower(t, h, nil, nil)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	verBefore := f.Store().Current().Version()

	// "Restart" the leader: a fresh store at generation 1 behind the same
	// address (the harness swaps the handler in place).
	h2 := newLeader(t, 6, 2)
	h2.gen = 7 // different field than h's generation 1
	h2.round()
	h.srv.Config.Handler = remserve.NewSharded(h2.ss, remserve.Options{})

	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(followerBytes(t, f), h2.bytes[len(h2.bytes)-1]) {
		t.Fatal("follower did not resync to the restarted leader")
	}
	if v := f.Store().Current().Version(); v <= verBefore {
		t.Fatalf("local version went backwards: %d after %d", v, verBefore)
	}
	if s := f.SyncStats(); s.Fulls < 2 {
		t.Fatalf("restart did not force a full sync: %+v", s)
	}
}

// TestFollowerServesDeltas: chained replication — a second-tier client
// can fetch a delta from the follower itself.
func TestFollowerServesDeltas(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	f := newFollower(t, h, nil, nil)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	firstTag := f.gen.Load().tag
	firstMap := f.gen.Load().m
	h.round()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f)
	defer srv.Close()
	status, hdr, body := get(t, srv.URL+"/delta?from="+firstTag)
	if status != 200 || hdr.Get("Content-Type") != remserve.DeltaContentType {
		t.Fatalf("follower delta: %d %q", status, hdr.Get("Content-Type"))
	}
	applied, err := rem.ApplyDelta(firstMap, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, applied), h.bytes[len(h.bytes)-1]) {
		t.Fatal("delta served by the follower does not reproduce the leader generation")
	}
}

// TestConfigValidation: a leader URL is required; everything else
// defaults.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("config without a leader accepted")
	}
	f, err := New(Config{Leader: "http://localhost:1/"})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.Poll != DefaultPoll || f.cfg.MaxFailures != DefaultMaxFailures || f.cfg.MaxStaleness != DefaultMaxStaleness {
		t.Fatalf("defaults not applied: %+v", f.cfg)
	}
	if f.cfg.Leader != "http://localhost:1" {
		t.Fatalf("trailing slash kept: %q", f.cfg.Leader)
	}
}

// TestConcurrentReadsDuringSync hammers the replica with readers while
// the sync loop keeps adopting new generations — the atomic generation
// swap and the store publish path must hold up under the race detector,
// and every response must be internally consistent (a /snapshot body
// that matches its own ETag's generation).
func TestConcurrentReadsDuringSync(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	f := newFollower(t, h, nil, nil)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f)
	defer srv.Close()

	// The harness appends to h.bytes on every round while the readers
	// scan it — serialise access so the test itself is race-free.
	var mu sync.Mutex
	leaderGens := func() [][]byte {
		mu.Lock()
		defer mu.Unlock()
		return h.bytes[:len(h.bytes):len(h.bytes)]
	}

	// fetch is get() without testing.T — t.Fatal must not be called from
	// a reader goroutine.
	fetch := func(url string) (int, string, []byte, error) {
		r, err := http.Get(url)
		if err != nil {
			return 0, "", nil, err
		}
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, r.Header.Get("ETag"), body, err
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func() {
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				status, _, body, err := fetch(srv.URL + "/snapshot")
				if err != nil || status != 200 {
					errs <- fmt.Errorf("/snapshot status %d err %v", status, err)
					return
				}
				m, err := rem.ReadFrom(bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("torn snapshot: %v", err)
					return
				}
				var buf bytes.Buffer
				if _, err := m.WriteTo(&buf); err != nil {
					errs <- err
					return
				}
				found := false
				for _, lb := range leaderGens() {
					if bytes.Equal(buf.Bytes(), lb) {
						found = true
						break
					}
				}
				if !found {
					errs <- fmt.Errorf("served bytes match no leader generation")
					return
				}
				if status, _, _, err := fetch(srv.URL + "/at?key=" + h.keys[0] + "&x=1&y=1"); err != nil || status != 200 {
					errs <- fmt.Errorf("/at status %d err %v", status, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		mu.Lock()
		h.round()
		mu.Unlock()
		if err := f.SyncOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for w := 0; w < 4; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsSurfacesFailureDetail pins the operator telemetry satellite:
// /stats carries the consecutive-failure count and the last sync
// error's message while a follower is failing, and clears both on the
// next success.
func TestStatsSurfacesFailureDetail(t *testing.T) {
	h := newLeader(t, 6, 2)
	h.round()
	ft := &FaultTransport{}
	f := newFollower(t, h, ft, nil)
	fsrv := httptest.NewServer(f)
	defer fsrv.Close()
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	fetchStats := func() (int, string) {
		t.Helper()
		resp, err := http.Get(fsrv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Sync struct {
				ConsecutiveFailures int    `json:"consecutive_failures"`
				LastError           string `json:"last_error"`
			} `json:"sync"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Sync.ConsecutiveFailures, body.Sync.LastError
	}

	if fails, lastErr := fetchStats(); fails != 0 || lastErr != "" {
		t.Fatalf("healthy follower: consecutive_failures %d last_error %q", fails, lastErr)
	}

	ft.Extend(FaultStep{Kind: FaultStatus, Status: 500}, FaultStep{Kind: FaultReset})
	var want string
	for i := 1; i <= 2; i++ {
		err := f.SyncOnce(ctx)
		if err == nil {
			t.Fatal("faulted sync reported success")
		}
		want = err.Error()
		if fails, lastErr := fetchStats(); fails != i || lastErr != want {
			t.Fatalf("after %d failures: consecutive_failures %d last_error %q, want %d %q",
				i, fails, lastErr, i, want)
		}
	}

	h.round()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if fails, lastErr := fetchStats(); fails != 0 || lastErr != "" {
		t.Fatalf("recovered follower: consecutive_failures %d last_error %q", fails, lastErr)
	}
}
