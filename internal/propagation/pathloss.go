// Package propagation implements the 2.4 GHz indoor radio channel the REM
// samples: deterministic path-loss models (free-space, log-distance, ITU
// indoor, multi-wall), spatially correlated log-normal shadowing, and Rician
// small-scale fading. The composite Channel produces the RSS a receiver at a
// 3-D position observes from a transmitter, which is what the UAV-carried
// scanner measures and the ML stage later predicts.
package propagation

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/simrand"
)

// minDistance floors link distances to avoid the near-field singularity of
// log-distance models.
const minDistance = 0.1

// PathLoss converts a transmitter→receiver geometry to a deterministic loss
// in dB (excluding shadowing and fading).
type PathLoss interface {
	// LossDB returns the path loss for a link from tx to rx.
	LossDB(tx, rx geom.Vec3) float64
}

// FreeSpace is the Friis free-space path-loss model.
type FreeSpace struct {
	// FreqMHz is the carrier frequency in MHz.
	FreqMHz float64
}

var _ PathLoss = FreeSpace{}

// LossDB implements PathLoss: 20·log10(d) + 20·log10(f) − 27.55 (d in m,
// f in MHz).
func (m FreeSpace) LossDB(tx, rx geom.Vec3) float64 {
	d := math.Max(tx.Dist(rx), minDistance)
	return 20*math.Log10(d) + 20*math.Log10(m.FreqMHz) - 27.55
}

// LogDistance is the classic log-distance model: PL(d) = PL0 + 10·n·log10(d/d0).
type LogDistance struct {
	// PL0 is the reference loss in dB at distance D0.
	PL0 float64
	// D0 is the reference distance in metres.
	D0 float64
	// Exponent is the path-loss exponent n (≈1.6–1.8 line-of-sight indoor,
	// 2.0 free space, 3–5 obstructed).
	Exponent float64
}

var _ PathLoss = LogDistance{}

// LossDB implements PathLoss.
func (m LogDistance) LossDB(tx, rx geom.Vec3) float64 {
	d := math.Max(tx.Dist(rx), minDistance)
	d0 := m.D0
	if d0 <= 0 {
		d0 = 1
	}
	return m.PL0 + 10*m.Exponent*math.Log10(d/d0)
}

// ReferenceLossDB returns the free-space loss at 1 m for the given carrier,
// the usual PL0 choice for log-distance models.
func ReferenceLossDB(freqMHz float64) float64 {
	return 20*math.Log10(freqMHz) - 27.55
}

// ITUIndoor is the ITU-R P.1238 indoor model:
// PL = 20·log10(f) + N·log10(d) + Pf(n) − 28, with f in MHz, d in m.
type ITUIndoor struct {
	// FreqMHz is the carrier frequency in MHz.
	FreqMHz float64
	// N is the distance power-loss coefficient (≈28–30 residential 2.4 GHz).
	N float64
	// FloorPenetrationDB is the floor-penetration term Pf for the number of
	// floors between the endpoints; callers using the multi-wall model
	// usually leave this zero and let the wall model count floors.
	FloorPenetrationDB float64
}

var _ PathLoss = ITUIndoor{}

// LossDB implements PathLoss.
func (m ITUIndoor) LossDB(tx, rx geom.Vec3) float64 {
	d := math.Max(tx.Dist(rx), minDistance)
	return 20*math.Log10(m.FreqMHz) + m.N*math.Log10(d) + m.FloorPenetrationDB - 28
}

// MultiWall is the COST-231 multi-wall model: a base (usually free-space or
// low-exponent log-distance) loss plus per-crossing wall and floor losses
// from the environment geometry.
type MultiWall struct {
	// Base is the unobstructed in-room loss model.
	Base PathLoss
	// Env supplies wall/floor crossing counts and losses.
	Env *floorplan.Environment
}

var _ PathLoss = MultiWall{}

// LossDB implements PathLoss.
func (m MultiWall) LossDB(tx, rx geom.Vec3) float64 {
	loss := m.Base.LossDB(tx, rx)
	if m.Env != nil {
		loss += m.Env.ObstructionLossDB(tx, rx)
	}
	return loss
}

// Config assembles a composite Channel.
type Config struct {
	// PathLoss is the deterministic loss model.
	PathLoss PathLoss
	// ShadowSigmaDB is the log-normal shadowing standard deviation; 0
	// disables shadowing.
	ShadowSigmaDB float64
	// ShadowDecorrelationM is the shadowing decorrelation distance in
	// metres (Gudmundson model).
	ShadowDecorrelationM float64
	// RicianKdB is the Rician K-factor in dB for small-scale fading; use
	// NaN or call WithoutFading to disable. K→∞ approaches no fading.
	RicianKdB float64
	// FadingEnabled toggles small-scale fading.
	FadingEnabled bool
	// Seed derives the shadowing field and fading streams.
	Seed uint64
}

// Channel is the composite stochastic radio channel for one transmitter.
// Shadowing is a fixed, spatially correlated field (re-sampling at the same
// position yields the same value — shadowing is caused by static geometry),
// while small-scale fading is redrawn per measurement (it is caused by
// centimetre-scale multipath and moves with time).
type Channel struct {
	pathLoss PathLoss
	shadow   *simrand.GaussianField
	ricianK  float64 // linear
	fading   bool
}

// NewChannel builds a channel from the configuration. It returns an error if
// no path-loss model is supplied.
func NewChannel(cfg Config) (*Channel, error) {
	if cfg.PathLoss == nil {
		return nil, fmt.Errorf("propagation: config requires a path-loss model")
	}
	c := &Channel{pathLoss: cfg.PathLoss, fading: cfg.FadingEnabled}
	if cfg.ShadowSigmaDB > 0 {
		dec := cfg.ShadowDecorrelationM
		if dec <= 0 {
			dec = 2.0 // typical indoor decorrelation distance
		}
		c.shadow = simrand.NewGaussianField(cfg.Seed, cfg.ShadowSigmaDB, dec)
	}
	if cfg.FadingEnabled {
		c.ricianK = math.Pow(10, cfg.RicianKdB/10)
	}
	return c, nil
}

// MeanRSS returns the local-mean RSS (path loss + shadowing, no fading) in
// dBm for a transmitter with the given EIRP.
func (c *Channel) MeanRSS(txPowerDBm float64, tx, rx geom.Vec3) float64 {
	rss := txPowerDBm - c.pathLoss.LossDB(tx, rx)
	if c.shadow != nil {
		// The shadowing field is indexed by receiver position; a per-link
		// field would need the transmitter too, but for a fixed AP the
		// receiver position is the only free variable, matching how REMs
		// are defined (signal quality as a function of map position).
		rss += c.shadow.At(rx.X, rx.Y, rx.Z)
	}
	return rss
}

// SampleRSS draws one measured RSS in dBm, adding small-scale fading to the
// local mean when enabled. The rng should be the measuring receiver's noise
// stream.
func (c *Channel) SampleRSS(txPowerDBm float64, tx, rx geom.Vec3, rng *simrand.Source) float64 {
	rss := c.MeanRSS(txPowerDBm, tx, rx)
	if c.fading && rng != nil {
		rss += c.fadingGainDB(rng)
	}
	return rss
}

// fadingGainDB draws a Rician power gain in dB with the configured K-factor,
// normalised to unit mean power.
func (c *Channel) fadingGainDB(rng *simrand.Source) float64 {
	k := c.ricianK
	// Envelope: LoS amplitude ν and scatter σ with ν² = K/(K+1), 2σ² = 1/(K+1)
	// gives unit mean power E[r²] = ν² + 2σ² = 1.
	nu := math.Sqrt(k / (k + 1))
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	r := rng.Rician(nu, sigma)
	p := r * r
	if p < 1e-9 {
		p = 1e-9
	}
	return 10 * math.Log10(p)
}
