package propagation

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/simrand"
)

func TestFreeSpaceKnownValue(t *testing.T) {
	// 2.4 GHz at 1 m: 20·log10(1) + 20·log10(2400) − 27.55 ≈ 40.05 dB.
	m := FreeSpace{FreqMHz: 2400}
	got := m.LossDB(geom.V(0, 0, 0), geom.V(1, 0, 0))
	if math.Abs(got-40.05) > 0.01 {
		t.Errorf("free-space loss at 1 m = %v, want ≈40.05", got)
	}
	// Doubling the distance adds 6.02 dB.
	d2 := m.LossDB(geom.V(0, 0, 0), geom.V(2, 0, 0))
	if math.Abs(d2-got-6.02) > 0.01 {
		t.Errorf("doubling distance added %v dB, want ≈6.02", d2-got)
	}
}

func TestFreeSpaceNearFieldFloor(t *testing.T) {
	m := FreeSpace{FreqMHz: 2400}
	at0 := m.LossDB(geom.V(0, 0, 0), geom.V(0, 0, 0))
	at10cm := m.LossDB(geom.V(0, 0, 0), geom.V(0.1, 0, 0))
	if at0 != at10cm {
		t.Errorf("distance floor not applied: %v vs %v", at0, at10cm)
	}
	if math.IsInf(at0, 0) || math.IsNaN(at0) {
		t.Errorf("zero-distance loss = %v", at0)
	}
}

func TestLogDistance(t *testing.T) {
	m := LogDistance{PL0: 40, D0: 1, Exponent: 3}
	if got := m.LossDB(geom.V(0, 0, 0), geom.V(1, 0, 0)); math.Abs(got-40) > 1e-12 {
		t.Errorf("loss at d0 = %v, want 40", got)
	}
	if got := m.LossDB(geom.V(0, 0, 0), geom.V(10, 0, 0)); math.Abs(got-70) > 1e-12 {
		t.Errorf("loss at 10·d0 = %v, want 70 (PL0 + 10·n)", got)
	}
}

func TestLogDistanceDefaultsD0(t *testing.T) {
	m := LogDistance{PL0: 40, Exponent: 2} // D0 unset → 1 m
	if got := m.LossDB(geom.V(0, 0, 0), geom.V(1, 0, 0)); math.Abs(got-40) > 1e-12 {
		t.Errorf("loss with default d0 = %v, want 40", got)
	}
}

func TestReferenceLossMatchesFreeSpace(t *testing.T) {
	fs := FreeSpace{FreqMHz: 2437}
	ld := LogDistance{PL0: ReferenceLossDB(2437), D0: 1, Exponent: 2}
	a, b := geom.V(0, 0, 0), geom.V(5, 0, 0)
	if math.Abs(fs.LossDB(a, b)-ld.LossDB(a, b)) > 1e-9 {
		t.Errorf("log-distance with free-space PL0/n=2 diverges from Friis: %v vs %v",
			ld.LossDB(a, b), fs.LossDB(a, b))
	}
}

func TestITUIndoor(t *testing.T) {
	m := ITUIndoor{FreqMHz: 2400, N: 30}
	at1 := m.LossDB(geom.V(0, 0, 0), geom.V(1, 0, 0))
	want := 20*math.Log10(2400) - 28
	if math.Abs(at1-want) > 1e-9 {
		t.Errorf("ITU loss at 1 m = %v, want %v", at1, want)
	}
	at10 := m.LossDB(geom.V(0, 0, 0), geom.V(10, 0, 0))
	if math.Abs(at10-at1-30) > 1e-9 {
		t.Errorf("ITU decade slope = %v, want 30", at10-at1)
	}
}

func TestMultiWallAddsObstructions(t *testing.T) {
	env := floorplan.PaperApartment()
	base := FreeSpace{FreqMHz: 2437}
	mw := MultiWall{Base: base, Env: env}

	inRoom := mw.LossDB(geom.V(0.5, 1, 1), geom.V(3, 1, 1))
	if math.Abs(inRoom-base.LossDB(geom.V(0.5, 1, 1), geom.V(3, 1, 1))) > 1e-12 {
		t.Errorf("in-room multi-wall loss should equal base loss")
	}

	tx := geom.V(-8, 1, 1) // two apartments away in −x
	throughWalls := mw.LossDB(tx, geom.V(1, 1, 1))
	freeSpace := base.LossDB(tx, geom.V(1, 1, 1))
	if throughWalls <= freeSpace {
		t.Errorf("multi-wall %v not above free space %v", throughWalls, freeSpace)
	}
}

func TestMultiWallNilEnv(t *testing.T) {
	mw := MultiWall{Base: FreeSpace{FreqMHz: 2400}}
	if got := mw.LossDB(geom.V(0, 0, 0), geom.V(5, 0, 0)); math.IsNaN(got) {
		t.Error("nil env should fall back to base loss")
	}
}

func TestNewChannelRequiresPathLoss(t *testing.T) {
	if _, err := NewChannel(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestChannelMeanRSSIsDeterministic(t *testing.T) {
	ch, err := NewChannel(Config{
		PathLoss:      FreeSpace{FreqMHz: 2437},
		ShadowSigmaDB: 4,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, rx := geom.V(0, 0, 2), geom.V(3, 1, 1)
	a := ch.MeanRSS(20, tx, rx)
	b := ch.MeanRSS(20, tx, rx)
	if a != b {
		t.Errorf("MeanRSS not deterministic: %v vs %v", a, b)
	}
}

func TestChannelShadowingIsSpatiallyCorrelated(t *testing.T) {
	ch, err := NewChannel(Config{
		PathLoss:             LogDistance{PL0: 40, D0: 1, Exponent: 2},
		ShadowSigmaDB:        5,
		ShadowDecorrelationM: 2,
		Seed:                 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := geom.V(0, 0, 0)
	// Shadowing offset at a point vs a nearby point should differ little.
	shadow := func(rx geom.Vec3) float64 {
		return ch.MeanRSS(0, tx, rx) + ch.pathLoss.LossDB(tx, rx)
	}
	var nearDiff, farDiff float64
	for i := 0; i < 100; i++ {
		p := geom.V(float64(i)*0.3, 1, 1)
		nearDiff += math.Abs(shadow(p.Add(geom.V(0.05, 0, 0))) - shadow(p))
		farDiff += math.Abs(shadow(p.Add(geom.V(25, 25, 0))) - shadow(p))
	}
	if nearDiff >= farDiff*0.5 {
		t.Errorf("shadowing not spatially correlated: near=%v far=%v", nearDiff, farDiff)
	}
}

func TestChannelFadingVariesPerSample(t *testing.T) {
	ch, err := NewChannel(Config{
		PathLoss:      FreeSpace{FreqMHz: 2437},
		RicianKdB:     6,
		FadingEnabled: true,
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	tx, rx := geom.V(0, 0, 0), geom.V(3, 0, 0)
	a := ch.SampleRSS(20, tx, rx, rng)
	b := ch.SampleRSS(20, tx, rx, rng)
	if a == b {
		t.Error("fading samples identical; fading appears disabled")
	}
}

func TestChannelFadingUnitMeanPower(t *testing.T) {
	ch, err := NewChannel(Config{
		PathLoss:      FreeSpace{FreqMHz: 2437},
		RicianKdB:     6,
		FadingEnabled: true,
		Seed:          19,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(7)
	tx, rx := geom.V(0, 0, 0), geom.V(3, 0, 0)
	mean := ch.MeanRSS(20, tx, rx)
	// Average linear power of fading must be ≈1 (0 dB offset).
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		gainDB := ch.SampleRSS(20, tx, rx, rng) - mean
		sum += math.Pow(10, gainDB/10)
	}
	if avg := sum / n; math.Abs(avg-1) > 0.05 {
		t.Errorf("mean fading power = %v, want ≈1", avg)
	}
}

func TestChannelNoFadingWithNilRng(t *testing.T) {
	ch, err := NewChannel(Config{
		PathLoss:      FreeSpace{FreqMHz: 2437},
		RicianKdB:     6,
		FadingEnabled: true,
		Seed:          23,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, rx := geom.V(0, 0, 0), geom.V(3, 0, 0)
	if ch.SampleRSS(20, tx, rx, nil) != ch.MeanRSS(20, tx, rx) {
		t.Error("nil rng should disable fading for that sample")
	}
}

func TestChannelRSSDecreasesWithDistance(t *testing.T) {
	ch, err := NewChannel(Config{PathLoss: FreeSpace{FreqMHz: 2437}})
	if err != nil {
		t.Fatal(err)
	}
	tx := geom.V(0, 0, 0)
	prev := math.Inf(1)
	for d := 1.0; d <= 32; d *= 2 {
		rss := ch.MeanRSS(20, tx, geom.V(d, 0, 0))
		if rss >= prev {
			t.Errorf("RSS at %v m = %v not below %v", d, rss, prev)
		}
		prev = rss
	}
}

func TestITUFloorPenetrationTerm(t *testing.T) {
	base := ITUIndoor{FreqMHz: 2400, N: 30}
	withFloors := ITUIndoor{FreqMHz: 2400, N: 30, FloorPenetrationDB: 15}
	a, b := geom.V(0, 0, 0), geom.V(5, 0, 0)
	if diff := withFloors.LossDB(a, b) - base.LossDB(a, b); math.Abs(diff-15) > 1e-12 {
		t.Errorf("floor penetration added %v dB, want 15", diff)
	}
}

func TestChannelRSSSymmetry(t *testing.T) {
	// Path loss is reciprocal: swapping tx and rx must not change the
	// deterministic loss (shadowing is keyed by rx, so compare the bare
	// path-loss models).
	models := []PathLoss{
		FreeSpace{FreqMHz: 2437},
		LogDistance{PL0: 40, D0: 1, Exponent: 2.4},
		ITUIndoor{FreqMHz: 2437, N: 28},
	}
	a, b := geom.V(0.3, 1.2, 0.5), geom.V(3.1, 2.2, 1.9)
	for _, m := range models {
		if math.Abs(m.LossDB(a, b)-m.LossDB(b, a)) > 1e-12 {
			t.Errorf("%T not reciprocal", m)
		}
	}
}
