// Package receiver defines the technology-agnostic contract between the UAV
// toolchain and any REM-sampling receiver, reproducing the paper's §II-A
// modular driver design: a receiver integrates with the system by providing
// a driver that supports exactly four instructions — initialise, check
// state, trigger a measurement, and parse the output. The ESP8266 Wi-Fi deck
// (internal/esp) and the example BLE deck (examples/multi_technology) are
// both plug-ins behind this interface.
package receiver

import "time"

// Measurement is one location-agnostic signal-quality reading produced by a
// receiver. The toolchain annotates it with the UAV's position downstream.
type Measurement struct {
	// Key identifies the beacon source: a Wi-Fi BSSID, a BLE address, a
	// LoRa DevEUI — whatever the technology's stable transmitter identity
	// is. The REM is keyed on it.
	Key string
	// Name is the human-readable network/device name (SSID for Wi-Fi).
	// Names may be shared between sources and are not used as keys.
	Name string
	// RSSI is the received signal strength indicator in dBm.
	RSSI int
	// Channel is the technology-specific channel number, if any.
	Channel int
}

// Driver is the four-instruction receiver contract of §II-A.
type Driver interface {
	// Init initialises the receiver (instruction i).
	Init() error
	// Status checks that the receiver is alive and ready (instruction ii).
	Status() error
	// TriggerScan instructs the receiver to collect a measurement
	// (instruction iii). It blocks the driver until results are ready;
	// ScanDuration reports how long the UAV must hold position.
	TriggerScan() error
	// Results parses and returns the output of the previous TriggerScan
	// (instruction iv).
	Results() ([]Measurement, error)
}

// Timed is implemented by drivers whose scans take a known amount of air
// time; the mission layer uses it to budget hover time and battery.
type Timed interface {
	// ScanDuration returns the time one TriggerScan occupies.
	ScanDuration() time.Duration
}

// Technology is implemented by drivers that can report what they sample,
// for labelling datasets and REMs.
type Technology interface {
	// TechnologyName returns a short label such as "wifi-2.4" or "ble".
	TechnologyName() string
}
