// Package receivertest provides a conformance suite for implementations of
// the receiver.Driver contract (§II-A's four instructions). Any new
// REM-sampling receiver — Wi-Fi, BLE, LoRa, mmWave — can validate its
// driver against the toolchain's expectations by calling Conformance from a
// test.
package receivertest

import (
	"testing"

	"repro/internal/receiver"
)

// Factory builds a fresh, un-initialised driver for each conformance check.
type Factory func() (receiver.Driver, error)

// Conformance exercises the driver contract:
//
//  1. Status and TriggerScan before Init must fail.
//  2. Init must succeed, after which Status succeeds.
//  3. Results without a pending scan must fail.
//  4. TriggerScan then Results must succeed and return well-formed
//     measurements (non-empty keys, plausible RSSI).
//  5. Results is one-shot: a second call without a new scan must fail.
//  6. The trigger/parse cycle must be repeatable.
func Conformance(t *testing.T, factory Factory) {
	t.Helper()

	t.Run("pre-init calls fail", func(t *testing.T) {
		d, err := factory()
		if err != nil {
			t.Fatalf("factory: %v", err)
		}
		if err := d.Status(); err == nil {
			t.Error("Status before Init succeeded")
		}
		if err := d.TriggerScan(); err == nil {
			t.Error("TriggerScan before Init succeeded")
		}
	})

	t.Run("lifecycle", func(t *testing.T) {
		d, err := factory()
		if err != nil {
			t.Fatalf("factory: %v", err)
		}
		if err := d.Init(); err != nil {
			t.Fatalf("Init: %v", err)
		}
		if err := d.Status(); err != nil {
			t.Fatalf("Status after Init: %v", err)
		}
		if _, err := d.Results(); err == nil {
			t.Error("Results without a scan succeeded")
		}
		if err := d.TriggerScan(); err != nil {
			t.Fatalf("TriggerScan: %v", err)
		}
		ms, err := d.Results()
		if err != nil {
			t.Fatalf("Results: %v", err)
		}
		for i, m := range ms {
			if m.Key == "" {
				t.Errorf("measurement %d has empty key", i)
			}
			if m.RSSI > 0 || m.RSSI < -128 {
				t.Errorf("measurement %d RSSI %d implausible", i, m.RSSI)
			}
		}
		if _, err := d.Results(); err == nil {
			t.Error("second Results without a new scan succeeded")
		}
	})

	t.Run("repeatable scans", func(t *testing.T) {
		d, err := factory()
		if err != nil {
			t.Fatalf("factory: %v", err)
		}
		if err := d.Init(); err != nil {
			t.Fatalf("Init: %v", err)
		}
		for round := 0; round < 3; round++ {
			if err := d.TriggerScan(); err != nil {
				t.Fatalf("round %d TriggerScan: %v", round, err)
			}
			if _, err := d.Results(); err != nil {
				t.Fatalf("round %d Results: %v", round, err)
			}
		}
	})

	t.Run("optional interfaces are consistent", func(t *testing.T) {
		d, err := factory()
		if err != nil {
			t.Fatalf("factory: %v", err)
		}
		if td, ok := d.(receiver.Timed); ok {
			if td.ScanDuration() <= 0 {
				t.Error("Timed driver reports non-positive scan duration")
			}
		}
		if tn, ok := d.(receiver.Technology); ok {
			if tn.TechnologyName() == "" {
				t.Error("Technology driver reports empty name")
			}
		}
	})
}
