package mission

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/esp"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/receiver"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/spectrum"
	"repro/internal/uav"
	"repro/internal/uwb"
	"repro/internal/wifi"
)

// ReceiverFactory builds the REM-receiver deck for one UAV sortie,
// implementing the paper's modular receiver integration (design requirement
// iii): any technology plugs in by providing a four-instruction driver. The
// factory receives accessors to the UAV's physical context — its true
// position and the currently active in-band interferers — which the
// receiver simulation samples at scan time.
type ReceiverFactory func(pos func() geom.Vec3, interferers func() []spectrum.Interferer) (receiver.Driver, error)

// Options tune a mission run beyond the flight plan itself.
type Options struct {
	// Seed drives every stochastic component of the run.
	Seed uint64
	// LocalizationMode selects TWR or TDoA (the paper flies TDoA).
	LocalizationMode uwb.Mode
	// DisableMitigation keeps the Crazyradio on during scans — the E8
	// ablation that shows why the paper shuts it down.
	DisableMitigation bool
	// StockFirmware uses the unpatched watchdog timeout, stock TX queue
	// size and no feedback task; missions fail early, demonstrating why
	// the paper's firmware changes are necessary.
	StockFirmware bool
	// Receiver overrides the REM receiver deck; nil means the paper's
	// ESP8266 Wi-Fi scanner.
	Receiver ReceiverFactory
	// BatteryScale multiplies the UAVs' pack capacity; values below 1
	// inject mid-sortie battery failures for robustness testing. Zero
	// means 1 (full capacity).
	BatteryScale float64
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions(seed uint64) Options {
	return Options{Seed: seed, LocalizationMode: uwb.TDoA}
}

// SortieReport summarises one UAV's run.
type SortieReport struct {
	// UAV is the vehicle label.
	UAV string
	// WaypointsVisited counts waypoints at which a scan completed.
	WaypointsVisited int
	// WaypointsPlanned is the plan size.
	WaypointsPlanned int
	// Samples is the number of location-annotated measurements stored.
	Samples int
	// ActiveTime is the sortie duration from take-off to landing (or
	// failure).
	ActiveTime time.Duration
	// BatteryUsedFrac is the fraction of the pack consumed.
	BatteryUsedFrac float64
	// DroppedPackets counts CRTP TX-queue losses.
	DroppedPackets int
	// Err records a mid-sortie failure (battery, watchdog), if any.
	Err error
}

// Report summarises a full mission.
type Report struct {
	// Sorties are the per-UAV reports, in flight order.
	Sorties []SortieReport
	// TotalTime is the wall-clock (virtual) duration of the whole mission.
	TotalTime time.Duration
}

// Controller is the base station: it owns the environment, the Wi-Fi world,
// the UWB constellation and the plan, and flies the fleet.
type Controller struct {
	plan *Plan
	opts Options
	env  *floorplan.Environment
	net  *wifi.Network
	lps  *uwb.Constellation
	scan wifi.ScannerConfig
}

// NewController assembles a mission against an explicit world. Use
// NewPaperController for the paper's validation setup.
func NewController(plan *Plan, env *floorplan.Environment, net *wifi.Network, scan wifi.ScannerConfig, opts Options) (*Controller, error) {
	if plan == nil || env == nil || net == nil {
		return nil, errors.New("mission: plan, environment and network are required")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := scan.Validate(); err != nil {
		return nil, err
	}
	if opts.LocalizationMode != uwb.TWR && opts.LocalizationMode != uwb.TDoA {
		return nil, fmt.Errorf("mission: invalid localization mode %d", opts.LocalizationMode)
	}
	// Deploy the paper's anchor constellation: one anchor per corner of
	// the scan volume, then self-calibrate (§III-A).
	cfg := uwb.DefaultConfig(opts.LocalizationMode)
	cfg.Seed = opts.Seed
	lps, err := uwb.CornerConstellation(plan.Volume, cfg)
	if err != nil {
		return nil, err
	}
	lps.SelfCalibrate()
	return &Controller{plan: plan, opts: opts, env: env, net: net, lps: lps, scan: scan}, nil
}

// NewPaperController builds the full §III-A validation world: the Antwerp
// apartment, its AP population, the two-UAV 72-waypoint plan and the
// ESP-01-class scanner.
func NewPaperController(opts Options) (*Controller, error) {
	plan, err := PaperPlan()
	if err != nil {
		return nil, err
	}
	env := floorplan.PaperApartment()
	rng := simrand.New(opts.Seed)
	aps, err := wifi.GeneratePopulation(env, wifi.DefaultPopulation(), rng.Derive("population"))
	if err != nil {
		return nil, err
	}
	net, err := wifi.NewNetwork(aps, wifi.DefaultChannelParams(env, opts.Seed^0xA11CE))
	if err != nil {
		return nil, err
	}
	return NewController(plan, env, net, wifi.DefaultScanner(), opts)
}

// Plan returns the mission plan.
func (c *Controller) Plan() *Plan { return c.plan }

// Constellation returns the deployed UWB constellation.
func (c *Controller) Constellation() *uwb.Constellation { return c.lps }

// Network returns the Wi-Fi world.
func (c *Controller) Network() *wifi.Network { return c.net }

// Run executes the mission: each UAV in sequence visits its waypoints,
// scans, and streams results back; the controller parses and stores them.
// A UAV failing mid-sortie (battery, watchdog) ends that sortie but not the
// mission — matching the paper's fleet model where UAVs run until their
// batteries deplete.
func (c *Controller) Run() (*dataset.Dataset, *Report, error) {
	engine := sim.NewEngine()
	data := &dataset.Dataset{}
	report := &Report{}
	rootRng := simrand.New(c.opts.Seed)

	for _, up := range c.plan.UAVs {
		sortie := c.flySortie(engine, up, data, rootRng)
		report.Sorties = append(report.Sorties, sortie)
	}
	report.TotalTime = engine.Now()
	return data, report, nil
}

// flySortie runs one UAV through its waypoint list.
func (c *Controller) flySortie(engine *sim.Engine, up UAVPlan, data *dataset.Dataset, rootRng *simrand.Source) SortieReport {
	sortie := SortieReport{UAV: up.Name, WaypointsPlanned: len(up.Waypoints)}
	start := engine.Now()

	cfg := uav.DefaultConfig(up.Name, up.RadioChannel, c.opts.Seed)
	if c.opts.BatteryScale > 0 {
		cfg.BatteryCapacityJ *= c.opts.BatteryScale
	}
	if c.opts.DisableMitigation {
		cfg.KeepRadioOnDuringScan = true
	}
	if c.opts.StockFirmware {
		cfg.WatchdogShutdown = uav.DefaultWatchdogShutdown
		cfg.TxQueueSize = 16
		cfg.FeedbackTask = false
	}

	// The receiver deck's scan binding samples the world at the UAV's
	// true position under the currently active interferers. The closures
	// refer to the Crazyflie, which is created right after the driver.
	var cf *uav.Crazyflie
	factory := c.opts.Receiver
	if factory == nil {
		factory = c.espFactory(up.Name, rootRng)
	}
	drv, err := factory(
		func() geom.Vec3 { return cf.TruePos() },
		func() []spectrum.Interferer {
			var itfs []spectrum.Interferer
			if itf, active := cf.Link().Interferer(); active {
				itfs = append(itfs, itf)
			}
			return itfs
		},
	)
	if err != nil {
		sortie.Err = err
		return sortie
	}
	if err := drv.Init(); err != nil {
		sortie.Err = err
		return sortie
	}

	cf, err = uav.New(cfg, engine, drv, c.lps, up.Start)
	if err != nil {
		sortie.Err = err
		return sortie
	}

	fail := func(err error) SortieReport {
		sortie.Err = err
		sortie.ActiveTime = engine.Now() - start
		sortie.BatteryUsedFrac = 1 - cf.Battery().Fraction()
		sortie.DroppedPackets = cf.Link().DroppedTx()
		return sortie
	}

	if err := cf.TakeOff(c.plan.TakeoffAltitude); err != nil {
		return fail(err)
	}

	for wpIdx, wp := range up.Waypoints {
		// ii) move to the waypoint.
		if err := cf.GoTo(wp, c.plan.LegTime); err != nil {
			return fail(err)
		}
		// iii–vi) scan with the radio down, then fetch the results.
		ms, scanPos, err := cf.Scan()
		if err != nil {
			return fail(err)
		}
		_ = ms // results travel via CRTP; the controller reads the link
		// Fill the remainder of the scan stop budget, plus the radio
		// restart / result transfer turnaround.
		rest := c.plan.ScanStop - scanDurationOf(cf) + c.plan.ResultLatency
		if rest > 0 {
			if err := cf.Hover(rest); err != nil {
				return fail(err)
			}
		}
		// Parse and store the streamed results.
		for _, pkt := range cf.Link().Receive() {
			m, err := uav.DecodeMeasurement(pkt)
			if err != nil {
				continue // non-result traffic
			}
			truth := cf.TruePos()
			data.Add(dataset.Sample{
				UAV:      up.Name,
				Waypoint: wpIdx,
				Time:     engine.Now(),
				X:        scanPos.X, Y: scanPos.Y, Z: scanPos.Z,
				TrueX: truth.X, TrueY: truth.Y, TrueZ: truth.Z,
				MAC:     m.Key,
				SSID:    m.Name,
				RSSI:    m.RSSI,
				Channel: m.Channel,
			})
			sortie.Samples++
		}
		sortie.WaypointsVisited++
	}

	if err := cf.Land(); err != nil {
		return fail(err)
	}
	sortie.ActiveTime = engine.Now() - start
	sortie.BatteryUsedFrac = 1 - cf.Battery().Fraction()
	sortie.DroppedPackets = cf.Link().DroppedTx()
	return sortie
}

// espFactory builds the paper's default receiver: the ESP-01 Wi-Fi scanner
// deck behind its AT-command driver.
func (c *Controller) espFactory(uavName string, rootRng *simrand.Source) ReceiverFactory {
	return func(pos func() geom.Vec3, interferers func() []spectrum.Interferer) (receiver.Driver, error) {
		scanner, err := wifi.NewScanner(c.net, c.scan)
		if err != nil {
			return nil, err
		}
		scanRng := rootRng.Derive("scan-" + uavName)
		mod, err := esp.NewModule(func() []wifi.Observation {
			return scanner.Scan(pos(), interferers(), scanRng)
		})
		if err != nil {
			return nil, err
		}
		return esp.NewDriver(mod, c.scan.ScanDuration())
	}
}

func scanDurationOf(cf *uav.Crazyflie) time.Duration {
	if td, ok := cf.Driver().(interface{ ScanDuration() time.Duration }); ok {
		return td.ScanDuration()
	}
	return 2 * time.Second
}

// LocalizationErrorStats summarises annotation accuracy over a dataset:
// the distance between annotated (EKF) and true positions.
func LocalizationErrorStats(d *dataset.Dataset) (mean, max float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	for _, s := range d.Samples {
		e := geom.V(s.X-s.TrueX, s.Y-s.TrueY, s.Z-s.TrueZ).Norm()
		mean += e
		if e > max {
			max = e
		}
	}
	mean /= float64(d.Len())
	return mean, max
}
