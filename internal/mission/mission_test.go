package mission

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/uwb"
	"repro/internal/wifi"
)

// paperRun executes the calibrated paper mission once and caches the result
// for the statistics tests.
var paperData *dataset.Dataset
var paperReport *Report

func runPaper(t *testing.T) (*dataset.Dataset, *Report) {
	t.Helper()
	if paperData != nil {
		return paperData, paperReport
	}
	c, err := NewPaperController(DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	data, rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	paperData, paperReport = data, rep
	return data, rep
}

func TestPaperPlanShape(t *testing.T) {
	p, err := PaperPlan()
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWaypoints() != 72 {
		t.Errorf("waypoints = %d, want 72", p.TotalWaypoints())
	}
	if len(p.UAVs) != 2 || len(p.UAVs[0].Waypoints) != 36 || len(p.UAVs[1].Waypoints) != 36 {
		t.Error("waypoints not split 36/36 across two UAVs")
	}
	if p.LegTime != 4*time.Second || p.ScanStop != 3*time.Second {
		t.Errorf("leg/scan budgets = %v/%v, want 4 s / 3 s", p.LegTime, p.ScanStop)
	}
	// UAV A covers the low-y (core-side) half, B the high-y half.
	midY := p.Volume.Center().Y
	for _, wp := range p.UAVs[0].Waypoints {
		if wp.Y >= midY {
			t.Errorf("UAV A waypoint %v in B territory", wp)
		}
	}
	for _, wp := range p.UAVs[1].Waypoints {
		if wp.Y < midY {
			t.Errorf("UAV B waypoint %v in A territory", wp)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	good, _ := PaperPlan()

	p := *good
	p.UAVs = nil
	if err := p.Validate(); err == nil {
		t.Error("no UAVs accepted")
	}

	p = *good
	p.LegTime = 0
	if err := p.Validate(); err == nil {
		t.Error("zero leg time accepted")
	}

	p = *good
	p.ResultLatency = -time.Second
	if err := p.Validate(); err == nil {
		t.Error("negative latency accepted")
	}

	p = *good
	p.UAVs = []UAVPlan{{Name: "A", Waypoints: []geom.Vec3{geom.V(99, 99, 99)}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-volume waypoint accepted")
	}

	p = *good
	p.UAVs = []UAVPlan{
		{Name: "A", Waypoints: good.UAVs[0].Waypoints},
		{Name: "A", Waypoints: good.UAVs[1].Waypoints},
	}
	if err := p.Validate(); err == nil {
		t.Error("duplicate UAV names accepted")
	}

	p = *good
	p.UAVs = []UAVPlan{{Name: "", Waypoints: good.UAVs[0].Waypoints}}
	if err := p.Validate(); err == nil {
		t.Error("empty UAV name accepted")
	}
}

func TestSortWaypointsGreedy(t *testing.T) {
	pts := []geom.Vec3{geom.V(5, 0, 0), geom.V(1, 0, 0), geom.V(3, 0, 0)}
	got := SortWaypointsGreedy(geom.V(0, 0, 0), pts)
	want := []geom.Vec3{geom.V(1, 0, 0), geom.V(3, 0, 0), geom.V(5, 0, 0)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("greedy order = %v", got)
		}
	}
}

func TestMissionCompletesAllWaypoints(t *testing.T) {
	_, rep := runPaper(t)
	if len(rep.Sorties) != 2 {
		t.Fatalf("sorties = %d", len(rep.Sorties))
	}
	for _, s := range rep.Sorties {
		if s.Err != nil {
			t.Errorf("sortie %s failed: %v", s.UAV, s.Err)
		}
		if s.WaypointsVisited != 36 {
			t.Errorf("sortie %s visited %d/36 waypoints", s.UAV, s.WaypointsVisited)
		}
		if s.DroppedPackets != 0 {
			t.Errorf("sortie %s dropped %d packets with the enlarged queue", s.UAV, s.DroppedPackets)
		}
	}
}

func TestMissionSortieTimeMatchesPaper(t *testing.T) {
	// Paper: UAV A active 5 min 3 s, UAV B 5 min. Require the right scale.
	_, rep := runPaper(t)
	for _, s := range rep.Sorties {
		if s.ActiveTime < 4*time.Minute || s.ActiveTime > 6*time.Minute {
			t.Errorf("sortie %s active %v, want ≈5 min", s.UAV, s.ActiveTime)
		}
	}
}

func TestMissionDatasetStatisticsMatchPaper(t *testing.T) {
	data, _ := runPaper(t)
	st := data.Stats()
	// Paper §III-A: 2696 samples (A=1495, B=1201), 73 MACs, 49 SSIDs,
	// mean RSS ≈ −73 dBm. Require the same scale and ordering.
	if st.Total < 2100 || st.Total > 3300 {
		t.Errorf("total samples = %d, want ≈2696", st.Total)
	}
	if st.PerUAV["A"] <= st.PerUAV["B"] {
		t.Errorf("UAV A (%d) must out-collect UAV B (%d) per Figure 6", st.PerUAV["A"], st.PerUAV["B"])
	}
	if st.DistinctMACs < 55 || st.DistinctMACs > 90 {
		t.Errorf("distinct MACs = %d, want ≈73", st.DistinctMACs)
	}
	if st.DistinctSSIDs < 33 || st.DistinctSSIDs > 60 {
		t.Errorf("distinct SSIDs = %d, want ≈49", st.DistinctSSIDs)
	}
	if st.DistinctSSIDs >= st.DistinctMACs {
		t.Error("SSIDs must be shared across MACs (49 < 73 in the paper)")
	}
	if st.MeanRSSI < -78 || st.MeanRSSI > -68 {
		t.Errorf("mean RSSI = %.1f dBm, want ≈ −73", st.MeanRSSI)
	}
}

func TestMissionLocalizationAccuracy(t *testing.T) {
	data, _ := runPaper(t)
	mean, max := LocalizationErrorStats(data)
	// Decimetre-level annotation accuracy (§II-B).
	if mean > 0.20 {
		t.Errorf("mean localization error = %.3f m, want ≲ 0.1 m", mean)
	}
	if max > 0.8 {
		t.Errorf("max localization error = %.3f m", max)
	}
	if mean == 0 {
		t.Error("zero localization error is unrealistically perfect")
	}
}

func TestFigure7HistogramShape(t *testing.T) {
	// Paper Figure 7: sample counts increase with x and decrease with y
	// (toward the building core). Check the trend over 0.5 m bins via a
	// first-vs-last-third comparison, which is robust to bin noise.
	data, _ := runPaper(t)
	third := func(bins []dataset.Bin) (lo, hi float64) {
		n := len(bins) / 3
		if n == 0 {
			n = 1
		}
		for _, b := range bins[:n] {
			lo += float64(b.Count)
		}
		for _, b := range bins[len(bins)-n:] {
			hi += float64(b.Count)
		}
		return lo, hi
	}
	xBins, err := data.Histogram(dataset.AxisX, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	loX, hiX := third(xBins)
	if hiX <= loX {
		t.Errorf("x histogram not increasing toward the core: first third %v, last third %v", loX, hiX)
	}
	yBins, err := data.Histogram(dataset.AxisY, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	loY, hiY := third(yBins)
	if loY <= hiY {
		t.Errorf("y histogram not decreasing away from the core: first third %v, last third %v", loY, hiY)
	}
}

func TestFigure6PerWaypointCounts(t *testing.T) {
	data, _ := runPaper(t)
	counts := data.CountPerWaypoint()
	for _, uavName := range []string{"A", "B"} {
		per := counts[uavName]
		if len(per) != 36 {
			t.Errorf("UAV %s has counts for %d waypoints, want 36", uavName, len(per))
		}
		for wp, n := range per {
			if n < 1 {
				t.Errorf("UAV %s waypoint %d has no samples", uavName, wp)
			}
			if n > 90 {
				t.Errorf("UAV %s waypoint %d has %d samples, implausibly many", uavName, wp, n)
			}
		}
	}
}

func TestMitigationAblationReducesDetections(t *testing.T) {
	// E8: with the radio kept on during scans, interference must cut the
	// per-scan detection count substantially (Figure 5's lesson).
	opts := DefaultOptions(1)
	base, err := NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseData, _, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	opts.DisableMitigation = true
	noMit, err := NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	noMitData, _, err := noMit.Run()
	if err != nil {
		t.Fatal(err)
	}

	withMitigation := baseData.Len()
	withoutMitigation := noMitData.Len()
	if float64(withoutMitigation) > 0.8*float64(withMitigation) {
		t.Errorf("mitigation off: %d samples, on: %d — interference too mild", withoutMitigation, withMitigation)
	}
}

func TestStockFirmwareFailsEarly(t *testing.T) {
	// With the stock watchdog and no feedback task, the first radio-off
	// scan kills the sortie.
	opts := DefaultOptions(1)
	opts.StockFirmware = true
	c, err := NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Sorties {
		if s.Err == nil {
			t.Errorf("sortie %s succeeded on stock firmware; the paper's patches exist because it must not", s.UAV)
		}
		if s.WaypointsVisited > 2 {
			t.Errorf("sortie %s visited %d waypoints on stock firmware", s.UAV, s.WaypointsVisited)
		}
	}
	if data.Len() > 200 {
		t.Errorf("stock firmware still collected %d samples", data.Len())
	}
}

func TestControllerValidation(t *testing.T) {
	plan, _ := PaperPlan()
	if _, err := NewController(nil, nil, nil, wifi.DefaultScanner(), DefaultOptions(1)); err == nil {
		t.Error("nil world accepted")
	}
	opts := DefaultOptions(1)
	opts.LocalizationMode = 0
	c, err := NewPaperController(opts)
	if err == nil {
		t.Error("invalid localization mode accepted")
	}
	_ = c
	_ = plan
}

func TestTWRModeAlsoWorks(t *testing.T) {
	opts := DefaultOptions(5)
	opts.LocalizationMode = uwb.TWR
	c, err := NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Sorties {
		if s.Err != nil {
			t.Errorf("TWR sortie %s failed: %v", s.UAV, s.Err)
		}
	}
	mean, _ := LocalizationErrorStats(data)
	if math.IsNaN(mean) || mean > 0.25 {
		t.Errorf("TWR localization error = %v", mean)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *dataset.Dataset {
		c, err := NewPaperController(DefaultOptions(9))
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if a.Len() != b.Len() {
		t.Fatalf("runs differ in size: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("runs diverge at sample %d", i)
		}
	}
}

func TestBatteryFailureMidSortie(t *testing.T) {
	// Halving the pack makes each UAV die partway through its 36
	// waypoints; the mission must continue to the next UAV and report
	// partial progress rather than aborting.
	opts := DefaultOptions(1)
	opts.BatteryScale = 0.5
	c, err := NewPaperController(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sorties) != 2 {
		t.Fatalf("sorties = %d; a failed sortie must not abort the mission", len(rep.Sorties))
	}
	for _, s := range rep.Sorties {
		if s.Err == nil {
			t.Errorf("sortie %s survived on half a battery", s.UAV)
		}
		if s.WaypointsVisited == 0 || s.WaypointsVisited >= 36 {
			t.Errorf("sortie %s visited %d waypoints, want partial progress", s.UAV, s.WaypointsVisited)
		}
		if s.BatteryUsedFrac < 0.95 {
			t.Errorf("sortie %s used only %.0f%% of the pack before failing", s.UAV, 100*s.BatteryUsedFrac)
		}
	}
	// Partial data was still collected and stored.
	if data.Len() == 0 {
		t.Error("no samples despite partial sorties")
	}
	full, _ := runPaper(t)
	if data.Len() >= full.Len() {
		t.Errorf("half-battery dataset %d not smaller than full %d", data.Len(), full.Len())
	}
}

func TestMoreUAVsExtendCoverage(t *testing.T) {
	// The paper: "the system can be scaled by simply adding sets of
	// waypoints and parameters". A four-UAV plan with 18 waypoints each
	// must complete and cover all 72 locations.
	plan, err := PaperPlan()
	if err != nil {
		t.Fatal(err)
	}
	var all []geom.Vec3
	for _, u := range plan.UAVs {
		all = append(all, u.Waypoints...)
	}
	quarters, err := geom.SplitRoundRobin(all, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan.UAVs = nil
	for i, q := range quarters {
		plan.UAVs = append(plan.UAVs, UAVPlan{
			Name:         string(rune('A' + i)),
			RadioChannel: 60 + 10*i,
			Start:        geom.V(0.6, 0.5, 0),
			Waypoints:    q,
		})
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	env := floorplan.PaperApartment()
	rng := simrand.New(3)
	aps, err := wifi.GeneratePopulation(env, wifi.DefaultPopulation(), rng.Derive("population"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := wifi.NewNetwork(aps, wifi.DefaultChannelParams(env, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(plan, env, net, wifi.DefaultScanner(), DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	data, rep, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sorties) != 4 {
		t.Fatalf("sorties = %d", len(rep.Sorties))
	}
	for _, s := range rep.Sorties {
		if s.Err != nil {
			t.Errorf("sortie %s failed: %v", s.UAV, s.Err)
		}
		if s.WaypointsVisited != 18 {
			t.Errorf("sortie %s visited %d/18", s.UAV, s.WaypointsVisited)
		}
	}
	if data.Len() == 0 {
		t.Fatal("no samples")
	}
	// Each UAV's battery load is lighter than in the two-UAV mission.
	for _, s := range rep.Sorties {
		if s.BatteryUsedFrac > 0.6 {
			t.Errorf("sortie %s used %.0f%% battery for half the waypoints", s.UAV, 100*s.BatteryUsedFrac)
		}
	}
}
