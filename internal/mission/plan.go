// Package mission implements the base-station control software of the paper
// (the custom Python client of §II-C): it holds the waypoint plan, flies the
// UAV fleet sequentially, orchestrates radio-off scans, and parses and
// stores the location-annotated results streamed back over CRTP.
package mission

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
)

// UAVPlan is the per-UAV mission slice: the paper's client is "configured to
// control multiple UAVs with a matching set of waypoints and parameters such
// as radio address, starting position, and yaw".
type UAVPlan struct {
	// Name labels the UAV.
	Name string
	// RadioChannel is the CRTP radio address (channel).
	RadioChannel int
	// Start is the ground start position.
	Start geom.Vec3
	// YawDeg is the constant yaw held during the sortie.
	YawDeg float64
	// Waypoints are the scan locations, in visit order.
	Waypoints []geom.Vec3
}

// Plan is a complete REM-generation mission.
type Plan struct {
	// Volume is the scan volume.
	Volume geom.Cuboid
	// LegTime is the per-leg flight budget (paper: 4 s).
	LegTime time.Duration
	// ScanStop is the total stop time per waypoint including the scan
	// (paper: 3 s).
	ScanStop time.Duration
	// ResultLatency models the radio restart, result fetch and
	// next-command turnaround per waypoint; the paper's sorties run ≈50 s
	// over the bare flight-plan minimum, which this accounts for.
	ResultLatency time.Duration
	// TakeoffAltitude is the initial climb.
	TakeoffAltitude float64
	// UAVs are the fleet slices, flown sequentially.
	UAVs []UAVPlan
}

// Validate checks the plan.
func (p *Plan) Validate() error {
	if p.Volume.Volume() <= 0 {
		return fmt.Errorf("mission: scan volume is empty")
	}
	if p.LegTime <= 0 || p.ScanStop <= 0 {
		return fmt.Errorf("mission: leg time and scan stop must be positive")
	}
	if p.ResultLatency < 0 {
		return fmt.Errorf("mission: result latency must be non-negative")
	}
	if p.TakeoffAltitude <= 0 {
		return fmt.Errorf("mission: take-off altitude must be positive")
	}
	if len(p.UAVs) == 0 {
		return fmt.Errorf("mission: plan has no UAVs")
	}
	names := map[string]bool{}
	for _, u := range p.UAVs {
		if u.Name == "" {
			return fmt.Errorf("mission: UAV with empty name")
		}
		if names[u.Name] {
			return fmt.Errorf("mission: duplicate UAV name %q", u.Name)
		}
		names[u.Name] = true
		if len(u.Waypoints) == 0 {
			return fmt.Errorf("mission: UAV %q has no waypoints", u.Name)
		}
		for i, wp := range u.Waypoints {
			if !p.Volume.Contains(wp) {
				return fmt.Errorf("mission: UAV %q waypoint %d (%v) outside the scan volume", u.Name, i, wp)
			}
		}
	}
	return nil
}

// TotalWaypoints returns the fleet-wide waypoint count.
func (p *Plan) TotalWaypoints() int {
	n := 0
	for _, u := range p.UAVs {
		n += len(u.Waypoints)
	}
	return n
}

// PaperPlan reproduces the validation mission of §III-A: 72 waypoints evenly
// spread over the 3.74 × 3.20 × 2.10 m living-room cuboid, split into two
// sets of 36 — UAV A covering the low-y half (toward the building core) and
// UAV B the high-y half (behind the thicker wall segment) — with 4 s legs
// and 3 s scan stops.
func PaperPlan() (*Plan, error) {
	vol := geom.PaperScanVolume()
	// 4 × 6 × 3 lattice = 72 points; splitting the y axis in half gives
	// 36 per UAV.
	points, err := vol.Lattice(4, 6, 3, 0.30)
	if err != nil {
		return nil, fmt.Errorf("mission: building paper lattice: %w", err)
	}
	midY := vol.Center().Y
	var a, b []geom.Vec3
	for _, p := range points {
		if p.Y < midY {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	// Keep each half in short-path order (the lattice is already a
	// lawnmower; filtering preserves its order).
	if len(a) != len(b) {
		return nil, fmt.Errorf("mission: uneven split %d/%d", len(a), len(b))
	}
	plan := &Plan{
		Volume:          vol,
		LegTime:         4 * time.Second,
		ScanStop:        3 * time.Second,
		ResultLatency:   1200 * time.Millisecond,
		TakeoffAltitude: 0.5,
		UAVs: []UAVPlan{
			{Name: "A", RadioChannel: 80, Start: geom.V(0.6, 0.5, 0), YawDeg: 0, Waypoints: a},
			{Name: "B", RadioChannel: 90, Start: geom.V(0.6, 2.7, 0), YawDeg: 0, Waypoints: b},
		},
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// SortWaypointsGreedy reorders waypoints nearest-neighbour-first from the
// given start, a cheap TSP heuristic for user-supplied unordered waypoint
// sets.
func SortWaypointsGreedy(start geom.Vec3, points []geom.Vec3) []geom.Vec3 {
	out := make([]geom.Vec3, 0, len(points))
	remaining := append([]geom.Vec3(nil), points...)
	cur := start
	for len(remaining) > 0 {
		sort.SliceStable(remaining, func(i, j int) bool {
			return remaining[i].DistSq(cur) < remaining[j].DistSq(cur)
		})
		cur = remaining[0]
		out = append(out, cur)
		remaining = remaining[1:]
	}
	return out
}
