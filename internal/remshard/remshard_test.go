package remshard

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/ml"
	"repro/internal/rem"
	"repro/internal/remstore"
	"repro/internal/simrand"
)

var testVol = geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)

const (
	testNX = 6
	testNY = 5
	testNZ = 4
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("aa:bb:%02d", i)
	}
	return keys
}

// evolvingModel is the test stand-in for an incremental estimator: a
// deterministic field per (key, generation), where a key's generation
// advances when a round dirties it. The predictor answers by global key
// index, exactly the contract core.BatchPredictorFor produces, and is
// concurrency-safe during a rebuild (gen mutates only between rounds).
type evolvingModel struct {
	gen []int
}

func newEvolvingModel(nKeys int) *evolvingModel {
	return &evolvingModel{gen: make([]int, nKeys)}
}

func (m *evolvingModel) touch(dirty []int) {
	for _, gi := range dirty {
		if gi == ml.DirtyAll {
			for i := range m.gen {
				m.gen[i]++
			}
			return
		}
		m.gen[gi]++
	}
}

func (m *evolvingModel) predict(centers []geom.Vec3, gi int) ([]float64, error) {
	out := make([]float64, len(centers))
	g := float64(m.gen[gi])
	for i, p := range centers {
		out[i] = -55 - p.X*float64(1+gi%3) - 2*p.Y + p.Z - float64(gi) - 3*g
	}
	return out, nil
}

func testProbes(n int) []geom.Vec3 {
	rng := simrand.New(777)
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Range(-0.2, 4.2), rng.Range(-0.2, 3.2), rng.Range(-0.2, 2.8))
	}
	return pts
}

// testPartitioners returns the named partitioners the equivalence tests
// sweep: the hash default, an explicit per-key round-robin assignment
// (which leaves shards empty when shards > len(keys)), and a
// range-partitioning func that keeps contiguous key runs together.
func testPartitioners(keys []string, shards int) map[string]Partitioner {
	assign := make(map[string]int, len(keys))
	for i, k := range keys {
		assign[k] = i % shards
	}
	return map[string]Partitioner{
		"hash":     HashByKey{},
		"explicit": Explicit{Assign: assign},
		"range": PartitionFunc(func(key string, n int) int {
			for i, k := range keys {
				if k == key {
					return i * n / len(keys)
				}
			}
			return -1
		}),
	}
}

// driveRound applies one dirty round to both a monolithic chain and a
// sharded store from the same evolving model.
type harness struct {
	t       *testing.T
	keys    []string
	model   *evolvingModel
	mono    *remstore.Store
	monoMap *rem.Map
	sharded *ShardedStore
}

func newHarness(t *testing.T, nKeys int, p Partitioner, shards int) *harness {
	t.Helper()
	keys := testKeys(nKeys)
	sh, err := New(keys, Config{
		Shards:      shards,
		Partitioner: p,
		Volume:      testVol,
		Resolution:  [3]int{testNX, testNY, testNZ},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:       t,
		keys:    keys,
		model:   newEvolvingModel(nKeys),
		mono:    remstore.New(0),
		sharded: sh,
	}
}

func (h *harness) round(dirty []int) Round {
	h.t.Helper()
	h.model.touch(dirty)
	// Monolithic: full build on the first round, RebuildKeys after.
	var next *rem.Map
	var err error
	if h.monoMap == nil {
		next, err = rem.BuildMapBatch(testVol, testNX, testNY, testNZ, h.keys, h.model.predict, rem.BuildOptions{Workers: 1})
	} else {
		next, err = h.monoMap.RebuildKeys(dirty, h.model.predict, rem.BuildOptions{Workers: 1})
	}
	if err != nil {
		h.t.Fatal(err)
	}
	if _, err := h.mono.Publish(next, len(dirty)); err != nil {
		h.t.Fatal(err)
	}
	h.monoMap = next
	// Sharded: the same dirty set, routed.
	round, err := h.sharded.Rebuild(dirty, h.model.predict, rem.BuildOptions{Workers: 2})
	if err != nil {
		h.t.Fatal(err)
	}
	return round
}

// checkEquivalence pins rule 8 at a quiescent point: the merged sharded
// view is Map.Equal to the monolithic map, and At/Strongest answers
// match bit for bit.
func (h *harness) checkEquivalence(probes []geom.Vec3) {
	h.t.Helper()
	merged, err := h.sharded.MergedSnapshot()
	if err != nil {
		h.t.Fatal(err)
	}
	if !merged.Equal(h.monoMap) {
		h.t.Fatal("merged sharded view differs from the monolithic map")
	}
	for _, key := range h.keys {
		for _, p := range probes {
			wv, _, err := h.mono.At(key, p)
			if err != nil {
				h.t.Fatal(err)
			}
			gv, _, err := h.sharded.At(key, p)
			if err != nil {
				h.t.Fatal(err)
			}
			if math.Float64bits(gv) != math.Float64bits(wv) {
				h.t.Fatalf("At(%s, %v): sharded %v, monolithic %v", key, p, gv, wv)
			}
		}
	}
	for _, p := range probes {
		wk, wv, _, err := h.mono.Strongest(p)
		if err != nil {
			h.t.Fatal(err)
		}
		gk, gv, _, err := h.sharded.Strongest(p)
		if err != nil {
			h.t.Fatal(err)
		}
		if gk != wk || math.Float64bits(gv) != math.Float64bits(wv) {
			h.t.Fatalf("Strongest(%v): sharded (%s, %v), monolithic (%s, %v)", p, gk, gv, wk, wv)
		}
	}
	wk, wv, _, err := h.mono.StrongestBatch(probes)
	if err != nil {
		h.t.Fatal(err)
	}
	gk, gv, err := h.sharded.StrongestBatch(probes)
	if err != nil {
		h.t.Fatal(err)
	}
	for i := range probes {
		if gk[i] != wk[i] || math.Float64bits(gv[i]) != math.Float64bits(wv[i]) {
			h.t.Fatalf("StrongestBatch[%d]: sharded (%s, %v), monolithic (%s, %v)", i, gk[i], gv[i], wk[i], wv[i])
		}
	}
	for _, key := range h.keys {
		wb, _, err := h.mono.AtBatch(key, probes)
		if err != nil {
			h.t.Fatal(err)
		}
		gb, _, err := h.sharded.AtBatch(key, probes)
		if err != nil {
			h.t.Fatal(err)
		}
		for i := range probes {
			if math.Float64bits(gb[i]) != math.Float64bits(wb[i]) {
				h.t.Fatalf("AtBatch(%s)[%d]: sharded %v, monolithic %v", key, i, gb[i], wb[i])
			}
		}
	}
}

// TestShardedEquivalence is rule 8 at the remshard layer: over a round
// sequence with localized, overlapping and DirtyAll dirty sets, every
// query answers byte-identically to the monolithic chain — for each
// partitioner and shard count, including shard counts above the key
// count and deliberately empty shards.
func TestShardedEquivalence(t *testing.T) {
	const nKeys = 7
	probes := testProbes(23)
	rounds := [][]int{
		{0, 1, 2, 3, 4, 5, 6}, // first build
		{1},
		{2, 5},
		{ml.DirtyAll},
		{6, 0, 6, 0}, // duplicates collapse
	}
	for _, shards := range []int{1, 2, 4, 9} {
		for name, p := range testPartitioners(testKeys(nKeys), shards) {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				h := newHarness(t, nKeys, p, shards)
				for _, dirty := range rounds {
					round := h.round(dirty)
					h.checkEquivalence(probes)
					if round.Seq == 0 || round.AffectedShards == 0 {
						t.Fatalf("round = %+v", round)
					}
				}
				if got := h.sharded.Rounds(); got != uint64(len(rounds)) {
					t.Fatalf("rounds = %d, want %d", got, len(rounds))
				}
			})
		}
	}
}

// TestShardedQueryCounts: the logical query count matches what a
// monolithic store reports for the same query stream, and the aggregate
// stats are self-consistent.
func TestShardedQueryCounts(t *testing.T) {
	h := newHarness(t, 5, HashByKey{}, 3)
	h.round([]int{0, 1, 2, 3, 4})
	probes := testProbes(9)
	for _, key := range h.keys {
		if _, _, err := h.mono.At(key, probes[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.sharded.At(key, probes[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.mono.AtBatch(key, probes); err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.sharded.AtBatch(key, probes); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range probes {
		if _, _, _, err := h.mono.Strongest(p); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := h.sharded.Strongest(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := h.mono.StrongestBatch(probes); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.sharded.StrongestBatch(probes); err != nil {
		t.Fatal(err)
	}
	monoQ := h.mono.Stats().Queries
	stats := h.sharded.Stats()
	if stats.Queries != monoQ {
		t.Fatalf("sharded logical queries = %d, monolithic = %d", stats.Queries, monoQ)
	}
	var pubs, shq uint64
	for _, ps := range stats.PerShard {
		pubs += ps.Publishes
		shq += ps.Queries
	}
	if stats.ShardPublishes != pubs || stats.ShardQueries != shq {
		t.Fatalf("aggregate totals %d/%d do not match per-shard sums %d/%d",
			stats.ShardPublishes, stats.ShardQueries, pubs, shq)
	}
}

// TestShardedVersionsIndependent: a round leaves untouched shards'
// serving snapshots (and versions) alone — the publish-independence the
// sharding exists for.
func TestShardedVersionsIndependent(t *testing.T) {
	keys := testKeys(4)
	// Range partitioner: keys 0,1 → shard 0; keys 2,3 → shard 1.
	h := newHarness(t, 4, PartitionFunc(func(key string, shards int) int {
		var i int
		fmt.Sscanf(key, "aa:bb:%02d", &i)
		return i / 2
	}), 2)
	h.round([]int{0, 1, 2, 3})
	r := h.round([]int{1}) // dirties shard 0 only
	if r.AffectedShards != 1 || r.Versions[0] != 2 || r.Versions[1] != 0 {
		t.Fatalf("round = %+v", r)
	}
	if v := h.sharded.StoreOf(1).Current().Version(); v != 1 {
		t.Fatalf("untouched shard advanced to version %d", v)
	}
	if v := h.sharded.StoreOf(0).Current().Version(); v != 2 {
		t.Fatalf("touched shard at version %d, want 2", v)
	}
	// And the untouched shard's map is literally the same object.
	if _, _, err := h.sharded.At(keys[3], geom.V(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// BuiltKeys counts only what was rasterised.
	if r.BuiltKeys != 1 || r.DirtyKeys != 1 {
		t.Fatalf("round built %d / dirty %d, want 1 / 1", r.BuiltKeys, r.DirtyKeys)
	}
}

// TestShardedUnbuiltShardFullBuilds: dirtying one key of a shard that
// has never published full-builds that shard.
func TestShardedUnbuiltShardFullBuilds(t *testing.T) {
	h := newHarness(t, 4, PartitionFunc(func(key string, shards int) int {
		var i int
		fmt.Sscanf(key, "aa:bb:%02d", &i)
		return i / 2
	}), 2)
	h.model.touch([]int{0})
	r, err := h.sharded.Rebuild([]int{0}, h.model.predict, rem.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 owns keys 0 and 1; both must be rasterised.
	if r.AffectedShards != 1 || r.BuiltKeys != 2 || r.DirtyKeys != 1 {
		t.Fatalf("round = %+v", r)
	}
	// Shard 1 has not published: the merged view must refuse.
	if _, err := h.sharded.MergedSnapshot(); err == nil {
		t.Fatal("partially-published store merged")
	}
	// But routed queries to the built shard serve.
	if _, _, err := h.sharded.At(h.keys[1], geom.V(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.sharded.At(h.keys[2], geom.V(1, 1, 1)); !errors.Is(err, remstore.ErrEmpty) {
		t.Fatalf("unbuilt shard query = %v, want ErrEmpty", err)
	}
}

// TestShardedEmpty: queries against a store that has never rebuilt.
func TestShardedEmpty(t *testing.T) {
	h := newHarness(t, 3, HashByKey{}, 2)
	if _, _, err := h.sharded.At(h.keys[0], geom.V(1, 1, 1)); !errors.Is(err, remstore.ErrEmpty) {
		t.Fatalf("At = %v, want ErrEmpty", err)
	}
	if _, _, _, err := h.sharded.Strongest(geom.V(1, 1, 1)); !errors.Is(err, remstore.ErrEmpty) {
		t.Fatalf("Strongest = %v, want ErrEmpty", err)
	}
	if _, _, err := h.sharded.StrongestBatch(testProbes(3)); !errors.Is(err, remstore.ErrEmpty) {
		t.Fatalf("StrongestBatch = %v, want ErrEmpty", err)
	}
	if _, err := h.sharded.MergedSnapshot(); !errors.Is(err, remstore.ErrEmpty) {
		t.Fatalf("MergedSnapshot = %v, want ErrEmpty", err)
	}
	if stats := h.sharded.Stats(); stats.Queries != 0 {
		t.Fatalf("empty-store queries counted: %+v", stats)
	}
}

// TestShardedValidation: bad configurations and bad queries fail loudly.
func TestShardedValidation(t *testing.T) {
	keys := testKeys(3)
	good := Config{Shards: 2, Volume: testVol, Resolution: [3]int{4, 4, 2}}
	if _, err := New(nil, good); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
	if _, err := New([]string{"a", "a"}, good); err == nil {
		t.Fatal("duplicate key accepted")
	}
	bad := good
	bad.Resolution = [3]int{0, 4, 2}
	if _, err := New(keys, bad); err == nil {
		t.Fatal("invalid resolution accepted")
	}
	// Partitioner routing out of range (Explicit without fallback).
	if _, err := New(keys, Config{Shards: 2, Partitioner: Explicit{Assign: map[string]int{keys[0]: 0}},
		Volume: testVol, Resolution: [3]int{4, 4, 2}}); err == nil {
		t.Fatal("unassigned key accepted")
	}
	if _, err := New(keys, Config{Shards: 2, Partitioner: PartitionFunc(func(string, int) int { return 7 }),
		Volume: testVol, Resolution: [3]int{4, 4, 2}}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	st, err := New(keys, good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Rebuild([]int{0}, nil, rem.BuildOptions{}); err == nil {
		t.Fatal("nil predictor accepted")
	}
	model := newEvolvingModel(3)
	if _, err := st.Rebuild([]int{5}, model.predict, rem.BuildOptions{}); err == nil {
		t.Fatal("out-of-range dirty key accepted")
	}
	if _, err := st.Rebuild([]int{0, 1, 2}, model.predict, rem.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.At("nope", geom.V(1, 1, 1)); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, ok := st.ShardFor("nope"); ok {
		t.Fatal("unknown key has a shard")
	}
	// An empty dirty set is a no-op round.
	r, err := st.Rebuild(nil, model.predict, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.AffectedShards != 0 || r.DirtyKeys != 0 {
		t.Fatalf("no-op round = %+v", r)
	}
}

// TestMergedSnapshotAt: a version vector resolves to the exact merged
// view that was serving when the vector was captured — as long as every
// constituent shard snapshot is still retained.
func TestMergedSnapshotAt(t *testing.T) {
	h := newHarness(t, 9, HashByKey{}, 3)
	type gen struct {
		versions []uint64
		m        *rem.Map
	}
	var gens []gen
	for r := 0; r < 3; r++ {
		h.round([]int{ml.DirtyAll})
		m, versions, err := h.sharded.MergedSnapshotVersions()
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, gen{versions: versions, m: m})
	}
	for i, g := range gens {
		got, ok := h.sharded.MergedSnapshotAt(g.versions)
		if !ok {
			t.Fatalf("generation %d no longer resolvable", i)
		}
		if !got.Equal(g.m) {
			t.Fatalf("generation %d reconstructed differently", i)
		}
	}
	// A vector naming a version no shard ever published, or of the wrong
	// length, is unresolvable.
	bogus := append([]uint64(nil), gens[0].versions...)
	bogus[0] = 99
	if _, ok := h.sharded.MergedSnapshotAt(bogus); ok {
		t.Fatal("bogus version vector resolved")
	}
	if _, ok := h.sharded.MergedSnapshotAt(gens[0].versions[:1]); ok {
		t.Fatal("short version vector resolved")
	}
	// Push every shard past its history bound: the earliest vector's
	// constituents evict and the lookup reports the miss.
	for r := 0; r < remstore.DefaultMaxHistory+1; r++ {
		h.round([]int{ml.DirtyAll})
	}
	if _, ok := h.sharded.MergedSnapshotAt(gens[0].versions); ok {
		t.Fatal("evicted generation still resolvable")
	}
	latest, versions, err := h.sharded.MergedSnapshotVersions()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h.sharded.MergedSnapshotAt(versions); !ok || !got.Equal(latest) {
		t.Fatal("current generation not resolvable through its own vector")
	}
}
