package remshard

import (
	"time"

	"repro/internal/remobs"
)

// shardObs is the sharded store's instrument set; nil means
// uninstrumented. The store-level counters deliberately reuse the
// rem_store_* names the monolithic backend exposes — one process
// serves one backend flavour, and operators should not need two
// dashboards for the same concept (the /stats schema converges the
// same way).
type shardObs struct {
	obs         *remobs.Observer
	rebuildHist *remobs.Histogram
}

// SetObserver registers the sharded store's metrics: rebuild-round
// latency, round/shard gauges, and the aggregate store counters under
// the same names the monolithic store uses. nil is the documented
// opt-out.
func (s *ShardedStore) SetObserver(obs *remobs.Observer) {
	if obs == nil || obs.Registry == nil {
		return
	}
	reg := obs.Registry
	s.o = &shardObs{
		obs: obs,
		rebuildHist: reg.Histogram("rem_shard_rebuild_seconds",
			"whole-round sharded rebuild latency (all affected shards, publish included)"),
	}
	reg.GaugeFunc("rem_shard_count", "configured shard count",
		func() float64 { return float64(len(s.shards)) })
	reg.CounterFunc("rem_shard_rounds_total", "completed rebuild rounds",
		func() float64 { return float64(s.rounds.Load()) })
	reg.CounterFunc("rem_store_queries_total",
		"logical queries served (one per point; monolithic-equivalent figure)",
		func() float64 { return float64(s.Stats().Queries) })
	reg.CounterFunc("rem_store_publishes_total",
		"snapshot generations published, summed across shards",
		func() float64 { return float64(s.Stats().ShardPublishes) })
	reg.CounterFunc("rem_store_evictions_total",
		"snapshots evicted by retention, summed across shards",
		func() float64 {
			var n uint64
			for _, st := range s.Stats().PerShard {
				n += st.Evictions
			}
			return float64(n)
		})
	reg.GaugeFunc("rem_store_coverindex_candidate_ratio",
		"expected Strongest candidates over the full vocabulary (1 = no pruning)",
		func() float64 { return s.coverCandidateRatio() })
}

// coverCandidateRatio aggregates the pruning ratio across shards: a
// Strongest query visits every shard, so the expected candidate count
// is the sum of each shard's per-cube mean, normalised by the full
// vocabulary size.
func (s *ShardedStore) coverCandidateRatio() float64 {
	k := len(s.keys)
	if k == 0 {
		return 1
	}
	var perCube float64
	for _, sh := range s.shards {
		cur := sh.store.Current()
		if cur == nil {
			// An unpublished shard serves nothing yet; count its keys at
			// brute cost so the gauge is pessimistic, not flattering.
			perCube += float64(len(sh.keys))
			continue
		}
		cs, ok := cur.Map().CoverIndexStats()
		if !ok || cs.Cubes == 0 {
			perCube += float64(len(sh.keys))
			continue
		}
		perCube += float64(cs.Candidates) / float64(cs.Cubes)
	}
	return perCube / float64(k)
}

// observeRebuild records one completed round.
func (s *ShardedStore) observeRebuild(r Round, d time.Duration) {
	o := s.o
	if o == nil {
		return
	}
	o.rebuildHist.Observe(d)
	o.obs.Event("rebuild",
		"round=%d dirty_keys=%d affected_shards=%d built_keys=%d shared_tiles=%d took=%s",
		r.Seq, r.DirtyKeys, r.AffectedShards, r.BuiltKeys, r.SharedTiles,
		d.Round(time.Microsecond))
}
