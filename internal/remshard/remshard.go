// Package remshard partitions a REM vocabulary across independent
// remstore.Store instances — the scale-out layer above the single
// concurrent snapshot store. A deterministic Partitioner assigns every
// key to exactly one shard at construction; queries route by key with
// one atomic snapshot load on the owning shard, rebuilds rasterise and
// publish only the shards whose keys a window dirtied (concurrently,
// through internal/parallel), and each shard's publish is invisible to
// the others — an update to one AP never blocks queries or rebuilds on
// the rest. Per-shard query counters are cache-line padded
// (parallel.PaddedUint64), so readers hammering different shards never
// contend on a counter line.
//
// Determinism contract rule 8: a sharded store answers every query
// byte-identically to a single monolithic store over the same cumulative
// data — At values, Strongest winners (vocabulary-order tie-breaks are
// preserved across the shard merge) and the logical query count in
// Stats — for any Partitioner and any shard count. Snapshot versions are
// the one sharded-only observable: they are per-shard publish sequences
// (a shard untouched since round 1 still serves version 1), where a
// monolithic store numbers every window. MergedSnapshot reassembles the
// monolithic view (rem.Merge shares the tiles, copying nothing) and is
// Map.Equal to the monolithic build — that identity is what the rule 8
// tests pin.
package remshard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/rem"
	"repro/internal/remstore"
)

// ErrEmpty is what queries return before any shard has published — the
// same sentinel the underlying stores use, re-exported so callers of the
// sharded front need not import remstore to match it.
var ErrEmpty = remstore.ErrEmpty

// ErrPartial is what MergedSnapshot returns for a store mid-first-round:
// some shards serve, others have never published, so no consistent
// monolithic view exists yet. Like ErrEmpty it is retryable — the next
// rounds fill the missing shards in.
var ErrPartial = errors.New("remshard: not every shard has published")

// Config parameterises a ShardedStore.
type Config struct {
	// Shards is the shard count; ≤ 0 means 1 (a sharded store over one
	// shard behaves exactly like a monolithic store, which is what the
	// equivalence tests exploit).
	Shards int
	// Partitioner assigns keys to shards; nil means HashByKey.
	Partitioner Partitioner
	// Volume is the mapped volume every shard's maps cover.
	Volume geom.Cuboid
	// Resolution is the grid (cells per axis) every shard's maps use.
	Resolution [3]int
	// MaxHistory bounds each shard store's snapshot history
	// (≤ 0 means remstore.DefaultMaxHistory).
	MaxHistory int
}

// shardState is one shard: its store, its slice of the vocabulary (in
// global order) and its padded logical-query counter. The fields before
// the counter are immutable after New; the counter's padding keeps
// their cache lines clean under write traffic.
type shardState struct {
	store *remstore.Store
	// keys is the shard's vocabulary, ordered by global key index.
	keys []string
	// global[i] is the global index of keys[i].
	global []int
	// logical counts monolithic-equivalent queries answered by this
	// shard: one per At/Strongest, one per point of a batch.
	logical parallel.PaddedUint64
}

// ShardedStore routes queries and rebuilds over the partitioned
// vocabulary. All query methods are safe for arbitrary concurrency with
// each other and with Rebuild; concurrent Rebuild calls are safe only
// when their dirty sets touch disjoint shards (within one shard,
// rebuilds are read-modify-write chains and need a single writer, same
// as a monolithic store).
type ShardedStore struct {
	vol geom.Cuboid
	res [3]int
	// keys is the full vocabulary in global order.
	keys []string
	// keyIdx maps key → global index; shardOf maps global index → shard.
	keyIdx  map[string]int
	shardOf []int
	shards  []*shardState
	rounds  atomic.Uint64
	// o is the attached instrument set (observe.go); nil means
	// uninstrumented. Written once by SetObserver before rebuild
	// traffic, read on the rebuild path only.
	o *shardObs
}

// New builds a sharded store over the vocabulary. The partitioner is
// consulted once per key; duplicate keys, invalid geometry and
// out-of-range shard assignments are rejected. Shards that no key maps
// to are legal (they simply never serve).
func New(keys []string, cfg Config) (*ShardedStore, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashByKey{}
	}
	if len(keys) == 0 {
		return nil, errors.New("remshard: store needs at least one key")
	}
	if cfg.Resolution[0] < 1 || cfg.Resolution[1] < 1 || cfg.Resolution[2] < 1 {
		return nil, fmt.Errorf("remshard: grid resolution %dx%dx%d invalid", cfg.Resolution[0], cfg.Resolution[1], cfg.Resolution[2])
	}
	s := &ShardedStore{
		vol:     cfg.Volume,
		res:     cfg.Resolution,
		keys:    append([]string(nil), keys...),
		keyIdx:  make(map[string]int, len(keys)),
		shardOf: make([]int, len(keys)),
		shards:  make([]*shardState, n),
	}
	for i := range s.shards {
		s.shards[i] = &shardState{store: remstore.New(cfg.MaxHistory)}
	}
	for gi, k := range s.keys {
		if _, dup := s.keyIdx[k]; dup {
			return nil, fmt.Errorf("remshard: duplicate key %q", k)
		}
		s.keyIdx[k] = gi
		si := part.Shard(k, n)
		if si < 0 || si >= n {
			return nil, fmt.Errorf("remshard: partitioner routed key %q to shard %d, want [0, %d)", k, si, n)
		}
		s.shardOf[gi] = si
		sh := s.shards[si]
		sh.keys = append(sh.keys, k)
		sh.global = append(sh.global, gi)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Keys returns the full vocabulary in global order (a copy).
func (s *ShardedStore) Keys() []string { return append([]string(nil), s.keys...) }

// Volume returns the mapped volume.
func (s *ShardedStore) Volume() geom.Cuboid { return s.vol }

// Resolution returns the per-shard grid resolution.
func (s *ShardedStore) Resolution() [3]int { return s.res }

// Rounds returns how many rebuild rounds have been driven.
func (s *ShardedStore) Rounds() uint64 { return s.rounds.Load() }

// ShardFor returns the shard owning key, or false for a key outside the
// vocabulary.
func (s *ShardedStore) ShardFor(key string) (int, bool) {
	gi, ok := s.keyIdx[key]
	if !ok {
		return 0, false
	}
	return s.shardOf[gi], true
}

// ShardKeys returns shard si's slice of the vocabulary, in global key
// order (a copy).
func (s *ShardedStore) ShardKeys(si int) []string {
	return append([]string(nil), s.shards[si].keys...)
}

// ShardLen returns how many keys shard si owns — the allocation-free
// cardinality check (ShardKeys copies the slice).
func (s *ShardedStore) ShardLen(si int) int { return len(s.shards[si].keys) }

// StoreOf exposes shard si's underlying snapshot store — history and
// retention are managed there (e.g. StoreOf(i).SetRetention).
func (s *ShardedStore) StoreOf(si int) *remstore.Store { return s.shards[si].store }

// Round reports one rebuild round.
type Round struct {
	// Seq is the 1-based round sequence number.
	Seq uint64
	// DirtyKeys is the resolved global dirty-key count.
	DirtyKeys int
	// AffectedShards is how many shards rebuilt and published.
	AffectedShards int
	// BuiltKeys is the total keys rasterised — more than DirtyKeys when
	// a previously unbuilt shard had to full-build.
	BuiltKeys int
	// SharedTiles sums the tile sharing of the snapshots published this
	// round (each against its own shard's predecessor).
	SharedTiles int
	// Versions[si] is shard si's snapshot version published this round,
	// 0 for shards the round did not touch.
	Versions []uint64
}

// Rebuild rasterises and publishes the shards owning the dirty keys, in
// parallel: the dirty set (global key indices; ml.DirtyAll means every
// key, so estimator Observe results wire straight through) is grouped by
// shard, each affected shard derives its next generation — RebuildKeys
// against its current snapshot, or a full build the first time — and
// publishes independently, so untouched shards' serving snapshots are
// never replaced, not even with a cheap alias. predict answers by global
// key index (the same contract core.BatchPredictorFor produces); it must
// be safe for concurrent use. The worker budget is split across the
// affected shards, and any split produces byte-identical shard maps.
//
// On error some shards of the round may already have published; each is
// internally consistent, and re-running the round against the same
// estimator state republishes byte-identical maps, so retry is safe.
func (s *ShardedStore) Rebuild(dirty []int, predict rem.BatchPredictFunc, opts rem.BuildOptions) (Round, error) {
	if predict == nil {
		return Round{}, errors.New("remshard: rebuild needs a predictor")
	}
	start := time.Now()
	local := make([][]int, len(s.shards))
	resolved := 0
	add := func(gi int) {
		si := s.shardOf[gi]
		local[si] = append(local[si], localIndex(s.shards[si], gi))
		resolved++
	}
	all := false
	for _, k := range dirty {
		if k == ml.DirtyAll {
			all = true
			break
		}
	}
	if all {
		for gi := range s.keys {
			add(gi)
		}
	} else {
		seen := make(map[int]bool, len(dirty))
		ks := make([]int, 0, len(dirty))
		for _, gi := range dirty {
			if gi < 0 || gi >= len(s.keys) {
				return Round{}, fmt.Errorf("remshard: dirty key %d outside [0, %d)", gi, len(s.keys))
			}
			if !seen[gi] {
				seen[gi] = true
				ks = append(ks, gi)
			}
		}
		sort.Ints(ks)
		for _, gi := range ks {
			add(gi)
		}
	}
	var affected []int
	for si, l := range local {
		if len(l) > 0 {
			affected = append(affected, si)
		}
	}
	round := Round{
		Seq:            s.rounds.Add(1),
		DirtyKeys:      resolved,
		AffectedShards: len(affected),
		Versions:       make([]uint64, len(s.shards)),
	}
	if len(affected) == 0 {
		s.observeRebuild(round, time.Since(start))
		return round, nil
	}
	// Split the worker budget across the affected shards: outer×inner ≈
	// the requested bound, and any split yields byte-identical maps.
	w := parallel.Workers(opts.Workers)
	outer := w
	if outer > len(affected) {
		outer = len(affected)
	}
	inner := w / outer
	if inner < 1 {
		inner = 1
	}
	type pub struct {
		version            uint64
		built, sharedTiles int
	}
	pubs, err := parallel.Map(len(affected), outer, func(i int) (pub, error) {
		si := affected[i]
		sh := s.shards[si]
		wrap := func(centers []geom.Vec3, ki int) ([]float64, error) {
			return predict(centers, sh.global[ki])
		}
		shOpts := rem.BuildOptions{Workers: inner}
		var next *rem.Map
		var built int
		var err error
		if cur := sh.store.Current(); cur == nil {
			// First generation for this shard: its whole vocabulary
			// slice, whatever subset the round dirtied.
			next, err = rem.BuildMapBatch(s.vol, s.res[0], s.res[1], s.res[2], sh.keys, wrap, shOpts)
			built = len(sh.keys)
		} else {
			next, err = cur.Map().RebuildKeys(local[si], wrap, shOpts)
			built = len(local[si])
		}
		if err != nil {
			return pub{}, fmt.Errorf("remshard: rebuilding shard %d: %w", si, err)
		}
		snap, err := sh.store.Publish(next, built)
		if err != nil {
			return pub{}, fmt.Errorf("remshard: publishing shard %d: %w", si, err)
		}
		_, shared := snap.BuildStats()
		return pub{version: snap.Version(), built: built, sharedTiles: shared}, nil
	})
	if err != nil {
		return Round{}, err
	}
	for i, p := range pubs {
		round.Versions[affected[i]] = p.version
		round.BuiltKeys += p.built
		round.SharedTiles += p.sharedTiles
	}
	s.observeRebuild(round, time.Since(start))
	return round, nil
}

// localIndex translates a global key index into the shard-local index.
// sh.global is sorted (New appends in global order) and gi is always
// present — the caller routed it to this shard — so a binary search
// resolves it.
func localIndex(sh *shardState, gi int) int {
	return sort.SearchInts(sh.global, gi)
}

// At answers a point query, routed to the shard owning the key: one map
// lookup, one atomic snapshot load. The returned version is the owning
// shard's snapshot version.
func (s *ShardedStore) At(key string, p geom.Vec3) (float64, uint64, error) {
	sh, err := s.route(key)
	if err != nil {
		return 0, 0, err
	}
	v, ver, err := sh.store.At(key, p)
	if err == nil {
		sh.logical.Add(1)
	}
	return v, ver, err
}

// AtBatch answers a multi-point query for one key: routed once, served
// by one snapshot of the owning shard. Each point counts as one query.
func (s *ShardedStore) AtBatch(key string, pts []geom.Vec3) ([]float64, uint64, error) {
	sh, err := s.route(key)
	if err != nil {
		return nil, 0, err
	}
	out, ver, err := sh.store.AtBatch(key, pts)
	if err == nil {
		sh.logical.Add(uint64(len(pts)))
	}
	return out, ver, err
}

// AtBatchInto is AtBatch into a caller-owned buffer (no allocation).
func (s *ShardedStore) AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error) {
	sh, err := s.route(key)
	if err != nil {
		return 0, err
	}
	ver, err := sh.store.AtBatchInto(dst, key, pts)
	if err == nil {
		sh.logical.Add(uint64(len(pts)))
	}
	return ver, err
}

func (s *ShardedStore) route(key string) (*shardState, error) {
	gi, ok := s.keyIdx[key]
	if !ok {
		return nil, fmt.Errorf("remshard: %w %q", rem.ErrUnknownKey, key)
	}
	return s.shards[s.shardOf[gi]], nil
}

// Strongest answers a best-server query across every shard: each
// serving shard's snapshot is loaded once (one atomic load per shard)
// and its local winner merged under the global vocabulary order, so the
// result is exactly what a monolithic store over the same data returns —
// including ties, which resolve to the earliest key in global order.
// The returned version is the winning shard's snapshot version.
func (s *ShardedStore) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	bestKey, bestVal, bestGi, bestVer := "", math.Inf(-1), -1, uint64(0)
	var bestShard, firstServing *shardState
	for _, sh := range s.shards {
		if len(sh.keys) == 0 {
			continue
		}
		snap := sh.store.Current()
		if snap == nil {
			continue
		}
		if firstServing == nil {
			firstServing = sh
		}
		k, v := snap.Map().Strongest(p)
		if k == "" {
			continue // every value NaN in this shard — monolithic skips them too
		}
		gi := s.keyIdx[k]
		if v > bestVal || (v == bestVal && gi < bestGi) {
			bestKey, bestVal, bestGi, bestVer, bestShard = k, v, gi, snap.Version(), sh
		}
	}
	if firstServing == nil {
		return "", 0, 0, remstore.ErrEmpty
	}
	if bestShard != nil {
		bestShard.logical.Add(1)
	} else {
		firstServing.logical.Add(1)
	}
	return bestKey, bestVal, bestVer, nil
}

// StrongestBatch answers a best-server query for every point: each
// serving shard's snapshot is loaded once for the whole batch, then the
// per-point winners merge under the global vocabulary order — element i
// matches Strongest(pts[i]) exactly. Serving versions are per-shard; use
// Strongest for a versioned answer.
func (s *ShardedStore) StrongestBatch(pts []geom.Vec3) ([]string, []float64, error) {
	keys := make([]string, len(pts))
	vals := make([]float64, len(pts))
	if err := s.StrongestBatchInto(keys, vals, pts); err != nil {
		return nil, nil, err
	}
	return keys, vals, nil
}

// strongestScratch is the pooled working set of StrongestBatchInto: the
// per-shard winner buffers, the global tie-break indices, each point's
// winning shard and the per-shard logical-query tallies. Pooling keeps
// the serving path allocation-free at steady state.
type strongestScratch struct {
	ks     []string
	vs     []float64
	gis    []int
	win    []int
	counts []uint64
}

var strongestScratchPool = sync.Pool{New: func() any { return new(strongestScratch) }}

func (sc *strongestScratch) grow(pts, shards int) {
	if cap(sc.ks) < pts {
		sc.ks = make([]string, pts)
		sc.vs = make([]float64, pts)
		sc.gis = make([]int, pts)
		sc.win = make([]int, pts)
	}
	sc.ks, sc.vs, sc.gis, sc.win = sc.ks[:pts], sc.vs[:pts], sc.gis[:pts], sc.win[:pts]
	if cap(sc.counts) < shards {
		sc.counts = make([]uint64, shards)
	}
	sc.counts = sc.counts[:shards]
}

// StrongestBatchInto is StrongestBatch into caller-owned buffers — the
// zero-allocation serving path behind POST /strongest on a sharded
// backend. len(keys) and len(vals) must equal len(pts).
func (s *ShardedStore) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) error {
	if len(keys) != len(pts) || len(vals) != len(pts) {
		return fmt.Errorf("remshard: batch destinations hold %d keys / %d values for %d points", len(keys), len(vals), len(pts))
	}
	sc := strongestScratchPool.Get().(*strongestScratch)
	defer strongestScratchPool.Put(sc)
	sc.grow(len(pts), len(s.shards))
	for i := range vals {
		keys[i] = ""
		vals[i] = math.Inf(-1)
		sc.gis[i] = -1
		sc.win[i] = -1
	}
	firstServing := -1
	for si, sh := range s.shards {
		if len(sh.keys) == 0 {
			continue
		}
		snap := sh.store.Current()
		if snap == nil {
			continue
		}
		if firstServing < 0 {
			firstServing = si
		}
		if err := snap.Map().StrongestBatchInto(sc.ks, sc.vs, pts); err != nil {
			return err
		}
		for i := range pts {
			if sc.ks[i] == "" {
				continue // every value NaN in this shard — monolithic skips them too
			}
			gi := s.keyIdx[sc.ks[i]]
			if sc.vs[i] > vals[i] || (sc.vs[i] == vals[i] && gi < sc.gis[i]) {
				keys[i], vals[i], sc.gis[i], sc.win[i] = sc.ks[i], sc.vs[i], gi, si
			}
		}
	}
	if firstServing < 0 {
		return remstore.ErrEmpty
	}
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	for i := range pts {
		if sc.win[i] >= 0 {
			sc.counts[sc.win[i]]++
		} else {
			sc.counts[firstServing]++
		}
	}
	for si, n := range sc.counts {
		if n > 0 {
			s.shards[si].logical.Add(n)
		}
	}
	return nil
}

// MergedSnapshot reassembles the current per-shard snapshots into one
// monolithic map over the full vocabulary, sharing every tile
// (rem.Merge copies tile headers, never cells). The result is Map.Equal
// to what a monolithic store would serve over the same cumulative data —
// the rule 8 identity — and suits export paths (CSV, codec) that want
// the whole map. It errors if only some shards have published (a store
// mid-first-round); ErrEmpty if none have.
func (s *ShardedStore) MergedSnapshot() (*rem.Map, error) {
	m, _, err := s.MergedSnapshotVersions()
	return m, err
}

// MergedSnapshotVersions is MergedSnapshot plus the serving provenance:
// versions[si] is the snapshot version of shard si that contributed its
// tiles to the merged map (0 for a shard with no keys). Each shard's
// serving snapshot is loaded exactly once and used for both the merge
// and the version vector, so under concurrent rebuilds the vector
// describes precisely the generation combination the returned map holds
// — the identity the HTTP front's ETag relies on.
func (s *ShardedStore) MergedSnapshotVersions() (*rem.Map, []uint64, error) {
	versions := make([]uint64, len(s.shards))
	var parts []*rem.Map
	missing := 0
	for si, sh := range s.shards {
		if len(sh.keys) == 0 {
			continue
		}
		snap := sh.store.Current()
		if snap == nil {
			missing++
			continue
		}
		versions[si] = snap.Version()
		parts = append(parts, snap.Map())
	}
	if len(parts) == 0 {
		return nil, nil, remstore.ErrEmpty
	}
	if missing > 0 {
		return nil, nil, fmt.Errorf("%w (%d shard(s) pending)", ErrPartial, missing)
	}
	m, err := rem.Merge(s.keys, parts)
	if err != nil {
		return nil, nil, err
	}
	return m, versions, nil
}

// MergedSnapshotAt reassembles the historical merged view identified by
// a version vector (versions[si] = shard si's snapshot version;
// key-less shards are ignored). It succeeds only if every key-owning
// shard still retains its snapshot at exactly that version — the
// delta-base lookup behind the HTTP front's "changes since <etag>"
// endpoint. ok=false means at least one constituent was evicted (or
// never existed) and the caller must fall back to a full snapshot.
func (s *ShardedStore) MergedSnapshotAt(versions []uint64) (*rem.Map, bool) {
	if len(versions) != len(s.shards) {
		return nil, false
	}
	var parts []*rem.Map
	for si, sh := range s.shards {
		if len(sh.keys) == 0 {
			continue
		}
		snap := sh.store.SnapshotAt(versions[si])
		if snap == nil {
			return nil, false
		}
		parts = append(parts, snap.Map())
	}
	if len(parts) == 0 {
		return nil, false
	}
	m, err := rem.Merge(s.keys, parts)
	if err != nil {
		return nil, false
	}
	return m, true
}

// Stats is the aggregate view across shards.
type Stats struct {
	// Shards is the shard count.
	Shards int
	// Rounds counts rebuild rounds driven.
	Rounds uint64
	// Queries counts logical queries — one per At/Strongest, one per
	// point of a batch — the number a monolithic store's Stats.Queries
	// would report for the same query stream.
	Queries uint64
	// ShardPublishes sums snapshot publishes across the shard stores
	// (≥ Rounds: one publish per affected shard per round).
	ShardPublishes uint64
	// ShardQueries sums store-level queries across the shard stores
	// (key-routed queries only; best-server queries are counted at the
	// router, in Queries).
	ShardQueries uint64
	// PerShard is each shard store's own Stats, indexed by shard.
	PerShard []remstore.Stats
}

// Stats returns the aggregate counters. The totals are exactly the sums
// of the per-shard figures it returns alongside them (pinned by the
// concurrent-hammer test).
func (s *ShardedStore) Stats() Stats {
	out := Stats{
		Shards:   len(s.shards),
		Rounds:   s.rounds.Load(),
		PerShard: make([]remstore.Stats, len(s.shards)),
	}
	for i, sh := range s.shards {
		st := sh.store.Stats()
		out.PerShard[i] = st
		out.Queries += sh.logical.Load()
		out.ShardPublishes += st.Publishes
		out.ShardQueries += st.Queries
	}
	return out
}
