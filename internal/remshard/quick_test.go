package remshard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rem"
	"repro/internal/simrand"
)

// randomVocab draws a MAC-shaped random vocabulary with no duplicates.
func randomVocab(rng *simrand.Source, n int) []string {
	seen := map[string]bool{}
	keys := make([]string, 0, n)
	for len(keys) < n {
		k := fmt.Sprintf("%02x:%02x:%02x", rng.Intn(256), rng.Intn(256), rng.Intn(256))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestPartitionerQuick is the routing property: for random vocabularies
// and shard counts, every partitioner assigns each key to exactly one
// shard — deterministically, in range — and the sharded store's
// per-shard key lists form an exact partition of the vocabulary.
func TestPartitionerQuick(t *testing.T) {
	rng := simrand.New(20260726)
	for trial := 0; trial < 60; trial++ {
		nKeys := 1 + rng.Intn(40)
		shards := 1 + rng.Intn(8)
		keys := randomVocab(rng, nKeys)
		assign := make(map[string]int, nKeys)
		partial := make(map[string]int, nKeys)
		for i, k := range keys {
			assign[k] = rng.Intn(shards)
			if i%2 == 0 {
				partial[k] = rng.Intn(shards)
			}
		}
		parts := map[string]Partitioner{
			"hash":              HashByKey{},
			"explicit":          Explicit{Assign: assign},
			"explicit+fallback": Explicit{Assign: partial, Fallback: HashByKey{}},
			"range": PartitionFunc(func(key string, n int) int {
				for i, k := range keys {
					if k == key {
						return i * n / len(keys)
					}
				}
				return -1
			}),
		}
		for name, p := range parts {
			for _, k := range keys {
				s1, s2 := p.Shard(k, shards), p.Shard(k, shards)
				if s1 != s2 {
					t.Fatalf("trial %d %s: non-deterministic routing for %q: %d then %d", trial, name, k, s1, s2)
				}
				if s1 < 0 || s1 >= shards {
					t.Fatalf("trial %d %s: key %q routed to %d of %d shards", trial, name, k, s1, shards)
				}
			}
			st, err := New(keys, Config{Shards: shards, Partitioner: p, Volume: testVol, Resolution: [3]int{3, 3, 2}})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			// Exactly-one-shard: the shard key lists are disjoint and
			// cover the vocabulary.
			owner := map[string]int{}
			total := 0
			for si := 0; si < st.NumShards(); si++ {
				for _, k := range st.ShardKeys(si) {
					if prev, dup := owner[k]; dup {
						t.Fatalf("trial %d %s: key %q owned by shards %d and %d", trial, name, k, prev, si)
					}
					owner[k] = si
					total++
				}
			}
			if total != nKeys {
				t.Fatalf("trial %d %s: shard lists hold %d keys, vocabulary has %d", trial, name, total, nKeys)
			}
			for _, k := range keys {
				si, ok := st.ShardFor(k)
				if !ok || owner[k] != si {
					t.Fatalf("trial %d %s: ShardFor(%q) = %d,%v but list owner is %d", trial, name, k, si, ok, owner[k])
				}
			}
		}
	}
}

// TestShardedConcurrentHammer runs queries of every kind against a
// sharded store while a writer drives localized rebuild rounds —
// under -race this is the routing-layer safety proof — and then checks
// that the aggregate Stats totals equal the sum of the per-shard stats.
func TestShardedConcurrentHammer(t *testing.T) {
	const (
		nKeys   = 12
		shards  = 4
		readers = 6
		rounds  = 30
	)
	keys := testKeys(nKeys)
	st, err := New(keys, Config{Shards: shards, Volume: testVol, Resolution: [3]int{5, 4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	model := newEvolvingModel(nKeys)
	// First round: everything, so every shard serves before the readers
	// start asserting non-empty answers.
	model.touch([]int{0})
	if _, err := st.Rebuild(allKeys(nKeys), model.predict, rem.BuildOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	probes := testProbes(8)
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := simrand.New(uint64(1000 + r))
			buf := make([]float64, len(probes))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[rng.Intn(nKeys)]
				switch i % 5 {
				case 0:
					if _, _, err := st.At(key, probes[i%len(probes)]); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := st.AtBatch(key, probes); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := st.AtBatchInto(buf, key, probes); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, _, _, err := st.Strongest(probes[i%len(probes)]); err != nil {
						errs <- err
						return
					}
				default:
					if _, _, err := st.StrongestBatch(probes); err != nil {
						errs <- err
						return
					}
				}
				_ = st.Stats()
			}
		}(r)
	}
	// The writer: localized rounds touching 1–3 keys each.
	wrng := simrand.New(42)
	for g := 0; g < rounds; g++ {
		dirty := []int{wrng.Intn(nKeys)}
		for wrng.Intn(2) == 0 && len(dirty) < 3 {
			dirty = append(dirty, wrng.Intn(nKeys))
		}
		model.touch(dirty)
		if _, err := st.Rebuild(dirty, model.predict, rem.BuildOptions{Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := st.Stats()
	if stats.Rounds != rounds+1 {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, rounds+1)
	}
	var pubs, shq uint64
	for _, ps := range stats.PerShard {
		pubs += ps.Publishes
		shq += ps.Queries
	}
	if stats.ShardPublishes != pubs || stats.ShardQueries != shq {
		t.Fatalf("totals %d/%d do not match per-shard sums %d/%d", stats.ShardPublishes, stats.ShardQueries, pubs, shq)
	}
	if stats.Queries == 0 || stats.ShardQueries == 0 {
		t.Fatalf("no queries recorded: %+v", stats)
	}
	// Key-routed queries count both logically and at the shard stores;
	// best-server queries only logically — so the logical total is at
	// least the store-level total.
	if stats.Queries < stats.ShardQueries {
		t.Fatalf("logical queries %d below store-level %d", stats.Queries, stats.ShardQueries)
	}
}

func allKeys(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
